(* Command-line driver.

     asf_bench repro --list
     asf_bench repro -e fig5 --quick
     asf_bench repro --all --csv results
     asf_bench intset --structure rb-tree --range 8192 --threads 8 --mode llb256
     asf_bench stamp --app genome --mode stm --threads 4

   (invoking without a subcommand behaves like `repro`). *)

module Experiments = Asf_harness.Experiments
module Report = Asf_harness.Report
module Stats = Asf_tm_rt.Stats
module Tm = Asf_tm_rt.Tm
module Variant = Asf_core.Variant
module Abort = Asf_core.Abort
module Intset = Asf_intset.Intset
module Stamp = Asf_stamp.Stamp
module C = Asf_stamp.Stamp_common
module Trace = Asf_trace.Trace
module Check = Asf_check.Check
module Faults = Asf_faults.Faults
module Parallel = Asf_parallel.Parallel

(* ------------------------------------------------------------------ *)
(* Shared mode parsing                                                  *)
(* ------------------------------------------------------------------ *)

let modes =
  [
    ("llb8", Tm.Asf_mode Variant.llb8);
    ("llb256", Tm.Asf_mode Variant.llb256);
    ("llb8-l1", Tm.Asf_mode Variant.llb8_l1);
    ("llb256-l1", Tm.Asf_mode Variant.llb256_l1);
    ("cache", Tm.Asf_mode Variant.cache_based);
    ("phased", Tm.Phased_mode Variant.llb8);
    ("stm", Tm.Stm_mode);
    ("seq", Tm.Seq_mode);
  ]

let mode_names = String.concat ", " (List.map fst modes)

let print_stats stats =
  Printf.printf "commits: %d (serial %d), attempts: %d\n" (Stats.commits stats)
    (Stats.serial_commits stats) (Stats.attempts stats);
  let aborts = Stats.aborts stats in
  Array.iteri
    (fun i n -> if n > 0 then Printf.printf "aborts[%s]: %d\n" (Abort.class_name i) n)
    aborts

(* ------------------------------------------------------------------ *)
(* Tracing                                                              *)
(* ------------------------------------------------------------------ *)

(* Install a tracer around [run] when --trace FILE was given; afterwards
   write the sink (CSV if FILE ends in .csv, Chrome trace-event JSON
   otherwise) and print the per-kind event summary. *)
let with_trace trace_file trace_filter run =
  match trace_file with
  | None -> run ()
  | Some path -> (
      let filter =
        Option.map
          (fun s ->
            String.split_on_char ',' s |> List.map String.trim
            |> List.filter (fun x -> x <> ""))
          trace_filter
      in
      match try Ok (Trace.create ?filter ()) with Invalid_argument m -> Error m with
      | Error m ->
          (* The Trace error already lists the valid kinds. *)
          Printf.eprintf "%s\n" m;
          1
      | Ok tr -> (
          Trace.install tr;
          let rc = Fun.protect ~finally:Trace.uninstall run in
          match
            if Filename.check_suffix path ".csv" then Trace.write_csv tr path
            else Trace.write_chrome_json tr path
          with
          | () ->
              Report.print (Report.of_trace ~id:"trace" tr);
              Printf.printf "trace: %s (%d events retained)\n" path
                (List.length (Trace.events tr));
              rc
          | exception Sys_error m ->
              Printf.eprintf "cannot write trace: %s\n" m;
              1))

(* ------------------------------------------------------------------ *)
(* Checking                                                             *)
(* ------------------------------------------------------------------ *)

(* Install a checker around [run] when --check was given; afterwards print
   the findings table and fail the invocation if any guarantee was
   violated. Like tracing, checking never advances simulated time, so all
   reported numbers are identical with and without it. *)
let with_check check run =
  match check with
  | None -> run ()
  | Some spec -> (
      let names =
        String.split_on_char ',' spec |> List.map String.trim
        |> List.filter (fun s -> s <> "")
      in
      match
        try Ok (Check.parts_of_names names) with Invalid_argument m -> Error m
      with
      | Error m ->
          Printf.eprintf "%s (valid parts: isolation, serial, lint, all)\n" m;
          1
      | Ok parts ->
          let chk = Check.create ~parts () in
          Check.install chk;
          let rc = Fun.protect ~finally:Check.uninstall run in
          Report.print (Report.of_check ~id:"check" chk);
          let violations = List.length (Check.violations chk) in
          if violations > 0 then begin
            Printf.printf "check: %d violation(s)\n" violations;
            max rc 1
          end
          else begin
            Printf.printf "check: clean (%d advisory finding(s))\n"
              (List.length (Check.advisories chk));
            rc
          end)

(* ------------------------------------------------------------------ *)
(* Fault injection                                                      *)
(* ------------------------------------------------------------------ *)

(* Install a fault injector around [run] when --faults PLAN was given;
   afterwards print the per-site injection counts. --faults=none (or an
   all-zero merge) installs nothing at all, so such runs are bit-identical
   to runs without the flag. *)
let with_faults fspec fseed run =
  match fspec with
  | None -> run ()
  | Some spec -> (
      match Faults.plan_of_spec spec with
      | Error m ->
          Printf.eprintf "%s\n" m;
          1
      | Ok plan ->
          if Faults.plan_is_none plan then run ()
          else begin
            let fl = Faults.create ~seed:fseed plan in
            Faults.install fl;
            let rc = Fun.protect ~finally:Faults.uninstall run in
            Printf.printf "faults[%s seed=%d]: %d injection(s)\n" plan.Faults.pname
              fseed (Faults.total fl);
            List.iter
              (fun (site, n) -> if n > 0 then Printf.printf "  %-17s %d\n" site n)
              (Faults.counts fl);
            rc
          end)

(* A watchdog diagnosis is a distinct, deliberate outcome (exit code 3):
   the run made no progress and says why — the negative soak fixture
   relies on it. *)
let catch_livelock f =
  try f ()
  with Tm.Livelock d ->
    Format.eprintf "%a@." Tm.pp_diagnosis d;
    3

(* ------------------------------------------------------------------ *)
(* repro                                                                *)
(* ------------------------------------------------------------------ *)

let list_experiments () =
  Printf.printf "available experiments:\n";
  List.iter
    (fun e -> Printf.printf "  %-12s %s\n" e.Experiments.id e.Experiments.description)
    Experiments.all;
  0

let run_one ~quick ~seed ~csv id =
  match Experiments.find id with
  | None ->
      Printf.eprintf "unknown experiment %S; try --list\n" id;
      1
  | Some e ->
      let t0 = Unix.gettimeofday () in
      let reports = e.Experiments.run ~quick ~seed in
      List.iter
        (fun r ->
          Report.print r;
          match csv with
          | Some dir ->
              let path = Report.save_csv ~dir r in
              Printf.printf "csv: %s\n" path
          | None -> ())
        reports;
      Printf.printf "[%s done in %.1fs host time]\n%!" id (Unix.gettimeofday () -. t0);
      0

let repro ids all quick seed csv do_list trace tfilter check faults fseed jobs =
  (* 0 = auto: one worker per recommended domain; the pool clamps to the
     number of cells of each fan-out anyway. The report is bit-identical
     for every value (see DESIGN.md, "The determinism contract"). *)
  Parallel.set_jobs (if jobs <= 0 then Parallel.available () else jobs);
  if do_list then list_experiments ()
  else
    let ids = if all then Experiments.ids () else ids in
    if ids = [] then begin
      Printf.eprintf "nothing to run; use -e <id>, --all, or --list\n";
      1
    end
    else
      with_faults faults fseed (fun () ->
          with_trace trace tfilter (fun () ->
              with_check check (fun () ->
                  List.fold_left
                    (fun rc id ->
                      max rc (catch_livelock (fun () -> run_one ~quick ~seed ~csv id)))
                    0 ids)))

(* ------------------------------------------------------------------ *)
(* intset                                                               *)
(* ------------------------------------------------------------------ *)

let run_intset mode structure range updates threads txns early_release seed trace tfilter
    check faults fseed =
  with_faults faults fseed @@ fun () ->
  with_trace trace tfilter @@ fun () ->
  with_check check @@ fun () ->
  catch_livelock @@ fun () ->
  let structure =
    match structure with
    | "linked-list" -> Some Intset.Linked_list
    | "skip-list" -> Some Intset.Skip_list
    | "rb-tree" -> Some Intset.Rb_tree
    | "hash-set" -> Some Intset.Hash_set
    | _ -> None
  in
  match (structure, List.assoc_opt mode modes) with
  | None, _ ->
      Printf.eprintf "unknown structure (linked-list, skip-list, rb-tree, hash-set)\n";
      1
  | _, None ->
      Printf.eprintf "unknown mode (%s)\n" mode_names;
      1
  | Some structure, Some mode ->
      let cfg =
        {
          (Intset.default_cfg structure) with
          Intset.range;
          update_pct = updates;
          txns_per_thread = txns;
          early_release;
        }
      in
      let tm = { (Tm.default_config mode ~n_cores:threads) with Tm.seed } in
      let r = Intset.run tm ~threads cfg in
      Printf.printf "%s range=%d upd=%d%% threads=%d: %.2f tx/us (%d cycles)\n"
        (Intset.structure_name structure)
        range updates threads r.Intset.throughput_tx_per_us r.Intset.cycles;
      print_stats r.Intset.stats;
      if not r.Intset.size_ok then Printf.printf "WARNING: size check failed\n";
      (* Progress: every requested transaction must have committed, with
         or without injected faults. *)
      let progressed = Stats.commits r.Intset.stats = r.Intset.txns in
      if not progressed then
        Printf.printf "WARNING: progress check failed (%d of %d txns committed)\n"
          (Stats.commits r.Intset.stats) r.Intset.txns;
      if r.Intset.size_ok && progressed then 0 else 1

(* ------------------------------------------------------------------ *)
(* stamp                                                                *)
(* ------------------------------------------------------------------ *)

let run_stamp app mode threads scale seed trace tfilter check faults fseed =
  with_faults faults fseed @@ fun () ->
  with_trace trace tfilter @@ fun () ->
  with_check check @@ fun () ->
  catch_livelock @@ fun () ->
  match (Stamp.of_name app, List.assoc_opt mode modes) with
  | None, _ ->
      Printf.eprintf "unknown app (%s)\n"
        (String.concat ", " (List.map Stamp.name Stamp.all));
      1
  | _, None ->
      Printf.eprintf "unknown mode (%s)\n" mode_names;
      1
  | Some app, Some mode ->
      let tm = { (Tm.default_config mode ~n_cores:threads) with Tm.seed } in
      let r = Stamp.run_scaled app ~scale tm ~threads in
      Printf.printf "%s threads=%d: %.3f ms simulated\n" (Stamp.name app) threads
        (C.ms tm.Tm.params r);
      print_stats r.C.stats;
      List.iter
        (fun (check, passed) -> Printf.printf "check %-40s %s\n" check
            (if passed then "ok" else "FAILED"))
        r.C.checks;
      if C.ok r then 0 else 1

(* ------------------------------------------------------------------ *)
(* cmdliner plumbing                                                    *)
(* ------------------------------------------------------------------ *)

open Cmdliner

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Deterministic seed.")

let threads_arg =
  Arg.(value & opt int 8 & info [ "threads"; "t" ] ~docv:"N" ~doc:"Worker threads (= cores).")

let mode_arg =
  Arg.(value & opt string "llb256"
       & info [ "mode"; "m" ] ~docv:"MODE" ~doc:("Execution mode: " ^ mode_names ^ "."))

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:
             "Record a transaction-level trace and write it to $(docv): Chrome \
              trace-event JSON (open in chrome://tracing or Perfetto), or CSV when \
              $(docv) ends in .csv. Tracing never advances simulated time, so all \
              reported numbers are identical with and without it.")

let trace_filter_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-filter" ] ~docv:"EVENTS"
           ~doc:
             ("Comma-separated event kinds to record (default: all except resume). \
               Kinds: " ^ String.concat ", " Trace.filter_names ^ "."))

let check_arg =
  Arg.(value & opt ~vopt:(Some "all") (some string) None
       & info [ "check" ] ~docv:"PARTS"
           ~doc:
             "Run the correctness checker alongside the workload and print its \
              findings: $(b,isolation) (shadow-memory strong-isolation checks), \
              $(b,serial) (conflict-serializability oracle + abort hygiene), \
              $(b,lint) (capacity/annotation advisories), or a comma-separated \
              subset (default: all). Checking never advances simulated time, so \
              all reported numbers are identical with and without it; the exit \
              code is non-zero if any guarantee was violated.")

let faults_arg =
  Arg.(value & opt (some string) None
       & info [ "faults" ] ~docv:"PLAN"
           ~doc:
             ("Inject deterministic faults while the workload runs: a \
               comma-separated merge of the named plans "
             ^ String.concat ", "
                 (List.map (fun n -> "$(b," ^ n ^ ")") Faults.plan_names)
             ^ ". The same ($(docv), $(b,--faults-seed)) pair reproduces the run \
                bit-identically; $(b,none) is bit-identical to omitting the flag. \
                A run ended by the progress watchdog exits with code 3."))

let faults_seed_arg =
  Arg.(value & opt int 1
       & info [ "faults-seed" ] ~docv:"N"
           ~doc:
             "Seed of the fault-injection draws (independent of $(b,--seed), so \
              the same workload can be perturbed differently).")

let jobs_arg =
  Arg.(value & opt int 0
       & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:
             "Run each experiment's independent simulator cells on $(docv) \
              domains (default: the host's recommended domain count; clamped \
              to the number of cells). Output is bit-identical for every \
              $(docv); $(b,--jobs 1) is the fully sequential path, and \
              $(b,--trace) forces it.")

let repro_cmd =
  let ids =
    Arg.(value & opt_all string []
         & info [ "e"; "experiment" ] ~docv:"ID" ~doc:"Experiment to run (repeatable).")
  in
  let all = Arg.(value & flag & info [ "all" ] ~doc:"Run every experiment.") in
  let quick = Arg.(value & flag & info [ "quick" ] ~doc:"Scaled-down configurations.") in
  let csv =
    Arg.(value & opt (some string) None
         & info [ "csv" ] ~docv:"DIR" ~doc:"Also write each table as DIR/<id>.csv.")
  in
  let list = Arg.(value & flag & info [ "list" ] ~doc:"List experiments and exit.") in
  Cmd.v
    (Cmd.info "repro" ~doc:"Reproduce the paper's tables and figures")
    Term.(
      const repro $ ids $ all $ quick $ seed_arg $ csv $ list $ trace_arg
      $ trace_filter_arg $ check_arg $ faults_arg $ faults_seed_arg $ jobs_arg)

let intset_cmd =
  let structure =
    Arg.(value & opt string "rb-tree"
         & info [ "structure"; "s" ] ~docv:"S"
             ~doc:"linked-list, skip-list, rb-tree, or hash-set.")
  in
  let range = Arg.(value & opt int 1024 & info [ "range"; "r" ] ~docv:"N" ~doc:"Key range.") in
  let updates =
    Arg.(value & opt int 20 & info [ "updates"; "u" ] ~docv:"PCT" ~doc:"Update percentage.")
  in
  let txns =
    Arg.(value & opt int 1000 & info [ "txns" ] ~docv:"N" ~doc:"Transactions per thread.")
  in
  let er = Arg.(value & flag & info [ "early-release" ] ~doc:"ASF early release.") in
  Cmd.v
    (Cmd.info "intset" ~doc:"Run one IntegerSet configuration")
    Term.(
      const run_intset $ mode_arg $ structure $ range $ updates $ threads_arg $ txns $ er
      $ seed_arg $ trace_arg $ trace_filter_arg $ check_arg $ faults_arg
      $ faults_seed_arg)

let stamp_cmd =
  let app_arg =
    Arg.(value & opt string "genome"
         & info [ "app"; "a" ] ~docv:"APP" ~doc:"STAMP application name.")
  in
  let scale =
    Arg.(value & opt float 1.0 & info [ "scale" ] ~docv:"X" ~doc:"Input size multiplier.")
  in
  Cmd.v
    (Cmd.info "stamp" ~doc:"Run one STAMP application")
    Term.(
      const run_stamp $ app_arg $ mode_arg $ threads_arg $ scale $ seed_arg $ trace_arg
      $ trace_filter_arg $ check_arg $ faults_arg $ faults_seed_arg)

let main_cmd =
  let doc =
    "Reproduce 'Evaluation of AMD's Advanced Synchronization Facility Within a \
     Complete Transactional Memory Stack' (EuroSys 2010)"
  in
  Cmd.group
    ~default:
      Term.(
        const (fun ids all quick seed csv list trace tfilter check faults fseed jobs ->
            repro ids all quick seed csv list trace tfilter check faults fseed jobs)
        $ Arg.(value & opt_all string [] & info [ "e"; "experiment" ] ~docv:"ID")
        $ Arg.(value & flag & info [ "all" ])
        $ Arg.(value & flag & info [ "quick" ])
        $ seed_arg
        $ Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"DIR")
        $ Arg.(value & flag & info [ "list" ])
        $ trace_arg $ trace_filter_arg $ check_arg $ faults_arg $ faults_seed_arg
        $ jobs_arg)
    (Cmd.info "asf_bench" ~doc)
    [ repro_cmd; intset_cmd; stamp_cmd ]

let () = exit (Cmd.eval' main_cmd)
