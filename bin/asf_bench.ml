(* Command-line driver.

     asf_bench repro --list
     asf_bench repro -e fig5 --quick
     asf_bench repro --all --csv results
     asf_bench intset --structure rb-tree --range 8192 --threads 8 --mode llb256
     asf_bench stamp --app genome --mode stm --threads 4

   (invoking without a subcommand behaves like `repro`). *)

module Experiments = Asf_harness.Experiments
module Report = Asf_harness.Report
module Stats = Asf_tm_rt.Stats
module Tm = Asf_tm_rt.Tm
module Variant = Asf_core.Variant
module Abort = Asf_core.Abort
module Intset = Asf_intset.Intset
module Stamp = Asf_stamp.Stamp
module C = Asf_stamp.Stamp_common
module Trace = Asf_trace.Trace
module Check = Asf_check.Check
module Faults = Asf_faults.Faults
module Parallel = Asf_parallel.Parallel
module Analyze = Asf_analyze.Analyze
module Workloads = Asf_analyze.Workloads
module Findings = Asf_analyze.Findings
module Xvalidate = Asf_harness.Xvalidate
module Serve = Asf_serve.Serve
module Txlin = Asf_txlin.Txlin
module Params = Asf_machine.Params

(* ------------------------------------------------------------------ *)
(* Shared mode parsing                                                  *)
(* ------------------------------------------------------------------ *)

let modes =
  [
    ("llb8", Tm.Asf_mode Variant.llb8);
    ("llb256", Tm.Asf_mode Variant.llb256);
    ("llb8-l1", Tm.Asf_mode Variant.llb8_l1);
    ("llb256-l1", Tm.Asf_mode Variant.llb256_l1);
    ("cache", Tm.Asf_mode Variant.cache_based);
    ("phased", Tm.Phased_mode Variant.llb8);
    ("stm", Tm.Stm_mode);
    ("seq", Tm.Seq_mode);
  ]

let mode_names = String.concat ", " (List.map fst modes)

let print_stats stats =
  Printf.printf "commits: %d (serial %d), attempts: %d\n" (Stats.commits stats)
    (Stats.serial_commits stats) (Stats.attempts stats);
  let aborts = Stats.aborts stats in
  Array.iteri
    (fun i n -> if n > 0 then Printf.printf "aborts[%s]: %d\n" (Abort.class_name i) n)
    aborts

(* ------------------------------------------------------------------ *)
(* Tracing                                                              *)
(* ------------------------------------------------------------------ *)

(* Install a tracer around [run] when --trace FILE was given; afterwards
   write the sink (CSV if FILE ends in .csv, Chrome trace-event JSON
   otherwise) and print the per-kind event summary. *)
let with_trace trace_file trace_filter run =
  match trace_file with
  | None -> run ()
  | Some path -> (
      let filter =
        Option.map
          (fun s ->
            String.split_on_char ',' s |> List.map String.trim
            |> List.filter (fun x -> x <> ""))
          trace_filter
      in
      match try Ok (Trace.create ?filter ()) with Invalid_argument m -> Error m with
      | Error m ->
          (* The Trace error already lists the valid kinds. *)
          Printf.eprintf "%s\n" m;
          1
      | Ok tr -> (
          Trace.install tr;
          let rc = Fun.protect ~finally:Trace.uninstall run in
          match
            if Filename.check_suffix path ".csv" then Trace.write_csv tr path
            else Trace.write_chrome_json tr path
          with
          | () ->
              Report.print (Report.of_trace ~id:"trace" tr);
              Printf.printf "trace: %s (%d events retained)\n" path
                (List.length (Trace.events tr));
              rc
          | exception Sys_error m ->
              Printf.eprintf "cannot write trace: %s\n" m;
              1))

(* ------------------------------------------------------------------ *)
(* Checking                                                             *)
(* ------------------------------------------------------------------ *)

(* Install a checker around [run] when --check was given; afterwards print
   the findings table and fail the invocation if any guarantee was
   violated. Like tracing, checking never advances simulated time, so all
   reported numbers are identical with and without it. *)
(* --check-json: after the run, re-emit the checker's findings as the
   machine-readable shared record ({!Asf_analyze.Findings}), so CI can
   diff the runtime side against the static analyzer's artifact. *)
(* When the progress watchdog killed the run, its diagnosis is parked
   here so the --check-json artifact can carry the structured livelock
   findings alongside the checker's own. *)
let last_livelock : Tm.diagnosis option ref = ref None

(* Findings produced outside the Txcheck instance (the serve harness's
   linearizability verdicts and partition violations) are parked here by
   the run and folded into the same --check-json artifact. *)
let last_extra_findings : Findings.t list ref = ref []

let write_check_json ?chk path =
  let fs =
    match chk with
    | Some chk -> Findings.of_check ~workload:"runtime" (Check.findings chk)
    | None -> []
  in
  let fs =
    match !last_livelock with
    | None -> fs
    | Some d -> fs @ Findings.of_livelock ~workload:"runtime" d
  in
  let fs = fs @ !last_extra_findings in
  let doc =
    Printf.sprintf "{\n  \"schema\": \"asf-findings-v1\",\n  \"findings\": %s\n}\n"
      (Findings.json_of_findings fs)
  in
  match Findings.write_json ~path doc with
  | Ok () ->
      Printf.printf "check-json: %s (%d finding(s))\n" path (List.length fs);
      0
  | Error m ->
      Printf.eprintf "cannot write check json: %s\n" m;
      1

let with_check check check_json run =
  match check with
  | None ->
      if check_json <> None then
        Printf.eprintf "note: --check-json has no effect without --check\n";
      run ()
  | Some spec -> (
      let names =
        String.split_on_char ',' spec |> List.map String.trim
        |> List.filter (fun s -> s <> "")
      in
      match
        try Ok (Check.parts_of_names names) with Invalid_argument m -> Error m
      with
      | Error m ->
          Printf.eprintf
            "%s (valid parts: isolation, serial, lint, all; lin is \
             serve-only)\n"
            m;
          1
      | Ok parts ->
          let chk = Check.create ~parts () in
          Check.install chk;
          let rc = Fun.protect ~finally:Check.uninstall run in
          Report.print (Report.of_check ~id:"check" chk);
          let jrc =
            match check_json with None -> 0 | Some path -> write_check_json ~chk path
          in
          let violations = List.length (Check.violations chk) in
          if violations > 0 then begin
            Printf.printf "check: %d violation(s)\n" violations;
            max (max rc jrc) 1
          end
          else begin
            Printf.printf "check: clean (%d advisory finding(s))\n"
              (List.length (Check.advisories chk));
            max rc jrc
          end)

(* ------------------------------------------------------------------ *)
(* Fault injection                                                      *)
(* ------------------------------------------------------------------ *)

(* Install a fault injector around [run] when --faults PLAN was given;
   afterwards print the per-site injection counts. --faults=none (or an
   all-zero merge) installs nothing at all, so such runs are bit-identical
   to runs without the flag. *)
let with_faults fspec fseed run =
  match fspec with
  | None -> run ()
  | Some spec -> (
      match Faults.plan_of_spec spec with
      | Error m ->
          Printf.eprintf "%s\n" m;
          1
      | Ok plan ->
          if Faults.plan_is_none plan then run ()
          else begin
            let fl = Faults.create ~seed:fseed plan in
            Faults.install fl;
            let rc = Fun.protect ~finally:Faults.uninstall run in
            Printf.printf "faults[%s seed=%d]: %d injection(s)\n" plan.Faults.pname
              fseed (Faults.total fl);
            List.iter
              (fun (site, n) -> if n > 0 then Printf.printf "  %-17s %d\n" site n)
              (Faults.counts fl);
            rc
          end)

(* A watchdog diagnosis is a distinct, deliberate outcome (exit code 3):
   the run made no progress and says why — the negative soak fixture
   relies on it. *)
let catch_livelock f =
  try f ()
  with Tm.Livelock d ->
    last_livelock := Some d;
    Format.eprintf "%a@." Tm.pp_diagnosis d;
    3

(* ------------------------------------------------------------------ *)
(* repro                                                                *)
(* ------------------------------------------------------------------ *)

let list_experiments () =
  Printf.printf "available experiments:\n";
  List.iter
    (fun e -> Printf.printf "  %-12s %s\n" e.Experiments.id e.Experiments.description)
    Experiments.all;
  0

let run_one ~quick ~seed ~csv id =
  match Experiments.find id with
  | None ->
      Printf.eprintf "unknown experiment %S; try --list\n" id;
      1
  | Some e ->
      let t0 = Unix.gettimeofday () in
      let reports = e.Experiments.run ~quick ~seed in
      List.iter
        (fun r ->
          Report.print r;
          match csv with
          | Some dir ->
              let path = Report.save_csv ~dir r in
              Printf.printf "csv: %s\n" path
          | None -> ())
        reports;
      Printf.printf "[%s done in %.1fs host time]\n%!" id (Unix.gettimeofday () -. t0);
      0

let repro ids all quick seed csv do_list trace tfilter check check_json faults fseed jobs =
  (* 0 = auto: one worker per recommended domain; the pool clamps to the
     number of cells of each fan-out anyway. The report is bit-identical
     for every value (see DESIGN.md, "The determinism contract"). *)
  Parallel.set_jobs (if jobs <= 0 then Parallel.available () else jobs);
  if do_list then list_experiments ()
  else
    let ids = if all then Experiments.ids () else ids in
    if ids = [] then begin
      Printf.eprintf "nothing to run; use -e <id>, --all, or --list\n";
      1
    end
    else
      with_faults faults fseed (fun () ->
          with_trace trace tfilter (fun () ->
              with_check check check_json (fun () ->
                  List.fold_left
                    (fun rc id ->
                      max rc (catch_livelock (fun () -> run_one ~quick ~seed ~csv id)))
                    0 ids)))

(* ------------------------------------------------------------------ *)
(* intset                                                               *)
(* ------------------------------------------------------------------ *)

(* [--sockets 0] (the default) keeps the mode profile's own socket
   count; any other value re-spreads the simulated cores via
   {!Params.with_sockets}, charging the interconnect hop on
   cross-socket coherence traffic. *)
let apply_sockets sockets (tm : Tm.config) =
  if sockets = 0 then tm
  else { tm with Tm.params = Params.with_sockets tm.Tm.params ~sockets }

let run_intset mode structure range updates threads sockets txns early_release seed
    trace tfilter check check_json faults fseed =
  with_faults faults fseed @@ fun () ->
  with_trace trace tfilter @@ fun () ->
  with_check check check_json @@ fun () ->
  catch_livelock @@ fun () ->
  let structure =
    match structure with
    | "linked-list" -> Some Intset.Linked_list
    | "skip-list" -> Some Intset.Skip_list
    | "rb-tree" -> Some Intset.Rb_tree
    | "hash-set" -> Some Intset.Hash_set
    | _ -> None
  in
  match (structure, List.assoc_opt mode modes) with
  | None, _ ->
      Printf.eprintf "unknown structure (linked-list, skip-list, rb-tree, hash-set)\n";
      1
  | _, None ->
      Printf.eprintf "unknown mode (%s)\n" mode_names;
      1
  | Some structure, Some mode ->
      let cfg =
        {
          (Intset.default_cfg structure) with
          Intset.range;
          update_pct = updates;
          txns_per_thread = txns;
          early_release;
        }
      in
      let tm =
        apply_sockets sockets { (Tm.default_config mode ~n_cores:threads) with Tm.seed }
      in
      let r = Intset.run tm ~threads cfg in
      Printf.printf "%s range=%d upd=%d%% threads=%d: %.2f tx/us (%d cycles)\n"
        (Intset.structure_name structure)
        range updates threads r.Intset.throughput_tx_per_us r.Intset.cycles;
      print_stats r.Intset.stats;
      if not r.Intset.size_ok then Printf.printf "WARNING: size check failed\n";
      (* Progress: every requested transaction must have committed, with
         or without injected faults. *)
      let progressed = Stats.commits r.Intset.stats = r.Intset.txns in
      if not progressed then
        Printf.printf "WARNING: progress check failed (%d of %d txns committed)\n"
          (Stats.commits r.Intset.stats) r.Intset.txns;
      if r.Intset.size_ok && progressed then 0 else 1

(* ------------------------------------------------------------------ *)
(* stamp                                                                *)
(* ------------------------------------------------------------------ *)

let run_stamp app mode threads sockets scale seed trace tfilter check check_json faults
    fseed =
  with_faults faults fseed @@ fun () ->
  with_trace trace tfilter @@ fun () ->
  with_check check check_json @@ fun () ->
  catch_livelock @@ fun () ->
  match (Stamp.of_name app, List.assoc_opt mode modes) with
  | None, _ ->
      Printf.eprintf "unknown app (%s)\n"
        (String.concat ", " (List.map Stamp.name Stamp.all));
      1
  | _, None ->
      Printf.eprintf "unknown mode (%s)\n" mode_names;
      1
  | Some app, Some mode ->
      let tm =
        apply_sockets sockets { (Tm.default_config mode ~n_cores:threads) with Tm.seed }
      in
      let r = Stamp.run_scaled app ~scale tm ~threads in
      Printf.printf "%s threads=%d: %.3f ms simulated\n" (Stamp.name app) threads
        (C.ms tm.Tm.params r);
      print_stats r.C.stats;
      List.iter
        (fun (check, passed) -> Printf.printf "check %-40s %s\n" check
            (if passed then "ok" else "FAILED"))
        r.C.checks;
      if C.ok r then 0 else 1

(* ------------------------------------------------------------------ *)
(* serve                                                                *)
(* ------------------------------------------------------------------ *)

(* Everything printed here is a function of simulated time and the seeds
   only (no host clocks), so two same-seed invocations are byte-identical
   — the @serve-smoke alias compares them with cmp. *)
let print_serve_result (r : Serve.result) =
  Printf.printf "serve %s: arrivals=%d completed=%d shed=%d timeout=%d late=%d\n"
    r.Serve.r_service r.Serve.r_arrivals r.Serve.r_completed r.Serve.r_shed
    r.Serve.r_timeout r.Serve.r_late;
  Printf.printf "  latency cycles: p50=%d p90=%d p99=%d p999=%d max=%d mean=%.1f\n"
    r.Serve.r_p50 r.Serve.r_p90 r.Serve.r_p99 r.Serve.r_p999 r.Serve.r_max_lat
    r.Serve.r_mean_lat;
  Printf.printf "  offered=%.3f req/ms achieved=%.3f req/ms span=%d makespan=%d\n"
    r.Serve.r_offered r.Serve.r_achieved r.Serve.r_span r.Serve.r_makespan;
  let h = r.Serve.r_retry_hist in
  Printf.printf
    "  retries=%d hist[0,1,2-3,4-7,8+]=%d,%d,%d,%d,%d timeout-aborts=%d\n"
    r.Serve.r_retries h.(0) h.(1) h.(2) h.(3) h.(4) r.Serve.r_timeout_aborts;
  Printf.printf
    "  governor: final=%s to-shed=%d to-serial=%d recovered=%d serial-served=%d \
     max-depth=%d max-dl-wait=%d\n"
    r.Serve.r_final_gov r.Serve.r_gov_to_shed r.Serve.r_gov_to_serial
    r.Serve.r_gov_recovered r.Serve.r_serial_served r.Serve.r_max_depth
    r.Serve.r_max_dl_wait;
  Printf.printf "  invariant: %s (%s)\n"
    (if r.Serve.r_invariant_ok then "ok" else "FAILED")
    r.Serve.r_invariant_msg;
  print_stats r.Serve.r_stats;
  if r.Serve.r_invariant_ok then 0 else 1

let us_to_cycles (p : Params.t) us = int_of_float (float_of_int us *. p.Params.ghz *. 1000.)

(* The Txlin oracle line + findings for one recorded run. Everything
   printed is a function of the recorded history, itself a function of
   the seeds only — same determinism contract as the serve report. *)
let serve_lin cfg (r : Serve.result) =
  let v = Txlin.check_result cfg r in
  Printf.printf "lin[%s]: %s (%d committed, %d absent, %d group(s), %d state(s))\n"
    v.Txlin.v_service
    (if v.Txlin.v_ok then "ok"
     else if v.Txlin.v_inconclusive then "inconclusive"
     else "VIOLATION")
    v.Txlin.v_obligations v.Txlin.v_absent v.Txlin.v_groups v.Txlin.v_states;
  if not v.Txlin.v_ok then Printf.printf "  %s\n" v.Txlin.v_detail;
  last_extra_findings :=
    !last_extra_findings @ Txlin.findings ~workload:v.Txlin.v_service v;
  if (not v.Txlin.v_ok) && not v.Txlin.v_inconclusive then 1 else 0

(* The hoisted outcome-partition invariant: recorded in the result rather
   than asserted mid-run, reported here as a structured finding. *)
let serve_partition (r : Serve.result) =
  match Txlin.partition_finding ~workload:r.Serve.r_service r with
  | None -> 0
  | Some f ->
      Printf.printf "partition: FAILED (%s)\n" f.Findings.f_detail;
      last_extra_findings := !last_extra_findings @ [ f ];
      1

let run_serve service mode threads sockets requests arrival gap load queue_cap
    deadline_us no_governor records ablate sweep_arg seed trace tfilter check
    check_json faults fseed =
  (* --check=lin is served by Txlin, not Txcheck: split it out of the
     spec before the remainder reaches the Txcheck part parser. *)
  let lin_on, check =
    match check with
    | None -> (false, None)
    | Some spec ->
        let names =
          String.split_on_char ',' spec |> List.map String.trim
          |> List.filter (fun s -> s <> "")
        in
        let rest = List.filter (fun n -> n <> "lin") names in
        ( List.mem "lin" names,
          if rest = [] then None else Some (String.concat "," rest) )
  in
  with_faults faults fseed @@ fun () ->
  with_trace trace tfilter @@ fun () ->
  (fun body ->
    match check with
    | Some _ -> with_check check check_json body
    | None when lin_on ->
        (* lin-only checking: no Txcheck instance, but --check-json still
           carries the lin/partition findings. *)
        let rc = body () in
        let jrc =
          match check_json with None -> 0 | Some path -> write_check_json path
        in
        max rc jrc
    | None -> with_check None check_json body)
  @@ fun () ->
  catch_livelock @@ fun () ->
  match (Serve.service_of_string service, List.assoc_opt mode modes) with
  | Error m, _ ->
      Printf.eprintf "%s\n" m;
      1
  | _, None ->
      Printf.eprintf "unknown mode (%s)\n" mode_names;
      1
  | Ok service, Some tm_mode -> (
      match
        List.fold_left
          (fun acc a ->
            match (acc, a) with
            | Error _, _ -> acc
            | Ok (_, rb), "resolve" -> Ok (false, rb)
            | Ok (rs, _), "rollback" -> Ok (rs, false)
            | Ok _, a ->
                Error
                  (Printf.sprintf
                     "unknown ablation %S (valid: resolve, rollback)" a))
          (Ok (true, true))
          ablate
      with
      | Error m ->
          Printf.eprintf "%s\n" m;
          1
      | Ok (resolve_conflicts, rollback_on_abort) -> (
      let tm =
        apply_sockets sockets
          {
            (Tm.default_config tm_mode ~n_cores:threads) with
            Tm.seed;
            resolve_conflicts;
            rollback_on_abort;
          }
      in
      let base =
        {
          (Serve.default_cfg service) with
          Serve.requests;
          queue_cap;
          governor = not no_governor;
          deadline = Option.map (us_to_cycles tm.Tm.params) deadline_us;
          record = lin_on;
        }
      in
      let base =
        match records with None -> base | Some r -> { base with Serve.records = r }
      in
      match sweep_arg with
      | Some mults_spec -> (
          let mults =
            String.split_on_char ',' mults_spec |> List.map String.trim
            |> List.filter (fun s -> s <> "")
            |> List.filter_map float_of_string_opt
          in
          match mults with
          | [] ->
              Printf.eprintf
                "--sweep needs a comma-separated list of load multipliers (e.g. \
                 0.5,0.9,1.5,2)\n";
              1
          | mults ->
              let results, knee = Serve.sweep tm ~threads base ~mults in
              let verdicts =
                if lin_on then
                  List.map (fun (_, r) -> Some (Txlin.check_result base r)) results
                else List.map (fun _ -> None) results
              in
              Report.print
                (Report.make ~id:"serve-sweep"
                   ~title:
                     (Printf.sprintf
                        "Throughput vs offered load: %s, %d threads, mode %s"
                        (Serve.service_name service) threads mode)
                   ~notes:
                     [
                       (match knee with
                       | Some k -> Printf.sprintf "knee: %.3f req/ms" k
                       | None -> "knee: not reached in this range");
                     ]
                   ([
                      "mult"; "offered"; "achieved"; "p50"; "p99"; "shed";
                      "timeout"; "gov-final";
                    ]
                   @ if lin_on then [ "lin" ] else [])
                   (List.map2
                      (fun (m, (r : Serve.result)) v ->
                        [
                          Printf.sprintf "%.2f" m;
                          Printf.sprintf "%.3f" r.Serve.r_offered;
                          Printf.sprintf "%.3f" r.Serve.r_achieved;
                          string_of_int r.Serve.r_p50;
                          string_of_int r.Serve.r_p99;
                          string_of_int r.Serve.r_shed;
                          string_of_int r.Serve.r_timeout;
                          r.Serve.r_final_gov;
                        ]
                        @
                        match v with
                        | None -> []
                        | Some v ->
                            [
                              (if v.Txlin.v_ok then "ok"
                               else if v.Txlin.v_inconclusive then "inconcl"
                               else "VIOLATION");
                            ])
                      results verdicts));
              let prc =
                List.fold_left
                  (fun acc (_, r) -> max acc (serve_partition r))
                  0 results
              in
              let lrc =
                List.fold_left
                  (fun acc v ->
                    match v with
                    | Some v when (not v.Txlin.v_ok) && not v.Txlin.v_inconclusive
                      ->
                        last_extra_findings :=
                          !last_extra_findings
                          @ Txlin.findings ~workload:v.Txlin.v_service v;
                        max acc 1
                    | _ -> acc)
                  0 verdicts
              in
              if
                List.for_all (fun (_, r) -> r.Serve.r_invariant_ok) results
                && prc = 0 && lrc = 0
              then 0
              else 1)
      | None ->
          let cfg =
            let named g =
              match arrival with
              | "poisson" -> Ok (Serve.Poisson { mean_gap = g })
              | "bursty" ->
                  (* Heavy bursts at a quarter of the nominal gap, quiet
                     phases at four times; windows sized so several bursts
                     fit in a run. *)
                  Ok
                    (Serve.Bursty
                       {
                         mean_gap = g * 4;
                         burst_gap = max 1 (g / 4);
                         on_window = g * requests / 8;
                         off_window = g * requests / 8;
                       })
              | "ramp" ->
                  Ok
                    (Serve.Ramp
                       { low_gap = max 1 (g / 2); high_gap = g * 4; period = g * requests / 2 })
              | "closed" -> Ok Serve.Closed
              | a ->
                  Error
                    (Printf.sprintf
                       "unknown arrival %S (valid: poisson, bursty, ramp, closed)" a)
            in
            match load with
            | Some mult ->
                let capacity = Serve.measure_capacity tm ~threads base in
                let cycles_per_ms = 1.0 /. Params.cycles_to_ms tm.Tm.params 1 in
                let g =
                  max 1
                    (int_of_float (cycles_per_ms /. Float.max 1e-9 (capacity *. mult)))
                in
                named g
            | None -> named gap
          in
          match cfg with
          | Error m ->
              Printf.eprintf "%s\n" m;
              1
          | Ok arrival ->
              let cfg = { base with Serve.arrival } in
              let r = Serve.run tm ~threads cfg in
              let rc = print_serve_result r in
              let rc = max rc (serve_partition r) in
              if lin_on then max rc (serve_lin cfg r) else rc))

(* ------------------------------------------------------------------ *)
(* analyze                                                              *)
(* ------------------------------------------------------------------ *)

(* Txstatic: run the static analyzer over workload models, print the
   per-class access summaries with a capacity verdict per hardware
   variant, cross-validate the verdicts against the runtime abort census
   of the workloads that have a real twin, and write the whole result as
   ANALYZE_asf.json. Exit 1 on any violation: an unsafe annotation, a
   restart hazard, release misuse, or a static-fits/runtime-abort
   contradiction (the latter is an analyzer bug by construction). *)
let run_analyze json_path seed txns no_xcheck names fixtures =
  catch_livelock @@ fun () ->
  let params = Asf_machine.Params.barcelona in
  let resolve acc n =
    match acc with
    | Error _ -> acc
    | Ok ws -> (
        match Workloads.find n with Some w -> Ok (w :: ws) | None -> Error n)
  in
  let chosen =
    match names with
    | [] -> Ok (Workloads.stock @ if fixtures then Workloads.fixtures else [])
    | ns -> Result.map List.rev (List.fold_left resolve (Ok []) ns)
  in
  match chosen with
  | Error n ->
      let names ws = String.concat ", " (List.map (fun w -> w.Workloads.w_name) ws) in
      Printf.eprintf "unknown workload %S\n  stock: %s\n  fixtures: %s\n" n
        (names Workloads.stock) (names Workloads.fixtures);
      1
  | Ok workloads ->
      let seeds = [ seed; seed + 1; seed + 2 ] in
      let t = Analyze.run ~seeds ~txns ~params workloads in
      let vnames = List.map (fun v -> v.Variant.name) Analyze.variants in
      let class_row wr cs =
        let verdicts =
          List.map
            (fun variant ->
              Analyze.verdict_name (Analyze.capacity_verdict ~params ~variant cs))
            Analyze.variants
        in
        let tags =
          List.filter
            (fun (_, n) -> n > 0)
            [
              ("rel", cs.Analyze.cs_releases);
              ("reread", cs.Analyze.cs_rereads);
              ("alloc", cs.Analyze.cs_allocs);
              ("DIVERGED", cs.Analyze.cs_diverged);
            ]
        in
        let notes =
          if tags = [] then "-"
          else String.concat " " (List.map (fun (k, n) -> Printf.sprintf "%s:%d" k n) tags)
        in
        [
          wr.Analyze.wr_workload;
          cs.Analyze.cs_class;
          string_of_int cs.Analyze.cs_execs;
          string_of_int cs.Analyze.cs_rd_max;
          string_of_int cs.Analyze.cs_wr_max;
          Printf.sprintf "%d..%d" cs.Analyze.cs_peak_min cs.Analyze.cs_peak_max;
          string_of_int cs.Analyze.cs_all_set_occ;
        ]
        @ verdicts @ [ notes ]
      in
      Report.print
        (Report.make ~id:"analyze"
           ~title:
             (Printf.sprintf
                "Txstatic access summaries and capacity verdicts (seeds %s, %d txns/seed)"
                (String.concat "," (List.map string_of_int seeds))
                txns)
           ~notes:
             [
               "peak counts protected lines at their worst moment; every hw attempt \
                adds 1 ABI line (serial-lock subscription)";
               "l1set = worst per-L1-set occupancy over all touched lines";
             ]
           ([ "workload"; "class"; "execs"; "rd"; "wr"; "peak"; "l1set" ]
           @ vnames @ [ "notes" ])
           (List.concat_map
              (fun wr -> List.map (class_row wr) wr.Analyze.wr_classes)
              t.Analyze.a_reports));
      let censuses, contradictions, xnotes =
        if no_xcheck then ([], [], [])
        else Xvalidate.cross_validate ~seed t
      in
      if censuses <> [] then
        Report.print
          (Report.make ~id:"xvalidate"
             ~title:"Runtime capacity-abort census vs static verdict" ~notes:xnotes
             [ "workload"; "variant"; "attempts"; "cap-aborts"; "max-fp"; "static" ]
             (List.map
                (fun c ->
                  let wr =
                    List.find
                      (fun wr -> wr.Analyze.wr_workload = c.Xvalidate.v_workload)
                      t.Analyze.a_reports
                  in
                  [
                    c.Xvalidate.v_workload;
                    c.Xvalidate.v_variant.Variant.name;
                    string_of_int c.Xvalidate.v_attempts;
                    string_of_int c.Xvalidate.v_cap_aborts;
                    string_of_int c.Xvalidate.v_max_footprint;
                    Analyze.verdict_name
                      (Analyze.workload_verdict ~params
                         ~variant:c.Xvalidate.v_variant wr);
                  ])
                censuses));
      let all_findings = Analyze.findings t @ contradictions in
      Report.print
        (Report.make ~id:"analyze-findings" ~title:"Txstatic findings"
           ~notes:
             (List.map
                (fun f -> f.Findings.f_kind ^ ": " ^ f.Findings.f_detail)
                all_findings)
           [ "source"; "severity"; "kind"; "workload"; "class"; "variant"; "line"; "count" ]
           (match all_findings with
           | [] -> [ [ "-"; "-"; "clean"; "-"; "-"; "-"; "-"; "0" ] ]
           | fs ->
               List.map
                 (fun f ->
                   [
                     (match f.Findings.f_source with
                     | Findings.Static -> "static"
                     | Findings.Runtime -> "runtime");
                     f.Findings.f_severity;
                     f.Findings.f_kind;
                     f.Findings.f_workload;
                     (if f.Findings.f_class = "" then "-" else f.Findings.f_class);
                     (if f.Findings.f_variant = "" then "-" else f.Findings.f_variant);
                     (match f.Findings.f_line with
                     | Some l -> string_of_int l
                     | None -> "-");
                     string_of_int f.Findings.f_count;
                   ])
                 fs));
      let wrc =
        match
          Findings.write_json ~path:json_path
            (Analyze.artifact_json t ~extra:contradictions)
        with
        | Ok () ->
            Printf.printf "analyze: %s (%d workload(s), %d finding(s))\n" json_path
              (List.length t.Analyze.a_reports)
              (List.length all_findings);
            0
        | Error m ->
            Printf.eprintf "cannot write %s: %s\n" json_path m;
            1
      in
      let violations = List.filter Findings.is_violation all_findings in
      if violations <> [] then begin
        Printf.printf "analyze: %d violation(s)\n" (List.length violations);
        max wrc 1
      end
      else begin
        Printf.printf "analyze: clean (%d advisory finding(s))\n"
          (List.length all_findings);
        wrc
      end

(* ------------------------------------------------------------------ *)
(* cmdliner plumbing                                                    *)
(* ------------------------------------------------------------------ *)

open Cmdliner

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Deterministic seed.")

let threads_arg =
  Arg.(
    value
    & opt int 8
    & info [ "threads"; "t"; "cores" ] ~docv:"N"
        ~doc:"Worker threads (= simulated cores).")

let sockets_arg =
  Arg.(
    value
    & opt int 0
    & info [ "sockets" ] ~docv:"N"
        ~doc:
          "Spread the simulated cores over $(docv) sockets (one shared L3 \
           per socket, 110-cycle interconnect hop on cross-socket probes). \
           0 keeps the mode profile's own socket count.")

let mode_arg =
  Arg.(value & opt string "llb256"
       & info [ "mode"; "m" ] ~docv:"MODE" ~doc:("Execution mode: " ^ mode_names ^ "."))

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:
             "Record a transaction-level trace and write it to $(docv): Chrome \
              trace-event JSON (open in chrome://tracing or Perfetto), or CSV when \
              $(docv) ends in .csv. Tracing never advances simulated time, so all \
              reported numbers are identical with and without it.")

let trace_filter_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-filter" ] ~docv:"EVENTS"
           ~doc:
             ("Comma-separated event kinds to record (default: all except resume). \
               Kinds: " ^ String.concat ", " Trace.filter_names ^ "."))

let check_arg =
  Arg.(value & opt ~vopt:(Some "all") (some string) None
       & info [ "check" ] ~docv:"PARTS"
           ~doc:
             "Run the correctness checker alongside the workload and print its \
              findings: $(b,isolation) (shadow-memory strong-isolation checks), \
              $(b,serial) (conflict-serializability oracle + abort hygiene), \
              $(b,lint) (capacity/annotation advisories), or a comma-separated \
              subset (default: all). $(b,serve) additionally accepts $(b,lin), \
              the Txlin request/response linearizability oracle over the \
              recorded history (not part of $(b,all)). Checking never advances \
              simulated time, so all reported numbers are identical with and \
              without it; the exit code is non-zero if any guarantee was \
              violated.")

let check_json_arg =
  Arg.(value & opt (some string) None
       & info [ "check-json" ] ~docv:"FILE"
           ~doc:
             "With $(b,--check): also write the checker's findings to $(docv) as \
              machine-readable JSON, one record per finding in the same shape the \
              static analyzer emits (see $(b,asf_bench analyze)).")

let faults_arg =
  Arg.(value & opt (some string) None
       & info [ "faults" ] ~docv:"PLAN"
           ~doc:
             ("Inject deterministic faults while the workload runs: a \
               comma-separated merge of the named plans "
             ^ String.concat ", "
                 (List.map (fun n -> "$(b," ^ n ^ ")") Faults.plan_names)
             ^ ". The same ($(docv), $(b,--faults-seed)) pair reproduces the run \
                bit-identically; $(b,none) is bit-identical to omitting the flag. \
                A run ended by the progress watchdog exits with code 3."))

let faults_seed_arg =
  Arg.(value & opt int 1
       & info [ "faults-seed" ] ~docv:"N"
           ~doc:
             "Seed of the fault-injection draws (independent of $(b,--seed), so \
              the same workload can be perturbed differently).")

let jobs_arg =
  Arg.(value & opt int 0
       & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:
             "Run each experiment's independent simulator cells on $(docv) \
              domains (default: the host's recommended domain count; clamped \
              to the number of cells). Output is bit-identical for every \
              $(docv); $(b,--jobs 1) is the fully sequential path, and \
              $(b,--trace) forces it.")

let repro_cmd =
  let ids =
    Arg.(value & opt_all string []
         & info [ "e"; "experiment" ] ~docv:"ID" ~doc:"Experiment to run (repeatable).")
  in
  let all = Arg.(value & flag & info [ "all" ] ~doc:"Run every experiment.") in
  let quick = Arg.(value & flag & info [ "quick" ] ~doc:"Scaled-down configurations.") in
  let csv =
    Arg.(value & opt (some string) None
         & info [ "csv" ] ~docv:"DIR" ~doc:"Also write each table as DIR/<id>.csv.")
  in
  let list = Arg.(value & flag & info [ "list" ] ~doc:"List experiments and exit.") in
  Cmd.v
    (Cmd.info "repro" ~doc:"Reproduce the paper's tables and figures")
    Term.(
      const repro $ ids $ all $ quick $ seed_arg $ csv $ list $ trace_arg
      $ trace_filter_arg $ check_arg $ check_json_arg $ faults_arg $ faults_seed_arg
      $ jobs_arg)

let intset_cmd =
  let structure =
    Arg.(value & opt string "rb-tree"
         & info [ "structure"; "s" ] ~docv:"S"
             ~doc:"linked-list, skip-list, rb-tree, or hash-set.")
  in
  let range = Arg.(value & opt int 1024 & info [ "range"; "r" ] ~docv:"N" ~doc:"Key range.") in
  let updates =
    Arg.(value & opt int 20 & info [ "updates"; "u" ] ~docv:"PCT" ~doc:"Update percentage.")
  in
  let txns =
    Arg.(value & opt int 1000 & info [ "txns" ] ~docv:"N" ~doc:"Transactions per thread.")
  in
  let er = Arg.(value & flag & info [ "early-release" ] ~doc:"ASF early release.") in
  Cmd.v
    (Cmd.info "intset" ~doc:"Run one IntegerSet configuration")
    Term.(
      const run_intset $ mode_arg $ structure $ range $ updates $ threads_arg
      $ sockets_arg $ txns $ er $ seed_arg $ trace_arg $ trace_filter_arg
      $ check_arg $ check_json_arg $ faults_arg $ faults_seed_arg)

let stamp_cmd =
  let app_arg =
    Arg.(value & opt string "genome"
         & info [ "app"; "a" ] ~docv:"APP" ~doc:"STAMP application name.")
  in
  let scale =
    Arg.(value & opt float 1.0 & info [ "scale" ] ~docv:"X" ~doc:"Input size multiplier.")
  in
  Cmd.v
    (Cmd.info "stamp" ~doc:"Run one STAMP application")
    Term.(
      const run_stamp $ app_arg $ mode_arg $ threads_arg $ sockets_arg $ scale
      $ seed_arg $ trace_arg $ trace_filter_arg $ check_arg $ check_json_arg
      $ faults_arg $ faults_seed_arg)

let serve_cmd =
  let service =
    Arg.(value & opt string "kv-a"
         & info [ "service" ] ~docv:"S"
             ~doc:"Service: kv-a .. kv-f (YCSB-style mixes) or ledger.")
  in
  let requests =
    Arg.(value & opt int 2000 & info [ "requests"; "n" ] ~docv:"N" ~doc:"Total arrivals.")
  in
  let arrival =
    Arg.(value & opt string "poisson"
         & info [ "arrival" ] ~docv:"A"
             ~doc:"Arrival process: poisson, bursty, ramp, or closed.")
  in
  let gap =
    Arg.(value & opt int 300
         & info [ "gap" ] ~docv:"CYCLES"
             ~doc:"Nominal mean inter-arrival gap in cycles (ignored with $(b,--load)).")
  in
  let load =
    Arg.(value & opt (some float) None
         & info [ "load" ] ~docv:"MULT"
             ~doc:
               "Offered load as a multiple of measured capacity: first run a \
                closed-loop capacity probe, then derive the arrival gap so that \
                offered = $(docv) x capacity (2.0 = sustained 2x overload).")
  in
  let queue_cap =
    Arg.(value & opt int 64
         & info [ "queue-cap" ] ~docv:"N"
             ~doc:"Per-core run-queue bound; arrivals beyond it are shed.")
  in
  let deadline_us =
    Arg.(value & opt (some int) None
         & info [ "deadline-us" ] ~docv:"US"
             ~doc:
               "Per-request deadline in microseconds of simulated time; a request \
                past it stops retrying and reports a timeout.")
  in
  let no_governor =
    Arg.(value & flag
         & info [ "no-governor" ]
             ~doc:"Disable the overload governor (fixed admission cap, no serial \
                   fallback).")
  in
  let records =
    Arg.(value & opt (some int) None
         & info [ "records" ] ~docv:"N"
             ~doc:
               "KV services: preloaded key count (default 1024). Small values \
                concentrate contention — the negative-test fixtures use them to \
                make broken hardware observable quickly.")
  in
  let ablate =
    Arg.(value & opt_all string []
         & info [ "ablate" ] ~docv:"WHAT"
             ~doc:
               "Broken-hardware ablation (repeatable): $(b,resolve) disables ASF \
                conflict detection, $(b,rollback) disables abort rollback. \
                Negative-test fixtures for $(b,--check=lin); such runs are \
                expected to fail.")
  in
  let sweep =
    Arg.(value & opt (some string) None
         & info [ "sweep" ] ~docv:"MULTS"
             ~doc:
               "Comma-separated capacity multipliers (e.g. 0.5,0.9,1.2,2): measure \
                capacity, run one Poisson experiment per multiplier, and print the \
                throughput-vs-offered-load table with the detected knee.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run an open-system serving experiment (arrivals, deadlines, overload)")
    Term.(
      const run_serve $ service $ mode_arg $ threads_arg $ sockets_arg $ requests
      $ arrival $ gap $ load $ queue_cap $ deadline_us $ no_governor $ records
      $ ablate $ sweep $ seed_arg $ trace_arg $ trace_filter_arg $ check_arg
      $ check_json_arg $ faults_arg $ faults_seed_arg)

let analyze_cmd =
  let json =
    Arg.(value & opt string "ANALYZE_asf.json"
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Write the analysis artifact (summaries, verdicts, findings) to $(docv).")
  in
  let txns =
    Arg.(value & opt int 240
         & info [ "txns" ] ~docv:"N"
             ~doc:"Abstract transactions to explore per workload and seed.")
  in
  let no_xcheck =
    Arg.(value & flag
         & info [ "no-xcheck" ]
             ~doc:
               "Skip the runtime cross-validation (static verdicts against the \
                capacity-abort census of the workloads with a real twin).")
  in
  let workloads =
    Arg.(value & opt_all string []
         & info [ "w"; "workload" ] ~docv:"NAME"
             ~doc:"Analyze only $(docv) (repeatable; default: every stock workload).")
  in
  let fixtures =
    Arg.(value & flag
         & info [ "fixtures" ]
             ~doc:
               "Also analyze the deliberately broken fixtures (unsafe annotation, \
                over-capacity, restart hazard, reread-after-release); their \
                violations make the exit code non-zero by design.")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Statically analyze transaction footprints and annotations (Txstatic)")
    Term.(const run_analyze $ json $ seed_arg $ txns $ no_xcheck $ workloads $ fixtures)

let main_cmd =
  let doc =
    "Reproduce 'Evaluation of AMD's Advanced Synchronization Facility Within a \
     Complete Transactional Memory Stack' (EuroSys 2010)"
  in
  Cmd.group
    ~default:
      Term.(
        const (fun ids all quick seed csv list trace tfilter check cjson faults fseed
                   jobs ->
            repro ids all quick seed csv list trace tfilter check cjson faults fseed
              jobs)
        $ Arg.(value & opt_all string [] & info [ "e"; "experiment" ] ~docv:"ID")
        $ Arg.(value & flag & info [ "all" ])
        $ Arg.(value & flag & info [ "quick" ])
        $ seed_arg
        $ Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"DIR")
        $ Arg.(value & flag & info [ "list" ])
        $ trace_arg $ trace_filter_arg $ check_arg $ check_json_arg $ faults_arg
        $ faults_seed_arg $ jobs_arg)
    (Cmd.info "asf_bench" ~doc)
    [ repro_cmd; intset_cmd; stamp_cmd; analyze_cmd; serve_cmd ]

(* A first positional argument that is not (a prefix of) any known
   subcommand is a typo, not a request for the default `repro` run: say
   so explicitly and exit non-zero before cmdliner's generic error. *)
let known_subcommands = [ "repro"; "intset"; "stamp"; "analyze"; "serve"; "help" ]

let () =
  (match Array.to_list Sys.argv with
  | _ :: arg :: _
    when String.length arg > 0
         && arg.[0] <> '-'
         && not
              (List.exists
                 (fun c ->
                   String.length arg <= String.length c
                   && String.sub c 0 (String.length arg) = arg)
                 known_subcommands) ->
      Printf.eprintf
        "asf_bench: unknown subcommand %S\nusage: asf_bench [%s] [OPTION]…\n" arg
        (String.concat "|" known_subcommands);
      exit 2
  | _ -> ());
  exit (Cmd.eval' main_cmd)
