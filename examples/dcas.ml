(* The paper's Fig. 1: a double compare-and-swap built directly from the
   seven ASF instructions — the lock-free-programming use case ASF was
   originally designed for. This example uses the raw ASF ISA surface
   (no TM runtime): SPECULATE / LOCK MOV / COMMIT, with the architectural
   guarantee that a two-line transaction eventually succeeds.

   We use DCAS to move random amounts between two counters from four
   cores concurrently and verify that the pair stays consistent. *)

module Engine = Asf_engine.Engine
module Prng = Asf_engine.Prng
module Params = Asf_machine.Params
module Memsys = Asf_cache.Memsys
module Variant = Asf_core.Variant
module Asf = Asf_core.Asf

(* Fig. 1's semantics: atomically
     if [mem1] = cmp1 && [mem2] = cmp2
     then [mem1] <- new1; [mem2] <- new2; success
     else report the current values. *)
let dcas asf ~core ~mem1 ~mem2 ~cmp1 ~cmp2 ~new1 ~new2 =
  let rec attempt backoff =
    match
      Asf.speculate asf ~core;
      (* "JNZ retry" on abort is the exception handler below. *)
      let v1 = Asf.lock_load asf ~core mem1 in
      let v2 = Asf.lock_load asf ~core mem2 in
      if v1 = cmp1 && v2 = cmp2 then begin
        Asf.lock_store asf ~core mem1 new1;
        Asf.lock_store asf ~core mem2 new2;
        Asf.commit asf ~core;
        Ok ()
      end
      else begin
        Asf.commit asf ~core;
        Error (v1, v2)
      end
    with
    | result -> result
    | exception Asf.Aborted _ ->
        (* Contention: software back-off, then retry (the eventual-
           forward-progress guarantee covers this two-line region). *)
        Engine.elapse backoff;
        attempt (min (backoff * 2) 4096)
  in
  attempt 64

let () =
  let n_cores = 4 and moves = 200 in
  let engine = Engine.create ~n_cores () in
  let mem = Memsys.create Params.barcelona engine in
  let asf = Asf.create mem Variant.llb8 in
  (* Two counters on distinct cache lines. *)
  let a = 512 and b = 512 + 8 in
  Memsys.poke mem a 10_000;
  Memsys.poke mem b 0;
  for core = 0 to n_cores - 1 do
    Engine.spawn engine ~core (fun () ->
        let rng = Prng.create (core + 1) in
        let moved = ref 0 in
        while !moved < moves do
          let amount = 1 + Prng.int rng 9 in
          let cur_a = Asf.plain_load asf ~core a in
          let cur_b = Asf.plain_load asf ~core b in
          match
            dcas asf ~core ~mem1:a ~mem2:b ~cmp1:cur_a ~cmp2:cur_b
              ~new1:(cur_a - amount) ~new2:(cur_b + amount)
          with
          | Ok () -> incr moved
          | Error _ -> () (* someone else moved first; reread and retry *)
        done)
  done;
  Engine.run engine;
  let final_a = Memsys.peek mem a and final_b = Memsys.peek mem b in
  Printf.printf "Fig. 1 DCAS: %d cores x %d moves between two lines\n" n_cores moves;
  Printf.printf "  a=%d b=%d sum=%d (expected 10000)\n" final_a final_b (final_a + final_b);
  Printf.printf "  speculative regions: %d started, %d committed, %d aborted\n"
    (Asf.speculates asf) (Asf.commits asf)
    (Array.fold_left ( + ) 0 (Asf.aborts asf));
  assert (final_a + final_b = 10_000);
  print_endline "OK"
