#!/bin/sh
# Per-experiment allocation profile: runs the bench harness (quick
# configuration, sequential+parallel pass) and turns the per-experiment
# Gc deltas into CSV on stdout:
#
#   experiment,minor_words,major_words,invalidations,forwards,cross_socket_probes,probes,dir_high_water
#
# Usage: scripts/allocprof.sh [EXPERIMENT_IDS] [MINOR_WORDS_BUDGET]
#
#   EXPERIMENT_IDS      comma-separated ids passed to --only
#                       (default: the @perf-smoke set)
#   MINOR_WORDS_BUDGET  optional: also assert the summed sequential-pass
#                       minor words stay at or below this budget (the
#                       same gate @perf-smoke wires in via
#                       --max-minor-words); non-zero exit on breach.
set -eu
cd "$(dirname "$0")/.."

IDS="${1:-fig9,tab1,abl-wins,abl-backoff,abl-socket}"
BUDGET="${2:-0}"

dune build bench/main.exe 2>/dev/null

out=$(mktemp)
json=$(mktemp)
trap 'rm -f "$out" "$json"' EXIT

_build/default/bench/main.exe --quick --skip-bechamel --only "$IDS" \
  --out "$json" --csv "$(mktemp -d)" > "$out"

echo "experiment,minor_words,major_words,invalidations,forwards,cross_socket_probes,probes,dir_high_water"
# [alloc <id> minor_words=N major_words=N invalidations=N forwards=N
#  cross_socket_probes=N probes=N dir_high_water=N]
sed -n 's/^\[alloc \([^ ]*\) minor_words=\([0-9]*\) major_words=\([0-9]*\) invalidations=\([0-9]*\) forwards=\([0-9]*\) cross_socket_probes=\([0-9]*\) probes=\([0-9]*\) dir_high_water=\([0-9]*\)\]$/\1,\2,\3,\4,\5,\6,\7,\8/p' \
  "$out"

total=$(sed -n 's/^\[alloc [^ ]* minor_words=\([0-9]*\) .*/\1/p' "$out" \
  | awk '{ s += $1 } END { printf "%d", s }')
echo "total,$total,,,,,,"

if [ "$BUDGET" -gt 0 ] 2>/dev/null; then
  if [ "$total" -gt "$BUDGET" ]; then
    echo "allocprof: FAIL: $total minor words > budget $BUDGET" >&2
    exit 1
  fi
  echo "allocprof: ok ($total minor words <= budget $BUDGET)" >&2
fi
