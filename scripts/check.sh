#!/bin/sh
# Tier-1 verification: full build (libraries, executables, examples,
# benches) followed by the complete test suite and the Txcheck smoke
# runs (one intset + one STAMP configuration per execution mode, each
# under --check; any violated TM guarantee fails the run). Run from the
# repo root.
set -eu
cd "$(dirname "$0")/.."

dune build @all
dune runtest

BENCH=_build/default/bin/asf_bench.exe
for mode in llb256 stm phased; do
  echo "checker smoke: intset rb-tree / $mode"
  "$BENCH" intset -s rb-tree -r 256 -u 20 -t 4 --txns 200 -m "$mode" \
    --check > /dev/null
  echo "checker smoke: stamp kmeans / $mode"
  "$BENCH" stamp -a kmeans-low -m "$mode" -t 4 --scale 0.2 --check > /dev/null
done
dune build @check
echo "check.sh: build, tests, and checker smoke runs OK"
