#!/bin/sh
# Tier-1 verification: full build (libraries, executables, examples,
# benches) followed by the complete test suite and the Txcheck smoke
# runs (one intset + one STAMP configuration per execution mode, each
# under --check; any violated TM guarantee fails the run). Run from the
# repo root.
set -eu
cd "$(dirname "$0")/.."

dune build @all
dune runtest

BENCH=_build/default/bin/asf_bench.exe
for mode in llb256 stm phased; do
  echo "checker smoke: intset rb-tree / $mode"
  "$BENCH" intset -s rb-tree -r 256 -u 20 -t 4 --txns 200 -m "$mode" \
    --check > /dev/null
  echo "checker smoke: stamp kmeans / $mode"
  "$BENCH" stamp -a kmeans-low -m "$mode" -t 4 --scale 0.2 --check > /dev/null
done
dune build @check

# Static transaction analysis: Txstatic over every stock workload model,
# cross-validated against the runtime capacity-abort census. An unsafe
# annotation, restart hazard, release misuse, or a static-fits/
# runtime-abort contradiction fails the build.
dune build @analyze

# Fault-injection soak matrix: every named plan over intset + STAMP,
# each under --check; correctness violations or a watchdog livelock
# (exit 3) fail the build.
dune build @soak

# Open-system serving smoke: Poisson + 2.5x overload + fault-storm
# overload, the latter two each run twice and compared byte-for-byte;
# invariant failures, partition violations or a livelock fail the build.
dune build @serve-smoke

# Linearizability-oracle smoke: Txlin (--check=lin) over clean underload
# + 2.5x overload on every service + a storm overload, plus the
# byte-identity proof that recording/checking never perturbs the run.
# The deeper @lin-soak matrix (storm/stall/spurious x kv + ledger, each
# doubled and compared) exists but is not part of this default gate; run
# `dune build @lin-soak` before touching lib/serve, lib/tm conflict
# handling, or the oracle itself.
dune build @lin-smoke

# Oracle negative fixtures: each of these runs a deliberately broken
# stack (a seeded lost-update fault plan, conflict resolution disabled,
# rollback-on-abort disabled) and MUST exit non-zero with a conclusive
# non-linearizable verdict; a zero exit means the oracle went blind.
echo "lin negative fixture: kv-f / lostupdate plan"
if "$BENCH" serve --service kv-f -t 4 -n 300 --gap 200 --records 4 \
    --faults lostupdate --faults-seed 3 --check=lin > /dev/null 2>&1; then
  echo "check.sh: lin lostupdate fixture FAILED to report a violation" >&2
  exit 1
fi
echo "lin negative fixture: kv-f / --ablate rollback"
if "$BENCH" serve --service kv-f -t 4 -n 300 --gap 200 --records 4 \
    --ablate rollback --check=lin > /dev/null 2>&1; then
  echo "check.sh: lin rollback fixture FAILED to report a violation" >&2
  exit 1
fi
echo "lin negative fixture: kv-f / --ablate resolve"
if "$BENCH" serve --service kv-f -t 4 -n 400 --gap 60 --records 2 \
    --ablate resolve --check=lin > /dev/null 2>&1; then
  echo "check.sh: lin resolve fixture FAILED to report a violation" >&2
  exit 1
fi

# Benchmark-harness smoke: the quick reproduction at --jobs 2, with the
# harness asserting that the parallel pass is bit-identical to the
# sequential one and that the emitted benchmark JSON validates.
dune build @bench-smoke

# Scheduler-throughput smoke: quick bench over the single-thread-heavy
# experiments; prints seq cycles/sec + fusion ratio, asserts the
# seq vs --jobs 2 determinism contract and the minor-words allocation
# budget (see scripts/allocprof.sh for the per-experiment breakdown).
dune build @perf-smoke

# Big-topology smoke: 64-core / 4-socket fig4 slice + serve underload on
# the limited-pointer directory backend, each doubled and compared
# byte-for-byte.
dune build @scale-smoke

# Sharer-backend equivalence gate: identical paper-scale runs under the
# full-bitmask and the limited-pointer/coarse-vector directory backends
# must be byte-identical — at <= 62 cores the representations are
# observably equivalent (coarse-mode spurious probes only ever hit cores
# that hold nothing, which is a no-op).
echo "sharer-backend equivalence gate"
SH_A=$(mktemp)
SH_B=$(mktemp)
ASF_SHARERS=bitmask "$BENCH" stamp -a intruder -m llb256 -t 8 --sockets 2 \
  --scale 0.2 > "$SH_A"
ASF_SHARERS=limited "$BENCH" stamp -a intruder -m llb256 -t 8 --sockets 2 \
  --scale 0.2 > "$SH_B"
cmp "$SH_A" "$SH_B"
ASF_SHARERS=bitmask "$BENCH" intset -s rb-tree -r 1024 -u 20 -t 8 \
  --txns 300 -m llb8 > "$SH_A"
ASF_SHARERS=limited "$BENCH" intset -s rb-tree -r 1024 -u 20 -t 8 \
  --txns 300 -m llb8 > "$SH_B"
cmp "$SH_A" "$SH_B"
rm -f "$SH_A" "$SH_B"

# Watchdog negative fixture: under the livelock plan (permanent spurious
# aborts + a hanging serial-lock holder) the run MUST be ended by the
# progress watchdog with a non-zero exit; a zero exit means the watchdog
# never fired.
echo "watchdog negative fixture: intset / livelock plan"
if "$BENCH" intset -s rb-tree -r 64 -u 20 -t 2 --txns 50 \
    --faults=livelock --faults-seed=1 > /dev/null 2>&1; then
  echo "check.sh: watchdog negative fixture FAILED to fire" >&2
  exit 1
fi

echo "check.sh: build, tests, checker smoke, and fault soak runs OK"
