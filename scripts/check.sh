#!/bin/sh
# Tier-1 verification: full build (libraries, executables, examples,
# benches) followed by the complete test suite. Run from the repo root.
set -eu
cd "$(dirname "$0")/.."

dune build @all
dune runtest
echo "check.sh: build and tests OK"
