#!/bin/sh
# Tier-1 verification: full build (libraries, executables, examples,
# benches) followed by the complete test suite and the Txcheck smoke
# runs (one intset + one STAMP configuration per execution mode, each
# under --check; any violated TM guarantee fails the run). Run from the
# repo root.
set -eu
cd "$(dirname "$0")/.."

dune build @all
dune runtest

BENCH=_build/default/bin/asf_bench.exe
for mode in llb256 stm phased; do
  echo "checker smoke: intset rb-tree / $mode"
  "$BENCH" intset -s rb-tree -r 256 -u 20 -t 4 --txns 200 -m "$mode" \
    --check > /dev/null
  echo "checker smoke: stamp kmeans / $mode"
  "$BENCH" stamp -a kmeans-low -m "$mode" -t 4 --scale 0.2 --check > /dev/null
done
dune build @check

# Static transaction analysis: Txstatic over every stock workload model,
# cross-validated against the runtime capacity-abort census. An unsafe
# annotation, restart hazard, release misuse, or a static-fits/
# runtime-abort contradiction fails the build.
dune build @analyze

# Fault-injection soak matrix: every named plan over intset + STAMP,
# each under --check; correctness violations or a watchdog livelock
# (exit 3) fail the build.
dune build @soak

# Open-system serving smoke: Poisson + 2.5x overload + fault-storm
# overload, the latter two each run twice and compared byte-for-byte;
# invariant failures, partition violations or a livelock fail the build.
dune build @serve-smoke

# Benchmark-harness smoke: the quick reproduction at --jobs 2, with the
# harness asserting that the parallel pass is bit-identical to the
# sequential one and that the emitted benchmark JSON validates.
dune build @bench-smoke

# Scheduler-throughput smoke: quick bench over the single-thread-heavy
# experiments; prints seq cycles/sec + fusion ratio and asserts the
# seq vs --jobs 2 determinism contract.
dune build @perf-smoke

# Watchdog negative fixture: under the livelock plan (permanent spurious
# aborts + a hanging serial-lock holder) the run MUST be ended by the
# progress watchdog with a non-zero exit; a zero exit means the watchdog
# never fired.
echo "watchdog negative fixture: intset / livelock plan"
if "$BENCH" intset -s rb-tree -r 64 -u 20 -t 2 --txns 50 \
    --faults=livelock --faults-seed=1 > /dev/null 2>&1; then
  echo "check.sh: watchdog negative fixture FAILED to fire" >&2
  exit 1
fi

echo "check.sh: build, tests, checker smoke, and fault soak runs OK"
