module Prng = Asf_engine.Prng

type plan = {
  pname : string;
  spurious_bp : int;
  jitter_bp : int;
  capacity_bp : int;
  capacity_lines : int;
  tlb_flush_bp : int;
  page_unmap_bp : int;
  preempt_bp : int;
  preempt_cycles : int;
  serial_stall_bp : int;
  serial_stall_cycles : int;
  serial_hang : bool;
  lost_update_bp : int;
}

let none =
  {
    pname = "none";
    spurious_bp = 0;
    jitter_bp = 0;
    capacity_bp = 0;
    capacity_lines = 0;
    tlb_flush_bp = 0;
    page_unmap_bp = 0;
    preempt_bp = 0;
    preempt_cycles = 0;
    serial_stall_bp = 0;
    serial_stall_cycles = 0;
    serial_hang = false;
    lost_update_bp = 0;
  }

(* Rates are tuned against the per-opportunity frequency of each site: ASF
   operations and memory accesses are per-instruction frequent (rates stay
   in single-digit basis points), attempts and serial acquisitions are
   per-transaction rare (percent-scale rates). *)
let plan_table =
  [
    ("none", none);
    ( "jitter",
      {
        none with
        pname = "jitter";
        jitter_bp = 12;
        preempt_bp = 400;
        preempt_cycles = 9_000;
      } );
    ( "pagefaults",
      { none with pname = "pagefaults"; tlb_flush_bp = 60; page_unmap_bp = 15 } );
    ("spurious", { none with pname = "spurious"; spurious_bp = 20 });
    ( "capacity",
      { none with pname = "capacity"; capacity_bp = 1_200; capacity_lines = 4 } );
    ( "stall",
      {
        none with
        pname = "stall";
        serial_stall_bp = 4_000;
        serial_stall_cycles = 40_000;
      } );
    ( "storm",
      {
        pname = "storm";
        spurious_bp = 20;
        jitter_bp = 12;
        capacity_bp = 1_200;
        capacity_lines = 4;
        tlb_flush_bp = 60;
        page_unmap_bp = 15;
        preempt_bp = 400;
        preempt_cycles = 9_000;
        serial_stall_bp = 4_000;
        serial_stall_cycles = 40_000;
        serial_hang = false;
        lost_update_bp = 0;
      } );
    ( "livelock",
      { none with pname = "livelock"; spurious_bp = 10_000; serial_hang = true } );
    (* Correctness-violating by design: drops committed transactional
       stores on the floor. Deliberately NOT folded into storm — storm is
       the worst *correct* weather, and the soak matrices assert that runs
       under it stay linearizable. *)
    ("lostupdate", { none with pname = "lostupdate"; lost_update_bp = 300 });
  ]

let plan_names = List.map fst plan_table

let merge a b =
  {
    pname = (if a.pname = "none" then b.pname
             else if b.pname = "none" then a.pname
             else a.pname ^ "+" ^ b.pname);
    spurious_bp = max a.spurious_bp b.spurious_bp;
    jitter_bp = max a.jitter_bp b.jitter_bp;
    capacity_bp = max a.capacity_bp b.capacity_bp;
    capacity_lines =
      (* The throttle that bites is the *smaller* non-zero one. *)
      (match (a.capacity_lines, b.capacity_lines) with
      | 0, n | n, 0 -> n
      | m, n -> min m n);
    tlb_flush_bp = max a.tlb_flush_bp b.tlb_flush_bp;
    page_unmap_bp = max a.page_unmap_bp b.page_unmap_bp;
    preempt_bp = max a.preempt_bp b.preempt_bp;
    preempt_cycles = max a.preempt_cycles b.preempt_cycles;
    serial_stall_bp = max a.serial_stall_bp b.serial_stall_bp;
    serial_stall_cycles = max a.serial_stall_cycles b.serial_stall_cycles;
    serial_hang = a.serial_hang || b.serial_hang;
    lost_update_bp = max a.lost_update_bp b.lost_update_bp;
  }

(* Edit distance for the plan-typo suggestion: full Levenshtein is
   overkill for a ten-entry table, but nothing simpler distinguishes
   "strom" -> storm from "strom" -> stall. *)
let edit_distance a b =
  let la = String.length a and lb = String.length b in
  let row = Array.init (lb + 1) Fun.id in
  for i = 1 to la do
    let prev_diag = ref row.(0) in
    row.(0) <- i;
    for j = 1 to lb do
      let d = !prev_diag + if a.[i - 1] = b.[j - 1] then 0 else 1 in
      prev_diag := row.(j);
      row.(j) <- min d (1 + min row.(j) row.(j - 1))
    done
  done;
  row.(lb)

let suggest_plan name =
  let lower = String.lowercase_ascii name in
  let best =
    List.fold_left
      (fun acc cand ->
        let d = edit_distance lower cand in
        match acc with Some (_, bd) when bd <= d -> acc | _ -> Some (cand, d))
      None plan_names
  in
  match best with
  | Some (cand, d) when d <= max 1 (String.length cand / 3) -> Some cand
  | _ -> None

let plan_of_spec spec =
  let names =
    String.split_on_char ',' spec |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  if names = [] then Ok none
  else
    List.fold_left
      (fun acc name ->
        match acc with
        | Error _ as e -> e
        | Ok p -> (
            match List.assoc_opt name plan_table with
            | Some q -> Ok (merge p q)
            | None ->
                Error
                  (Printf.sprintf "unknown fault plan %S%s (valid: %s)" name
                     (match suggest_plan name with
                     | Some s -> Printf.sprintf " — did you mean %S?" s
                     | None -> "")
                     (String.concat ", " plan_names))))
      (Ok none) names

let plan_is_none p = { p with pname = "none" } = none

(* ------------------------------------------------------------------ *)
(* Instances                                                            *)
(* ------------------------------------------------------------------ *)

(* Injection sites, in reporting order. *)
let site_spurious = 0

let site_jitter = 1

let site_capacity = 2

let site_tlb_flush = 3

let site_page_unmap = 4

let site_preempt = 5

let site_serial_stall = 6

let site_lost_update = 7

let n_sites = 8

let site_names =
  [|
    "spurious-abort"; "timer-jitter"; "capacity-throttle"; "tlb-flush";
    "page-unmap"; "preempt-stall"; "serial-stall"; "lost-update";
  |]

type t = {
  enabled : bool;
  plan : plan;
  seed : int;
  streams : (int, Prng.t) Hashtbl.t;  (** keyed by [core * n_sites + site] *)
  hits : int array;
}

let make ~enabled ~seed plan =
  { enabled; plan; seed; streams = Hashtbl.create 64; hits = Array.make n_sites 0 }

let null = make ~enabled:false ~seed:0 none

let create ?(seed = 1) plan = make ~enabled:true ~seed plan

let plan t = t.plan

let seed t = t.seed

(* Restore the [create] state in place: dropping the lazily built
   per-(site, core) streams is enough, because each stream's state is a
   pure function of (seed, site, core) and re-derives identically on next
   use. Lets the pool workers reuse one cached injector across cells. *)
let reset t =
  Hashtbl.reset t.streams;
  Array.fill t.hits 0 n_sites 0

let enabled t = t.enabled

(* Domain-local, like the tracer: each pool worker domain installs its
   own per-cell injector (same plan and seed), so injection streams and
   hit counters are never shared across domains. *)
let global = Domain.DLS.new_key (fun () -> null)

let install t = Domain.DLS.set global t

let uninstall () = Domain.DLS.set global null

let installed () = Domain.DLS.get global

(* Per-(site, core) stream: jump the root SplitMix64 sequence to the
   (site, core) index and split — each stream's initial state goes through
   the full 64-bit finalizer, so streams are pairwise decorrelated and one
   site's draw count never shifts another's sequence. *)
let stream t ~site ~core =
  let key = (core * n_sites) + site in
  match Hashtbl.find_opt t.streams key with
  | Some g -> g
  | None ->
      let root = Prng.create t.seed in
      for _ = 0 to key do
        ignore (Prng.next64 root)
      done;
      let g = Prng.split root in
      Hashtbl.add t.streams key g;
      g

let hit t ~site ~core bp =
  t.enabled && bp > 0
  && Prng.int (stream t ~site ~core) 10_000 < bp
  && begin
       t.hits.(site) <- t.hits.(site) + 1;
       true
     end

let spurious_abort t ~core = hit t ~site:site_spurious ~core t.plan.spurious_bp

let timer_jitter t ~core = hit t ~site:site_jitter ~core t.plan.jitter_bp

let capacity_throttle t ~core =
  if hit t ~site:site_capacity ~core t.plan.capacity_bp then
    Some t.plan.capacity_lines
  else None

let tlb_flush t ~core = hit t ~site:site_tlb_flush ~core t.plan.tlb_flush_bp

let page_unmap t ~core = hit t ~site:site_page_unmap ~core t.plan.page_unmap_bp

let preempt_stall t ~core =
  if hit t ~site:site_preempt ~core t.plan.preempt_bp then t.plan.preempt_cycles
  else 0

let serial_stall t ~core =
  if hit t ~site:site_serial_stall ~core t.plan.serial_stall_bp then
    t.plan.serial_stall_cycles
  else 0

let lost_update t ~core =
  hit t ~site:site_lost_update ~core t.plan.lost_update_bp

let serial_hang t = t.enabled && t.plan.serial_hang

let counts t = Array.to_list (Array.mapi (fun i n -> (site_names.(i), n)) t.hits)

let total t = Array.fold_left ( + ) 0 t.hits

(* Census merging for the parallel cell runner: [hits] snapshots one
   injector's per-site counts, [absorb] adds them into another's. The sum
   is order-independent, so the merged census does not depend on which
   domain ran which cell. *)
let hits t = Array.copy t.hits

let absorb t hits =
  Array.iteri (fun site n -> t.hits.(site) <- t.hits.(site) + n) hits
