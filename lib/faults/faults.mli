(** Faultline: seeded, fully deterministic fault injection.

    The paper's environment is hostile by design: regions abort on timer
    interrupts, system calls and page faults, the specification permits
    {e spurious} aborts and transient capacity reductions, and the
    runtime's only safety net is the serial-irrevocable fallback. This
    subsystem adversarially exercises that machinery by perturbing the
    stack through its existing hook points:

    - {e timer-interrupt jitter} and {e per-core preemption stalls}
      (delivered through the engine clock by the TM runtime),
    - {e injected minor page faults} and {e TLB shootdowns} (the memory
      system unmaps / flushes translations, so the real fault path runs),
    - {e spurious region aborts} and {e transient capacity reduction}
      (the ASF core's injection entry points),
    - {e serial-lock-holder stalls} (the TM runtime stalls while holding
      the serial-irrevocable lock).

    Every injection decision is drawn from a per-(site, core) SplitMix64
    stream derived from one seed, and injection sites are visited in the
    deterministic engine order — so a failure under plan [p] with seed
    [s] reproduces bit-identically from [(p, s)], unlike wall-clock chaos
    testing. An installed instance with all-zero rates performs no draws
    and no injections: its runs are bit-identical to uninjected ones.

    Like {!Asf_trace.Trace} and the checking layer, an instance is
    {!install}ed globally and picked up by every simulated system created
    afterwards; the shared {!null} instance (all rates zero, disabled)
    makes the uninstalled hot path one field check. *)

(** {1 Plans} *)

type plan = {
  pname : string;  (** plan name, ["a+b"] after a merge *)
  spurious_bp : int;
      (** basis points (1/100 %) per ASF operation: doom the region with a
          spec-permitted spurious abort *)
  jitter_bp : int;
      (** basis points per ASF operation: an extra timer interrupt lands
          inside the region (dooms it with [Abort.Interrupt]) *)
  capacity_bp : int;
      (** basis points per region start: run this region with a
          transiently reduced LLB capacity *)
  capacity_lines : int;  (** the reduced capacity, in lines *)
  tlb_flush_bp : int;
      (** basis points per memory access: TLB shootdown — all cores'
          cached translations of the page are invalidated (extra page
          walks, no fault) *)
  page_unmap_bp : int;
      (** basis points per memory access: the page is unmapped, so the
          next touch takes a minor page fault (aborting an in-flight
          region; serviced by the OS outside regions) *)
  preempt_bp : int;
      (** basis points per transaction attempt: the core is preempted
          before the attempt starts *)
  preempt_cycles : int;  (** length of a preemption stall *)
  serial_stall_bp : int;
      (** basis points per serial-lock acquisition: the holder stalls
          while every other core waits *)
  serial_stall_cycles : int;  (** length of a holder stall *)
  serial_hang : bool;
      (** negative fixture: the serial-lock holder never proceeds; the
          only way such a run ends is the TM runtime's progress watchdog *)
  lost_update_bp : int;
      (** negative fixture: basis points per in-transaction store — the
          store is silently dropped (lying hardware), so a committed
          transaction's effect never reaches memory. Correctness-violating
          by design: exists so the linearizability oracle has something to
          catch, and deliberately excluded from [storm]. *)
}

val none : plan
(** All rates zero. *)

val plan_names : string list
(** The named plans: [none], [jitter] (preemption stalls + in-region
    timer interrupts), [pagefaults] (page unmaps + TLB shootdowns),
    [spurious] (spec-permitted spurious aborts), [capacity] (transient
    LLB capacity reduction), [stall] (serial-lock-holder stalls),
    [storm] (all of the above), [livelock] (the watchdog negative
    fixture: permanent spurious aborts plus a hanging serial holder), and
    [lostupdate] (the linearizability negative fixture: transactional
    stores silently dropped — {e not} part of [storm], which must stay
    correctness-preserving). *)

val plan_of_spec : string -> (plan, string) result
(** Parse a comma-separated list of plan names into their field-wise
    merge (max of each rate, or of flags), e.g. ["jitter,capacity"].
    [Error] names the unknown plan, lists the valid {!plan_names}, and —
    when the typo is within edit distance of a real plan — appends a
    "did you mean" suggestion. *)

val plan_is_none : plan -> bool
(** No injection site has a non-zero rate (and no hang): installing such
    a plan is equivalent to not installing one. *)

(** {1 Instances} *)

type t

val null : t
(** The shared disabled instance: {!enabled} is [false], every draw is a
    no-injection without consuming randomness. *)

val create : ?seed:int -> plan -> t
(** A fresh injector for [plan]. All draws derive from [seed]
    (default 1): per injection site and per core, an independent
    SplitMix64 stream is split off a root stream jumped to the
    (site, core) index, so one site's draws never perturb another's. *)

val plan : t -> plan

val seed : t -> int

val enabled : t -> bool
(** [false] only for {!null}; layers gate their injection sites on this
    so the uninstalled cost is one field check. *)

(** {1 Global installation} *)

val install : t -> unit
(** Make [t] the instance picked up by systems created afterwards
    (mirrors {!Asf_trace.Trace.install}). *)

val uninstall : unit -> unit

val installed : unit -> t
(** The installed instance, or {!null}. *)

(** {1 Draw sites}

    Each returns the injection decision for one opportunity and counts
    hits. A zero rate returns immediately without drawing, so adding an
    injection site to a layer cannot change the stream seen by plans
    that do not use it. *)

val spurious_abort : t -> core:int -> bool

val timer_jitter : t -> core:int -> bool

val capacity_throttle : t -> core:int -> int option
(** [Some lines] — run the region that is starting with its LLB limited
    to [lines] entries. *)

val tlb_flush : t -> core:int -> bool

val page_unmap : t -> core:int -> bool

val preempt_stall : t -> core:int -> int
(** Stall cycles to charge before the attempt ([0] = no injection). *)

val serial_stall : t -> core:int -> int
(** Stall cycles for the serial-lock holder ([0] = no injection). *)

val lost_update : t -> core:int -> bool
(** [true] — silently drop the in-transaction store that is about to
    execute (the [lostupdate] negative fixture). *)

val serial_hang : t -> bool
(** The [livelock] fixture flag (not a draw). *)

(** {1 Reporting} *)

val counts : t -> (string * int) list
(** Injections performed so far, per site, in a fixed order; sites with
    zero hits included. *)

val total : t -> int

(** {1 Census merging}

    For the parallel cell runner: each cell runs with its own injector,
    and the per-site hit counts are summed back into the main instance in
    cell order. *)

val hits : t -> int array
(** Snapshot of the per-site injection counts, in {!counts} order. *)

val absorb : t -> int array -> unit
(** Add a {!hits} snapshot into this instance's counters. *)

val reset : t -> unit
(** Return the injector to its just-{!create}d state (same plan and seed,
    no draws, zero hit counts) without allocating a new instance; the next
    draw on any (site, core) stream yields exactly what a fresh injector
    would. The pool workers reset one cached injector between cells. *)
