(** Transaction-level structured tracing.

    A zero-cost-when-disabled event layer: every simulator layer (engine,
    ASF core, TM runtime, STM, memory system) emits typed events into a
    per-core bounded ring buffer, each stamped with (run, core, cycle,
    tx-attempt id). This is the visibility the paper's authors had through
    PTLsim-ASF's pipeline traces: {i why} an individual transaction
    aborted, which cache line conflicted, when a core fell back to
    serial-irrevocable mode, and how long it backed off.

    Emission never advances simulated time, so enabling tracing cannot
    change any experiment number; when no tracer is installed the cost of
    an emission point is a single mutable-field check on the shared
    {!null} tracer.

    Two sinks are provided: a Chrome [trace-event] JSON exporter (one lane
    per simulated core, one process per simulated system/run — openable in
    [chrome://tracing] or Perfetto) and a CSV exporter, plus per-kind
    event counts for summary tables. *)

(** {1 Events} *)

type payload =
  | Tx_begin  (** a transaction attempt starts (hardware, STM, or serial) *)
  | Tx_commit of { serial : bool }
  | Tx_abort of { abort_class : string; addr : int option }
      (** [abort_class] is {!Asf_core.Abort.class_name}; [addr] is the
          base address of the conflicting / displaced cache line when the
          hardware knows it (contention and capacity aborts). *)
  | Probe_rollback of { requester : int; line_addr : int }
      (** emitted on the victim's lane when a requester-wins coherence
          probe from [requester] dooms its region over [line_addr] *)
  | Fallback_enter  (** entering serial-irrevocable mode *)
  | Fallback_exit
  | Backoff of { cycles : int }  (** contention back-off of [cycles] *)
  | Cache_evict of { level : string; line_addr : int }
      (** eviction that displaced a speculatively tracked line *)
  | Fault_service of { page : int }  (** OS services a page fault *)
  | Stm_rollback of { reads : int; writes : int }
      (** TinySTM validation/contention rollback with read/write-set sizes *)
  | Thread_spawn
  | Thread_finish
  | Thread_resume
      (** scheduler resumes a core after an [Elapse]; very hot, excluded
          from the default filter *)
  | Check_violation of { check : string; line_addr : int option }
      (** the {!Asf_check} subsystem flagged an invariant violation
          ([check] names it, e.g. ["strong-isolation"]) at [line_addr] *)
  | Fault_inject of { kind : string }
      (** the fault-injection layer perturbed the run here ([kind] is the
          injection site, e.g. ["spurious-abort"], ["page-unmap"],
          ["serial-stall"], or the watchdog escalation ["forced-serial"]) *)

type event = {
  run : int;  (** simulated system id ([run_start] increments) *)
  core : int;
  cycle : int;  (** the core's local clock at emission *)
  attempt : int;  (** globally unique tx-attempt id; 0 outside attempts *)
  seq : int;  (** global emission order *)
  payload : payload;
}

val kind_name : payload -> string
(** Constructor name, e.g. ["Tx_abort"] — the event name in both sinks. *)

val filter_names : string list
(** Valid [filter] elements: [begin], [commit], [abort], [probe],
    [fallback], [backoff], [evict], [fault], [stm], [spawn], [finish],
    [resume], [check], [inject]. *)

(** {1 Tracers} *)

type t

val null : t
(** The shared disabled tracer: emission on it is one field check. *)

val create : ?capacity_per_core:int -> ?filter:string list -> unit -> t
(** A fresh enabled tracer. [capacity_per_core] bounds each core's ring
    (default 16384; oldest events are dropped and counted). [filter]
    selects event kinds by {!filter_names}; the default is every kind
    except [resume]. Raises [Invalid_argument] on an unknown name. *)

val enabled : t -> bool

val set_enabled : t -> bool -> unit

val install : t -> unit
(** Make [t] the global tracer picked up by systems created afterwards
    ({!Asf_engine.Engine.create}, {!Asf_cache.Memsys.create}, ...). *)

val uninstall : unit -> unit
(** Restore the {!null} tracer. *)

val installed : unit -> t

val run_start : t -> unit
(** Begin a new simulated system: bumps the run id (the Chrome [pid])
    and resets per-core attempt tracking. *)

val emit : t -> core:int -> cycle:int -> payload -> unit
(** Record an event. [Tx_begin] allocates a fresh attempt id for [core];
    subsequent events on that core carry it. No-op when disabled or when
    the kind is filtered out. *)

(** {1 Reading} *)

val events : t -> event list
(** All retained events in emission order. *)

val core_events : t -> core:int -> event list
(** Retained events of one core, in emission (= cycle) order. *)

val counts : t -> (string * int) list
(** Emitted events per kind (counted even when the ring later dropped
    them), in taxonomy order. *)

val dropped : t -> int
(** Events lost to ring-buffer bounds. *)

(** {1 Sinks} *)

val chrome_json : t -> string
(** Chrome trace-event JSON: one instant event per retained event
    ([tid] = core, [pid] = run) plus one complete ("X") span per
    reconstructed transaction attempt. *)

val csv : t -> string
(** [run,core,cycle,attempt,event,detail] rows. *)

val write_chrome_json : t -> string -> unit

val write_csv : t -> string -> unit
