type payload =
  | Tx_begin
  | Tx_commit of { serial : bool }
  | Tx_abort of { abort_class : string; addr : int option }
  | Probe_rollback of { requester : int; line_addr : int }
  | Fallback_enter
  | Fallback_exit
  | Backoff of { cycles : int }
  | Cache_evict of { level : string; line_addr : int }
  | Fault_service of { page : int }
  | Stm_rollback of { reads : int; writes : int }
  | Thread_spawn
  | Thread_finish
  | Thread_resume
  | Check_violation of { check : string; line_addr : int option }
  | Fault_inject of { kind : string }

type event = {
  run : int;
  core : int;
  cycle : int;
  attempt : int;
  seq : int;
  payload : payload;
}

let n_kinds = 15

let kind_index = function
  | Tx_begin -> 0
  | Tx_commit _ -> 1
  | Tx_abort _ -> 2
  | Probe_rollback _ -> 3
  | Fallback_enter -> 4
  | Fallback_exit -> 5
  | Backoff _ -> 6
  | Cache_evict _ -> 7
  | Fault_service _ -> 8
  | Stm_rollback _ -> 9
  | Thread_spawn -> 10
  | Thread_finish -> 11
  | Thread_resume -> 12
  | Check_violation _ -> 13
  | Fault_inject _ -> 14

let kind_names =
  [|
    "Tx_begin"; "Tx_commit"; "Tx_abort"; "Probe_rollback"; "Fallback_enter";
    "Fallback_exit"; "Backoff"; "Cache_evict"; "Fault_service"; "Stm_rollback";
    "Thread_spawn"; "Thread_finish"; "Thread_resume"; "Check_violation";
    "Fault_inject";
  |]

let kind_name p = kind_names.(kind_index p)

(* CLI-facing filter vocabulary; one name may cover several kinds
   (enter/exit pairs). *)
let filter_table =
  [
    ("begin", [ 0 ]);
    ("commit", [ 1 ]);
    ("abort", [ 2 ]);
    ("probe", [ 3 ]);
    ("fallback", [ 4; 5 ]);
    ("backoff", [ 6 ]);
    ("evict", [ 7 ]);
    ("fault", [ 8 ]);
    ("stm", [ 9 ]);
    ("spawn", [ 10 ]);
    ("finish", [ 11 ]);
    ("resume", [ 12 ]);
    ("check", [ 13 ]);
    ("inject", [ 14 ]);
  ]

let filter_names = List.map fst filter_table

(* Everything except the per-Elapse scheduler resumptions, which would
   drown the transaction-level signal. *)
let default_filter () =
  let f = Array.make n_kinds true in
  f.(12) <- false;
  f

let filter_of_names names =
  let f = Array.make n_kinds false in
  List.iter
    (fun name ->
      match List.assoc_opt (String.trim name) filter_table with
      | Some kinds -> List.iter (fun k -> f.(k) <- true) kinds
      | None ->
          invalid_arg
            (Printf.sprintf "Trace: unknown event filter %S (valid: %s)" name
               (String.concat ", " filter_names)))
    names;
  f

(* Bounded per-core ring: a full ring overwrites (and counts) the oldest
   event, so a trace always holds the most recent window. *)
type ring = {
  buf : event array;
  mutable start : int;
  mutable len : int;
  mutable dropped : int;
}

let dummy_event =
  { run = 0; core = 0; cycle = 0; attempt = 0; seq = 0; payload = Tx_begin }

let ring_create capacity =
  { buf = Array.make capacity dummy_event; start = 0; len = 0; dropped = 0 }

let ring_push r ev =
  let cap = Array.length r.buf in
  if r.len < cap then begin
    r.buf.((r.start + r.len) mod cap) <- ev;
    r.len <- r.len + 1
  end
  else begin
    r.buf.(r.start) <- ev;
    r.start <- (r.start + 1) mod cap;
    r.dropped <- r.dropped + 1
  end

let ring_to_list r =
  let cap = Array.length r.buf in
  List.init r.len (fun i -> r.buf.((r.start + i) mod cap))

type t = {
  mutable enabled : bool;
  capacity : int;
  filter : bool array;
  mutable rings : ring option array;  (* indexed by core, grown on demand *)
  mutable attempt_of_core : int array;
  mutable run : int;
  mutable next_attempt : int;
  mutable seq : int;
  counts : int array;
}

let make ~enabled ~capacity ~filter =
  {
    enabled;
    capacity;
    filter;
    rings = Array.make 8 None;
    attempt_of_core = Array.make 8 0;
    run = 0;
    next_attempt = 0;
    seq = 0;
    counts = Array.make n_kinds 0;
  }

let null = make ~enabled:false ~capacity:1 ~filter:(Array.make n_kinds false)

let create ?(capacity_per_core = 16384) ?filter () =
  if capacity_per_core <= 0 then
    invalid_arg "Trace.create: capacity_per_core must be positive";
  let filter =
    match filter with None -> default_filter () | Some names -> filter_of_names names
  in
  make ~enabled:true ~capacity:capacity_per_core ~filter

let enabled t = t.enabled

let set_enabled t v = t.enabled <- v

(* The installed tracer is domain-local: a tracer installed on the main
   domain is never observed (or mutated) by pool worker domains, whose
   cells see the null tracer instead — the parallel cell runner degrades
   to sequential whenever a tracer is installed, so no events are lost. *)
let global = Domain.DLS.new_key (fun () -> null)

let install t = Domain.DLS.set global t

let uninstall () = Domain.DLS.set global null

let installed () = Domain.DLS.get global

let ensure_core t core =
  let n = Array.length t.rings in
  if core >= n then begin
    let n' = max (core + 1) (2 * n) in
    let rings = Array.make n' None in
    Array.blit t.rings 0 rings 0 n;
    t.rings <- rings;
    let ids = Array.make n' 0 in
    Array.blit t.attempt_of_core 0 ids 0 n;
    t.attempt_of_core <- ids
  end;
  match t.rings.(core) with
  | Some r -> r
  | None ->
      let r = ring_create t.capacity in
      t.rings.(core) <- Some r;
      r

let run_start t =
  if t.enabled then begin
    t.run <- t.run + 1;
    Array.fill t.attempt_of_core 0 (Array.length t.attempt_of_core) 0
  end

let emit t ~core ~cycle payload =
  if t.enabled then begin
    (* Attempt ids advance even when Tx_begin itself is filtered out, so
       every retained event carries the right attempt. *)
    (match payload with
    | Tx_begin ->
        if core >= Array.length t.attempt_of_core then ignore (ensure_core t core);
        t.next_attempt <- t.next_attempt + 1;
        t.attempt_of_core.(core) <- t.next_attempt
    | _ -> ());
    let k = kind_index payload in
    if t.filter.(k) then begin
      let r = ensure_core t core in
      t.counts.(k) <- t.counts.(k) + 1;
      t.seq <- t.seq + 1;
      ring_push r
        {
          run = t.run;
          core;
          cycle;
          attempt = t.attempt_of_core.(core);
          seq = t.seq;
          payload;
        }
    end
  end

let core_events t ~core =
  if core < Array.length t.rings then
    match t.rings.(core) with Some r -> ring_to_list r | None -> []
  else []

let events t =
  Array.to_list t.rings
  |> List.concat_map (function Some r -> ring_to_list r | None -> [])
  |> List.sort (fun (a : event) (b : event) -> compare a.seq b.seq)

let counts t =
  List.init n_kinds (fun k -> (kind_names.(k), t.counts.(k)))

let dropped t =
  Array.fold_left
    (fun acc -> function Some r -> acc + r.dropped | None -> acc)
    0 t.rings

(* ------------------------------------------------------------------ *)
(* Sinks                                                                *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* args as (key, json-value) pairs *)
let args_of_payload = function
  | Tx_begin -> []
  | Tx_commit { serial } -> [ ("serial", string_of_bool serial) ]
  | Tx_abort { abort_class; addr } ->
      ("class", "\"" ^ json_escape abort_class ^ "\"")
      :: (match addr with Some a -> [ ("addr", string_of_int a) ] | None -> [])
  | Probe_rollback { requester; line_addr } ->
      [ ("requester", string_of_int requester); ("addr", string_of_int line_addr) ]
  | Fallback_enter | Fallback_exit -> []
  | Backoff { cycles } -> [ ("cycles", string_of_int cycles) ]
  | Cache_evict { level; line_addr } ->
      [ ("level", "\"" ^ json_escape level ^ "\""); ("addr", string_of_int line_addr) ]
  | Fault_service { page } -> [ ("page", string_of_int page) ]
  | Stm_rollback { reads; writes } ->
      [ ("reads", string_of_int reads); ("writes", string_of_int writes) ]
  | Thread_spawn | Thread_finish | Thread_resume -> []
  | Check_violation { check; line_addr } ->
      ("check", "\"" ^ json_escape check ^ "\"")
      :: (match line_addr with Some a -> [ ("addr", string_of_int a) ] | None -> [])
  | Fault_inject { kind } -> [ ("kind", "\"" ^ json_escape kind ^ "\"") ]

let detail_of_payload p =
  String.concat " "
    (List.map (fun (k, v) -> k ^ "=" ^ v) (args_of_payload p))

let add_json_event b ~first ~name ~ph ~extra ev args =
  if not !first then Buffer.add_string b ",\n";
  first := false;
  Buffer.add_string b
    (Printf.sprintf "{\"name\":\"%s\",\"cat\":\"asf\",\"ph\":\"%s\",\"ts\":%d,\"pid\":%d,\"tid\":%d%s"
       name ph ev.cycle ev.run ev.core extra);
  let args = ("attempt", string_of_int ev.attempt) :: args in
  Buffer.add_string b ",\"args\":{";
  Buffer.add_string b
    (String.concat "," (List.map (fun (k, v) -> "\"" ^ k ^ "\":" ^ v) args));
  Buffer.add_string b "}}"

let chrome_json t =
  let b = Buffer.create 65536 in
  Buffer.add_string b "{\"traceEvents\":[\n";
  let first = ref true in
  (* One instant event per retained event... *)
  let evs = events t in
  List.iter
    (fun ev ->
      add_json_event b ~first ~name:(kind_name ev.payload) ~ph:"i"
        ~extra:",\"s\":\"t\"" ev (args_of_payload ev.payload))
    evs;
  (* ...plus a complete-span ("X") event per reconstructed attempt, so
     chrome://tracing / Perfetto shows one transaction lane per core. *)
  let open_begin : (int * int, event) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (ev : event) ->
      let key = (ev.run, ev.core) in
      match ev.payload with
      | Tx_begin -> Hashtbl.replace open_begin key ev
      | Tx_commit _ | Tx_abort _ -> (
          match Hashtbl.find_opt open_begin key with
          | Some b0 when b0.attempt = ev.attempt ->
              Hashtbl.remove open_begin key;
              let outcome =
                match ev.payload with
                | Tx_commit { serial } -> if serial then "\"commit-serial\"" else "\"commit\""
                | Tx_abort { abort_class; _ } -> "\"abort:" ^ json_escape abort_class ^ "\""
                | _ -> assert false
              in
              add_json_event b ~first ~name:"tx" ~ph:"X"
                ~extra:(Printf.sprintf ",\"dur\":%d" (max 1 (ev.cycle - b0.cycle)))
                b0
                [ ("outcome", outcome) ]
          | _ -> ())
      | _ -> ())
    evs;
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ns\"}\n";
  Buffer.contents b

let csv t =
  let b = Buffer.create 65536 in
  Buffer.add_string b "run,core,cycle,attempt,event,detail\n";
  List.iter
    (fun (ev : event) ->
      Buffer.add_string b
        (Printf.sprintf "%d,%d,%d,%d,%s,%s\n" ev.run ev.core ev.cycle ev.attempt
           (kind_name ev.payload)
           (detail_of_payload ev.payload)))
    (events t);
  Buffer.contents b

let write_file path content =
  let oc = open_out path in
  output_string oc content;
  close_out oc

let write_chrome_json t path = write_file path (chrome_json t)

let write_csv t path = write_file path (csv t)
