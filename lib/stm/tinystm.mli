(** Word-based software transactional memory: a reimplementation of
    TinySTM 0.9.9 in write-through mode, the STM baseline of the paper's
    evaluation (Section 5).

    Algorithm (encounter-time locking, time-based validation):

    - a global version clock and an array of ownership records (orecs),
      hashed by cache line, both living in {e simulated} memory so every
      metadata access pays real cache/coherence costs;
    - transactional loads read the orec, the data word, and the orec again;
      a version newer than the snapshot triggers incremental revalidation
      of the read set ("timestamp extension") or an abort;
    - transactional stores acquire the orec with a CAS (suicide on
      conflict), log the old word, and write through to memory;
    - commit fetches-and-adds the clock, revalidates if needed, and
      releases orecs at the new version; aborts undo in reverse order.

    Aborts are delivered as {!Stm_abort}; the caller (the TM runtime's
    retry loop) handles back-off and re-execution. *)

exception Stm_abort of { orec : Asf_mem.Addr.t option }
(** [orec] is the conflicting ownership record when the STM knows it —
    the locked orec a load or store ran into, the CAS that lost an
    acquisition race, or the first read-set entry that failed validation.
    Parity with {!Asf_core.Asf.last_conflict}, so STM aborts trace and
    check with the same detail as hardware aborts. *)

type strategy =
  | Write_through
      (** encounter-time locking, in-place stores, undo log (the paper's
          baseline configuration) *)
  | Write_back
      (** encounter-time locking, stores buffered in a redo log that is
          replayed at commit; aborts are cheaper, loads must snoop the
          write log and commits pay the write-back *)

type costs = {
  start_cycles : int;  (** descriptor setup per attempt *)
  load_cycles : int;  (** bookkeeping instructions per transactional load *)
  store_cycles : int;
  commit_cycles : int;
  abort_cycles : int;
}

val default_costs : costs

type t

val create :
  ?costs:costs ->
  ?strategy:strategy ->
  ?orec_bits:int ->
  Asf_cache.Memsys.t ->
  Asf_mem.Alloc.t ->
  t
(** Allocates the orec table (2^[orec_bits] words, default 16) and the
    global clock in simulated memory, pre-mapped as a loaded STM library's
    data segment would be. [strategy] defaults to {!Write_through}. *)

val strategy : t -> strategy

type tx

val make_tx : t -> core:int -> tx
(** The per-thread transaction descriptor. *)

val start : tx -> unit

val load : tx -> Asf_mem.Addr.t -> int

val store : tx -> Asf_mem.Addr.t -> int -> unit

val commit : tx -> unit
(** @raise Stm_abort if final validation fails (state already undone). *)

val abort : tx -> 'a
(** Explicit abort: undo, release, raise {!Stm_abort}. *)

val active : tx -> bool

val last_conflict : tx -> Asf_mem.Addr.t option
(** The conflicting orec behind this descriptor's most recent abort, when
    known. Survives the abort; cleared at the next {!start}. *)

val read_set_size : tx -> int

val write_set_size : tx -> int

(** {1 Counters} *)

val starts : t -> int

val commits : t -> int

val aborts : t -> int

val extensions : t -> int

(** {1 Observation (checking layer)} *)

type observer_event =
  | Ev_start
  | Ev_read of Asf_mem.Addr.t  (** transactional load of the address *)
  | Ev_write of Asf_mem.Addr.t  (** transactional store to the address *)
  | Ev_commit
  | Ev_abort of Asf_mem.Addr.t option  (** conflicting orec, when known *)

val set_observer : t -> (core:int -> observer_event -> unit) option -> unit
(** Install (or clear) a passive observer of logical transaction events
    (internal orec/clock/redo-log traffic is not reported). Observers must
    not advance simulated time. *)
