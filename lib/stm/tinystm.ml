module Engine = Asf_engine.Engine
module Addr = Asf_mem.Addr
module Alloc = Asf_mem.Alloc
module Memsys = Asf_cache.Memsys
module Trace = Asf_trace.Trace

(* [orec] is the conflicting ownership record when the STM knows it —
   the locked orec a load/store ran into, the CAS that lost a race, or
   the first read-set entry that failed validation. Parity with
   [Asf.last_conflict] so STM aborts trace and check with the same
   detail as hardware aborts. *)
exception Stm_abort of { orec : Asf_mem.Addr.t option }

type strategy = Write_through | Write_back

(* Passive per-transaction observer for the checking layer: logical
   data-access and lifecycle events at address granularity (the internal
   orec/clock/redo-log traffic is not reported). Observers must not
   elapse simulated time. *)
type observer_event =
  | Ev_start
  | Ev_read of Asf_mem.Addr.t
  | Ev_write of Asf_mem.Addr.t
  | Ev_commit
  | Ev_abort of Asf_mem.Addr.t option  (** conflicting orec, when known *)

type costs = {
  start_cycles : int;
  load_cycles : int;
  store_cycles : int;
  commit_cycles : int;
  abort_cycles : int;
}

(* Instruction-overhead estimates for TinySTM's hot paths (beyond the
   memory traffic, which the simulator charges explicitly): an inlined
   stm_load is a few dozen instructions (orec hash, lock tests, read-log
   append), stores add undo logging and the CAS shadow work. *)
let default_costs =
  {
    start_cycles = 45;
    load_cycles = 26;
    store_cycles = 30;
    commit_cycles = 35;
    abort_cycles = 40;
  }

type t = {
  mem : Memsys.t;
  costs : costs;
  strategy : strategy;
  alloc : Alloc.t;
  orec_base : Addr.t;
  orec_mask : int;
  clock_addr : Addr.t;
  mutable starts : int;
  mutable commits : int;
  mutable aborts : int;
  mutable extensions : int;
  mutable observer : (core:int -> observer_event -> unit) option;
}

type read_entry = { orec : Addr.t; observed : int }

type undo_entry = { waddr : Addr.t; old_value : int }

type tx = {
  stm : t;
  core : int;
  mutable running : bool;
  mutable start_ts : int;
  mutable reads : read_entry list;
  mutable nreads : int;
  mutable undo : undo_entry list;
  mutable nwrites : int;
  (* orec address -> word observed before acquisition (even = version). *)
  owned : (Addr.t, int) Hashtbl.t;
  (* Write-back only: buffered values, their program order, and the
     simulated-memory redo log the buffering is charged against. *)
  wlog : (Addr.t, int) Hashtbl.t;
  mutable worder : Addr.t list;
  mutable log_base : Addr.t;
  log_capacity : int;
  (* The conflicting orec behind this descriptor's most recent abort,
     when known. Survives the abort; cleared at the next [start]. *)
  mutable last_conflict : Addr.t option;
}

let create ?(costs = default_costs) ?(strategy = Write_through) ?(orec_bits = 16) mem alloc =
  let n_orecs = 1 lsl orec_bits in
  let orec_base = Alloc.alloc alloc ~align:Addr.words_per_line n_orecs in
  let clock_addr = Alloc.alloc_lines alloc 1 in
  (* The STM library's data segment is mapped at load time: touching it
     must never page-fault during transactions. *)
  for i = 0 to n_orecs - 1 do
    Memsys.poke mem (orec_base + i) 0
  done;
  Memsys.poke mem clock_addr 0;
  {
    mem;
    costs;
    strategy;
    alloc;
    orec_base;
    orec_mask = n_orecs - 1;
    clock_addr;
    starts = 0;
    commits = 0;
    aborts = 0;
    extensions = 0;
    observer = None;
  }

let strategy t = t.strategy

let set_observer t f = t.observer <- f

let notify tx ev =
  match tx.stm.observer with Some f -> f ~core:tx.core ev | None -> ()

let make_tx t ~core =
  {
    stm = t;
    core;
    running = false;
    start_ts = 0;
    reads = [];
    nreads = 0;
    undo = [];
    nwrites = 0;
    owned = Hashtbl.create 64;
    wlog = Hashtbl.create 64;
    worder = [];
    log_base = 0;
    log_capacity = 512;
    last_conflict = None;
  }

(* Fibonacci-hash a line index into the orec table. *)
let orec_of tx addr =
  let line = Addr.line_of addr in
  tx.stm.orec_base + (line * 0x9E3779B1 lsr 8 land tx.stm.orec_mask)

let locked word = word land 1 = 1

let owner word = word lsr 1

let version word = word lsr 1

let locked_word core = (core lsl 1) lor 1

let version_word v = v lsl 1

let mem_load tx a = Memsys.load tx.stm.mem ~core:tx.core a

let mem_store tx a v = Memsys.store tx.stm.mem ~core:tx.core a v

let start tx =
  assert (not tx.running);
  tx.running <- true;
  tx.last_conflict <- None;
  tx.reads <- [];
  tx.nreads <- 0;
  tx.undo <- [];
  tx.nwrites <- 0;
  Hashtbl.reset tx.owned;
  Hashtbl.reset tx.wlog;
  tx.worder <- [];
  if tx.stm.strategy = Write_back && tx.log_base = 0 then
    tx.log_base <- Alloc.alloc tx.stm.alloc ~align:Addr.words_per_line tx.log_capacity;
  tx.stm.starts <- tx.stm.starts + 1;
  notify tx Ev_start;
  tx.start_ts <- mem_load tx tx.stm.clock_addr;
  Engine.elapse tx.stm.costs.start_cycles

(* Undo writes in reverse order, release owned orecs at their pre-
   acquisition version, and deliver the abort. Write-through means the
   undo log replays through memory, costing real stores. [conflict] is
   the orec behind the abort, when known. *)
let rollback ?conflict tx =
  List.iter (fun { waddr; old_value } -> mem_store tx waddr old_value) tx.undo;
  Hashtbl.iter (fun orec old_word -> mem_store tx orec old_word) tx.owned;
  tx.running <- false;
  tx.last_conflict <- conflict;
  tx.stm.aborts <- tx.stm.aborts + 1;
  notify tx (Ev_abort conflict);
  (let tr = Memsys.tracer tx.stm.mem in
   Trace.emit tr ~core:tx.core
     ~cycle:(Engine.core_time (Memsys.engine tx.stm.mem) tx.core)
     (Trace.Stm_rollback { reads = tx.nreads; writes = tx.nwrites }));
  Engine.elapse tx.stm.costs.abort_cycles

let abort_on ?conflict tx =
  rollback ?conflict tx;
  raise (Stm_abort { orec = conflict })

let abort tx = abort_on tx

(* Check that every logged read is still at its observed version (or is an
   orec this transaction now owns); returns the first stale orec. *)
let validate tx =
  List.find_opt
    (fun { orec; observed } ->
      let cur = mem_load tx orec in
      not
        (cur = observed
        || (locked cur && owner cur = tx.core && Hashtbl.mem tx.owned orec)))
    tx.reads
  |> Option.map (fun { orec; _ } -> orec)

(* Timestamp extension: the snapshot is stale but may still be consistent;
   revalidate the read set and move the snapshot forward. *)
let extend tx =
  let now = mem_load tx tx.stm.clock_addr in
  match validate tx with
  | None ->
      tx.stm.extensions <- tx.stm.extensions + 1;
      tx.start_ts <- now
  | Some stale -> abort_on ~conflict:stale tx

let load tx addr =
  assert tx.running;
  Engine.elapse tx.stm.costs.load_cycles;
  let orec = orec_of tx addr in
  let rec attempt tries =
    if tries = 0 then abort_on ~conflict:orec tx
    else begin
      let o1 = mem_load tx orec in
      if locked o1 then
        if owner o1 = tx.core && Hashtbl.mem tx.owned orec then begin
          notify tx (Ev_read addr);
          match Hashtbl.find_opt tx.wlog addr with
          | Some v ->
              (* Write-back: the buffered value shadows memory. *)
              Engine.elapse 4;
              v
          | None -> mem_load tx addr
        end
        else abort_on ~conflict:orec tx (* suicide contention management *)
      else begin
        let v = mem_load tx addr in
        let o2 = mem_load tx orec in
        if o1 <> o2 then attempt (tries - 1)
        else begin
          if version o1 > tx.start_ts then extend tx;
          tx.reads <- { orec; observed = o1 } :: tx.reads;
          tx.nreads <- tx.nreads + 1;
          notify tx (Ev_read addr);
          v
        end
      end
    end
  in
  attempt 64

(* After the orec is owned, effectuate one store according to the
   versioning strategy: write-through logs the old word and writes in
   place; write-back appends to the redo log (a sequential, cache-warm
   region of simulated memory). *)
let effectuate_store tx addr value =
  tx.nwrites <- tx.nwrites + 1;
  notify tx (Ev_write addr);
  match tx.stm.strategy with
  | Write_through ->
      let old_value = mem_load tx addr in
      tx.undo <- { waddr = addr; old_value } :: tx.undo;
      mem_store tx addr value
  | Write_back ->
      if not (Hashtbl.mem tx.wlog addr) then begin
        tx.worder <- addr :: tx.worder;
        let slot = (tx.nwrites - 1) land (tx.log_capacity - 1) in
        mem_store tx (tx.log_base + slot) value
      end;
      Hashtbl.replace tx.wlog addr value

let store tx addr value =
  assert tx.running;
  Engine.elapse tx.stm.costs.store_cycles;
  let orec = orec_of tx addr in
  if Hashtbl.mem tx.owned orec then effectuate_store tx addr value
  else begin
    let o = mem_load tx orec in
    if locked o then abort_on ~conflict:orec tx
    else begin
      if version o > tx.start_ts then extend tx;
      if not (Memsys.cas tx.stm.mem ~core:tx.core orec ~expect:o ~value:(locked_word tx.core))
      then abort_on ~conflict:orec tx
      else begin
        Hashtbl.replace tx.owned orec o;
        effectuate_store tx addr value
      end
    end
  end

let commit tx =
  assert tx.running;
  Engine.elapse tx.stm.costs.commit_cycles;
  if Hashtbl.length tx.owned = 0 then begin
    (* Read-only: the snapshot was consistent throughout. *)
    tx.running <- false;
    tx.stm.commits <- tx.stm.commits + 1;
    notify tx Ev_commit
  end
  else begin
    let ts = 1 + Memsys.faa tx.stm.mem ~core:tx.core tx.stm.clock_addr 1 in
    let stale = if ts > tx.start_ts + 1 then validate tx else None in
    match stale with
    | Some orec -> abort_on ~conflict:orec tx
    | None ->
        if tx.stm.strategy = Write_back then
          List.iter
            (fun addr -> mem_store tx addr (Hashtbl.find tx.wlog addr))
            (List.rev tx.worder);
        Hashtbl.iter (fun orec _ -> mem_store tx orec (version_word ts)) tx.owned;
        tx.running <- false;
        tx.stm.commits <- tx.stm.commits + 1;
        notify tx Ev_commit
  end

let active tx = tx.running

let last_conflict tx = tx.last_conflict

let read_set_size tx = tx.nreads

let write_set_size tx = tx.nwrites

let starts t = t.starts

let commits t = t.commits

let aborts t = t.aborts

let extensions t = t.extensions
