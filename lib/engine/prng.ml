type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let next64 g =
  g.state <- Int64.add g.state golden_gamma;
  let z = g.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split g = { state = next64 g }

let copy g = { state = g.state }

(* Reduce from the top bits: a fixed-point multiply of [n] by the high
   32 bits of the mixed state, i.e. floor (n * hi / 2^32). Unlike
   [v mod n] — which consumes the *low* bits of [v] — this makes the
   result's coarse value follow the state's most significant (and best
   mixed) bits. The truncation bias is at most [n / 2^32] per bucket,
   negligible for the [n] used here. *)
let int g n =
  assert (n > 0 && n <= 0x4000_0000);
  let hi = Int64.shift_right_logical (next64 g) 32 in
  Int64.to_int (Int64.shift_right_logical (Int64.mul hi (Int64.of_int n)) 32)

let bool g = Int64.logand (next64 g) 1L = 1L

let float g x =
  let v = Int64.to_float (Int64.shift_right_logical (next64 g) 11) in
  x *. v /. 9007199254740992.0 (* 2^53 *)

let chance g p = int g 100 < p

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
