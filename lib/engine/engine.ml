module Trace = Asf_trace.Trace

type task =
  | Start of int * (unit -> unit)
  | Resume of int * (unit, unit) Effect.Deep.continuation

type t = {
  n_cores : int;
  core_time : int array;
  heap : task Pqueue.t;
  mutable seq : int;
  mutable live : int;
  mutable current : int;
  mutable events : int;
  tracer : Trace.t;
  retired : int ref;  (* the creating domain's retired-cycle counter *)
}

type _ Effect.t += Elapse : int -> unit Effect.t

(* Every cycle any engine on this domain simulates lands in one domain-
   local counter; the harness reads deltas around each experiment cell to
   price host time in simulated cycles/sec (BENCH_asf.json). An engine
   always runs on the domain that created it, so caching the ref at
   [create] keeps the hot path to a load and an add. *)
let retired_key = Domain.DLS.new_key (fun () -> ref 0)

let cycles_retired () = !(Domain.DLS.get retired_key)

let create ~n_cores =
  if n_cores <= 0 then invalid_arg "Engine.create: n_cores must be positive";
  {
    n_cores;
    core_time = Array.make n_cores 0;
    heap = Pqueue.create ();
    seq = 0;
    live = 0;
    current = 0;
    events = 0;
    tracer = Trace.installed ();
    retired = Domain.DLS.get retired_key;
  }

let n_cores t = t.n_cores

let enqueue t ~time task =
  t.seq <- t.seq + 1;
  Pqueue.push t.heap ~time ~seq:t.seq task

let spawn t ~core f =
  if core < 0 || core >= t.n_cores then invalid_arg "Engine.spawn: bad core";
  t.live <- t.live + 1;
  Trace.emit t.tracer ~core ~cycle:t.core_time.(core) Trace.Thread_spawn;
  enqueue t ~time:t.core_time.(core) (Start (core, f))

let elapse n = Effect.perform (Elapse n)

(* Runs thread [f] under the scheduling handler. The handler suspends the
   thread at each [Elapse] and re-enqueues its continuation at the advanced
   core-local time; control then returns to the [run] loop. *)
let exec t core f =
  Effect.Deep.match_with f ()
    {
      retc =
        (fun () ->
          t.live <- t.live - 1;
          Trace.emit t.tracer ~core ~cycle:t.core_time.(core) Trace.Thread_finish);
      exnc = (fun e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Elapse n ->
              Some
                (fun (k : (a, _) Effect.Deep.continuation) ->
                  if n < 0 then invalid_arg "Engine.elapse: negative duration";
                  t.core_time.(core) <- t.core_time.(core) + n;
                  t.retired := !(t.retired) + n;
                  enqueue t ~time:t.core_time.(core) (Resume (core, k)))
          | _ -> None);
    }

let run t =
  while not (Pqueue.is_empty t.heap) do
    let time, _seq, task = Pqueue.pop t.heap in
    t.events <- t.events + 1;
    match task with
    | Start (core, f) ->
        t.current <- core;
        if time > t.core_time.(core) then t.core_time.(core) <- time;
        exec t core f
    | Resume (core, k) ->
        t.current <- core;
        Trace.emit t.tracer ~core ~cycle:time Trace.Thread_resume;
        Effect.Deep.continue k ()
  done

let core_time t core = t.core_time.(core)

let current_core t = t.current

let now t = t.core_time.(t.current)

let max_time t = Array.fold_left max 0 t.core_time

let events t = t.events

let live_threads t = t.live
