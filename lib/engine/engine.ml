module Trace = Asf_trace.Trace

type task =
  | Start of int * (unit -> unit)
  | Resume of int * (unit, unit) Effect.Deep.continuation

(* Domain-local accounting shared by every engine created on the domain;
   the harness reads deltas around each experiment cell to price host
   time in simulated cycles/sec and to report the fused-elapse ratio
   (BENCH_asf.json). An engine always runs on the domain that created
   it, so caching the record at [create] keeps the hot path to loads and
   adds. *)
type counters = {
  mutable c_retired : int;  (* simulated cycles *)
  mutable c_fused : int;  (* Elapse handled on the fusion fast path *)
  mutable c_scheduled : int;  (* Elapse through the heap round-trip *)
}

type t = {
  n_cores : int;
  core_time : int array;
  heap : task Pqueue.t;
  mutable seq : int;
  mutable live : int;
  mutable current : int;
  mutable events : int;
  (* Ablation for the fusion-equivalence battery: [true] forces every
     Elapse through the enqueue/pop round-trip (the reference
     scheduler). *)
  always_schedule : bool;
  (* Lookahead window bound: a cached lower bound on the queue minimum
     (exact right after a pop, only lowered by enqueues), so a run of
     consecutive elapses fuses against one cached int — the queue itself
     is never consulted between scheduling events. *)
  mutable lookahead : int;
  mutable fused : int;
  mutable scheduled : int;
  mutable heap_hwm : int;
  tracer : Trace.t;
  counters : counters;
}

type _ Effect.t += Elapse : int -> unit Effect.t

let counters_key =
  Domain.DLS.new_key (fun () -> { c_retired = 0; c_fused = 0; c_scheduled = 0 })

let cycles_retired () = (Domain.DLS.get counters_key).c_retired

let sched_counters () =
  let c = Domain.DLS.get counters_key in
  (c.c_fused, c.c_scheduled)

(* The engine currently executing a thread on this domain, consulted by
   {!elapse} for the fusion fast path. [run] installs the engine and
   restores the previous occupant on exit, so nested runs (an engine
   thread driving another engine) stay correctly routed. *)
let running_key : t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

(* Scheduler-queue override for acceptance runs: ASF_PQUEUE=heap (or
   calendar) forces one representation for any existing binary, the same
   way ASF_ALWAYS_SCHEDULE forces the reference scheduler. Results are
   bit-identical either way — that is the Pqueue contract the model
   battery pins. *)
let default_pqueue =
  match Sys.getenv_opt "ASF_PQUEUE" with
  | Some "heap" -> Pqueue.Heap
  | Some "calendar" -> Pqueue.Calendar
  | Some ("auto" | "") | None -> Pqueue.Auto
  | Some v -> invalid_arg ("ASF_PQUEUE: unknown queue policy " ^ v)

let create ?(always_schedule = false) ?(pqueue = default_pqueue) ~n_cores () =
  if n_cores <= 0 then invalid_arg "Engine.create: n_cores must be positive";
  {
    n_cores;
    core_time = Array.make n_cores 0;
    heap = Pqueue.create ~policy:pqueue ();
    seq = 0;
    live = 0;
    current = 0;
    events = 0;
    always_schedule;
    lookahead = max_int;
    fused = 0;
    scheduled = 0;
    heap_hwm = 0;
    tracer = Trace.installed ();
    counters = Domain.DLS.get counters_key;
  }

let n_cores t = t.n_cores

let enqueue t ~time task =
  t.seq <- t.seq + 1;
  Pqueue.push t.heap ~time ~seq:t.seq task;
  if time < t.lookahead then t.lookahead <- time;
  let len = Pqueue.length t.heap in
  if len > t.heap_hwm then t.heap_hwm <- len

let spawn t ~core f =
  if core < 0 || core >= t.n_cores then invalid_arg "Engine.spawn: bad core";
  t.live <- t.live + 1;
  Trace.emit t.tracer ~core ~cycle:t.core_time.(core) Trace.Thread_spawn;
  enqueue t ~time:t.core_time.(core) (Start (core, f))

(* Absolute-time spawn: the open-system arrival primitive. The [Start]
   handler advances the core clock to [time] only if the core is behind,
   and a clock can never be behind a task the scheduler just popped (any
   pending resume for that core would have run first), so injecting an
   event in the past of the *global* order is impossible and clocks stay
   monotone. *)
let spawn_at t ~core ~time f =
  if core < 0 || core >= t.n_cores then invalid_arg "Engine.spawn_at: bad core";
  if time < 0 then invalid_arg "Engine.spawn_at: negative time";
  t.live <- t.live + 1;
  Trace.emit t.tracer ~core ~cycle:time Trace.Thread_spawn;
  enqueue t ~time (Start (core, f))

(* Fusion fast path (the classic discrete-event "lazy reschedule"): the
   thread performing [elapse] is by construction the task the scheduler
   popped last, so its resumption would carry the largest sequence number
   in the system. If its advanced time is strictly earlier than the queue
   minimum (or the queue is empty), the scheduler round-trip would pop
   that resumption straight back — enqueue, sift, capture and continue
   would change nothing observable. In that case we advance the clock in
   place and return without performing the effect at all, replaying the
   round-trip's side effects (seq and event counts, the Thread_resume
   trace event) so a fused run is indistinguishable from a scheduled one.
   On a time tie the queued entry's smaller sequence number wins, so the
   strict [<] is exactly the fusion-legality condition.

   The comparison is against [t.lookahead], the cached lookahead-window
   bound: exact right after the scheduler pops, and only ever lowered by
   enqueues in between, so it never exceeds the true queue minimum and a
   fused elapse stays legal. A core's run of consecutive elapses batches
   under one cached bound without touching the queue at all — which also
   keeps the fused path O(1) when the calendar regime (whose min lookup
   is amortized, not worst-case, constant) is active. *)
let elapse n =
  match !(Domain.DLS.get running_key) with
  | Some t when not t.always_schedule ->
      if n < 0 then invalid_arg "Engine.elapse: negative duration";
      let core = t.current in
      let ct = t.core_time.(core) in
      if ct > max_int - n then invalid_arg "Engine.elapse: core clock overflow";
      let nt = ct + n in
      if nt < t.lookahead then begin
        t.core_time.(core) <- nt;
        t.counters.c_retired <- t.counters.c_retired + n;
        t.counters.c_fused <- t.counters.c_fused + 1;
        t.seq <- t.seq + 1;
        t.events <- t.events + 1;
        t.fused <- t.fused + 1;
        Trace.emit t.tracer ~core ~cycle:nt Trace.Thread_resume
      end
      else Effect.perform (Elapse n)
  | _ -> Effect.perform (Elapse n)

(* Runs thread [f] under the scheduling handler. The handler suspends the
   thread at each [Elapse] and re-enqueues its continuation at the advanced
   core-local time; control then returns to the [run] loop. *)
let exec t core f =
  Effect.Deep.match_with f ()
    {
      retc =
        (fun () ->
          t.live <- t.live - 1;
          Trace.emit t.tracer ~core ~cycle:t.core_time.(core) Trace.Thread_finish);
      exnc = (fun e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Elapse n ->
              Some
                (fun (k : (a, _) Effect.Deep.continuation) ->
                  if n < 0 then invalid_arg "Engine.elapse: negative duration";
                  if t.core_time.(core) > max_int - n then
                    invalid_arg "Engine.elapse: core clock overflow";
                  t.core_time.(core) <- t.core_time.(core) + n;
                  t.counters.c_retired <- t.counters.c_retired + n;
                  enqueue t ~time:t.core_time.(core) (Resume (core, k)))
          | _ -> None);
    }

let run t =
  let slot = Domain.DLS.get running_key in
  let saved = !slot in
  slot := Some t;
  Fun.protect
    ~finally:(fun () -> slot := saved)
    (fun () ->
      while not (Pqueue.is_empty t.heap) do
        let time = Pqueue.min_time t.heap in
        let task = Pqueue.drop_min t.heap in
        (* Open the next lookahead window: the popped task is about to
           run, so the fusion bound becomes the new queue minimum. *)
        t.lookahead <- Pqueue.min_time t.heap;
        t.events <- t.events + 1;
        match task with
        | Start (core, f) ->
            t.current <- core;
            if time > t.core_time.(core) then t.core_time.(core) <- time;
            exec t core f
        | Resume (core, k) ->
            t.current <- core;
            t.scheduled <- t.scheduled + 1;
            t.counters.c_scheduled <- t.counters.c_scheduled + 1;
            Trace.emit t.tracer ~core ~cycle:time Trace.Thread_resume;
            Effect.Deep.continue k ()
      done)

let core_time t core = t.core_time.(core)

let current_core t = t.current

let now t = t.core_time.(t.current)

let max_time t = Array.fold_left max 0 t.core_time

let events t = t.events

let live_threads t = t.live

let fused_elapses t = t.fused

let scheduled_elapses t = t.scheduled

let heap_high_water t = t.heap_hwm
