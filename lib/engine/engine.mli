(** Deterministic discrete-event multicore execution engine.

    Each simulated hardware thread is an OCaml-5 effect-handled computation
    pinned to a core. A thread runs uninterrupted until it performs
    {!elapse}, which advances its core-local cycle clock and yields to the
    scheduler; the scheduler always resumes the runnable thread with the
    smallest (time, sequence-number) key, so interleavings are fully
    deterministic and everything that happens between two [elapse] calls is
    atomic with respect to other threads (the model's analogue of a single
    instruction retiring).

    Scheduling fast path: when the elapsing thread would be popped right
    back (its advanced time is strictly earlier than every queued task),
    {!elapse} advances the clock in place — no effect capture, no heap
    round-trip. Fusion is observationally equivalent to scheduling (same
    (time, seq) total order, same counters and trace stream); see
    DESIGN.md, "Engine scheduling and the fusion fast path".

    Timing model: an operation takes effect at the moment the thread executes
    it and its latency is charged afterwards with [elapse]. This is the
    first-order, in-order approximation of PTLsim's out-of-order core
    documented in DESIGN.md. *)

type t

val create :
  ?always_schedule:bool -> ?pqueue:Pqueue.policy -> n_cores:int -> unit -> t
(** A fresh engine with [n_cores] cores, all clocks at cycle 0.
    [always_schedule] (default [false]) disables the fusion fast path so
    every [elapse] takes the enqueue/pop round-trip — the reference
    scheduler the equivalence battery compares against.
    [pqueue] selects the scheduler-queue representation (default: the
    [ASF_PQUEUE] environment variable — [heap], [calendar] or [auto] —
    or {!Pqueue.Auto}); any choice yields bit-identical runs. *)

val n_cores : t -> int

val spawn : t -> core:int -> (unit -> unit) -> unit
(** [spawn t ~core f] schedules thread [f] on [core], starting at the core's
    current local time. Several threads may share a core; they interleave at
    [elapse] points. *)

val spawn_at : t -> core:int -> time:int -> (unit -> unit) -> unit
(** [spawn_at t ~core ~time f] schedules thread [f] on [core] to start at
    absolute cycle [time] — the arrival-event primitive of the open-system
    serving harness ({!Asf_serve}): client requests are injected at their
    seeded arrival instants independently of what the cores are doing.
    [time] may be in the core's future (the core clock advances to it if
    the core is idle by then) or logically in its past (the event runs
    when the global order reaches it and the clock is untouched). Unlike
    {!spawn}, the start time does not track the core's current clock. *)

val run : t -> unit
(** Runs until every spawned thread has terminated. Exceptions escaping a
    thread propagate out of [run]. *)

val elapse : int -> unit
(** Advance the calling thread's core clock by [n >= 0] cycles and yield.
    Must be called from within a thread spawned on some engine; calling it
    outside raises [Effect.Unhandled]. *)

val core_time : t -> int -> int
(** Current cycle count of a core's local clock. *)

val current_core : t -> int
(** Core of the thread currently executing (meaningful inside [run]). *)

val now : t -> int
(** Local time of the currently executing core. *)

val max_time : t -> int
(** Maximum over all core clocks; after {!run} this is the makespan of the
    simulated execution. *)

val events : t -> int
(** Number of scheduling events processed so far — fused elapses count
    exactly like their scheduled equivalents (for diagnostics). *)

val live_threads : t -> int

val fused_elapses : t -> int
(** Elapses this engine handled on the fusion fast path. *)

val scheduled_elapses : t -> int
(** Elapses this engine sent through the heap round-trip. *)

val heap_high_water : t -> int
(** Largest number of tasks ever queued at once in this engine's heap. *)

val cycles_retired : unit -> int
(** Total cycles simulated by every engine created on the calling domain
    (a domain-local counter; read deltas around a run to price host time
    in simulated cycles). *)

val sched_counters : unit -> int * int
(** [(fused, scheduled)] elapse totals over every engine created on the
    calling domain — the domain-local companion of {!cycles_retired},
    harvested per experiment cell for the benchmark's fused ratio. *)
