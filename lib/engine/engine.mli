(** Deterministic discrete-event multicore execution engine.

    Each simulated hardware thread is an OCaml-5 effect-handled computation
    pinned to a core. A thread runs uninterrupted until it performs
    {!elapse}, which advances its core-local cycle clock and yields to the
    scheduler; the scheduler always resumes the runnable thread with the
    smallest (time, sequence-number) key, so interleavings are fully
    deterministic and everything that happens between two [elapse] calls is
    atomic with respect to other threads (the model's analogue of a single
    instruction retiring).

    Timing model: an operation takes effect at the moment the thread executes
    it and its latency is charged afterwards with [elapse]. This is the
    first-order, in-order approximation of PTLsim's out-of-order core
    documented in DESIGN.md. *)

type t

val create : n_cores:int -> t
(** A fresh engine with [n_cores] cores, all clocks at cycle 0. *)

val n_cores : t -> int

val spawn : t -> core:int -> (unit -> unit) -> unit
(** [spawn t ~core f] schedules thread [f] on [core], starting at the core's
    current local time. Several threads may share a core; they interleave at
    [elapse] points. *)

val run : t -> unit
(** Runs until every spawned thread has terminated. Exceptions escaping a
    thread propagate out of [run]. *)

val elapse : int -> unit
(** Advance the calling thread's core clock by [n >= 0] cycles and yield.
    Must be called from within a thread spawned on some engine; calling it
    outside raises [Effect.Unhandled]. *)

val core_time : t -> int -> int
(** Current cycle count of a core's local clock. *)

val current_core : t -> int
(** Core of the thread currently executing (meaningful inside [run]). *)

val now : t -> int
(** Local time of the currently executing core. *)

val max_time : t -> int
(** Maximum over all core clocks; after {!run} this is the makespan of the
    simulated execution. *)

val events : t -> int
(** Number of scheduling events processed so far (for diagnostics). *)

val live_threads : t -> int

val cycles_retired : unit -> int
(** Total cycles simulated by every engine created on the calling domain
    (a domain-local counter; read deltas around a run to price host time
    in simulated cycles). *)
