(* Event queue with two regimes behind one interface.

   Small regime: a structure-of-arrays binary min-heap — the (time, seq)
   keys live in two unboxed int arrays and the payloads in a parallel
   value array, so a push/pop cycle allocates nothing and key comparisons
   never chase a pointer. Sifting moves a hole instead of swapping: each
   level costs three array writes rather than a full element exchange.

   Large regime: a calendar queue (R. Brown, CACM 31(10), 1988). Events
   hash by time into bucketed "days" of [width] cycles; a dequeue scans
   forward from a cursor bucket one day at a time, so with a width
   matched to the event density both push and drop_min cost O(1)
   amortized instead of the heap's O(log n) sift. The calendar resizes
   (bucket count tracks the population, width re-derived from the
   observed time span) as the queue grows and shrinks.

   Under [Auto] (the default) a queue starts in the heap regime,
   migrates to the calendar when the population crosses
   [engage_threshold], and demotes back to the heap when the calendar
   drains or a rebuild detects a pathological distribution (most events
   piled into one bucket, where the calendar degenerates to the linear
   scan the heap strictly beats). [Heap] and [Calendar] force one
   regime. The model battery in test_engine.ml drives both regimes with
   the same operation sequences and requires the identical (time, seq)
   pop order, so the regime is unobservable from outside — which is what
   lets the engine's determinism contract ignore it.

   Vacated slots: popping an element clears every array slot it (or a
   sift's displaced copy) occupied, by storing a dummy payload captured
   from the first value ever pushed. Without this, popped payloads — for
   the scheduler, effect continuations and their closures — stayed
   reachable from the value arrays beyond [len] for the rest of a run.
   The dummy itself pins exactly one payload per queue, which the
   liveness regression test accounts for. *)

type policy = Heap | Calendar | Auto

type 'a bucket = {
  mutable b_times : int array;
  mutable b_seqs : int array;
  mutable b_vals : 'a array;
  mutable b_len : int;
}

type 'a t = {
  policy : policy;
  (* Heap regime. *)
  mutable times : int array;
  mutable seqs : int array;
  mutable vals : 'a array;
  mutable hlen : int;
  (* Shared. *)
  mutable len : int;  (* population, whichever regime is active *)
  mutable dummy : 'a array;  (* [||] until the first push; then [|d|] *)
  (* Calendar regime; [buckets = [||]] means the heap regime is active. *)
  mutable buckets : 'a bucket array;
  mutable width : int;
  mutable cur : int;  (* cursor bucket of the forward scan *)
  mutable cur_top : int;  (* exclusive time bound of the cursor's day *)
  (* Cached minimum locator, so the scheduler's min_time / drop_min pair
     scans the calendar once, not twice. *)
  mutable loc_valid : bool;
  mutable loc_bucket : int;
  mutable loc_slot : int;
  mutable loc_time : int;
  mutable loc_seq : int;
  (* Auto-regime hysteresis: after a pathological rebuild refusal, don't
     try the calendar again until the population doubles. *)
  mutable engage_at : int;
}

(* Population at which [Auto] migrates heap -> calendar. Simulator
   queues hold one pending task per live thread, so paper-scale runs
   (<= 8 cores) stay in the heap regime; big spawn populations (the
   open-system serve harness, 64-512-core topologies) cross over. *)
let engage_threshold = 192

let create ?(policy = Auto) () =
  {
    policy;
    times = [||];
    seqs = [||];
    vals = [||];
    hlen = 0;
    len = 0;
    dummy = [||];
    buckets = [||];
    width = 1;
    cur = 0;
    cur_top = 0;
    loc_valid = false;
    loc_bucket = 0;
    loc_slot = 0;
    loc_time = 0;
    loc_seq = 0;
    engage_at = engage_threshold;
  }

let is_empty q = q.len = 0

let length q = q.len

let calendar_active q = Array.length q.buckets > 0

(* ------------------------------------------------------------------ *)
(* Heap regime                                                          *)
(* ------------------------------------------------------------------ *)

let heap_grow q =
  let cap = Array.length q.times in
  if q.hlen = cap then begin
    let d = q.dummy.(0) in
    let ncap = if cap = 0 then 16 else cap * 2 in
    let nt = Array.make ncap 0 and ns = Array.make ncap 0 in
    let nv = Array.make ncap d in
    Array.blit q.times 0 nt 0 q.hlen;
    Array.blit q.seqs 0 ns 0 q.hlen;
    Array.blit q.vals 0 nv 0 q.hlen;
    q.times <- nt;
    q.seqs <- ns;
    q.vals <- nv
  end

let heap_push q ~time ~seq v =
  heap_grow q;
  let ts = q.times and ss = q.seqs and vs = q.vals in
  (* Sift the hole up from the new leaf. *)
  let i = ref q.hlen in
  q.hlen <- q.hlen + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let p = (!i - 1) / 2 in
    if time < ts.(p) || (time = ts.(p) && seq < ss.(p)) then begin
      ts.(!i) <- ts.(p);
      ss.(!i) <- ss.(p);
      vs.(!i) <- vs.(p);
      i := p
    end
    else continue := false
  done;
  ts.(!i) <- time;
  ss.(!i) <- seq;
  vs.(!i) <- v

let heap_drop_min q =
  let top = q.vals.(0) in
  let n = q.hlen - 1 in
  q.hlen <- n;
  let ts = q.times and ss = q.seqs and vs = q.vals in
  if n > 0 then begin
    (* The displaced last element sifts down as a hole from the root. *)
    let time = ts.(n) and seq = ss.(n) and v = vs.(n) in
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 in
      if l >= n then continue := false
      else begin
        let r = l + 1 in
        let c =
          if r < n && (ts.(r) < ts.(l) || (ts.(r) = ts.(l) && ss.(r) < ss.(l)))
          then r
          else l
        in
        if ts.(c) < time || (ts.(c) = time && ss.(c) < seq) then begin
          ts.(!i) <- ts.(c);
          ss.(!i) <- ss.(c);
          vs.(!i) <- vs.(c);
          i := c
        end
        else continue := false
      end
    done;
    ts.(!i) <- time;
    ss.(!i) <- seq;
    vs.(!i) <- v
  end;
  (* Vacate the slot the displaced last element left: its only remaining
     live copy is inside the heap proper. *)
  vs.(n) <- q.dummy.(0);
  top

(* ------------------------------------------------------------------ *)
(* Calendar regime                                                      *)
(* ------------------------------------------------------------------ *)

let n_buckets q = Array.length q.buckets

let bucket_index q time =
  let i = time / q.width mod n_buckets q in
  if i < 0 then i + n_buckets q else i

(* Exclusive upper bound of the day containing [time], saturating
   instead of overflowing near [max_int]; a saturated cursor makes
   [cal_locate] fall back to the exact direct search. *)
let day_top q time =
  if time > max_int - q.width then max_int
  else ((time / q.width) + 1) * q.width

let bucket_add q b ~time ~seq v =
  let cap = Array.length b.b_times in
  if b.b_len = cap then begin
    let d = q.dummy.(0) in
    let ncap = if cap = 0 then 4 else cap * 2 in
    let nt = Array.make ncap 0 and ns = Array.make ncap 0 in
    let nv = Array.make ncap d in
    Array.blit b.b_times 0 nt 0 b.b_len;
    Array.blit b.b_seqs 0 ns 0 b.b_len;
    Array.blit b.b_vals 0 nv 0 b.b_len;
    b.b_times <- nt;
    b.b_seqs <- ns;
    b.b_vals <- nv
  end;
  b.b_times.(b.b_len) <- time;
  b.b_seqs.(b.b_len) <- seq;
  b.b_vals.(b.b_len) <- v;
  b.b_len <- b.b_len + 1

(* Remove slot [i] by swapping the last entry in and vacating its slot. *)
let bucket_remove q b i =
  let n = b.b_len - 1 in
  if i < n then begin
    b.b_times.(i) <- b.b_times.(n);
    b.b_seqs.(i) <- b.b_seqs.(n);
    b.b_vals.(i) <- b.b_vals.(n)
  end;
  b.b_vals.(n) <- q.dummy.(0);
  b.b_len <- n

(* Exact minimum by scanning every bucket; used when no event is due
   within a whole year of days (a long gap, or a saturated cursor).
   Jumps the cursor to the winner's day. *)
let direct_search q =
  let bb = ref 0 and bi = ref 0 in
  let bt = ref max_int and bs = ref max_int in
  for bk = 0 to n_buckets q - 1 do
    let b = q.buckets.(bk) in
    for i = 0 to b.b_len - 1 do
      let t = b.b_times.(i) in
      if t < !bt || (t = !bt && b.b_seqs.(i) < !bs) then begin
        bb := bk;
        bi := i;
        bt := t;
        bs := b.b_seqs.(i)
      end
    done
  done;
  q.loc_valid <- true;
  q.loc_bucket <- !bb;
  q.loc_slot <- !bi;
  q.loc_time <- !bt;
  q.loc_seq <- !bs;
  q.cur <- !bb;
  q.cur_top <- day_top q !bt

(* Find the minimum (time, seq) event and cache its location. The
   forward scan visits buckets from the cursor, considering only events
   due "today" (inside the cursor's day window); days are disjoint time
   bands, so the first bucket with a due event holds the minimum. The
   cursor invariant — no stored event is earlier than today's start —
   is maintained by [cal_push] rewinding the cursor on an
   earlier-than-today insert. *)
let cal_locate q =
  if not q.loc_valid then begin
    let nb = n_buckets q in
    let found = ref false in
    let scanned = ref 0 in
    while
      (not !found) && !scanned < nb && q.cur_top <= max_int - q.width
    do
      let b = q.buckets.(q.cur) in
      let best = ref (-1) in
      let bt = ref max_int and bs = ref max_int in
      for i = 0 to b.b_len - 1 do
        let t = b.b_times.(i) in
        if t < q.cur_top && (t < !bt || (t = !bt && b.b_seqs.(i) < !bs))
        then begin
          best := i;
          bt := t;
          bs := b.b_seqs.(i)
        end
      done;
      if !best >= 0 then begin
        q.loc_valid <- true;
        q.loc_bucket <- q.cur;
        q.loc_slot <- !best;
        q.loc_time <- !bt;
        q.loc_seq <- !bs;
        found := true
      end
      else begin
        q.cur <- (q.cur + 1) mod nb;
        q.cur_top <- q.cur_top + q.width;
        incr scanned
      end
    done;
    if not !found then direct_search q
  end

let cal_push q ~time ~seq v =
  let bi = bucket_index q time in
  bucket_add q q.buckets.(bi) ~time ~seq v;
  (* An insert earlier than today rewinds the cursor, keeping the
     forward-scan invariant. *)
  if time < q.cur_top - q.width then begin
    q.cur <- bi;
    q.cur_top <- day_top q time
  end;
  if q.loc_valid && (time < q.loc_time || (time = q.loc_time && seq < q.loc_seq))
  then begin
    (* The new event undercuts the cached minimum; it sits last in its
       bucket. *)
    q.loc_bucket <- bi;
    q.loc_slot <- q.buckets.(bi).b_len - 1;
    q.loc_time <- time;
    q.loc_seq <- seq
  end

(* ------------------------------------------------------------------ *)
(* Regime transitions                                                   *)
(* ------------------------------------------------------------------ *)

let next_pow2 n =
  let p = ref 1 in
  while !p < n do
    p := !p * 2
  done;
  !p

(* Copy every stored element out of whichever regime is active. Only
   runs on regime transitions, so the allocation is amortized away. *)
let snapshot q =
  let n = q.len in
  let d = q.dummy.(0) in
  let ts = Array.make n 0 and ss = Array.make n 0 and vs = Array.make n d in
  let j = ref 0 in
  if calendar_active q then
    Array.iter
      (fun b ->
        for i = 0 to b.b_len - 1 do
          ts.(!j) <- b.b_times.(i);
          ss.(!j) <- b.b_seqs.(i);
          vs.(!j) <- b.b_vals.(i);
          incr j
        done)
      q.buckets
  else
    for i = 0 to q.hlen - 1 do
      ts.(!j) <- q.times.(i);
      ss.(!j) <- q.seqs.(i);
      vs.(!j) <- q.vals.(i);
      incr j
    done;
  (ts, ss, vs)

(* Drop the heap's live slots (the elements now live elsewhere, or are
   being discarded by [clear]). *)
let vacate_heap q =
  if Array.length q.dummy > 0 then
    Array.fill q.vals 0 q.hlen q.dummy.(0);
  q.hlen <- 0

(* Distribute all elements into a calendar sized for the current
   population. Returns [false] — leaving the active regime untouched —
   when [force] is false and the distribution is pathological: the
   derived width piles more than half the population into one bucket,
   where bucket scans degenerate to the linear search the heap beats. *)
let rebuild_calendar q ~force =
  let n = q.len in
  let ts, ss, vs = snapshot q in
  let tmin = ref max_int and tmax = ref min_int in
  Array.iter
    (fun t ->
      if t < !tmin then tmin := t;
      if t > !tmax then tmax := t)
    ts;
  let nb = max 16 (next_pow2 n) in
  let width = max 1 (((!tmax - !tmin) / max 1 n) + 1) in
  let pathological =
    (not force) && n > 32
    &&
    let counts = Array.make nb 0 in
    let peak = ref 0 in
    Array.iter
      (fun t ->
        let i = t / width mod nb in
        let i = if i < 0 then i + nb else i in
        counts.(i) <- counts.(i) + 1;
        if counts.(i) > !peak then peak := counts.(i))
      ts;
    !peak > n / 2
  in
  if pathological then begin
    q.engage_at <- max (2 * n) q.engage_at;
    false
  end
  else begin
    vacate_heap q;
    q.buckets <- Array.init nb (fun _ -> { b_times = [||]; b_seqs = [||]; b_vals = [||]; b_len = 0 });
    q.width <- width;
    for i = 0 to n - 1 do
      bucket_add q q.buckets.(bucket_index q ts.(i)) ~time:ts.(i) ~seq:ss.(i)
        vs.(i)
    done;
    let start = if n = 0 then 0 else !tmin in
    q.cur <- (if n = 0 then 0 else bucket_index q start);
    q.cur_top <- day_top q start;
    q.loc_valid <- false;
    true
  end

(* Collapse the calendar back into the heap. *)
let demote q =
  let ts, ss, vs = snapshot q in
  q.buckets <- [||];
  q.loc_valid <- false;
  for i = 0 to Array.length ts - 1 do
    heap_push q ~time:ts.(i) ~seq:ss.(i) vs.(i)
  done

(* ------------------------------------------------------------------ *)
(* Interface                                                            *)
(* ------------------------------------------------------------------ *)

let push q ~time ~seq v =
  if time < 0 then invalid_arg "Pqueue.push: negative time";
  if Array.length q.dummy = 0 then q.dummy <- [| v |];
  if calendar_active q then begin
    cal_push q ~time ~seq v;
    q.len <- q.len + 1;
    if q.len > 2 * n_buckets q then
      if not (rebuild_calendar q ~force:(q.policy = Calendar)) then begin
        (* Growing but pathological: the calendar is degenerating. *)
        demote q;
        q.engage_at <- max q.engage_at (2 * q.len)
      end
  end
  else begin
    heap_push q ~time ~seq v;
    q.len <- q.len + 1;
    match q.policy with
    | Calendar -> ignore (rebuild_calendar q ~force:true)
    | Auto ->
        if q.len >= q.engage_at then ignore (rebuild_calendar q ~force:false)
    | Heap -> ()
  end

let min_time q =
  if q.len = 0 then max_int
  else if calendar_active q then begin
    cal_locate q;
    q.loc_time
  end
  else q.times.(0)

let peek_time q = if q.len = 0 then None else Some (min_time q)

let peek_key q =
  if q.len = 0 then None
  else if calendar_active q then begin
    cal_locate q;
    Some (q.loc_time, q.loc_seq)
  end
  else Some (q.times.(0), q.seqs.(0))

let drop_min q =
  if q.len = 0 then invalid_arg "Pqueue.pop: empty";
  if calendar_active q then begin
    cal_locate q;
    let b = q.buckets.(q.loc_bucket) in
    let v = b.b_vals.(q.loc_slot) in
    bucket_remove q b q.loc_slot;
    q.loc_valid <- false;
    q.len <- q.len - 1;
    (match q.policy with
    | Auto ->
        if q.len = 0 then q.buckets <- [||]
        else if 2 * q.len < engage_threshold then demote q
    | Calendar ->
        if q.len > 0 && n_buckets q > 16 && 4 * q.len < n_buckets q then
          ignore (rebuild_calendar q ~force:true)
    | Heap -> ());
    v
  end
  else begin
    q.len <- q.len - 1;
    heap_drop_min q
  end

let pop q =
  if q.len = 0 then invalid_arg "Pqueue.pop: empty";
  let time, seq =
    if calendar_active q then begin
      cal_locate q;
      (q.loc_time, q.loc_seq)
    end
    else (q.times.(0), q.seqs.(0))
  in
  let v = drop_min q in
  (time, seq, v)

let clear q =
  vacate_heap q;
  q.buckets <- [||];
  q.len <- 0;
  q.cur <- 0;
  q.cur_top <- 0;
  q.loc_valid <- false;
  q.engage_at <- engage_threshold
