(* Structure-of-arrays binary min-heap: the (time, seq) keys live in two
   unboxed int arrays and the payloads in a parallel value array, so a
   push/pop cycle allocates nothing (the previous representation boxed a
   3-field entry record per push) and key comparisons never chase a
   pointer. Sifting moves a hole instead of swapping: each level costs
   three array writes rather than a full element exchange. *)

type 'a t = {
  mutable times : int array;
  mutable seqs : int array;
  mutable vals : 'a array;
  mutable len : int;
}

let create () = { times = [||]; seqs = [||]; vals = [||]; len = 0 }

let is_empty q = q.len = 0

let length q = q.len

(* [v] seeds the value array on first growth — 'a has no dummy element.
   Popped slots beyond [len] retain their last value (exactly as the
   boxed representation retained popped entries); the scheduler reuses
   slots far too quickly for that to matter. *)
let grow q v =
  let cap = Array.length q.times in
  if q.len = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let nt = Array.make ncap 0 and ns = Array.make ncap 0 in
    let nv = Array.make ncap v in
    Array.blit q.times 0 nt 0 q.len;
    Array.blit q.seqs 0 ns 0 q.len;
    Array.blit q.vals 0 nv 0 q.len;
    q.times <- nt;
    q.seqs <- ns;
    q.vals <- nv
  end

let push q ~time ~seq v =
  grow q v;
  let ts = q.times and ss = q.seqs and vs = q.vals in
  (* Sift the hole up from the new leaf. *)
  let i = ref q.len in
  q.len <- q.len + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let p = (!i - 1) / 2 in
    if time < ts.(p) || (time = ts.(p) && seq < ss.(p)) then begin
      ts.(!i) <- ts.(p);
      ss.(!i) <- ss.(p);
      vs.(!i) <- vs.(p);
      i := p
    end
    else continue := false
  done;
  ts.(!i) <- time;
  ss.(!i) <- seq;
  vs.(!i) <- v

let min_time q = if q.len = 0 then max_int else q.times.(0)

let peek_time q = if q.len = 0 then None else Some q.times.(0)

let peek_key q = if q.len = 0 then None else Some (q.times.(0), q.seqs.(0))

let drop_min q =
  if q.len = 0 then invalid_arg "Pqueue.pop: empty";
  let top = q.vals.(0) in
  let n = q.len - 1 in
  q.len <- n;
  if n > 0 then begin
    let ts = q.times and ss = q.seqs and vs = q.vals in
    (* The displaced last element sifts down as a hole from the root. *)
    let time = ts.(n) and seq = ss.(n) and v = vs.(n) in
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 in
      if l >= n then continue := false
      else begin
        let r = l + 1 in
        let c =
          if r < n && (ts.(r) < ts.(l) || (ts.(r) = ts.(l) && ss.(r) < ss.(l)))
          then r
          else l
        in
        if ts.(c) < time || (ts.(c) = time && ss.(c) < seq) then begin
          ts.(!i) <- ts.(c);
          ss.(!i) <- ss.(c);
          vs.(!i) <- vs.(c);
          i := c
        end
        else continue := false
      end
    done;
    ts.(!i) <- time;
    ss.(!i) <- seq;
    vs.(!i) <- v
  end;
  top

let pop q =
  if q.len = 0 then invalid_arg "Pqueue.pop: empty";
  let time = q.times.(0) and seq = q.seqs.(0) in
  let v = drop_min q in
  (time, seq, v)

let clear q = q.len <- 0
