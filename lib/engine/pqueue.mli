(** Priority queue used by the event scheduler.

    Elements carry two integer keys compared lexicographically: the primary
    key is the event time in cycles (must be non-negative), the secondary
    key a monotonically increasing sequence number that makes the schedule
    deterministic (FIFO among simultaneous events).

    Two representations live behind this interface, chosen by {!policy}:
    a structure-of-arrays binary min-heap (keys in unboxed int arrays;
    steady-state push/pop allocates nothing) for small populations, and a
    calendar queue (time-bucketed days, O(1) amortized push/drop_min) for
    large ones. The pop order is the (time, seq) total order in either
    regime — the representation is unobservable apart from speed, which
    is what keeps heap and calendar runs of the simulator bit-identical.

    Popped slots are vacated: a queue retains (pins) at most one payload
    beyond its live [length] elements — a dummy captured from the first
    push, used to clear abandoned array slots. *)

type policy =
  | Heap  (** always the binary heap *)
  | Calendar  (** always the calendar queue *)
  | Auto
      (** start as a heap, migrate to the calendar past a population
          threshold, demote back when it drains or the time distribution
          defeats bucketing (the default) *)

type 'a t

val create : ?policy:policy -> unit -> 'a t
(** An empty queue under [policy] (default {!Auto}). *)

val is_empty : 'a t -> bool

val length : 'a t -> int

val push : 'a t -> time:int -> seq:int -> 'a -> unit
(** @raise Invalid_argument if [time] is negative. *)

val pop : 'a t -> int * int * 'a
(** Removes and returns the minimum element as [(time, seq, v)].
    @raise Invalid_argument if the queue is empty. *)

val drop_min : 'a t -> 'a
(** Removes and returns only the minimum element's payload — the
    allocation-free [pop] used by the scheduler hot loop (read the key
    beforehand with {!min_time} / {!peek_key} if needed).
    @raise Invalid_argument if the queue is empty. *)

val min_time : 'a t -> int
(** Time of the minimum element, or [max_int] when the queue is empty —
    an allocation-free [peek_time] shaped for "would anything run before
    cycle [t]?" comparisons. *)

val peek_key : 'a t -> (int * int) option
(** [(time, seq)] key of the minimum element, if any. *)

val peek_time : 'a t -> int option
(** Time of the minimum element, if any. *)

val clear : 'a t -> unit
