(** Binary min-heap priority queue used by the event scheduler.

    Elements carry two integer keys compared lexicographically: the primary
    key is the event time in cycles, the secondary key a monotonically
    increasing sequence number that makes the schedule deterministic (FIFO
    among simultaneous events).

    The representation is structure-of-arrays — keys in unboxed int
    arrays, payloads in a parallel value array — so steady-state push/pop
    traffic allocates nothing. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val length : 'a t -> int

val push : 'a t -> time:int -> seq:int -> 'a -> unit

val pop : 'a t -> int * int * 'a
(** Removes and returns the minimum element as [(time, seq, v)].
    @raise Invalid_argument if the queue is empty. *)

val drop_min : 'a t -> 'a
(** Removes and returns only the minimum element's payload — the
    allocation-free [pop] used by the scheduler hot loop (read the key
    beforehand with {!min_time} / {!peek_key} if needed).
    @raise Invalid_argument if the queue is empty. *)

val min_time : 'a t -> int
(** Time of the minimum element, or [max_int] when the queue is empty —
    an allocation-free [peek_time] shaped for "would anything run before
    cycle [t]?" comparisons. *)

val peek_key : 'a t -> (int * int) option
(** [(time, seq)] key of the minimum element, if any. *)

val peek_time : 'a t -> int option
(** Time of the minimum element, if any. *)

val clear : 'a t -> unit
