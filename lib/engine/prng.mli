(** Deterministic pseudo-random number generator (SplitMix64).

    Every source of randomness in the simulator flows through an explicit
    [Prng.t] so that simulation runs are exactly reproducible from a seed.
    SplitMix64 is small, fast, passes BigCrush, and supports cheap splitting
    into statistically independent streams (one per simulated thread). *)

type t

val create : int -> t
(** [create seed] returns a fresh generator. Two generators created with the
    same seed produce identical streams. *)

val split : t -> t
(** [split g] advances [g] and returns a new generator whose stream is
    independent of the remainder of [g]'s stream. *)

val copy : t -> t
(** [copy g] duplicates the current state (same future stream). *)

val next64 : t -> int64
(** Raw 64-bit output. *)

val int : t -> int -> int
(** [int g n] is uniform in [\[0, n)], reduced from the generator's high
    bits (fixed-point scaling, not a low-bit modulo). [n] must be in
    [\[1, 2^30\]]. *)

val bool : t -> bool

val float : t -> float -> float
(** [float g x] is uniform in [\[0, x)]. *)

val chance : t -> int -> bool
(** [chance g p] is [true] with probability [p] percent. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
