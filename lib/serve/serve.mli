(** Open-system serving harness with overload robustness.

    The paper (and the rest of this repository) measures closed loops: N
    threads hammer a structure until an operation budget runs out, so
    offered load can never exceed capacity by construction. A service
    facing "heavy traffic from millions of users" (ROADMAP north star)
    lives in the opposite regime: requests arrive on their own schedule,
    queue while the cores are busy, and keep arriving when the system is
    saturated. This module builds that client model on the deterministic
    engine:

    - {b arrivals} are generated purely from the seed by a Poisson,
      bursty, or diurnal-ramp process and injected at absolute cycles via
      [Engine.spawn_at] — an open system by construction (the arrival
      process never observes service times);
    - {b admission control}: each core owns a bounded run queue; a
      request arriving to a full queue is shed explicitly (counted, never
      silently dropped or blocked);
    - {b deadlines}: each request may carry a relative deadline, enforced
      by [Tm.atomic_until] — a request past its deadline stops retrying
      and reports [Timeout] instead of spinning in backoff;
    - {b graceful degradation}: an overload governor watches queue depth
      and commit throughput (the PR 3 watchdog signals) and walks a
      Normal -> Shedding -> Serial ladder, halving the admission cap and
      finally forcing the serial-irrevocable path, then recovers when the
      queues drain — sustained overload degrades throughput instead of
      raising [Tm.Livelock].

    Everything reported (latency percentiles, throughput, censuses) is a
    function of simulated time only, so reports are byte-identical per
    seed, including under the Faultline injection plans. *)

module Tm = Asf_tm_rt.Tm
module Stats = Asf_tm_rt.Stats

(** {1 Workloads} *)

(** YCSB-style operation mixes over the transactional KV store:
    A = 50/50 read/update, B = 95/5 read/update, C = read-only,
    D = 95/5 read-latest/insert, E = 95/5 scan/insert,
    F = 50/50 read/read-modify-write. *)
type mix = A | B | C | D | E | F

type service =
  | Kv of mix  (** hash-map KV store, YCSB-style key-value requests *)
  | Ledger
      (** the bank example grown into an order/ledger service: account
          transfers with an append-only order log, settlements against
          logged orders, and full-balance audit requests *)

val service_of_string : string -> (service, string) result
(** ["kv-a"] .. ["kv-f"], ["ledger"]. *)

val service_name : service -> string

val initial_balance : int
(** Every ledger account's starting balance (the audit invariant's
    conserved quantity). *)

(** {1 Requests and history events}

    One request = one client-visible operation. When [cfg.record] is on,
    the run returns its complete invocation/response history — the input
    to the Txlin linearizability oracle ([Asf_txlin]). Recording is
    host-side only: it never advances simulated time, so every reported
    number is byte-identical with recording on or off. *)

type op =
  | Read of int  (** key *)
  | Update of int * int  (** key, new value *)
  | Insert of int * int  (** fresh key, value (put-if-absent) *)
  | Scan of int * int  (** first key, length *)
  | Rmw of int  (** key: read, then write (old + 1) *)
  | Order of { src : int; dst : int; amount : int }
      (** ledger transfer + order-log append *)
  | Settle of int  (** settle the (idx mod log-length)-th logged order *)
  | Audit  (** sum every balance, flag any leak *)

type obs =
  | O_unit  (** Update: no observable return *)
  | O_val of int option  (** Read: the value found (or absence) *)
  | O_vals of int option list  (** Scan: values for k, k+1, ... *)
  | O_flag of bool
      (** Insert: key was absent; Order: log slot appended; Settle: some
          order existed; Audit: balances summed correctly *)
  | O_rmw of int  (** Rmw: the old value read (new value = old + 1) *)

type outcome_ev =
  | Ev_done of { obs : obs; commit : int }
      (** committed with observation [obs]; [commit] is the final
          attempt's commit cycle ([Tm.last_commit_cycle]), a witness
          satisfying invoke <= commit <= respond *)
  | Ev_timeout
      (** deadline passed while queued or retrying: committed nothing
          ([Tm.atomic_until] guarantees no effect), a no-op obligation *)
  | Ev_shed  (** rejected at admission: never executed *)

type event = {
  ev_id : int;  (** request id (schedule order) *)
  ev_op : op;
  ev_invoke : int;  (** arrival cycle (the client's send) *)
  ev_respond : int;  (** cycle the outcome was decided *)
  ev_outcome : outcome_ev;
}

(** {1 Arrival processes}

    All gaps are in cycles. Every process is generated from the seed
    before the simulation starts. *)

type arrival =
  | Poisson of { mean_gap : int }  (** exponential inter-arrival gaps *)
  | Bursty of {
      mean_gap : int;  (** gap outside bursts *)
      burst_gap : int;  (** gap inside bursts (smaller = heavier) *)
      on_window : int;  (** burst length, cycles *)
      off_window : int;  (** quiet length, cycles *)
    }
  | Ramp of {
      low_gap : int;  (** gap at peak load (fastest arrivals) *)
      high_gap : int;  (** gap at trough load *)
      period : int;  (** cycles per diurnal cycle (triangle wave) *)
    }
  | Closed
      (** every request available at cycle 0 — the closed-loop capacity
          probe used by {!measure_capacity}; disables admission shedding *)

(** {1 Configuration} *)

type cfg = {
  service : service;
  arrival : arrival;
  requests : int;  (** total arrivals *)
  queue_cap : int;  (** per-core run-queue bound (admission control) *)
  deadline : int option;  (** per-request relative deadline, cycles *)
  poll : int;  (** idle worker re-poll interval, cycles *)
  governor : bool;  (** overload governor enabled *)
  records : int;  (** KV: preloaded keys; also sizes the bucket array *)
  accounts : int;  (** ledger: number of accounts *)
  scan_len : int;  (** KV mix E: keys per scan *)
  sample_every : int;  (** governor sampling interval, cycles *)
  record : bool;
      (** record the invocation/response history into [r_events]
          (default off; free in simulated time either way) *)
}

val default_cfg : service -> cfg

(** {1 Overload governor}

    Pure state machine, exposed for unit tests. Transitions (evaluated at
    most once per [sample_every] cycles):
    - Normal -> Shedding after [streak] consecutive samples with total
      queue depth at the high watermark and not draining (sustained queue
      growth);
    - Shedding -> Serial when no transaction committed system-wide for
      [zero_window] cycles while still backed up (the watchdog's
      zero-commit signal, acted on {e before} it becomes a [Livelock]);
    - Shedding/Serial -> Normal when total depth falls to the low
      watermark (recovery).

    Shedding and Serial halve the admission cap; Serial additionally
    routes every request through the serial-irrevocable path
    ([Tm.set_force_serial]). *)

type gov_state = Normal | Shedding | Serial

val gov_state_name : gov_state -> string

type governor

val governor_create :
  ?streak:int -> ?zero_window:int -> hi:int -> lo:int -> unit -> governor

val governor_step : governor -> now:int -> depth:int -> commits:int -> unit

val governor_state : governor -> gov_state

val governor_census : governor -> int * int * int
(** (to-shedding, to-serial, recoveries) transition counts. *)

(** {1 Running} *)

type result = {
  r_service : string;
  r_arrivals : int;
  r_completed : int;  (** committed (possibly late, see [r_late]) *)
  r_shed : int;  (** rejected at admission (queue full) *)
  r_timeout : int;  (** deadline passed while queued or retrying *)
  r_late : int;  (** completed, but after their own deadline *)
  r_retries : int;  (** extra attempts beyond the first, all requests *)
  r_retry_hist : int array;  (** buckets: 0, 1, 2-3, 4-7, 8+ retries *)
  r_timeout_aborts : int;  (** attempts abandoned mid-flight ([Abort.Timeout]) *)
  r_serial_served : int;  (** requests served while the governor was Serial *)
  r_max_depth : int;  (** deepest any core's run queue ever got *)
  r_max_dl_wait : int;
      (** max over requests of [Tm.deadline_wait]: cumulative backoff +
          spin under a deadline — bounded by deadline + one
          [Tm.serial_spin_window] tail (the deadline property) *)
  r_gov_to_shed : int;
  r_gov_to_serial : int;
  r_gov_recovered : int;
  r_final_gov : string;
  r_p50 : int;  (** latency percentiles over completed requests, cycles *)
  r_p90 : int;
  r_p99 : int;
  r_p999 : int;
  r_max_lat : int;
  r_mean_lat : float;
  r_span : int;  (** last arrival cycle *)
  r_makespan : int;
  r_offered : float;  (** offered load, requests per millisecond *)
  r_achieved : float;  (** completion throughput, requests per millisecond *)
  r_stats : Stats.t;  (** aggregated worker statistics *)
  r_invariant_ok : bool;  (** service-level consistency check *)
  r_invariant_msg : string;
  r_partition_ok : bool;
      (** the outcome partition
          [r_completed + r_shed + r_timeout = r_arrivals] held — recorded
          (not asserted) so a violation still yields a full report the
          caller can turn into a structured Finding *)
  r_events : event array;
      (** the recorded history in request-id order when [cfg.record];
          empty otherwise. With a clean partition it has exactly
          [r_arrivals] entries. *)
}

val run : Tm.config -> threads:int -> cfg -> result
(** Run one open-system serving experiment. Arrival schedule, request
    contents and every reported number are functions of
    [tm_cfg.seed] (plus any installed fault plan's seed) only.
    [r_shed + r_timeout + r_completed = r_arrivals] — the outcome
    partition invariant the property tests pin — is reported in
    [r_partition_ok]. *)

val measure_capacity : Tm.config -> threads:int -> cfg -> float
(** Closed-loop capacity probe, requests per millisecond: the same
    service and request population executed back-to-back with admission
    and deadlines disabled. The sweep expresses offered load as a
    multiple of this. *)

val sweep :
  Tm.config ->
  threads:int ->
  cfg ->
  mults:float list ->
  (float * result) list * float option
(** [sweep tm_cfg ~threads cfg ~mults] measures capacity, then runs one
    Poisson experiment per multiplier (offered = mult x capacity).
    Returns the per-multiplier results and the detected knee. *)

val knee_point : ?threshold:float -> (float * float) list -> float option
(** [knee_point pts] over (offered, achieved) points sorted by offered
    load: the largest offered load still served at [threshold] (default
    0.9) efficiency, reported only when some later point falls below the
    threshold ([Some 0.] if even the first point is saturated; [None]
    when no point in range saturates — no knee visible). *)
