module Engine = Asf_engine.Engine
module Prng = Asf_engine.Prng
module Params = Asf_machine.Params
module Addr = Asf_mem.Addr
module Tm = Asf_tm_rt.Tm
module Stats = Asf_tm_rt.Stats
module Ops = Asf_dstruct.Ops
module Thashmap = Asf_dstruct.Thashmap

(* ------------------------------------------------------------------ *)
(* Workloads                                                            *)
(* ------------------------------------------------------------------ *)

type mix = A | B | C | D | E | F

type service = Kv of mix | Ledger

let service_of_string = function
  | "kv-a" -> Ok (Kv A)
  | "kv-b" -> Ok (Kv B)
  | "kv-c" -> Ok (Kv C)
  | "kv-d" -> Ok (Kv D)
  | "kv-e" -> Ok (Kv E)
  | "kv-f" -> Ok (Kv F)
  | "ledger" -> Ok Ledger
  | s ->
      Error
        (Printf.sprintf "unknown service %S (valid: kv-a .. kv-f, ledger)" s)

let service_name = function
  | Kv A -> "kv-a"
  | Kv B -> "kv-b"
  | Kv C -> "kv-c"
  | Kv D -> "kv-d"
  | Kv E -> "kv-e"
  | Kv F -> "kv-f"
  | Ledger -> "ledger"

type arrival =
  | Poisson of { mean_gap : int }
  | Bursty of {
      mean_gap : int;
      burst_gap : int;
      on_window : int;
      off_window : int;
    }
  | Ramp of { low_gap : int; high_gap : int; period : int }
  | Closed

type cfg = {
  service : service;
  arrival : arrival;
  requests : int;
  queue_cap : int;
  deadline : int option;
  poll : int;
  governor : bool;
  records : int;
  accounts : int;
  scan_len : int;
  sample_every : int;
  record : bool;
}

let default_cfg service =
  {
    service;
    arrival = Poisson { mean_gap = 300 };
    requests = 2000;
    queue_cap = 64;
    deadline = None;
    poll = 200;
    governor = true;
    records = 1024;
    accounts = 48;
    scan_len = 8;
    sample_every = 2048;
    record = false;
  }

let initial_balance = 1000

(* ------------------------------------------------------------------ *)
(* Request population                                                   *)
(* ------------------------------------------------------------------ *)

(* Request contents are decided at schedule-generation time, from their
   own PRNG streams: the client does not adapt to what the server is
   doing, which is what makes the system "open". *)

type op =
  | Read of int
  | Update of int * int
  | Insert of int * int
  | Scan of int * int
  | Rmw of int
  | Order of { src : int; dst : int; amount : int }
  | Settle of int
  | Audit

type request = { rq_id : int; rq_core : int; rq_arrival : int; rq_op : op }

(* ------------------------------------------------------------------ *)
(* History events (the linearizability oracle's input)                  *)
(* ------------------------------------------------------------------ *)

(* What a completed request observed, as seen by the client. The oracle
   replays the sequential specification and demands that every
   observation is explained by *some* linearization order. *)
type obs =
  | O_unit  (** Update: no observable return *)
  | O_val of int option  (** Read: the value found (or absence) *)
  | O_vals of int option list  (** Scan: values for k, k+1, ... *)
  | O_flag of bool
      (** Insert: key was absent; Order: log slot appended;
          Settle: some order existed; Audit: balances summed correctly *)
  | O_rmw of int  (** Rmw: the old value read (new value = old + 1) *)

type outcome_ev =
  | Ev_done of { obs : obs; commit : int }
      (** committed; [commit] is the final attempt's commit cycle — the
          linearization-point witness (invoke <= commit <= respond) *)
  | Ev_timeout  (** deadline passed: committed nothing (no-op obligation) *)
  | Ev_shed  (** rejected at admission: never executed *)

type event = {
  ev_id : int;
  ev_op : op;
  ev_invoke : int;  (** arrival cycle (the client's send) *)
  ev_respond : int;  (** cycle the outcome was decided *)
  ev_outcome : outcome_ev;
}

(* Exponential inter-arrival gap with the given mean (cycles). *)
let exp_gap g mean =
  if mean <= 0 then 0
  else begin
    let u = Prng.float g 1.0 in
    max 1 (int_of_float ((-.float_of_int mean *. log (1.0 -. u)) +. 0.5))
  end

(* The schedule PRNG root is seeded away from [Tm]'s per-core streams
   (which split the raw seed): a SplitMix-finalized different seed gives
   decorrelated streams, so arrival timing never echoes backoff draws. *)
let schedule cfg ~seed ~threads =
  let root = Prng.create (seed + 0x9E3779B9) in
  let garr = Prng.split root in
  let gop = Prng.split root in
  let next_key = ref cfg.records in
  let last_ins = ref (max 0 (cfg.records - 1)) in
  let orders = ref 0 in
  let t = ref 0 in
  let key () = Prng.int gop (max 1 cfg.records) in
  let value () = 1 + Prng.int gop 1000 in
  let insert () =
    let k = !next_key in
    incr next_key;
    last_ins := k;
    Insert (k, value ())
  in
  let read_latest () = Read (max 0 (!last_ins - Prng.int gop 16)) in
  let gen_kv m =
    let roll = Prng.int gop 100 in
    match m with
    | A -> if roll < 50 then Read (key ()) else Update (key (), value ())
    | B -> if roll < 95 then Read (key ()) else Update (key (), value ())
    | C -> Read (key ())
    | D -> if roll < 95 then read_latest () else insert ()
    | E -> if roll < 95 then Scan (key (), cfg.scan_len) else insert ()
    | F -> if roll < 50 then Read (key ()) else Rmw (key ())
  in
  let gen_ledger () =
    let roll = Prng.int gop 100 in
    if roll < 70 then begin
      incr orders;
      let src = Prng.int gop cfg.accounts in
      let dst = (src + 1 + Prng.int gop (max 1 (cfg.accounts - 1))) mod cfg.accounts in
      Order { src; dst; amount = 1 + Prng.int gop 100 }
    end
    else if roll < 95 then Settle (Prng.int gop (max 1 !orders))
    else Audit
  in
  Array.init cfg.requests (fun i ->
      let gap =
        match cfg.arrival with
        | Closed -> 0
        | Poisson { mean_gap } -> exp_gap garr mean_gap
        | Bursty { mean_gap; burst_gap; on_window; off_window } ->
            let window = max 1 (on_window + off_window) in
            let phase = !t mod window in
            exp_gap garr (if phase < on_window then burst_gap else mean_gap)
        | Ramp { low_gap; high_gap; period } ->
            let p = max 2 period in
            let ph = !t mod p in
            let half = p / 2 in
            (* Triangle wave: 0 at the trough, 1 at the peak. *)
            let frac =
              if ph < half then float_of_int ph /. float_of_int half
              else float_of_int (p - ph) /. float_of_int (p - half)
            in
            let mean =
              float_of_int high_gap
              +. ((float_of_int low_gap -. float_of_int high_gap) *. frac)
            in
            exp_gap garr (max 1 (int_of_float mean))
      in
      t := !t + gap;
      let op = match cfg.service with Kv m -> gen_kv m | Ledger -> gen_ledger () in
      { rq_id = i; rq_core = i mod threads; rq_arrival = !t; rq_op = op })

(* ------------------------------------------------------------------ *)
(* Overload governor                                                    *)
(* ------------------------------------------------------------------ *)

type gov_state = Normal | Shedding | Serial

let gov_state_name = function
  | Normal -> "normal"
  | Shedding -> "shedding"
  | Serial -> "serial"

type governor = {
  g_hi : int;
  g_lo : int;
  g_streak_needed : int;
  g_zero_window : int;
  mutable g_state : gov_state;
  mutable g_streak : int;
  mutable g_last_depth : int;
  mutable g_last_commits : int;
  mutable g_commit_seen : int;
  mutable g_to_shed : int;
  mutable g_to_serial : int;
  mutable g_recovered : int;
}

let governor_create ?(streak = 3) ?(zero_window = 1_000_000) ~hi ~lo () =
  {
    g_hi = hi;
    g_lo = lo;
    g_streak_needed = max 1 streak;
    g_zero_window = max 1 zero_window;
    g_state = Normal;
    g_streak = 0;
    g_last_depth = 0;
    g_last_commits = 0;
    g_commit_seen = 0;
    g_to_shed = 0;
    g_to_serial = 0;
    g_recovered = 0;
  }

let governor_step g ~now ~depth ~commits =
  if commits > g.g_last_commits then g.g_commit_seen <- now;
  (match g.g_state with
  | Normal ->
      (* Sustained growth: the queue sits at the high watermark and is
         not draining, for several consecutive samples. *)
      if depth >= g.g_hi && depth >= g.g_last_depth then begin
        g.g_streak <- g.g_streak + 1;
        if g.g_streak >= g.g_streak_needed then begin
          g.g_state <- Shedding;
          g.g_to_shed <- g.g_to_shed + 1;
          g.g_streak <- 0
        end
      end
      else g.g_streak <- 0
  | Shedding ->
      if depth <= g.g_lo then begin
        g.g_state <- Normal;
        g.g_recovered <- g.g_recovered + 1
      end
      else if now - g.g_commit_seen >= g.g_zero_window then begin
        (* The watchdog's zero-commit signal, acted on while it is still
           a degradation decision rather than a [Livelock] diagnosis. *)
        g.g_state <- Serial;
        g.g_to_serial <- g.g_to_serial + 1
      end
  | Serial ->
      if depth <= g.g_lo then begin
        g.g_state <- Normal;
        g.g_recovered <- g.g_recovered + 1
      end);
  g.g_last_depth <- depth;
  g.g_last_commits <- commits

let governor_state g = g.g_state

let governor_census g = (g.g_to_shed, g.g_to_serial, g.g_recovered)

(* ------------------------------------------------------------------ *)
(* Service state                                                        *)
(* ------------------------------------------------------------------ *)

type state =
  | Kv_state of { map : Thashmap.t }
  | Ledger_state of {
      accounts : Addr.t array;
      head : Addr.t;
      slots : Addr.t;  (** order log; slot [i] at [slots + i * words_per_line] *)
      slot_cap : int;
    }

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let make_state sys setup_o cfg reqs =
  match cfg.service with
  | Kv _ ->
      let buckets = next_pow2 (max 16 (2 * cfg.records)) in
      let map = Thashmap.create setup_o ~buckets in
      for k = 0 to cfg.records - 1 do
        Thashmap.put setup_o map k (k + 1)
      done;
      Kv_state { map }
  | Ledger ->
      let accounts = Array.init cfg.accounts (fun _ -> Tm.setup_alloc sys 1) in
      Array.iter (fun a -> Tm.setup_poke sys a initial_balance) accounts;
      let head = Tm.setup_alloc sys 1 in
      Tm.setup_poke sys head 0;
      let slot_cap =
        Array.fold_left
          (fun acc r -> match r.rq_op with Order _ -> acc + 1 | _ -> acc)
          0 reqs
      in
      let slots = Tm.setup_alloc sys (max 1 slot_cap * Addr.words_per_line) in
      Ledger_state { accounts; head; slots; slot_cap }

(* One request body, executed inside a transaction. Host-visible effects
   are returned as [(extra, obs)] (applied/recorded by the worker after
   commit), never performed in the body — an aborted attempt re-executes
   the closure, and only the final attempt's observation escapes. *)
let exec_op (o : Ops.t) state rq =
  match (state, rq.rq_op) with
  | Kv_state s, Read k -> (0, O_val (Thashmap.get o s.map k))
  | Kv_state s, Update (k, v) ->
      Thashmap.put o s.map k v;
      (0, O_unit)
  | Kv_state s, Insert (k, v) ->
      let fresh = Thashmap.put_if_absent o s.map k v in
      ((if fresh then 1 else 0), O_flag fresh)
  | Kv_state s, Scan (k, len) ->
      let vs = List.init len (fun i -> Thashmap.get o s.map (k + i)) in
      (0, O_vals vs)
  | Kv_state s, Rmw k ->
      let v = match Thashmap.get o s.map k with Some v -> v | None -> 0 in
      Thashmap.put o s.map k (v + 1);
      (0, O_rmw v)
  | Ledger_state s, Order { src; dst; amount } ->
      let appended =
        let h = o.Ops.ld s.head in
        if h < s.slot_cap then begin
          let slot = s.slots + (h * Addr.words_per_line) in
          o.Ops.st slot src;
          o.Ops.st (slot + 1) dst;
          o.Ops.st (slot + 2) amount;
          o.Ops.st (slot + 3) 0;
          o.Ops.st s.head (h + 1);
          1
        end
        else 0
      in
      let a = s.accounts.(src) and b = s.accounts.(dst) in
      o.Ops.st a (o.Ops.ld a - amount);
      o.Ops.st b (o.Ops.ld b + amount);
      (appended, O_flag (appended = 1))
  | Ledger_state s, Settle idx ->
      let h = o.Ops.ld s.head in
      if h > 0 then begin
        let slot = s.slots + (idx mod h * Addr.words_per_line) in
        o.Ops.st (slot + 3) (o.Ops.ld (slot + 3) + 1)
      end;
      (0, O_flag (h > 0))
  | Ledger_state s, Audit ->
      let total = Array.fold_left (fun acc a -> acc + o.Ops.ld a) 0 s.accounts in
      let balanced = total = Array.length s.accounts * initial_balance in
      ((if balanced then 0 else 1), O_flag balanced)
  | Kv_state _, (Order _ | Settle _ | Audit) | Ledger_state _, (Read _ | Update _ | Insert _ | Scan _ | Rmw _) ->
      assert false

(* ------------------------------------------------------------------ *)
(* Bounded per-core run queues                                          *)
(* ------------------------------------------------------------------ *)

type queue = {
  buf : request option array;
  mutable head : int;
  mutable len : int;
}

let qpush q r =
  q.buf.((q.head + q.len) mod Array.length q.buf) <- Some r;
  q.len <- q.len + 1

let qpop q =
  if q.len = 0 then None
  else begin
    let r = q.buf.(q.head) in
    q.buf.(q.head) <- None;
    q.head <- (q.head + 1) mod Array.length q.buf;
    q.len <- q.len - 1;
    r
  end

(* ------------------------------------------------------------------ *)
(* Results                                                              *)
(* ------------------------------------------------------------------ *)

type result = {
  r_service : string;
  r_arrivals : int;
  r_completed : int;
  r_shed : int;
  r_timeout : int;
  r_late : int;
  r_retries : int;
  r_retry_hist : int array;
  r_timeout_aborts : int;
  r_serial_served : int;
  r_max_depth : int;
  r_max_dl_wait : int;
  r_gov_to_shed : int;
  r_gov_to_serial : int;
  r_gov_recovered : int;
  r_final_gov : string;
  r_p50 : int;
  r_p90 : int;
  r_p99 : int;
  r_p999 : int;
  r_max_lat : int;
  r_mean_lat : float;
  r_span : int;
  r_makespan : int;
  r_offered : float;
  r_achieved : float;
  r_stats : Stats.t;
  r_invariant_ok : bool;
  r_invariant_msg : string;
  r_partition_ok : bool;
  r_events : event array;
}

let retry_bucket r =
  if r = 0 then 0 else if r = 1 then 1 else if r <= 3 then 2 else if r <= 7 then 3 else 4

(* ------------------------------------------------------------------ *)
(* The run                                                              *)
(* ------------------------------------------------------------------ *)

let run (tm_cfg : Tm.config) ~threads cfg =
  if threads <= 0 then invalid_arg "Serve.run: threads must be positive";
  if threads > tm_cfg.Tm.n_cores then invalid_arg "Serve.run: threads > n_cores";
  if cfg.requests <= 0 then invalid_arg "Serve.run: requests must be positive";
  if cfg.queue_cap <= 0 then invalid_arg "Serve.run: queue_cap must be positive";
  if cfg.accounts < 2 then invalid_arg "Serve.run: need at least 2 accounts";
  if cfg.records < 1 then invalid_arg "Serve.run: need at least 1 record";
  let reqs = schedule cfg ~seed:tm_cfg.Tm.seed ~threads in
  let span = reqs.(cfg.requests - 1).rq_arrival in
  let sys = Tm.create tm_cfg in
  let setup_o = Ops.setup sys in
  let state = make_state sys setup_o cfg reqs in
  (* The closed-loop probe delivers the whole population at cycle 0; its
     queue must hold it (capacity is what is being measured, shedding
     would clip it). *)
  let cap_limit =
    match cfg.arrival with Closed -> cfg.requests | _ -> cfg.queue_cap
  in
  let queues =
    Array.init threads (fun _ ->
        { buf = Array.make cap_limit None; head = 0; len = 0 })
  in
  let completed = ref 0
  and shed = ref 0
  and timeout = ref 0
  and late = ref 0 in
  let retries_total = ref 0 in
  let hist = Array.make 5 0 in
  let completed_inserts = ref 0
  and completed_orders = ref 0
  and audit_fails = ref 0 in
  let serial_served = ref 0
  and max_depth = ref 0
  and max_dl_wait = ref 0 in
  let latencies = Array.make cfg.requests (-1) in
  (* History recording (host-side only — never touches simulated time, so
     recording on/off cannot change any reported number). One slot per
     request id; a slot left [None] is itself a partition violation. *)
  let events : event option array =
    Array.make (if cfg.record then cfg.requests else 0) None
  in
  let record rq ~respond outcome =
    if cfg.record then
      events.(rq.rq_id) <-
        Some
          {
            ev_id = rq.rq_id;
            ev_op = rq.rq_op;
            ev_invoke = rq.rq_arrival;
            ev_respond = respond;
            ev_outcome = outcome;
          }
  in
  let accounted () = !completed + !shed + !timeout in
  (* Governor watermarks scale with total queue capacity. *)
  let total_cap = cap_limit * threads in
  let gov =
    governor_create ~hi:(max 1 (total_cap * 3 / 4)) ~lo:(total_cap / 8) ()
  in
  let last_sample = ref 0 in
  let total_depth () = Array.fold_left (fun acc q -> acc + q.len) 0 queues in
  let gov_poll t =
    if cfg.governor && t - !last_sample >= cfg.sample_every then begin
      last_sample := t;
      governor_step gov ~now:t ~depth:(total_depth ())
        ~commits:(Tm.total_commits sys)
    end
  in
  let effective_cap () =
    if not cfg.governor then cap_limit
    else
      match governor_state gov with
      | Normal -> cap_limit
      | Shedding | Serial -> max 1 (cap_limit / 2)
  in
  (* Arrival injection: a chain of absolute-time events (each admits one
     request, then schedules the next), so the engine heap carries at
     most one pending arrival besides the workers. Admission control
     happens here, at "network" level: it consumes no worker cycles. *)
  let engine = Tm.engine sys in
  let rec inject i =
    if i < cfg.requests then begin
      let r = reqs.(i) in
      Engine.spawn_at engine ~core:r.rq_core ~time:r.rq_arrival (fun () ->
          gov_poll r.rq_arrival;
          let q = queues.(r.rq_core) in
          if q.len >= effective_cap () then begin
            incr shed;
            record r ~respond:r.rq_arrival Ev_shed
          end
          else begin
            qpush q r;
            if q.len > !max_depth then max_depth := q.len
          end;
          inject (i + 1))
    end
  in
  inject 0;
  let serve_one ctx o rq =
    let dl = Option.map (fun d -> rq.rq_arrival + d) cfg.deadline in
    match dl with
    | Some d when Tm.now ctx >= d ->
        (* Expired while queued: drop without burning a single cycle on
           work nobody is waiting for anymore. *)
        incr timeout;
        record rq ~respond:(Tm.now ctx) Ev_timeout
    | _ ->
        let forced = cfg.governor && governor_state gov = Serial in
        Tm.set_force_serial ctx forced;
        if forced then incr serial_served;
        let st = Tm.stats ctx in
        let a0 = Stats.attempts st in
        let outcome =
          match dl with
          | None -> Ok (Tm.atomic ctx (fun () -> exec_op o state rq))
          | Some d -> (
              try Ok (Tm.atomic_until ctx ~deadline:d (fun () -> exec_op o state rq))
              with Tm.Deadline_exceeded _ -> Error ())
        in
        if dl <> None then begin
          let w = Tm.deadline_wait ctx in
          if w > !max_dl_wait then max_dl_wait := w
        end;
        (match outcome with
        | Ok (extra, obs) ->
            let fin = Tm.now ctx in
            latencies.(rq.rq_id) <- fin - rq.rq_arrival;
            let rt = max 0 (Stats.attempts st - a0 - 1) in
            retries_total := !retries_total + rt;
            hist.(retry_bucket rt) <- hist.(retry_bucket rt) + 1;
            (match rq.rq_op with
            | Insert _ -> completed_inserts := !completed_inserts + extra
            | Order _ -> completed_orders := !completed_orders + extra
            | Audit -> audit_fails := !audit_fails + extra
            | Read _ | Update _ | Scan _ | Rmw _ | Settle _ -> ());
            (match dl with Some d when fin > d -> incr late | _ -> ());
            incr completed;
            record rq ~respond:fin
              (Ev_done { obs; commit = Tm.last_commit_cycle ctx })
        | Error () ->
            let rt = max 0 (Stats.attempts st - a0) in
            retries_total := !retries_total + rt;
            incr timeout;
            record rq ~respond:(Tm.now ctx) Ev_timeout)
  in
  let ctxs =
    List.init threads (fun core ->
        Tm.spawn sys ~core (fun ctx ->
            let o = Ops.tx ctx in
            let rec loop () =
              if accounted () < cfg.requests then begin
                (match qpop queues.(core) with
                | None -> Tm.work ctx cfg.poll
                | Some rq -> serve_one ctx o rq);
                gov_poll (Tm.now ctx);
                loop ()
              end
            in
            loop ()))
  in
  Tm.run sys;
  (* Outcome-partition invariant, *recorded* rather than asserted: an
     assert here would tear the run down before any report exists, so a
     partition bug on an early-exit path was invisible. The caller turns
     [r_partition_ok = false] into a structured Finding and a non-zero
     exit instead. *)
  let partition_ok = accounted () = cfg.requests in
  let agg = Stats.create () in
  List.iter (fun c -> Stats.add (Tm.stats c) ~into:agg) ctxs;
  let lats =
    Array.of_list (List.filter (fun x -> x >= 0) (Array.to_list latencies))
  in
  Array.sort compare lats;
  let n_lat = Array.length lats in
  let pct q =
    if n_lat = 0 then 0
    else
      lats.(min (n_lat - 1)
              (max 0 (int_of_float (ceil (q *. float_of_int n_lat)) - 1)))
  in
  let mean =
    if n_lat = 0 then 0.0
    else float_of_int (Array.fold_left ( + ) 0 lats) /. float_of_int n_lat
  in
  let makespan = Tm.makespan sys in
  let params = tm_cfg.Tm.params in
  let per_ms n cycles =
    if cycles <= 0 || n = 0 then 0.0
    else float_of_int n /. Params.cycles_to_ms params cycles
  in
  let offered =
    match cfg.arrival with
    | Closed -> per_ms cfg.requests makespan
    | _ -> per_ms cfg.requests (max 1 span)
  in
  let to_shed, to_serial, recovered = governor_census gov in
  let inv_ok, inv_msg =
    match state with
    | Kv_state s ->
        let size = Thashmap.size setup_o s.map in
        let expect = cfg.records + !completed_inserts in
        ( size = expect,
          Printf.sprintf "kv size %d = %d preloaded + %d committed inserts" size
            cfg.records !completed_inserts )
    | Ledger_state s ->
        let total =
          Array.fold_left (fun acc a -> acc + Tm.setup_peek sys a) 0 s.accounts
        in
        let head = Tm.setup_peek sys s.head in
        let ok =
          total = cfg.accounts * initial_balance
          && head = !completed_orders
          && !audit_fails = 0
        in
        ( ok,
          Printf.sprintf
            "balance %d/%d, order log %d/%d committed orders, %d audit failures"
            total
            (cfg.accounts * initial_balance)
            head !completed_orders !audit_fails )
  in
  {
    r_service = service_name cfg.service;
    r_arrivals = cfg.requests;
    r_completed = !completed;
    r_shed = !shed;
    r_timeout = !timeout;
    r_late = !late;
    r_retries = !retries_total;
    r_retry_hist = hist;
    r_timeout_aborts = (Stats.aborts agg).(Asf_core.Abort.index Asf_core.Abort.Timeout);
    r_serial_served = !serial_served;
    r_max_depth = !max_depth;
    r_max_dl_wait = !max_dl_wait;
    r_gov_to_shed = to_shed;
    r_gov_to_serial = to_serial;
    r_gov_recovered = recovered;
    r_final_gov = gov_state_name (governor_state gov);
    r_p50 = pct 0.50;
    r_p90 = pct 0.90;
    r_p99 = pct 0.99;
    r_p999 = pct 0.999;
    r_max_lat = (if n_lat = 0 then 0 else lats.(n_lat - 1));
    r_mean_lat = mean;
    r_span = span;
    r_makespan = makespan;
    r_offered = offered;
    r_achieved = per_ms !completed makespan;
    r_stats = agg;
    r_invariant_ok = inv_ok;
    r_invariant_msg = inv_msg;
    r_partition_ok = partition_ok;
    r_events =
      Array.of_list
        (List.filter_map Fun.id (Array.to_list events));
  }

(* ------------------------------------------------------------------ *)
(* Capacity and the offered-load sweep                                  *)
(* ------------------------------------------------------------------ *)

let measure_capacity tm_cfg ~threads cfg =
  let probe = { cfg with arrival = Closed; deadline = None; governor = false } in
  (run tm_cfg ~threads probe).r_achieved

let knee_point ?(threshold = 0.9) pts =
  let good = List.filter (fun (o, a) -> a >= threshold *. o) pts in
  let saturated = List.exists (fun (o, a) -> a < threshold *. o) pts in
  if not saturated then None
  else Some (List.fold_left (fun acc (o, _) -> max acc o) 0.0 good)

let sweep (tm_cfg : Tm.config) ~threads cfg ~mults =
  let capacity = measure_capacity tm_cfg ~threads cfg in
  let cycles_per_ms = 1.0 /. Params.cycles_to_ms tm_cfg.Tm.params 1 in
  let results =
    List.map
      (fun m ->
        let offered = capacity *. m in
        let mean_gap =
          max 1 (int_of_float (cycles_per_ms /. Float.max 1e-9 offered))
        in
        (m, run tm_cfg ~threads { cfg with arrival = Poisson { mean_gap } }))
      mults
  in
  let pts = List.map (fun (_, r) -> (r.r_offered, r.r_achieved)) results in
  (results, knee_point pts)
