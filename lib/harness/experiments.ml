module Params = Asf_machine.Params
module Abort = Asf_core.Abort
module Variant = Asf_core.Variant
module Stats = Asf_tm_rt.Stats
module Tm = Asf_tm_rt.Tm
module Intset = Asf_intset.Intset
module Stamp = Asf_stamp.Stamp
module C = Asf_stamp.Stamp_common
module Parallel = Asf_parallel.Parallel
module Serve = Asf_serve.Serve
module Txlin = Asf_txlin.Txlin
module Hierarchy = Asf_cache.Hierarchy

type t = {
  id : string;
  description : string;
  run : quick:bool -> seed:int -> Report.t list;
}

let threads_all = [ 1; 2; 4; 8 ]

let cfg mode ~threads ~seed = { (Tm.default_config mode ~n_cores:threads) with Tm.seed }

let ms cycles = Params.cycles_to_ms Params.barcelona cycles

type mode_spec = { mname : string; mode : Tm.mode }

let asf_modes =
  List.map (fun v -> { mname = v.Variant.name; mode = Tm.Asf_mode v }) Variant.all

let stm_mode = { mname = "TinySTM"; mode = Tm.Stm_mode }

(* ------------------------------------------------------------------ *)
(* Parallel cells                                                       *)
(* ------------------------------------------------------------------ *)

(* Every simulator run below goes through {!Parallel.cell_map}: each
   experiment enumerates its independent (workload x mode x threads)
   combinations as a list of cells, runs them across the pool, and
   assembles rows from the results — which come back in submission order
   whatever the degree of parallelism, so [--jobs n] output is
   bit-identical to [--jobs 1]. Cells must be self-contained: they never
   touch [stamp_cache] (main-domain state) and any formatting they do is
   pure. *)

(* Split [xs] into consecutive chunks of [n] (length must divide). *)
let chunk n xs =
  let rec take k acc xs =
    if k = 0 then (List.rev acc, xs)
    else
      match xs with
      | [] -> invalid_arg "chunk: ragged input"
      | x :: tl -> take (k - 1) (x :: acc) tl
  in
  let rec go xs = if xs = [] then [] else
    let c, rest = take n [] xs in
    c :: go rest
  in
  go xs

(* ------------------------------------------------------------------ *)
(* Memoised runs (Fig. 4 and Fig. 6 share one sweep)                    *)
(* ------------------------------------------------------------------ *)

let stamp_cache : (string, C.result) Hashtbl.t = Hashtbl.create 128

let stamp_key ~quick ~seed app spec ~threads =
  Printf.sprintf "%s/%s/%d/%b/%d" (Stamp.name app) spec.mname threads quick seed

let stamp_cell ~quick ~seed (app, spec, threads) =
  let scale = if quick then 0.25 else 1.0 in
  Stamp.run_scaled app ~scale (cfg spec.mode ~threads ~seed) ~threads

let stamp_run ~quick ~seed app spec ~threads =
  let key = stamp_key ~quick ~seed app spec ~threads in
  match Hashtbl.find_opt stamp_cache key with
  | Some r -> r
  | None ->
      let r = stamp_cell ~quick ~seed (app, spec, threads) in
      Hashtbl.add stamp_cache key r;
      r

(* Fill [stamp_cache] for every combination in one parallel pass, so the
   assembly loops below hit the cache. The cache is the one piece of
   state shared across experiments; it is only ever read and written
   here, on the calling (main) domain. *)
let stamp_prefetch ~quick ~seed combos =
  let missing =
    List.filter
      (fun (app, spec, threads) ->
        not (Hashtbl.mem stamp_cache (stamp_key ~quick ~seed app spec ~threads)))
      combos
  in
  let results = Parallel.cell_map (stamp_cell ~quick ~seed) missing in
  List.iter2
    (fun (app, spec, threads) r ->
      Hashtbl.replace stamp_cache (stamp_key ~quick ~seed app spec ~threads) r)
    missing results

(* ------------------------------------------------------------------ *)
(* fig3                                                                 *)
(* ------------------------------------------------------------------ *)

let fig3 ~quick ~seed =
  let entries = Calibration.measure ~quick ~seed in
  [
    Report.make ~id:"fig3"
      ~title:
        "Simulator accuracy methodology: detailed (Barcelona) vs native-reference \
         model, STAMP, 1 thread, no TM (% deviation)"
      ~notes:
        [
          "Substitution: no x86 silicon available; the reference side is the \
           analytical native-reference profile (see DESIGN.md).";
          "The paper reports 10-15% deviation for 5 of 8 apps.";
        ]
      [ "app"; "detailed (cycles)"; "reference (cycles)"; "deviation" ]
      (List.map
         (fun e ->
           [
             e.Calibration.app;
             string_of_int e.Calibration.detailed_cycles;
             string_of_int e.Calibration.reference_cycles;
             Report.pct e.Calibration.deviation_pct;
           ])
         entries);
  ]

(* ------------------------------------------------------------------ *)
(* fig4                                                                 *)
(* ------------------------------------------------------------------ *)

let fig4_combos =
  List.concat_map
    (fun app ->
      List.concat_map
        (fun spec -> List.map (fun threads -> (app, spec, threads)) threads_all)
        (asf_modes @ [ stm_mode ]))
    Stamp.all

let fig4 ~quick ~seed =
  let scale = if quick then 0.25 else 1.0 in
  stamp_prefetch ~quick ~seed fig4_combos;
  let seqs =
    Parallel.cell_map
      (fun app ->
        Stamp.run_scaled app ~scale (cfg Tm.Seq_mode ~threads:1 ~seed) ~threads:1)
      Stamp.all
  in
  let rows =
    List.concat
      (List.map2
         (fun app seq ->
           let tm_rows =
             List.map
               (fun spec ->
                 let times =
                   List.map
                     (fun threads ->
                       let r = stamp_run ~quick ~seed app spec ~threads in
                       Report.f3 (ms r.C.cycles) ^ if C.ok r then "" else "!")
                     threads_all
                 in
                 (Stamp.name app :: spec.mname :: times)
                 @ [])
               (asf_modes @ [ stm_mode ])
           in
           let seq_ms = Report.f3 (ms seq.C.cycles) in
           tm_rows
           @ [ [ Stamp.name app; "Sequential"; seq_ms; seq_ms; seq_ms; seq_ms ] ])
         Stamp.all seqs)
  in
  [
    Report.make ~id:"fig4"
      ~title:"STAMP execution time (simulated ms; lower is better)"
      ~notes:
        [
          "Sequential is the uninstrumented single-thread baseline (the paper's \
           horizontal bars).";
          "A trailing '!' marks a failed application self-check.";
        ]
      [ "app"; "config"; "1 thread"; "2 threads"; "4 threads"; "8 threads" ]
      rows;
  ]

(* ------------------------------------------------------------------ *)
(* fig5                                                                 *)
(* ------------------------------------------------------------------ *)

let fig5_panels =
  [
    (Intset.Linked_list, 28, 20);
    (Intset.Linked_list, 512, 20);
    (Intset.Skip_list, 1024, 20);
    (Intset.Skip_list, 8192, 20);
    (Intset.Rb_tree, 1024, 20);
    (Intset.Rb_tree, 8192, 20);
    (Intset.Hash_set, 256, 100);
    (Intset.Hash_set, 128000, 100);
  ]

let intset_cfg ~quick structure ~range ~update_pct ~early_release =
  {
    (Intset.default_cfg structure) with
    Intset.range;
    update_pct;
    early_release;
    txns_per_thread = (if quick then 300 else 1500);
  }

let panel_name (s, range, upd) =
  Printf.sprintf "%s r=%d %d%%upd" (Intset.structure_name s) range upd

let fig5 ~quick ~seed =
  let grid =
    List.concat_map
      (fun panel ->
        List.map (fun spec -> (panel, spec)) asf_modes)
      fig5_panels
  in
  let results =
    Parallel.cell_map
      (fun (((structure, range, upd), spec), threads) ->
        let c = intset_cfg ~quick structure ~range ~update_pct:upd ~early_release:false in
        let r = Intset.run (cfg spec.mode ~threads ~seed) ~threads c in
        Report.f2 r.Intset.throughput_tx_per_us
        ^ (if r.Intset.size_ok then "" else "!"))
      (List.concat_map
         (fun cell -> List.map (fun threads -> (cell, threads)) threads_all)
         grid)
  in
  let rows =
    List.map2
      (fun (panel, spec) cells -> panel_name panel :: spec.mname :: cells)
      grid
      (chunk (List.length threads_all) results)
  in
  [
    Report.make ~id:"fig5"
      ~title:"IntegerSet scalability (throughput, tx/us; higher is better)"
      ~notes:[ "Panels follow Fig. 5: key range and update percentage per panel." ]
      [ "panel"; "variant"; "1 thread"; "2 threads"; "4 threads"; "8 threads" ]
      rows;
  ]

(* ------------------------------------------------------------------ *)
(* fig6                                                                 *)
(* ------------------------------------------------------------------ *)

(* The paper's abort classes: contention (incl. explicit retries),
   capacity, page fault, system call / interrupt, malloc. *)
let abort_classes stats =
  let a = Stats.aborts stats in
  let attempts = float_of_int (max 1 (Stats.attempts stats)) in
  let pct xs =
    100.0 *. float_of_int (List.fold_left (fun acc i -> acc + a.(i)) 0 xs) /. attempts
  in
  [
    pct [ Abort.index Abort.Contention; Abort.index (Abort.Explicit 0) ];
    pct [ Abort.index Abort.Capacity; Abort.index Abort.Tlb_miss ];
    pct [ Abort.index (Abort.Page_fault 0) ];
    pct [ Abort.index Abort.Interrupt; Abort.index Abort.Syscall ];
    pct [ Abort.index Abort.Malloc ];
  ]

let fig6 ~quick ~seed =
  stamp_prefetch ~quick ~seed
    (List.concat_map
       (fun app ->
         List.concat_map
           (fun spec -> List.map (fun threads -> (app, spec, threads)) threads_all)
           asf_modes)
       Stamp.all);
  let rows =
    List.concat_map
      (fun app ->
        List.concat_map
          (fun spec ->
            List.map
              (fun threads ->
                let r = stamp_run ~quick ~seed app spec ~threads in
                let classes = abort_classes r.C.stats in
                let total = List.fold_left ( +. ) 0.0 classes in
                [ Stamp.name app; spec.mname; string_of_int threads; Report.pct total ]
                @ List.map Report.pct classes)
              threads_all)
          asf_modes)
      Stamp.all
  in
  [
    Report.make ~id:"fig6"
      ~title:"STAMP abort rates by cause (% of transaction attempts)"
      [
        "app"; "variant"; "threads"; "total"; "contention"; "capacity";
        "page fault"; "intr/syscall"; "malloc";
      ]
      rows;
  ]

(* ------------------------------------------------------------------ *)
(* fig7                                                                 *)
(* ------------------------------------------------------------------ *)

let fig7 ~quick ~seed =
  let list_sizes =
    if quick then [ 6; 30; 126; 510 ] else [ 6; 14; 30; 62; 126; 254; 510 ]
  in
  let tree_sizes =
    if quick then [ 8; 64; 512; 4096 ]
    else [ 8; 16; 32; 64; 128; 256; 512; 1024; 2048; 4096 ]
  in
  let sweep structure sizes =
    let results =
      Parallel.cell_map
        (fun (size, spec) ->
          let c =
            {
              (intset_cfg ~quick structure ~range:(2 * size) ~update_pct:20
                 ~early_release:false)
              with
              Intset.init_size = Some size;
              txns_per_thread = (if quick then 150 else 600);
            }
          in
          let r = Intset.run (cfg spec.mode ~threads:8 ~seed) ~threads:8 c in
          Report.f2 r.Intset.throughput_tx_per_us)
        (List.concat_map
           (fun size -> List.map (fun spec -> (size, spec)) asf_modes)
           sizes)
    in
    List.map2
      (fun size cells ->
        Intset.structure_name structure :: string_of_int size :: cells)
      sizes
      (chunk (List.length asf_modes) results)
  in
  [
    Report.make ~id:"fig7"
      ~title:
        "ASF capacity vs throughput (8 threads, 20% updates; tx/us by initial size)"
      ([ "structure"; "initial size" ] @ List.map (fun s -> s.mname) asf_modes)
      (sweep Intset.Linked_list list_sizes @ sweep Intset.Rb_tree tree_sizes);
  ]

(* ------------------------------------------------------------------ *)
(* fig8                                                                 *)
(* ------------------------------------------------------------------ *)

let fig8 ~quick ~seed =
  let sizes = if quick then [ 6; 30; 126; 510 ] else [ 6; 14; 30; 62; 126; 254; 510 ] in
  let variants = [ Variant.llb8; Variant.llb256 ] in
  let rows =
    Parallel.cell_map
      (fun (variant, size) ->
        let run er =
          let c =
            {
              (intset_cfg ~quick Intset.Linked_list ~range:(2 * size)
                 ~update_pct:20 ~early_release:er)
              with
              Intset.init_size = Some size;
              txns_per_thread = (if quick then 150 else 600);
            }
          in
          Intset.run (cfg (Tm.Asf_mode variant) ~threads:8 ~seed) ~threads:8 c
        in
        let without = run false in
        let with_er = run true in
        [
          variant.Variant.name;
          string_of_int size;
          Report.f2 without.Intset.throughput_tx_per_us;
          Report.f2 with_er.Intset.throughput_tx_per_us;
          Report.f2
            (with_er.Intset.throughput_tx_per_us
            /. max 0.001 without.Intset.throughput_tx_per_us);
        ])
      (List.concat_map
         (fun variant -> List.map (fun size -> (variant, size)) sizes)
         variants)
  in
  [
    Report.make ~id:"fig8"
      ~title:"Early-release impact on the linked list (8 threads, 20% updates)"
      [ "variant"; "initial size"; "without ER (tx/us)"; "with ER (tx/us)"; "speedup" ]
      rows;
  ]

(* ------------------------------------------------------------------ *)
(* fig9 / tab1                                                          *)
(* ------------------------------------------------------------------ *)

let tab1_structures =
  [
    (Intset.Linked_list, 20);
    (Intset.Skip_list, 20);
    (Intset.Rb_tree, 20);
    (Intset.Hash_set, 100);
  ]

let breakdown_runs ~quick ~seed =
  Parallel.cell_map
    (fun (structure, upd) ->
      let c =
        {
          (intset_cfg ~quick structure ~range:256 ~update_pct:upd ~early_release:false)
          with
          Intset.txns_per_thread = (if quick then 500 else 3000);
        }
      in
      let asf =
        Intset.run (cfg (Tm.Asf_mode Variant.llb256) ~threads:1 ~seed) ~threads:1 c
      in
      let stm = Intset.run (cfg Tm.Stm_mode ~threads:1 ~seed) ~threads:1 c in
      (structure, asf, stm))
    tab1_structures

let tab1_categories =
  [
    ("Non-instr. code", Stats.cat_non_instr);
    ("Instr. app code", Stats.cat_app);
    ("Abort/restart", Stats.cat_abort_waste);
    ("Tx load/store", Stats.cat_ld_st);
    ("Tx start/commit", Stats.cat_start_commit);
  ]

let tab1 ~quick ~seed =
  let rows =
    List.concat_map
      (fun (structure, asf, stm) ->
        List.map
          (fun (cat_name, cat) ->
            let a = (Stats.cycles asf.Intset.stats).(cat) in
            let s = (Stats.cycles stm.Intset.stats).(cat) in
            [
              Intset.structure_name structure;
              cat_name;
              string_of_int a;
              string_of_int s;
              (if a = 0 then (if s = 0 then "-" else "0.00")
               else Report.f2 (float_of_int s /. float_of_int a));
            ])
          tab1_categories)
      (breakdown_runs ~quick ~seed)
  in
  [
    Report.make ~id:"tab1"
      ~title:
        "Single-thread cycle breakdown inside transactions: ASF-TM (LLB-256) vs \
         TinySTM (Table 1; ratio = STM / ASF)"
      [ "structure"; "category"; "ASF cycles"; "STM cycles"; "STM/ASF" ]
      rows;
  ]

let fig9 ~quick ~seed =
  let rows =
    List.concat_map
      (fun (structure, asf, stm) ->
        let stm_total =
          List.fold_left
            (fun acc (_, cat) -> acc + (Stats.cycles stm.Intset.stats).(cat))
            0 tab1_categories
        in
        let norm stats =
          List.map
            (fun (_, cat) ->
              Report.f3
                (float_of_int (Stats.cycles stats).(cat) /. float_of_int (max 1 stm_total)))
            tab1_categories
        in
        [
          (Intset.structure_name structure :: "ASF (LLB-256)" :: norm asf.Intset.stats);
          (Intset.structure_name structure :: "TinySTM" :: norm stm.Intset.stats);
        ])
      (breakdown_runs ~quick ~seed)
  in
  [
    Report.make ~id:"fig9"
      ~title:
        "Single-thread overhead breakdown, normalized to the STM total of each \
         structure (Fig. 9)"
      ([ "structure"; "system" ] @ List.map fst tab1_categories)
      rows;
  ]

(* ------------------------------------------------------------------ *)
(* Ablations                                                            *)
(* ------------------------------------------------------------------ *)

let abl_wins ~quick ~seed =
  let run requester_wins =
    let c =
      {
        (intset_cfg ~quick Intset.Rb_tree ~range:128 ~update_pct:50 ~early_release:false)
        with
        Intset.txns_per_thread = (if quick then 300 else 1500);
      }
    in
    let tm = { (cfg (Tm.Asf_mode Variant.llb256) ~threads:8 ~seed) with Tm.requester_wins } in
    Intset.run tm ~threads:8 c
  in
  let wins, loses =
    match Parallel.cell_map run [ true; false ] with
    | [ w; l ] -> (w, l)
    | _ -> assert false
  in
  let row name (r : Intset.result) =
    [
      name;
      Report.f2 r.Intset.throughput_tx_per_us;
      string_of_int (Stats.total_aborts r.Intset.stats);
      string_of_int (Stats.serial_commits r.Intset.stats);
    ]
  in
  [
    Report.make ~id:"abl-wins"
      ~title:
        "Ablation: requester-wins vs requester-loses contention management \
         (rb-tree, range 128, 50% updates, 8 threads)"
      [ "policy"; "tx/us"; "aborts"; "serial commits" ]
      [ row "requester-wins (ASF)" wins; row "requester-loses" loses ];
  ]

let abl_tlb ~quick ~seed =
  let run abort_on_tlb_miss =
    let c = intset_cfg ~quick Intset.Hash_set ~range:128000 ~update_pct:100 ~early_release:false in
    let tm = { (cfg (Tm.Asf_mode Variant.llb256) ~threads:8 ~seed) with Tm.abort_on_tlb_miss } in
    Intset.run tm ~threads:8 c
  in
  let asf_sem, rock_sem =
    match Parallel.cell_map run [ false; true ] with
    | [ a; r ] -> (a, r)
    | _ -> assert false
  in
  let row name (r : Intset.result) =
    let a = Stats.aborts r.Intset.stats in
    [
      name;
      Report.f2 r.Intset.throughput_tx_per_us;
      string_of_int a.(Abort.index Abort.Tlb_miss);
      string_of_int a.(Abort.index (Abort.Page_fault 0));
      string_of_int (Stats.total_aborts r.Intset.stats);
    ]
  in
  [
    Report.make ~id:"abl-tlb"
      ~title:
        "Ablation: ASF semantics (TLB misses survive) vs Rock-style TLB-miss \
         aborts (hash set, range 128000, 8 threads)"
      [ "semantics"; "tx/us"; "tlb-miss aborts"; "page-fault aborts"; "total aborts" ]
      [ row "ASF (no abort on TLB miss)" asf_sem; row "Rock-style" rock_sem ];
  ]

let abl_annot ~quick ~seed =
  let module Labyrinth = Asf_stamp.Labyrinth in
  let run privatized_snapshot =
    let tm = cfg (Tm.Asf_mode Variant.llb256) ~threads:4 ~seed in
    Labyrinth.run tm ~threads:4
      {
        Labyrinth.default with
        Labyrinth.privatized_snapshot;
        paths =
          (if quick then Labyrinth.default.Labyrinth.paths / 4
           else Labyrinth.default.Labyrinth.paths);
      }
  in
  let compiler_default, privatized =
    match Parallel.cell_map run [ false; true ] with
    | [ d; p ] -> (d, p)
    | _ -> assert false
  in
  let row name (r : C.result) =
    [
      name;
      Report.f3 (ms r.C.cycles);
      string_of_int (Stats.serial_commits r.C.stats);
      string_of_int (Stats.aborts r.C.stats).(Abort.index Abort.Capacity);
      string_of_bool (C.ok r);
    ]
  in
  [
    Report.make ~id:"abl-annot"
      ~title:
        "Ablation: selective annotation on labyrinth's grid snapshot (4 threads, \
         LLB-256). The compiler default instruments every shared read (the \
         paper's labyrinth); a hand-privatised snapshot exploits ASF's plain \
         accesses."
      [ "snapshot"; "time (ms)"; "serial commits"; "capacity aborts"; "valid" ]
      [
        row "transactional (compiler default)" compiler_default;
        row "privatised (selective annotation)" privatized;
      ];
  ]

let abl_backoff ~quick ~seed =
  let run backoff =
    let tm = { (cfg (Tm.Asf_mode Variant.llb256) ~threads:8 ~seed) with Tm.backoff } in
    Stamp.run_scaled Stamp.Intruder ~scale:(if quick then 0.25 else 1.0) tm ~threads:8
  in
  let on, off =
    match Parallel.cell_map run [ true; false ] with
    | [ on; off ] -> (on, off)
    | _ -> assert false
  in
  let row name (r : C.result) =
    [
      name;
      Report.f3 (ms r.C.cycles);
      string_of_int (Stats.total_aborts r.C.stats);
      string_of_bool (C.ok r);
    ]
  in
  [
    Report.make ~id:"abl-backoff"
      ~title:"Ablation: exponential back-off on/off (intruder, 8 threads)"
      [ "back-off"; "time (ms)"; "aborts"; "valid" ]
      [ row "exponential (ASF-TM)" on; row "none" off ];
  ]

let abl_cache ~quick ~seed =
  (* The third implementation variant of Section 2.3 (pure cache-based),
     which the paper describes but did not simulate, against the two it
     did. *)
  let variants = [ Variant.cache_based; Variant.llb256; Variant.llb256_l1; Variant.llb8 ] in
  let panels =
    [
      (Intset.Linked_list, 512, 20);
      (Intset.Rb_tree, 1024, 20);
      (Intset.Hash_set, 4096, 100);
    ]
  in
  let rows =
    Parallel.cell_map
      (fun ((structure, range, upd) as panel, v) ->
        let c = intset_cfg ~quick structure ~range ~update_pct:upd ~early_release:false in
        let r = Intset.run (cfg (Tm.Asf_mode v) ~threads:8 ~seed) ~threads:8 c in
        let a = Stats.aborts r.Intset.stats in
        [
          panel_name panel;
          v.Variant.name;
          Report.f2 r.Intset.throughput_tx_per_us;
          string_of_int a.(Abort.index Abort.Capacity);
          string_of_int (Stats.serial_commits r.Intset.stats);
        ])
      (List.concat_map
         (fun panel -> List.map (fun v -> (panel, v)) variants)
         panels)
  in
  [
    Report.make ~id:"abl-cache"
      ~title:
        "Extension: the pure cache-based implementation variant (Section 2.3) vs \
         the simulated ones (8 threads)"
      ~notes:
        [
          "Cache-based capacity is the whole L1 but bounded by 2-way \
           associativity for reads AND writes.";
        ]
      [ "panel"; "variant"; "tx/us"; "capacity aborts"; "serial commits" ]
      rows;
  ]

let abl_phased ~quick ~seed =
  (* Section 3.2's "more elaborate fallback": switch to an STM phase on
     capacity overflow instead of serialising (PhasedTM-style). *)
  let mk structure range =
    {
      (intset_cfg ~quick structure ~range ~update_pct:20 ~early_release:false) with
      Intset.txns_per_thread = (if quick then 200 else 800);
    }
  in
  let rows =
    Parallel.cell_map
      (fun ((label, structure, range), (mname, mode)) ->
        let c = mk structure range in
        let tm = cfg mode ~threads:8 ~seed in
        let r = Intset.run tm ~threads:8 c in
        [
          label;
          mname;
          Report.f2 r.Intset.throughput_tx_per_us;
          string_of_int (Stats.serial_commits r.Intset.stats);
        ])
      (List.concat_map
         (fun workload ->
           List.map
             (fun fallback -> (workload, fallback))
             [
               ("serial fallback (paper)", Tm.Asf_mode Variant.llb8);
               ("phased STM fallback", Tm.Phased_mode Variant.llb8);
               ("pure TinySTM", Tm.Stm_mode);
             ])
         [
           ("rb-tree r=16384", Intset.Rb_tree, 16384);
           ("linked-list r=1020", Intset.Linked_list, 1020);
         ])
  in
  [
    Report.make ~id:"abl-phased"
      ~title:
        "Extension: serial-irrevocable vs PhasedTM-style STM fallback on \
         capacity-bound workloads (LLB-8, 8 threads, 20% updates)"
      ~notes:
        [
          "The software phase wins where the STM scales (rb-tree) and loses \
           where it does not (long linked lists) - fallback choice is \
           workload-dependent.";
        ]
      [ "workload"; "fallback"; "tx/us"; "serial commits" ]
      rows;
  ]

let abl_wb ~quick ~seed =
  (* The paper runs TinySTM in write-through mode; the write-back
     alternative trades cheaper aborts for buffered loads and commit-time
     write-back. *)
  let strategies =
    [
      ("write-through (paper)", Asf_stm.Tinystm.Write_through);
      ("write-back", Asf_stm.Tinystm.Write_back);
    ]
  in
  let panels =
    [ (Intset.Rb_tree, 1024, 20); (Intset.Hash_set, 4096, 100); (Intset.Linked_list, 128, 20) ]
  in
  let rows =
    Parallel.cell_map
      (fun (((structure, range, upd) as panel), (sname, stm_strategy), threads) ->
        let c = intset_cfg ~quick structure ~range ~update_pct:upd ~early_release:false in
        let tm = { (cfg Tm.Stm_mode ~threads ~seed) with Tm.stm_strategy } in
        let r = Intset.run tm ~threads c in
        [
          panel_name panel;
          sname;
          string_of_int threads;
          Report.f2 r.Intset.throughput_tx_per_us;
          string_of_int (Stats.total_aborts r.Intset.stats);
        ])
      (List.concat_map
         (fun panel ->
           List.concat_map
             (fun strategy ->
               List.map (fun threads -> (panel, strategy, threads)) [ 1; 8 ])
             strategies)
         panels)
  in
  [
    Report.make ~id:"abl-wb"
      ~title:"Ablation: TinySTM write-through (the paper's choice) vs write-back"
      [ "panel"; "strategy"; "threads"; "tx/us"; "aborts" ]
      rows;
  ]

let abl_socket ~quick ~seed =
  (* The paper's simulated cores all sit on one socket ("resembling
     future processors with higher levels of core integration"); this
     extension splits them across two sockets with an interconnect hop
     and a per-socket L3, quantifying what that choice hides. *)
  let run params structure threads =
    let c =
      {
        (intset_cfg ~quick structure ~range:1024
           ~update_pct:(match structure with Intset.Hash_set -> 100 | _ -> 20)
           ~early_release:false)
        with
        Intset.txns_per_thread = (if quick then 200 else 1000);
      }
    in
    let tm = { (cfg (Tm.Asf_mode Variant.llb256) ~threads ~seed) with Tm.params } in
    (Intset.run tm ~threads c).Intset.throughput_tx_per_us
  in
  let rows =
    Parallel.cell_map
      (fun ((sname, structure), threads) ->
        let single = run Params.barcelona structure threads in
        let dual = run Params.dual_socket structure threads in
        [
          sname;
          string_of_int threads;
          Report.f2 single;
          Report.f2 dual;
          Report.f2 (dual /. max 0.001 single);
        ])
      (List.concat_map
         (fun s -> List.map (fun threads -> (s, threads)) [ 2; 4; 8 ])
         [ ("rb-tree", Intset.Rb_tree); ("hash-set", Intset.Hash_set) ])
  in
  [
    Report.make ~id:"abl-socket"
      ~title:
        "Extension: single-socket (paper) vs dual-socket topology with an interconnect hop (LLB-256; throughput tx/us)"
      [ "structure"; "threads"; "1 socket"; "2 sockets"; "ratio" ]
      rows;
  ]

(* ------------------------------------------------------------------ *)
(* Extension: open-system serving under overload                        *)
(* ------------------------------------------------------------------ *)

(* Each cell measures the closed-loop capacity of one service, then
   offers a Poisson load at a multiple of it — below the knee (0.8x) and
   in sustained overload (2x) — with per-request deadlines and the
   overload governor on. The overload rows are the robustness exhibit:
   explicit shed/timeout censuses and a bounded queue instead of a
   collapse. *)
let serve_exp ~quick ~seed =
  let threads = 4 in
  let requests = if quick then 400 else 1500 in
  let deadline_cycles p us = int_of_float (float_of_int us *. p.Params.ghz *. 1000.) in
  let rows =
    Parallel.cell_map
      (fun (sname, service, mult) ->
        let tm = cfg (Tm.Asf_mode Variant.llb256) ~threads ~seed in
        let base =
          {
            (Serve.default_cfg service) with
            Serve.requests;
            queue_cap = 16;
            deadline = Some (deadline_cycles tm.Tm.params 4);
            record = true;
          }
        in
        let capacity = Serve.measure_capacity tm ~threads base in
        let cycles_per_ms = 1.0 /. Params.cycles_to_ms tm.Tm.params 1 in
        let mean_gap =
          max 1 (int_of_float (cycles_per_ms /. Float.max 1e-9 (capacity *. mult)))
        in
        let cell_cfg = { base with Serve.arrival = Serve.Poisson { mean_gap } } in
        let r = Serve.run tm ~threads cell_cfg in
        let v = Txlin.check_result cell_cfg r in
        [
          sname;
          Report.f2 mult;
          Report.f2 r.Serve.r_offered;
          Report.f2 r.Serve.r_achieved;
          string_of_int r.Serve.r_p50;
          string_of_int r.Serve.r_p99;
          string_of_int r.Serve.r_shed;
          string_of_int r.Serve.r_timeout;
          string_of_int r.Serve.r_max_depth;
          r.Serve.r_final_gov;
          (if r.Serve.r_invariant_ok && r.Serve.r_partition_ok then "ok"
           else "FAIL");
          (if v.Txlin.v_ok then "ok"
           else if v.Txlin.v_inconclusive then "inconcl"
           else "FAIL");
        ])
      (List.concat_map
         (fun (sname, service) ->
           List.map (fun mult -> (sname, service, mult)) [ 0.8; 2.0 ])
         [
           ("kv-a", Serve.Kv Serve.A);
           ("kv-e", Serve.Kv Serve.E);
           ("ledger", Serve.Ledger);
         ])
  in
  [
    Report.make ~id:"serve"
      ~title:
        "Extension: open-system serving under offered load (Poisson arrivals, 4-us deadlines, governor on; load = multiple of measured capacity; req/ms)"
      ~notes:
        [
          "shed + timeout + completed = arrivals (outcome partition); depth is \
           bounded by the admission cap";
          "lin = Txlin linearizability verdict over the recorded \
           request/response history";
        ]
      [
        "service"; "load"; "offered"; "achieved"; "p50"; "p99"; "shed"; "timeout";
        "depth"; "gov"; "inv"; "lin";
      ]
      rows;
  ]

(* ------------------------------------------------------------------ *)
(* Extension: big-topology scale runs (64 cores / 4 sockets)            *)
(* ------------------------------------------------------------------ *)

(* Fig. 4/Fig. 5 slices plus one serve workload on the 64c4s preset —
   8x the paper's core count, spread over four sockets. Above 62 cores
   the directory runs on the limited-pointer/coarse-vector sharer
   backend, so these rows also exercise the representation the bitmask
   cannot reach. Each cell reports its own coherence traffic, read as a
   delta of the executing domain's counters around the run (cells are
   synchronous on their domain, so the delta is exactly the cell's). *)
let scale ~quick ~seed =
  let topo = Params.topo_64c4s in
  let threads = topo.Params.topo_cores in
  let cfg64 mode = { (cfg mode ~threads ~seed) with Tm.params = topo.Params.topo_params } in
  let coh_delta f =
    let c0 = Hierarchy.domain_coherence () in
    let v = f () in
    let c1 = Hierarchy.domain_coherence () in
    (v, [ c1.(0) - c0.(0); c1.(1) - c0.(1); c1.(2) - c0.(2) ])
  in
  let coh_cols d = List.map string_of_int d in
  let stamp_rows =
    Parallel.cell_map
      (fun (app, spec) ->
        let scale_f = if quick then 0.1 else 0.3 in
        let r, d =
          coh_delta (fun () ->
              Stamp.run_scaled app ~scale:scale_f (cfg64 spec.mode) ~threads)
        in
        [
          Stamp.name app; spec.mname;
          Report.f3 (ms r.C.cycles) ^ " ms" ^ (if C.ok r then "" else "!");
        ]
        @ coh_cols d)
      (List.concat_map
         (fun app -> List.map (fun spec -> (app, spec)) [ List.nth asf_modes 0; List.nth asf_modes 1 ])
         [ Stamp.Kmeans_low; Stamp.Ssca2 ])
  in
  let intset_rows =
    Parallel.cell_map
      (fun ((sname, structure, range, upd), spec) ->
        let c =
          {
            (intset_cfg ~quick structure ~range ~update_pct:upd
               ~early_release:false)
            with
            Intset.txns_per_thread = (if quick then 40 else 150);
          }
        in
        let r, d =
          coh_delta (fun () -> Intset.run (cfg64 spec.mode) ~threads c)
        in
        [
          Printf.sprintf "%s r=%d %d%%upd" sname range upd;
          spec.mname;
          Report.f2 r.Intset.throughput_tx_per_us
          ^ " tx/us"
          ^ (if r.Intset.size_ok then "" else "!");
        ]
        @ coh_cols d)
      (List.concat_map
         (fun s ->
           List.map (fun spec -> (s, spec)) [ List.nth asf_modes 0; List.nth asf_modes 1 ])
         [
           ("rb-tree", Intset.Rb_tree, 8192, 20);
           ("hash-set", Intset.Hash_set, 128000, 100);
         ])
  in
  let serve_rows =
    Parallel.cell_map
      (fun () ->
        let tm = cfg64 (Tm.Asf_mode Variant.llb256) in
        let deadline_cycles us =
          int_of_float (float_of_int us *. tm.Tm.params.Params.ghz *. 1000.)
        in
        let scfg =
          {
            (Serve.default_cfg (Serve.Kv Serve.A)) with
            Serve.requests = (if quick then 400 else 1500);
            queue_cap = 16;
            deadline = Some (deadline_cycles 8);
            (* Fixed-gap underload: no capacity probe at 64 cores. *)
            arrival = Serve.Poisson { mean_gap = 2000 };
          }
        in
        let r, d = coh_delta (fun () -> Serve.run tm ~threads scfg) in
        [
          "serve kv-a"; "LLB-256";
          Printf.sprintf "%s req/ms p99=%d%s"
            (Report.f2 r.Serve.r_achieved)
            r.Serve.r_p99
            (if r.Serve.r_invariant_ok && r.Serve.r_partition_ok then ""
             else "!");
        ]
        @ coh_cols d)
      [ () ]
  in
  [
    Report.make ~id:"scale"
      ~title:
        (Printf.sprintf
           "Extension: %d cores / %d sockets (limited-pointer directory) — \
            fig4/fig5 slices + serving"
           threads topo.Params.topo_params.Params.n_sockets)
      ~notes:
        [
          "Coherence columns are per-cell deltas: write-invalidation events, \
           cache-to-cache forwards, cross-socket probe penalties.";
          "A trailing '!' marks a failed self-check.";
        ]
      [ "workload"; "config"; "result"; "inval"; "fwd"; "xsock" ]
      (stamp_rows @ intset_rows @ serve_rows);
  ]

(* ------------------------------------------------------------------ *)
(* Registry                                                             *)
(* ------------------------------------------------------------------ *)

let all =
  [
    { id = "fig3"; description = "simulator accuracy methodology"; run = fig3 };
    { id = "fig4"; description = "STAMP scalability (execution time)"; run = fig4 };
    { id = "fig5"; description = "IntegerSet scalability (throughput)"; run = fig5 };
    { id = "fig6"; description = "STAMP abort-cause breakdown"; run = fig6 };
    { id = "fig7"; description = "capacity vs throughput"; run = fig7 };
    { id = "fig8"; description = "early-release impact"; run = fig8 };
    { id = "fig9"; description = "single-thread overhead (normalized)"; run = fig9 };
    { id = "tab1"; description = "single-thread cycle breakdown"; run = tab1 };
    { id = "abl-wins"; description = "requester-wins vs -loses"; run = abl_wins };
    { id = "abl-tlb"; description = "Rock-style TLB-miss aborts"; run = abl_tlb };
    { id = "abl-annot"; description = "selective annotation off"; run = abl_annot };
    { id = "abl-backoff"; description = "back-off off"; run = abl_backoff };
    { id = "abl-cache"; description = "cache-based ASF variant (extension)"; run = abl_cache };
    { id = "abl-phased"; description = "PhasedTM fallback (extension)"; run = abl_phased };
    { id = "abl-wb"; description = "STM write-through vs write-back"; run = abl_wb };
    { id = "abl-socket"; description = "dual-socket topology (extension)"; run = abl_socket };
    { id = "serve"; description = "open-system serving under overload (extension)"; run = serve_exp };
    { id = "scale"; description = "64-core / 4-socket big-topology runs (extension)"; run = scale };
  ]

let find id = List.find_opt (fun e -> e.id = id) all

let ids () = List.map (fun e -> e.id) all

let clear_cache () = Hashtbl.reset stamp_cache
