type t = {
  id : string;
  title : string;
  columns : string list;
  rows : string list list;
  notes : string list;
}

let make ~id ~title ?(notes = []) columns rows =
  List.iter
    (fun row ->
      if List.length row <> List.length columns then
        invalid_arg ("Report.make: ragged row in " ^ id))
    rows;
  { id; title; columns; rows; notes }

let widths t =
  let measure acc row = List.map2 (fun w cell -> max w (String.length cell)) acc row in
  List.fold_left measure (List.map String.length t.columns) t.rows

let pp fmt t =
  let ws = widths t in
  let line ch =
    Format.fprintf fmt "+%s+@." (String.concat "+" (List.map (fun w -> String.make (w + 2) ch) ws))
  in
  let row cells =
    let padded = List.map2 (fun w c -> Printf.sprintf " %-*s " w c) ws cells in
    Format.fprintf fmt "|%s|@." (String.concat "|" padded)
  in
  Format.fprintf fmt "@.== %s: %s ==@." t.id t.title;
  line '-';
  row t.columns;
  line '=';
  List.iter row t.rows;
  line '-';
  List.iter (fun n -> Format.fprintf fmt "note: %s@." n) t.notes

let print t = pp Format.std_formatter t

let csv_escape cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let to_csv t =
  let line cells = String.concat "," (List.map csv_escape cells) in
  String.concat "\n" (line t.columns :: List.map line t.rows) ^ "\n"

(* RFC-4180-style parser for what [to_csv] writes: quoted cells may
   contain commas, doubled quotes and newlines. Returns every row,
   header first. *)
let parse_csv s =
  let n = String.length s in
  let rows = ref [] and row = ref [] in
  let buf = Buffer.create 32 in
  let cell () =
    row := Buffer.contents buf :: !row;
    Buffer.clear buf
  in
  let line () =
    cell ();
    rows := List.rev !row :: !rows;
    row := []
  in
  let rec field i =
    (* start of a cell *)
    if i >= n then begin
      if !row <> [] || Buffer.length buf > 0 then line ();
      Ok ()
    end
    else if s.[i] = '"' then quoted (i + 1)
    else plain i
  and plain i =
    if i >= n then begin
      line ();
      Ok ()
    end
    else
      match s.[i] with
      | ',' ->
          cell ();
          field (i + 1)
      | '\n' ->
          line ();
          field (i + 1)
      | '"' -> Error (Printf.sprintf "parse_csv: stray quote at offset %d" i)
      | c ->
          Buffer.add_char buf c;
          plain (i + 1)
  and quoted i =
    if i >= n then Error "parse_csv: unterminated quoted cell"
    else if s.[i] = '"' then
      if i + 1 < n && s.[i + 1] = '"' then begin
        Buffer.add_char buf '"';
        quoted (i + 2)
      end
      else after_quote (i + 1)
    else begin
      Buffer.add_char buf s.[i];
      quoted (i + 1)
    end
  and after_quote i =
    if i >= n then begin
      line ();
      Ok ()
    end
    else
      match s.[i] with
      | ',' ->
          cell ();
          field (i + 1)
      | '\n' ->
          line ();
          field (i + 1)
      | _ ->
          Error
            (Printf.sprintf "parse_csv: text after closing quote at offset %d" i)
  in
  match field 0 with Ok () -> Ok (List.rev !rows) | Error _ as e -> e

let save_csv ~dir t =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (t.id ^ ".csv") in
  let oc = open_out path in
  output_string oc (to_csv t);
  close_out oc;
  path

let of_trace ~id tr =
  let module Trace = Asf_trace.Trace in
  let rows =
    List.filter_map
      (fun (name, n) -> if n = 0 then None else Some [ name; string_of_int n ])
      (Trace.counts tr)
  in
  let dropped = Trace.dropped tr in
  let rows =
    if dropped > 0 then rows @ [ [ "(dropped)"; string_of_int dropped ] ] else rows
  in
  make ~id ~title:"trace event summary"
    ~notes:
      (if dropped > 0 then
         [ "ring buffers overflowed; oldest events were dropped — raise the \
            capacity or narrow --trace-filter" ]
       else [])
    [ "event"; "count" ] rows

let of_check ~id chk =
  let module Check = Asf_check.Check in
  Check.finalize chk;
  let findings = Check.findings chk in
  let rows =
    List.map
      (fun (f : Check.finding) ->
        [
          Check.part_name f.Check.part;
          (match f.Check.severity with
          | Check.Violation -> "VIOLATION"
          | Check.Advisory -> "advisory");
          f.Check.kind;
          (match f.Check.line with
          | Some a -> Printf.sprintf "0x%x" a
          | None -> "-");
          String.concat " " (List.map string_of_int f.Check.cores);
          string_of_int f.Check.count;
          f.Check.detail;
        ])
      findings
  in
  let rows =
    if rows = [] then [ [ "-"; "clean"; "-"; "-"; "-"; "0"; "no findings" ] ]
    else rows
  in
  let trails =
    List.concat_map
      (fun (f : Check.finding) ->
        if f.Check.severity = Check.Violation && f.Check.trail <> [] then
          Printf.sprintf "%s trail:" f.Check.kind
          :: List.map (fun l -> "  " ^ l) f.Check.trail
        else [])
      findings
  in
  make ~id
    ~title:
      (Printf.sprintf "checker findings (%s)"
         (String.concat "," (List.map Check.part_name (Check.parts chk))))
    ~notes:trails
    [ "part"; "severity"; "kind"; "line"; "cores"; "count"; "detail" ]
    rows

let f1 x = Printf.sprintf "%.1f" x

let f2 x = Printf.sprintf "%.2f" x

let f3 x = Printf.sprintf "%.3f" x

let pct x = Printf.sprintf "%.1f%%" x
