(** Cross-validation of Txstatic against the runtime abort census.

    Runs small real workloads (the intset family and the bank example)
    under a Txcheck lint observer, gathers per-attempt access profiles,
    and checks the static capacity verdicts against what the hardware
    actually did: a workload statically judged to {e fit} an LLB variant
    must not produce a single runtime capacity abort at that LLB size —
    if it does, the analyzer under-approximated a footprint and the
    build fails. The opposite direction (static overflow, no runtime
    abort observed) is only a note: the explored inputs may simply not
    have hit the worst case at runtime. *)

type census = {
  v_workload : string;  (** analyzer workload name *)
  v_variant : Asf_core.Variant.t;
  v_attempts : int;  (** hardware attempts profiled *)
  v_cap_aborts : int;  (** attempts ended by a capacity abort *)
  v_max_footprint : int;  (** largest per-attempt protected set seen *)
}

val workload_names : string list
(** The workloads with a runtime twin: the four intset structures, the
    early-release linked list, and bank. *)

val census : seed:int -> variant:Asf_core.Variant.t -> string -> census option
(** Run one workload's runtime twin on [variant] with a lint checker
    attached; [None] for a name without a twin. The intset runs use
    {!Asf_analyze.Workloads.intset_range}/[update_pct]/[init]/[buckets],
    so both sides analyze the same configuration. *)

val cross_validate :
  seed:int -> Asf_analyze.Analyze.t -> census list * Asf_analyze.Findings.t list * string list
(** All censuses at LLB-8 and LLB-256 for every twin workload present in
    the analysis, the contradiction findings (static fits + runtime
    capacity abort — analyzer bugs, severity violation), and the soft
    notes. *)
