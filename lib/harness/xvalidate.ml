module Check = Asf_check.Check
module Tm = Asf_tm_rt.Tm
module Variant = Asf_core.Variant
module Prng = Asf_engine.Prng
module Intset = Asf_intset.Intset
module W = Asf_analyze.Workloads
module Analyze = Asf_analyze.Analyze
module Findings = Asf_analyze.Findings

type census = {
  v_workload : string;
  v_variant : Variant.t;
  v_attempts : int;
  v_cap_aborts : int;
  v_max_footprint : int;
}

let workload_names =
  [
    "intset-linked-list";
    "intset-linked-list-er";
    "intset-skip-list";
    "intset-rb-tree";
    "intset-hash-set";
    "bank";
  ]

let profile_census ~workload ~variant (chk : Check.t) =
  Check.finalize chk;
  let profiles = Check.attempt_profiles chk in
  {
    v_workload = workload;
    v_variant = variant;
    v_attempts = List.length profiles;
    v_cap_aborts =
      List.length (List.filter (fun p -> p.Check.p_capacity_abort) profiles);
    v_max_footprint =
      List.fold_left (fun m p -> max m p.Check.p_footprint) 0 profiles;
  }

(* The checker must be installed before Tm.create (systems attach at
   creation), and uninstalled before the next census. *)
let with_lint_checker f =
  let chk = Check.create ~parts:[ Check.Lint ] () in
  Check.install chk;
  Fun.protect ~finally:Check.uninstall (fun () -> f ());
  chk

let intset_census ~seed ~variant ~structure ~early_release name =
  let chk =
    with_lint_checker (fun () ->
        let cfg =
          {
            (Intset.default_cfg structure) with
            Intset.range = W.intset_range;
            update_pct = W.intset_update_pct;
            init_size = Some W.intset_init;
            txns_per_thread = 200;
            early_release;
            buckets = W.intset_buckets;
          }
        in
        let tm =
          { (Tm.default_config (Tm.Asf_mode variant) ~n_cores:4) with Tm.seed }
        in
        ignore (Intset.run tm ~threads:4 cfg))
  in
  profile_census ~workload:name ~variant chk

(* The bank example's loop: transfers with a full audit every 50th
   transaction (examples/bank.ml, scaled down). *)
let bank_census ~seed ~variant =
  let chk =
    with_lint_checker (fun () ->
        let tm =
          { (Tm.default_config (Tm.Asf_mode variant) ~n_cores:4) with Tm.seed }
        in
        let sys = Tm.create tm in
        let accounts = Array.init 64 (fun _ -> Tm.setup_alloc sys 1) in
        Array.iter (fun a -> Tm.setup_poke sys a 1000) accounts;
        let _ctxs =
          List.init 4 (fun core ->
              Tm.spawn sys ~core (fun ctx ->
                  let rng = Tm.prng ctx in
                  for i = 1 to 200 do
                    if i mod 50 = 0 then
                      ignore
                        (Tm.atomic ctx (fun () ->
                             Array.fold_left
                               (fun acc a -> acc + Tm.load ctx a)
                               0 accounts))
                    else begin
                      let src = accounts.(Prng.int rng 64) in
                      let dst = accounts.(Prng.int rng 64) in
                      let amount = Prng.int rng 20 in
                      Tm.atomic ctx (fun () ->
                          if src <> dst then begin
                            Tm.store ctx src (Tm.load ctx src - amount);
                            Tm.store ctx dst (Tm.load ctx dst + amount)
                          end)
                    end
                  done))
        in
        Tm.run sys)
  in
  profile_census ~workload:"bank" ~variant chk

let census ~seed ~variant name =
  let intset structure er =
    Some (intset_census ~seed ~variant ~structure ~early_release:er name)
  in
  match name with
  | "intset-linked-list" -> intset Intset.Linked_list false
  | "intset-linked-list-er" -> intset Intset.Linked_list true
  | "intset-skip-list" -> intset Intset.Skip_list false
  | "intset-rb-tree" -> intset Intset.Rb_tree false
  | "intset-hash-set" -> intset Intset.Hash_set false
  | "bank" -> Some (bank_census ~seed ~variant)
  | _ -> None

let cross_validate ~seed (a : Analyze.t) =
  let twins =
    List.filter
      (fun wr -> List.mem wr.Analyze.wr_workload workload_names)
      a.Analyze.a_reports
  in
  let censuses = ref [] and contradictions = ref [] and notes = ref [] in
  List.iter
    (fun wr ->
      List.iter
        (fun variant ->
          match census ~seed ~variant wr.Analyze.wr_workload with
          | None -> ()
          | Some c ->
              censuses := c :: !censuses;
              let verdict =
                Analyze.workload_verdict ~params:a.Analyze.a_params ~variant wr
              in
              (match (verdict, c.v_cap_aborts) with
              | Analyze.Fits, n when n > 0 ->
                  contradictions :=
                    Findings.make ~source:Findings.Static ~severity:"violation"
                      ~kind:"capacity-contradiction" ~workload:wr.Analyze.wr_workload
                      ~variant:variant.Variant.name ~count:n
                      ~detail:
                        (Printf.sprintf
                           "static verdict 'fits' but the runtime saw %d capacity \
                            abort(s) (max footprint %d) at the same LLB size: the \
                            analyzer under-approximated a footprint"
                           n c.v_max_footprint)
                      ()
                    :: !contradictions
              | Analyze.Overflows, 0 ->
                  notes :=
                    Printf.sprintf
                      "%s @ %s: static overflow never observed at runtime (the \
                       explored worst case did not occur in this run)"
                      wr.Analyze.wr_workload variant.Variant.name
                    :: !notes
              | _ -> ()))
        [ Variant.llb8; Variant.llb256 ])
    twins;
  (List.rev !censuses, List.rev !contradictions, List.rev !notes)
