(** Result tables for the experiment harness: aligned ASCII rendering for
    the terminal and CSV export for plotting. *)

type t = {
  id : string;  (** e.g. "fig5" *)
  title : string;
  columns : string list;
  rows : string list list;
  notes : string list;
}

val make : id:string -> title:string -> ?notes:string list -> string list -> string list list -> t

val pp : Format.formatter -> t -> unit

val print : t -> unit
(** [pp] to stdout. *)

val to_csv : t -> string

val parse_csv : string -> (string list list, string) result
(** Inverse of {!to_csv}: every row of the CSV text, header first, with
    quoting undone — [parse_csv (to_csv t) = Ok (t.columns :: t.rows)].
    [Error] describes the first malformed cell. *)

val save_csv : dir:string -> t -> string
(** Writes [<dir>/<id>.csv] (creating [dir]) and returns the path.
    @raise Sys_error when the directory or file cannot be written. *)

val of_trace : id:string -> Asf_trace.Trace.t -> t
(** Summary table of a tracer's per-kind event counts (zero-count kinds
    omitted), with a trailing row and note when ring-buffer overflow
    dropped events. *)

val of_check : id:string -> Asf_check.Check.t -> t
(** Findings table of a checker ({!Asf_check.Check.finalize} is called
    first): one row per deduplicated finding, violation event trails as
    notes, and a single [clean] row when there are none. *)

(** {1 Cell formatting helpers} *)

val f1 : float -> string
(** One decimal place. *)

val f2 : float -> string

val f3 : float -> string

val pct : float -> string
(** One decimal place with a trailing [%]. *)
