module Params = Asf_machine.Params
module Tm = Asf_tm_rt.Tm
module Stamp = Asf_stamp.Stamp
module C = Asf_stamp.Stamp_common

type entry = {
  app : string;
  detailed_cycles : int;
  reference_cycles : int;
  deviation_pct : float;
}

let run_with params app ~scale ~seed =
  let cfg = { (Tm.default_config Tm.Seq_mode ~n_cores:1) with Tm.params; seed } in
  (Stamp.run_scaled app ~scale cfg ~threads:1).C.cycles

let measure ~quick ~seed =
  let scale = if quick then 0.25 else 1.0 in
  (* One cell per application; both machine profiles run inside the cell
     (the deviation is a within-cell comparison). *)
  Asf_parallel.Parallel.cell_map
    (fun app ->
      let detailed = run_with Params.barcelona app ~scale ~seed in
      let reference = run_with Params.native_reference app ~scale ~seed in
      {
        app = Stamp.name app;
        detailed_cycles = detailed;
        reference_cycles = reference;
        deviation_pct =
          100.0 *. (float_of_int detailed -. float_of_int reference)
          /. float_of_int reference;
      })
    Stamp.all
