(** The experiment registry: one entry per table and figure of the paper's
    evaluation, plus the ablations called out in DESIGN.md.

    Every experiment is deterministic in [(quick, seed)]. [quick] runs a
    scaled-down configuration (used by the Bechamel wrappers and smoke
    tests); the default full configuration is the one recorded in
    EXPERIMENTS.md. Identical (application, mode, threads) runs are
    memoised within a process, so regenerating Fig. 4 and Fig. 6 together
    costs one sweep. *)

type t = {
  id : string;
  description : string;
  run : quick:bool -> seed:int -> Report.t list;
}

val all : t list
(** fig3 fig4 fig5 fig6 fig7 fig8 fig9 tab1 abl-wins abl-tlb abl-annot
    abl-backoff abl-cache abl-phased abl-wb abl-socket serve scale, in
    that order. *)

val find : string -> t option

val ids : unit -> string list

val clear_cache : unit -> unit
(** Drop memoised runs (so a timing harness measures real work). *)
