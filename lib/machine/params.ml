type t = {
  name : string;
  ghz : float;
  l1_bytes : int;
  l1_assoc : int;
  l1_latency : int;
  l2_bytes : int;
  l2_assoc : int;
  l2_latency : int;
  l3_bytes : int;
  l3_assoc : int;
  l3_latency : int;
  mem_latency : int;
  line_bytes : int;
  tlb_l1_entries : int;
  tlb_l2_entries : int;
  tlb_l2_assoc : int;
  tlb_l2_latency : int;
  page_walk_latency : int;
  page_fault_latency : int;
  coherence_probe_latency : int;
  ooo_factor : float;
  interrupt_quantum : int;
  n_sockets : int;
  cross_socket_latency : int;
}

let barcelona =
  {
    name = "barcelona";
    ghz = 2.2;
    l1_bytes = 64 * 1024;
    l1_assoc = 2;
    l1_latency = 3;
    l2_bytes = 512 * 1024;
    l2_assoc = 16;
    l2_latency = 15;
    l3_bytes = 2 * 1024 * 1024;
    l3_assoc = 16;
    l3_latency = 50;
    mem_latency = 210;
    line_bytes = 64;
    tlb_l1_entries = 48;
    tlb_l2_entries = 512;
    tlb_l2_assoc = 4;
    tlb_l2_latency = 5;
    page_walk_latency = 35;
    page_fault_latency = 2500;
    coherence_probe_latency = 40;
    (* An out-of-order three-wide core hides part of each load-to-use
       latency behind independent work; 0.6 keeps miss costs dominant while
       avoiding the fully-exposed in-order worst case. *)
    ooo_factor = 0.6;
    (* 1 ms timer tick at 2.2 GHz. *)
    interrupt_quantum = 2_200_000;
    n_sockets = 1;
    cross_socket_latency = 0;
  }

let dual_socket =
  {
    barcelona with
    name = "dual-socket";
    n_sockets = 2;
    (* A HyperTransport-like hop for probes and forwards that cross the
       socket boundary. *)
    cross_socket_latency = 110;
  }

let native_reference =
  {
    barcelona with
    name = "native-reference";
    (* Ideal-cache analytical stand-in: flat small latencies, no OOO
       correction needed because nothing is exposed. *)
    l1_latency = 3;
    l2_latency = 12;
    l3_latency = 40;
    mem_latency = 180;
    coherence_probe_latency = 30;
    ooo_factor = 0.5;
  }

let with_sockets p ~sockets =
  if sockets < 1 then invalid_arg "Params.with_sockets: sockets < 1";
  if sockets = p.n_sockets then p
  else
    {
      p with
      name = Printf.sprintf "%s/%ds" p.name sockets;
      n_sockets = sockets;
      (* Same HyperTransport-like hop the dual_socket profile charges;
         collapsing back to one socket removes it. *)
      cross_socket_latency = (if sockets > 1 then 110 else 0);
    }

type topology = { topo_name : string; topo_cores : int; topo_params : t }

let topology ~cores ~sockets =
  {
    topo_name = Printf.sprintf "%dc%ds" cores sockets;
    topo_cores = cores;
    topo_params = with_sockets barcelona ~sockets;
  }

let topo_64c4s = topology ~cores:64 ~sockets:4
let topo_128c8s = topology ~cores:128 ~sockets:8
let topo_256c8s = topology ~cores:256 ~sockets:8
let topologies = [ topo_64c4s; topo_128c8s; topo_256c8s ]

let topology_of_string s =
  match List.find_opt (fun t -> t.topo_name = s) topologies with
  | Some t -> Ok t
  | None ->
      Error
        (Printf.sprintf "unknown topology %S (expected one of: %s)" s
           (String.concat ", " (List.map (fun t -> t.topo_name) topologies)))

let cycles_to_us p cycles = float_of_int cycles /. (p.ghz *. 1000.0)

let cycles_to_ms p cycles = cycles_to_us p cycles /. 1000.0

let pp fmt p =
  Format.fprintf fmt
    "%s: %.1f GHz, L1 %dKB/%d-way/%dcy, L2 %dKB/%d-way/%dcy, L3 %dKB/%d-way/%dcy, RAM %dcy"
    p.name p.ghz (p.l1_bytes / 1024) p.l1_assoc p.l1_latency (p.l2_bytes / 1024)
    p.l2_assoc p.l2_latency (p.l3_bytes / 1024) p.l3_assoc p.l3_latency
    p.mem_latency
