(** Machine configurations.

    All sizes are in bytes, all latencies in core cycles (load-to-use).
    The default profile, {!barcelona}, matches the simulated machine of the
    paper's Section 5: an AMD Opteron family-10h ("Barcelona")-like core at
    2.2 GHz with

    - L1D: 64 KB, 2-way set associative, 3 cycles;
    - L2: 512 KB, 16-way, 15 cycles;
    - L3: 2 MB (shared), 16-way, 50 cycles;
    - RAM: 210 cycles;
    - D-TLB: 48 fully-associative L1 entries, 512 4-way L2 entries.

    [ooo_factor] approximates out-of-order latency hiding: charged memory
    latencies are multiplied by it (1.0 = fully exposed, in-order). The
    {!native_reference} profile is the shallow analytical model used as the
    stand-in for native hardware in the Fig. 3 accuracy experiment (see
    DESIGN.md, substitution table). *)

type t = {
  name : string;
  ghz : float;  (** core frequency; cycles / 1000 = time in ns at 1 GHz *)
  l1_bytes : int;
  l1_assoc : int;
  l1_latency : int;
  l2_bytes : int;
  l2_assoc : int;
  l2_latency : int;
  l3_bytes : int;
  l3_assoc : int;
  l3_latency : int;
  mem_latency : int;
  line_bytes : int;  (** coherence / protection granularity (64) *)
  tlb_l1_entries : int;
  tlb_l2_entries : int;
  tlb_l2_assoc : int;
  tlb_l2_latency : int;  (** extra cycles on L1-TLB miss, L2-TLB hit *)
  page_walk_latency : int;  (** extra cycles on full TLB miss *)
  page_fault_latency : int;  (** OS minor-fault service time *)
  coherence_probe_latency : int;  (** extra cycles when a probe must
                                      invalidate or downgrade remote copies *)
  ooo_factor : float;
  interrupt_quantum : int;  (** cycles between timer interrupts *)
  n_sockets : int;  (** cores are split evenly across sockets; the L3 is
                        per socket and cross-socket probes pay
                        [cross_socket_latency] *)
  cross_socket_latency : int;
}

val barcelona : t
(** The paper's simulated machine: all cores on one socket, "resembling
    future processors with higher levels of core integration" (Section 5). *)

val dual_socket : t
(** The same cores split across two sockets with a cross-socket probe
    penalty — the configuration the paper's footnote 9 points to its
    earlier study for. Used by the [abl-socket] extension. *)

val native_reference : t
(** Shallow ideal-cache profile standing in for native hardware in the
    Fig. 3 methodology reproduction. *)

val with_sockets : t -> sockets:int -> t
(** [with_sockets p ~sockets] re-spreads the cores of [p] over [sockets]
    sockets (one shared L3 per socket). Returns [p] unchanged when the
    count already matches; otherwise multi-socket results charge the
    same 110-cycle interconnect hop as {!dual_socket} on cross-socket
    probes and forwards. *)

type topology = { topo_name : string; topo_cores : int; topo_params : t }
(** A named big-machine preset: a core count plus the machine profile
    it runs on. Cores are not part of {!t} itself (the simulator takes
    [~n_cores] separately), so presets pair the two. *)

val topo_64c4s : topology
(** 64 Barcelona-like cores over 4 sockets — the scale experiment's
    topology. *)

val topo_128c8s : topology

val topo_256c8s : topology
(** 256 cores over 8 sockets — forces the limited-pointer sharer
    backend (the bitmask caps at 62 cores). *)

val topologies : topology list

val topology_of_string : string -> (topology, string) result

val cycles_to_us : t -> int -> float
(** Convert a cycle count to microseconds at the profile's frequency. *)

val cycles_to_ms : t -> int -> float

val pp : Format.formatter -> t -> unit
