(** Txcheck: dynamic isolation/serializability checking and a
    capacity/annotation lint for the whole TM stack.

    A checker is a {e passive} observer: it watches the run through the
    {!Asf_cache.Memsys} access hook, the {!Asf_core.Asf} lifecycle
    observer, and the {!Asf_stm.Tinystm} transaction observer, and never
    calls {!Asf_engine.Engine.elapse}. Checked and unchecked runs are
    therefore cycle-identical — the same guarantee the tracing layer
    gives, and the property the equivalence tests pin down.

    Three parts, individually selectable:

    - {e Isolation} — a shadow-memory checker. Every access entering the
      memory system is compared against every core's live protected sets:
      a plain access observing another region's uncommitted speculative
      write is a strong-isolation violation; a plain write hitting a line
      another region only read is an unannotated-shared race; a plain
      access by a region to a line it wrote speculatively itself is a
      colocation hazard. Each finding carries a trail of the recent
      accesses to the offending line.
    - {e Serial} — a conflict-serializability oracle plus abort hygiene.
      Committed attempts' read/write sets (hardware regions via the access
      hook, STM transactions via the observer) form a conflict graph with
      edges ordered by observed access time; a cycle means the committed
      history was not serializable. On every abort, the RAM image of each
      speculatively-written line is compared against its pre-SPECULATE
      snapshot — a mismatch means the rollback leaked speculative state.
    - {e Lint} — a static capacity/annotation analysis over the access
      profiles gathered above: transactions whose protected set provably
      exceeds a variant's capacity (serial-only on that hardware),
      read-only lines eligible for early RELEASE, and lines touched by a
      single core that could safely stay unannotated.

    Violations are hard errors (the stack broke a guarantee); advisories
    are profile-grounded suggestions for the programmer. On stock
    workloads with stock hardware the checker reports zero violations. *)

type part = Isolation | Serial | Lint

val part_name : part -> string

val parts_of_names : string list -> part list
(** Parse ["isolation"], ["serial"], ["lint"] (or ["all"]); an empty list
    means all parts. @raise Invalid_argument on an unknown name. *)

type severity = Violation | Advisory

type finding = {
  part : part;
  severity : severity;
  kind : string;
      (** ["strong-isolation"], ["unannotated-race"], ["colocation"],
          ["unresolved-conflict"], ["conflict-cycle"], ["abort-hygiene"],
          ["serial-only"], ["early-release"], ["unannotated-ok"] *)
  line : int option;  (** base word address of the offending cache line *)
  cores : int list;
  cycle : int;  (** simulated cycle of the first occurrence *)
  mutable count : int;  (** occurrences folded into this finding *)
  detail : string;
  trail : string list;
      (** recent accesses to the line, oldest first, ending with the
          offending one *)
}

type attempt_profile = {
  p_run : int;
  p_core : int;
  p_attempt : int;
  p_footprint : int;  (** peak distinct protected lines *)
  p_written : int;  (** distinct written lines *)
  p_committed : bool;
  p_capacity_abort : bool;
}

type t

val create : ?parts:part list -> unit -> t
(** A fresh checker running the given parts (default: all three). *)

val parts : t -> part list

val reset : t -> unit
(** Return the checker to its just-{!create}d state (same parts, no runs,
    no findings) without allocating a new instance — equivalent to
    [create ~parts:(parts t) ()] for every observable purpose. The pool
    workers reset one cached checker between cells instead of creating a
    fresh one per cell. *)

(** {1 Global installation}

    Mirrors {!Asf_trace.Trace.install}: the CLI installs a checker once
    and every TM system built afterwards attaches to it, so the harness
    layers need no plumbing. *)

val install : t -> unit

val uninstall : unit -> unit

val installed : unit -> t option

(** {1 Attachment} *)

val attach :
  t ->
  ?asf:Asf_core.Asf.t ->
  ?stm:Asf_stm.Tinystm.t ->
  ?variant:Asf_core.Variant.t ->
  Asf_cache.Memsys.t ->
  unit
(** Hook the checker into one simulated system (one {e run}). Installs the
    memory-system access hook when [asf] is given, and the ASF / STM
    observers for whichever layers exist. Attaching again (a new system)
    first finalizes the previous run's oracle and lint, so one checker can
    span an experiment's whole sequence of runs. *)

val finalize : t -> unit
(** Close the current run: build and check the conflict graph, run the
    abort-hygiene bookkeeping, and emit lint advisories. Idempotent. *)

(** {1 Results} *)

val findings : t -> finding list
(** All findings, in first-occurrence order, violations and advisories
    alike. Call {!finalize} first. *)

val violations : t -> finding list

val advisories : t -> finding list

val attempt_profiles : t -> attempt_profile list
(** Per-attempt access profiles, in completion order across all runs. *)

val lint_capacity : t -> capacity:int -> finding list
(** The capacity part of the lint, against an arbitrary LLB capacity:
    one [serial-only] advisory per attempt whose minimum protected-set
    need provably exceeds [capacity] (an attempt that capacity-aborted
    needed at least one line more than it managed to protect). Pure —
    does not add to {!findings}. *)

(** {1 Finding merging}

    For the parallel cell runner: each cell runs with its own checker, and
    the findings are folded back into the main checker in cell order, so
    the merged table is identical to a sequential run's. *)

val export : t -> finding list
(** {!finalize} then {!findings}: everything this checker found, ready to
    be {!absorb}ed elsewhere. *)

val absorb : t -> finding list -> unit
(** Fold exported findings into this checker's table: a finding whose
    (part, kind, line) key is already present adds its count; a new key is
    appended in arrival order. An absorbing checker must only aggregate —
    attaching it to runs as well would mix raw and base line addresses in
    the dedup keys. *)
