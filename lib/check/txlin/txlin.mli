(** Txlin: an async linearizability oracle for the serve harness.

    The open-system harness ({!Asf_serve.Serve}) reports throughput and
    tail latency, but a runtime that committed stale reads under overload
    would sail through as long as the outcome partition held. Txlin closes
    that gap: with [cfg.record] on, every request becomes an
    invocation/response event (operation, observation, invoke/respond
    cycles, and the final attempt's commit cycle), and this module decides
    whether {e some} total order of the committed requests — consistent
    with real time and with each service's sequential specification —
    explains every recorded observation.

    The construction follows verified-betrfs's [AsyncSpec] (SNIPPETS.md
    #2): requests live in a pending-request multiset from invocation,
    move atomically across the sequential spec at their linearization
    point, and leave a pending-response multiset at response. Shed and
    timed-out requests are {e no-op-or-absent obligations}: admission
    rejected the former before execution and [Tm.atomic_until] guarantees
    the latter committed nothing, so neither constrains the order — but
    any effect they leak (lying hardware) surfaces as an unexplainable
    observation of a {e committed} request.

    The linearization-point search is exact (Wing-Gong style) with three
    prunings that keep it tractable:
    - {b per-key independence}: linearizability is local, so KV histories
      split into connected components of the touched-key relation and are
      checked independently (scans merge the groups they span; the ledger
      is one group);
    - {b commit-cycle ordering}: candidates are tried in commit order.
      The commit witness satisfies invoke <= commit <= respond, so on
      correct hardware the first candidate always linearizes and clean
      histories check in linear time — the search only backtracks when
      something is actually wrong;
    - {b memoization + budget}: failed (remaining-set, spec-state) pairs
      are never re-explored, and a state budget turns pathological
      searches into an explicit {e inconclusive} advisory rather than a
      hang.

    What the oracle cannot see: effects on locations no committed request
    ever observes (e.g. settlement marks), and anything in a run whose
    history was not recorded. It checks linearizability against the
    sequential spec under sequential consistency; the TSO-aware extension
    is the ROADMAP follow-on. *)

module Serve = Asf_serve.Serve
module Findings = Asf_analyze.Findings

(** {1 Checking} *)

type verdict = {
  v_service : string;
  v_obligations : int;  (** committed requests (events searched) *)
  v_absent : int;  (** shed + timed-out requests (unconstraining) *)
  v_groups : int;  (** independent key groups checked *)
  v_states : int;  (** search nodes explored, all groups *)
  v_ok : bool;  (** linearizable (conclusively) *)
  v_inconclusive : bool;
      (** some group exceeded the state budget; [v_ok] is [false] but no
          violation is claimed *)
  v_witness : Serve.event list;
      (** on violation: a 1-minimal violating history (every single-event
          removal makes it linearizable again), in commit order *)
  v_detail : string;  (** human-readable one-line summary *)
}

val default_budget : int
(** Default search-node budget ([500_000]). *)

val check :
  ?budget:int ->
  service:Serve.service ->
  records:int ->
  accounts:int ->
  Serve.event array ->
  verdict
(** [check ~service ~records ~accounts events] runs the oracle over a
    recorded history. [records]/[accounts] must match the run's
    [Serve.cfg] (they fix the initial spec state: key [k < records] maps
    to [k + 1]; every account starts at {!Serve.initial_balance}). The
    ledger's order-log capacity is the number of [Order] obligations in
    [events] — all outcomes, matching how the run sizes the log. *)

val check_result : ?budget:int -> Serve.cfg -> Serve.result -> verdict
(** {!check} over [r.r_events] with the spec parameters taken from the
    run's own [cfg] (requires the run to have had [cfg.record] set). *)

(** {1 Reporting} *)

val findings : workload:string -> verdict -> Findings.t list
(** [[]] on a clean verdict; one ["non-linearizable"] violation carrying
    the rendered minimal witness, or one ["lin-inconclusive"] advisory
    when only the budget was exhausted. *)

val partition_finding : workload:string -> Serve.result -> Findings.t option
(** The hoisted outcome-partition check: [Some] ["partition"] violation
    when [r_completed + r_shed + r_timeout <> r_arrivals]. *)

val render_event : Serve.event -> string
(** One event as ["#id op -> obs @invoke..respond commit=c"]. *)
