module Serve = Asf_serve.Serve
module Findings = Asf_analyze.Findings

(* ------------------------------------------------------------------ *)
(* Rendering                                                            *)
(* ------------------------------------------------------------------ *)

let op_name (op : Serve.op) =
  match op with
  | Read k -> Printf.sprintf "read(%d)" k
  | Update (k, v) -> Printf.sprintf "update(%d,%d)" k v
  | Insert (k, v) -> Printf.sprintf "insert(%d,%d)" k v
  | Scan (k, len) -> Printf.sprintf "scan(%d,%d)" k len
  | Rmw k -> Printf.sprintf "rmw(%d)" k
  | Order { src; dst; amount } -> Printf.sprintf "order(%d->%d,%d)" src dst amount
  | Settle idx -> Printf.sprintf "settle(%d)" idx
  | Audit -> "audit"

let obs_name (obs : Serve.obs) =
  let opt = function None -> "-" | Some v -> string_of_int v in
  match obs with
  | O_unit -> "()"
  | O_val v -> opt v
  | O_vals vs -> "[" ^ String.concat "," (List.map opt vs) ^ "]"
  | O_flag b -> if b then "t" else "f"
  | O_rmw v -> Printf.sprintf "old:%d" v

let render_event (e : Serve.event) =
  let outcome =
    match e.ev_outcome with
    | Ev_done { obs; commit } ->
        Printf.sprintf "-> %s @%d..%d commit=%d" (obs_name obs) e.ev_invoke
          e.ev_respond commit
    | Ev_timeout -> Printf.sprintf "-> timeout @%d..%d" e.ev_invoke e.ev_respond
    | Ev_shed -> Printf.sprintf "-> shed @%d" e.ev_invoke
  in
  Printf.sprintf "#%d %s %s" e.ev_id (op_name e.ev_op) outcome

(* ------------------------------------------------------------------ *)
(* Sequential specifications                                            *)
(* ------------------------------------------------------------------ *)

(* A model state is purely functional: [step] returns the specification's
   observation for the operation in that state plus the successor state,
   and [canon] is an injective string key for memoization. *)
type mstate =
  | Kv_m of (int * int) list  (** assoc sorted by key *)
  | Ledger_m of { bal : int array; head : int; slot_cap : int }

let canon = function
  | Kv_m assoc ->
      let b = Buffer.create 32 in
      List.iter (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%d=%d;" k v)) assoc;
      Buffer.contents b
  | Ledger_m { bal; head; _ } ->
      let b = Buffer.create 64 in
      Buffer.add_string b (string_of_int head);
      Array.iter (fun v -> Buffer.add_string b (Printf.sprintf ";%d" v)) bal;
      Buffer.contents b

(* Sorted-assoc upsert (mirrors Thashmap.put: insert-or-replace). *)
let rec put k v = function
  | [] -> [ (k, v) ]
  | (k', _) :: tl when k' = k -> (k, v) :: tl
  | (k', _) as hd :: tl -> if k < k' then (k, v) :: hd :: tl else hd :: put k v tl

let step st (op : Serve.op) : Serve.obs * mstate =
  match (st, op) with
  | Kv_m assoc, Read k -> (O_val (List.assoc_opt k assoc), st)
  | Kv_m assoc, Update (k, v) -> (O_unit, Kv_m (put k v assoc))
  | Kv_m assoc, Insert (k, v) ->
      let fresh = not (List.mem_assoc k assoc) in
      (O_flag fresh, if fresh then Kv_m (put k v assoc) else st)
  | Kv_m assoc, Scan (k, len) ->
      (O_vals (List.init (max 0 len) (fun i -> List.assoc_opt (k + i) assoc)), st)
  | Kv_m assoc, Rmw k ->
      let old = Option.value (List.assoc_opt k assoc) ~default:0 in
      (O_rmw old, Kv_m (put k (old + 1) assoc))
  | Ledger_m l, Order { src; dst; amount } ->
      let appended = l.head < l.slot_cap in
      let bal = Array.copy l.bal in
      bal.(src) <- bal.(src) - amount;
      bal.(dst) <- bal.(dst) + amount;
      ( O_flag appended,
        Ledger_m { l with bal; head = (if appended then l.head + 1 else l.head) } )
  | Ledger_m l, Settle _ ->
      (* Settlement marks are never read back by any request, so the only
         observable part is whether an order existed to settle. *)
      (O_flag (l.head > 0), st)
  | Ledger_m l, Audit ->
      let total = Array.fold_left ( + ) 0 l.bal in
      (O_flag (total = Array.length l.bal * Serve.initial_balance), st)
  | Kv_m _, (Order _ | Settle _ | Audit)
  | Ledger_m _, (Read _ | Update _ | Insert _ | Scan _ | Rmw _) ->
      invalid_arg "Txlin: operation does not belong to this service"

(* ------------------------------------------------------------------ *)
(* Per-key independence (the locality pruning)                          *)
(* ------------------------------------------------------------------ *)

(* KV requests touch explicit key sets and nothing else, so the history
   is linearizable iff each connected component of the "touched together"
   relation is (linearizability is local). A scan spans [k, k+len),
   merging every group it crosses; the ledger's orders/audits all share
   the account array and the log head, so ledger histories are one
   group. *)

let key_span (op : Serve.op) =
  match op with
  | Read k | Update (k, _) | Insert (k, _) | Rmw k -> (k, k)
  | Scan (k, len) -> (k, k + max 1 len - 1)
  | Order _ | Settle _ | Audit -> (0, 0)

(* Union-find over the touched keys, Hashtbl-backed (keys are sparse). *)
let uf_find parent k =
  let rec go k =
    match Hashtbl.find_opt parent k with
    | None | Some (-1) -> k
    | Some p ->
        let r = go p in
        Hashtbl.replace parent k r;
        r
  in
  go k

let uf_union parent a b =
  let ra = uf_find parent a and rb = uf_find parent b in
  if ra <> rb then Hashtbl.replace parent ra rb

(* ------------------------------------------------------------------ *)
(* The linearization-point search (WGL over the AsyncSpec construction)  *)
(* ------------------------------------------------------------------ *)

(* The pending-request / pending-response multisets of the AsyncSpec
   construction appear here as the [remaining] set: an event in
   [remaining] whose invoke has passed is a pending request, one whose
   linearization point has been chosen moves to the (implicit) response
   multiset and is removed when its response is consumed. Concretely the
   search picks, at every step, one remaining event [o] that is minimal
   in real time — no other remaining event responded strictly before
   [o]'s invocation — whose specification observation in the current
   model state matches what the client recorded, and recurses.

   Completed events are tried in commit-cycle order: the final attempt's
   commit lies inside the event's [invoke, respond] window, and on
   correct hardware replaying commits in order satisfies the spec, so
   the first candidate always works and clean histories check in linear
   time. On lying hardware the search backtracks; memoization over
   (remaining-set, model-state) and the [budget] bound the blow-up. *)

type tri = Lin | Nonlin | Unknown

exception Out_of_budget

let ev_obs (e : Serve.event) =
  match e.ev_outcome with
  | Ev_done { obs; _ } -> obs
  | Ev_timeout | Ev_shed -> invalid_arg "Txlin: obligation has no observation"

let ev_commit (e : Serve.event) =
  match e.ev_outcome with Ev_done { commit; _ } -> commit | _ -> max_int

(* [events] must be sorted by commit cycle. [states] counts explored
   search nodes across calls (shared budget). *)
let search ~budget ~states ~init events : tri =
  let memo : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let key remaining st =
    let b = Buffer.create 32 in
    List.iter (fun (e : Serve.event) -> Buffer.add_string b (Printf.sprintf "%d," e.ev_id)) remaining;
    Buffer.add_char b '|';
    Buffer.add_string b (canon st);
    Buffer.contents b
  in
  let rec dfs remaining st =
    incr states;
    if !states > budget then raise Out_of_budget;
    match remaining with
    | [] -> true
    | _ ->
        let k = key remaining st in
        if Hashtbl.mem memo k then false
        else begin
          let min_resp =
            List.fold_left
              (fun acc (e : Serve.event) -> min acc e.ev_respond)
              max_int remaining
          in
          let ok =
            List.exists
              (fun (e : Serve.event) ->
                e.ev_invoke <= min_resp
                &&
                let obs, st' = step st e.ev_op in
                obs = ev_obs e
                && dfs (List.filter (fun (o : Serve.event) -> o.ev_id <> e.ev_id) remaining) st')
              remaining
          in
          if not ok then Hashtbl.add memo k ();
          ok
        end
  in
  match dfs events init with
  | true -> Lin
  | false -> Nonlin
  | exception Out_of_budget -> Unknown

(* Greedy 1-minimal shrink: repeatedly drop any single event whose
   removal keeps the history conclusively non-linearizable. The result
   still fails the search, which is what the shrink property test pins. *)
let shrink ~budget ~init events =
  let still_bad evs =
    let states = ref 0 in
    search ~budget ~states ~init evs = Nonlin
  in
  let rec go evs =
    let n = List.length evs in
    let rec try_drop i =
      if i >= n then evs
      else
        let cand = List.filteri (fun j _ -> j <> i) evs in
        if still_bad cand then go cand else try_drop (i + 1)
    in
    try_drop 0
  in
  go events

(* ------------------------------------------------------------------ *)
(* Verdicts                                                             *)
(* ------------------------------------------------------------------ *)

type verdict = {
  v_service : string;
  v_obligations : int;
  v_absent : int;
  v_groups : int;
  v_states : int;
  v_ok : bool;
  v_inconclusive : bool;
  v_witness : Serve.event list;
  v_detail : string;
}

let default_budget = 500_000

let check ?(budget = default_budget) ~service ~records ~accounts
    (events : Serve.event array) : verdict =
  let completed, absent =
    Array.fold_right
      (fun (e : Serve.event) (c, a) ->
        match e.ev_outcome with
        | Ev_done _ -> (e :: c, a)
        | Ev_timeout | Ev_shed -> (c, a + 1))
      events ([], 0)
  in
  (* The run sizes the order log over *all scheduled* orders — shed and
     timed-out ones included — so the spec's log capacity must count
     every order obligation, not just the completed ones. *)
  let slot_cap =
    Array.fold_left
      (fun acc (e : Serve.event) ->
        match e.ev_op with Order _ -> acc + 1 | _ -> acc)
      0 events
  in
  let by_commit evs =
    List.sort
      (fun (a : Serve.event) b ->
        compare (ev_commit a, a.ev_id) (ev_commit b, b.ev_id))
      evs
  in
  (* Partition the completed events into independent groups, each with
     its own initial model state. *)
  let groups =
    match service with
    | Serve.Ledger ->
        [ ( by_commit completed,
            Ledger_m { bal = Array.make accounts Serve.initial_balance; head = 0; slot_cap } ) ]
    | Serve.Kv _ ->
        let parent = Hashtbl.create 64 in
        List.iter
          (fun (e : Serve.event) ->
            let lo, hi = key_span e.ev_op in
            for k = lo + 1 to hi do
              uf_union parent lo k
            done)
          completed;
        let tbl = Hashtbl.create 64 in
        List.iter
          (fun (e : Serve.event) ->
            let lo, _ = key_span e.ev_op in
            let root = uf_find parent lo in
            Hashtbl.replace tbl root
              (e :: (Option.value (Hashtbl.find_opt tbl root) ~default:[])))
          completed;
        Hashtbl.fold
          (fun root evs acc ->
            let keys =
              List.sort_uniq compare
                (List.concat_map
                   (fun (e : Serve.event) ->
                     let lo, hi = key_span e.ev_op in
                     List.init (hi - lo + 1) (fun i -> lo + i))
                   evs)
            in
            let init =
              Kv_m (List.filter_map (fun k -> if k < records then Some (k, k + 1) else None) keys)
            in
            (root, by_commit evs, init) :: acc)
          tbl []
        |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
        |> List.map (fun (_, evs, init) -> (evs, init))
  in
  let states = ref 0 in
  let bad = ref [] (* (events, init) of violating groups *)
  and unknown = ref 0 in
  List.iter
    (fun (evs, init) ->
      if !bad = [] then
        match search ~budget ~states ~init evs with
        | Lin -> ()
        | Nonlin -> bad := [ (evs, init) ]
        | Unknown -> incr unknown)
    groups;
  let witness =
    match !bad with
    | [] -> []
    | (evs, init) :: _ -> shrink ~budget ~init evs
  in
  let ok = !bad = [] && !unknown = 0 in
  let detail =
    if !bad <> [] then
      Printf.sprintf
        "non-linearizable: no order over %d committed request(s) explains the \
         observations; minimal violating history (%d event(s)): %s"
        (List.length (fst (List.hd !bad)))
        (List.length witness)
        (String.concat " | " (List.map render_event witness))
    else if !unknown > 0 then
      Printf.sprintf
        "inconclusive: %d group(s) exceeded the %d-state search budget"
        !unknown budget
    else
      Printf.sprintf
        "linearizable: %d committed + %d absent obligation(s), %d group(s), %d state(s)"
        (List.length completed) absent (List.length groups) !states
  in
  {
    v_service = Serve.service_name service;
    v_obligations = List.length completed;
    v_absent = absent;
    v_groups = List.length groups;
    v_states = !states;
    v_ok = ok && !unknown = 0;
    v_inconclusive = !unknown > 0;
    v_witness = witness;
    v_detail = detail;
  }

let check_result ?budget (cfg : Serve.cfg) (r : Serve.result) =
  check ?budget ~service:cfg.service ~records:cfg.records ~accounts:cfg.accounts
    r.r_events

(* ------------------------------------------------------------------ *)
(* Findings                                                             *)
(* ------------------------------------------------------------------ *)

let findings ~workload v =
  if v.v_ok then []
  else if v.v_inconclusive then
    [
      Findings.make ~source:Findings.Runtime ~severity:"advisory"
        ~kind:"lin-inconclusive" ~workload ~count:v.v_groups ~detail:v.v_detail ();
    ]
  else
    [
      Findings.make ~source:Findings.Runtime ~severity:"violation"
        ~kind:"non-linearizable" ~workload
        ~count:(List.length v.v_witness)
        ~detail:v.v_detail ();
    ]

let partition_finding ~workload (r : Serve.result) =
  if r.r_partition_ok then None
  else
    Some
      (Findings.make ~source:Findings.Runtime ~severity:"violation"
         ~kind:"partition" ~workload
         ~count:(abs (r.r_arrivals - (r.r_completed + r.r_shed + r.r_timeout)))
         ~detail:
           (Printf.sprintf
              "outcome partition violated: completed %d + shed %d + timeout %d \
               <> arrivals %d"
              r.r_completed r.r_shed r.r_timeout r.r_arrivals)
         ())
