module Engine = Asf_engine.Engine
module Addr = Asf_mem.Addr
module Ram = Asf_mem.Ram
module Memsys = Asf_cache.Memsys
module Abort = Asf_core.Abort
module Asf = Asf_core.Asf
module Variant = Asf_core.Variant
module Stm = Asf_stm.Tinystm
module Trace = Asf_trace.Trace

type part = Isolation | Serial | Lint

let part_name = function
  | Isolation -> "isolation"
  | Serial -> "serial"
  | Lint -> "lint"

let all_parts = [ Isolation; Serial; Lint ]

let parts_of_names names =
  let names = List.filter (fun s -> s <> "") names in
  if names = [] then all_parts
  else
    List.concat_map
      (fun s ->
        match String.lowercase_ascii s with
        | "isolation" | "iso" -> [ Isolation ]
        | "serial" -> [ Serial ]
        | "lint" -> [ Lint ]
        | "all" -> all_parts
        | other -> invalid_arg ("Check.parts_of_names: unknown part " ^ other))
      names

type severity = Violation | Advisory

type finding = {
  part : part;
  severity : severity;
  kind : string;
  line : int option;
  cores : int list;
  cycle : int;
  mutable count : int;
  detail : string;
  trail : string list;
}

type attempt_profile = {
  p_run : int;
  p_core : int;
  p_attempt : int;
  p_footprint : int;
  p_written : int;
  p_committed : bool;
  p_capacity_abort : bool;
}

(* Per-line first-access sequence numbers of the attempt in flight
   ([-1] = not yet accessed that way). *)
type line_op = { mutable first_read : int; mutable first_write : int }

type cur_attempt = {
  mutable act_active : bool;
  mutable act_id : int;  (* per-core attempt number, 1-based *)
  act_ops : (int, line_op) Hashtbl.t;  (* line index -> first accesses *)
  act_pre : (int, int array) Hashtbl.t;  (* pre-image at first spec write *)
  mutable act_peak : int;  (* peak protected-set size, survives RELEASE *)
}

(* One committed attempt, a node of the conflict graph. *)
type txn = {
  tx_id : int;
  tx_core : int;
  tx_attempt : int;
  tx_ops : (int * int * int) list;  (* line, first-read seq, first-write seq *)
}

(* What the lint knows about one line over a run. *)
type line_info = {
  mutable li_flags : int;  (* 1 tx-read, 2 tx-written, 4 plain-written, 8 released *)
  mutable li_cores : int;
      (* bitmask of cores that touched the line at all; cores >= 62 share
         bit 62 so the shift stays in range on big topologies (the mask
         only ever feeds popcount-based distinct-core heuristics) *)
}

type access_rec = {
  ar_core : int;
  ar_cycle : int;
  ar_write : bool;
  ar_spec : bool;
}

let history_depth = 8

type t = {
  chk_iso : bool;
  chk_serial : bool;
  chk_lint : bool;
  mutable run : int;
  mutable finalized : bool;
  mutable seq : int;
  mutable next_txn : int;
  mutable mem : Memsys.t option;
  mutable asf : Asf.t option;
  mutable variant : Variant.t option;
  mutable n_cores : int;
  mutable cur : cur_attempt array;
  mutable committed : txn list;  (* this run, reverse completion order *)
  lines : (int, line_info) Hashtbl.t;  (* this run *)
  history : (int, access_rec list ref) Hashtbl.t;  (* newest first, capped *)
  mutable profiles : attempt_profile list;  (* all runs, reverse order *)
  mutable found : finding list;  (* reverse first-occurrence order *)
  index : (string * string * int option, finding) Hashtbl.t;
}

let fresh_cur () =
  {
    act_active = false;
    act_id = 0;
    act_ops = Hashtbl.create 32;
    act_pre = Hashtbl.create 16;
    act_peak = 0;
  }

let create ?(parts = all_parts) () =
  {
    chk_iso = List.mem Isolation parts;
    chk_serial = List.mem Serial parts;
    chk_lint = List.mem Lint parts;
    run = 0;
    finalized = true;
    seq = 0;
    next_txn = 0;
    mem = None;
    asf = None;
    variant = None;
    n_cores = 0;
    cur = [||];
    committed = [];
    lines = Hashtbl.create 1024;
    history = Hashtbl.create 1024;
    profiles = [];
    found = [];
    index = Hashtbl.create 64;
  }

let parts t =
  List.filter
    (function
      | Isolation -> t.chk_iso | Serial -> t.chk_serial | Lint -> t.chk_lint)
    all_parts

(* Restore the [create] state while keeping the instance (and its already
   sized hashtables) alive — the pool workers reuse one cached checker per
   domain across cells instead of re-deriving a fresh one per cell. *)
let reset t =
  t.run <- 0;
  t.finalized <- true;
  t.seq <- 0;
  t.next_txn <- 0;
  t.mem <- None;
  t.asf <- None;
  t.variant <- None;
  t.n_cores <- 0;
  t.cur <- [||];
  t.committed <- [];
  Hashtbl.reset t.lines;
  Hashtbl.reset t.history;
  t.profiles <- [];
  t.found <- [];
  Hashtbl.reset t.index

(* {1 Findings} *)

let popcount m =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go m 0

let trail_of t line =
  match Hashtbl.find_opt t.history line with
  | None -> []
  | Some cell ->
      List.rev_map
        (fun a ->
          Printf.sprintf "cycle %d core %d %s %s line 0x%x" a.ar_cycle a.ar_core
            (if a.ar_spec then "spec" else "plain")
            (if a.ar_write then "store" else "load")
            (Addr.line_base line))
        !cell

(* Findings are deduplicated by (part, kind, line): the first occurrence
   keeps its event trail, repeats only bump [count]. Every violation
   occurrence also lands in the trace stream so [--trace] and [--check]
   tell one story. *)
let report t ~part ~severity ~kind ?line ?(cores = []) ?(trail = []) detail =
  let cycle, tracer =
    match t.mem with
    | None -> (0, None)
    | Some m ->
        let core = match cores with c :: _ -> c | [] -> 0 in
        (Engine.core_time (Memsys.engine m) core, Some (Memsys.tracer m))
  in
  (if severity = Violation then
     match tracer with
     | Some tr ->
         let core = match cores with c :: _ -> c | [] -> 0 in
         Trace.emit tr ~core ~cycle
           (Trace.Check_violation
              { check = kind; line_addr = Option.map Addr.line_base line })
     | None -> ());
  let key = (part_name part, kind, line) in
  match Hashtbl.find_opt t.index key with
  | Some f -> f.count <- f.count + 1
  | None ->
      let trail =
        if trail <> [] then trail
        else match line with Some l -> trail_of t l | None -> []
      in
      let f =
        {
          part;
          severity;
          kind;
          line = Option.map Addr.line_base line;
          cores;
          cycle;
          count = 1;
          detail;
          trail;
        }
      in
      Hashtbl.add t.index key f;
      t.found <- f :: t.found

let findings t = List.rev t.found

let violations t =
  List.filter (fun f -> f.severity = Violation) (findings t)

let advisories t =
  List.filter (fun f -> f.severity = Advisory) (findings t)

let attempt_profiles t = List.rev t.profiles

(* {1 Per-access bookkeeping} *)

let line_info t l =
  match Hashtbl.find_opt t.lines l with
  | Some li -> li
  | None ->
      let li = { li_flags = 0; li_cores = 0 } in
      Hashtbl.add t.lines l li;
      li

let push_history t mem ~core ~line ~write ~speculative =
  let cell =
    match Hashtbl.find_opt t.history line with
    | Some c -> c
    | None ->
        let c = ref [] in
        Hashtbl.add t.history line c;
        c
  in
  let rec take n = function
    | x :: rest when n > 0 -> x :: take (n - 1) rest
    | _ -> []
  in
  cell :=
    {
      ar_core = core;
      ar_cycle = Engine.core_time (Memsys.engine mem) core;
      ar_write = write;
      ar_spec = speculative;
    }
    :: take (history_depth - 1) !cell

let begin_attempt t core =
  let cur = t.cur.(core) in
  cur.act_active <- true;
  cur.act_id <- cur.act_id + 1;
  Hashtbl.reset cur.act_ops;
  Hashtbl.reset cur.act_pre;
  cur.act_peak <- 0

(* The access hook can observe an attempt the checker was attached into
   the middle of; open a profile for it on first contact. *)
let ensure_attempt t core =
  let cur = t.cur.(core) in
  if not cur.act_active then begin_attempt t core;
  cur

let record_op t cur ~line ~write =
  if t.chk_serial || t.chk_lint then begin
    t.seq <- t.seq + 1;
    let op =
      match Hashtbl.find_opt cur.act_ops line with
      | Some op -> op
      | None ->
          let op = { first_read = -1; first_write = -1 } in
          Hashtbl.add cur.act_ops line op;
          let n = Hashtbl.length cur.act_ops in
          if n > cur.act_peak then cur.act_peak <- n;
          op
    in
    if write then begin
      if op.first_write < 0 then op.first_write <- t.seq
    end
    else if op.first_read < 0 then op.first_read <- t.seq
  end

let end_attempt t core ~committed ~capacity_abort =
  let cur = t.cur.(core) in
  if cur.act_active then begin
    cur.act_active <- false;
    if t.chk_serial && committed && Hashtbl.length cur.act_ops > 0 then begin
      t.next_txn <- t.next_txn + 1;
      let ops =
        Hashtbl.fold
          (fun l op acc -> (l, op.first_read, op.first_write) :: acc)
          cur.act_ops []
      in
      t.committed <-
        {
          tx_id = t.next_txn;
          tx_core = core;
          tx_attempt = cur.act_id;
          tx_ops = ops;
        }
        :: t.committed
    end;
    if t.chk_lint then begin
      let written =
        Hashtbl.fold
          (fun _ op n -> if op.first_write >= 0 then n + 1 else n)
          cur.act_ops 0
      in
      t.profiles <-
        {
          p_run = t.run;
          p_core = core;
          p_attempt = cur.act_id;
          p_footprint = cur.act_peak;
          p_written = written;
          p_committed = committed;
          p_capacity_abort = capacity_abort;
        }
        :: t.profiles
    end;
    Hashtbl.reset cur.act_ops;
    Hashtbl.reset cur.act_pre
  end

let on_access t asf mem ~core ~addr ~write ~speculative =
  let l = Addr.line_of addr in
  let li = line_info t l in
  li.li_cores <- li.li_cores lor (1 lsl min core 62);
  if (not speculative) && write then li.li_flags <- li.li_flags lor 4;
  if t.chk_iso then push_history t mem ~core ~line:l ~write ~speculative;
  if speculative then begin
    li.li_flags <- li.li_flags lor (if write then 2 else 1);
    let cur = ensure_attempt t core in
    record_op t cur ~line:l ~write;
    if write && t.chk_serial && not (Hashtbl.mem cur.act_pre l) then
      Hashtbl.add cur.act_pre l (Ram.read_line (Memsys.ram mem) l)
  end;
  match asf with
  | Some a when t.chk_iso ->
      for c = 0 to t.n_cores - 1 do
        if c = core then begin
          if (not speculative) && Asf.line_written a ~core:c l then
            report t ~part:Isolation ~severity:Violation ~kind:"colocation"
              ~line:l ~cores:[ core ]
              (Printf.sprintf
                 "core %d plain %s on line 0x%x inside its own speculative \
                  write set (on LLB hardware the committed copy would be \
                  observed, not the speculative one)"
                 core
                 (if write then "store" else "load")
                 (Addr.line_base l))
        end
        else if Asf.line_written a ~core:c l then
          if speculative then
            report t ~part:Isolation ~severity:Violation
              ~kind:"unresolved-conflict" ~line:l ~cores:[ core; c ]
              (Printf.sprintf
                 "core %d speculative %s on line 0x%x conflicts with core \
                  %d's write set, yet neither region was doomed"
                 core
                 (if write then "store" else "load")
                 (Addr.line_base l) c)
          else
            report t ~part:Isolation ~severity:Violation
              ~kind:"strong-isolation" ~line:l ~cores:[ core; c ]
              (Printf.sprintf
                 "core %d plain %s observes core %d's uncommitted \
                  speculative store on line 0x%x"
                 core
                 (if write then "store" else "load")
                 c (Addr.line_base l))
        else if write && Asf.line_protected a ~core:c l then
          if speculative then
            report t ~part:Isolation ~severity:Violation
              ~kind:"unresolved-conflict" ~line:l ~cores:[ core; c ]
              (Printf.sprintf
                 "core %d speculative store on line 0x%x conflicts with \
                  core %d's read set, yet neither region was doomed"
                 core (Addr.line_base l) c)
          else
            report t ~part:Isolation ~severity:Violation
              ~kind:"unannotated-race" ~line:l ~cores:[ core; c ]
              (Printf.sprintf
                 "core %d plain store races core %d's protected read of \
                  line 0x%x without dooming it"
                 core c (Addr.line_base l))
      done
  | _ -> ()

(* {1 Lifecycle observers} *)

let check_hygiene t mem ~core =
  let cur = t.cur.(core) in
  let ram = Memsys.ram mem in
  Hashtbl.iter
    (fun l pre ->
      if Ram.read_line ram l <> pre then
        report t ~part:Serial ~severity:Violation ~kind:"abort-hygiene"
          ~line:l ~cores:[ core ]
          (Printf.sprintf
             "core %d's aborted region left its speculative store on line \
              0x%x: memory differs from the pre-SPECULATE image"
             core (Addr.line_base l)))
    cur.act_pre

let on_asf_event t mem ~core ev =
  match ev with
  | Asf.Obs_speculate -> begin_attempt t core
  | Asf.Obs_commit -> end_attempt t core ~committed:true ~capacity_abort:false
  | Asf.Obs_doom reason ->
      if t.chk_serial then check_hygiene t mem ~core;
      end_attempt t core ~committed:false
        ~capacity_abort:(reason = Abort.Capacity)
  | Asf.Obs_release l ->
      (line_info t l).li_flags <- (line_info t l).li_flags lor 8;
      let cur = t.cur.(core) in
      if cur.act_active then begin
        match Hashtbl.find_opt cur.act_ops l with
        | Some op when op.first_write < 0 ->
            (* The programmer asserted the read need not stay serialized;
               drop it from the oracle's history like the hardware drops
               the protection. Peak footprint keeps the slot it used. *)
            Hashtbl.remove cur.act_ops l
        | _ -> ()
      end

let on_stm_event t ~core ev =
  match ev with
  | Stm.Ev_start -> begin_attempt t core
  | Stm.Ev_read a ->
      let l = Addr.line_of a in
      let li = line_info t l in
      li.li_flags <- li.li_flags lor 1;
      li.li_cores <- li.li_cores lor (1 lsl min core 62);
      record_op t (ensure_attempt t core) ~line:l ~write:false
  | Stm.Ev_write a ->
      let l = Addr.line_of a in
      let li = line_info t l in
      li.li_flags <- li.li_flags lor 2;
      li.li_cores <- li.li_cores lor (1 lsl min core 62);
      record_op t (ensure_attempt t core) ~line:l ~write:true
  | Stm.Ev_commit -> end_attempt t core ~committed:true ~capacity_abort:false
  | Stm.Ev_abort _ -> end_attempt t core ~committed:false ~capacity_abort:false

(* {1 The conflict-serializability oracle} *)

let tx_label info id =
  match Hashtbl.find_opt info id with
  | Some tx -> Printf.sprintf "T%d(c%d#%d)" tx.tx_id tx.tx_core tx.tx_attempt
  | None -> Printf.sprintf "T%d" id

let check_serializability t =
  let txns = List.rev t.committed in
  if txns <> [] then begin
    let info = Hashtbl.create 64 in
    (* line -> committed ops on it, as (seq, txn, is-write) *)
    let per_line : (int, (int * int * bool) list ref) Hashtbl.t =
      Hashtbl.create 256
    in
    List.iter
      (fun tx ->
        Hashtbl.replace info tx.tx_id tx;
        List.iter
          (fun (l, r, w) ->
            let cell =
              match Hashtbl.find_opt per_line l with
              | Some c -> c
              | None ->
                  let c = ref [] in
                  Hashtbl.add per_line l c;
                  c
            in
            if r >= 0 then cell := (r, tx.tx_id, false) :: !cell;
            if w >= 0 then cell := (w, tx.tx_id, true) :: !cell)
          tx.tx_ops)
      txns;
    let succs : (int, (int, int) Hashtbl.t) Hashtbl.t = Hashtbl.create 64 in
    let preds : (int, (int * int) list ref) Hashtbl.t = Hashtbl.create 64 in
    let indeg = Hashtbl.create 64 in
    List.iter (fun tx -> Hashtbl.replace indeg tx.tx_id 0) txns;
    let add_edge u v l =
      if u <> v then begin
        let m =
          match Hashtbl.find_opt succs u with
          | Some m -> m
          | None ->
              let m = Hashtbl.create 4 in
              Hashtbl.add succs u m;
              m
        in
        if not (Hashtbl.mem m v) then begin
          Hashtbl.add m v l;
          (match Hashtbl.find_opt preds v with
          | Some c -> c := (u, l) :: !c
          | None -> Hashtbl.add preds v (ref [ (u, l) ]));
          Hashtbl.replace indeg v (Hashtbl.find indeg v + 1)
        end
      end
    in
    (* Sweep each line in observed access order: a write conflicts with
       the previous writer and every reader since; a read conflicts with
       the previous writer. Edge direction = order of first access. *)
    Hashtbl.iter
      (fun l cell ->
        let ops = List.sort compare !cell in
        let last_writer = ref (-1) in
        let readers = ref [] in
        List.iter
          (fun (_seq, txid, w) ->
            if w then begin
              if !last_writer >= 0 then add_edge !last_writer txid l;
              List.iter (fun r -> add_edge r txid l) !readers;
              last_writer := txid;
              readers := []
            end
            else begin
              if !last_writer >= 0 then add_edge !last_writer txid l;
              readers := txid :: !readers
            end)
          ops)
      per_line;
    (* Kahn's peel; whatever keeps a positive in-degree sits on or behind
       a cycle. *)
    let q = Queue.create () in
    Hashtbl.iter (fun v d -> if d = 0 then Queue.add v q) indeg;
    let remaining = ref (Hashtbl.length indeg) in
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      decr remaining;
      match Hashtbl.find_opt succs u with
      | None -> ()
      | Some m ->
          Hashtbl.iter
            (fun v _ ->
              let d = Hashtbl.find indeg v - 1 in
              Hashtbl.replace indeg v d;
              if d = 0 then Queue.add v q)
            m
    done;
    if !remaining > 0 then begin
      (* Walk predecessors inside the leftover set until a node repeats;
         that closes a concrete cycle to show the user. *)
      let start =
        Hashtbl.fold
          (fun v d acc -> if d > 0 && acc < 0 then v else acc)
          indeg (-1)
      in
      let seen = Hashtbl.create 16 in
      let sample_line = ref None in
      let rec walk v path =
        if Hashtbl.mem seen v then (v, path)
        else begin
          Hashtbl.add seen v ();
          let u, l =
            match Hashtbl.find_opt preds v with
            | Some c ->
                List.find (fun (u, _) -> Hashtbl.find indeg u > 0) !c
            | None -> assert false
          in
          if !sample_line = None then sample_line := Some l;
          walk u (v :: path)
        end
      in
      let v, path = walk start [] in
      let rec upto acc = function
        | [] -> List.rev acc
        | u :: rest -> if u = v then List.rev (u :: acc) else upto (u :: acc) rest
      in
      (* [path] is the pred chain newest-first: each element's successor
         (edge direction) is the one before it, so [v :: prefix-up-to-v]
         read left to right follows the conflict edges back to [v]. *)
      let cycle_nodes =
        match upto [] path with
        | [] -> [ v ]
        | prefix -> v :: List.filteri (fun i _ -> i < List.length prefix - 1) prefix
      in
      let cores =
        List.sort_uniq compare
          (List.filter_map
             (fun id ->
               Option.map (fun tx -> tx.tx_core) (Hashtbl.find_opt info id))
             cycle_nodes)
      in
      let trail =
        List.map
          (fun id ->
            match Hashtbl.find_opt info id with
            | Some tx ->
                Printf.sprintf "%s: %d line(s) accessed" (tx_label info id)
                  (List.length tx.tx_ops)
            | None -> tx_label info id)
          cycle_nodes
      in
      report t ~part:Serial ~severity:Violation ~kind:"conflict-cycle"
        ?line:!sample_line ~cores ~trail
        (Printf.sprintf
           "committed attempts are not conflict-serializable: %s -> %s"
           (String.concat " -> " (List.map (tx_label info) cycle_nodes))
           (tx_label info v))
    end
  end

(* {1 The capacity / annotation lint} *)

let serial_only_finding ~capacity p =
  let need = p.p_footprint + if p.p_capacity_abort then 1 else 0 in
  if need > capacity then
    Some
      {
        part = Lint;
        severity = Advisory;
        kind = "serial-only";
        line = None;
        cores = [ p.p_core ];
        cycle = 0;
        count = 1;
        detail =
          Printf.sprintf
            "core %d attempt %d needs >= %d protected lines; capacity %d \
             forces the serial fallback"
            p.p_core p.p_attempt need capacity;
        trail = [];
      }
  else None

let lint_capacity t ~capacity =
  List.filter_map (serial_only_finding ~capacity) (attempt_profiles t)

let lint_run t =
  (match t.variant with
  | Some v
    when (not v.Variant.l1_read_set)
         && (not v.Variant.l1_write_set)
         && v.Variant.llb_entries < max_int ->
      List.iter
        (fun p ->
          if p.p_run = t.run then
            match serial_only_finding ~capacity:v.Variant.llb_entries p with
            | Some f ->
                report t ~part:Lint ~severity:Advisory ~kind:"serial-only"
                  ~cores:f.cores f.detail
            | None -> ())
        t.profiles
  | _ -> ());
  if t.asf <> None then begin
    let sample flags_want flags_veto cores_want =
      Hashtbl.fold
        (fun l li (n, ex) ->
          if
            li.li_flags land flags_want = flags_want
            && li.li_flags land flags_veto = 0
            && (cores_want = 0 || popcount li.li_cores = cores_want)
          then (n + 1, if List.length ex < 4 then Addr.line_base l :: ex else ex)
          else (n, ex))
        t.lines (0, [])
    in
    let hex ex =
      String.concat ", "
        (List.map (Printf.sprintf "0x%x") (List.sort compare ex))
    in
    (* Read-only protected lines: no transactional or plain write anywhere
       in the run, never already released. *)
    let n, ex = sample 1 (2 lor 4 lor 8) 0 in
    if n > 0 then
      report t ~part:Lint ~severity:Advisory ~kind:"early-release"
        (Printf.sprintf
           "%d protected line(s) were only ever read — RELEASE candidates \
            (e.g. %s)"
           n (hex ex));
    (* Transactionally-touched lines private to one core. *)
    let n, ex =
      Hashtbl.fold
        (fun l li (n, ex) ->
          if li.li_flags land 3 <> 0 && popcount li.li_cores = 1 then
            (n + 1, if List.length ex < 4 then Addr.line_base l :: ex else ex)
          else (n, ex))
        t.lines (0, [])
    in
    if n > 0 then
      report t ~part:Lint ~severity:Advisory ~kind:"unannotated-ok"
        (Printf.sprintf
           "%d protected line(s) were touched by a single core — plain \
            accesses would be safe (e.g. %s)"
           n (hex ex))
  end

let finalize t =
  if not t.finalized then begin
    t.finalized <- true;
    if t.chk_serial then check_serializability t;
    if t.chk_lint then lint_run t
  end

(* {1 Attachment} *)

let attach t ?asf ?stm ?variant mem =
  finalize t;
  t.run <- t.run + 1;
  t.finalized <- false;
  t.mem <- Some mem;
  t.asf <- asf;
  t.variant <- variant;
  t.n_cores <- Engine.n_cores (Memsys.engine mem);
  t.cur <- Array.init t.n_cores (fun _ -> fresh_cur ());
  t.committed <- [];
  Hashtbl.reset t.lines;
  Hashtbl.reset t.history;
  Memsys.set_access_hook mem
    (Some
       (fun ~core ~addr ~write ~speculative ->
         on_access t asf mem ~core ~addr ~write ~speculative));
  (match asf with
  | Some a ->
      Asf.set_observer a (Some (fun ~core ev -> on_asf_event t mem ~core ev))
  | None -> ());
  match stm with
  | Some s -> Stm.set_observer s (Some (fun ~core ev -> on_stm_event t ~core ev))
  | None -> ()

(* {1 Finding export / merge}

   Support for the parallel cell runner: each cell runs under its own
   fresh checker; [export] finalizes it and returns its findings, and
   [absorb] merges exported findings into an aggregating checker in cell
   order. The merge replicates [report]'s dedup-by-(part, kind, line)
   behaviour — first occurrence (in absorption order) keeps its detail
   and trail, repeats only add counts — so absorbing per-cell exports in
   canonical cell order yields the same findings table as one checker
   observing the same cells sequentially.

   [absorb] keys on the finding's stored (already line-base-rebased)
   address, so an aggregator must only ever *absorb* (never observe runs
   directly); the repro driver's top-level checker satisfies this. *)

let export t =
  finalize t;
  findings t

let absorb t fs =
  List.iter
    (fun f ->
      let key = (part_name f.part, f.kind, f.line) in
      match Hashtbl.find_opt t.index key with
      | Some g -> g.count <- g.count + f.count
      | None ->
          let g = { f with count = f.count } in
          Hashtbl.add t.index key g;
          t.found <- g :: t.found)
    fs

(* {1 Global installation} *)

(* Domain-local, like the tracer and the fault injector: pool worker
   domains install their own per-cell checkers and export their findings
   for order-canonical absorption on the main domain. *)
let current : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let install t = Domain.DLS.set current (Some t)

let uninstall () = Domain.DLS.set current None

let installed () = Domain.DLS.get current
