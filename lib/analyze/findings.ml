module Check = Asf_check.Check

type source = Static | Runtime

type t = {
  f_source : source;
  f_severity : string;
  f_kind : string;
  f_workload : string;
  f_class : string;
  f_variant : string;
  f_line : int option;
  f_count : int;
  f_detail : string;
}

let make ~source ~severity ~kind ~workload ?(cls = "") ?(variant = "") ?line
    ?(count = 1) ~detail () =
  {
    f_source = source;
    f_severity = severity;
    f_kind = kind;
    f_workload = workload;
    f_class = cls;
    f_variant = variant;
    f_line = line;
    f_count = count;
    f_detail = detail;
  }

let of_check ~workload findings =
  List.map
    (fun (f : Check.finding) ->
      {
        f_source = Runtime;
        f_severity =
          (match f.Check.severity with
          | Check.Violation -> "violation"
          | Check.Advisory -> "advisory");
        f_kind = f.Check.kind;
        f_workload = workload;
        f_class = "";
        f_variant = "";
        f_line = f.Check.line;
        f_count = f.Check.count;
        f_detail =
          Printf.sprintf "[%s] %s" (Check.part_name f.Check.part) f.Check.detail;
      })
    findings

(* The livelock watchdog's structured diagnosis, flattened into the same
   machine-readable record stream the checker and the static analyzer
   emit: one summary record (count = cycles since the last commit) plus
   one advisory per stalled core, so `--check-json` artifacts carry the
   whole progress-failure picture instead of only an exit code. *)
let of_livelock ~workload (d : Asf_tm_rt.Tm.diagnosis) =
  let summary =
    make ~source:Runtime ~severity:"violation" ~kind:"livelock" ~workload
      ~cls:"progress" ~count:(d.diag_cycle - d.diag_last_commit_cycle)
      ~detail:
        (Printf.sprintf
           "no commit for %d cycles (window %d) at cycle %d; %d commits \
            system-wide; serial lock %s"
           (d.diag_cycle - d.diag_last_commit_cycle)
           d.diag_window d.diag_cycle d.diag_commits
           (match d.diag_serial_holder with
           | Some c -> Printf.sprintf "held by core %d" c
           | None -> "free"))
      ()
  in
  let cores =
    List.map
      (fun (r : Asf_tm_rt.Tm.core_report) ->
        make ~source:Runtime ~severity:"advisory" ~kind:"livelock-core" ~workload
          ~cls:r.rep_path
          ~variant:(Printf.sprintf "core-%d" r.rep_core)
          ~count:r.rep_consec_aborts
          ~detail:
            (Printf.sprintf
               "core %d on %s path: %d commits (%d serial), %d attempts, %d \
                aborts, %d consecutive"
               r.rep_core r.rep_path r.rep_commits r.rep_serial_commits
               r.rep_attempts r.rep_aborts r.rep_consec_aborts)
          ())
      d.diag_cores
  in
  summary :: cores

let is_violation f = f.f_severity = "violation"

(* ------------------------------------------------------------------ *)
(* JSON                                                                  *)
(* ------------------------------------------------------------------ *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_of_finding b f =
  Buffer.add_string b
    (Printf.sprintf
       "{\"source\": \"%s\", \"severity\": \"%s\", \"kind\": \"%s\", \
        \"workload\": \"%s\", \"class\": \"%s\", \"variant\": \"%s\", \
        \"line\": %s, \"count\": %d, \"detail\": \"%s\"}"
       (match f.f_source with Static -> "static" | Runtime -> "runtime")
       (escape f.f_severity) (escape f.f_kind) (escape f.f_workload)
       (escape f.f_class) (escape f.f_variant)
       (match f.f_line with Some l -> string_of_int l | None -> "null")
       f.f_count (escape f.f_detail))

let json_of_findings fs =
  let b = Buffer.create 1024 in
  Buffer.add_string b "[";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_string b ",\n ";
      json_of_finding b f)
    fs;
  Buffer.add_string b "]";
  Buffer.contents b

(* Structural validation: bracket balance outside string literals, plus
   the top-level keys every artifact of ours carries. *)
let validate_json s =
  let depth = ref 0 and in_str = ref false and esc = ref false in
  let bad = ref None in
  String.iteri
    (fun i c ->
      if !bad = None then
        if !esc then esc := false
        else if !in_str then begin
          if c = '\\' then esc := true else if c = '"' then in_str := false
        end
        else
          match c with
          | '"' -> in_str := true
          | '{' | '[' -> incr depth
          | '}' | ']' ->
              decr depth;
              if !depth < 0 then bad := Some (Printf.sprintf "unbalanced at byte %d" i)
          | _ -> ())
    s;
  match !bad with
  | Some m -> Error m
  | None ->
      if !in_str then Error "unterminated string"
      else if !depth <> 0 then Error "unbalanced brackets"
      else
        let has key =
          let needle = "\"" ^ key ^ "\"" in
          let n = String.length needle and len = String.length s in
          let rec scan i =
            if i + n > len then false
            else if String.sub s i n = needle then true
            else scan (i + 1)
          in
          scan 0
        in
        let missing = List.filter (fun k -> not (has k)) [ "schema"; "findings" ] in
        if missing = [] then Ok ()
        else Error ("missing keys: " ^ String.concat ", " missing)

let write_json ~path doc =
  match
    let oc = open_out path in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc doc)
  with
  | exception Sys_error m -> Error m
  | () -> (
      match
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      with
      | exception Sys_error m -> Error m
      | back -> if back <> doc then Error "re-read mismatch" else validate_json back)
