(** Abstract memory for the static transaction analyzer (Txstatic).

    A word-addressed shadow store with a bump allocator, mirroring the
    simulated machine's address arithmetic ({!Asf_mem.Addr}: 8-word
    lines, line-padded allocation) but with {e no} caches, no timing and
    no scheduler. Transaction bodies execute against it through an
    {!Asf_dstruct.Ops.t} capability record ({!Ops.dry}), so the real
    data-structure code runs unchanged while every access is recorded.

    {!run_tx} executes a body {e twice} against the same pre-state with
    identical random draws — the abstract form of ASF-TM's closure
    restart. A body whose two executions perform different operation
    sequences depends on host-side mutable state that an abort would not
    roll back: a restart hazard, reported in the execution summary. The
    second execution's effects are then committed. *)

type t

val create : unit -> t

val alloc_words : t -> int -> Asf_mem.Addr.t
(** Line-padded bump allocation, like {!Asf_tm_rt.Tm.setup_alloc} /
    [malloc]: [n] words rounded up to whole cache lines. Address 0 is
    never returned (it is the null sentinel of the list structures). *)

val peek : t -> Asf_mem.Addr.t -> int
(** Unrecorded read; unwritten words read 0. *)

val poke : t -> Asf_mem.Addr.t -> int -> unit
(** Unrecorded write. *)

val setup_ops : ?rand_seed:int -> t -> Asf_dstruct.Ops.t
(** Unrecorded operations for building workload state before analysis —
    the analyzer's counterpart of {!Asf_dstruct.Ops.setup}. *)

(** {1 Recorded transactional execution} *)

type actx = {
  o : Asf_dstruct.Ops.t;  (** recorded transactional operations *)
  nld : Asf_mem.Addr.t -> int;  (** annotated (selective) load *)
  nst : Asf_mem.Addr.t -> int -> unit;  (** annotated store *)
  rand : int -> int;  (** replayed-on-restart input randomness *)
  work : int -> unit;  (** application compute; ignored here *)
}
(** The shadow of {!Asf_tm_rt.Tm.ctx}: what a transaction body may do.
    Workload models close over [actx] exactly as benchmark bodies close
    over a [ctx]. *)

type exec = {
  x_rd : int list;  (** distinct transactionally-read lines, ascending *)
  x_wr : int list;  (** distinct transactionally-written lines *)
  x_ard : int list;  (** distinct annotated-read lines *)
  x_awr : int list;  (** distinct annotated-written lines *)
  x_peak : int;
      (** peak concurrently-protected lines — what an LLB must hold;
          RELEASE shrinks the live set but never the peak already seen *)
  x_releases : int;  (** early releases that dropped a read-only line *)
  x_rereads : int;  (** released lines later re-protected (misuse) *)
  x_allocs : int;  (** transactional allocations *)
  x_alloc_lines : int;  (** lines they span *)
  x_frees : int;
  x_ops : int;  (** recorded operations *)
  x_diverged : bool;  (** the two executions disagreed: restart hazard *)
}

val run_tx : ?early_release:bool -> t -> Asf_engine.Prng.t -> (actx -> unit) -> exec
(** Execute [body] twice from the same pre-state (the PRNG is copied for
    the first pass, so both passes draw identical [rand] values), compare
    the operation traces, commit the second pass, and summarize it.
    [early_release] (default [false]) wires the capability record's
    [release] to a recorded RELEASE; when off it is a no-op, as in
    {!Asf_dstruct.Ops.tx}.

    Annotated stores write memory immediately and are {e not} undone
    between the passes — exactly the hardware semantics (an [nstore] is
    not rolled back by an abort), so a body that feeds an annotated
    store back into its own reads is reported as diverged. *)
