module Addr = Asf_mem.Addr
module Prng = Asf_engine.Prng
module Ops = Asf_dstruct.Ops
module Tlist = Asf_dstruct.Tlist
module Tskiplist = Asf_dstruct.Tskiplist
module Trbtree = Asf_dstruct.Trbtree
module Thashset = Asf_dstruct.Thashset
module Thashmap = Asf_dstruct.Thashmap
module Tqueue = Asf_dstruct.Tqueue

type txclass = {
  c_name : string;
  c_weight : int;
  c_body : Amem.actx -> unit;
}

type t = {
  w_name : string;
  w_er : bool;
  w_make : Amem.t -> seed:int -> txclass list;
}

(* Shorthands over the capability record. *)
let ops (a : Amem.actx) = a.Amem.o

let ld a x = (ops a).Ops.ld x

let st a x v = (ops a).Ops.st x v

let alloc a n = (ops a).Ops.alloc n

let free a x n = (ops a).Ops.free x n

let rand (a : Amem.actx) n = a.Amem.rand n

let nld (a : Amem.actx) x = a.Amem.nld x

let nst (a : Amem.actx) x v = a.Amem.nst x v

(* ------------------------------------------------------------------ *)
(* IntegerSet family                                                     *)
(* ------------------------------------------------------------------ *)

(* One configuration for the whole family, matching the runtime
   cross-validation runs (and the @check smoke configuration). *)
let intset_range = 256

let intset_update_pct = 20

let intset_init = intset_range / 2

let intset_buckets = 4096

type iface = {
  i_add : Ops.t -> int -> bool;
  i_remove : Ops.t -> int -> bool;
  i_contains : Ops.t -> int -> bool;
}

let intset_classes make_iface am ~seed =
  let so = Amem.setup_ops am in
  let s = make_iface so in
  (* Populate exactly like Intset.populate: same derived seed, same draw
     per attempted insertion. *)
  let rng = Prng.create (seed + 4242) in
  let n = ref 0 in
  while !n < intset_init do
    if s.i_add so (Prng.int rng intset_range) then incr n
  done;
  let u = intset_update_pct in
  List.filter
    (fun c -> c.c_weight > 0)
    [
      {
        c_name = "add";
        c_weight = u;
        c_body = (fun a -> ignore (s.i_add (ops a) (rand a intset_range)));
      };
      {
        c_name = "remove";
        c_weight = u;
        c_body = (fun a -> ignore (s.i_remove (ops a) (rand a intset_range)));
      };
      {
        c_name = "contains";
        c_weight = 200 - (2 * u);
        c_body = (fun a -> ignore (s.i_contains (ops a) (rand a intset_range)));
      };
    ]

let w_linked_list ~er name =
  {
    w_name = name;
    w_er = er;
    w_make =
      intset_classes (fun so ->
          let t = Tlist.create so in
          {
            i_add = (fun o k -> Tlist.add o t k);
            i_remove = (fun o k -> Tlist.remove o t k);
            i_contains = (fun o k -> Tlist.contains o t k);
          });
  }

let w_skip_list =
  {
    w_name = "intset-skip-list";
    w_er = false;
    w_make =
      intset_classes (fun so ->
          let max_level =
            max 4 (int_of_float (Float.log2 (float_of_int intset_range)))
          in
          let t = Tskiplist.create so ~max_level () in
          {
            i_add = (fun o k -> Tskiplist.add o t k);
            i_remove = (fun o k -> Tskiplist.remove o t k);
            i_contains = (fun o k -> Tskiplist.contains o t k);
          });
  }

let w_rb_tree =
  {
    w_name = "intset-rb-tree";
    w_er = false;
    w_make =
      intset_classes (fun so ->
          let t = Trbtree.create so in
          {
            i_add = (fun o k -> Trbtree.insert o t k k);
            i_remove = (fun o k -> Trbtree.remove o t k);
            i_contains = (fun o k -> Trbtree.mem o t k);
          });
  }

let w_hash_set =
  {
    w_name = "intset-hash-set";
    w_er = false;
    w_make =
      intset_classes (fun so ->
          let t = Thashset.create so ~buckets:intset_buckets in
          {
            i_add = (fun o k -> Thashset.add o t k);
            i_remove = (fun o k -> Thashset.remove o t k);
            i_contains = (fun o k -> Thashset.contains o t k);
          });
  }

(* ------------------------------------------------------------------ *)
(* Bank (examples/bank.ml)                                               *)
(* ------------------------------------------------------------------ *)

let bank_accounts = 64

let w_bank =
  {
    w_name = "bank";
    w_er = false;
    w_make =
      (fun am ~seed:_ ->
        let accounts = Array.init bank_accounts (fun _ -> Amem.alloc_words am 1) in
        Array.iter (fun a -> Amem.poke am a 1000) accounts;
        [
          {
            c_name = "transfer";
            c_weight = 49;
            c_body =
              (fun a ->
                let src = accounts.(rand a bank_accounts) in
                let dst = accounts.(rand a bank_accounts) in
                let amount = rand a 20 in
                if src <> dst then begin
                  st a src (ld a src - amount);
                  st a dst (ld a dst + amount)
                end);
          };
          {
            c_name = "audit";
            c_weight = 1;
            c_body =
              (fun a ->
                ignore (Array.fold_left (fun acc x -> acc + ld a x) 0 accounts));
          };
        ]);
  }

(* ------------------------------------------------------------------ *)
(* STAMP models                                                          *)
(* ------------------------------------------------------------------ *)

(* Each model reproduces the application's atomic blocks — same shared
   structures, record layouts and access shapes as lib/stamp — without
   the phase machinery around them. Inputs are drawn through the
   recorded [rand] so restarts replay identically. *)

(* genome: dedup inserts into a hash map (6-word records), phase-2
   publishes prefixes and links chain ends, plus the barrier word. *)
let w_genome =
  {
    w_name = "genome";
    w_er = false;
    w_make =
      (fun am ~seed ->
        let so = Amem.setup_ops am in
        let rng = Prng.create (seed + 606) in
        let record_words = 6 in
        let f_content = 0 and f_next = 1 and f_overlap = 2 in
        let f_claimed = 3 and f_head = 4 and f_tail = 5 in
        let dedup = Thashmap.create so ~buckets:2048 in
        let content_space = 1 lsl 16 in
        (* Pre-seeded unique records: the state phase 2 starts from. *)
        let records =
          Array.init 96 (fun _ ->
              let content = 1 + Prng.int rng content_space in
              match Thashmap.get so dedup content with
              | Some r -> r
              | None ->
                  let r = so.Ops.alloc record_words in
                  so.Ops.st (r + f_content) content;
                  so.Ops.st (r + f_next) 0;
                  so.Ops.st (r + f_claimed) 0;
                  so.Ops.st (r + f_head) r;
                  so.Ops.st (r + f_tail) r;
                  Thashmap.put so dedup content r;
                  r)
        in
        let round_map = Thashmap.create so ~buckets:2048 in
        let barrier = Amem.alloc_words am 2 in
        [
          {
            c_name = "dedup";
            c_weight = 8;
            c_body =
              (fun a ->
                let o = ops a in
                let content = 1 + rand a content_space in
                if Thashmap.get o dedup content = None then begin
                  let r = alloc a record_words in
                  st a (r + f_content) content;
                  st a (r + f_next) 0;
                  st a (r + f_overlap) 0;
                  st a (r + f_claimed) 0;
                  st a (r + f_head) r;
                  st a (r + f_tail) r;
                  Thashmap.put o dedup content r
                end);
          };
          {
            c_name = "publish-prefix";
            c_weight = 4;
            c_body =
              (fun a ->
                let o = ops a in
                let r = records.(rand a (Array.length records)) in
                if ld a (r + f_claimed) = 0 then begin
                  let content = ld a (r + f_content) in
                  Thashmap.put o round_map (1 + (content lsr 2)) r
                end);
          };
          {
            c_name = "link";
            c_weight = 4;
            c_body =
              (fun a ->
                let o = ops a in
                let r = records.(rand a (Array.length records)) in
                if ld a (r + f_next) = 0 then begin
                  let content = ld a (r + f_content) in
                  match Thashmap.get o round_map (1 + (content land 0x3fff)) with
                  | Some succ when succ <> r && ld a (succ + f_claimed) = 0 ->
                      let head = ld a (r + f_head) in
                      if head <> succ then begin
                        let tail = ld a (succ + f_tail) in
                        st a (r + f_next) succ;
                        st a (succ + f_claimed) 1;
                        st a (head + f_tail) tail;
                        st a (tail + f_head) head
                      end
                  | Some _ | None -> ()
                end);
          };
          {
            c_name = "barrier";
            c_weight = 1;
            c_body = (fun a -> st a barrier (ld a barrier + 1));
          };
        ]);
  }

(* kmeans: the accumulator transaction — transactional read-modify-write
   of one cluster's accumulator block, annotated reads of the point's
   coordinates (centers are read outside the atomic block). *)
let w_kmeans name clusters =
  {
    w_name = name;
    w_er = false;
    w_make =
      (fun am ~seed ->
        let dims = 8 and points = 1024 in
        let rng = Prng.create (seed + 77) in
        let pts = Amem.alloc_words am (points * dims) in
        for i = 0 to (points * dims) - 1 do
          Amem.poke am (pts + i) (Prng.int rng 1000)
        done;
        let accum = Array.init clusters (fun _ -> Amem.alloc_words am (1 + dims)) in
        let barrier = Amem.alloc_words am 2 in
        [
          {
            c_name = "accumulate";
            c_weight = 16;
            c_body =
              (fun a ->
                let p = rand a points in
                let acc = accum.(rand a clusters) in
                st a acc (ld a acc + 1);
                for d = 0 to dims - 1 do
                  let slot = acc + 1 + d in
                  st a slot (ld a slot + nld a (pts + (p * dims) + d))
                done);
          };
          {
            c_name = "barrier";
            c_weight = 1;
            c_body = (fun a -> st a barrier (ld a barrier + 1));
          };
        ]);
  }

(* ssca2: one-line adjacency-block insertion. *)
let w_ssca2 =
  {
    w_name = "ssca2";
    w_er = false;
    w_make =
      (fun am ~seed:_ ->
        let vertices = 2048 and max_degree = 8 in
        let block_words = 1 + max_degree in
        let stride = Addr.lines_of_words block_words * Addr.words_per_line in
        let adj = Amem.alloc_words am (vertices * stride) in
        [
          {
            c_name = "insert-edge";
            c_weight = 1;
            c_body =
              (fun a ->
                let block = adj + (rand a vertices * stride) in
                let dst = rand a vertices in
                let deg = ld a block in
                if deg < max_degree then begin
                  st a (block + 1 + deg) dst;
                  st a block (deg + 1)
                end);
          };
        ]);
  }

(* labyrinth (stock configuration: transactional snapshot): dequeue a
   routing job, snapshot the whole grid transactionally, then revalidate
   and claim a path. The snapshot puts every grid line in the read set —
   the transaction that cannot fit any LLB and runs serial, unless the
   privatisation ablation demotes the snapshot to annotated loads. *)
let w_labyrinth ?(privatized = false) name =
  {
    w_name = name;
    w_er = false;
    w_make =
      (fun am ~seed ->
        let x = 32 and y = 32 and z = 3 in
        let cells = x * y * z in
        let grid = Amem.alloc_words am cells in
        let rng = Prng.create (seed + 42421) in
        let work = Tqueue.create (Amem.setup_ops am) in
        for _ = 1 to 8 do
          Tqueue.enqueue (Amem.setup_ops am) work (Prng.int rng (cells * cells))
        done;
        [
          {
            c_name = "dequeue";
            c_weight = 1;
            c_body =
              (fun a ->
                let o = ops a in
                (match Tqueue.dequeue o work with Some _ -> () | None -> ());
                Tqueue.enqueue o work (rand a (cells * cells)));
          };
          {
            c_name = "route";
            c_weight = 4;
            c_body =
              (fun a ->
                let read c = if privatized then nld a (grid + c) else ld a (grid + c) in
                for c = 0 to cells - 1 do
                  ignore (read c)
                done;
                (* Claim a path of plausible length: revalidate + write. *)
                let len = 4 + rand a 56 in
                let start = rand a (cells - len) in
                let id = 1 + rand a 10000 in
                for i = 0 to len - 1 do
                  ignore (ld a (grid + start + i));
                  st a (grid + start + i) id
                done);
          };
        ]);
  }

(* vacation: browse + book, customer deletion, table update — the real
   red-black-tree code over resource/customer records. *)
let w_vacation name ~queries ~user_pct =
  {
    w_name = name;
    w_er = false;
    w_make =
      (fun am ~seed ->
        let relations = 256 in
        let so = Amem.setup_ops am in
        let rng = Prng.create (seed + 9090) in
        let r_total = 0 and r_avail = 1 and r_price = 2 in
        let c_spent = 0 and c_bookings = 1 and c_reservations = 2 in
        let res_words = 3 and n_tables = 3 in
        let tables = Array.init n_tables (fun _ -> Trbtree.create so) in
        let customers = Trbtree.create so in
        for id = 0 to relations - 1 do
          Array.iter
            (fun t ->
              let rcd = so.Ops.alloc 3 in
              let capacity = 1 + Prng.int rng 5 in
              so.Ops.st (rcd + r_total) capacity;
              so.Ops.st (rcd + r_avail) capacity;
              so.Ops.st (rcd + r_price) (100 + Prng.int rng 900);
              ignore (Trbtree.insert so t id rcd))
            tables;
          let cust = so.Ops.alloc 3 in
          so.Ops.st (cust + c_spent) 0;
          so.Ops.st (cust + c_bookings) 0;
          so.Ops.st (cust + c_reservations) 0;
          ignore (Trbtree.insert so customers id cust)
        done;
        let other = (100 - user_pct) / 2 in
        [
          {
            c_name = "user";
            c_weight = user_pct;
            c_body =
              (fun a ->
                let o = ops a in
                let cust_id = rand a relations in
                let chosen = ref 0 in
                for _ = 1 to queries do
                  let t = rand a n_tables and id = rand a relations in
                  match Trbtree.find o tables.(t) id with
                  | Some rcd -> if ld a (rcd + r_avail) > 0 then chosen := rcd
                  | None -> ()
                done;
                if !chosen <> 0 then begin
                  let rcd = !chosen in
                  match Trbtree.find o customers cust_id with
                  | Some cust ->
                      let price = ld a (rcd + r_price) in
                      st a (rcd + r_avail) (ld a (rcd + r_avail) - 1);
                      st a (cust + c_spent) (ld a (cust + c_spent) + price);
                      st a (cust + c_bookings) (ld a (cust + c_bookings) + 1);
                      let node = alloc a res_words in
                      st a node rcd;
                      st a (node + 1) price;
                      st a (node + 2) (ld a (cust + c_reservations));
                      st a (cust + c_reservations) node
                  | None -> ()
                end);
          };
          {
            c_name = "delete-customer";
            c_weight = other;
            c_body =
              (fun a ->
                let o = ops a in
                match Trbtree.find o customers (rand a relations) with
                | Some cust ->
                    let rec release node =
                      if node <> 0 then begin
                        let rcd = ld a node in
                        st a (rcd + r_avail) (ld a (rcd + r_avail) + 1);
                        let next = ld a (node + 2) in
                        free a node res_words;
                        release next
                      end
                    in
                    release (ld a (cust + c_reservations));
                    st a (cust + c_reservations) 0;
                    st a (cust + c_spent) 0;
                    st a (cust + c_bookings) 0
                | None -> ());
          };
          {
            c_name = "update-tables";
            c_weight = other;
            c_body =
              (fun a ->
                let o = ops a in
                let t = rand a n_tables in
                let id = rand a (2 * relations) in
                match Trbtree.find o tables.(t) id with
                | Some rcd ->
                    if ld a (rcd + r_avail) = ld a (rcd + r_total) then begin
                      ignore (Trbtree.remove o tables.(t) id);
                      free a rcd 3
                    end
                    else st a (rcd + r_price) (100 + (id mod 900))
                | None ->
                    let rcd = alloc a 3 in
                    let capacity = 1 + (id mod 5) in
                    st a (rcd + r_total) capacity;
                    st a (rcd + r_avail) capacity;
                    st a (rcd + r_price) (100 + (id mod 900));
                    ignore (Trbtree.insert o tables.(t) id rcd));
          };
        ]);
  }

(* intruder: capture-queue dequeue, fragment reassembly into per-flow
   buffers through the shared hash map, buffer free after detection. *)
let w_intruder =
  {
    w_name = "intruder";
    w_er = false;
    w_make =
      (fun am ~seed ->
        let flows = 64 and frags_per_flow = 4 in
        let frag_words = 4 in
        let flow_words = frags_per_flow * frag_words in
        let so = Amem.setup_ops am in
        let rng = Prng.create (seed + 31337) in
        let pool = Amem.alloc_words am (flows * frags_per_flow * frag_words) in
        for w = 0 to (flows * frags_per_flow * frag_words) - 1 do
          Amem.poke am (pool + w) (Prng.int rng (1 lsl 24))
        done;
        let capture = Tqueue.create so in
        for f = 0 to (flows * frags_per_flow) - 1 do
          Tqueue.enqueue so capture ((f / frags_per_flow * 64) + (f mod frags_per_flow))
        done;
        let reassembly = Thashmap.create so ~buckets:1024 in
        let freed = ref [] in
        [
          {
            c_name = "dequeue";
            c_weight = 3;
            c_body =
              (fun a ->
                let o = ops a in
                match Tqueue.dequeue o capture with Some _ -> () | None -> ());
          };
          {
            c_name = "reassemble";
            c_weight = 6;
            c_body =
              (fun a ->
                let o = ops a in
                let flow = rand a flows and idx = rand a frags_per_flow in
                let src = pool + (((flow * frags_per_flow) + idx) * frag_words) in
                let block =
                  match Thashmap.get o reassembly flow with
                  | Some b -> b
                  | None ->
                      let b = alloc a (1 + flow_words) in
                      st a b 0;
                      Thashmap.put o reassembly flow b;
                      b
                in
                for w = 0 to frag_words - 1 do
                  st a (block + 1 + (idx * frag_words) + w) (ld a (src + w))
                done;
                let got = ld a block + 1 in
                st a block got;
                if got >= frags_per_flow then begin
                  ignore (Thashmap.remove o reassembly flow);
                  freed := block :: !freed
                end);
          };
          {
            c_name = "free-buffer";
            c_weight = 1;
            c_body =
              (fun a ->
                match !freed with
                | b :: rest ->
                    freed := rest;
                    free a b (1 + flow_words)
                | [] -> ());
          };
        ]);
  }

(* ------------------------------------------------------------------ *)
(* Registry                                                              *)
(* ------------------------------------------------------------------ *)

let stock =
  [
    w_linked_list ~er:false "intset-linked-list";
    w_linked_list ~er:true "intset-linked-list-er";
    w_skip_list;
    w_rb_tree;
    w_hash_set;
    w_bank;
    w_genome;
    w_intruder;
    w_kmeans "kmeans-low" 40;
    w_kmeans "kmeans-high" 15;
    w_labyrinth "labyrinth";
    w_ssca2;
    w_vacation "vacation-low" ~queries:2 ~user_pct:98;
    w_vacation "vacation-high" ~queries:4 ~user_pct:90;
  ]

(* Negative fixtures. *)

let fx_unsafe_annotation =
  {
    w_name = "fixture-unsafe-annotation";
    w_er = false;
    w_make =
      (fun am ~seed:_ ->
        let shared = Amem.alloc_words am 8 in
        [
          {
            c_name = "racy";
            c_weight = 1;
            c_body =
              (fun a ->
                (* Transactionally write the line, then touch it with
                   annotated accesses: both directions of the static
                   race. *)
                st a shared (ld a shared + 1);
                ignore (nld a (shared + 1));
                nst a (shared + 2) 7);
          };
        ]);
  }

let fx_over_capacity =
  {
    w_name = "fixture-over-capacity";
    w_er = false;
    w_make =
      (fun am ~seed:_ ->
        let lines = 300 in
        let block = Amem.alloc_words am (lines * Addr.words_per_line) in
        [
          {
            c_name = "huge-read";
            c_weight = 1;
            c_body =
              (fun a ->
                for l = 0 to lines - 1 do
                  ignore (ld a (block + (l * Addr.words_per_line)))
                done);
          };
        ]);
  }

let fx_restart_hazard =
  {
    w_name = "fixture-restart-hazard";
    w_er = false;
    w_make =
      (fun am ~seed:_ ->
        let cell = Amem.alloc_words am 1 in
        (* Host-side mutable state captured by the closure: a restart
           (the analyzer's second execution) observes the increment the
           first execution left behind. *)
        let host_counter = ref 0 in
        [
          {
            c_name = "leaky";
            c_weight = 1;
            c_body =
              (fun a ->
                incr host_counter;
                st a cell !host_counter);
          };
        ]);
  }

let fx_reread_after_release =
  {
    w_name = "fixture-reread-after-release";
    w_er = true;
    w_make =
      (fun am ~seed:_ ->
        let block = Amem.alloc_words am (2 * Addr.words_per_line) in
        [
          {
            c_name = "reread";
            c_weight = 1;
            c_body =
              (fun a ->
                ignore (ld a block);
                (ops a).Ops.release block;
                ignore (ld a (block + Addr.words_per_line));
                ignore (ld a block));
          };
        ]);
  }

let fixtures =
  [ fx_unsafe_annotation; fx_over_capacity; fx_restart_hazard; fx_reread_after_release ]

let find name = List.find_opt (fun w -> w.w_name = name) (stock @ fixtures)
