(** The shared finding record: one shape for Txstatic's static verdicts
    and Txcheck's runtime findings, so CI can diff the two sides
    machine-readably instead of scraping tables. *)

type source = Static | Runtime

type t = {
  f_source : source;
  f_severity : string;  (** ["violation"] or ["advisory"] *)
  f_kind : string;
      (** static: ["unsafe-nload"], ["unsafe-nstore"], ["restart-hazard"],
          ["reread-after-release"], ["capacity-overflow"],
          ["set-conflict"], ["capacity-contradiction"]; runtime: the
          {!Asf_check.Check.finding} kinds, plus the serve-harness kinds
          ["non-linearizable"] / ["lin-inconclusive"] (the Txlin oracle)
          and ["partition"] (the outcome-partition invariant) *)
  f_workload : string;
  f_class : string;  (** transaction class, [""] when workload-wide *)
  f_variant : string;  (** hardware variant, [""] when variant-independent *)
  f_line : int option;  (** offending cache-line index, when known *)
  f_count : int;
  f_detail : string;
}

val make :
  source:source ->
  severity:string ->
  kind:string ->
  workload:string ->
  ?cls:string ->
  ?variant:string ->
  ?line:int ->
  ?count:int ->
  detail:string ->
  unit ->
  t

val of_check : workload:string -> Asf_check.Check.finding list -> t list
(** Txcheck findings rebased into the shared record ([f_source =
    Runtime]; part name folded into the detail). *)

val of_livelock : workload:string -> Asf_tm_rt.Tm.diagnosis -> t list
(** Flatten a progress-watchdog diagnosis into findings: one [livelock]
    violation summarising the stall (count = cycles without a commit)
    followed by one [livelock-core] advisory per context, so
    [--check-json] artifacts record {e why} a run was killed with exit
    code 3 rather than only that it was. *)

val is_violation : t -> bool

(** {1 JSON} *)

val json_of_findings : t list -> string
(** The findings as a JSON array (one object per finding, stable key
    order). *)

val validate_json : string -> (unit, string) result
(** Structural check on an emitted document: balanced brackets outside
    strings and the required top-level keys present. *)

val write_json : path:string -> string -> (unit, string) result
(** Write a whole JSON document, then re-read and {!validate_json} it —
    the emit-then-verify discipline the bench harness uses. *)
