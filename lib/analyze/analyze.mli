(** Txstatic: the engine-free static transaction analyzer.

    Executes every transaction class of a workload model against
    {!Amem}'s abstract memory over a bounded set of seeded inputs — no
    timing, no scheduler, no caches — and distils per-class {e access
    summaries} (lines read/written, peak protected-set size, worst L1
    set occupancy under {!Asf_machine.Params}, annotated/transactional
    alias sets, allocation and early-release events). A pure lint layer
    then issues the verdicts the DTMC compiler side of the paper's stack
    produced before any run:

    - {e capacity} per hardware variant — fits / overflows /
      set-conflict-possible ({!cap_verdict});
    - {e annotation safety} — an [nload]/[nstore] that may alias a
      transactionally-written line is a static race;
    - {e restart hygiene} — host-side state observed to differ between
      two abstract executions of one body;
    - {e early-release misuse} — a released line re-protected later in
      the same attempt. *)

type cap_verdict = Fits | Overflows | Set_conflict

val verdict_name : cap_verdict -> string
(** ["fits"], ["overflows"], ["set-conflict"]. *)

val abi_lines : int
(** Protected lines the runtime ABI adds to every hardware attempt
    beyond the body's own footprint: 1, the transactional serial-lock
    subscription. *)

type class_summary = {
  cs_workload : string;
  cs_class : string;
  cs_execs : int;
  cs_rd_max : int;  (** most distinct transactionally-read lines seen *)
  cs_wr_max : int;
  cs_peak_max : int;  (** worst peak protected-set size *)
  cs_peak_min : int;
  cs_rd_set_occ : int;
      (** worst per-L1-set occupancy among read-only protected lines *)
  cs_all_set_occ : int;
      (** ... among every line the transaction touches (protected and
          annotated): the eviction-pressure bound for the hybrid
          variants *)
  cs_releases : int;
  cs_rereads : int;
  cs_allocs : int;
  cs_diverged : int;  (** executions whose replay diverged *)
}

type wreport = {
  wr_workload : string;
  wr_classes : class_summary list;
  wr_alias_nload : int;
      (** lines annotated-read by some execution and transactionally
          written by some execution of the same workload (may-alias) *)
  wr_alias_nstore : int;
      (** annotated-written lines that may alias any protected line *)
  wr_alias_sample : int option;  (** one offending line, for the report *)
}

type t = {
  a_params : Asf_machine.Params.t;
  a_seeds : int list;
  a_txns : int;
  a_reports : wreport list;
}

val variants : Asf_core.Variant.t list
(** The hardware variants verdicts are issued for: the four LLB variants
    plus the cache-based design. *)

val capacity_verdict :
  params:Asf_machine.Params.t ->
  variant:Asf_core.Variant.t ->
  class_summary ->
  cap_verdict
(** Plain-LLB variants: [peak + abi_lines] against the entry count
    (exact for the explored inputs). L1-hybrid variants: written lines
    against the LLB, read lines against per-set associativity, with
    [Set_conflict] when a set is full enough that unrelated fills could
    evict a tracked line. *)

val workload_verdict :
  params:Asf_machine.Params.t -> variant:Asf_core.Variant.t -> wreport -> cap_verdict
(** Worst class verdict ([Overflows] > [Set_conflict] > [Fits]). *)

val run :
  ?seeds:int list ->
  ?txns:int ->
  params:Asf_machine.Params.t ->
  Workloads.t list ->
  t
(** Analyze each workload: for every seed, build the model's state,
    execute each class once and then a weighted schedule of [txns]
    transactions (default 240, seeds [1;2;3]), and fold the executions
    into summaries. *)

val findings : t -> Findings.t list
(** The lint verdicts as shared findings: annotation races, restart
    hazards and release misuse as violations; capacity overflows and
    set conflicts per variant as advisories (a truthful "this class
    runs serial on that hardware" is not an error). *)

val ok : t -> bool
(** No violation findings. *)

val artifact_json : t -> extra:Findings.t list -> string
(** The [ANALYZE_asf.json] document: parameters, per-class summaries
    with per-variant verdicts, and all findings (static ones plus
    [extra], e.g. cross-validation contradictions). Passes
    {!Findings.validate_json}. *)
