module Params = Asf_machine.Params
module Variant = Asf_core.Variant
module Llb = Asf_core.Llb
module Prng = Asf_engine.Prng

type cap_verdict = Fits | Overflows | Set_conflict

let verdict_name = function
  | Fits -> "fits"
  | Overflows -> "overflows"
  | Set_conflict -> "set-conflict"

(* Every hardware attempt subscribes to the serial lock with a
   transactional load (Tm.asf_attempt), so the runtime footprint is the
   body's footprint plus one line. *)
let abi_lines = 1

type class_summary = {
  cs_workload : string;
  cs_class : string;
  cs_execs : int;
  cs_rd_max : int;
  cs_wr_max : int;
  cs_peak_max : int;
  cs_peak_min : int;
  cs_rd_set_occ : int;
  cs_all_set_occ : int;
  cs_releases : int;
  cs_rereads : int;
  cs_allocs : int;
  cs_diverged : int;
}

type wreport = {
  wr_workload : string;
  wr_classes : class_summary list;
  wr_alias_nload : int;
  wr_alias_nstore : int;
  wr_alias_sample : int option;
}

type t = {
  a_params : Params.t;
  a_seeds : int list;
  a_txns : int;
  a_reports : wreport list;
}

(* ------------------------------------------------------------------ *)
(* Verdicts                                                              *)
(* ------------------------------------------------------------------ *)

let capacity_verdict ~params ~(variant : Variant.t) cs =
  let assoc = params.Params.l1_assoc in
  if variant.Variant.l1_write_set then
    (* Cache-based: the whole protected set lives in the L1; a set
       holding more protected lines than ways cannot retain them all,
       and a full set is one unrelated fill away from an eviction. *)
    if cs.cs_all_set_occ > assoc then Overflows
    else if cs.cs_all_set_occ >= assoc then Set_conflict
    else Fits
  else if variant.Variant.l1_read_set then
    (* Hybrid: written lines are LLB entries, read lines are tracked
       L1-resident. The serial-lock subscription is a read, so it lands
       in the L1, not the LLB. *)
    if cs.cs_wr_max > variant.Variant.llb_entries then Overflows
    else if cs.cs_rd_set_occ > assoc then Overflows
    else if cs.cs_all_set_occ >= assoc then Set_conflict
    else Fits
  else if cs.cs_peak_max + abi_lines > variant.Variant.llb_entries then Overflows
  else Fits

let worst a b =
  match (a, b) with
  | Overflows, _ | _, Overflows -> Overflows
  | Set_conflict, _ | _, Set_conflict -> Set_conflict
  | Fits, Fits -> Fits

let workload_verdict ~params ~variant wr =
  List.fold_left
    (fun acc cs -> worst acc (capacity_verdict ~params ~variant cs))
    Fits wr.wr_classes

(* ------------------------------------------------------------------ *)
(* Exploration                                                           *)
(* ------------------------------------------------------------------ *)

(* Worst per-set line count for a list of line indices. *)
let set_occupancy params lines =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun l ->
      let s = Llb.set_index params l in
      Hashtbl.replace tbl s (1 + Option.value ~default:0 (Hashtbl.find_opt tbl s)))
    lines;
  Hashtbl.fold (fun _ n m -> max n m) tbl 0

(* Sorted-list difference and n-way union (exec line lists are sorted). *)
let rec diff a b =
  match (a, b) with
  | [], _ -> []
  | a, [] -> a
  | x :: xs, y :: ys ->
      if x < y then x :: diff xs b else if x > y then diff a ys else diff xs ys

let union_all lists =
  let tbl = Hashtbl.create 64 in
  List.iter (List.iter (fun l -> Hashtbl.replace tbl l ())) lists;
  Hashtbl.fold (fun l () acc -> l :: acc) tbl [] |> List.sort compare

type acc = {
  mutable k_execs : int;
  mutable k_rd_max : int;
  mutable k_wr_max : int;
  mutable k_peak_max : int;
  mutable k_peak_min : int;
  mutable k_rd_set_occ : int;
  mutable k_all_set_occ : int;
  mutable k_releases : int;
  mutable k_rereads : int;
  mutable k_allocs : int;
  mutable k_diverged : int;
}

let fresh_acc () =
  {
    k_execs = 0;
    k_rd_max = 0;
    k_wr_max = 0;
    k_peak_max = 0;
    k_peak_min = max_int;
    k_rd_set_occ = 0;
    k_all_set_occ = 0;
    k_releases = 0;
    k_rereads = 0;
    k_allocs = 0;
    k_diverged = 0;
  }

let explore_workload ~seeds ~txns ~params (wl : Workloads.t) =
  let accs : (string, acc) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  let acc_of name =
    match Hashtbl.find_opt accs name with
    | Some a -> a
    | None ->
        let a = fresh_acc () in
        Hashtbl.add accs name a;
        order := name :: !order;
        a
  in
  (* Workload-level alias sets, across every execution and seed. *)
  let txrd = Hashtbl.create 64 and txwr = Hashtbl.create 64 in
  let ard = Hashtbl.create 16 and awr = Hashtbl.create 16 in
  List.iter
    (fun seed ->
      let am = Amem.create () in
      let classes = wl.Workloads.w_make am ~seed in
      let wrng = Prng.create ((seed * 0x9e3779b9) + 17) in
      let srng = Prng.create (seed lxor 0x5bd1e995) in
      let total_weight =
        List.fold_left (fun s c -> s + c.Workloads.c_weight) 0 classes
      in
      let run_class (c : Workloads.txclass) =
        let x = Amem.run_tx ~early_release:wl.Workloads.w_er am wrng c.c_body in
        let a = acc_of c.c_name in
        a.k_execs <- a.k_execs + 1;
        a.k_rd_max <- max a.k_rd_max (List.length x.Amem.x_rd);
        a.k_wr_max <- max a.k_wr_max (List.length x.Amem.x_wr);
        a.k_peak_max <- max a.k_peak_max x.Amem.x_peak;
        a.k_peak_min <- min a.k_peak_min x.Amem.x_peak;
        let rd_only = diff x.Amem.x_rd x.Amem.x_wr in
        a.k_rd_set_occ <- max a.k_rd_set_occ (set_occupancy params rd_only);
        let touched =
          union_all [ x.Amem.x_rd; x.Amem.x_wr; x.Amem.x_ard; x.Amem.x_awr ]
        in
        a.k_all_set_occ <- max a.k_all_set_occ (set_occupancy params touched);
        a.k_releases <- a.k_releases + x.Amem.x_releases;
        a.k_rereads <- a.k_rereads + x.Amem.x_rereads;
        a.k_allocs <- a.k_allocs + x.Amem.x_allocs;
        if x.Amem.x_diverged then a.k_diverged <- a.k_diverged + 1;
        List.iter (fun l -> Hashtbl.replace txrd l ()) x.Amem.x_rd;
        List.iter (fun l -> Hashtbl.replace txwr l ()) x.Amem.x_wr;
        List.iter (fun l -> Hashtbl.replace ard l ()) x.Amem.x_ard;
        List.iter (fun l -> Hashtbl.replace awr l ()) x.Amem.x_awr
      in
      (* Every class at least once, then the weighted schedule. *)
      List.iter run_class classes;
      let n_rest = max 0 (txns - List.length classes) in
      for _ = 1 to n_rest do
        let roll = Prng.int srng (max 1 total_weight) in
        let rec pick acc = function
          | [] -> ()
          | [ c ] -> run_class c
          | c :: rest ->
              if roll < acc + c.Workloads.c_weight then run_class c
              else pick (acc + c.Workloads.c_weight) rest
        in
        pick 0 classes
      done)
    seeds;
  let classes =
    List.rev_map
      (fun name ->
        let a = Hashtbl.find accs name in
        {
          cs_workload = wl.Workloads.w_name;
          cs_class = name;
          cs_execs = a.k_execs;
          cs_rd_max = a.k_rd_max;
          cs_wr_max = a.k_wr_max;
          cs_peak_max = a.k_peak_max;
          cs_peak_min = (if a.k_peak_min = max_int then 0 else a.k_peak_min);
          cs_rd_set_occ = a.k_rd_set_occ;
          cs_all_set_occ = a.k_all_set_occ;
          cs_releases = a.k_releases;
          cs_rereads = a.k_rereads;
          cs_allocs = a.k_allocs;
          cs_diverged = a.k_diverged;
        })
      !order
  in
  let inter big small =
    Hashtbl.fold (fun l () acc -> if Hashtbl.mem big l then l :: acc else acc) small []
  in
  let nload_alias = inter txwr ard in
  let prot = Hashtbl.copy txwr in
  Hashtbl.iter (fun l () -> Hashtbl.replace prot l ()) txrd;
  let nstore_alias = inter prot awr in
  {
    wr_workload = wl.Workloads.w_name;
    wr_classes = classes;
    wr_alias_nload = List.length nload_alias;
    wr_alias_nstore = List.length nstore_alias;
    wr_alias_sample =
      (match (nload_alias, nstore_alias) with
      | l :: _, _ | _, l :: _ -> Some l
      | [], [] -> None);
  }

let run ?(seeds = [ 1; 2; 3 ]) ?(txns = 240) ~params workloads =
  {
    a_params = params;
    a_seeds = seeds;
    a_txns = txns;
    a_reports = List.map (explore_workload ~seeds ~txns ~params) workloads;
  }

(* ------------------------------------------------------------------ *)
(* Findings                                                              *)
(* ------------------------------------------------------------------ *)

let variants = Variant.all @ [ Variant.cache_based ]

let findings t =
  List.concat_map
    (fun wr ->
      let w = wr.wr_workload in
      let annot =
        (if wr.wr_alias_nload > 0 then
           [
             Findings.make ~source:Findings.Static ~severity:"violation"
               ~kind:"unsafe-nload" ~workload:w ?line:wr.wr_alias_sample
               ~count:wr.wr_alias_nload
               ~detail:
                 (Printf.sprintf
                    "%d line(s) annotated-read may alias a transactionally-written \
                     line: the selective annotation is a static race"
                    wr.wr_alias_nload)
               ();
           ]
         else [])
        @
        if wr.wr_alias_nstore > 0 then
          [
            Findings.make ~source:Findings.Static ~severity:"violation"
              ~kind:"unsafe-nstore" ~workload:w ?line:wr.wr_alias_sample
              ~count:wr.wr_alias_nstore
              ~detail:
                (Printf.sprintf
                   "%d annotated-written line(s) may alias a protected line"
                   wr.wr_alias_nstore)
              ();
          ]
        else []
      in
      let per_class =
        List.concat_map
          (fun cs ->
            (if cs.cs_diverged > 0 then
               [
                 Findings.make ~source:Findings.Static ~severity:"violation"
                   ~kind:"restart-hazard" ~workload:w ~cls:cs.cs_class
                   ~count:cs.cs_diverged
                   ~detail:
                     (Printf.sprintf
                        "%d of %d executions diverged on abstract replay: the body \
                         depends on host-side state a restart would not roll back"
                        cs.cs_diverged cs.cs_execs)
                   ();
               ]
             else [])
            @ (if cs.cs_rereads > 0 then
                 [
                   Findings.make ~source:Findings.Static ~severity:"violation"
                     ~kind:"reread-after-release" ~workload:w ~cls:cs.cs_class
                     ~count:cs.cs_rereads
                     ~detail:
                       "a released line was re-protected later in the same attempt: \
                        the release bought nothing and the line may have changed \
                        mid-transaction"
                     ();
                 ]
               else [])
            @ List.filter_map
                (fun v ->
                  match capacity_verdict ~params:t.a_params ~variant:v cs with
                  | Fits -> None
                  | Overflows ->
                      Some
                        (Findings.make ~source:Findings.Static ~severity:"advisory"
                           ~kind:"capacity-overflow" ~workload:w ~cls:cs.cs_class
                           ~variant:v.Variant.name
                           ~detail:
                             (Printf.sprintf
                                "peak %d (+%d ABI) protected lines cannot fit: runs \
                                 serial on this hardware"
                                cs.cs_peak_max abi_lines)
                           ())
                  | Set_conflict ->
                      Some
                        (Findings.make ~source:Findings.Static ~severity:"advisory"
                           ~kind:"set-conflict" ~workload:w ~cls:cs.cs_class
                           ~variant:v.Variant.name
                           ~detail:
                             (Printf.sprintf
                                "an L1 set holds %d of %d ways: an unrelated fill \
                                 can evict a tracked line (spurious capacity abort)"
                                cs.cs_all_set_occ t.a_params.Params.l1_assoc)
                           ()))
                variants)
          wr.wr_classes
      in
      annot @ per_class)
    t.a_reports

let ok t = not (List.exists Findings.is_violation (findings t))

(* ------------------------------------------------------------------ *)
(* Artifact                                                              *)
(* ------------------------------------------------------------------ *)

let artifact_json t ~extra =
  let b = Buffer.create 8192 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"asf-analyze-v1\",\n";
  Buffer.add_string b
    (Printf.sprintf "  \"params\": \"%s\",\n" t.a_params.Params.name);
  Buffer.add_string b
    (Printf.sprintf "  \"seeds\": [%s],\n"
       (String.concat ", " (List.map string_of_int t.a_seeds)));
  Buffer.add_string b (Printf.sprintf "  \"txns_per_seed\": %d,\n" t.a_txns);
  Buffer.add_string b (Printf.sprintf "  \"abi_lines\": %d,\n" abi_lines);
  Buffer.add_string b "  \"workloads\": [\n";
  List.iteri
    (fun wi wr ->
      if wi > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b
        (Printf.sprintf "    {\"name\": \"%s\", \"alias_nload\": %d, \
                         \"alias_nstore\": %d, \"classes\": [\n"
           wr.wr_workload wr.wr_alias_nload wr.wr_alias_nstore);
      List.iteri
        (fun ci cs ->
          if ci > 0 then Buffer.add_string b ",\n";
          let verdicts =
            String.concat ", "
              (List.map
                 (fun v ->
                   Printf.sprintf "\"%s\": \"%s\"" v.Variant.name
                     (verdict_name (capacity_verdict ~params:t.a_params ~variant:v cs)))
                 variants)
          in
          Buffer.add_string b
            (Printf.sprintf
               "      {\"name\": \"%s\", \"execs\": %d, \"rd_max\": %d, \
                \"wr_max\": %d, \"peak_max\": %d, \"peak_min\": %d, \
                \"rd_set_occ\": %d, \"all_set_occ\": %d, \"releases\": %d, \
                \"rereads\": %d, \"allocs\": %d, \"diverged\": %d, \
                \"verdicts\": {%s}}"
               cs.cs_class cs.cs_execs cs.cs_rd_max cs.cs_wr_max cs.cs_peak_max
               cs.cs_peak_min cs.cs_rd_set_occ cs.cs_all_set_occ cs.cs_releases
               cs.cs_rereads cs.cs_allocs cs.cs_diverged verdicts))
        wr.wr_classes;
      Buffer.add_string b "\n    ]}")
    t.a_reports;
  Buffer.add_string b "\n  ],\n";
  Buffer.add_string b "  \"findings\": ";
  Buffer.add_string b (Findings.json_of_findings (findings t @ extra));
  Buffer.add_string b "\n}\n";
  Buffer.contents b
