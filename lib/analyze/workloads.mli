(** Stock-workload models for the static analyzer.

    A workload is a set of {e transaction classes}: named closures over
    shared abstract state, each the body of one kind of atomic block the
    benchmark executes. The intset family and the transactional cores of
    bank run the {e real} data-structure code (via {!Asf_dstruct.Ops.dry});
    the STAMP entries model each application's atomic blocks — the same
    structures, record sizes and access shapes as the timed benchmarks,
    without the surrounding phase machinery.

    Class bodies draw all inputs through {!Amem.actx.rand} so a restart
    (the analyzer's double execution) replays them identically. *)

type txclass = {
  c_name : string;
  c_weight : int;  (** relative frequency in the exploration schedule *)
  c_body : Amem.actx -> unit;
}

type t = {
  w_name : string;
  w_er : bool;  (** early release wired into the capability record *)
  w_make : Amem.t -> seed:int -> txclass list;
      (** Build the workload's shared state in the abstract memory
          (unrecorded setup, seeded like the runtime benchmark) and
          return its classes. *)
}

(** {1 Shared intset parameters}

    Used verbatim by the runtime cross-validation runs, so static and
    dynamic sides analyze the same configuration. *)

val intset_range : int

val intset_update_pct : int

val intset_init : int

val intset_buckets : int

val stock : t list
(** Every stock workload: the intset family (plus the early-release
    linked list), bank, and the eight STAMP applications. *)

val fixtures : t list
(** Deliberately broken workloads for negative tests: unsafe annotation,
    an over-capacity transaction, a host-state restart hazard, and a
    released-then-reread line. Never part of {!stock}. *)

val find : string -> t option
(** By name, searching {!stock} then {!fixtures}. *)
