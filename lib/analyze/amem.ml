module Addr = Asf_mem.Addr
module Prng = Asf_engine.Prng
module Ops = Asf_dstruct.Ops

type t = {
  mem : (Addr.t, int) Hashtbl.t;
  mutable bump : Addr.t;  (* next free word; always line-aligned *)
}

(* Start allocation at line 1 so address 0 stays the null sentinel the
   list structures rely on, as in the real allocator. *)
let create () = { mem = Hashtbl.create 4096; bump = Addr.words_per_line }

let alloc_words t n =
  let lines = Addr.lines_of_words (max n 1) in
  let a = t.bump in
  t.bump <- t.bump + (lines * Addr.words_per_line);
  a

let peek t a = match Hashtbl.find_opt t.mem a with Some v -> v | None -> 0

let poke t a v = Hashtbl.replace t.mem a v

let setup_ops ?(rand_seed = 0x5e70) t =
  let rng = Prng.create rand_seed in
  Ops.dry ~ld:(peek t) ~st:(poke t) ~alloc:(alloc_words t)
    ~rand_bits:(fun () -> Prng.int rng (1 lsl 30))
    ()

type actx = {
  o : Ops.t;
  nld : Addr.t -> int;
  nst : Addr.t -> int -> unit;
  rand : int -> int;
  work : int -> unit;
}

type exec = {
  x_rd : int list;
  x_wr : int list;
  x_ard : int list;
  x_awr : int list;
  x_peak : int;
  x_releases : int;
  x_rereads : int;
  x_allocs : int;
  x_alloc_lines : int;
  x_frees : int;
  x_ops : int;
  x_diverged : bool;
}

(* One recorded operation. Traces of the two passes are compared
   structurally: any difference in kind, address, or value means the body
   depends on state a restart would not reproduce. *)
type op =
  | O_ld of Addr.t * int
  | O_st of Addr.t * int
  | O_nld of Addr.t * int
  | O_nst of Addr.t * int
  | O_rel of Addr.t
  | O_alloc of int * Addr.t
  | O_free of Addr.t * int
  | O_rand of int * int

type pass = {
  p_trace : op list;  (* reverse order *)
  p_overlay : (Addr.t, int) Hashtbl.t;
  p_rd : (int, unit) Hashtbl.t;
  p_wr : (int, unit) Hashtbl.t;
  p_ard : (int, unit) Hashtbl.t;
  p_awr : (int, unit) Hashtbl.t;
  p_peak : int;
  p_releases : int;
  p_rereads : int;
  p_allocs : int;
  p_alloc_lines : int;
  p_frees : int;
}

let exec_pass t ~early_release rng body =
  let trace = ref [] in
  let overlay = Hashtbl.create 64 in
  (* live protected set: line -> true when written *)
  let prot : (int, bool) Hashtbl.t = Hashtbl.create 64 in
  let released = Hashtbl.create 8 in
  let rereads = Hashtbl.create 8 in
  let rd = Hashtbl.create 64 and wr = Hashtbl.create 64 in
  let ard = Hashtbl.create 8 and awr = Hashtbl.create 8 in
  let peak = ref 0 in
  let releases = ref 0 in
  let allocs = ref 0 and alloc_lines = ref 0 and frees = ref 0 in
  let protect line ~write =
    match Hashtbl.find_opt prot line with
    | None ->
        Hashtbl.replace prot line write;
        let n = Hashtbl.length prot in
        if n > !peak then peak := n;
        if Hashtbl.mem released line then Hashtbl.replace rereads line ()
    | Some false when write -> Hashtbl.replace prot line true
    | Some _ -> ()
  in
  let ld a =
    let line = Addr.line_of a in
    Hashtbl.replace rd line ();
    protect line ~write:false;
    let v = match Hashtbl.find_opt overlay a with Some v -> v | None -> peek t a in
    trace := O_ld (a, v) :: !trace;
    v
  in
  let st a v =
    let line = Addr.line_of a in
    Hashtbl.replace wr line ();
    protect line ~write:true;
    Hashtbl.replace overlay a v;
    trace := O_st (a, v) :: !trace
  in
  let release a =
    if early_release then begin
      let line = Addr.line_of a in
      (match Hashtbl.find_opt prot line with
      | Some false ->
          (* Only read-only entries can be dropped, as in Llb.release. *)
          Hashtbl.remove prot line;
          Hashtbl.replace released line ();
          incr releases
      | _ -> ());
      trace := O_rel a :: !trace
    end
  in
  let alloc n =
    let a = alloc_words t n in
    incr allocs;
    alloc_lines := !alloc_lines + Addr.lines_of_words (max n 1);
    trace := O_alloc (n, a) :: !trace;
    a
  in
  let free a n =
    incr frees;
    trace := O_free (a, n) :: !trace
  in
  let rand n =
    let v = Prng.int rng n in
    trace := O_rand (n, v) :: !trace;
    v
  in
  let nld a =
    Hashtbl.replace ard (Addr.line_of a) ();
    (* An annotated load bypasses the speculative write buffer: it sees
       committed memory, never the transaction's own pending stores. *)
    let v = peek t a in
    trace := O_nld (a, v) :: !trace;
    v
  in
  let nst a v =
    Hashtbl.replace awr (Addr.line_of a) ();
    (* Applied immediately and never rolled back — hardware semantics. *)
    poke t a v;
    trace := O_nst (a, v) :: !trace
  in
  let o =
    Ops.dry ~ld ~st ~alloc ~free ~release
      ~rand_bits:(fun () -> rand (1 lsl 30))
      ()
  in
  body { o; nld; nst; rand; work = (fun _ -> ()) };
  {
    p_trace = !trace;
    p_overlay = overlay;
    p_rd = rd;
    p_wr = wr;
    p_ard = ard;
    p_awr = awr;
    p_peak = !peak;
    p_releases = !releases;
    p_rereads = Hashtbl.length rereads;
    p_allocs = !allocs;
    p_alloc_lines = !alloc_lines;
    p_frees = !frees;
  }

let sorted_lines h = Hashtbl.fold (fun k () acc -> k :: acc) h [] |> List.sort compare

let run_tx ?(early_release = false) t rng body =
  (* Pass 1 consumes a copy of the stream, so pass 2 replays the same
     draws — the analyzer's setjmp. Pass 1's speculative effects are
     discarded: the allocator is rewound and the overlay dropped. *)
  let rng1 = Prng.copy rng in
  let bump0 = t.bump in
  let p1 = exec_pass t ~early_release rng1 body in
  t.bump <- bump0;
  let p2 = exec_pass t ~early_release rng body in
  Hashtbl.iter (fun a v -> Hashtbl.replace t.mem a v) p2.p_overlay;
  {
    x_rd = sorted_lines p2.p_rd;
    x_wr = sorted_lines p2.p_wr;
    x_ard = sorted_lines p2.p_ard;
    x_awr = sorted_lines p2.p_awr;
    x_peak = p2.p_peak;
    x_releases = p2.p_releases;
    x_rereads = p2.p_rereads;
    x_allocs = p2.p_allocs;
    x_alloc_lines = p2.p_alloc_lines;
    x_frees = p2.p_frees;
    x_ops = List.length p2.p_trace;
    x_diverged = p1.p_trace <> p2.p_trace;
  }
