type t = {
  n_sets : int;
  assoc : int;
  (* tags.(set * assoc + way); -1 = invalid. *)
  tags : int array;
  (* LRU stamps, larger = more recent. *)
  stamps : int array;
  mutable clock : int;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let create ~sets ~assoc =
  if not (is_power_of_two sets) then
    invalid_arg "Cache.create: sets must be a power of two";
  if assoc <= 0 then invalid_arg "Cache.create: assoc must be positive";
  {
    n_sets = sets;
    assoc;
    tags = Array.make (sets * assoc) (-1);
    stamps = Array.make (sets * assoc) 0;
    clock = 0;
  }

let create_bytes ~size_bytes ~assoc ~line_bytes =
  let sets = size_bytes / (assoc * line_bytes) in
  create ~sets ~assoc

let sets t = t.n_sets

let assoc t = t.assoc

let set_of t key = key land (t.n_sets - 1)

(* Index of the way holding [key], or -1. The allocation-free primitive
   the per-access hot path uses; [find_way]/[mem]/[touch] are wrappers.
   Written as a while loop over hoisted fields: a local [let rec] would
   close over [base]/[key] and cost a closure allocation per probe — the
   dominant allocation of the whole access path, since each access probes
   up to six caches. [unsafe_get] is bounded by [set_of]'s mask and the
   fixed associativity. *)
let find_way_idx t key =
  let base = set_of t key * t.assoc in
  let tags = t.tags in
  let assoc = t.assoc in
  let res = ref (-1) in
  let w = ref 0 in
  while !res < 0 && !w < assoc do
    if Array.unsafe_get tags (base + !w) = key then res := base + !w;
    incr w
  done;
  !res

let mem t key = find_way_idx t key >= 0

(* First invalid way of the set, else its least-recently-stamped way —
   a loop over hoisted fields for the same no-closure reason as
   [find_way_idx]. *)
let pick_victim t base =
  let tags = t.tags and stamps = t.stamps in
  let assoc = t.assoc in
  let best = ref base in
  let w = ref 0 in
  let stop = ref false in
  while (not !stop) && !w < assoc do
    let i = base + !w in
    if Array.unsafe_get tags i = -1 then begin
      best := i;
      stop := true
    end
    else if Array.unsafe_get stamps i < Array.unsafe_get stamps !best then
      best := i;
    incr w
  done;
  !best

(* Access without boxing the outcome: on a hit just refreshes LRU; on a
   miss fills the entry. Returns the evicted tag, or -1 when nothing was
   pushed out (hit, or the set still had an invalid way). *)
let touch_evict t key =
  t.clock <- t.clock + 1;
  let i = find_way_idx t key in
  if i >= 0 then begin
    t.stamps.(i) <- t.clock;
    -1
  end
  else begin
    let base = set_of t key * t.assoc in
    (* Pick an invalid way, else the LRU way. *)
    let victim = pick_victim t base in
    let evicted = t.tags.(victim) in
    t.tags.(victim) <- key;
    t.stamps.(victim) <- t.clock;
    evicted
  end

let touch t key =
  let hit = find_way_idx t key >= 0 in
  let evicted = touch_evict t key in
  (hit, if evicted = -1 then None else Some evicted)

let invalidate t key =
  let i = find_way_idx t key in
  if i >= 0 then begin
    t.tags.(i) <- -1;
    t.stamps.(i) <- 0;
    true
  end
  else false

let iter t f =
  Array.iter (fun tag -> if tag <> -1 then f tag) t.tags

let clear t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.stamps 0 (Array.length t.stamps) 0
