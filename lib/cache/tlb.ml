module Params = Asf_machine.Params
module Addr = Asf_mem.Addr

type t = {
  params : Params.t;
  l1 : Cache.t array;
  l2 : Cache.t array;
  (* Shared page table as a presence bitmap indexed by page number, grown
     by doubling: page numbers are small and dense (word address / page
     words), so the per-translation mapped test is one byte load instead
     of a hashtable probe. [mapped] counts the set bits. *)
  mutable page_table : Bytes.t;
  mutable mapped : int;
  mutable abort_on_tlb_miss : bool;
}

type outcome = Translated of int | Fault of int | Tlb_miss_abort of int

let create (params : Params.t) ~n_cores =
  {
    params;
    l1 =
      Array.init n_cores (fun _ ->
          Cache.create ~sets:1 ~assoc:params.tlb_l1_entries);
    l2 =
      Array.init n_cores (fun _ ->
          Cache.create
            ~sets:(params.tlb_l2_entries / params.tlb_l2_assoc)
            ~assoc:params.tlb_l2_assoc);
    page_table = Bytes.make 4096 '\000';
    mapped = 0;
    abort_on_tlb_miss = false;
  }

let page_mapped t page =
  page < Bytes.length t.page_table
  && Bytes.unsafe_get t.page_table page <> '\000'

let map_page t page =
  let n = Bytes.length t.page_table in
  if page >= n then begin
    let n' = ref n in
    while page >= !n' do
      n' := !n' * 2
    done;
    let table = Bytes.make !n' '\000' in
    Bytes.blit t.page_table 0 table 0 n;
    t.page_table <- table
  end;
  if Bytes.unsafe_get t.page_table page = '\000' then begin
    Bytes.unsafe_set t.page_table page '\001';
    t.mapped <- t.mapped + 1
  end

let map_range t addr words =
  let first = Addr.page_of addr and last = Addr.page_of (addr + words - 1) in
  for p = first to last do
    map_page t p
  done

let set_abort_on_tlb_miss t b = t.abort_on_tlb_miss <- b

(* A shootdown invalidates the cached translation on every core; the next
   access to the page pays a full page walk. *)
let flush_page t page =
  Array.iter (fun c -> ignore (Cache.invalidate c page)) t.l1;
  Array.iter (fun c -> ignore (Cache.invalidate c page)) t.l2

let unmap_page t page =
  if page_mapped t page then begin
    Bytes.unsafe_set t.page_table page '\000';
    t.mapped <- t.mapped - 1
  end;
  flush_page t page

let translate t ~core addr ~speculative =
  let page = Addr.page_of addr in
  let l1 = t.l1.(core) and l2 = t.l2.(core) in
  if Cache.mem l1 page then begin
    ignore (Cache.touch_evict l1 page);
    Translated 0
  end
  else if Cache.mem l2 page then begin
    ignore (Cache.touch_evict l2 page);
    ignore (Cache.touch_evict l1 page);
    if t.abort_on_tlb_miss && speculative then
      Tlb_miss_abort t.params.tlb_l2_latency
    else Translated t.params.tlb_l2_latency
  end
  else if not (page_mapped t page) then Fault page
  else begin
    if t.abort_on_tlb_miss && speculative then
      Tlb_miss_abort t.params.page_walk_latency
    else begin
      ignore (Cache.touch_evict l2 page);
      ignore (Cache.touch_evict l1 page);
      Translated t.params.page_walk_latency
    end
  end

let mapped_pages t = t.mapped
