(** Packed per-line sharer sets for the coherence directory.

    A sharer set is a single immutable OCaml int; the layout is chosen
    per hierarchy by the {!ctx}:

    - {!Bitmask} — one presence bit per core. Exact at every size it
      supports, but capped at 62 cores by the tagged-int width. This is
      the fast path for paper-scale topologies and the reference model
      for the QCheck equivalence battery.
    - {!Limited} — limited-pointer directory with coarse-vector
      overflow (Dir_k-CV): up to 4 exact core pointers, and once a
      fifth distinct sharer appears the word degrades to a per-socket
      presence mask. Supports up to 512 cores / 16 sockets. Coarse
      words over-approximate the sharer set — probes may visit cores
      that hold nothing, which is a semantic no-op (invalidating an
      absent line does not touch cache state) — while the cross-socket
      verdict stays exact because socket bits record precisely the
      true sharers' sockets.

    All iteration orders are ascending core number in every mode, so a
    hierarchy built on either backend drops remote copies in the same
    order. *)

type kind = Bitmask | Limited

type ctx
(** Topology-bound interpretation context for sharer words. *)

type t = int
(** A sharer set, packed into one immutable int so the directory can
    store it in flat [int array] shards. Treat it as abstract: the
    layout is only meaningful through the [ctx] it was built under. *)

val max_bitmask_cores : int
(** 62: the widest topology the bitmask backend can represent. *)

val make_ctx : kind:kind -> n_cores:int -> n_sockets:int -> ctx
(** Raises [Invalid_argument] when the backend cannot represent the
    topology: [Bitmask] with more than 62 cores, [Limited] with more
    than 512 cores or 16 sockets. *)

val kind : ctx -> kind

val empty : t

val is_empty : t -> bool

val singleton : ctx -> int -> t

val add : ctx -> t -> int -> t
(** [add ctx s core] records [core] as a sharer. Idempotent. *)

val mem : ctx -> t -> int -> bool
(** Membership in the probe set. Exact except for coarse words, where
    any core of a flagged socket is reported present. *)

val others : ctx -> t -> except:int -> bool
(** [others ctx s ~except]: does some core other than [except] share
    the line? Exact in every mode (coarse words always hold at least
    5 distinct true sharers). *)

val crossed : ctx -> t -> socket:int -> except:int -> bool
(** [crossed ctx s ~socket ~except]: does some sharer other than
    [except] live outside [socket]? Exact in every mode. *)

val iter_others : ctx -> t -> except:int -> (int -> unit) -> unit
(** Visit the probe set minus [except] in ascending core order.
    Coarse words visit every core of each flagged socket. *)

val exact : ctx -> t -> bool
(** [true] unless the word has degraded to a coarse vector. *)

val coarse : ctx -> t -> bool

val to_list : ctx -> t -> int list
(** The probe set, ascending (tests / diagnostics). *)

val cardinal : ctx -> t -> int
