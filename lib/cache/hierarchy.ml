module Params = Asf_machine.Params

type level_stats = { mutable hits : int; mutable misses : int }

type t = {
  params : Params.t;
  n_cores : int;
  l1 : Cache.t array;
  l2 : Cache.t array;
  (* One L3 per socket. *)
  l3 : Cache.t array;
  (* Coherence directory, indexed directly by line number: a bitmask of
     cores holding a copy, and the core owning an exclusive dirty copy
     ([-1] = none). Flat arrays grown by doubling — line numbers are
     small and dense (word address / line words), so direct indexing
     replaces the previous hashtable without any per-access lookup
     allocation. *)
  mutable dir_owners : int array;
  mutable dir_dirty : int array;
  evict_hooks : (int -> unit) array;
  l1s : level_stats array;
  l2s : level_stats array;
  l3s : level_stats;
  (* L2 misses served by a cache-to-cache forward from a remote dirty
     copy: these bypass the L3 lookup entirely, so they belong to neither
     [l3s.hits] nor [l3s.misses]. Counting them separately keeps the
     read-path books balanced: l3 hits + l3 misses + forwards = l2
     misses. *)
  mutable forwards : int;
  mutable invalidations : int;
  mutable cross_socket_probes : int;
}

let fresh_stats () = { hits = 0; misses = 0 }

let create (params : Params.t) ~n_cores =
  let mk_l1 () =
    Cache.create_bytes ~size_bytes:params.l1_bytes ~assoc:params.l1_assoc
      ~line_bytes:params.line_bytes
  in
  let mk_l2 () =
    Cache.create_bytes ~size_bytes:params.l2_bytes ~assoc:params.l2_assoc
      ~line_bytes:params.line_bytes
  in
  {
    params;
    n_cores;
    l1 = Array.init n_cores (fun _ -> mk_l1 ());
    l2 = Array.init n_cores (fun _ -> mk_l2 ());
    l3 =
      Array.init params.n_sockets (fun _ ->
          Cache.create_bytes ~size_bytes:params.l3_bytes ~assoc:params.l3_assoc
            ~line_bytes:params.line_bytes);
    dir_owners = Array.make (1 lsl 16) 0;
    dir_dirty = Array.make (1 lsl 16) (-1);
    evict_hooks = Array.make n_cores (fun _ -> ());
    l1s = Array.init n_cores (fun _ -> fresh_stats ());
    l2s = Array.init n_cores (fun _ -> fresh_stats ());
    l3s = fresh_stats ();
    forwards = 0;
    invalidations = 0;
    cross_socket_probes = 0;
  }

let set_evict_hook t ~core f = t.evict_hooks.(core) <- f

(* Grow the directory to cover [line] (fresh slots: no owners, clean). *)
let ensure_dir t line =
  let n = Array.length t.dir_owners in
  if line >= n then begin
    let n' = ref n in
    while line >= !n' do
      n' := !n' * 2
    done;
    let owners = Array.make !n' 0 and dirty = Array.make !n' (-1) in
    Array.blit t.dir_owners 0 owners 0 n;
    Array.blit t.dir_dirty 0 dirty 0 n;
    t.dir_owners <- owners;
    t.dir_dirty <- dirty
  end

let drop_from_core t ~core line =
  if Cache.invalidate t.l1.(core) line then t.evict_hooks.(core) line;
  ignore (Cache.invalidate t.l2.(core) line)

let line_in_l1 t ~core ~line = Cache.mem t.l1.(core) line

let socket_of t core = core * t.params.Params.n_sockets / t.n_cores

let access t ~core ~line ~write =
  let p = t.params in
  ensure_dir t line;
  let dirty0 = t.dir_dirty.(line) in
  (* Latency from the nearest level that holds the line. A miss that must
     be served by a remote dirty copy costs a cache-to-cache forward at
     L3-like latency plus the probe. *)
  let socket = socket_of t core in
  let in_l1 = Cache.mem t.l1.(core) line in
  let in_l2 = Cache.mem t.l2.(core) line in
  let in_l3 = Cache.mem t.l3.(socket) line in
  let remote_dirty = dirty0 <> -1 && dirty0 <> core in
  (* Probes and forwards that cross a socket boundary pay the
     interconnect hop. *)
  let cross_penalty other_core =
    if socket_of t other_core <> socket then begin
      t.cross_socket_probes <- t.cross_socket_probes + 1;
      p.cross_socket_latency
    end
    else 0
  in
  let base_latency =
    if in_l1 then begin
      t.l1s.(core).hits <- t.l1s.(core).hits + 1;
      p.l1_latency
    end
    else begin
      t.l1s.(core).misses <- t.l1s.(core).misses + 1;
      if in_l2 then begin
        t.l2s.(core).hits <- t.l2s.(core).hits + 1;
        p.l2_latency
      end
      else begin
        t.l2s.(core).misses <- t.l2s.(core).misses + 1;
        if remote_dirty then begin
          t.forwards <- t.forwards + 1;
          p.l3_latency (* cache-to-cache forward *)
        end
        else if in_l3 then begin
          t.l3s.hits <- t.l3s.hits + 1;
          p.l3_latency
        end
        else begin
          t.l3s.misses <- t.l3s.misses + 1;
          p.mem_latency
        end
      end
    end
  in
  let extra = ref 0 in
  let my_bit = 1 lsl core in
  if write then begin
    let others = t.dir_owners.(line) land lnot my_bit in
    if others <> 0 || remote_dirty then begin
      extra := !extra + p.coherence_probe_latency;
      t.invalidations <- t.invalidations + 1;
      let crossed = ref false in
      for c = 0 to t.n_cores - 1 do
        if c <> core && others land (1 lsl c) <> 0 then begin
          if socket_of t c <> socket then crossed := true;
          drop_from_core t ~core:c line
        end
      done;
      if !crossed then begin
        t.cross_socket_probes <- t.cross_socket_probes + 1;
        extra := !extra + p.cross_socket_latency
      end
    end;
    t.dir_owners.(line) <- my_bit;
    t.dir_dirty.(line) <- core
  end
  else begin
    if remote_dirty then begin
      extra := !extra + p.coherence_probe_latency + cross_penalty dirty0;
      t.dir_dirty.(line) <- -1
      (* downgrade to shared; memory is already current *)
    end;
    t.dir_owners.(line) <- t.dir_owners.(line) lor my_bit
  end;
  (* Fill this core's caches and the shared L3. *)
  (let victim = Cache.touch_evict t.l1.(core) line in
   if victim <> -1 then t.evict_hooks.(core) victim);
  ignore (Cache.touch_evict t.l2.(core) line);
  ignore (Cache.touch_evict t.l3.(socket) line);
  base_latency + !extra

let l1_stats t ~core = t.l1s.(core)

let l2_stats t ~core = t.l2s.(core)

let l3_stats t = t.l3s

let forwards t = t.forwards

let invalidations t = t.invalidations

let cross_socket_probes t = t.cross_socket_probes
