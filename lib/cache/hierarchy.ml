module Params = Asf_machine.Params

type level_stats = { mutable hits : int; mutable misses : int }

(* Domain-local coherence totals, mirrored alongside each instance's own
   counters (same pattern as Engine's retire/sched counters): the record
   for the current domain is fetched once at [create], instances bump it
   on every coherence event, and the domain pool banks per-cell deltas
   into its arenas. [cc_dir_hw] is a high-water mark, not a sum — the
   pool zeroes it around each cell and merges with [max]. *)
type coh_counters = {
  mutable cc_invalidations : int;
  mutable cc_forwards : int;
  mutable cc_cross : int;
  mutable cc_probes : int;
  mutable cc_dir_hw : int;
}

let coh_key =
  Domain.DLS.new_key (fun () ->
      {
        cc_invalidations = 0;
        cc_forwards = 0;
        cc_cross = 0;
        cc_probes = 0;
        cc_dir_hw = 0;
      })

let domain_coherence () =
  let c = Domain.DLS.get coh_key in
  [| c.cc_invalidations; c.cc_forwards; c.cc_cross; c.cc_probes; c.cc_dir_hw |]

let set_domain_dir_high_water v = (Domain.DLS.get coh_key).cc_dir_hw <- v

(* Directory shard geometry: 8 Ki lines per shard. Growth allocates one
   64 KiB shard at a time (plus an occasional doubling of the small
   outer pointer array) instead of copying one giant pair of arrays. *)
let shard_bits = 13
let shard_size = 1 lsl shard_bits
let shard_mask = shard_size - 1

type t = {
  params : Params.t;
  n_cores : int;
  l1 : Cache.t array;
  l2 : Cache.t array;
  (* One L3 per socket. *)
  l3 : Cache.t array;
  (* Coherence directory, indexed by line number, sharded by line-index
     stripe: shard [line lsr shard_bits], slot [line land shard_mask].
     Each slot holds a packed {!Sharers.t} word (cores holding a copy)
     and the core owning an exclusive dirty copy ([-1] = none). A
     zero-length inner array marks an unallocated shard. *)
  mutable dir_owners : Sharers.t array array;
  mutable dir_dirty : int array array;
  sharers : Sharers.ctx;
  evict_hooks : (int -> unit) array;
  l1s : level_stats array;
  l2s : level_stats array;
  l3s : level_stats;
  (* L2 misses served by a cache-to-cache forward from a remote dirty
     copy: these bypass the L3 lookup entirely, so they belong to neither
     [l3s.hits] nor [l3s.misses]. Counting them separately keeps the
     read-path books balanced: l3 hits + l3 misses + forwards = l2
     misses. *)
  mutable forwards : int;
  mutable invalidations : int;
  mutable cross_socket_probes : int;
  (* Remote cores actually probed by write-invalidations. Under the
     limited backend in coarse mode this exceeds the true sharer count
     (spurious probes hit cores that hold nothing — a no-op); it is
     surfaced for the scale experiment, never in cmp-gated output. *)
  mutable probes : int;
  (* Directory lines whose sharer word ever became non-empty. Writes
     collapse the word to a singleton, never to empty, so this is
     monotone: occupancy doubles as its own high-water mark. *)
  mutable dir_occ : int;
  (* Preallocated invalidation callback: [iter_others] calls it for each
     recorded sharer so the probe loop allocates no closure per event.
     The line being invalidated travels via [drop_line]. *)
  mutable drop_fn : int -> unit;
  mutable drop_line : int;
  coh : coh_counters;
}

let fresh_stats () = { hits = 0; misses = 0 }

let backend_of_env () =
  match Sys.getenv_opt "ASF_SHARERS" with
  | None | Some "" | Some "auto" -> None
  | Some "bitmask" -> Some Sharers.Bitmask
  | Some "limited" -> Some Sharers.Limited
  | Some other ->
      invalid_arg
        (Printf.sprintf
           "ASF_SHARERS=%s: expected \"bitmask\", \"limited\" or \"auto\""
           other)

let drop_from_core t ~core line =
  if Cache.invalidate t.l1.(core) line then t.evict_hooks.(core) line;
  ignore (Cache.invalidate t.l2.(core) line)

let create ?sharers (params : Params.t) ~n_cores =
  let kind =
    match sharers with
    | Some k -> k
    | None -> (
        match backend_of_env () with
        | Some k -> k
        | None ->
            if n_cores <= Sharers.max_bitmask_cores then Sharers.Bitmask
            else Sharers.Limited)
  in
  let sharers =
    Sharers.make_ctx ~kind ~n_cores ~n_sockets:params.n_sockets
  in
  let mk_l1 () =
    Cache.create_bytes ~size_bytes:params.l1_bytes ~assoc:params.l1_assoc
      ~line_bytes:params.line_bytes
  in
  let mk_l2 () =
    Cache.create_bytes ~size_bytes:params.l2_bytes ~assoc:params.l2_assoc
      ~line_bytes:params.line_bytes
  in
  let t =
    {
      params;
      n_cores;
      l1 = Array.init n_cores (fun _ -> mk_l1 ());
      l2 = Array.init n_cores (fun _ -> mk_l2 ());
      l3 =
        Array.init params.n_sockets (fun _ ->
            Cache.create_bytes ~size_bytes:params.l3_bytes
              ~assoc:params.l3_assoc ~line_bytes:params.line_bytes);
      dir_owners = Array.make 8 [||];
      dir_dirty = Array.make 8 [||];
      sharers;
      evict_hooks = Array.make n_cores (fun _ -> ());
      l1s = Array.init n_cores (fun _ -> fresh_stats ());
      l2s = Array.init n_cores (fun _ -> fresh_stats ());
      l3s = fresh_stats ();
      forwards = 0;
      invalidations = 0;
      cross_socket_probes = 0;
      probes = 0;
      dir_occ = 0;
      drop_fn = ignore;
      drop_line = 0;
      coh = Domain.DLS.get coh_key;
    }
  in
  t.drop_fn <-
    (fun c ->
      t.probes <- t.probes + 1;
      t.coh.cc_probes <- t.coh.cc_probes + 1;
      drop_from_core t ~core:c t.drop_line);
  t

let set_evict_hook t ~core f = t.evict_hooks.(core) <- f

(* Make the shard covering [line] exist (fresh slots: no owners, clean).
   The outer pointer arrays grow by doubling; that copy moves a few
   hundred words at most, the 64 KiB shards themselves are never
   copied. *)
let ensure_dir t line =
  let si = line lsr shard_bits in
  (if si >= Array.length t.dir_owners then begin
     let n = Array.length t.dir_owners in
     let n' = ref n in
     while si >= !n' do
       n' := !n' * 2
     done;
     let owners = Array.make !n' [||] and dirty = Array.make !n' [||] in
     Array.blit t.dir_owners 0 owners 0 n;
     Array.blit t.dir_dirty 0 dirty 0 n;
     t.dir_owners <- owners;
     t.dir_dirty <- dirty
   end);
  if Array.length (Array.unsafe_get t.dir_owners si) = 0 then begin
    t.dir_owners.(si) <- Array.make shard_size Sharers.empty;
    t.dir_dirty.(si) <- Array.make shard_size (-1)
  end

let line_in_l1 t ~core ~line = Cache.mem t.l1.(core) line

let socket_of t core = core * t.params.Params.n_sockets / t.n_cores

let bump_occupancy t =
  t.dir_occ <- t.dir_occ + 1;
  if t.dir_occ > t.coh.cc_dir_hw then t.coh.cc_dir_hw <- t.dir_occ

let access t ~core ~line ~write =
  let p = t.params in
  ensure_dir t line;
  let si = line lsr shard_bits in
  let idx = line land shard_mask in
  let sh_owners = Array.unsafe_get t.dir_owners si in
  let sh_dirty = Array.unsafe_get t.dir_dirty si in
  let owners0 = Array.unsafe_get sh_owners idx in
  let dirty0 = Array.unsafe_get sh_dirty idx in
  (* Latency from the nearest level that holds the line. A miss that must
     be served by a remote dirty copy costs a cache-to-cache forward at
     L3-like latency plus the probe. *)
  let socket = socket_of t core in
  let in_l1 = Cache.mem t.l1.(core) line in
  let in_l2 = Cache.mem t.l2.(core) line in
  let in_l3 = Cache.mem t.l3.(socket) line in
  let remote_dirty = dirty0 <> -1 && dirty0 <> core in
  (* Probes and forwards that cross a socket boundary pay the
     interconnect hop. *)
  let cross_penalty other_core =
    if socket_of t other_core <> socket then begin
      t.cross_socket_probes <- t.cross_socket_probes + 1;
      t.coh.cc_cross <- t.coh.cc_cross + 1;
      p.cross_socket_latency
    end
    else 0
  in
  let base_latency =
    if in_l1 then begin
      t.l1s.(core).hits <- t.l1s.(core).hits + 1;
      p.l1_latency
    end
    else begin
      t.l1s.(core).misses <- t.l1s.(core).misses + 1;
      if in_l2 then begin
        t.l2s.(core).hits <- t.l2s.(core).hits + 1;
        p.l2_latency
      end
      else begin
        t.l2s.(core).misses <- t.l2s.(core).misses + 1;
        if remote_dirty then begin
          t.forwards <- t.forwards + 1;
          t.coh.cc_forwards <- t.coh.cc_forwards + 1;
          p.l3_latency (* cache-to-cache forward *)
        end
        else if in_l3 then begin
          t.l3s.hits <- t.l3s.hits + 1;
          p.l3_latency
        end
        else begin
          t.l3s.misses <- t.l3s.misses + 1;
          p.mem_latency
        end
      end
    end
  in
  let extra = ref 0 in
  let ctx = t.sharers in
  if write then begin
    (* Socket-granular snoop filtering: only recorded sharers (or, in
       coarse mode, cores of flagged sockets) are probed — never a
       [0 .. n_cores-1] scan. *)
    if Sharers.others ctx owners0 ~except:core || remote_dirty then begin
      extra := !extra + p.coherence_probe_latency;
      t.invalidations <- t.invalidations + 1;
      t.coh.cc_invalidations <- t.coh.cc_invalidations + 1;
      let crossed = Sharers.crossed ctx owners0 ~socket ~except:core in
      t.drop_line <- line;
      Sharers.iter_others ctx owners0 ~except:core t.drop_fn;
      if crossed then begin
        t.cross_socket_probes <- t.cross_socket_probes + 1;
        t.coh.cc_cross <- t.coh.cc_cross + 1;
        extra := !extra + p.cross_socket_latency
      end
    end;
    if Sharers.is_empty owners0 then bump_occupancy t;
    Array.unsafe_set sh_owners idx (Sharers.singleton ctx core);
    Array.unsafe_set sh_dirty idx core
  end
  else begin
    if remote_dirty then begin
      extra := !extra + p.coherence_probe_latency + cross_penalty dirty0;
      Array.unsafe_set sh_dirty idx (-1)
      (* downgrade to shared; memory is already current *)
    end;
    if Sharers.is_empty owners0 then bump_occupancy t;
    Array.unsafe_set sh_owners idx (Sharers.add ctx owners0 core)
  end;
  (* Fill this core's caches and the shared L3. *)
  (let victim = Cache.touch_evict t.l1.(core) line in
   if victim <> -1 then t.evict_hooks.(core) victim);
  ignore (Cache.touch_evict t.l2.(core) line);
  ignore (Cache.touch_evict t.l3.(socket) line);
  base_latency + !extra

let l1_stats t ~core = t.l1s.(core)

let l2_stats t ~core = t.l2s.(core)

let l3_stats t = t.l3s

let forwards t = t.forwards

let invalidations t = t.invalidations

let cross_socket_probes t = t.cross_socket_probes

let probes t = t.probes

let dir_high_water t = t.dir_occ

let backend t = Sharers.kind t.sharers
