(** Two-level per-core data TLB with a shared page table.

    Translation returns extra cycles on top of the data-cache latency:
    0 on an L1-TLB hit, [tlb_l2_latency] on an L2 hit, [page_walk_latency]
    on a full miss. If the page is not mapped in the shared page table, the
    walk reports a fault instead of filling the TLB — first-touch minor
    faults, which inside an ASF speculative region abort the region (unlike
    mere TLB misses, which ASF tolerates; cf. the Rock comparison in the
    paper). The [abort_on_tlb_miss] flag enables the Rock-style ablation. *)

type t

val create : Asf_machine.Params.t -> n_cores:int -> t

type outcome =
  | Translated of int  (** extra latency in cycles *)
  | Fault of int  (** unmapped page index *)
  | Tlb_miss_abort of int
      (** full TLB miss with Rock-style semantics enabled; payload is the
          extra latency already incurred *)

val translate : t -> core:int -> Asf_mem.Addr.t -> speculative:bool -> outcome

val map_page : t -> int -> unit
(** OS page-table update: marks a page present. *)

val page_mapped : t -> int -> bool

val map_range : t -> Asf_mem.Addr.t -> int -> unit
(** [map_range t addr words] maps every page overlapping the range (setup
    helper: memory initialised before the measured run is already mapped). *)

val set_abort_on_tlb_miss : t -> bool -> unit
(** Ablation switch (default off = ASF semantics). *)

val flush_page : t -> int -> unit
(** TLB shootdown: invalidate the page's cached translation in every
    core's L1 and L2 TLB, leaving the page table untouched — the next
    access pays a full page walk. *)

val unmap_page : t -> int -> unit
(** OS page-table removal plus shootdown ({!flush_page}): the next access
    to the page takes the first-touch minor-fault path — inside an ASF
    region that aborts it; otherwise the OS services the fault and remaps
    the page. *)

val mapped_pages : t -> int
