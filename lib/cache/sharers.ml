(* Packed sharer sets for the coherence directory.

   One immutable OCaml int per directory line, under either of two
   layouts selected per hierarchy at creation time:

   - [Bitmask]: bit [c] set iff core [c] holds a copy. Exact, O(1)
     membership, but capped at 62 cores by the tagged-int width.

   - [Limited]: a limited-pointer directory with coarse-vector overflow
     (Agarwal's Dir_k-CV). Up to [k = 4] exact 9-bit core pointers kept
     sorted ascending; the fifth distinct sharer switches the word to
     coarse mode, a per-socket presence mask. Coarse mode
     over-approximates (every core of a flagged socket is probed), which
     can send spurious invalidations — harmless because invalidating a
     line a cache does not hold is a no-op (see cache.ml), and the
     cross-socket verdict stays exact because socket bits are derived
     from the true sharers' sockets.

   Limited layout (bit 62..0):
     exact mode:  [count:3 @ 36] [p3 p2 p1 p0 : 9 bits each @ 0]
     coarse mode: [flag @ 39] [socket mask : 16 bits @ 0]
   The empty set is 0 in every layout. *)

type kind = Bitmask | Limited

type ctx = {
  kind : kind;
  n_cores : int;
  n_sockets : int;
  sock : int array;  (* core -> socket (same formula as Hierarchy) *)
  socket_masks : int array;  (* Bitmask only: per-socket core-bit mask *)
  socket_lo : int array;  (* Limited only: first core of each socket *)
  socket_hi : int array;  (* Limited only: last core (inclusive) *)
}

type t = int

let k = 4
let ptr_bits = 9
let ptr_mask = (1 lsl ptr_bits) - 1
let ptrs_mask = (1 lsl (k * ptr_bits)) - 1
let count_shift = k * ptr_bits
let coarse_flag = 1 lsl 39
let max_limited_cores = 1 lsl ptr_bits
let max_sockets = 16
let max_bitmask_cores = 62

let kind ctx = ctx.kind

let make_ctx ~kind ~n_cores ~n_sockets =
  if n_cores < 1 then invalid_arg "Sharers.make_ctx: n_cores < 1";
  if n_sockets < 1 then invalid_arg "Sharers.make_ctx: n_sockets < 1";
  (match kind with
  | Bitmask ->
      if n_cores > max_bitmask_cores then
        invalid_arg
          (Printf.sprintf
             "Sharers.make_ctx: bitmask backend holds at most %d cores \
              (got %d); use the limited-pointer backend"
             max_bitmask_cores n_cores)
  | Limited ->
      if n_cores > max_limited_cores then
        invalid_arg
          (Printf.sprintf
             "Sharers.make_ctx: limited backend holds at most %d cores \
              (got %d)"
             max_limited_cores n_cores);
      if n_sockets > max_sockets then
        invalid_arg
          (Printf.sprintf
             "Sharers.make_ctx: limited backend holds at most %d sockets \
              (got %d)"
             max_sockets n_sockets));
  let sock = Array.init n_cores (fun c -> c * n_sockets / n_cores) in
  let socket_masks = Array.make n_sockets 0 in
  let socket_lo = Array.make n_sockets n_cores in
  let socket_hi = Array.make n_sockets (-1) in
  for c = 0 to n_cores - 1 do
    let s = sock.(c) in
    if kind = Bitmask then socket_masks.(s) <- socket_masks.(s) lor (1 lsl c);
    if c < socket_lo.(s) then socket_lo.(s) <- c;
    if c > socket_hi.(s) then socket_hi.(s) <- c
  done;
  { kind; n_cores; n_sockets; sock; socket_masks; socket_lo; socket_hi }

let empty = 0
let is_empty s = s = 0

(* --- limited-layout helpers --- *)

let lim_count s = (s lsr count_shift) land 7
let lim_ptr s i = (s lsr (i * ptr_bits)) land ptr_mask
let is_coarse s = s land coarse_flag <> 0

let coarse ctx s = ctx.kind = Limited && is_coarse s
let exact ctx s = not (coarse ctx s)

let singleton ctx core =
  match ctx.kind with
  | Bitmask -> 1 lsl core
  | Limited -> (1 lsl count_shift) lor core

(* Coarse word carrying the sockets of the exact pointers plus [extra]. *)
let lim_to_coarse ctx s extra_core =
  let m = ref (1 lsl ctx.sock.(extra_core)) in
  for i = 0 to lim_count s - 1 do
    m := !m lor (1 lsl ctx.sock.(lim_ptr s i))
  done;
  coarse_flag lor !m

let add ctx s core =
  match ctx.kind with
  | Bitmask -> s lor (1 lsl core)
  | Limited ->
      if is_coarse s then s lor (1 lsl ctx.sock.(core))
      else begin
        let n = lim_count s in
        (* Sorted-pointer scan: find the insertion point, bail if the
           core is already recorded. *)
        let pos = ref 0 in
        let dup = ref false in
        for i = 0 to n - 1 do
          let p = lim_ptr s i in
          if p = core then dup := true;
          if p < core then pos := i + 1
        done;
        if !dup then s
        else if n = k then lim_to_coarse ctx s core
        else begin
          let pos = !pos in
          let ptrs = s land ptrs_mask in
          let low = ptrs land ((1 lsl (pos * ptr_bits)) - 1) in
          let high = (ptrs lsr (pos * ptr_bits)) lsl ((pos + 1) * ptr_bits) in
          low lor (core lsl (pos * ptr_bits)) lor high
          lor ((n + 1) lsl count_shift)
        end
      end

let mem ctx s core =
  match ctx.kind with
  | Bitmask -> s land (1 lsl core) <> 0
  | Limited ->
      if is_coarse s then s land (1 lsl ctx.sock.(core)) <> 0
      else begin
        let n = lim_count s in
        let found = ref false in
        for i = 0 to n - 1 do
          if lim_ptr s i = core then found := true
        done;
        !found
      end

let others ctx s ~except =
  match ctx.kind with
  | Bitmask -> s land lnot (1 lsl except) <> 0
  | Limited ->
      if is_coarse s then
        (* Coarse mode is only entered with >= k+1 distinct sharers, so
           some core other than [except] is always recorded. *)
        true
      else begin
        let n = lim_count s in
        n >= 2 || (n = 1 && lim_ptr s 0 <> except)
      end

let crossed ctx s ~socket ~except =
  match ctx.kind with
  | Bitmask ->
      s land lnot (1 lsl except) land lnot ctx.socket_masks.(socket) <> 0
  | Limited ->
      if is_coarse s then s land lnot coarse_flag land lnot (1 lsl socket) <> 0
      else begin
        let n = lim_count s in
        let hit = ref false in
        for i = 0 to n - 1 do
          let p = lim_ptr s i in
          if p <> except && ctx.sock.(p) <> socket then hit := true
        done;
        !hit
      end

(* Trailing-zero count per byte; slot 0 is unused (callers skip zero
   bytes). Table lookups keep the bitmask probe loop allocation-free. *)
let ctz8 =
  Array.init 256 (fun b ->
      if b = 0 then 8
      else begin
        let n = ref 0 in
        while b land (1 lsl !n) = 0 do
          incr n
        done;
        !n
      end)

(* Ascending-bit iteration; top-level and tail-recursive so no closure
   or ref cell is allocated per invalidation event. *)
let rec iter_bits_excl m base except f =
  if m <> 0 then begin
    let low = m land 0xff in
    if low = 0 then iter_bits_excl (m lsr 8) (base + 8) except f
    else begin
      let b = ctz8.(low) in
      let c = base + b in
      if c <> except then f c;
      iter_bits_excl (m land lnot (1 lsl b)) base except f
    end
  end

let iter_others ctx s ~except f =
  match ctx.kind with
  | Bitmask -> iter_bits_excl s 0 except f
  | Limited ->
      if is_coarse s then begin
        (* Sockets are contiguous ascending core ranges, so probing
           flagged sockets low-to-high visits cores in ascending order —
           the same order the bitmask backend drops them in. *)
        let m = s land lnot coarse_flag in
        for sck = 0 to ctx.n_sockets - 1 do
          if m land (1 lsl sck) <> 0 then
            for c = ctx.socket_lo.(sck) to ctx.socket_hi.(sck) do
              if c <> except then f c
            done
        done
      end
      else
        (* Pointers are kept sorted, so this is ascending too. *)
        for i = 0 to lim_count s - 1 do
          let p = lim_ptr s i in
          if p <> except then f p
        done

let to_list ctx s =
  let acc = ref [] in
  iter_others ctx s ~except:(-1) (fun c -> acc := c :: !acc);
  List.rev !acc

let cardinal ctx s = List.length (to_list ctx s)
