(** Generic set-associative cache directory with LRU replacement.

    Tracks presence only — data values live in {!Asf_mem.Ram}. Used for the
    three data-cache levels and (with one set and high associativity) for
    TLBs. Keys are cache-line indices (or page indices for TLB use). *)

type t

val create : sets:int -> assoc:int -> t
(** [sets] and [assoc] must be positive; [sets] must be a power of two. *)

val create_bytes : size_bytes:int -> assoc:int -> line_bytes:int -> t
(** Convenience: [sets = size / (assoc * line)]. *)

val sets : t -> int

val assoc : t -> int

val mem : t -> int -> bool
(** Presence test without touching LRU state. *)

val find_way_idx : t -> int -> int
(** Index of the way holding the key, or [-1] — the allocation-free form
    of a presence/lookup test for per-access hot paths. Does not touch
    LRU state. *)

val touch : t -> int -> bool * int option
(** [touch t key] performs an access: on hit, updates LRU and returns
    [(true, None)]; on miss, fills the entry, returning [(false, evicted)]
    where [evicted] is the victim line pushed out, if the set was full. *)

val touch_evict : t -> int -> int
(** Allocation-free {!touch}: performs the access and returns the evicted
    tag, or [-1] when nothing was pushed out (a hit, or a fill into an
    invalid way). Behaviour and LRU effects are identical to {!touch}. *)

val invalidate : t -> int -> bool
(** Removes an entry; returns whether it was present. *)

val iter : t -> (int -> unit) -> unit
(** Iterates over all resident keys (diagnostics, flash-clear helpers). *)

val clear : t -> unit
