(** Three-level cache hierarchy with directory-based MESI-lite coherence.

    Per-core L1 and L2, one L3 per socket (the paper's configuration is
    a single socket; the [dual_socket] profile splits cores and charges
    an interconnect hop on cross-socket probes and forwards). Values live in {!Asf_mem.Ram}; the
    hierarchy tracks presence and computes the load-to-use latency of each
    access, including coherence costs: a miss that hits a remote dirty copy
    pays a cache-to-cache forward, a write that finds remote copies pays an
    invalidation probe and removes the line from the remote L1/L2.

    L1 evictions and invalidations are reported through a per-core hook —
    the mechanism the hybrid ASF variants use to detect displacement of
    speculatively-read lines (Section 2.3 / Fig. 6 of the paper). *)

type t

val create : ?sharers:Sharers.kind -> Asf_machine.Params.t -> n_cores:int -> t
(** The directory's sharer-set backend defaults to {!Sharers.Bitmask}
    for topologies of at most 62 cores and {!Sharers.Limited} (4
    exact pointers overflowing to per-socket presence bits) beyond —
    the old one-bit-per-core representation silently overflowed the
    tagged int at core 63. The [ASF_SHARERS] environment variable
    ([bitmask]/[limited]/[auto], read at each create) or the [?sharers]
    argument force a backend; forcing [Bitmask] above 62 cores raises
    [Invalid_argument]. Both backends produce byte-identical runs on
    every topology the bitmask supports. *)

val set_evict_hook : t -> core:int -> (int -> unit) -> unit
(** [set_evict_hook t ~core f]: [f line] is called whenever [line] leaves
    the core's L1 (capacity eviction or remote invalidation). *)

val access : t -> core:int -> line:int -> write:bool -> int
(** Performs an access, updating cache and directory state; returns the
    raw (pre-OOO-scaling) latency in cycles. *)

val line_in_l1 : t -> core:int -> line:int -> bool

type level_stats = { mutable hits : int; mutable misses : int }

val l1_stats : t -> core:int -> level_stats

val l2_stats : t -> core:int -> level_stats

val l3_stats : t -> level_stats

val forwards : t -> int
(** L2 misses served by a cache-to-cache forward from a remote dirty
    copy. Such an access never consults the L3, so it appears in neither
    {!l3_stats} bucket; across all cores,
    [l3 hits + l3 misses + forwards = total l2 misses]. *)

val invalidations : t -> int
(** Total remote invalidation probes sent (diagnostics). *)

val cross_socket_probes : t -> int
(** Probes and forwards that crossed a socket boundary (multi-socket
    configurations only). *)

val probes : t -> int
(** Remote cores probed by write-invalidations. Exceeds the true sharer
    population when the limited backend has degraded a line to a coarse
    socket vector (spurious probes are semantic no-ops); surfaced for
    the scale experiment, never part of byte-compared output. *)

val dir_high_water : t -> int
(** Directory occupancy high-water: lines whose sharer set ever became
    non-empty (occupancy is monotone, so this equals current
    occupancy). *)

val backend : t -> Sharers.kind

val domain_coherence : unit -> int array
(** Domain-local coherence totals, summed over every hierarchy created
    on the calling domain:
    [| invalidations; forwards; cross_socket_probes; probes;
       dir_high_water |].
    The first four are monotone sums; the last is a high-water mark
    (see {!set_domain_dir_high_water}). The domain pool banks per-cell
    deltas of these around each experiment cell. *)

val set_domain_dir_high_water : int -> unit
(** Overwrite the calling domain's directory high-water slot — the
    domain pool zeroes it before a cell and restores [max old new]
    after, turning a domain-local mark into a per-cell one. *)
