(** Three-level cache hierarchy with directory-based MESI-lite coherence.

    Per-core L1 and L2, one L3 per socket (the paper's configuration is
    a single socket; the [dual_socket] profile splits cores and charges
    an interconnect hop on cross-socket probes and forwards). Values live in {!Asf_mem.Ram}; the
    hierarchy tracks presence and computes the load-to-use latency of each
    access, including coherence costs: a miss that hits a remote dirty copy
    pays a cache-to-cache forward, a write that finds remote copies pays an
    invalidation probe and removes the line from the remote L1/L2.

    L1 evictions and invalidations are reported through a per-core hook —
    the mechanism the hybrid ASF variants use to detect displacement of
    speculatively-read lines (Section 2.3 / Fig. 6 of the paper). *)

type t

val create : Asf_machine.Params.t -> n_cores:int -> t

val set_evict_hook : t -> core:int -> (int -> unit) -> unit
(** [set_evict_hook t ~core f]: [f line] is called whenever [line] leaves
    the core's L1 (capacity eviction or remote invalidation). *)

val access : t -> core:int -> line:int -> write:bool -> int
(** Performs an access, updating cache and directory state; returns the
    raw (pre-OOO-scaling) latency in cycles. *)

val line_in_l1 : t -> core:int -> line:int -> bool

type level_stats = { mutable hits : int; mutable misses : int }

val l1_stats : t -> core:int -> level_stats

val l2_stats : t -> core:int -> level_stats

val l3_stats : t -> level_stats

val forwards : t -> int
(** L2 misses served by a cache-to-cache forward from a remote dirty
    copy. Such an access never consults the L3, so it appears in neither
    {!l3_stats} bucket; across all cores,
    [l3 hits + l3 misses + forwards = total l2 misses]. *)

val invalidations : t -> int
(** Total remote invalidation probes sent (diagnostics). *)

val cross_socket_probes : t -> int
(** Probes and forwards that crossed a socket boundary (multi-socket
    configurations only). *)
