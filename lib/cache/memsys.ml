module Params = Asf_machine.Params
module Engine = Asf_engine.Engine
module Addr = Asf_mem.Addr
module Ram = Asf_mem.Ram
module Trace = Asf_trace.Trace
module Faults = Asf_faults.Faults

type fault = Unmapped of int | Tlb_miss

type t = {
  params : Params.t;
  engine : Engine.t;
  ram : Ram.t;
  tlb : Tlb.t;
  hier : Hierarchy.t;
  tracer : Trace.t;
  faults : Faults.t;
  mutable probe_hook : requester:int -> line:int -> write:bool -> unit;
  mutable access_hook :
    (core:int -> addr:Addr.t -> write:bool -> speculative:bool -> unit) option;
  mutable fault_hook : (core:int -> fault -> unit) option;
  mutable loads : int;
  mutable stores : int;
  mutable faults_serviced : int;
  (* Memoised OOO scaling: [scale] runs once per access, and the raw
     latencies it sees are small sums of fixed machine parameters, so a
     lookup table removes the per-access float multiply/round. *)
  scale_tab : int array;
}

let scale_raw (params : Params.t) latency =
  max 1 (int_of_float ((float_of_int latency *. params.ooo_factor) +. 0.5))

let scale_tab_size = 1024

let create params engine =
  let n_cores = Engine.n_cores engine in
  {
    params;
    engine;
    ram = Ram.create ();
    tlb = Tlb.create params ~n_cores;
    hier = Hierarchy.create params ~n_cores;
    tracer = Trace.installed ();
    faults = Faults.installed ();
    probe_hook = (fun ~requester:_ ~line:_ ~write:_ -> ());
    access_hook = None;
    fault_hook = None;
    loads = 0;
    stores = 0;
    faults_serviced = 0;
    scale_tab = Array.init scale_tab_size (scale_raw params);
  }

let params t = t.params

let engine t = t.engine

let ram t = t.ram

let tlb t = t.tlb

let hierarchy t = t.hier

let tracer t = t.tracer

let set_probe_hook t f = t.probe_hook <- f

let set_access_hook t f = t.access_hook <- f

let set_fault_hook t f = t.fault_hook <- Some f

let set_evict_hook t ~core f = Hierarchy.set_evict_hook t.hier ~core f

let scale t latency =
  if latency < scale_tab_size then t.scale_tab.(latency)
  else scale_raw t.params latency

let deliver_fault t ~core fault =
  match t.fault_hook with Some h -> h ~core fault | None -> ()

let service_fault t ~page =
  t.faults_serviced <- t.faults_serviced + 1;
  (let core = Engine.current_core t.engine in
   Trace.emit t.tracer ~core
     ~cycle:(Engine.core_time t.engine core)
     (Trace.Fault_service { page }));
  Engine.elapse t.params.page_fault_latency;
  Tlb.map_page t.tlb page

(* Translate, retrying after OS-serviced minor faults. Returns the extra
   translation latency. A registered fault hook that raises (ASF abort)
   interrupts the access before any state change. *)
let rec translate t ~core ~speculative addr =
  match Tlb.translate t.tlb ~core addr ~speculative with
  | Tlb.Translated extra -> extra
  | Tlb.Tlb_miss_abort extra ->
      Engine.elapse (scale t extra);
      deliver_fault t ~core Tlb_miss;
      (* The hook must raise; if the ablation is on without a hook we fall
         back to normal translation semantics. *)
      translate t ~core ~speculative addr
  | Tlb.Fault page ->
      deliver_fault t ~core (Unmapped page);
      service_fault t ~page;
      translate t ~core ~speculative addr

(* Every access runs [access_pre], its own data transfer inline, then
   [access_post] — the transfer must take effect at the access's commit
   point: after the coherence probe (so conflicting regions roll back
   first and requester-wins ordering holds) but before the cache fill —
   a fill can displace a hybrid-tracked line and doom the *requester's
   own* region, whose rollback must cover this very store. The split
   keeps the sequence closure-free: each caller inlines its transfer
   between the two halves instead of boxing it into an [apply] thunk,
   and both halves return/take plain ints. *)
let access_pre t ~core ~speculative ~write addr =
  (* Fault injection, drawn per access before translation. [page_unmap]
     models the OS paging the target out (page-table removal + shootdown):
     translation then takes the real minor-fault path — aborting an
     in-flight ASF region, or OS-serviced otherwise. [tlb_flush] is a
     shootdown only: the page stays mapped, the access just repays a page
     walk. Both reuse the genuine recovery paths; nothing is short-cut. *)
  if Faults.enabled t.faults then begin
    let page = Addr.page_of addr in
    if Faults.page_unmap t.faults ~core then begin
      Trace.emit t.tracer ~core
        ~cycle:(Engine.core_time t.engine core)
        (Trace.Fault_inject { kind = "page-unmap" });
      Tlb.unmap_page t.tlb page
    end
    else if Faults.tlb_flush t.faults ~core then begin
      Trace.emit t.tracer ~core
        ~cycle:(Engine.core_time t.engine core)
        (Trace.Fault_inject { kind = "tlb-flush" });
      Tlb.flush_page t.tlb page
    end
  end;
  let extra = translate t ~core ~speculative addr in
  t.probe_hook ~requester:core ~line:(Addr.line_of addr) ~write;
  (* Observers (the checking layer) see the access after conflict
     resolution but before the data transfer, so they can snapshot the
     pre-access memory image; they must not elapse simulated time. *)
  (match t.access_hook with
  | Some h -> h ~core ~addr ~write ~speculative
  | None -> ());
  extra

let access_post t ~core ~write ~extra addr =
  let lat = Hierarchy.access t.hier ~core ~line:(Addr.line_of addr) ~write in
  Engine.elapse (scale t (lat + extra))

let load t ~core ?(speculative = false) addr =
  t.loads <- t.loads + 1;
  let extra = access_pre t ~core ~speculative ~write:false addr in
  let v = Ram.read t.ram addr in
  access_post t ~core ~write:false ~extra addr;
  v

let store t ~core ?(speculative = false) addr v =
  t.stores <- t.stores + 1;
  let extra = access_pre t ~core ~speculative ~write:true addr in
  Ram.write t.ram addr v;
  access_post t ~core ~write:true ~extra addr

let cas t ~core addr ~expect ~value =
  t.loads <- t.loads + 1;
  t.stores <- t.stores + 1;
  let extra = access_pre t ~core ~speculative:false ~write:true addr in
  let cur = Ram.read t.ram addr in
  let ok = cur = expect in
  if ok then Ram.write t.ram addr value;
  access_post t ~core ~write:true ~extra addr;
  ok

let faa t ~core addr delta =
  t.loads <- t.loads + 1;
  t.stores <- t.stores + 1;
  let extra = access_pre t ~core ~speculative:false ~write:true addr in
  let cur = Ram.read t.ram addr in
  Ram.write t.ram addr (cur + delta);
  access_post t ~core ~write:true ~extra addr;
  cur

let touch_line t ~core ?(speculative = true) ~write addr =
  let extra = access_pre t ~core ~speculative ~write addr in
  access_post t ~core ~write ~extra addr

let peek t addr = Ram.read t.ram addr

let poke t addr v =
  Tlb.map_page t.tlb (Addr.page_of addr);
  Ram.write t.ram addr v

let map_page t page = Tlb.map_page t.tlb page

let loads t = t.loads

let stores t = t.stores

let faults_serviced t = t.faults_serviced
