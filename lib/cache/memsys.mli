(** The timed memory system: RAM + TLB + cache hierarchy + engine charging.

    Every simulated memory operation goes through this facade. An access

    + translates the address (possibly faulting on a first touch),
    + runs the registered {e probe hook} — the mechanism by which ASF's
      requester-wins contention management observes coherence traffic and
      dooms conflicting speculative regions {e before} the access takes
      effect,
    + updates the cache hierarchy and directory, reads or writes RAM,
    + charges the OOO-scaled latency to the calling core via
      {!Asf_engine.Engine.elapse}.

    Everything between two charges is atomic (engine property), which is
    how x86 [LOCK]-prefixed read-modify-writes ({!cas}, {!faa}) are
    modelled: the value check and the write happen at one scheduling point.

    Fault delivery: if a {e fault hook} is registered it is called first
    and is expected to raise (an ASF region abort); if it returns or is
    absent, the OS services the minor fault ([page_fault_latency] cycles,
    page mapped, access retried). *)

type t

type fault = Unmapped of int  (** page index *) | Tlb_miss

val create : Asf_machine.Params.t -> Asf_engine.Engine.t -> t

val params : t -> Asf_machine.Params.t

val engine : t -> Asf_engine.Engine.t

val ram : t -> Asf_mem.Ram.t

val tlb : t -> Tlb.t

val hierarchy : t -> Hierarchy.t

val tracer : t -> Asf_trace.Trace.t
(** The tracer that was installed when this memory system was created
    ({!Asf_trace.Trace.null} when tracing is off); shared by the layers
    built on top (ASF core, TM runtime, STM). *)

val set_probe_hook : t -> (requester:int -> line:int -> write:bool -> unit) -> unit

val set_access_hook :
  t -> (core:int -> addr:Asf_mem.Addr.t -> write:bool -> speculative:bool -> unit) option -> unit
(** Install (or clear) a passive per-access observer, called after the
    coherence probe has resolved conflicts but before the data transfer
    takes effect. Used by the {!Asf_check} layer; the observer must not
    advance simulated time, so observed and unobserved runs produce
    identical numbers. *)

val set_fault_hook : t -> (core:int -> fault -> unit) -> unit

val set_evict_hook : t -> core:int -> (int -> unit) -> unit

(** {1 Timed accesses} *)

val load : t -> core:int -> ?speculative:bool -> Asf_mem.Addr.t -> int

val store : t -> core:int -> ?speculative:bool -> Asf_mem.Addr.t -> int -> unit

val cas : t -> core:int -> Asf_mem.Addr.t -> expect:int -> value:int -> bool
(** Atomic compare-and-swap; returns whether the swap happened. *)

val faa : t -> core:int -> Asf_mem.Addr.t -> int -> int
(** Atomic fetch-and-add; returns the previous value. *)

val touch_line : t -> core:int -> ?speculative:bool -> write:bool -> Asf_mem.Addr.t -> unit
(** Timing and coherence effects of an access without a data transfer
    (WATCHR / WATCHW). *)

val service_fault : t -> page:int -> unit
(** OS minor-fault service: charges [page_fault_latency] and maps the page.
    Used by the TM runtime after a page-fault region abort. *)

(** {1 Untimed setup accesses}

    Used only to initialise benchmark state before the measured run: no
    latency, no cache effects; [poke] maps the touched page, mirroring an
    OS that has already served those faults during setup. *)

val peek : t -> Asf_mem.Addr.t -> int

val poke : t -> Asf_mem.Addr.t -> int -> unit

val map_page : t -> int -> unit

(** {1 Counters} *)

val loads : t -> int

val stores : t -> int

val faults_serviced : t -> int
