type t =
  | Contention
  | Capacity
  | Page_fault of int
  | Tlb_miss
  | Interrupt
  | Syscall
  | Explicit of int
  | Malloc
  | Disallowed
  | Spurious
  | Timeout

let index = function
  | Contention -> 0
  | Capacity -> 1
  | Page_fault _ -> 2
  | Tlb_miss -> 3
  | Interrupt -> 4
  | Syscall -> 5
  | Explicit _ -> 6
  | Malloc -> 7
  | Disallowed -> 8
  | Spurious -> 9
  | Timeout -> 10

let n_classes = 11

let class_names =
  [|
    "contention";
    "capacity";
    "page-fault";
    "tlb-miss";
    "interrupt";
    "syscall";
    "explicit";
    "malloc";
    "disallowed";
    "spurious";
    "timeout";
  |]

let class_name i = class_names.(i)

let to_string = function
  | Page_fault p -> Printf.sprintf "page-fault(page=%d)" p
  | Explicit c -> Printf.sprintf "explicit(%d)" c
  | r -> class_names.(index r)

let pp fmt t = Format.pp_print_string fmt (to_string t)
