(** The ASF instruction-set surface.

    One value of type {!t} models the ASF hardware of the whole simulated
    machine for one implementation {!Variant.t}: per-core speculative
    regions, the locked-line buffer(s), and — for the hybrid variants — L1
    read-set tracking. It hooks into {!Asf_cache.Memsys} so that coherence
    probes implement requester-wins contention management and first-touch
    page faults abort in-flight regions.

    The seven ASF instructions map to {!speculate}, {!commit},
    {!abort_explicit}, {!lock_load}/{!lock_store} (LOCK MOV), {!watchr},
    {!watchw}, and {!release}. Aborts are delivered as the {!Aborted}
    exception — the analogue of control transferring back to the
    instruction following SPECULATE with an error code in rAX; the software
    layer (ASF-TM) catches it and re-executes or falls back.

    Abort semantics mirror the specification: all speculative modifications
    are undone {e before} a conflicting probe completes (strong isolation,
    instantaneous aborts), registers are not restored (re-execution is the
    runtime's job), and a region doomed by a remote probe observes its
    abort at its next ASF operation. *)

exception Aborted of Abort.t

exception Colocation_fault of { core : int; line : int }
(** Raised on an unprotected write to a line the same region has modified
    speculatively — a program error per the ASF specification, not an
    abort. *)

type costs = {
  speculate_cycles : int;
  commit_cycles : int;
  abort_cycles : int;  (** pipeline flush + rollback initiation *)
  release_cycles : int;
}

val default_costs : costs

type t

val create :
  ?costs:costs ->
  ?requester_wins:bool ->
  ?rollback_on_abort:bool ->
  ?resolve_conflicts:bool ->
  Asf_cache.Memsys.t ->
  Variant.t ->
  t
(** Installs the probe, eviction, and fault hooks into the memory system.
    At most one [Asf.t] may be attached to a given [Memsys.t].

    [requester_wins] (default [true]) selects the contention policy. ASF
    specifies requester-wins: a conflicting probe aborts the region already
    holding the line. With [requester_wins:false] (an ablation of that
    design choice) a speculative access that would conflict with another
    region aborts the {e requesting} region instead — without disturbing
    the holder; non-speculative requesters still abort holders, as strong
    isolation demands.

    [rollback_on_abort] and [resolve_conflicts] (both default [true]) are
    deliberately-broken-hardware ablations for testing the {!Asf_check}
    layer: [rollback_on_abort:false] skips restoring the LLB backups when
    a region is doomed, leaving aborted speculative stores visible in
    memory; [resolve_conflicts:false] makes coherence probes
    conflict-blind, so conflicting regions are never doomed and strong
    isolation / serializability no longer hold. *)

val variant : t -> Variant.t

val memsys : t -> Asf_cache.Memsys.t

val max_nesting : int
(** 256, per the specification. *)

(** {1 The seven instructions} *)

val speculate : ?extra:int -> t -> core:int -> unit
(** Enter (or, dynamically nested, deepen) a speculative region. Nesting is
    flat: inner regions extend the outermost one. [extra] cycles of caller
    bookkeeping (the TM ABI entry cost) are folded into the instruction's
    own latency charge — one scheduling point instead of two back-to-back
    [elapse]s.
    @raise Aborted with [Disallowed] beyond {!max_nesting}. *)

val commit : ?extra:int -> t -> core:int -> unit
(** Leave the current nesting level; at the outermost level, atomically
    publish all speculative stores and flash-clear the protected sets.
    [extra] is folded into the commit latency as in {!speculate}.
    @raise Aborted if the region was doomed in the meantime. *)

val abort_explicit : t -> core:int -> code:int -> 'a
(** The ABORT instruction: roll back and deliver [Explicit code]. *)

val lock_load : t -> core:int -> Asf_mem.Addr.t -> int
(** Speculative load; protects the containing line (read set). *)

val lock_store : t -> core:int -> Asf_mem.Addr.t -> int -> unit
(** Speculative store; backs up and protects the containing line
    (write set). *)

val watchr : t -> core:int -> Asf_mem.Addr.t -> unit
(** Monitor a line for remote stores without loading data. *)

val watchw : t -> core:int -> Asf_mem.Addr.t -> unit
(** Monitor a line for remote loads and stores (joins the write set). *)

val release : t -> core:int -> Asf_mem.Addr.t -> unit
(** Drop a read-only line from the read set (a hint; never fails — a
    written or unprotected line is left untouched). *)

(** {1 Unannotated accesses inside regions (selective annotation)} *)

val plain_load : t -> core:int -> Asf_mem.Addr.t -> int

val plain_store : t -> core:int -> Asf_mem.Addr.t -> int -> unit
(** @raise Colocation_fault on a line the same region wrote speculatively. *)

(** {1 Runtime support} *)

val self_abort : ?line:int -> t -> core:int -> Abort.t -> 'a
(** Roll back the calling core's region and raise {!Aborted} with the given
    reason (used by ASF-TM for [Syscall] and [Malloc] aborts). [line] is
    the cache line responsible, when known (recorded for tracing). *)

val inject_abort : t -> core:int -> Abort.t -> unit
(** Fault-injection entry point: doom [core]'s region {e passively} with
    the given reason, exactly like a remote probe would — the victim
    observes the abort at its next ASF operation. No-op when the core has
    no live region. Never advances simulated time. *)

val throttle_capacity : t -> core:int -> int option -> unit
(** Fault-injection entry point: transiently cap (or, with [None],
    restore) the usable LLB capacity of [core]'s region — the ASF spec
    only promises a {e minimum} guaranteed capacity. See
    {!Llb.set_limit}. *)

val in_region : t -> core:int -> bool

val last_conflict : t -> core:int -> int option
(** Base address of the cache line behind this core's most recent abort —
    the conflicting line of a requester-wins probe, or the line whose
    capacity displacement doomed the region — when the hardware knows it.
    Survives the abort; cleared at the next outermost SPECULATE. *)

val protected_lines : t -> core:int -> int
(** Current protected-set size in lines (read + write). *)

val written_lines : t -> core:int -> int

(** {1 Observation (checking layer)} *)

type observer_event =
  | Obs_speculate  (** outermost region entry (state already initialised) *)
  | Obs_commit  (** outermost commit (stores already authoritative) *)
  | Obs_doom of Abort.t
      (** the region was doomed — by a remote probe, a capacity overflow,
          a fault, or itself; the rollback (when enabled) has already been
          applied when the observer runs *)
  | Obs_release of int  (** RELEASE executed on the given line *)

val set_observer : t -> (core:int -> observer_event -> unit) option -> unit
(** Install (or clear) a passive lifecycle observer. Observers must not
    advance simulated time: checked and unchecked runs produce identical
    numbers. *)

val line_protected : t -> core:int -> int -> bool
(** Is the line in the core's live (non-doomed) protected set? *)

val line_written : t -> core:int -> int -> bool
(** Is the line in the core's live (non-doomed) write set? *)

(** {1 Counters} *)

val speculates : t -> int

val commits : t -> int

val aborts : t -> int array
(** Aborts delivered, indexed by {!Abort.index}. The array is live. *)
