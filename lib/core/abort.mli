(** ASF abort reasons.

    On abort, ASF delivers a status code in rAX describing why the
    speculative region was rolled back. The first six constructors are the
    architectural classes from the specification; [Malloc] is the runtime
    convention ASF-TM uses when a transactional allocation cannot be
    satisfied speculatively (reported in the paper's Fig. 6 as
    "Abort (malloc)"). *)

type t =
  | Contention  (** requester-wins conflict on a protected line *)
  | Capacity  (** protected-line capacity exceeded (incl. transient L1
                  displacement in the hybrid variants) *)
  | Page_fault of int  (** page fault inside the region; payload: page *)
  | Tlb_miss  (** Rock-style ablation only; real ASF survives TLB misses *)
  | Interrupt  (** timer interrupt / privilege-level switch *)
  | Syscall  (** disallowed operation requiring the OS *)
  | Explicit of int  (** ABORT instruction with an immediate *)
  | Malloc  (** ASF-TM: speculative allocation pool exhausted *)
  | Disallowed  (** disallowed instruction / nesting overflow *)
  | Spurious
      (** spec-permitted spurious abort with no architectural cause;
          delivered only by the {!Asf_faults} injection layer (real
          hardware may abort spuriously at any time, so the runtime must
          treat this exactly like a transient contention abort) *)
  | Timeout
      (** ASF-TM deadline enforcement: the attempt was abandoned because
          its request's deadline passed (see [Tm.atomic_until]). Never
          delivered by the hardware model — the runtime accounts a
          deadline-abandoned attempt under this class so timeout waste is
          visible next to the architectural abort census. *)

val index : t -> int
(** Dense index for statistics arrays, in [0, n_classes). [Page_fault _]
    and [Explicit _] each map to one class. *)

val n_classes : int

val class_name : int -> string

val to_string : t -> string

val pp : Format.formatter -> t -> unit
