module Engine = Asf_engine.Engine
module Addr = Asf_mem.Addr
module Ram = Asf_mem.Ram
module Memsys = Asf_cache.Memsys
module Tlb = Asf_cache.Tlb
module Trace = Asf_trace.Trace
module Faults = Asf_faults.Faults

exception Aborted of Abort.t

exception Colocation_fault of { core : int; line : int }

type costs = {
  speculate_cycles : int;
  commit_cycles : int;
  abort_cycles : int;
  release_cycles : int;
}

let default_costs =
  { speculate_cycles = 8; commit_cycles = 14; abort_cycles = 40; release_cycles = 2 }

let max_nesting = 256

type region = {
  mutable active : bool;
  mutable nesting : int;
  mutable doomed : Abort.t option;
  llb : Llb.t;
  (* Hybrid variants: speculatively-read lines tracked via the L1. *)
  tracked : (int, unit) Hashtbl.t;
  mutable start_time : int;
  (* The cache line behind the most recent doom, when the hardware knows
     it (conflicting probe, capacity displacement). Survives the abort so
     the runtime can attribute it; cleared at the next outermost
     SPECULATE. *)
  mutable last_conflict : int option;
}

(* Passive lifecycle observer for the checking layer: notified at region
   boundaries and dooms, after the hardware state change has been applied.
   Observers must not elapse simulated time. *)
type observer_event =
  | Obs_speculate
  | Obs_commit
  | Obs_doom of Abort.t
  | Obs_release of int

type t = {
  mem : Memsys.t;
  engine : Engine.t;
  variant : Variant.t;
  costs : costs;
  requester_wins : bool;
  (* Test-only broken-hardware ablations: [rollback_on_abort:false] skips
     the write-back of LLB backups when a region is doomed, violating
     abort semantics; [resolve_conflicts:false] makes coherence probes
     conflict-blind, violating requester-wins isolation. The checking
     layer must detect the resulting stale or unserializable state. *)
  rollback_on_abort : bool;
  resolve_conflicts : bool;
  regions : region array;
  quantum : int;
  tracer : Trace.t;
  faults : Faults.t;
  mutable observer : (core:int -> observer_event -> unit) option;
  mutable speculates : int;
  mutable commits : int;
  aborts : int array;
}

let variant t = t.variant

let memsys t = t.mem

let region t core = t.regions.(core)

let set_observer t f = t.observer <- f

let notify t ~core ev =
  match t.observer with Some f -> f ~core ev | None -> ()

(* Roll back a region's speculative stores and clear its protected sets,
   recording the first abort reason. Idempotent; the victim observes the
   doom at its next ASF operation. The rollback writes RAM directly: the
   hardware answers the conflicting probe only after write-back, so the
   requester's access (which reads RAM after this hook) sees pre-
   transactional data. *)
let doom ?line t core reason =
  let r = region t core in
  if r.active && r.doomed = None then begin
    r.doomed <- Some reason;
    r.last_conflict <- line;
    let ram = Memsys.ram t.mem in
    if t.rollback_on_abort then
      Llb.iter_written r.llb (fun line backup -> Ram.write_line ram line backup);
    Llb.clear r.llb;
    Hashtbl.reset r.tracked;
    notify t ~core (Obs_doom reason)
  end

(* A write probe conflicts with read and write sets; a read probe
   conflicts with write sets only. *)
let region_conflicts t r ~line ~write =
  let in_write = Llb.written r.llb line in
  let in_read =
    Llb.mem r.llb line
    || (t.variant.Variant.l1_read_set && Hashtbl.mem r.tracked line)
  in
  in_write || (write && in_read)

(* Requester-wins: any conflicting probe dooms the region that already
   holds the line. Plain index loops, not [Array.iteri]: this runs once
   per memory access, and the iteration closure (capturing the probe
   parameters) would be the access path's last per-access allocation. *)
let resolve t ~requester ~line ~write =
  if t.resolve_conflicts then
    for core = 0 to Array.length t.regions - 1 do
      let r = Array.unsafe_get t.regions core in
      if
        core <> requester && r.active && r.doomed = None
        && region_conflicts t r ~line ~write
      then begin
        doom ~line t core Abort.Contention;
        Trace.emit t.tracer ~core
          ~cycle:(Engine.core_time t.engine core)
          (Trace.Probe_rollback { requester; line_addr = Addr.line_base line })
      end
    done

let any_remote_conflict t ~requester ~line ~write =
  let found = ref false in
  for core = 0 to Array.length t.regions - 1 do
    let r = Array.unsafe_get t.regions core in
    if
      core <> requester && r.active && r.doomed = None
      && region_conflicts t r ~line ~write
    then found := true
  done;
  !found

(* Deliver an abort to the calling core: reason from the doomed flag (the
   region is already rolled back), pipeline-flush cost, region reset. *)
let finish_abort t core =
  let r = region t core in
  let reason = match r.doomed with Some x -> x | None -> assert false in
  r.active <- false;
  r.nesting <- 0;
  r.doomed <- None;
  t.aborts.(Abort.index reason) <- t.aborts.(Abort.index reason) + 1;
  Engine.elapse t.costs.abort_cycles;
  raise (Aborted reason)

let self_abort ?line t ~core reason =
  let r = region t core in
  if not r.active then invalid_arg "Asf.self_abort: no active region";
  doom ?line t core reason;
  finish_abort t core

(* Interrupts abort in-flight regions: a region whose lifetime crosses a
   timer-tick boundary is rolled back when it next executes an ASF op. *)
let interrupt_pending t core =
  let now = Engine.core_time t.engine core in
  let r = region t core in
  now / t.quantum <> r.start_time / t.quantum

let emit_inject t core kind =
  Trace.emit t.tracer ~core
    ~cycle:(Engine.core_time t.engine core)
    (Trace.Fault_inject { kind })

let check t core =
  let r = region t core in
  if not r.active then invalid_arg "Asf: ASF operation outside a speculative region";
  if r.doomed <> None then finish_abort t core;
  if interrupt_pending t core then begin
    doom t core Abort.Interrupt;
    finish_abort t core
  end;
  (* Fault injection: the spec permits an implementation to abort a region
     spuriously at any time, and a timer interrupt may arrive ahead of the
     quantum boundary. Both are drawn per ASF operation, so injection
     pressure scales with region length — like the real hazards do. *)
  if Faults.enabled t.faults then begin
    if Faults.spurious_abort t.faults ~core then begin
      emit_inject t core "spurious-abort";
      doom t core Abort.Spurious;
      finish_abort t core
    end;
    if Faults.timer_jitter t.faults ~core then begin
      emit_inject t core "timer-jitter";
      doom t core Abort.Interrupt;
      finish_abort t core
    end
  end

let create ?(costs = default_costs) ?(requester_wins = true)
    ?(rollback_on_abort = true) ?(resolve_conflicts = true) mem variant =
  let engine = Memsys.engine mem in
  let n_cores = Engine.n_cores engine in
  let t =
    {
      mem;
      engine;
      variant;
      costs;
      requester_wins;
      rollback_on_abort;
      resolve_conflicts;
      regions =
        Array.init n_cores (fun _ ->
            {
              active = false;
              nesting = 0;
              doomed = None;
              llb = Llb.create ~capacity:variant.Variant.llb_entries;
              tracked = Hashtbl.create 64;
              start_time = 0;
              last_conflict = None;
            });
      quantum = (Memsys.params mem).Asf_machine.Params.interrupt_quantum;
      tracer = Memsys.tracer mem;
      faults = Faults.installed ();
      observer = None;
      speculates = 0;
      commits = 0;
      aborts = Array.make Abort.n_classes 0;
    }
  in
  Memsys.set_probe_hook mem (fun ~requester ~line ~write ->
      resolve t ~requester ~line ~write);
  (* L1-resident protection: displacement of a tracked read line from the
     L1 is a (possibly transient) capacity overflow — unless the line is
     in the write set and an LLB protects it independently. In the pure
     cache-based variant written lines are also L1-resident, so their
     displacement aborts too. *)
  if variant.Variant.l1_read_set then
    for core = 0 to n_cores - 1 do
      Memsys.set_evict_hook mem ~core (fun line ->
          let r = region t core in
          if r.active && r.doomed = None then begin
            let written = Llb.written r.llb line in
            if
              (Hashtbl.mem r.tracked line && not written)
              || (written && variant.Variant.l1_write_set)
            then begin
              Trace.emit t.tracer ~core
                ~cycle:(Engine.core_time t.engine core)
                (Trace.Cache_evict { level = "L1"; line_addr = Addr.line_base line });
              doom ~line t core Abort.Capacity
            end
          end)
    done;
  Memsys.set_fault_hook mem (fun ~core fault ->
      let r = region t core in
      if r.active then begin
        let reason =
          match fault with
          | Memsys.Unmapped page -> Abort.Page_fault page
          | Memsys.Tlb_miss -> Abort.Tlb_miss
        in
        doom t core reason;
        finish_abort t core
      end);
  t

(* [extra] lets the caller fold its own back-to-back charge (the TM ABI's
   setjmp/descriptor cost) into the operation's single [elapse], so region
   entry and exit each cost one scheduling point instead of two. *)
let speculate ?(extra = 0) t ~core =
  let r = region t core in
  if r.active then begin
    check t core;
    if r.nesting >= max_nesting then self_abort t ~core Abort.Disallowed;
    r.nesting <- r.nesting + 1;
    if extra > 0 then Engine.elapse extra
  end
  else begin
    r.active <- true;
    r.nesting <- 1;
    r.doomed <- None;
    r.last_conflict <- None;
    r.start_time <- Engine.core_time t.engine core;
    (* Transient capacity reduction, drawn once per outermost region: ASF
       only guarantees a minimum protected-line capacity, so a region may
       find fewer entries usable than the nominal LLB size. *)
    if Faults.enabled t.faults then begin
      match Faults.capacity_throttle t.faults ~core with
      | Some lines ->
          emit_inject t core "capacity-throttle";
          Llb.set_limit r.llb (Some lines)
      | None -> Llb.set_limit r.llb None
    end;
    t.speculates <- t.speculates + 1;
    notify t ~core Obs_speculate;
    Engine.elapse (t.costs.speculate_cycles + extra)
  end

let commit ?(extra = 0) t ~core =
  check t core;
  let r = region t core in
  if r.nesting > 1 then begin
    r.nesting <- r.nesting - 1;
    if extra > 0 then Engine.elapse extra
  end
  else begin
    (* Outermost commit: speculative values in RAM become authoritative;
       flash-clear the protected sets. *)
    Llb.clear r.llb;
    Hashtbl.reset r.tracked;
    r.active <- false;
    r.nesting <- 0;
    t.commits <- t.commits + 1;
    notify t ~core Obs_commit;
    Engine.elapse (t.costs.commit_cycles + extra)
  end

let abort_explicit t ~core ~code = self_abort t ~core (Abort.Explicit code)

let track_read t core line =
  let r = region t core in
  if not (Llb.written r.llb line) then
    if t.variant.Variant.l1_read_set then Hashtbl.replace r.tracked line ()
    else if not (Llb.protect_read r.llb line) then
      self_abort ~line t ~core Abort.Capacity

(* Requester-loses ablation: a speculative access that would conflict
   with another region aborts itself before touching memory, leaving the
   holder undisturbed. *)
let loses_check t ~core ~line ~write =
  if (not t.requester_wins) && any_remote_conflict t ~requester:core ~line ~write
  then self_abort ~line t ~core Abort.Contention

(* Protection must be established at issue time, before the access's
   latency is charged: a remote store arriving while this load is in
   flight must observe the conflict. *)
let lock_load t ~core addr =
  check t core;
  loses_check t ~core ~line:(Addr.line_of addr) ~write:false;
  track_read t core (Addr.line_of addr);
  Memsys.load t.mem ~core ~speculative:true addr

(* Stores must resolve remote conflicts *before* snapshotting the backup:
   a conflicting victim's rollback restores the line first, so the backup
   captures committed data only. The page-presence precheck keeps fault
   delivery ahead of any victim dooming. *)
let prepare_store t ~core addr =
  check t core;
  let page = Addr.page_of addr in
  if not (Tlb.page_mapped (Memsys.tlb t.mem) page) then begin
    doom t core (Abort.Page_fault page);
    finish_abort t core
  end;
  let line = Addr.line_of addr in
  loses_check t ~core ~line ~write:true;
  resolve t ~requester:core ~line ~write:true;
  let r = region t core in
  if not (Llb.written r.llb line) then begin
    let backup = Ram.read_line (Memsys.ram t.mem) line in
    if not (Llb.protect_write r.llb line ~backup) then
      self_abort ~line t ~core Abort.Capacity;
    if t.variant.Variant.l1_read_set then Hashtbl.remove r.tracked line
  end

let lock_store t ~core addr v =
  prepare_store t ~core addr;
  Memsys.store t.mem ~core ~speculative:true addr v

let watchr t ~core addr =
  check t core;
  loses_check t ~core ~line:(Addr.line_of addr) ~write:false;
  track_read t core (Addr.line_of addr);
  Memsys.touch_line t.mem ~core ~speculative:true ~write:false addr

let watchw t ~core addr =
  prepare_store t ~core addr;
  Memsys.touch_line t.mem ~core ~speculative:true ~write:true addr

let release t ~core addr =
  check t core;
  let r = region t core in
  let line = Addr.line_of addr in
  if t.variant.Variant.l1_read_set then begin
    if not (Llb.written r.llb line) then Hashtbl.remove r.tracked line
  end
  else ignore (Llb.release r.llb line);
  notify t ~core (Obs_release line);
  Engine.elapse t.costs.release_cycles

let plain_load t ~core addr = Memsys.load t.mem ~core ~speculative:false addr

let plain_store t ~core addr v =
  let r = region t core in
  let line = Addr.line_of addr in
  if r.active && r.doomed = None && Llb.written r.llb line then
    raise (Colocation_fault { core; line });
  Memsys.store t.mem ~core ~speculative:false addr v

let in_region t ~core = (region t core).active

(* Live protected-set membership queries for the checking layer: a doomed
   region's sets were already flash-cleared, so both are [false] there. *)
let line_protected t ~core line =
  let r = region t core in
  r.active && r.doomed = None
  && (Llb.mem r.llb line
     || (t.variant.Variant.l1_read_set && Hashtbl.mem r.tracked line))

let line_written t ~core line =
  let r = region t core in
  r.active && r.doomed = None && Llb.written r.llb line

let last_conflict t ~core =
  Option.map Addr.line_base (region t core).last_conflict

let protected_lines t ~core =
  let r = region t core in
  Llb.entries r.llb + Hashtbl.length r.tracked

let written_lines t ~core = Llb.written_count (region t core).llb

(* Injection entry points: doom passively (the victim observes the abort
   at its next ASF operation, exactly like a remote probe) rather than
   raising here — the injector is not running on the victim core. *)
let inject_abort t ~core reason =
  let r = region t core in
  if r.active && r.doomed = None then begin
    emit_inject t core (Abort.to_string reason);
    doom t core reason
  end

let throttle_capacity t ~core limit = Llb.set_limit (region t core).llb limit

let speculates t = t.speculates

let commits t = t.commits

let aborts t = t.aborts
