(** Locked-line buffer.

    A small fully-associative CPU structure holding, per protected line,
    whether it has been speculatively written and — if so — a backup of the
    line's pre-transactional contents, written back on abort. Because it is
    fully associative it is not subject to cache-index conflicts; its only
    limit is the entry count. *)

type t

val create : capacity:int -> t

val capacity : t -> int
(** The nominal (hardware) entry count. *)

val set_limit : t -> int option -> unit
(** Transiently cap the usable entry count at [min limit capacity] —
    the fault-injection model of a transient capacity reduction (the ASF
    spec only promises a {e minimum} guaranteed capacity; an
    implementation may offer less at times). [None] restores the nominal
    capacity; already-protected lines are never evicted by a new limit.
    @raise Invalid_argument on a non-positive limit. *)

val effective_capacity : t -> int
(** [min limit capacity], the bound {!protect_read}/{!protect_write}
    enforce. *)

val entries : t -> int
(** Number of protected lines currently held. *)

val mem : t -> int -> bool
(** Is the line protected (read or written)? *)

val written : t -> int -> bool

val protect_read : t -> int -> bool
(** Adds a read-only entry for the line. Returns [false] (and adds
    nothing) if the buffer is full. Idempotent for present lines. *)

val protect_write : t -> int -> backup:int array -> bool
(** Marks the line written, storing [backup] (its pre-transactional
    contents) if it was not already written; upgrades an existing read
    entry in place. Returns [false] if a new entry would not fit. *)

val release : t -> int -> bool
(** Drops a read-only entry (the RELEASE hint). Returns [false] — and
    leaves the buffer unchanged — if the line is absent or written:
    a pending speculative store cannot be cancelled. *)

val read_count : t -> int
(** Number of read-only protected lines ([entries t - written_count t]). *)

val protected_lines : t -> int list
(** All currently protected line indices, ascending (diagnostics and
    capacity analysis). *)

(** {1 L1 set geometry}

    The hybrid variants ({!Variant.l1_read_set} / cache-based) keep part
    of the protected set in the L1 data cache, so their capacity limit is
    per-{e set} associativity, not an entry count. These helpers expose
    the line-to-set mapping used by {!Asf_cache.Cache.create_bytes}
    without needing a cache instance — the static analyzer predicts
    set-conflict evictions from them. *)

val l1_sets : Asf_machine.Params.t -> int
(** Number of L1 sets: [l1_bytes / (l1_assoc * line_bytes)], a power of
    two for every machine profile. *)

val set_index : Asf_machine.Params.t -> int -> int
(** [set_index params line] is the L1 set a cache-line index maps to:
    [line land (l1_sets params - 1)], matching the cache directory's
    power-of-two indexing. *)

val iter_written : t -> (int -> int array -> unit) -> unit
(** Iterates over written lines and their backups (abort rollback). *)

val written_count : t -> int

val clear : t -> unit
(** Flash-clear on commit or after rollback. *)
