(* Two tables instead of one [(line, {backup option})] map: read-only
   protected lines in [reads], written lines (with their pre-
   transactional backup) in [writes]. The hot membership tests the ASF
   conflict probe runs per coherence event — [mem] and [written] — become
   plain [Hashtbl.mem] calls, with no option boxing or entry-record
   allocation on any path; a line lives in exactly one table. *)

type t = {
  capacity : int;
  mutable limit : int option;
  reads : (int, unit) Hashtbl.t;
  writes : (int, int array) Hashtbl.t;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Llb.create: capacity must be positive";
  {
    capacity;
    limit = None;
    reads = Hashtbl.create (min 1024 (2 * capacity));
    writes = Hashtbl.create (min 1024 (2 * capacity));
  }

let capacity t = t.capacity

let set_limit t limit =
  (match limit with
  | Some n when n <= 0 -> invalid_arg "Llb.set_limit: limit must be positive"
  | _ -> ());
  t.limit <- limit

let effective_capacity t =
  match t.limit with Some n -> min n t.capacity | None -> t.capacity

let entries t = Hashtbl.length t.reads + Hashtbl.length t.writes

let mem t line = Hashtbl.mem t.writes line || Hashtbl.mem t.reads line

let written t line = Hashtbl.mem t.writes line

let protect_read t line =
  if mem t line then true
  else if entries t >= effective_capacity t then false
  else begin
    Hashtbl.add t.reads line ();
    true
  end

let protect_write t line ~backup =
  if Hashtbl.mem t.writes line then true
  else if Hashtbl.mem t.reads line then begin
    (* Upgrade in place: entry count unchanged. *)
    Hashtbl.remove t.reads line;
    Hashtbl.add t.writes line backup;
    true
  end
  else if entries t >= effective_capacity t then false
  else begin
    Hashtbl.add t.writes line backup;
    true
  end

let release t line =
  if Hashtbl.mem t.reads line then begin
    Hashtbl.remove t.reads line;
    true
  end
  else false

let read_count t = Hashtbl.length t.reads

let protected_lines t =
  let ls = Hashtbl.fold (fun l () acc -> l :: acc) t.reads [] in
  let ls = Hashtbl.fold (fun l _ acc -> l :: acc) t.writes ls in
  List.sort compare ls

(* L1 geometry, for the hybrid variants whose read (and, cache-based,
   write) sets live in the data cache rather than the LLB. The mapping
   must agree with [Asf_cache.Cache.create_bytes]/its power-of-two set
   indexing, but is exposed here so capacity analysis needs no cache
   instance. *)

let l1_sets (p : Asf_machine.Params.t) = p.l1_bytes / (p.l1_assoc * p.line_bytes)

let set_index (p : Asf_machine.Params.t) line = line land (l1_sets p - 1)

let iter_written t f = Hashtbl.iter f t.writes

let written_count t = Hashtbl.length t.writes

let clear t =
  Hashtbl.reset t.reads;
  Hashtbl.reset t.writes
