type entry = { mutable backup : int array option }

type t = {
  capacity : int;
  mutable limit : int option;
  lines : (int, entry) Hashtbl.t;
  mutable written_count : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Llb.create: capacity must be positive";
  {
    capacity;
    limit = None;
    lines = Hashtbl.create (min 1024 (2 * capacity));
    written_count = 0;
  }

let capacity t = t.capacity

let set_limit t limit =
  (match limit with
  | Some n when n <= 0 -> invalid_arg "Llb.set_limit: limit must be positive"
  | _ -> ());
  t.limit <- limit

let effective_capacity t =
  match t.limit with Some n -> min n t.capacity | None -> t.capacity

let entries t = Hashtbl.length t.lines

let mem t line = Hashtbl.mem t.lines line

let written t line =
  match Hashtbl.find_opt t.lines line with
  | Some { backup = Some _ } -> true
  | _ -> false

let protect_read t line =
  if Hashtbl.mem t.lines line then true
  else if Hashtbl.length t.lines >= effective_capacity t then false
  else begin
    Hashtbl.add t.lines line { backup = None };
    true
  end

let protect_write t line ~backup =
  match Hashtbl.find_opt t.lines line with
  | Some e ->
      if e.backup = None then begin
        e.backup <- Some backup;
        t.written_count <- t.written_count + 1
      end;
      true
  | None ->
      if Hashtbl.length t.lines >= effective_capacity t then false
      else begin
        Hashtbl.add t.lines line { backup = Some backup };
        t.written_count <- t.written_count + 1;
        true
      end

let release t line =
  match Hashtbl.find_opt t.lines line with
  | Some { backup = None } ->
      Hashtbl.remove t.lines line;
      true
  | Some { backup = Some _ } | None -> false

let iter_written t f =
  Hashtbl.iter
    (fun line e -> match e.backup with Some b -> f line b | None -> ())
    t.lines

let written_count t = t.written_count

let clear t =
  Hashtbl.reset t.lines;
  t.written_count <- 0
