(** Per-thread runtime statistics with cycle-category accounting.

    Reproduces the paper's Table 1 / Fig. 9 methodology: simulated cycles
    are attributed to exclusive categories ("Tx start/commit",
    "Tx load/store", instrumented application code, non-instrumented code
    in serial-irrevocable mode). Cycles of an attempt that aborts are
    folded wholesale into the "Abort/restart" bucket, as the paper does.

    Attribution uses a category stack: {!enter} switches the current
    category (flushing elapsed cycles to the previous one), {!exit_}
    restores it. While an attempt is open (between {!begin_attempt} and
    {!commit_attempt}/{!abort_attempt}) flushes accumulate in a per-attempt
    buffer, so they can be redirected on abort. *)

type t

(** {1 Category indices} *)

val cat_non_instr : int
(** Serial-irrevocable (uninstrumented) code inside transactions. *)

val cat_app : int
(** Instrumented application code inside transactions. *)

val cat_ld_st : int
(** Transactional load/store instrumentation. *)

val cat_start_commit : int
(** Transaction begin/commit paths (ABI + hardware/STM costs). *)

val cat_abort_waste : int
(** Work of attempts that aborted, plus back-off (synthesised). *)

val cat_outside : int
(** Cycles outside any transaction (not part of Table 1). *)

val n_categories : int

val category_name : int -> string

type nonrec category = int

val create : unit -> t

(** {1 Category stack} *)

val enter : t -> now:int -> category -> unit

val exit_ : t -> now:int -> unit

(** {1 Attempt lifecycle} *)

val begin_attempt : t -> now:int -> unit

val commit_attempt : t -> now:int -> serial:bool -> unit

val abort_attempt : t -> now:int -> Asf_core.Abort.t -> unit
(** Folds the attempt's cycles into {!cat_abort_waste} and counts the
    abort under its {!Asf_core.Abort.index} class. *)

val finalize : t -> now:int -> unit
(** Flush the cycles since the last category change (called when a thread
    ends). Afterwards the category totals in {!cycles} sum to exactly the
    thread's simulated lifetime — the invariant
    [sum(categories) = total simulated cycles]. *)

(** {1 Results} *)

val commits : t -> int
(** Committed transactions (hardware/STM + serial). *)

val serial_commits : t -> int

val attempts : t -> int

val aborts : t -> int array
(** By {!Asf_core.Abort.index}; live array. *)

val total_aborts : t -> int

val cycles : t -> int array
(** Committed cycles by category; live array of length {!n_categories}. *)

val add : t -> into:t -> unit
(** Accumulate counters of [t] into [into] (aggregation across threads). *)
