module Abort = Asf_core.Abort

let cat_non_instr = 0

let cat_app = 1

let cat_ld_st = 2

let cat_start_commit = 3

let cat_abort_waste = 4

let cat_outside = 5

let n_categories = 6

let names =
  [|
    "non-instr code";
    "instr app code";
    "tx load/store";
    "tx start/commit";
    "abort/restart";
    "outside tx";
  |]

let category_name i = names.(i)

type category = int

type t = {
  mutable commits : int;
  mutable serial_commits : int;
  mutable attempts : int;
  aborts : int array;
  cycles : int array;
  attempt_cycles : int array;
  mutable in_attempt : bool;
  mutable cur : int;
  mutable last_mark : int;
  (* Category nesting as a grow-by-doubling int-array stack: [enter] runs
     on every instrumented load/store, and a [Stack.t] cell per push was
     a measurable slice of the per-access allocation budget. *)
  mutable stack : int array;
  mutable depth : int;
}

let create () =
  {
    commits = 0;
    serial_commits = 0;
    attempts = 0;
    aborts = Array.make Abort.n_classes 0;
    cycles = Array.make n_categories 0;
    attempt_cycles = Array.make n_categories 0;
    in_attempt = false;
    cur = cat_outside;
    last_mark = 0;
    stack = Array.make 8 0;
    depth = 0;
  }

let flush t ~now =
  let dt = now - t.last_mark in
  if dt > 0 then begin
    let target = if t.in_attempt then t.attempt_cycles else t.cycles in
    target.(t.cur) <- target.(t.cur) + dt
  end;
  t.last_mark <- now

let enter t ~now cat =
  flush t ~now;
  if t.depth = Array.length t.stack then begin
    let s = Array.make (2 * t.depth) 0 in
    Array.blit t.stack 0 s 0 t.depth;
    t.stack <- s
  end;
  t.stack.(t.depth) <- t.cur;
  t.depth <- t.depth + 1;
  t.cur <- cat

let exit_ t ~now =
  flush t ~now;
  t.depth <- t.depth - 1;
  t.cur <- t.stack.(t.depth)

let begin_attempt t ~now =
  (* The previous attempt must have been closed by [commit_attempt] or
     [abort_attempt]; both fold [attempt_cycles] into [cycles] first, so
     the reset below can never drop attributed cycles. *)
  assert (not t.in_attempt);
  flush t ~now;
  t.in_attempt <- true;
  t.attempts <- t.attempts + 1;
  Array.fill t.attempt_cycles 0 n_categories 0

let close_attempt t ~now =
  flush t ~now;
  t.in_attempt <- false

let commit_attempt t ~now ~serial =
  close_attempt t ~now;
  for c = 0 to n_categories - 1 do
    t.cycles.(c) <- t.cycles.(c) + t.attempt_cycles.(c)
  done;
  t.commits <- t.commits + 1;
  if serial then t.serial_commits <- t.serial_commits + 1

let abort_attempt t ~now reason =
  close_attempt t ~now;
  let wasted = Array.fold_left ( + ) 0 t.attempt_cycles in
  t.cycles.(cat_abort_waste) <- t.cycles.(cat_abort_waste) + wasted;
  let i = Abort.index reason in
  t.aborts.(i) <- t.aborts.(i) + 1

let finalize t ~now = flush t ~now

let commits t = t.commits

let serial_commits t = t.serial_commits

let attempts t = t.attempts

let aborts t = t.aborts

let total_aborts t = Array.fold_left ( + ) 0 t.aborts

let cycles t = t.cycles

let add t ~into =
  into.commits <- into.commits + t.commits;
  into.serial_commits <- into.serial_commits + t.serial_commits;
  into.attempts <- into.attempts + t.attempts;
  Array.iteri (fun i v -> into.aborts.(i) <- into.aborts.(i) + v) t.aborts;
  Array.iteri (fun i v -> into.cycles.(i) <- into.cycles.(i) + v) t.cycles
