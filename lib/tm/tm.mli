(** ASF-TM: the transactional-memory runtime.

    This is the software layer the paper's DTMC compiler targets: it
    implements the TM ABI ([atomic] + transactional [load]/[store]) on top
    of either ASF speculative regions with a serial-irrevocable software
    fallback, or the TinySTM baseline, or direct uninstrumented execution
    (the "sequential" baseline).

    The ASF execution path per attempt:
    + service any page fault recorded by the previous abort;
    + if the transaction exceeded its retry budget or hit a capacity /
      malloc / syscall abort, run in serial-irrevocable mode under a global
      lock that all hardware transactions monitor;
    + otherwise wait for the serial lock to be free, SPECULATE, subscribe
      to the serial lock with a transactional load, run the body with
      transactional accesses, COMMIT;
    + on abort, classify the reason (contention aborts back off
      exponentially and retry; capacity and malloc aborts go serial, as in
      the paper's study; page faults are serviced and retried).

    Re-execution uses closure restart — the moral equivalent of the ABI's
    software setjmp: the body must keep its mutable state in simulated
    memory (or reinitialise host state at the top of the closure). *)

type mode =
  | Asf_mode of Asf_core.Variant.t
  | Stm_mode
  | Seq_mode  (** uninstrumented; for the sequential baseline *)
  | Phased_mode of Asf_core.Variant.t
      (** PhasedTM-style hybrid (the "more elaborate fallback" of the
          paper's Section 3.2): runs hardware transactions like
          [Asf_mode], but a capacity overflow switches the whole system
          into a software (TinySTM) phase for [phase_quantum]
          transactions instead of serialising; malloc/syscall aborts
          still use the serial-irrevocable path. *)

type config = {
  mode : mode;
  n_cores : int;
  params : Asf_machine.Params.t;
  seed : int;
  max_retries : int;  (** contention retries before serial fallback *)
  backoff : bool;  (** exponential back-off after contention aborts *)
  selective_annotation : bool;  (** when off, {!nload}/{!nstore} are
                                    treated as transactional (ablation) *)
  abort_on_tlb_miss : bool;  (** Rock-style ablation *)
  requester_wins : bool;  (** ASF's contention policy; [false] is the
                              requester-loses ablation *)
  begin_abi_cycles : int;  (** software begin cost (setjmp, descriptor) *)
  commit_abi_cycles : int;
  malloc_cycles : int;
  phase_quantum : int;  (** [Phased_mode]: software-phase length in
                            transactions *)
  stm_strategy : Asf_stm.Tinystm.strategy;
      (** versioning of the STM baseline; the paper uses write-through *)
}

val default_config : mode -> n_cores:int -> config

type system

type ctx
(** Per-thread execution context (one per core in the benchmarks). *)

val create : config -> system

val engine : system -> Asf_engine.Engine.t

val memsys : system -> Asf_cache.Memsys.t

val alloc : system -> Asf_mem.Alloc.t

val config : system -> config

val asf : system -> Asf_core.Asf.t option

val stm : system -> Asf_stm.Tinystm.t option

val make_ctx : system -> core:int -> ctx

val core : ctx -> int

val system : ctx -> system

val prng : ctx -> Asf_engine.Prng.t

val stats : ctx -> Stats.t

val now : ctx -> int
(** Current cycle on this context's core. *)

val backoff_window : int -> int
(** [backoff_window retries] is the exponential back-off window (in cycles)
    sampled from after [retries] contention aborts: [64 lsl min retries 10],
    i.e. doubling from 64 and saturating at 65536 cycles. Exposed for
    tests; {!config.backoff} controls whether it is used at all. *)

(** {1 Transactions} *)

val atomic : ctx -> (unit -> 'a) -> 'a
(** Run the body as a transaction (flat-nested if already inside one). *)

val load : ctx -> Asf_mem.Addr.t -> int
(** Transactional load (inside [atomic]); direct load outside. *)

val store : ctx -> Asf_mem.Addr.t -> int -> unit

val nload : ctx -> Asf_mem.Addr.t -> int
(** Non-transactional (selectively annotated) load: thread-local data that
    needs no protection — consumes no ASF capacity. *)

val nstore : ctx -> Asf_mem.Addr.t -> int -> unit

val release : ctx -> Asf_mem.Addr.t -> unit
(** Early release of a read-set line (ASF path only; no-op otherwise). *)

val work : ctx -> int -> unit
(** Charge [n] cycles of application compute. *)

val in_tx : ctx -> bool

val serial_mode : ctx -> bool
(** Is this context currently executing in serial-irrevocable mode? *)

val retry : ctx -> 'a
(** Explicitly abort and re-execute the current transaction (the ABI's
    user-initiated retry; ASF's ABORT instruction). Used when application
    validation fails, e.g. labyrinth's path revalidation. Never returns.
    Must not be called in serial-irrevocable mode (which cannot observe
    concurrent invalidation, so never needs to retry). *)

val irrevocable : ctx -> unit
(** Ensure the current transaction is serial-irrevocable (aborting the
    hardware attempt with reason [Syscall] if necessary) — the ABI's
    mechanism for external actions. Inside a transaction only. *)

(** {1 Memory management} *)

val malloc : ctx -> int -> Asf_mem.Addr.t
(** Words, rounded up to whole cache lines (false-sharing padding). *)

val free : ctx -> Asf_mem.Addr.t -> int -> unit
(** [free ctx addr words]: deferred to commit inside transactions. *)

(** {1 Setup (untimed)} *)

val setup_poke : system -> Asf_mem.Addr.t -> int -> unit
(** Untimed store that also maps the page (benchmark initialisation). *)

val setup_peek : system -> Asf_mem.Addr.t -> int

val setup_alloc : system -> int -> Asf_mem.Addr.t
(** Untimed line-padded allocation from the global allocator, with pages
    pre-mapped (setup-phase data structures are warm). *)

(** {1 Running threads} *)

val spawn : system -> core:int -> (ctx -> unit) -> ctx
(** Spawns a worker thread with a fresh context on [core]; returns the
    context so its statistics can be read after {!run}. *)

val run : system -> unit

val makespan : system -> int
(** Max core time after {!run} (simulated execution time in cycles). *)

val phase_switches : system -> (int * int) option
(** [Phased_mode] only: (switches to software, switches back to
    hardware). *)
