(** ASF-TM: the transactional-memory runtime.

    This is the software layer the paper's DTMC compiler targets: it
    implements the TM ABI ([atomic] + transactional [load]/[store]) on top
    of either ASF speculative regions with a serial-irrevocable software
    fallback, or the TinySTM baseline, or direct uninstrumented execution
    (the "sequential" baseline).

    The ASF execution path per attempt:
    + service any page fault recorded by the previous abort;
    + if the transaction exceeded its retry budget or hit a capacity /
      malloc / syscall abort, run in serial-irrevocable mode under a global
      lock that all hardware transactions monitor;
    + otherwise wait for the serial lock to be free, SPECULATE, subscribe
      to the serial lock with a transactional load, run the body with
      transactional accesses, COMMIT;
    + on abort, classify the reason (contention aborts back off
      exponentially and retry; capacity and malloc aborts go serial, as in
      the paper's study; page faults are serviced and retried).

    Re-execution uses closure restart — the moral equivalent of the ABI's
    software setjmp: the body must keep its mutable state in simulated
    memory (or reinitialise host state at the top of the closure). *)

type mode =
  | Asf_mode of Asf_core.Variant.t
  | Stm_mode
  | Seq_mode  (** uninstrumented; for the sequential baseline *)
  | Phased_mode of Asf_core.Variant.t
      (** PhasedTM-style hybrid (the "more elaborate fallback" of the
          paper's Section 3.2): runs hardware transactions like
          [Asf_mode], but a capacity overflow switches the whole system
          into a software (TinySTM) phase for [phase_quantum]
          transactions instead of serialising; malloc/syscall aborts
          still use the serial-irrevocable path. *)

type config = {
  mode : mode;
  n_cores : int;
  params : Asf_machine.Params.t;
  seed : int;
  max_retries : int;  (** contention retries before serial fallback *)
  backoff : bool;  (** exponential back-off after contention aborts *)
  selective_annotation : bool;  (** when off, {!nload}/{!nstore} are
                                    treated as transactional (ablation) *)
  abort_on_tlb_miss : bool;  (** Rock-style ablation *)
  requester_wins : bool;  (** ASF's contention policy; [false] is the
                              requester-loses ablation *)
  resolve_conflicts : bool;
      (** broken-hardware ablation (default [true]): when [false], ASF
          stops detecting conflicts between concurrent regions — commits
          of racy regions succeed and the run is not serializable. Exists
          for negative tests of the checking layers. *)
  rollback_on_abort : bool;
      (** broken-hardware ablation (default [true]): when [false], an
          aborted ASF region's speculative stores are {e not} rolled
          back, leaking partial effects. Negative-test fixture only. *)
  begin_abi_cycles : int;  (** software begin cost (setjmp, descriptor) *)
  commit_abi_cycles : int;
  malloc_cycles : int;
  phase_quantum : int;  (** [Phased_mode]: software-phase length in
                            transactions *)
  stm_strategy : Asf_stm.Tinystm.strategy;
      (** versioning of the STM baseline; the paper uses write-through *)
  watchdog : bool;
      (** progress watchdog (default on): per-transaction
          consecutive-abort escalation to serial mode, and a system-wide
          zero-commit-throughput detector raising {!Livelock} *)
  watchdog_abort_limit : int;
      (** consecutive aborts of one transaction before it is forced onto
          the serial path regardless of remaining retry budget (catches
          abort loops that never charge the budget, e.g. endless injected
          page faults); default 64 *)
  watchdog_window : int;
      (** cycles without {e any} commit system-wide before every
          unbounded wait raises {!Livelock}; default 20,000,000 *)
}

val default_config : mode -> n_cores:int -> config

type system

type ctx
(** Per-thread execution context (one per core in the benchmarks). *)

val create : config -> system

val engine : system -> Asf_engine.Engine.t

val memsys : system -> Asf_cache.Memsys.t

val alloc : system -> Asf_mem.Alloc.t

val config : system -> config

val asf : system -> Asf_core.Asf.t option

val stm : system -> Asf_stm.Tinystm.t option

val make_ctx : system -> core:int -> ctx

val core : ctx -> int

val system : ctx -> system

val prng : ctx -> Asf_engine.Prng.t

val stats : ctx -> Stats.t

val now : ctx -> int
(** Current cycle on this context's core. *)

val last_commit_cycle : ctx -> int
(** Cycle at which this context last committed a transaction on any path
    ([-1] if it has not committed yet). For a request served by
    {!atomic}/{!atomic_until}, the final attempt's commit lies between
    the request's invocation and response cycles, which makes this the
    linearizability oracle's commit-cycle witness: trying linearization
    points in commit order finds a valid order greedily on correct
    hardware. *)

val backoff_window : int -> int
(** [backoff_window retries] is the exponential back-off window (in cycles)
    sampled from after [retries] contention aborts: [64 lsl min retries 10],
    i.e. doubling from 64 and saturating at 65536 cycles. Exposed for
    tests; {!config.backoff} controls whether it is used at all.

    The delay is drawn from the context's per-core PRNG. Core [i]'s
    stream is the [i+1]-th {!Asf_engine.Prng.split} of a single root
    generator seeded from [config.seed], so every stream's initial state
    passes through the SplitMix64 finalizer and the streams are pairwise
    decorrelated — two cores that abort at the same cycle draw
    independent windows. (The previous arithmetic derivation,
    [seed + f(core)], left nearby cores' sequences correlated, which can
    synchronise their backoff and turn one conflict into a convoy.) *)

val serial_spin_window : int -> int
(** [serial_spin_window attempt] is the bounded spin-backoff window (in
    cycles) a serial-lock waiter sleeps before its [attempt]-th re-poll:
    [64 lsl min attempt 7], doubling from 64 and saturating at 8192. The
    cap bounds every waiter's poll interval, so a released lock is
    re-acquired within a bounded delay (no waiter backs off
    indefinitely). *)

(** {1 Transactions} *)

val atomic : ctx -> (unit -> 'a) -> 'a
(** Run the body as a transaction (flat-nested if already inside one). *)

type deadline_info = { dl_core : int; dl_deadline : int; dl_now : int }

exception Deadline_exceeded of deadline_info
(** The request's deadline passed at a retry point; the transaction did
    not (and will not) commit. *)

val atomic_until : ctx -> deadline:int -> (unit -> 'a) -> 'a
(** [atomic_until ctx ~deadline f] runs [f] as a transaction that stops
    retrying once the core clock reaches absolute cycle [deadline],
    raising {!Deadline_exceeded} instead of spinning in backoff — the
    open-system serving contract (a late response is useless, so the
    runtime must hand the core back rather than keep burning it).

    Enforcement happens at {e retry points} only: attempt entry, backoff
    delays, and serial-lock spin polls. A body that is already executing
    is never interrupted (an attempt that commits after the deadline
    still returns normally — the caller decides whether a late result is
    worth anything), and serial-irrevocable execution runs to completion
    once the lock is held. Backoff delays switch to decorrelated jitter
    ({!decorrelated_window}) clamped to the remaining budget, and spin
    waits re-check the deadline before every poll, so the cumulative
    backoff + spin a request observes is bounded by its budget plus one
    {!serial_spin_window} tail. A deadline that interrupts an open
    attempt is accounted as an abort of class [Abort.Timeout].

    Top-level transactions only ([Invalid_argument] when nested). *)

val deadline_wait : ctx -> int
(** Cumulative backoff + serial-spin cycles charged during the most
    recent (or current) {!atomic_until} — the quantity whose bound the
    deadline property in the test suite checks. *)

val decorrelated_window : Asf_engine.Prng.t -> prev:int -> int
(** One decorrelated-jitter draw: uniform in [16, 16 + 3 * max 16 prev),
    capped at [backoff_window 10] (65536 cycles). {!atomic_until} backoff
    feeds each draw the previous one; exposed for tests. *)

val set_force_serial : ctx -> bool -> unit
(** Governor escalation hook: while set, every top-level ASF transaction
    on this context runs directly on the serial-irrevocable path
    (guaranteed progress, no speculation). Honoured by the ASF path only
    — STM transactions do not subscribe to the serial lock, so forcing
    them serial would not be isolated; [Phased_mode] honours it during
    hardware phases. *)

val load : ctx -> Asf_mem.Addr.t -> int
(** Transactional load (inside [atomic]); direct load outside. *)

val store : ctx -> Asf_mem.Addr.t -> int -> unit

val nload : ctx -> Asf_mem.Addr.t -> int
(** Non-transactional (selectively annotated) load: thread-local data that
    needs no protection — consumes no ASF capacity. *)

val nstore : ctx -> Asf_mem.Addr.t -> int -> unit

val release : ctx -> Asf_mem.Addr.t -> unit
(** Early release of a read-set line (ASF path only; no-op otherwise). *)

val work : ctx -> int -> unit
(** Charge [n] cycles of application compute. *)

val in_tx : ctx -> bool

val serial_mode : ctx -> bool
(** Is this context currently executing in serial-irrevocable mode? *)

val retry : ctx -> 'a
(** Explicitly abort and re-execute the current transaction (the ABI's
    user-initiated retry; ASF's ABORT instruction). Used when application
    validation fails, e.g. labyrinth's path revalidation. Never returns.
    Must not be called in serial-irrevocable mode (which cannot observe
    concurrent invalidation, so never needs to retry). *)

val irrevocable : ctx -> unit
(** Ensure the current transaction is serial-irrevocable (aborting the
    hardware attempt with reason [Syscall] if necessary) — the ABI's
    mechanism for external actions. Inside a transaction only. *)

(** {1 Memory management} *)

val malloc : ctx -> int -> Asf_mem.Addr.t
(** Words, rounded up to whole cache lines (false-sharing padding). *)

val free : ctx -> Asf_mem.Addr.t -> int -> unit
(** [free ctx addr words]: deferred to commit inside transactions. *)

(** {1 Setup (untimed)} *)

val setup_poke : system -> Asf_mem.Addr.t -> int -> unit
(** Untimed store that also maps the page (benchmark initialisation). *)

val setup_peek : system -> Asf_mem.Addr.t -> int

val setup_alloc : system -> int -> Asf_mem.Addr.t
(** Untimed line-padded allocation from the global allocator, with pages
    pre-mapped (setup-phase data structures are warm). *)

(** {1 Running threads} *)

val spawn : system -> core:int -> (ctx -> unit) -> ctx
(** Spawns a worker thread with a fresh context on [core]; returns the
    context so its statistics can be read after {!run}. *)

val run : system -> unit

val makespan : system -> int
(** Max core time after {!run} (simulated execution time in cycles). *)

val phase_switches : system -> (int * int) option
(** [Phased_mode] only: (switches to software, switches back to
    hardware). *)

(** {1 Progress watchdog}

    The runtime's graceful-degradation ladder under adversarial
    conditions (see {!Asf_faults.Faults}): a transaction accumulating
    [watchdog_abort_limit] consecutive aborts is forced onto the serial
    path even with retry budget left; if the whole system then still
    commits nothing for [watchdog_window] cycles, every unbounded wait
    (serial-lock spins, back-off, phase transitions, the injected-hang
    loop) raises {!Livelock} with a structured diagnosis, which
    propagates out of {!run}. *)

type core_report = {
  rep_core : int;
  rep_path : string;  (** execution path at diagnosis time:
                          [direct]/[hw]/[serial]/[stm] *)
  rep_commits : int;
  rep_serial_commits : int;
  rep_attempts : int;
  rep_aborts : int;
  rep_consec_aborts : int;  (** current consecutive-abort run *)
}

type diagnosis = {
  diag_cycle : int;  (** cycle at which the watchdog fired *)
  diag_window : int;
  diag_commits : int;  (** commits system-wide before the stall *)
  diag_last_commit_cycle : int;
  diag_serial_holder : int option;
      (** core holding the serial lock, if any — the prime suspect *)
  diag_cores : core_report list;  (** per-context state, by core *)
}

exception Livelock of diagnosis

val pp_diagnosis : Format.formatter -> diagnosis -> unit

val total_commits : system -> int
(** Commits system-wide, across all contexts and paths. *)

val forced_serial_count : system -> int
(** Times the consecutive-abort escalation forced a transaction onto the
    serial path. *)

val max_consecutive_aborts : ctx -> int
(** Longest consecutive-abort run this context ever accumulated. *)
