module Engine = Asf_engine.Engine
module Prng = Asf_engine.Prng
module Params = Asf_machine.Params
module Addr = Asf_mem.Addr
module Alloc = Asf_mem.Alloc
module Memsys = Asf_cache.Memsys
module Tlb = Asf_cache.Tlb
module Abort = Asf_core.Abort
module Variant = Asf_core.Variant
module Asf = Asf_core.Asf
module Stm = Asf_stm.Tinystm
module Check = Asf_check.Check
module Trace = Asf_trace.Trace
module Faults = Asf_faults.Faults

type mode = Asf_mode of Variant.t | Stm_mode | Seq_mode | Phased_mode of Variant.t

type config = {
  mode : mode;
  n_cores : int;
  params : Params.t;
  seed : int;
  max_retries : int;
  backoff : bool;
  selective_annotation : bool;
  abort_on_tlb_miss : bool;
  requester_wins : bool;
  resolve_conflicts : bool;
  rollback_on_abort : bool;
  begin_abi_cycles : int;
  commit_abi_cycles : int;
  malloc_cycles : int;
  phase_quantum : int;
  stm_strategy : Stm.strategy;
  watchdog : bool;
  watchdog_abort_limit : int;
  watchdog_window : int;
}

let default_config mode ~n_cores =
  {
    mode;
    n_cores;
    params = Params.barcelona;
    seed = 1;
    max_retries = 8;
    backoff = true;
    selective_annotation = true;
    abort_on_tlb_miss = false;
    requester_wins = true;
    resolve_conflicts = true;
    rollback_on_abort = true;
    (* The ABI begin path is a software setjmp plus descriptor setup; its
       cost is of the same order as an STM begin, which is why Table 1
       shows similar start/commit cycles for ASF-TM and TinySTM. *)
    begin_abi_cycles = 45;
    commit_abi_cycles = 18;
    malloc_cycles = 40;
    phase_quantum = 400;
    stm_strategy = Stm.Write_through;
    watchdog = true;
    watchdog_abort_limit = 64;
    watchdog_window = 20_000_000;
  }

type path = Direct | Hw | Serial | Stm_path

(* PhasedTM-style global phase (the paper's Section 3.2 "switch between
   STM or ASF transactions" alternative fallback): the whole system is
   either in the hardware phase or, after a capacity overflow, in a
   software (STM) phase for [phase_quantum] transactions. The phase word
   shares the serial lock's cache line, so hardware regions subscribe to
   both with a single protected load and any transition dooms them. *)
type phase_state = {
  mutable current_phase : [ `Hw | `Sw ];
  mutable transitioning : bool;
  mutable active_stm : int;
  mutable sw_txns_left : int;
  mutable to_sw_switches : int;
  mutable to_hw_switches : int;
}

(* System-wide progress record backing the watchdog: updated at every
   commit on any path, polled from every unbounded wait. *)
type progress = {
  mutable total_commits : int;
  mutable last_commit_cycle : int;
  mutable forced_serial : int;
}

type core_report = {
  rep_core : int;
  rep_path : string;
  rep_commits : int;
  rep_serial_commits : int;
  rep_attempts : int;
  rep_aborts : int;
  rep_consec_aborts : int;
}

type diagnosis = {
  diag_cycle : int;
  diag_window : int;
  diag_commits : int;
  diag_last_commit_cycle : int;
  diag_serial_holder : int option;
  diag_cores : core_report list;
}

exception Livelock of diagnosis

type deadline_info = { dl_core : int; dl_deadline : int; dl_now : int }

exception Deadline_exceeded of deadline_info

type system = {
  cfg : config;
  engine : Engine.t;
  mem : Memsys.t;
  galloc : Alloc.t;
  asf : Asf.t option;
  stm : Stm.t option;
  serial_lock : Addr.t;
  phase_word : Addr.t;  (** serial_lock + 1; 0 = hardware phase *)
  phase : phase_state option;
  tracer : Trace.t;
  faults : Faults.t;
  progress : progress;
  mutable ctxs : ctx list;  (** every context, for watchdog diagnosis *)
}

and ctx = {
  sys : system;
  core : int;
  prng : Prng.t;
  stats : Stats.t;
  tx : Stm.tx option;
  pool : Txmalloc.t;
  mutable depth : int;
  mutable path : path;
  mutable pending_fault : int option;
  mutable consec_aborts : int;
  mutable max_consec_aborts : int;
  mutable pending_cycles : int;
      (** accumulated bookkeeping charges awaiting the next ASF op's elapse *)
  mutable deadline : int;
      (** absolute cycle after which the current request stops retrying
          ([max_int] = none); set only by {!atomic_until} *)
  mutable jitter_prev : int;
      (** previous decorrelated-jitter draw (deadline-scoped backoff) *)
  mutable dl_wait : int;
      (** cumulative backoff + serial-spin cycles charged while a deadline
          was active — the quantity the deadline-overshoot property bounds *)
  mutable force_serial : bool;
      (** governor escalation: route every ASF transaction straight to the
          serial-irrevocable path *)
  mutable last_commit : int;
      (** cycle of this context's most recent commit on any path ([-1] =
          none yet) — the linearizability oracle's commit-cycle witness:
          for a completed request, invoke <= last_commit <= respond *)
}

let create cfg =
  if cfg.mode = Seq_mode && cfg.n_cores > 1 then
    invalid_arg "Tm.create: Seq_mode is uninstrumented and single-threaded";
  (* ASF_ALWAYS_SCHEDULE forces every elapse through the heap round-trip
     (the reference scheduler), so the fusion fast path can be A/B-tested
     from any existing binary without a rebuild. *)
  let always_schedule = Sys.getenv_opt "ASF_ALWAYS_SCHEDULE" <> None in
  let engine = Engine.create ~always_schedule ~n_cores:cfg.n_cores () in
  let mem = Memsys.create cfg.params engine in
  if cfg.abort_on_tlb_miss then Tlb.set_abort_on_tlb_miss (Memsys.tlb mem) true;
  let galloc = Alloc.create () in
  let serial_lock = Alloc.alloc_lines galloc 1 in
  Memsys.poke mem serial_lock 0;
  Memsys.poke mem (serial_lock + 1) 0;
  let asf =
    match cfg.mode with
    | Asf_mode v | Phased_mode v ->
        Some
          (Asf.create mem ~requester_wins:cfg.requester_wins
             ~resolve_conflicts:cfg.resolve_conflicts
             ~rollback_on_abort:cfg.rollback_on_abort v)
    | Stm_mode | Seq_mode -> None
  in
  let stm =
    match cfg.mode with
    | Stm_mode | Phased_mode _ ->
        Some (Stm.create ~strategy:cfg.stm_strategy mem galloc)
    | Asf_mode _ | Seq_mode -> None
  in
  let phase =
    match cfg.mode with
    | Phased_mode _ ->
        Some
          {
            current_phase = `Hw;
            transitioning = false;
            active_stm = 0;
            sw_txns_left = 0;
            to_sw_switches = 0;
            to_hw_switches = 0;
          }
    | Asf_mode _ | Stm_mode | Seq_mode -> None
  in
  let tracer = Memsys.tracer mem in
  Trace.run_start tracer;
  (* An installed checker spans runs the way the installed tracer does:
     each new system attaches (finalizing the previous run's oracle). *)
  (match Check.installed () with
  | Some chk ->
      let variant =
        match cfg.mode with
        | Asf_mode v | Phased_mode v -> Some v
        | Stm_mode | Seq_mode -> None
      in
      Check.attach chk ?asf ?stm ?variant mem
  | None -> ());
  {
    cfg;
    engine;
    mem;
    galloc;
    asf;
    stm;
    serial_lock;
    phase_word = serial_lock + 1;
    phase;
    tracer;
    faults = Faults.installed ();
    progress = { total_commits = 0; last_commit_cycle = 0; forced_serial = 0 };
    ctxs = [];
  }

let engine t = t.engine

let memsys t = t.mem

let alloc t = t.galloc

let config t = t.cfg

let asf t = t.asf

let stm t = t.stm

(* Core [i]'s PRNG is the [i+1]-th split of one root generator seeded from
   [cfg.seed]: each stream's initial state passes through the SplitMix64
   finalizer, so the streams are pairwise decorrelated. Deriving them
   arithmetically ([seed + f(core)]) leaves nearby cores' sequences
   correlated, which can synchronise their backoff draws and turn one
   conflict into a convoy. *)
let core_prng cfg ~core =
  let root = Prng.create cfg.seed in
  for _ = 1 to core do
    ignore (Prng.split root)
  done;
  Prng.split root

let make_ctx sys ~core =
  let ctx =
    {
      sys;
      core;
      prng = core_prng sys.cfg ~core;
      stats = Stats.create ();
      tx = (match sys.stm with Some s -> Some (Stm.make_tx s ~core) | None -> None);
      pool = Txmalloc.create sys.galloc;
      depth = 0;
      path = Direct;
      pending_fault = None;
      consec_aborts = 0;
      max_consec_aborts = 0;
      pending_cycles = 0;
      deadline = max_int;
      jitter_prev = 16;
      dl_wait = 0;
      force_serial = false;
      last_commit = -1;
    }
  in
  sys.ctxs <- ctx :: sys.ctxs;
  ctx

let core ctx = ctx.core

let system ctx = ctx.sys

let prng ctx = ctx.prng

let stats ctx = ctx.stats

let now ctx = Engine.core_time ctx.sys.engine ctx.core

let emit ctx payload = Trace.emit ctx.sys.tracer ~core:ctx.core ~cycle:(now ctx) payload

let with_cat ctx cat f =
  Stats.enter ctx.stats ~now:(now ctx) cat;
  Fun.protect ~finally:(fun () -> Stats.exit_ ctx.stats ~now:(now ctx)) f

(* ------------------------------------------------------------------ *)
(* Progress watchdog                                                    *)
(* ------------------------------------------------------------------ *)

let path_name = function
  | Direct -> "direct"
  | Hw -> "hw"
  | Serial -> "serial"
  | Stm_path -> "stm"

let diagnose sys ~cycle =
  let holder =
    (* Untimed peek: the diagnosis must not advance simulated time. *)
    match Memsys.peek sys.mem sys.serial_lock with
    | 0 -> None
    | v -> Some (v - 1)
  in
  let cores =
    List.sort
      (fun a b -> compare a.rep_core b.rep_core)
      (List.rev_map
         (fun c ->
           {
             rep_core = c.core;
             rep_path = path_name c.path;
             rep_commits = Stats.commits c.stats;
             rep_serial_commits = Stats.serial_commits c.stats;
             rep_attempts = Stats.attempts c.stats;
             rep_aborts = Stats.total_aborts c.stats;
             rep_consec_aborts = c.consec_aborts;
           })
         sys.ctxs)
  in
  {
    diag_cycle = cycle;
    diag_window = sys.cfg.watchdog_window;
    diag_commits = sys.progress.total_commits;
    diag_last_commit_cycle = sys.progress.last_commit_cycle;
    diag_serial_holder = holder;
    diag_cores = cores;
  }

let pp_diagnosis ppf d =
  Format.fprintf ppf
    "@[<v>livelock: no transaction committed for %d cycles (window %d)@,\
     cycle %d; last commit at cycle %d; %d commits system-wide@,\
     serial lock: %s@,"
    (d.diag_cycle - d.diag_last_commit_cycle)
    d.diag_window d.diag_cycle d.diag_last_commit_cycle d.diag_commits
    (match d.diag_serial_holder with
    | Some c -> Printf.sprintf "held by core %d" c
    | None -> "free");
  List.iter
    (fun r ->
      Format.fprintf ppf
        "  core %d: path=%s commits=%d (serial %d) attempts=%d aborts=%d \
         consecutive-aborts=%d@,"
        r.rep_core r.rep_path r.rep_commits r.rep_serial_commits r.rep_attempts
        r.rep_aborts r.rep_consec_aborts)
    d.diag_cores;
  Format.fprintf ppf "@]"

(* Every unbounded wait in the runtime polls this: when no transaction in
   the whole system has committed for [watchdog_window] cycles, the run is
   not making progress — raise a structured diagnosis instead of spinning
   forever. *)
let watchdog_check ctx =
  let sys = ctx.sys in
  if sys.cfg.watchdog then begin
    let cycle = now ctx in
    if cycle - sys.progress.last_commit_cycle > sys.cfg.watchdog_window then
      raise (Livelock (diagnose sys ~cycle))
  end

let note_commit ctx =
  ctx.consec_aborts <- 0;
  let p = ctx.sys.progress in
  p.total_commits <- p.total_commits + 1;
  let cycle = now ctx in
  ctx.last_commit <- cycle;
  if cycle > p.last_commit_cycle then p.last_commit_cycle <- cycle

let last_commit_cycle ctx = ctx.last_commit

let note_abort ctx =
  ctx.consec_aborts <- ctx.consec_aborts + 1;
  if ctx.consec_aborts > ctx.max_consec_aborts then
    ctx.max_consec_aborts <- ctx.consec_aborts

(* ------------------------------------------------------------------ *)
(* Request deadlines                                                    *)
(* ------------------------------------------------------------------ *)

(* Deadlines are enforced at *retry points* only: attempt entry, backoff,
   and serial-lock spin polls. A transaction body is never interrupted and
   serial-irrevocable execution always runs to completion once the lock is
   held, so the only post-deadline residue a request can accumulate is the
   bounded tail of the wait it was in when the deadline passed — at most
   one [serial_spin_window] (backoff delays are clamped to the remaining
   budget). *)

let deadline_active ctx = ctx.deadline <> max_int

let check_deadline ctx =
  if deadline_active ctx then begin
    let c = now ctx in
    if c >= ctx.deadline then
      raise
        (Deadline_exceeded { dl_core = ctx.core; dl_deadline = ctx.deadline; dl_now = c })
  end

let note_wait ctx n = if deadline_active ctx then ctx.dl_wait <- ctx.dl_wait + n

(* Abort accounting for a deadline abandonment that interrupts an *open*
   attempt (the deadline passed while waiting for the serial lock): the
   attempt's cycles fold into abort waste under the [Timeout] class, so
   deadline-abandoned work is visible next to the architectural abort
   census. *)
let abandon_attempt ctx e =
  Txmalloc.attempt_abort ctx.pool;
  Stats.abort_attempt ctx.stats ~now:(now ctx) Abort.Timeout;
  note_abort ctx;
  emit ctx
    (Trace.Tx_abort
       { abort_class = Abort.class_name (Abort.index Abort.Timeout); addr = None });
  raise e

(* Per-core preemption stall, drawn once per transaction attempt. *)
let inject_preempt ctx =
  let fl = ctx.sys.faults in
  if Faults.enabled fl then begin
    let n = Faults.preempt_stall fl ~core:ctx.core in
    if n > 0 then begin
      emit ctx (Trace.Fault_inject { kind = "preempt-stall" });
      Engine.elapse n
    end
  end

let the_asf ctx =
  match ctx.sys.asf with Some a -> a | None -> invalid_arg "Tm: no ASF in this mode"

let the_tx ctx =
  match ctx.tx with Some tx -> tx | None -> invalid_arg "Tm: no STM in this mode"

(* ------------------------------------------------------------------ *)
(* Transactional and annotated accesses                                 *)
(* ------------------------------------------------------------------ *)

(* [load]/[store] run once per transactional access, so the [with_cat]
   closure plus [Fun.protect] bookkeeping is too expensive here; the
   category bracket is written out by hand instead. The exceptions that
   can escape (Asf.Aborted, Stm aborts) are control flow, so re-raising
   with plain [raise] is fine. *)

let enter_ld_st ctx = Stats.enter ctx.stats ~now:(now ctx) Stats.cat_ld_st

let exit_ld_st ctx = Stats.exit_ ctx.stats ~now:(now ctx)

let load ctx addr =
  match ctx.path with
  | Hw ->
      enter_ld_st ctx;
      let v =
        try Asf.lock_load (the_asf ctx) ~core:ctx.core addr
        with e ->
          exit_ld_st ctx;
          raise e
      in
      exit_ld_st ctx;
      v
  | Stm_path ->
      enter_ld_st ctx;
      let v =
        try Stm.load (the_tx ctx) addr
        with e ->
          exit_ld_st ctx;
          raise e
      in
      exit_ld_st ctx;
      v
  | Serial | Direct -> Memsys.load ctx.sys.mem ~core:ctx.core addr

let store ctx addr v =
  let fl = ctx.sys.faults in
  if
    ctx.depth > 0 && Faults.enabled fl
    && Faults.lost_update fl ~core:ctx.core
  then
    (* Lying hardware: the transactional store is silently dropped, so the
       transaction commits without its effect ever reaching memory. Pure
       negative fixture for the linearizability oracle. *)
    emit ctx (Trace.Fault_inject { kind = "lost-update" })
  else
  match ctx.path with
  | Hw ->
      enter_ld_st ctx;
      (try Asf.lock_store (the_asf ctx) ~core:ctx.core addr v
       with e ->
         exit_ld_st ctx;
         raise e);
      exit_ld_st ctx
  | Stm_path ->
      enter_ld_st ctx;
      (try Stm.store (the_tx ctx) addr v
       with e ->
         exit_ld_st ctx;
         raise e);
      exit_ld_st ctx
  | Serial | Direct -> Memsys.store ctx.sys.mem ~core:ctx.core addr v

let nload ctx addr =
  match ctx.path with
  | Hw ->
      if ctx.sys.cfg.selective_annotation then
        Asf.plain_load (the_asf ctx) ~core:ctx.core addr
      else load ctx addr
  | Stm_path ->
      if ctx.sys.cfg.selective_annotation then Memsys.load ctx.sys.mem ~core:ctx.core addr
      else load ctx addr
  | Serial | Direct -> Memsys.load ctx.sys.mem ~core:ctx.core addr

let nstore ctx addr v =
  match ctx.path with
  | Hw ->
      if ctx.sys.cfg.selective_annotation then
        Asf.plain_store (the_asf ctx) ~core:ctx.core addr v
      else store ctx addr v
  | Stm_path ->
      if ctx.sys.cfg.selective_annotation then
        Memsys.store ctx.sys.mem ~core:ctx.core addr v
      else store ctx addr v
  | Serial | Direct -> Memsys.store ctx.sys.mem ~core:ctx.core addr v

let release ctx addr =
  match ctx.path with
  | Hw -> Asf.release (the_asf ctx) ~core:ctx.core addr
  | Stm_path | Serial | Direct -> ()

let work _ctx n = Engine.elapse n

let in_tx ctx = ctx.depth > 0

let serial_mode ctx = ctx.path = Serial

(* ------------------------------------------------------------------ *)
(* Memory management                                                    *)
(* ------------------------------------------------------------------ *)

let malloc ctx words =
  Engine.elapse ctx.sys.cfg.malloc_cycles;
  match ctx.path with
  | Hw -> (
      match Txmalloc.alloc_tx ctx.pool words with
      | Some addr -> addr
      | None -> Asf.self_abort (the_asf ctx) ~core:ctx.core Abort.Malloc)
  | Serial | Direct | Stm_path -> Txmalloc.alloc_direct ctx.pool words

let free ctx addr words =
  Engine.elapse (ctx.sys.cfg.malloc_cycles / 2);
  match ctx.path with
  | Hw | Stm_path -> Txmalloc.free_tx ctx.pool addr words
  | Serial | Direct -> Txmalloc.free_direct ctx.pool addr words

(* ------------------------------------------------------------------ *)
(* Serial-irrevocable mode                                              *)
(* ------------------------------------------------------------------ *)

(* Spin-wait window before the [attempt]-th re-poll of the serial lock:
   doubles from 64 cycles and saturates at [64 lsl 7 = 8192]. Backing off
   keeps waiters from hammering the lock's cache line (every probe of
   which dooms hardware regions subscribed to it), while the cap bounds
   any waiter's poll interval, so release-to-acquire latency is bounded
   and no waiter can be starved by ever-growing sleeps. *)
let serial_spin_window attempt = 64 lsl min attempt 7

let wait_serial_free ctx =
  let rec loop attempt =
    if Memsys.load ctx.sys.mem ~core:ctx.core ctx.sys.serial_lock <> 0 then begin
      watchdog_check ctx;
      check_deadline ctx;
      let w = serial_spin_window attempt in
      note_wait ctx w;
      Engine.elapse w;
      loop (attempt + 1)
    end
  in
  loop 0

let acquire_serial ctx =
  let rec loop attempt =
    if
      not
        (Memsys.cas ctx.sys.mem ~core:ctx.core ctx.sys.serial_lock ~expect:0
           ~value:(ctx.core + 1))
    then begin
      watchdog_check ctx;
      check_deadline ctx;
      let w = serial_spin_window attempt in
      note_wait ctx w;
      Engine.elapse w;
      loop (attempt + 1)
    end
  in
  loop 0

let release_serial ctx = Memsys.store ctx.sys.mem ~core:ctx.core ctx.sys.serial_lock 0

let in_body ctx path f =
  ctx.depth <- 1;
  ctx.path <- path;
  Fun.protect
    ~finally:(fun () ->
      ctx.depth <- 0;
      ctx.path <- Direct)
    f

(* Serial-holder fault injection: a stall (or, for the livelock fixture, a
   permanent hang) after the lock is taken, while every other core waits.
   The hang loop polls the holder's own watchdog, so even a
   single-threaded run ends with a diagnosis rather than spinning. *)
let inject_serial_hold ctx =
  let fl = ctx.sys.faults in
  if Faults.enabled fl then begin
    let n = Faults.serial_stall fl ~core:ctx.core in
    if n > 0 then begin
      emit ctx (Trace.Fault_inject { kind = "serial-stall" });
      Engine.elapse n
    end;
    if Faults.serial_hang fl then begin
      emit ctx (Trace.Fault_inject { kind = "serial-hang" });
      let rec hang () =
        watchdog_check ctx;
        Engine.elapse 10_000;
        hang ()
      in
      hang ()
    end
  end

let run_serial ctx f =
  check_deadline ctx;
  inject_preempt ctx;
  Stats.begin_attempt ctx.stats ~now:(now ctx);
  emit ctx Trace.Tx_begin;
  Txmalloc.attempt_begin ctx.pool;
  (try with_cat ctx Stats.cat_start_commit (fun () -> acquire_serial ctx)
   with Deadline_exceeded _ as e -> abandon_attempt ctx e);
  (* Past this point the transaction is irrevocable: it holds the serial
     lock and runs to completion even if the deadline passes mid-body. *)
  emit ctx Trace.Fallback_enter;
  inject_serial_hold ctx;
  let r = in_body ctx Serial (fun () -> with_cat ctx Stats.cat_non_instr f) in
  emit ctx Trace.Fallback_exit;
  with_cat ctx Stats.cat_start_commit (fun () -> release_serial ctx);
  Txmalloc.attempt_commit ctx.pool;
  Stats.commit_attempt ctx.stats ~now:(now ctx) ~serial:true;
  note_commit ctx;
  emit ctx (Trace.Tx_commit { serial = true });
  r

(* ------------------------------------------------------------------ *)
(* ASF execution path                                                   *)
(* ------------------------------------------------------------------ *)

(* Exponential back-off window after [retries] contention aborts: doubles
   from 64 cycles and saturates at [64 lsl 10 = 65536] cycles — the single
   place the maximum window is defined. The delay is sampled from the
   context's per-core PRNG stream; see {!core_prng} for why those streams
   are split off one root generator rather than seeded arithmetically —
   two cores aborting at the same cycle must draw uncorrelated windows or
   they re-collide in lockstep. *)
let backoff_window retries = 64 lsl min retries 10

(* Decorrelated-jitter backoff (deadline-scoped requests only): each draw
   is uniform in [16, 16 + 3 * previous draw), capped at the same 65536
   cycles the exponential ladder saturates at ([backoff_window 10]).
   Successive windows grow geometrically in expectation like the ladder
   but desynchronise faster — aborting requests spread over the whole
   interval instead of clustering at power-of-two boundaries, which
   matters in an open system where a burst delivers many conflicting
   requests in the same few cycles. *)
let decorrelated_window prng ~prev =
  min (backoff_window 10) (16 + Prng.int prng (3 * max 16 prev))

let do_backoff ctx retries =
  watchdog_check ctx;
  check_deadline ctx;
  with_cat ctx Stats.cat_abort_waste (fun () ->
      let delay =
        if deadline_active ctx then begin
          (* Bounded retry under a deadline: decorrelated jitter, clamped
             to the remaining budget so a request never sleeps past the
             cycle at which it would stop retrying anyway. *)
          let w = decorrelated_window ctx.prng ~prev:ctx.jitter_prev in
          ctx.jitter_prev <- w;
          max 1 (min w (ctx.deadline - now ctx))
        end
        else if ctx.sys.cfg.backoff then 16 + Prng.int ctx.prng (backoff_window retries)
        else 16
      in
      emit ctx (Trace.Backoff { cycles = delay });
      note_wait ctx delay;
      Engine.elapse delay)

let service_pending_fault ctx =
  match ctx.pending_fault with
  | Some page ->
      ctx.pending_fault <- None;
      with_cat ctx Stats.cat_abort_waste (fun () ->
          Memsys.service_fault ctx.sys.mem ~page)
  | None -> ()

(* Latency batching: back-to-back ABI/bookkeeping charges accumulate in
   [ctx.pending_cycles] and are folded into the next ASF instruction's
   single [elapse] (its [?extra] argument) instead of each paying its own
   scheduling point. Charges are always taken by the immediately following
   ASF op, so nothing lingers across an abort. *)
let charge ctx n = ctx.pending_cycles <- ctx.pending_cycles + n

let take_charges ctx =
  let n = ctx.pending_cycles in
  ctx.pending_cycles <- 0;
  n

(* Abort code used when a hardware region observes a phase change. *)
let phase_change_code = 42

let rec asf_attempt ctx f retries =
  check_deadline ctx;
  service_pending_fault ctx;
  (* Graceful degradation, stage 1: a transaction that keeps aborting
     without consuming retry budget (page-fault retries are free) is
     forced onto the serial path, which cannot abort. Stage 2 — when even
     serial execution makes no progress — is the {!Livelock} diagnosis
     from {!watchdog_check}. *)
  let forced =
    ctx.sys.cfg.watchdog
    && retries <= ctx.sys.cfg.max_retries
    && ctx.consec_aborts >= ctx.sys.cfg.watchdog_abort_limit
  in
  if forced then begin
    ctx.sys.progress.forced_serial <- ctx.sys.progress.forced_serial + 1;
    emit ctx (Trace.Fault_inject { kind = "forced-serial" })
  end;
  if forced || ctx.force_serial || retries > ctx.sys.cfg.max_retries then
    run_serial ctx f
  else begin
    let a = the_asf ctx in
    inject_preempt ctx;
    Stats.begin_attempt ctx.stats ~now:(now ctx);
    emit ctx Trace.Tx_begin;
    Txmalloc.attempt_begin ctx.pool;
    match
      with_cat ctx Stats.cat_start_commit (fun () ->
          (* Do not even start while a serial transaction holds the lock. *)
          wait_serial_free ctx;
          charge ctx ctx.sys.cfg.begin_abi_cycles;
          Asf.speculate a ~core:ctx.core ~extra:(take_charges ctx);
          (* Subscribe to the serial lock: its acquisition by any fallback
             transaction dooms this region via requester-wins. The phase
             word shares the line, so one subscription covers both. *)
          if Asf.lock_load a ~core:ctx.core ctx.sys.serial_lock <> 0 then
            Asf.self_abort a ~core:ctx.core Abort.Contention;
          if
            ctx.sys.phase <> None
            && Asf.lock_load a ~core:ctx.core ctx.sys.phase_word <> 0
          then Asf.self_abort a ~core:ctx.core (Abort.Explicit phase_change_code));
      let r = in_body ctx Hw (fun () -> with_cat ctx Stats.cat_app f) in
      with_cat ctx Stats.cat_start_commit (fun () ->
          charge ctx ctx.sys.cfg.commit_abi_cycles;
          Asf.commit a ~core:ctx.core ~extra:(take_charges ctx));
      r
    with
    | r ->
        Txmalloc.attempt_commit ctx.pool;
        Stats.commit_attempt ctx.stats ~now:(now ctx) ~serial:false;
        note_commit ctx;
        emit ctx (Trace.Tx_commit { serial = false });
        r
    | exception (Deadline_exceeded _ as e) ->
        (* Raised from [wait_serial_free], before SPECULATE: no hardware
           region is live, only the attempt bookkeeping needs closing. *)
        abandon_attempt ctx e
    | exception Asf.Aborted reason -> (
        Txmalloc.attempt_abort ctx.pool;
        Stats.abort_attempt ctx.stats ~now:(now ctx) reason;
        note_abort ctx;
        (let addr =
           match reason with
           | Abort.Contention | Abort.Capacity ->
               Asf.last_conflict (the_asf ctx) ~core:ctx.core
           | Abort.Page_fault page -> Some (Addr.page_base page)
           | _ -> None
         in
         emit ctx
           (Trace.Tx_abort
              { abort_class = Abort.class_name (Abort.index reason); addr }));
        match reason with
        | Abort.Page_fault page ->
            (* Service the fault and retry: the access will then succeed
               (no retry-budget charge; the fault is not contention). *)
            ctx.pending_fault <- Some page;
            asf_attempt ctx f retries
        | Abort.Capacity when ctx.sys.phase <> None ->
            (* PhasedTM fallback: a capacity overflow moves the whole
               system into the software phase instead of serialising. *)
            switch_to_sw ctx;
            phased_dispatch ctx f
        | Abort.Explicit c when c = phase_change_code ->
            phased_dispatch ctx f
        | Abort.Capacity | Abort.Malloc | Abort.Syscall | Abort.Disallowed ->
            (* The paper's policy: capacity overflows (and transactions the
               hardware cannot run) restart directly in serial mode. *)
            run_serial ctx f
        | Abort.Timeout ->
            (* Never delivered by the hardware model; the class exists for
               the runtime's own deadline accounting. *)
            assert false
        | Abort.Contention | Abort.Interrupt | Abort.Tlb_miss | Abort.Spurious
        | Abort.Explicit _ ->
            do_backoff ctx retries;
            asf_attempt ctx f (retries + 1))
  end

and phase_of ctx =
  match ctx.sys.phase with Some p -> p | None -> assert false

and switch_to_sw ctx =
  let ps = phase_of ctx in
  if ps.current_phase = `Hw then
    with_cat ctx Stats.cat_start_commit (fun () ->
        acquire_serial ctx;
        (* Re-check under the lock: another thread may have switched. *)
        if ps.current_phase = `Hw then begin
          Memsys.store ctx.sys.mem ~core:ctx.core ctx.sys.phase_word 1;
          ps.current_phase <- `Sw;
          ps.sw_txns_left <- ctx.sys.cfg.phase_quantum;
          ps.to_sw_switches <- ps.to_sw_switches + 1
        end;
        release_serial ctx)

and switch_to_hw ctx =
  (* Called by the thread that exhausted the software quantum: block new
     software transactions, drain the in-flight ones, flip the phase. *)
  let ps = phase_of ctx in
  ps.transitioning <- true;
  with_cat ctx Stats.cat_start_commit (fun () ->
      let rec drain () =
        if ps.active_stm > 0 then begin
          watchdog_check ctx;
          Engine.elapse 200;
          drain ()
        end
      in
      drain ();
      Memsys.store ctx.sys.mem ~core:ctx.core ctx.sys.phase_word 0;
      ps.current_phase <- `Hw;
      ps.to_hw_switches <- ps.to_hw_switches + 1;
      ps.transitioning <- false)

and stm_phased ctx f =
  let ps = phase_of ctx in
  if ps.transitioning then begin
    watchdog_check ctx;
    check_deadline ctx;
    Engine.elapse 200;
    stm_phased ctx f
  end
  else if ps.current_phase <> `Sw then phased_dispatch ctx f
  else begin
    (* No [elapse] between the checks above and this increment, so entry
       is atomic with respect to the drain in {!switch_to_hw}. *)
    ps.active_stm <- ps.active_stm + 1;
    let r =
      Fun.protect
        ~finally:(fun () -> ps.active_stm <- ps.active_stm - 1)
        (fun () -> stm_attempt ctx f 0)
    in
    ps.sw_txns_left <- ps.sw_txns_left - 1;
    if ps.sw_txns_left <= 0 && (not ps.transitioning) && ps.current_phase = `Sw then
      switch_to_hw ctx;
    r
  end

and phased_dispatch ctx f =
  if (phase_of ctx).current_phase = `Hw then asf_attempt ctx f 0 else stm_phased ctx f

(* ------------------------------------------------------------------ *)
(* STM execution path                                                   *)
(* ------------------------------------------------------------------ *)

and stm_attempt ctx f retries =
  check_deadline ctx;
  let tx = the_tx ctx in
  inject_preempt ctx;
  Stats.begin_attempt ctx.stats ~now:(now ctx);
  emit ctx Trace.Tx_begin;
  Txmalloc.attempt_begin ctx.pool;
  match
    with_cat ctx Stats.cat_start_commit (fun () -> Stm.start tx);
    let r = in_body ctx Stm_path (fun () -> with_cat ctx Stats.cat_app f) in
    with_cat ctx Stats.cat_start_commit (fun () -> Stm.commit tx);
    r
  with
  | r ->
      Txmalloc.attempt_commit ctx.pool;
      Stats.commit_attempt ctx.stats ~now:(now ctx) ~serial:false;
      note_commit ctx;
      emit ctx (Trace.Tx_commit { serial = false });
      r
  | exception Stm.Stm_abort { orec } ->
      Txmalloc.attempt_abort ctx.pool;
      Stats.abort_attempt ctx.stats ~now:(now ctx) Abort.Contention;
      note_abort ctx;
      emit ctx
        (Trace.Tx_abort
           {
             abort_class = Abort.class_name (Abort.index Abort.Contention);
             addr = Option.map (fun o -> Addr.line_base (Addr.line_of o)) orec;
           });
      do_backoff ctx retries;
      stm_attempt ctx f (retries + 1)

(* ------------------------------------------------------------------ *)
(* atomic                                                               *)
(* ------------------------------------------------------------------ *)

let atomic ctx f =
  if ctx.depth > 0 then f () (* flat nesting at the language level *)
  else begin
    (* Housekeeping outside any region: keep the speculative allocation
       pool topped up (chunk refills are unsafe inside transactions). *)
    if Txmalloc.refill ctx.pool then Engine.elapse 200;
    match ctx.sys.cfg.mode with
    | Seq_mode ->
        (* Uninstrumented baseline; still counted as a committed
           transaction so commit totals are comparable across modes. *)
        Stats.begin_attempt ctx.stats ~now:(now ctx);
        emit ctx Trace.Tx_begin;
        let r = in_body ctx Direct f in
        Stats.commit_attempt ctx.stats ~now:(now ctx) ~serial:false;
        note_commit ctx;
        emit ctx (Trace.Tx_commit { serial = false });
        r
    | Stm_mode -> stm_attempt ctx f 0
    | Asf_mode _ -> asf_attempt ctx f 0
    | Phased_mode _ -> phased_dispatch ctx f
  end

let atomic_until ctx ~deadline f =
  if ctx.depth > 0 then
    invalid_arg "Tm.atomic_until: deadlines apply to top-level transactions only";
  if deadline < 0 then invalid_arg "Tm.atomic_until: negative deadline";
  ctx.deadline <- deadline;
  ctx.jitter_prev <- 16;
  ctx.dl_wait <- 0;
  Fun.protect
    ~finally:(fun () -> ctx.deadline <- max_int)
    (fun () ->
      check_deadline ctx;
      atomic ctx f)

let deadline_wait ctx = ctx.dl_wait

let set_force_serial ctx v = ctx.force_serial <- v

let retry ctx =
  match ctx.path with
  | Hw -> Asf.abort_explicit (the_asf ctx) ~core:ctx.core ~code:1
  | Stm_path -> Stm.abort (the_tx ctx)
  | Serial -> invalid_arg "Tm.retry: serial-irrevocable transactions cannot retry"
  | Direct -> invalid_arg "Tm.retry: outside a transaction"

let irrevocable ctx =
  match ctx.path with
  | Hw -> Asf.self_abort (the_asf ctx) ~core:ctx.core Abort.Syscall
  | Serial -> ()
  | Stm_path ->
      (* TinySTM's benchmarks never need irrevocability; treated as a
         no-op for the STM baseline. *)
      ()
  | Direct -> invalid_arg "Tm.irrevocable: outside a transaction"

(* ------------------------------------------------------------------ *)
(* Setup helpers and thread management                                  *)
(* ------------------------------------------------------------------ *)

let setup_poke sys addr v = Memsys.poke sys.mem addr v

let setup_peek sys addr = Memsys.peek sys.mem addr

let setup_alloc sys words =
  let addr = Alloc.alloc_lines sys.galloc words in
  Tlb.map_range (Memsys.tlb sys.mem) addr (Addr.lines_of_words words * Addr.words_per_line);
  addr

let spawn sys ~core f =
  let ctx = make_ctx sys ~core in
  Engine.spawn sys.engine ~core (fun () ->
      (* Close the cycle accounting when the thread ends, so the category
         totals sum to the thread's exact simulated lifetime. *)
      Fun.protect ~finally:(fun () -> Stats.finalize ctx.stats ~now:(now ctx)) (fun () ->
          f ctx));
  ctx

let run sys = Engine.run sys.engine

let makespan sys = Engine.max_time sys.engine

let phase_switches sys =
  Option.map (fun ps -> (ps.to_sw_switches, ps.to_hw_switches)) sys.phase

let total_commits sys = sys.progress.total_commits

let forced_serial_count sys = sys.progress.forced_serial

let max_consecutive_aborts ctx = ctx.max_consec_aborts
