(* Asf_parallel: a deterministic fork-join domain pool for the experiment
   harness.

   The unit of parallelism is the *cell*: one fully deterministic
   simulator instance (a (workload x variant x thread-count x seed)
   combination). Cells share no mutable state, so they can execute on any
   domain in any order; the pool merges their results back in canonical
   (submission) order, which makes the output of [--jobs n] bit-identical
   to [--jobs 1].

   Scheduling is the classic self-scheduling / work-stealing-style shared
   queue: workers repeatedly claim the next unclaimed cell index from one
   atomic counter, so long cells never leave a domain idle while work
   remains (cf. Blumofe & Leiserson's work-first principle; with
   independent, pre-enumerated tasks a single shared queue gives the same
   schedule quality as per-deque stealing without the deques).

   Observability state (Txcheck checkers, Faultline injectors, tracers)
   is *domain-local* ({!Asf_trace.Trace}, {!Asf_check.Check} and
   {!Asf_faults.Faults} keep their installed instance in [Domain.DLS]):
   [cell_map] gives every cell a fresh checker / injector derived from
   the main domain's configuration and merges the harvested findings and
   injection censuses back in cell order. See DESIGN.md, "The determinism
   contract". *)

module Engine = Asf_engine.Engine
module Trace = Asf_trace.Trace
module Check = Asf_check.Check
module Faults = Asf_faults.Faults

(* ------------------------------------------------------------------ *)
(* The pool                                                             *)
(* ------------------------------------------------------------------ *)

let available () = Domain.recommended_domain_count ()

(* The harness-wide degree of parallelism, set once from the CLI on the
   main domain before any cells run. 1 = fully sequential (no domain is
   ever spawned, today's path). *)
let current_jobs = ref 1

let set_jobs n = current_jobs := max 1 n

let jobs () = !current_jobs

(* Execute every thunk and return the results in submission order.
   [jobs <= 1] (or a single thunk) runs inline on the calling domain,
   fail-fast; otherwise [jobs - 1] worker domains are spawned and the
   caller participates as the last worker. A raising thunk does not
   cancel its siblings; after the join, the lowest-index exception is
   re-raised (the same one a sequential left-to-right run would have
   surfaced first). *)
let run_thunks ?jobs:(j = !current_jobs) thunks =
  let n = Array.length thunks in
  let j = max 1 (min j n) in
  if j <= 1 then Array.map (fun f -> f ()) thunks
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (results.(i) <-
             Some
               (match thunks.(i) () with
               | v -> Ok v
               | exception e -> Error (e, Printexc.get_raw_backtrace ())));
          loop ()
        end
      in
      loop ()
    in
    let workers = Array.init (j - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join workers;
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | None -> assert false (* every index was claimed before the join *))
      results
  end

let map_array ?jobs f xs =
  run_thunks ?jobs (Array.map (fun x () -> f x) xs)

let map ?jobs f xs =
  Array.to_list (map_array ?jobs f (Array.of_list xs))

(* ------------------------------------------------------------------ *)
(* Simulated-cycle accounting                                           *)
(* ------------------------------------------------------------------ *)

(* Cycles simulated by cells run through [cell_map] since the last
   [reset_sim_cycles], harvested from each executing domain's retired-
   cycle counter and summed on the main domain. Powers the cycles/sec
   figures in BENCH_asf.json. *)
let sim_cycle_acc = ref 0

(* Scheduling counters, harvested the same way: elapses served by the
   fusion fast path vs. through the heap. Powers the fused_ratio figure
   in BENCH_asf.json. *)
let fused_acc = ref 0

let sched_acc = ref 0

let reset_sim_cycles () =
  sim_cycle_acc := 0;
  fused_acc := 0;
  sched_acc := 0

let sim_cycles () = !sim_cycle_acc

let fused_scheduled () = (!fused_acc, !sched_acc)

(* ------------------------------------------------------------------ *)
(* Cells                                                                *)
(* ------------------------------------------------------------------ *)

type 'b cell_out = {
  co_val : 'b;
  co_cycles : int;
  co_fused : int;
  co_sched : int;
  co_findings : Check.finding list;
  co_hits : int array;
}

(* Map [f] over [xs] as independent deterministic cells across the pool.

   Each cell runs with its own domain-locally installed Txcheck checker
   and Faultline injector, freshly derived from whatever the main domain
   has installed (same parts; same plan and seed). After all cells
   complete, their findings and injection counts are absorbed into the
   main domain's instances in cell order — so the final findings table
   and census are independent of which domain ran which cell, and of the
   completion order.

   Tracing has no such merge path (rings are ordered by host emission):
   when a tracer is installed, the map degrades to sequential so every
   cell keeps appending to the main tracer exactly as today. *)
let cell_map f xs =
  let main_chk = Check.installed () in
  let main_fl = Faults.installed () in
  let parts = Option.map (fun c -> Check.parts c) main_chk in
  let fplan =
    if Faults.enabled main_fl then Some (Faults.plan main_fl, Faults.seed main_fl)
    else None
  in
  let scoped = parts <> None || fplan <> None in
  let run_cell x =
    if not scoped then begin
      let c0 = Engine.cycles_retired () in
      let f0, s0 = Engine.sched_counters () in
      let v = f x in
      let f1, s1 = Engine.sched_counters () in
      {
        co_val = v;
        co_cycles = Engine.cycles_retired () - c0;
        co_fused = f1 - f0;
        co_sched = s1 - s0;
        co_findings = [];
        co_hits = [||];
      }
    end
    else begin
      (* Executing-domain scope: save whatever this domain had installed
         (the main domain's own instances when jobs = 1), substitute the
         per-cell derivations, and restore on the way out. *)
      let saved_chk = Check.installed () in
      let saved_fl = Faults.installed () in
      let chk = Option.map (fun parts -> Check.create ~parts ()) parts in
      let fl = Option.map (fun (plan, seed) -> Faults.create ~seed plan) fplan in
      (match chk with Some c -> Check.install c | None -> ());
      (match fl with Some fl -> Faults.install fl | None -> ());
      Fun.protect
        ~finally:(fun () ->
          (match saved_chk with
          | Some c -> Check.install c
          | None -> Check.uninstall ());
          Faults.install saved_fl)
        (fun () ->
          let c0 = Engine.cycles_retired () in
          let f0, s0 = Engine.sched_counters () in
          let v = f x in
          let f1, s1 = Engine.sched_counters () in
          {
            co_val = v;
            co_cycles = Engine.cycles_retired () - c0;
            co_fused = f1 - f0;
            co_sched = s1 - s0;
            co_findings =
              (match chk with Some c -> Check.export c | None -> []);
            co_hits = (match fl with Some fl -> Faults.hits fl | None -> [||]);
          })
    end
  in
  let jobs =
    if Trace.enabled (Trace.installed ()) then 1 else !current_jobs
  in
  let outs = map ~jobs run_cell xs in
  List.map
    (fun o ->
      sim_cycle_acc := !sim_cycle_acc + o.co_cycles;
      fused_acc := !fused_acc + o.co_fused;
      sched_acc := !sched_acc + o.co_sched;
      (match main_chk with
      | Some c -> Check.absorb c o.co_findings
      | None -> ());
      if Faults.enabled main_fl then Faults.absorb main_fl o.co_hits;
      o.co_val)
    outs
