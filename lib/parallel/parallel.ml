(* Asf_parallel: a deterministic fork-join domain pool for the experiment
   harness.

   The unit of parallelism is the *cell*: one fully deterministic
   simulator instance (a (workload x variant x thread-count x seed)
   combination). Cells share no mutable state, so they can execute on any
   domain in any order; the pool merges their results back in canonical
   (submission) order, which makes the output of [--jobs n] bit-identical
   to [--jobs 1].

   Scheduling is guided self-scheduling over one shared atomic counter:
   a worker claims a *chunk* of [max 1 (remaining / (4 * jobs))]
   consecutive cell indices per fetch-and-add (Polychronopoulos & Kuck's
   decreasing-chunk rule), so early claims amortize the atomic op and the
   cache-line ping-pong over many cells while the tail degrades to
   one-at-a-time claims that keep the finish times balanced. Chunks are
   claimed in increasing index order — the property the fail-fast
   determinism argument below rests on.

   Observability state (Txcheck checkers, Faultline injectors, tracers)
   is *domain-local* ({!Asf_trace.Trace}, {!Asf_check.Check} and
   {!Asf_faults.Faults} keep their installed instance in [Domain.DLS]):
   [cell_map] gives every worker one cached checker / injector pair
   derived from the main domain's configuration — reset between cells,
   which is observably identical to the fresh-per-cell derivation it
   replaces — and merges the harvested findings and injection censuses
   back in cell order. See DESIGN.md, "The determinism contract". *)

module Engine = Asf_engine.Engine
module Trace = Asf_trace.Trace
module Check = Asf_check.Check
module Faults = Asf_faults.Faults
module Hierarchy = Asf_cache.Hierarchy

(* ------------------------------------------------------------------ *)
(* The pool                                                             *)
(* ------------------------------------------------------------------ *)

let available () = Domain.recommended_domain_count ()

(* The harness-wide degree of parallelism, set once from the CLI on the
   main domain before any cells run. 1 = fully sequential (no domain is
   ever spawned, today's path). *)
let current_jobs = ref 1

let set_jobs n = current_jobs := max 1 n

let jobs () = !current_jobs

(* Execute every thunk and return the results in submission order.

   [jobs <= 1] (or a single thunk) runs inline on the calling domain,
   fail-fast; otherwise [jobs - 1] worker domains are spawned and the
   caller participates as worker 0. [around wid body] wraps worker
   [wid]'s whole participation (domain-local setup / harvest hooks for
   the cell runner); it must call [body] exactly once and let exceptions
   through. [chunk] pins the claim-chunk size (tests); the default is the
   guided rule above.

   Fail-fast: the first raising thunk sets a shared flag that stops
   further *claims* — cells inside already-claimed chunks still run.
   That claim-time-only check is what keeps the re-raised exception
   deterministic: chunks are claimed in increasing index order, and a
   failing thunk runs only after its own chunk was claimed, so by the
   time the flag is first set the chunk holding the lowest failing index
   has already been claimed and will run to completion. The lowest-index
   exception therefore always materializes in [results], and re-raising
   it reproduces what a sequential left-to-right run would have surfaced
   first — regardless of jobs, chunking, or timing. *)
let run_thunks ?jobs:(j = !current_jobs) ?chunk ?around thunks =
  let n = Array.length thunks in
  let j = max 1 (min j n) in
  let wrap = match around with Some g -> g | None -> fun _wid k -> k () in
  if j <= 1 then begin
    let out = ref [||] in
    wrap 0 (fun () -> out := Array.map (fun f -> f ()) thunks);
    !out
  end
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let failed = Atomic.make false in
    let chunk_of remaining =
      match chunk with
      | Some c -> max 1 c
      | None -> max 1 (remaining / (4 * j))
    in
    let worker wid =
      wrap wid (fun () ->
          let running = ref true in
          while !running do
            if Atomic.get failed then running := false
            else begin
              (* The [remaining] estimate may be stale by claim time; the
                 chunk size is a heuristic, so that only skews the grain,
                 never the claimed range itself. *)
              let k = chunk_of (n - Atomic.get next) in
              let lo = Atomic.fetch_and_add next k in
              if lo >= n then running := false
              else
                for i = lo to min (lo + k) n - 1 do
                  results.(i) <-
                    Some
                      (match thunks.(i) () with
                      | v -> Ok v
                      | exception e ->
                          Atomic.set failed true;
                          Error (e, Printexc.get_raw_backtrace ()))
                done
            end
          done)
    in
    let workers =
      Array.init (j - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1)))
    in
    worker 0;
    Array.iter Domain.join workers;
    let first_error = ref None in
    for i = n - 1 downto 0 do
      match results.(i) with
      | Some (Error eb) -> first_error := Some eb
      | _ -> ()
    done;
    match !first_error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None ->
        Array.map
          (function
            | Some (Ok v) -> v
            | Some (Error _) | None ->
                (* No thunk failed, so the flag never stopped a claim and
                   every index was claimed and run before the join. *)
                assert false)
          results
  end

let map_array ?jobs ?chunk ?around f xs =
  run_thunks ?jobs ?chunk ?around (Array.map (fun x () -> f x) xs)

let map ?jobs ?chunk ?around f xs =
  Array.to_list (map_array ?jobs ?chunk ?around f (Array.of_list xs))

(* ------------------------------------------------------------------ *)
(* Simulated-cycle accounting                                           *)
(* ------------------------------------------------------------------ *)

(* Cycles simulated by cells run through [cell_map] since the last
   [reset_sim_cycles], harvested once per worker from the executing
   domain's retired-cycle counter and summed on the main domain at join.
   Powers the cycles/sec figures in BENCH_asf.json. *)
let sim_cycle_acc = ref 0

(* Scheduling counters, harvested the same way: elapses served by the
   fusion fast path vs. through the heap. Powers the fused_ratio figure
   in BENCH_asf.json. *)
let fused_acc = ref 0

let sched_acc = ref 0

(* Coherence-traffic totals, harvested the same way from each domain's
   {!Hierarchy.domain_coherence} counters: invalidations, forwards,
   cross-socket probes, probed cores. The last slot is the directory
   occupancy high-water — zeroed per worker participation and merged
   with [max], not summed. Powers the coherence columns and the [scale]
   block in BENCH_asf.json. *)
let coh_inval_acc = ref 0

let coh_fwd_acc = ref 0

let coh_cross_acc = ref 0

let coh_probe_acc = ref 0

let coh_dir_hw_acc = ref 0

let reset_sim_cycles () =
  sim_cycle_acc := 0;
  fused_acc := 0;
  sched_acc := 0;
  coh_inval_acc := 0;
  coh_fwd_acc := 0;
  coh_cross_acc := 0;
  coh_probe_acc := 0;
  coh_dir_hw_acc := 0

let sim_cycles () = !sim_cycle_acc

let fused_scheduled () = (!fused_acc, !sched_acc)

let coherence () =
  ( !coh_inval_acc,
    !coh_fwd_acc,
    !coh_cross_acc,
    !coh_probe_acc,
    !coh_dir_hw_acc )

(* ------------------------------------------------------------------ *)
(* Cells                                                                *)
(* ------------------------------------------------------------------ *)

type 'b cell_out = {
  co_val : 'b;
  co_findings : Check.finding list;
  co_hits : int array;
}

(* Map [f] over [xs] as independent deterministic cells across the pool.

   Each worker installs one cached Txcheck checker and Faultline injector
   for its whole participation, derived from whatever the main domain has
   installed (same parts; same plan and seed) and *reset* between cells —
   {!Check.reset} / {!Faults.reset} restore the just-created state, so a
   cell sees exactly the instance a fresh per-cell derivation would have
   given it, without the per-cell allocation. After all cells complete,
   their findings and injection counts are absorbed into the main
   domain's instances in cell order — so the final findings table and
   census are independent of which domain ran which cell, and of the
   completion order.

   Engine accounting (simulated cycles, fused/scheduled elapses) is
   domain-local too; each worker banks its deltas into its own arena slot
   and the main domain merges the slots once after the join, instead of
   per-cell ref updates on the main domain.

   Tracing has no such merge path (rings are ordered by host emission):
   when a tracer is installed, the map degrades to sequential so every
   cell keeps appending to the main tracer exactly as today. *)
let cell_map f xs =
  let main_chk = Check.installed () in
  let main_fl = Faults.installed () in
  let parts = Option.map (fun c -> Check.parts c) main_chk in
  let fplan =
    if Faults.enabled main_fl then Some (Faults.plan main_fl, Faults.seed main_fl)
    else None
  in
  let scoped = parts <> None || fplan <> None in
  let jobs = if Trace.enabled (Trace.installed ()) then 1 else !current_jobs in
  (* Per-worker stat arenas: distinct slots, written by the owning worker
     inside [around]'s finally and read on the main domain only after the
     join (which orders the writes before the reads). *)
  let slots = max 1 jobs in
  let a_cycles = Array.make slots 0 in
  let a_fused = Array.make slots 0 in
  let a_sched = Array.make slots 0 in
  let a_coh_inval = Array.make slots 0 in
  let a_coh_fwd = Array.make slots 0 in
  let a_coh_cross = Array.make slots 0 in
  let a_coh_probe = Array.make slots 0 in
  let a_coh_dir_hw = Array.make slots 0 in
  let around wid body =
    (* Executing-domain scope: save whatever this domain had installed
       (the main domain's own instances when wid = 0), substitute the
       worker's cached derivations, and restore on the way out. *)
    let saved_chk = Check.installed () in
    let saved_fl = Faults.installed () in
    let chk = Option.map (fun parts -> Check.create ~parts ()) parts in
    let fl = Option.map (fun (plan, seed) -> Faults.create ~seed plan) fplan in
    (match chk with Some c -> Check.install c | None -> ());
    (match fl with Some fl -> Faults.install fl | None -> ());
    let c0 = Engine.cycles_retired () in
    let f0, s0 = Engine.sched_counters () in
    let coh0 = Hierarchy.domain_coherence () in
    (* Zero the domain's directory high-water so this participation's
       mark is its own; the saved value is restored (as a max) in the
       finally, so outer accounting on the main domain is preserved. *)
    Hierarchy.set_domain_dir_high_water 0;
    Fun.protect
      ~finally:(fun () ->
        a_cycles.(wid) <- Engine.cycles_retired () - c0;
        let f1, s1 = Engine.sched_counters () in
        a_fused.(wid) <- f1 - f0;
        a_sched.(wid) <- s1 - s0;
        let coh1 = Hierarchy.domain_coherence () in
        a_coh_inval.(wid) <- coh1.(0) - coh0.(0);
        a_coh_fwd.(wid) <- coh1.(1) - coh0.(1);
        a_coh_cross.(wid) <- coh1.(2) - coh0.(2);
        a_coh_probe.(wid) <- coh1.(3) - coh0.(3);
        a_coh_dir_hw.(wid) <- coh1.(4);
        Hierarchy.set_domain_dir_high_water (max coh0.(4) coh1.(4));
        (match saved_chk with
        | Some c -> Check.install c
        | None -> Check.uninstall ());
        Faults.install saved_fl)
      body
  in
  let run_cell x =
    if not scoped then { co_val = f x; co_findings = []; co_hits = [||] }
    else begin
      let v = f x in
      (* Harvest and reset the worker's cached pair so the next cell on
         this domain starts from the just-created state. *)
      let findings =
        match Check.installed () with
        | Some c ->
            let fs = Check.export c in
            Check.reset c;
            fs
        | None -> []
      in
      let hits =
        let fl = Faults.installed () in
        if Faults.enabled fl then begin
          let h = Faults.hits fl in
          Faults.reset fl;
          h
        end
        else [||]
      in
      { co_val = v; co_findings = findings; co_hits = hits }
    end
  in
  let outs = map ~jobs ~around run_cell xs in
  let total a = Array.fold_left ( + ) 0 a in
  sim_cycle_acc := !sim_cycle_acc + total a_cycles;
  fused_acc := !fused_acc + total a_fused;
  sched_acc := !sched_acc + total a_sched;
  coh_inval_acc := !coh_inval_acc + total a_coh_inval;
  coh_fwd_acc := !coh_fwd_acc + total a_coh_fwd;
  coh_cross_acc := !coh_cross_acc + total a_coh_cross;
  coh_probe_acc := !coh_probe_acc + total a_coh_probe;
  coh_dir_hw_acc := max !coh_dir_hw_acc (Array.fold_left max 0 a_coh_dir_hw);
  List.map
    (fun o ->
      (match main_chk with
      | Some c -> Check.absorb c o.co_findings
      | None -> ());
      if Faults.enabled main_fl then Faults.absorb main_fl o.co_hits;
      o.co_val)
    outs
