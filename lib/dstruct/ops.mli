(** Memory-operation capability records for shared data structures.

    A data structure implemented once against {!t} can be executed in
    three ways without code duplication:

    - {!tx}: inside a transaction, with transactional loads/stores and the
      context's transactional allocator (the normal case);
    - {!tx_er}: like {!tx}, but traversals may use ASF early release via
      the [release] field (no-op on non-ASF paths);
    - {!setup}: untimed, page-mapping accesses for building benchmark
      state before the measured run. *)

type t = {
  ld : Asf_mem.Addr.t -> int;
  st : Asf_mem.Addr.t -> int -> unit;
  alloc : int -> Asf_mem.Addr.t;  (** words, line-padded *)
  free : Asf_mem.Addr.t -> int -> unit;
  release : Asf_mem.Addr.t -> unit;  (** early release (hint) *)
  rand_bits : unit -> int;  (** 30 random bits (skip-list levels) *)
}

val tx : Asf_tm_rt.Tm.ctx -> t
(** Transactional operations, early release disabled. *)

val tx_er : Asf_tm_rt.Tm.ctx -> t
(** Transactional operations with early release enabled. *)

val dry :
  ld:(Asf_mem.Addr.t -> int) ->
  st:(Asf_mem.Addr.t -> int -> unit) ->
  alloc:(int -> Asf_mem.Addr.t) ->
  ?free:(Asf_mem.Addr.t -> int -> unit) ->
  ?release:(Asf_mem.Addr.t -> unit) ->
  ?rand_bits:(unit -> int) ->
  unit ->
  t
(** Abstract capability record over caller-supplied operations — no
    runtime context at all. The static analyzer ({!Asf_analyze})
    interprets data-structure code against its shadow memory through
    this constructor, so every structure written once against {!t} is
    analyzable with zero per-structure changes. [free] and [release]
    default to no-ops, [rand_bits] to a constant [0]. *)

val setup : Asf_tm_rt.Tm.system -> t
(** Untimed setup operations; allocation pre-maps pages. *)
