module Tm = Asf_tm_rt.Tm
module Prng = Asf_engine.Prng

type t = {
  ld : Asf_mem.Addr.t -> int;
  st : Asf_mem.Addr.t -> int -> unit;
  alloc : int -> Asf_mem.Addr.t;
  free : Asf_mem.Addr.t -> int -> unit;
  release : Asf_mem.Addr.t -> unit;
  rand_bits : unit -> int;
}

let tx ctx =
  {
    ld = Tm.load ctx;
    st = Tm.store ctx;
    alloc = Tm.malloc ctx;
    free = Tm.free ctx;
    release = (fun _ -> ());
    rand_bits = (fun () -> Prng.int (Tm.prng ctx) (1 lsl 30));
  }

let tx_er ctx = { (tx ctx) with release = Tm.release ctx }

let dry ~ld ~st ~alloc ?(free = fun _ _ -> ()) ?(release = fun _ -> ())
    ?(rand_bits = fun () -> 0) () =
  { ld; st; alloc; free; release; rand_bits }

let setup sys =
  let rng = Prng.create 0x5e70 in
  {
    ld = Tm.setup_peek sys;
    st = Tm.setup_poke sys;
    alloc = Tm.setup_alloc sys;
    free = (fun _ _ -> ());
    release = (fun _ -> ());
    rand_bits = (fun () -> Prng.int rng (1 lsl 30));
  }
