(* Tests for the STAMP-like applications: every app must pass its own
   validation checks in every execution mode, deterministically. *)

module Tm = Asf_tm_rt.Tm
module Stats = Asf_tm_rt.Stats
module Variant = Asf_core.Variant
module Stamp = Asf_stamp.Stamp
module C = Asf_stamp.Stamp_common

let modes =
  [
    ("llb8", Tm.Asf_mode Variant.llb8, 4);
    ("llb256", Tm.Asf_mode Variant.llb256, 4);
    ("llb8-l1", Tm.Asf_mode Variant.llb8_l1, 4);
    ("llb256-l1", Tm.Asf_mode Variant.llb256_l1, 4);
    ("stm", Tm.Stm_mode, 4);
    ("seq", Tm.Seq_mode, 1);
  ]

let run_app app mode threads =
  let tm = Tm.default_config mode ~n_cores:threads in
  Stamp.run_scaled app ~scale:0.25 tm ~threads

let test_app_valid app (mname, mode, threads) () =
  let r = run_app app mode threads in
  List.iter
    (fun (check, passed) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s: %s" (Stamp.name app) mname check)
        true passed)
    r.C.checks;
  Alcotest.(check bool) "made progress" true (r.C.cycles > 0);
  Alcotest.(check bool) "ran transactions" true (Stats.commits r.C.stats > 0)

let test_deterministic () =
  (* Same config + seed => bit-identical makespan and stats. *)
  let run () =
    let tm = Tm.default_config (Tm.Asf_mode Variant.llb256) ~n_cores:4 in
    let r = Stamp.run_scaled Stamp.Intruder ~scale:0.25 tm ~threads:4 in
    (r.C.cycles, Stats.commits r.C.stats, Stats.total_aborts r.C.stats)
  in
  Alcotest.(check (triple int int int)) "identical reruns" (run ()) (run ())

let test_seed_changes_schedule () =
  let run seed =
    let tm = { (Tm.default_config (Tm.Asf_mode Variant.llb256) ~n_cores:4) with Tm.seed } in
    (Stamp.run_scaled Stamp.Vacation_low ~scale:0.25 tm ~threads:4).C.cycles
  in
  Alcotest.(check bool) "different seeds differ" true (run 1 <> run 2)

let test_stamp_names_roundtrip () =
  List.iter
    (fun app ->
      Alcotest.(check bool)
        (Stamp.name app ^ " roundtrips")
        true
        (Stamp.of_name (Stamp.name app) = Some app))
    Stamp.all;
  Alcotest.(check bool) "unknown name" true (Stamp.of_name "nope" = None)

let test_more_threads_less_time () =
  (* The scalable apps must show speedup between 1 and 8 threads on
     LLB-256. *)
  List.iter
    (fun app ->
      let time threads =
        let tm = Tm.default_config (Tm.Asf_mode Variant.llb256) ~n_cores:threads in
        (Stamp.run app tm ~threads).C.cycles
      in
      let t1 = time 1 and t8 = time 8 in
      Alcotest.(check bool)
        (Printf.sprintf "%s speeds up (1t=%d, 8t=%d)" (Stamp.name app) t1 t8)
        true
        (float_of_int t8 < 0.5 *. float_of_int t1))
    [ Stamp.Genome; Stamp.Ssca2; Stamp.Kmeans_low; Stamp.Vacation_low ]

let test_serial_dominated_apps () =
  (* On LLB-8, vacation transactions exceed capacity and run serially. *)
  let tm = Tm.default_config (Tm.Asf_mode Variant.llb8) ~n_cores:2 in
  let r = Stamp.run_scaled Stamp.Vacation_low ~scale:0.25 tm ~threads:2 in
  let serial = Stats.serial_commits r.C.stats in
  let commits = Stats.commits r.C.stats in
  Alcotest.(check bool)
    (Printf.sprintf "mostly serial (%d/%d)" serial commits)
    true
    (float_of_int serial > 0.8 *. float_of_int commits)

let test_kmeans_contention_ordering () =
  (* Fewer clusters (high contention) must abort more than more clusters
     (low contention) at the same thread count. *)
  let aborts app =
    let tm = Tm.default_config (Tm.Asf_mode Variant.llb256) ~n_cores:8 in
    Stats.total_aborts (Stamp.run app tm ~threads:8).C.stats
  in
  let low = aborts Stamp.Kmeans_low and high = aborts Stamp.Kmeans_high in
  Alcotest.(check bool)
    (Printf.sprintf "high (%d) > low (%d)" high low)
    true (high > low)

let () =
  let per_app =
    List.map
      (fun app ->
        ( Stamp.name app,
          List.map
            (fun ((mname, _, _) as m) ->
              Alcotest.test_case mname `Quick (test_app_valid app m))
            modes ))
      Stamp.all
  in
  Alcotest.run "stamp"
    (per_app
    @ [
        ( "properties",
          [
            Alcotest.test_case "deterministic" `Quick test_deterministic;
            Alcotest.test_case "seed sensitivity" `Quick test_seed_changes_schedule;
            Alcotest.test_case "name roundtrip" `Quick test_stamp_names_roundtrip;
            Alcotest.test_case "scalability" `Slow test_more_threads_less_time;
            Alcotest.test_case "serial domination" `Quick test_serial_dominated_apps;
            Alcotest.test_case "contention ordering" `Slow test_kmeans_contention_ordering;
          ] );
      ])
