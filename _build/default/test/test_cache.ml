(* Tests for the cache directory model, TLB, hierarchy coherence, and the
   Memsys timed facade. *)

module Engine = Asf_engine.Engine
module Params = Asf_machine.Params
module Addr = Asf_mem.Addr
module Cache = Asf_cache.Cache
module Tlb = Asf_cache.Tlb
module Hierarchy = Asf_cache.Hierarchy
module Memsys = Asf_cache.Memsys

(* ------------------------------------------------------------------ *)
(* Cache                                                               *)
(* ------------------------------------------------------------------ *)

let test_cache_hit_miss () =
  let c = Cache.create ~sets:4 ~assoc:2 in
  let hit, ev = Cache.touch c 0 in
  Alcotest.(check bool) "first access misses" false hit;
  Alcotest.(check (option int)) "no eviction on cold fill" None ev;
  let hit, _ = Cache.touch c 0 in
  Alcotest.(check bool) "second access hits" true hit

let test_cache_lru_eviction () =
  let c = Cache.create ~sets:1 ~assoc:2 in
  ignore (Cache.touch c 10);
  ignore (Cache.touch c 20);
  ignore (Cache.touch c 10) (* 20 is now LRU *);
  let _, ev = Cache.touch c 30 in
  Alcotest.(check (option int)) "LRU way evicted" (Some 20) ev;
  Alcotest.(check bool) "10 survives" true (Cache.mem c 10);
  Alcotest.(check bool) "20 gone" false (Cache.mem c 20)

let test_cache_set_isolation () =
  let c = Cache.create ~sets:4 ~assoc:1 in
  (* Keys 0 and 4 share set 0; key 1 lives in set 1. *)
  ignore (Cache.touch c 0);
  ignore (Cache.touch c 1);
  let _, ev = Cache.touch c 4 in
  Alcotest.(check (option int)) "conflict in set 0" (Some 0) ev;
  Alcotest.(check bool) "set 1 untouched" true (Cache.mem c 1)

let test_cache_invalidate () =
  let c = Cache.create ~sets:2 ~assoc:2 in
  ignore (Cache.touch c 5);
  Alcotest.(check bool) "present removed" true (Cache.invalidate c 5);
  Alcotest.(check bool) "absent not removed" false (Cache.invalidate c 5)

let prop_cache_vs_reference_lru =
  (* Compare the cache against a straightforward per-set LRU list model. *)
  QCheck.Test.make ~name:"cache matches reference LRU model" ~count:100
    QCheck.(list (int_range 0 63))
    (fun keys ->
      let sets = 4 and assoc = 3 in
      let c = Cache.create ~sets ~assoc in
      let model = Array.make sets [] in
      List.for_all
        (fun k ->
          let s = k land (sets - 1) in
          let hit_model = List.mem k model.(s) in
          let hit, _ = Cache.touch c k in
          let l = k :: List.filter (fun x -> x <> k) model.(s) in
          model.(s) <- (if List.length l > assoc then List.filteri (fun i _ -> i < assoc) l else l);
          hit = hit_model)
        keys)

(* ------------------------------------------------------------------ *)
(* TLB                                                                 *)
(* ------------------------------------------------------------------ *)

let test_tlb_fault_then_hit () =
  let p = Params.barcelona in
  let t = Tlb.create p ~n_cores:1 in
  (match Tlb.translate t ~core:0 1000 ~speculative:false with
  | Tlb.Fault page -> Alcotest.(check int) "faults on unmapped" (Addr.page_of 1000) page
  | _ -> Alcotest.fail "expected fault");
  Tlb.map_page t (Addr.page_of 1000);
  (match Tlb.translate t ~core:0 1000 ~speculative:false with
  | Tlb.Translated extra ->
      Alcotest.(check int) "page walk cost" p.page_walk_latency extra
  | _ -> Alcotest.fail "expected walk");
  match Tlb.translate t ~core:0 1001 ~speculative:false with
  | Tlb.Translated extra -> Alcotest.(check int) "L1 TLB hit free" 0 extra
  | _ -> Alcotest.fail "expected hit"

let test_tlb_rock_ablation () =
  let p = Params.barcelona in
  let t = Tlb.create p ~n_cores:1 in
  Tlb.set_abort_on_tlb_miss t true;
  Tlb.map_page t 0;
  (* Miss, speculative: Rock-style abort. *)
  (match Tlb.translate t ~core:0 5 ~speculative:true with
  | Tlb.Tlb_miss_abort _ -> ()
  | _ -> Alcotest.fail "expected Rock-style abort");
  (* Non-speculative accesses are unaffected. *)
  match Tlb.translate t ~core:0 5 ~speculative:false with
  | Tlb.Translated _ -> ()
  | _ -> Alcotest.fail "expected translation"

let test_tlb_map_range () =
  let t = Tlb.create Params.barcelona ~n_cores:1 in
  Tlb.map_range t 500 100 (* crosses the page boundary at word 512 *);
  Alcotest.(check bool) "first page" true (Tlb.page_mapped t 0);
  Alcotest.(check bool) "second page" true (Tlb.page_mapped t 1);
  Alcotest.(check int) "exactly two" 2 (Tlb.mapped_pages t)

(* ------------------------------------------------------------------ *)
(* Hierarchy                                                           *)
(* ------------------------------------------------------------------ *)

let test_hierarchy_latencies () =
  let p = Params.barcelona in
  let h = Hierarchy.create p ~n_cores:2 in
  let lat1 = Hierarchy.access h ~core:0 ~line:7 ~write:false in
  Alcotest.(check int) "cold miss pays RAM" p.mem_latency lat1;
  let lat2 = Hierarchy.access h ~core:0 ~line:7 ~write:false in
  Alcotest.(check int) "then L1 hit" p.l1_latency lat2

let test_hierarchy_invalidation () =
  let p = Params.barcelona in
  let h = Hierarchy.create p ~n_cores:2 in
  ignore (Hierarchy.access h ~core:0 ~line:9 ~write:false);
  Alcotest.(check bool) "in core 0 L1" true (Hierarchy.line_in_l1 h ~core:0 ~line:9);
  let lat = Hierarchy.access h ~core:1 ~line:9 ~write:true in
  Alcotest.(check bool) "write probe costs extra" true (lat > p.l1_latency);
  Alcotest.(check bool) "invalidated from core 0" false
    (Hierarchy.line_in_l1 h ~core:0 ~line:9);
  Alcotest.(check int) "one invalidation" 1 (Hierarchy.invalidations h)

let test_hierarchy_remote_dirty_forward () =
  let p = Params.barcelona in
  let h = Hierarchy.create p ~n_cores:2 in
  ignore (Hierarchy.access h ~core:0 ~line:3 ~write:true);
  (* Core 1 read misses everywhere local but the line is dirty at core 0:
     cache-to-cache forward plus probe. *)
  let lat = Hierarchy.access h ~core:1 ~line:3 ~write:false in
  Alcotest.(check int) "forward + probe"
    (p.l3_latency + p.coherence_probe_latency) lat

let test_hierarchy_cross_socket () =
  let p = { Params.dual_socket with Params.ooo_factor = 1.0 } in
  let h = Hierarchy.create p ~n_cores:4 in
  (* Cores 0-1 on socket 0, cores 2-3 on socket 1. Core 0 dirties a line;
     a read from core 1 (same socket) is cheaper than from core 2. *)
  ignore (Hierarchy.access h ~core:0 ~line:5 ~write:true);
  let same = Hierarchy.access h ~core:1 ~line:5 ~write:false in
  ignore (Hierarchy.access h ~core:0 ~line:6 ~write:true);
  let cross = Hierarchy.access h ~core:2 ~line:6 ~write:false in
  Alcotest.(check int) "same-socket forward"
    (p.Params.l3_latency + p.Params.coherence_probe_latency) same;
  Alcotest.(check int) "cross-socket forward adds the hop"
    (p.Params.l3_latency + p.Params.coherence_probe_latency
    + p.Params.cross_socket_latency)
    cross;
  Alcotest.(check bool) "cross probes counted" true
    (Hierarchy.cross_socket_probes h >= 1)

let test_hierarchy_per_socket_l3 () =
  let p = Params.dual_socket in
  let h = Hierarchy.create p ~n_cores:4 in
  (* Core 0 warms its socket's L3; core 2 (other socket) still misses to
     RAM after its own L1/L2 are cold and its L3 was never filled. *)
  ignore (Hierarchy.access h ~core:0 ~line:9 ~write:false);
  let other = Hierarchy.access h ~core:2 ~line:9 ~write:false in
  Alcotest.(check int) "other socket misses to RAM" p.Params.mem_latency other

let test_hierarchy_evict_hook () =
  let p = Params.barcelona in
  let h = Hierarchy.create p ~n_cores:1 in
  let evicted = ref [] in
  Hierarchy.set_evict_hook h ~core:0 (fun l -> evicted := l :: !evicted);
  (* L1: 64KB/2-way/64B lines -> 512 sets. Lines l and l+512 share a set;
     three distinct lines in one set with assoc 2 must evict one. *)
  ignore (Hierarchy.access h ~core:0 ~line:0 ~write:false);
  ignore (Hierarchy.access h ~core:0 ~line:512 ~write:false);
  ignore (Hierarchy.access h ~core:0 ~line:1024 ~write:false);
  Alcotest.(check (list int)) "LRU line 0 displaced" [ 0 ] !evicted

(* ------------------------------------------------------------------ *)
(* Memsys                                                              *)
(* ------------------------------------------------------------------ *)

let with_thread f =
  (* Run [f] inside a single simulated thread and return (result, cycles). *)
  let e = Engine.create ~n_cores:2 in
  let result = ref None in
  Engine.spawn e ~core:0 (fun () -> result := Some (f e));
  Engine.run e;
  (Option.get !result, Engine.core_time e 0)

let test_memsys_load_store () =
  let (), cycles =
    with_thread (fun e ->
        let m = Memsys.create Params.barcelona e in
        Memsys.store m ~core:0 100 42;
        let v = Memsys.load m ~core:0 100 in
        Alcotest.(check int) "value round trip" 42 v)
  in
  Alcotest.(check bool) "time charged" true (cycles > 0)

let test_memsys_fault_serviced_outside_region () =
  let (), _ =
    with_thread (fun e ->
        let m = Memsys.create Params.barcelona e in
        (* No fault hook: the OS services the first touch transparently. *)
        let v = Memsys.load m ~core:0 9999 in
        Alcotest.(check int) "zero fill after fault" 0 v;
        Alcotest.(check int) "one fault serviced" 1 (Memsys.faults_serviced m))
  in
  ()

let test_memsys_fault_hook_raises () =
  let exception Region_abort of int in
  let (), _ =
    with_thread (fun e ->
        let m = Memsys.create Params.barcelona e in
        Memsys.set_fault_hook m (fun ~core:_ fault ->
            match fault with
            | Memsys.Unmapped page -> raise (Region_abort page)
            | Memsys.Tlb_miss -> ());
        (try
           ignore (Memsys.load m ~core:0 777777);
           Alcotest.fail "expected abort"
         with Region_abort page ->
           Alcotest.(check int) "page reported" (Addr.page_of 777777) page);
        Alcotest.(check int) "not serviced by OS" 0 (Memsys.faults_serviced m);
        (* The runtime then services it explicitly and the retry succeeds. *)
        Memsys.service_fault m ~page:(Addr.page_of 777777);
        Alcotest.(check int) "retry ok" 0 (Memsys.load m ~core:0 777777))
  in
  ()

let test_memsys_cas () =
  let (), _ =
    with_thread (fun e ->
        let m = Memsys.create Params.barcelona e in
        Memsys.poke m 50 5;
        Alcotest.(check bool) "cas fails on mismatch" false
          (Memsys.cas m ~core:0 50 ~expect:4 ~value:9);
        Alcotest.(check int) "unchanged" 5 (Memsys.peek m 50);
        Alcotest.(check bool) "cas succeeds" true
          (Memsys.cas m ~core:0 50 ~expect:5 ~value:9);
        Alcotest.(check int) "swapped" 9 (Memsys.peek m 50))
  in
  ()

let test_memsys_faa () =
  let (), _ =
    with_thread (fun e ->
        let m = Memsys.create Params.barcelona e in
        Memsys.poke m 60 10;
        Alcotest.(check int) "returns previous" 10 (Memsys.faa m ~core:0 60 3);
        Alcotest.(check int) "added" 13 (Memsys.peek m 60))
  in
  ()

let test_memsys_probe_hook_order () =
  (* The probe hook must fire before the access takes effect: it observes
     the pre-access RAM value. *)
  let (), _ =
    with_thread (fun e ->
        let m = Memsys.create Params.barcelona e in
        Memsys.poke m 80 1;
        let seen = ref (-1) in
        Memsys.set_probe_hook m (fun ~requester:_ ~line ~write ->
            if line = Addr.line_of 80 && write then seen := Memsys.peek m 80);
        Memsys.store m ~core:0 80 2;
        Alcotest.(check int) "hook saw old value" 1 !seen)
  in
  ()

let test_memsys_hot_cold_timing () =
  let (), _ =
    with_thread (fun e ->
        let m = Memsys.create Params.barcelona e in
        Memsys.poke m 200 0;
        let t0 = Engine.core_time e 0 in
        ignore (Memsys.load m ~core:0 200);
        let cold = Engine.core_time e 0 - t0 in
        let t1 = Engine.core_time e 0 in
        ignore (Memsys.load m ~core:0 200);
        let hot = Engine.core_time e 0 - t1 in
        Alcotest.(check bool)
          (Printf.sprintf "cold (%d) slower than hot (%d)" cold hot)
          true (cold > hot))
  in
  ()

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "cache"
    [
      ( "cache",
        [
          Alcotest.test_case "hit/miss" `Quick test_cache_hit_miss;
          Alcotest.test_case "LRU eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "set isolation" `Quick test_cache_set_isolation;
          Alcotest.test_case "invalidate" `Quick test_cache_invalidate;
          q prop_cache_vs_reference_lru;
        ] );
      ( "tlb",
        [
          Alcotest.test_case "fault then hit" `Quick test_tlb_fault_then_hit;
          Alcotest.test_case "rock ablation" `Quick test_tlb_rock_ablation;
          Alcotest.test_case "map range" `Quick test_tlb_map_range;
        ] );
      ( "hierarchy",
        [
          Alcotest.test_case "latencies" `Quick test_hierarchy_latencies;
          Alcotest.test_case "invalidation" `Quick test_hierarchy_invalidation;
          Alcotest.test_case "dirty forward" `Quick test_hierarchy_remote_dirty_forward;
          Alcotest.test_case "cross socket" `Quick test_hierarchy_cross_socket;
          Alcotest.test_case "per-socket L3" `Quick test_hierarchy_per_socket_l3;
          Alcotest.test_case "evict hook" `Quick test_hierarchy_evict_hook;
        ] );
      ( "memsys",
        [
          Alcotest.test_case "load/store" `Quick test_memsys_load_store;
          Alcotest.test_case "fault service" `Quick test_memsys_fault_serviced_outside_region;
          Alcotest.test_case "fault hook" `Quick test_memsys_fault_hook_raises;
          Alcotest.test_case "cas" `Quick test_memsys_cas;
          Alcotest.test_case "faa" `Quick test_memsys_faa;
          Alcotest.test_case "probe order" `Quick test_memsys_probe_hook_order;
          Alcotest.test_case "hot vs cold" `Quick test_memsys_hot_cold_timing;
        ] );
    ]
