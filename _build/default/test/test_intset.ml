(* Tests for the IntegerSet driver: size consistency, determinism, and
   the paper's qualitative orderings. *)

module Tm = Asf_tm_rt.Tm
module Stats = Asf_tm_rt.Stats
module Variant = Asf_core.Variant
module Intset = Asf_intset.Intset

let quick structure =
  { (Intset.default_cfg structure) with Intset.txns_per_thread = 300; range = 256 }

let test_all_structures_all_modes () =
  List.iter
    (fun structure ->
      List.iter
        (fun (mname, mode, threads) ->
          let tm = Tm.default_config mode ~n_cores:threads in
          let r = Intset.run tm ~threads (quick structure) in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s size consistent" (Intset.structure_name structure) mname)
            true r.Intset.size_ok;
          Alcotest.(check int)
            (Printf.sprintf "%s/%s txns" (Intset.structure_name structure) mname)
            (threads * 300)
            (Stats.commits r.Intset.stats))
        [
          ("llb8", Tm.Asf_mode Variant.llb8, 2);
          ("llb256", Tm.Asf_mode Variant.llb256, 4);
          ("llb8-l1", Tm.Asf_mode Variant.llb8_l1, 2);
          ("llb256-l1", Tm.Asf_mode Variant.llb256_l1, 4);
          ("stm", Tm.Stm_mode, 4);
          ("seq", Tm.Seq_mode, 1);
        ])
    [ Intset.Linked_list; Intset.Skip_list; Intset.Rb_tree; Intset.Hash_set ]

let test_early_release_helps_llb8_list () =
  (* The Fig. 8 effect: with a 128-element list, LLB-8 without early
     release runs serially; with early release it stays in hardware and
     achieves higher throughput. *)
  let run er =
    let cfg =
      { (Intset.default_cfg Intset.Linked_list) with
        Intset.range = 256; txns_per_thread = 300; early_release = er }
    in
    let tm = Tm.default_config (Tm.Asf_mode Variant.llb8) ~n_cores:4 in
    Intset.run tm ~threads:4 cfg
  in
  let plain = run false and er = run true in
  Alcotest.(check bool) "ER size ok" true er.Intset.size_ok;
  Alcotest.(check bool)
    (Printf.sprintf "ER fewer serial (%d < %d)"
       (Stats.serial_commits er.Intset.stats)
       (Stats.serial_commits plain.Intset.stats))
    true
    (Stats.serial_commits er.Intset.stats < Stats.serial_commits plain.Intset.stats);
  Alcotest.(check bool)
    (Printf.sprintf "ER faster (%.2f > %.2f)" er.Intset.throughput_tx_per_us
       plain.Intset.throughput_tx_per_us)
    true
    (er.Intset.throughput_tx_per_us > plain.Intset.throughput_tx_per_us)

let test_asf_beats_stm_single_thread () =
  List.iter
    (fun structure ->
      let run mode =
        let tm = Tm.default_config mode ~n_cores:1 in
        (Intset.run tm ~threads:1 (quick structure)).Intset.throughput_tx_per_us
      in
      let asf = run (Tm.Asf_mode Variant.llb256) and stm = run Tm.Stm_mode in
      Alcotest.(check bool)
        (Printf.sprintf "%s: asf (%.2f) > stm (%.2f)"
           (Intset.structure_name structure) asf stm)
        true (asf > stm))
    [ Intset.Linked_list; Intset.Skip_list; Intset.Rb_tree; Intset.Hash_set ]

let test_deterministic () =
  let run () =
    let tm = Tm.default_config (Tm.Asf_mode Variant.llb256) ~n_cores:4 in
    (Intset.run tm ~threads:4 (quick Intset.Rb_tree)).Intset.cycles
  in
  Alcotest.(check int) "same cycles" (run ()) (run ())

let () =
  Alcotest.run "intset"
    [
      ( "correctness",
        [
          Alcotest.test_case "all structures/modes" `Slow test_all_structures_all_modes;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
        ] );
      ( "paper shapes",
        [
          Alcotest.test_case "early release" `Quick test_early_release_helps_llb8_list;
          Alcotest.test_case "asf > stm" `Slow test_asf_beats_stm_single_thread;
        ] );
    ]
