(* Tests for the transactional data structures: sequential equivalence
   against OCaml's Set/Map (qcheck), red-black-tree invariants, and
   concurrent correctness under all TM modes (including early release). *)

module Prng = Asf_engine.Prng
module Variant = Asf_core.Variant
module Tm = Asf_tm_rt.Tm
module Ops = Asf_dstruct.Ops
module Tlist = Asf_dstruct.Tlist
module Tskiplist = Asf_dstruct.Tskiplist
module Trbtree = Asf_dstruct.Trbtree
module Thashmap = Asf_dstruct.Thashmap
module Thashset = Asf_dstruct.Thashset
module Tqueue = Asf_dstruct.Tqueue
module IntSet = Set.Make (Int)
module IntMap = Map.Make (Int)

(* A sequential-mode system: setup ops need a live allocator but no
   engine thread. *)
let setup_ops () =
  let sys = Tm.create (Tm.default_config Tm.Seq_mode ~n_cores:1) in
  Ops.setup sys

type set_ops = {
  name : string;
  contains : Ops.t -> int -> bool;
  add : Ops.t -> int -> bool;
  remove : Ops.t -> int -> bool;
  elements : Ops.t -> int list;
}

let list_set o =
  let t = Tlist.create o in
  {
    name = "linked-list";
    contains = (fun o k -> Tlist.contains o t k);
    add = (fun o k -> Tlist.add o t k);
    remove = (fun o k -> Tlist.remove o t k);
    elements = (fun o -> Tlist.to_list o t);
  }

let skiplist_set o =
  let t = Tskiplist.create o () in
  {
    name = "skip-list";
    contains = (fun o k -> Tskiplist.contains o t k);
    add = (fun o k -> Tskiplist.add o t k);
    remove = (fun o k -> Tskiplist.remove o t k);
    elements = (fun o -> Tskiplist.to_list o t);
  }

let rbtree_set o =
  let t = Trbtree.create o in
  {
    name = "rb-tree";
    contains = (fun o k -> Trbtree.mem o t k);
    add = (fun o k -> Trbtree.insert o t k 0);
    remove = (fun o k -> Trbtree.remove o t k);
    elements = (fun o -> List.map fst (Trbtree.to_list o t));
  }

let hashset_set o =
  let t = Thashset.create o ~buckets:64 in
  {
    name = "hash-set";
    contains = (fun o k -> Thashset.contains o t k);
    add = (fun o k -> Thashset.add o t k);
    remove = (fun o k -> Thashset.remove o t k);
    elements = (fun o -> List.sort compare (Thashset.to_list o t));
  }

(* ------------------------------------------------------------------ *)
(* Sequential equivalence with Set.Make(Int)                            *)
(* ------------------------------------------------------------------ *)

type op = Add of int | Remove of int | Contains of int

let op_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun k -> Add k) (int_range 0 200);
        map (fun k -> Remove k) (int_range 0 200);
        map (fun k -> Contains k) (int_range 0 200);
      ])

let arb_ops = QCheck.make ~print:(fun l -> string_of_int (List.length l) ^ " ops")
    QCheck.Gen.(list_size (int_range 0 300) op_gen)

let sequential_matches_model mk_set ops =
  let o = setup_ops () in
  let s = mk_set o in
  let model = ref IntSet.empty in
  List.for_all
    (fun op ->
      match op with
      | Add k ->
          let expected = not (IntSet.mem k !model) in
          model := IntSet.add k !model;
          s.add o k = expected
      | Remove k ->
          let expected = IntSet.mem k !model in
          model := IntSet.remove k !model;
          s.remove o k = expected
      | Contains k -> s.contains o k = IntSet.mem k !model)
    ops
  && s.elements o = IntSet.elements !model

let prop_set_matches name mk_set =
  QCheck.Test.make ~name:(name ^ " matches Set model") ~count:100 arb_ops
    (sequential_matches_model mk_set)

let prop_rbtree_invariants =
  QCheck.Test.make ~name:"rb-tree invariants hold after random ops" ~count:100
    arb_ops
    (fun ops ->
      let o = setup_ops () in
      let t = Trbtree.create o in
      List.iter
        (fun op ->
          match op with
          | Add k -> ignore (Trbtree.insert o t k (k * 2))
          | Remove k -> ignore (Trbtree.remove o t k)
          | Contains k -> ignore (Trbtree.mem o t k))
        ops;
      match Trbtree.check_invariants o t with
      | Ok () -> true
      | Error msg -> QCheck.Test.fail_report msg)

let prop_hashmap_matches_model =
  QCheck.Test.make ~name:"hash map matches Map model" ~count:100 arb_ops
    (fun ops ->
      let o = setup_ops () in
      let t = Thashmap.create o ~buckets:32 in
      let model = ref IntMap.empty in
      List.for_all
        (fun op ->
          match op with
          | Add k ->
              Thashmap.put o t k (k * 3);
              model := IntMap.add k (k * 3) !model;
              Thashmap.get o t k = Some (k * 3)
          | Remove k ->
              let expected = IntMap.mem k !model in
              model := IntMap.remove k !model;
              Thashmap.remove o t k = expected
          | Contains k -> Thashmap.get o t k = IntMap.find_opt k !model)
        ops
      && Thashmap.size o t = IntMap.cardinal !model)

let prop_queue_fifo =
  QCheck.Test.make ~name:"queue is FIFO" ~count:100
    QCheck.(list (int_range 0 1000))
    (fun xs ->
      let o = setup_ops () in
      let q = Tqueue.create o in
      List.iter (fun x -> Tqueue.enqueue o q x) xs;
      let rec drain acc =
        match Tqueue.dequeue o q with
        | Some v -> drain (v :: acc)
        | None -> List.rev acc
      in
      drain [] = xs && Tqueue.is_empty o q)

let test_rbtree_update () =
  let o = setup_ops () in
  let t = Trbtree.create o in
  Alcotest.(check bool) "fresh insert" true (Trbtree.insert o t 5 50);
  Alcotest.(check bool) "duplicate rejected" false (Trbtree.insert o t 5 99);
  Alcotest.(check (option int)) "value kept" (Some 50) (Trbtree.find o t 5);
  Trbtree.update o t 5 77;
  Alcotest.(check (option int)) "upsert" (Some 77) (Trbtree.find o t 5)

let test_skiplist_interleave_queue () =
  let o = setup_ops () in
  let q = Tqueue.create o in
  Alcotest.(check (option int)) "empty" None (Tqueue.dequeue o q);
  Tqueue.enqueue o q 1;
  Tqueue.enqueue o q 2;
  Alcotest.(check (option int)) "fifo 1" (Some 1) (Tqueue.dequeue o q);
  Tqueue.enqueue o q 3;
  Alcotest.(check (option int)) "fifo 2" (Some 2) (Tqueue.dequeue o q);
  Alcotest.(check (option int)) "fifo 3" (Some 3) (Tqueue.dequeue o q);
  Alcotest.(check (option int)) "empty again" None (Tqueue.dequeue o q)

(* ------------------------------------------------------------------ *)
(* Concurrent correctness                                               *)
(* ------------------------------------------------------------------ *)

(* Run [per_thread] random ops per thread on a shared structure and check
   the linearizability-necessary balance equation per key:
   successful adds - successful removes = final membership. *)
let concurrent_balance mode ~early_release ~structure () =
  let n_cores = 4 and per_thread = 60 and range = 32 in
  let sys = Tm.create (Tm.default_config mode ~n_cores) in
  let so = Ops.setup sys in
  let handle_root, ops_of, contains, add, remove, elements =
    match structure with
    | `List ->
        let t = Tlist.create so in
        ( Tlist.root t,
          (fun ctx -> if early_release then Ops.tx_er ctx else Ops.tx ctx),
          (fun o k -> Tlist.contains o t k),
          (fun o k -> Tlist.add o t k),
          (fun o k -> Tlist.remove o t k),
          fun () -> Tlist.to_list so t )
    | `Hash ->
        let t = Thashset.create so ~buckets:64 in
        ( Thashset.meta t,
          (fun ctx -> Ops.tx ctx),
          (fun o k -> Thashset.contains o t k),
          (fun o k -> Thashset.add o t k),
          (fun o k -> Thashset.remove o t k),
          fun () -> Thashset.to_list so t )
    | `Rb ->
        let t = Trbtree.create so in
        ( Trbtree.meta t,
          (fun ctx -> Ops.tx ctx),
          (fun o k -> Trbtree.mem o t k),
          (fun o k -> Trbtree.insert o t k 1),
          (fun o k -> Trbtree.remove o t k),
          fun () -> List.map fst (Trbtree.to_list so t) )
    | `Skip ->
        let t = Tskiplist.create so () in
        ( Tskiplist.root t,
          (fun ctx -> Ops.tx ctx),
          (fun o k -> Tskiplist.contains o t k),
          (fun o k -> Tskiplist.add o t k),
          (fun o k -> Tskiplist.remove o t k),
          fun () -> Tskiplist.to_list so t )
  in
  ignore handle_root;
  let adds = Array.make range 0 and removes = Array.make range 0 in
  let record arr k = arr.(k) <- arr.(k) + 1 in
  List.init n_cores (fun core ->
      Tm.spawn sys ~core (fun ctx ->
          let rng = Prng.create (1000 + core) in
          let o = ops_of ctx in
          for _ = 1 to per_thread do
            let k = Prng.int rng range in
            match Prng.int rng 3 with
            | 0 ->
                if Tm.atomic ctx (fun () -> add o k) then record adds k
            | 1 ->
                if Tm.atomic ctx (fun () -> remove o k) then record removes k
            | _ -> ignore (Tm.atomic ctx (fun () -> contains o k))
          done))
  |> ignore;
  Tm.run sys;
  let final = elements () in
  for k = 0 to range - 1 do
    let member = List.mem k final in
    let balance = adds.(k) - removes.(k) in
    Alcotest.(check int)
      (Printf.sprintf "key %d balance" k)
      (if member then 1 else 0)
      balance
  done;
  (* Structural sanity. *)
  match structure with
  | `List | `Skip ->
      let sorted = List.sort compare final in
      Alcotest.(check (list int)) "sorted, no duplicates" sorted final
  | `Rb -> (
      let t = Trbtree.handle_of_root (List.hd [ handle_root ]) in
      match Trbtree.check_invariants so t with
      | Ok () -> ()
      | Error m -> Alcotest.fail m)
  | `Hash -> ()

let concurrent_cases =
  [
    ("list asf-llb256", Tm.Asf_mode Variant.llb256, false, `List);
    ("list asf-llb8 (serial fallback)", Tm.Asf_mode Variant.llb8, false, `List);
    ("list asf-llb8 early-release", Tm.Asf_mode Variant.llb8, true, `List);
    ("list asf-llb256-l1 early-release", Tm.Asf_mode Variant.llb256_l1, true, `List);
    ("list stm", Tm.Stm_mode, false, `List);
    ("hash asf-llb256", Tm.Asf_mode Variant.llb256, false, `Hash);
    ("hash stm", Tm.Stm_mode, false, `Hash);
    ("rbtree asf-llb256", Tm.Asf_mode Variant.llb256, false, `Rb);
    ("rbtree asf-llb8-l1", Tm.Asf_mode Variant.llb8_l1, false, `Rb);
    ("rbtree stm", Tm.Stm_mode, false, `Rb);
    ("skiplist asf-llb256", Tm.Asf_mode Variant.llb256, false, `Skip);
    ("skiplist stm", Tm.Stm_mode, false, `Skip);
  ]

(* ------------------------------------------------------------------ *)
(* Concurrent queue integrity                                          *)
(* ------------------------------------------------------------------ *)

let test_concurrent_queue_integrity () =
  (* 2 producers enqueue tagged sequences while 2 consumers drain: every
     item is consumed exactly once and each producer's items come out in
     order. *)
  let per_producer = 120 in
  let sys = Tm.create (Tm.default_config (Tm.Asf_mode Variant.llb256) ~n_cores:4) in
  let so = Ops.setup sys in
  let q = Tqueue.create so in
  let produced = 2 * per_producer in
  let consumed = Array.make 4 [] in
  let done_producing = ref 0 in
  let producer tag ctx =
    let o = Ops.tx ctx in
    for i = 0 to per_producer - 1 do
      Tm.atomic ctx (fun () -> Tqueue.enqueue o q ((tag * 1000) + i))
    done;
    done_producing := !done_producing + 1
  in
  let consumer slot ctx =
    let o = Ops.tx ctx in
    let running = ref true in
    while !running do
      match Tm.atomic ctx (fun () -> Tqueue.dequeue o q) with
      | Some v -> consumed.(slot) <- v :: consumed.(slot)
      | None ->
          if !done_producing = 2 then running := false else Tm.work ctx 500
    done
  in
  ignore (Tm.spawn sys ~core:0 (producer 1));
  ignore (Tm.spawn sys ~core:1 (producer 2));
  ignore (Tm.spawn sys ~core:2 (consumer 2));
  ignore (Tm.spawn sys ~core:3 (consumer 3));
  Tm.run sys;
  let all = List.concat [ consumed.(2); consumed.(3) ] in
  Alcotest.(check int) "every item consumed once" produced (List.length all);
  Alcotest.(check int) "no duplicates" produced
    (List.length (List.sort_uniq compare all));
  (* Per-producer FIFO: within each consumer's stream (which is in
     reverse dequeue order), a producer's items must be descending. *)
  List.iter
    (fun stream ->
      List.iter
        (fun tag ->
          let mine = List.filter (fun v -> v / 1000 = tag) stream in
          let sorted_desc = List.sort (fun a b -> compare b a) mine in
          Alcotest.(check (list int))
            (Printf.sprintf "producer %d order" tag)
            sorted_desc mine)
        [ 1; 2 ])
    [ consumed.(2); consumed.(3) ]

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "dstruct"
    [
      ( "sequential",
        [
          q (prop_set_matches "linked-list" list_set);
          q (prop_set_matches "skip-list" skiplist_set);
          q (prop_set_matches "rb-tree" rbtree_set);
          q (prop_set_matches "hash-set" hashset_set);
          q prop_rbtree_invariants;
          q prop_hashmap_matches_model;
          q prop_queue_fifo;
          Alcotest.test_case "rb-tree upsert" `Quick test_rbtree_update;
          Alcotest.test_case "queue interleave" `Quick test_skiplist_interleave_queue;
        ] );
      ( "concurrent",
        Alcotest.test_case "queue integrity" `Quick test_concurrent_queue_integrity
        :: List.map
             (fun (name, mode, er, structure) ->
               Alcotest.test_case name `Quick
                 (concurrent_balance mode ~early_release:er ~structure))
             concurrent_cases );
    ]
