(* Cross-mode equivalence: a single-threaded workload must produce the
   identical final structure under sequential execution, every ASF
   variant, the phased hybrid, and the STM — aborts (page faults from
   fresh allocation pages) and fallbacks may differ, but re-execution
   must be transparent.

   The skip list is excluded by design: its level choice draws from the
   context PRNG inside the transaction, so a retried insertion legally
   picks a different level (same set contents, different shape — checked
   separately). *)

module Tm = Asf_tm_rt.Tm
module Variant = Asf_core.Variant
module Prng = Asf_engine.Prng
module Ops = Asf_dstruct.Ops
module Tlist = Asf_dstruct.Tlist
module Trbtree = Asf_dstruct.Trbtree
module Thashset = Asf_dstruct.Thashset
module Tskiplist = Asf_dstruct.Tskiplist

let modes =
  [
    ("seq", Tm.Seq_mode);
    ("llb8", Tm.Asf_mode Variant.llb8);
    ("llb256", Tm.Asf_mode Variant.llb256);
    ("llb8-l1", Tm.Asf_mode Variant.llb8_l1);
    ("llb256-l1", Tm.Asf_mode Variant.llb256_l1);
    ("cache-based", Tm.Asf_mode Variant.cache_based);
    ("phased", Tm.Phased_mode Variant.llb8);
    ("stm", Tm.Stm_mode);
  ]

type structure = L | R | H

let run_workload mode structure ~seed ~range ~txns =
  let sys = Tm.create (Tm.default_config mode ~n_cores:1) in
  let so = Ops.setup sys in
  let create, apply, elements =
    match structure with
    | L ->
        let t = Tlist.create so in
        ( (fun () -> ()),
          (fun o -> function
            | `Add k -> ignore (Tlist.add o t k)
            | `Remove k -> ignore (Tlist.remove o t k)
            | `Find k -> ignore (Tlist.contains o t k)),
          fun () -> Tlist.to_list so t )
    | R ->
        let t = Trbtree.create so in
        ( (fun () -> ()),
          (fun o -> function
            | `Add k -> ignore (Trbtree.insert o t k k)
            | `Remove k -> ignore (Trbtree.remove o t k)
            | `Find k -> ignore (Trbtree.mem o t k)),
          fun () -> List.map fst (Trbtree.to_list so t) )
    | H ->
        let t = Thashset.create so ~buckets:128 in
        ( (fun () -> ()),
          (fun o -> function
            | `Add k -> ignore (Thashset.add o t k)
            | `Remove k -> ignore (Thashset.remove o t k)
            | `Find k -> ignore (Thashset.contains o t k)),
          fun () -> List.sort compare (Thashset.to_list so t) )
  in
  create ();
  ignore
    (Tm.spawn sys ~core:0 (fun ctx ->
         let o = Ops.tx ctx in
         let rng = Prng.create seed in
         for _ = 1 to txns do
           (* Drawn OUTSIDE the transaction, as DTMC-compiled code would:
              retries must not change the operation. *)
           let k = Prng.int rng range in
           let op =
             match Prng.int rng 3 with
             | 0 -> `Add k
             | 1 -> `Remove k
             | _ -> `Find k
           in
           Tm.atomic ctx (fun () -> apply o op)
         done));
  Tm.run sys;
  elements ()

let prop_cross_mode structure name =
  QCheck.Test.make ~name:(name ^ " identical across all modes") ~count:20
    QCheck.(pair (int_range 1 10_000) (int_range 2 300))
    (fun (seed, range) ->
      let reference = run_workload Tm.Seq_mode structure ~seed ~range ~txns:120 in
      List.for_all
        (fun (mname, mode) ->
          let got = run_workload mode structure ~seed ~range ~txns:120 in
          if got = reference then true
          else
            QCheck.Test.fail_reportf "%s diverged: %d vs %d elements" mname
              (List.length got) (List.length reference))
        modes)

let prop_skiplist_same_membership =
  (* The skip list must agree on MEMBERSHIP across modes even though
     retried level draws may change its internal shape. *)
  QCheck.Test.make ~name:"skip list membership identical across modes" ~count:10
    QCheck.(pair (int_range 1 10_000) (int_range 2 300))
    (fun (seed, range) ->
      let run mode =
        let sys = Tm.create (Tm.default_config mode ~n_cores:1) in
        let so = Ops.setup sys in
        let t = Tskiplist.create so () in
        ignore
          (Tm.spawn sys ~core:0 (fun ctx ->
               let o = Ops.tx ctx in
               let rng = Prng.create seed in
               for _ = 1 to 120 do
                 let k = Prng.int rng range in
                 let add = Prng.bool rng in
                 Tm.atomic ctx (fun () ->
                     if add then ignore (Tskiplist.add o t k)
                     else ignore (Tskiplist.remove o t k))
               done));
        Tm.run sys;
        Tskiplist.to_list so t
      in
      let reference = run Tm.Seq_mode in
      List.for_all (fun (_, mode) -> run mode = reference) modes)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "equivalence"
    [
      ( "cross-mode",
        [
          q (prop_cross_mode L "linked list");
          q (prop_cross_mode R "rb-tree");
          q (prop_cross_mode H "hash set");
          q prop_skiplist_same_membership;
        ] );
    ]
