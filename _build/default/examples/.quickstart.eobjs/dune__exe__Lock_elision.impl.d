examples/lock_elision.ml: Asf_core Asf_dstruct Asf_engine Asf_machine Asf_tm_rt List Printf
