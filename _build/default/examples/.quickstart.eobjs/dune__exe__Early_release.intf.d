examples/early_release.mli:
