examples/dcas.mli:
