examples/quickstart.mli:
