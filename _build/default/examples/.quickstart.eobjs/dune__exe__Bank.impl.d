examples/bank.ml: Array Asf_core Asf_engine Asf_machine Asf_mem Asf_tm_rt List Printf
