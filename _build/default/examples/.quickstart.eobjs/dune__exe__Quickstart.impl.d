examples/quickstart.ml: Asf_core Asf_machine Asf_tm_rt List Printf
