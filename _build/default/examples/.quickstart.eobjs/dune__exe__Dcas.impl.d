examples/dcas.ml: Array Asf_cache Asf_core Asf_engine Asf_machine Printf
