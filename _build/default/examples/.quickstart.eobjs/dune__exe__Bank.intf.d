examples/bank.mli:
