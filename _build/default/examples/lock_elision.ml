(* Lock elision: the paper's story for existing lock-based software.
   A hash table guarded by ONE global spin lock normally serialises all
   threads; eliding the lock with ASF lets non-conflicting critical
   sections commit in parallel, while a legacy thread that really takes
   the lock still aborts every elided section in flight (requester-wins
   on the subscribed lock word).

   We compare simulated time for 4 threads hammering the table:
     (a) conventional locking,
     (b) elided locking,
   and run a mixed mode to show correctness when both coexist. *)

module Tm = Asf_tm_rt.Tm
module Elision = Asf_tm_rt.Elision
module Stats = Asf_tm_rt.Stats
module Variant = Asf_core.Variant
module Params = Asf_machine.Params
module Prng = Asf_engine.Prng
module Ops = Asf_dstruct.Ops
module Thashmap = Asf_dstruct.Thashmap

let n_threads = 4

let ops_per_thread = 400

type style = Locked | Elided | Mixed

let run style =
  let cfg = Tm.default_config (Tm.Asf_mode Variant.llb256) ~n_cores:n_threads in
  let sys = Tm.create cfg in
  let so = Ops.setup sys in
  let table = Thashmap.create so ~buckets:256 in
  let lock = Elision.make sys in
  let ctxs =
    List.init n_threads (fun core ->
        Tm.spawn sys ~core (fun ctx ->
            let o = Ops.tx ctx in
            (* A dedicated key stream: the context's own PRNG also feeds
               back-off jitter, which would make the key sequences differ
               across locking styles. *)
            let rng = Prng.create (1000 + core) in
            let conventional =
              match style with Locked -> true | Elided -> false | Mixed -> core = 0
            in
            for _ = 1 to ops_per_thread do
              let k = Prng.int rng 512 in
              if conventional then begin
                (* Legacy code path: really take the lock. *)
                Elision.acquire ctx lock;
                Thashmap.put o table k (k * 3);
                Elision.release ctx lock
              end
              else
                Elision.with_lock ctx lock (fun () ->
                    Thashmap.put o table k (k * 3))
            done))
  in
  Tm.run sys;
  let agg = Stats.create () in
  List.iter (fun c -> Stats.add (Tm.stats c) ~into:agg) ctxs;
  (Params.cycles_to_us cfg.Tm.params (Tm.makespan sys), agg, Thashmap.size so table)

let () =
  Printf.printf "Lock elision: %d threads x %d guarded hash-table updates\n\n"
    n_threads ops_per_thread;
  let t_locked, _, n1 = run Locked in
  let t_elided, stats, n2 = run Elided in
  let t_mixed, _, n3 = run Mixed in
  Printf.printf "  conventional lock : %8.1f us (table size %d)\n" t_locked n1;
  Printf.printf "  elided lock       : %8.1f us (table size %d, aborts %d, serial %d)\n"
    t_elided n2 (Stats.total_aborts stats) (Stats.serial_commits stats);
  Printf.printf "  mixed (1 legacy)  : %8.1f us (table size %d)\n" t_mixed n3;
  Printf.printf "\n  elision speedup over the global lock: %.2fx\n"
    (t_locked /. t_elided);
  assert (n1 = n2 && n2 = n3);
  assert (t_elided < t_locked);
  print_endline "OK"
