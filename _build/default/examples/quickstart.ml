(* Quickstart: the paper's Fig. 2 — a shared counter incremented inside an
   atomic block — executed on the full stack: the `Tm.atomic` block below
   is what DTMC would generate for

       __tm_atomic { cntr = cntr + 5; }

   We run it on 4 simulated cores under ASF (LLB-256) with a serial
   fallback, then under the TinySTM baseline, and compare simulated time
   and abort behaviour. *)

module Tm = Asf_tm_rt.Tm
module Stats = Asf_tm_rt.Stats
module Variant = Asf_core.Variant
module Params = Asf_machine.Params

let increments_per_thread = 500

let n_threads = 4

let run_mode name mode =
  let cfg = Tm.default_config mode ~n_cores:n_threads in
  let sys = Tm.create cfg in
  (* Shared counter in simulated memory, initialised during (untimed)
     setup. *)
  let cntr = Tm.setup_alloc sys 1 in
  Tm.setup_poke sys cntr 0;
  let ctxs =
    List.init n_threads (fun core ->
        Tm.spawn sys ~core (fun ctx ->
            for _ = 1 to increments_per_thread do
              Tm.atomic ctx (fun () ->
                  let v = Tm.load ctx cntr in
                  Tm.store ctx cntr (v + 5))
            done))
  in
  Tm.run sys;
  let agg = Stats.create () in
  List.iter (fun c -> Stats.add (Tm.stats c) ~into:agg) ctxs;
  let expected = 5 * n_threads * increments_per_thread in
  let got = Tm.setup_peek sys cntr in
  Printf.printf
    "%-10s counter=%d (expected %d) time=%.1f us, commits=%d, aborts=%d, serial=%d\n"
    name got expected
    (Params.cycles_to_us cfg.Tm.params (Tm.makespan sys))
    (Stats.commits agg) (Stats.total_aborts agg) (Stats.serial_commits agg);
  assert (got = expected)

let () =
  Printf.printf
    "Fig. 2 quickstart: %d threads x %d atomic increments of a shared counter\n\n"
    n_threads increments_per_thread;
  run_mode "ASF" (Tm.Asf_mode Variant.llb256);
  run_mode "TinySTM" Tm.Stm_mode;
  print_newline ();
  print_endline
    "The ASF path runs each block as a hardware speculative region; conflicting\n\
     increments abort (requester-wins) and retry with exponential back-off.\n\
     The same unmodified block runs under the software TM by switching modes.";
  print_endline "OK"
