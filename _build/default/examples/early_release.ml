(* Early release (the paper's Fig. 8 and Section 2.2): walking a linked
   list hand-over-hand with RELEASE keeps only a two-node window in the
   read set, so even the smallest ASF implementation (LLB-8) can traverse
   lists of hundreds of nodes in hardware instead of falling back to the
   serial-irrevocable path.

   This example runs the same sorted-list workload with and without early
   release on LLB-8 and prints the difference in serial fallbacks,
   protected-line pressure, and throughput. *)

module Tm = Asf_tm_rt.Tm
module Stats = Asf_tm_rt.Stats
module Variant = Asf_core.Variant
module Params = Asf_machine.Params
module Prng = Asf_engine.Prng
module Ops = Asf_dstruct.Ops
module Tlist = Asf_dstruct.Tlist

let list_size = 100

let txns_per_thread = 300

let n_threads = 4

let run ~early_release =
  let cfg = Tm.default_config (Tm.Asf_mode Variant.llb8) ~n_cores:n_threads in
  let sys = Tm.create cfg in
  let so = Ops.setup sys in
  let list = Tlist.create so in
  let rng = Prng.create 99 in
  let added = ref 0 in
  while !added < list_size do
    if Tlist.add so list (Prng.int rng (2 * list_size)) then incr added
  done;
  let ctxs =
    List.init n_threads (fun core ->
        Tm.spawn sys ~core (fun ctx ->
            let o = if early_release then Ops.tx_er ctx else Ops.tx ctx in
            let rng = Tm.prng ctx in
            for _ = 1 to txns_per_thread do
              let k = Prng.int rng (2 * list_size) in
              match Prng.int rng 10 with
              | 0 -> ignore (Tm.atomic ctx (fun () -> Tlist.add o list k))
              | 1 -> ignore (Tm.atomic ctx (fun () -> Tlist.remove o list k))
              | _ -> ignore (Tm.atomic ctx (fun () -> Tlist.contains o list k))
            done))
  in
  Tm.run sys;
  let agg = Stats.create () in
  List.iter (fun c -> Stats.add (Tm.stats c) ~into:agg) ctxs;
  let txns = n_threads * txns_per_thread in
  let us = Params.cycles_to_us cfg.Tm.params (Tm.makespan sys) in
  Printf.printf
    "  %-18s throughput=%6.2f tx/us, hardware commits=%4d, serial fallbacks=%4d\n"
    (if early_release then "with RELEASE" else "without RELEASE")
    (float_of_int txns /. us)
    (Stats.commits agg - Stats.serial_commits agg)
    (Stats.serial_commits agg)

let () =
  Printf.printf
    "Early release on LLB-8: %d-node sorted list, %d threads, 20%% updates\n\n"
    list_size n_threads;
  run ~early_release:false;
  run ~early_release:true;
  print_newline ();
  print_endline
    "Without RELEASE every traversal protects ~50 lines and overflows the\n\
     8-entry LLB, forcing the serial-irrevocable fallback; hand-over-hand\n\
     release keeps the read set at two lines and stays in hardware.";
  print_endline "OK"
