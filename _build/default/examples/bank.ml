(* A bank: random transfers between accounts plus periodic full-balance
   audits, a classic TM scenario mixing small update transactions with
   large read-only ones. The audit reads every account, so it exercises
   ASF capacity: on LLB-8 audits fall back to serial-irrevocable mode,
   on LLB-256 they run in hardware; all modes preserve the invariant that
   the total balance never changes. *)

module Tm = Asf_tm_rt.Tm
module Stats = Asf_tm_rt.Stats
module Prng = Asf_engine.Prng
module Variant = Asf_core.Variant
module Params = Asf_machine.Params
module Addr = Asf_mem.Addr

let n_accounts = 64

let initial_balance = 1000

let txns_per_thread = 400

let n_threads = 4

let run_mode name mode =
  let cfg = Tm.default_config mode ~n_cores:n_threads in
  let sys = Tm.create cfg in
  let accounts = Array.init n_accounts (fun _ -> Tm.setup_alloc sys 1) in
  Array.iter (fun a -> Tm.setup_poke sys a initial_balance) accounts;
  let audit_failures = ref 0 in
  let ctxs =
    List.init n_threads (fun core ->
        Tm.spawn sys ~core (fun ctx ->
            let rng = Tm.prng ctx in
            for i = 1 to txns_per_thread do
              if i mod 50 = 0 then begin
                (* Audit: a large read-only transaction over every
                   account. *)
                let total =
                  Tm.atomic ctx (fun () ->
                      Array.fold_left (fun acc a -> acc + Tm.load ctx a) 0 accounts)
                in
                if total <> n_accounts * initial_balance then incr audit_failures
              end
              else begin
                let src = accounts.(Prng.int rng n_accounts) in
                let dst = accounts.(Prng.int rng n_accounts) in
                let amount = Prng.int rng 20 in
                Tm.atomic ctx (fun () ->
                    if src <> dst then begin
                      Tm.store ctx src (Tm.load ctx src - amount);
                      Tm.store ctx dst (Tm.load ctx dst + amount)
                    end)
              end
            done))
  in
  Tm.run sys;
  let agg = Stats.create () in
  List.iter (fun c -> Stats.add (Tm.stats c) ~into:agg) ctxs;
  let total = Array.fold_left (fun acc a -> acc + Tm.setup_peek sys a) 0 accounts in
  Printf.printf
    "%-14s total=%d audits-consistent=%b time=%.1f us, serial=%d, aborts=%d\n" name
    total
    (!audit_failures = 0)
    (Params.cycles_to_us cfg.Tm.params (Tm.makespan sys))
    (Stats.serial_commits agg) (Stats.total_aborts agg);
  assert (total = n_accounts * initial_balance);
  assert (!audit_failures = 0)

let () =
  Printf.printf
    "Bank: %d threads, %d accounts, transfers + full audits every 50 txns\n\n"
    n_threads n_accounts;
  run_mode "ASF LLB-8" (Tm.Asf_mode Variant.llb8);
  run_mode "ASF LLB-256" (Tm.Asf_mode Variant.llb256);
  run_mode "ASF LLB-8+L1" (Tm.Asf_mode Variant.llb8_l1);
  run_mode "TinySTM" Tm.Stm_mode;
  print_newline ();
  print_endline
    "The 64-line audit overflows LLB-8 (serial commits > 0) but fits LLB-256\n\
     and the hybrid variant, whose L1 tracks the read set.";
  print_endline "OK"
