(* The full benchmark harness.

   Part 1 regenerates every table and figure of the paper's evaluation at
   full (simulator-scale) configuration, prints the tables, and writes
   results/<id>.csv.

   Part 2 is the Bechamel suite: one [Test.make] per table/figure, each
   timing the host-side cost of regenerating that artifact (at the quick
   configuration, with the memoisation cache cleared per run so every
   sample does real work). *)

module Experiments = Asf_harness.Experiments
module Report = Asf_harness.Report
open Bechamel
open Toolkit

let part1 () =
  print_endline "=============================================================";
  print_endline " Part 1: full-scale reproduction of every table and figure";
  print_endline "=============================================================";
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun e ->
      let t = Unix.gettimeofday () in
      let reports = e.Experiments.run ~quick:false ~seed:1 in
      List.iter
        (fun r ->
          Report.print r;
          ignore (Report.save_csv ~dir:"results" r))
        reports;
      Printf.printf "[%s regenerated in %.1fs host time; csv in results/]\n%!"
        e.Experiments.id
        (Unix.gettimeofday () -. t))
    Experiments.all;
  Printf.printf "\nAll artifacts regenerated in %.1fs host time.\n%!"
    (Unix.gettimeofday () -. t0)

let bechamel_tests =
  let test_of e =
    Test.make ~name:e.Experiments.id
      (Staged.stage (fun () ->
           Experiments.clear_cache ();
           ignore (e.Experiments.run ~quick:true ~seed:1)))
  in
  Test.make_grouped ~name:"regen" (List.map test_of Experiments.all)

let part2 () =
  print_endline "";
  print_endline "=============================================================";
  print_endline " Part 2: Bechamel — host cost per artifact (quick configs)";
  print_endline "=============================================================";
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:3 ~quota:(Time.second 1.0) ~stabilize:false ~kde:None ()
  in
  let raw = Benchmark.all cfg instances bechamel_tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  Printf.printf "%-24s %14s %10s\n" "benchmark" "ms/run" "r^2";
  List.iter
    (fun (name, v) ->
      let est =
        match Analyze.OLS.estimates v with Some (e :: _) -> e /. 1e6 | _ -> nan
      in
      let r2 = match Analyze.OLS.r_square v with Some r -> r | None -> nan in
      Printf.printf "%-24s %14.2f %10s\n" name est (if Float.is_nan r2 then "-" else Printf.sprintf "%.3f" r2))
    rows

let () =
  part1 ();
  part2 ();
  print_endline "\nbench: done"
