lib/machine/params.ml: Format
