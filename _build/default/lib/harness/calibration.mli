(** Simulator-accuracy methodology (the paper's Fig. 3).

    The paper validates PTLsim-ASF by running the STAMP applications
    single-threaded without TM both natively and simulated, reporting the
    percentage deviation. No x86 silicon exists in this environment, so —
    per the substitution table in DESIGN.md — the "native" side is the
    {!Asf_machine.Params.native_reference} analytical profile: the same
    binaries (OCaml workloads), the same execution path, different
    machine model. What is reproduced is the methodology and the
    deviation metric, not AMD's silicon. *)

type entry = {
  app : string;
  detailed_cycles : int;  (** Barcelona profile (the simulator under test) *)
  reference_cycles : int;  (** native-reference profile *)
  deviation_pct : float;
}

val measure : quick:bool -> seed:int -> entry list
(** One entry per STAMP application, single thread, no TM
    (sequential mode). *)
