lib/harness/profile.mli: Asf_tm_rt Format
