lib/harness/experiments.ml: Array Asf_core Asf_intset Asf_machine Asf_stamp Asf_stm Asf_tm_rt Calibration Hashtbl List Printf Report
