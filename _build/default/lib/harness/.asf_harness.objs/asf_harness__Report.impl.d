lib/harness/report.ml: Filename Format List Printf String Sys
