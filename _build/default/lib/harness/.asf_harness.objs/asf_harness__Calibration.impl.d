lib/harness/calibration.ml: Asf_machine Asf_stamp Asf_tm_rt List
