lib/harness/calibration.mli:
