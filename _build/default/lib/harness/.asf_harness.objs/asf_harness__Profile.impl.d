lib/harness/profile.ml: Asf_cache Asf_engine Asf_tm_rt Format List Printf
