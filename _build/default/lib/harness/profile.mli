(** Memory-system profile of a finished run: cache hit rates, coherence
    invalidations, TLB faults — the counters one would read from
    performance-monitoring hardware. *)

type t = {
  loads : int;
  stores : int;
  l1_hit_rate : float;  (** aggregated over cores *)
  l2_hit_rate : float;
  l3_hit_rate : float;
  invalidations : int;
  faults_serviced : int;
  makespan_cycles : int;
}

val of_system : Asf_tm_rt.Tm.system -> t

val pp : Format.formatter -> t -> unit

val lines : t -> string list
(** Human-readable summary, one metric per line. *)
