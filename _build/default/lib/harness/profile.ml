module Engine = Asf_engine.Engine
module Memsys = Asf_cache.Memsys
module Hierarchy = Asf_cache.Hierarchy
module Tm = Asf_tm_rt.Tm

type t = {
  loads : int;
  stores : int;
  l1_hit_rate : float;
  l2_hit_rate : float;
  l3_hit_rate : float;
  invalidations : int;
  faults_serviced : int;
  makespan_cycles : int;
}

let rate hits misses =
  let total = hits + misses in
  if total = 0 then 1.0 else float_of_int hits /. float_of_int total

let of_system sys =
  let mem = Tm.memsys sys in
  let hier = Memsys.hierarchy mem in
  let n_cores = Engine.n_cores (Tm.engine sys) in
  let sum f =
    let h = ref 0 and m = ref 0 in
    for core = 0 to n_cores - 1 do
      let s : Hierarchy.level_stats = f ~core in
      h := !h + s.Hierarchy.hits;
      m := !m + s.Hierarchy.misses
    done;
    (!h, !m)
  in
  let l1h, l1m = sum (Hierarchy.l1_stats hier) in
  let l2h, l2m = sum (Hierarchy.l2_stats hier) in
  let l3 = Hierarchy.l3_stats hier in
  {
    loads = Memsys.loads mem;
    stores = Memsys.stores mem;
    l1_hit_rate = rate l1h l1m;
    l2_hit_rate = rate l2h l2m;
    l3_hit_rate = rate l3.Hierarchy.hits l3.Hierarchy.misses;
    invalidations = Hierarchy.invalidations hier;
    faults_serviced = Memsys.faults_serviced mem;
    makespan_cycles = Tm.makespan sys;
  }

let lines t =
  [
    Printf.sprintf "loads:            %d" t.loads;
    Printf.sprintf "stores:           %d" t.stores;
    Printf.sprintf "L1 hit rate:      %.1f%%" (100.0 *. t.l1_hit_rate);
    Printf.sprintf "L2 hit rate:      %.1f%%" (100.0 *. t.l2_hit_rate);
    Printf.sprintf "L3 hit rate:      %.1f%%" (100.0 *. t.l3_hit_rate);
    Printf.sprintf "invalidations:    %d" t.invalidations;
    Printf.sprintf "faults serviced:  %d" t.faults_serviced;
    Printf.sprintf "makespan cycles:  %d" t.makespan_cycles;
  ]

let pp fmt t = List.iter (Format.fprintf fmt "%s@.") (lines t)
