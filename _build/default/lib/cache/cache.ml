type t = {
  n_sets : int;
  assoc : int;
  (* tags.(set * assoc + way); -1 = invalid. *)
  tags : int array;
  (* LRU stamps, larger = more recent. *)
  stamps : int array;
  mutable clock : int;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let create ~sets ~assoc =
  if not (is_power_of_two sets) then
    invalid_arg "Cache.create: sets must be a power of two";
  if assoc <= 0 then invalid_arg "Cache.create: assoc must be positive";
  {
    n_sets = sets;
    assoc;
    tags = Array.make (sets * assoc) (-1);
    stamps = Array.make (sets * assoc) 0;
    clock = 0;
  }

let create_bytes ~size_bytes ~assoc ~line_bytes =
  let sets = size_bytes / (assoc * line_bytes) in
  create ~sets ~assoc

let sets t = t.n_sets

let assoc t = t.assoc

let set_of t key = key land (t.n_sets - 1)

let find_way t key =
  let base = set_of t key * t.assoc in
  let rec go w =
    if w = t.assoc then None
    else if t.tags.(base + w) = key then Some (base + w)
    else go (w + 1)
  in
  go 0

let mem t key = find_way t key <> None

let touch t key =
  t.clock <- t.clock + 1;
  match find_way t key with
  | Some i ->
      t.stamps.(i) <- t.clock;
      (true, None)
  | None ->
      let base = set_of t key * t.assoc in
      (* Pick an invalid way, else the LRU way. *)
      let victim = ref base in
      let found_invalid = ref false in
      for w = 0 to t.assoc - 1 do
        let i = base + w in
        if not !found_invalid then
          if t.tags.(i) = -1 then begin
            victim := i;
            found_invalid := true
          end
          else if t.stamps.(i) < t.stamps.(!victim) then victim := i
      done;
      let evicted = if !found_invalid then None else Some t.tags.(!victim) in
      t.tags.(!victim) <- key;
      t.stamps.(!victim) <- t.clock;
      (false, evicted)

let invalidate t key =
  match find_way t key with
  | Some i ->
      t.tags.(i) <- -1;
      t.stamps.(i) <- 0;
      true
  | None -> false

let iter t f =
  Array.iter (fun tag -> if tag <> -1 then f tag) t.tags

let clear t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.stamps 0 (Array.length t.stamps) 0
