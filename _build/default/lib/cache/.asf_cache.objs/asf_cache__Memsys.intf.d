lib/cache/memsys.mli: Asf_engine Asf_machine Asf_mem Hierarchy Tlb
