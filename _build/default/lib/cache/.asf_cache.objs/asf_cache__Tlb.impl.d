lib/cache/tlb.ml: Array Asf_machine Asf_mem Cache Hashtbl
