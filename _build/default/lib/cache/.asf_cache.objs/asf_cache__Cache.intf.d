lib/cache/cache.mli:
