lib/cache/memsys.ml: Asf_engine Asf_machine Asf_mem Hierarchy Tlb
