lib/cache/hierarchy.ml: Array Asf_machine Cache Hashtbl
