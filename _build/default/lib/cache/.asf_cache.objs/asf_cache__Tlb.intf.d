lib/cache/tlb.mli: Asf_machine Asf_mem
