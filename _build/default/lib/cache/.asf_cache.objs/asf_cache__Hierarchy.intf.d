lib/cache/hierarchy.mli: Asf_machine
