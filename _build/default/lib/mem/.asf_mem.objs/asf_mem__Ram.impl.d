lib/mem/ram.ml: Addr Array
