lib/mem/alloc.mli: Addr
