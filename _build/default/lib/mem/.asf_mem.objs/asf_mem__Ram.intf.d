lib/mem/ram.mli: Addr
