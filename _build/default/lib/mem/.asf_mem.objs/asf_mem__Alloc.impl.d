lib/mem/alloc.ml: Addr Hashtbl
