type t = int

let word_bytes = 8

let words_per_line = 8

let words_per_page = 512

let line_shift = 3

let page_shift = 9

let line_of a = a lsr line_shift

let page_of a = a lsr page_shift

let line_base l = l lsl line_shift

let page_base p = p lsl page_shift

let line_offset a = a land (words_per_line - 1)

let lines_of_words n = (n + words_per_line - 1) / words_per_line

let pp fmt a = Format.fprintf fmt "0x%x" (a * word_bytes)
