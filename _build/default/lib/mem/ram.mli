(** Simulated physical memory.

    A flat, word-addressed, demand-grown store. Reads of never-written words
    return 0, like zero-fill-on-demand pages. [Ram] is purely functional
    state with no timing: latencies are the cache hierarchy's business, and
    page mapping (first-touch fault behaviour) is the TLB's. *)

type t

val create : unit -> t

val read : t -> Addr.t -> int

val write : t -> Addr.t -> int -> unit

val read_line : t -> int -> int array
(** [read_line t line] copies the 8 words of a cache line. *)

val write_line : t -> int -> int array -> unit
(** [write_line t line words] restores the 8 words of a line (used for ASF
    write-set rollback). *)

val footprint_words : t -> int
(** Number of words in chunks that have been materialised (diagnostics). *)
