type block_state = Live | Freed

type t = {
  mutable cursor : Addr.t;
  (* (size, align) -> free addresses of that exact shape. *)
  free_lists : (int * int, Addr.t list ref) Hashtbl.t;
  (* addr -> (size, align, state); the simulated header word itself lives
     only in the host, keeping simulated memory free of allocator noise. *)
  blocks : (Addr.t, int * int * block_state ref) Hashtbl.t;
  mutable live_words : int;
}

let create ?(base = Addr.words_per_page) () =
  if base <= 0 then invalid_arg "Alloc.create: base must be positive";
  {
    cursor = base;
    free_lists = Hashtbl.create 64;
    blocks = Hashtbl.create 4096;
    live_words = 0;
  }

let align_up a align = (a + align - 1) land lnot (align - 1)

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let free_list t key =
  match Hashtbl.find_opt t.free_lists key with
  | Some l -> l
  | None ->
      let l = ref [] in
      Hashtbl.add t.free_lists key l;
      l

let alloc t ?(align = 1) n =
  if n <= 0 then invalid_arg "Alloc.alloc: size must be positive";
  if not (is_power_of_two align) then
    invalid_arg "Alloc.alloc: align must be a power of two";
  let key = (n, align) in
  let fl = free_list t key in
  let addr =
    match !fl with
    | a :: rest ->
        fl := rest;
        let _, _, state = Hashtbl.find t.blocks a in
        state := Live;
        a
    | [] ->
        let a = align_up t.cursor align in
        t.cursor <- a + n;
        Hashtbl.replace t.blocks a (n, align, ref Live);
        a
  in
  t.live_words <- t.live_words + n;
  addr

let alloc_lines t n =
  let padded = Addr.lines_of_words n * Addr.words_per_line in
  alloc t ~align:Addr.words_per_line padded

let free t addr =
  match Hashtbl.find_opt t.blocks addr with
  | None -> invalid_arg "Alloc.free: unknown address"
  | Some (size, align, state) -> (
      match !state with
      | Freed -> invalid_arg "Alloc.free: double free"
      | Live ->
          state := Freed;
          t.live_words <- t.live_words - size;
          let fl = free_list t (size, align) in
          fl := addr :: !fl)

let size_of t addr =
  match Hashtbl.find_opt t.blocks addr with
  | Some (size, _, _) -> size
  | None -> invalid_arg "Alloc.size_of: unknown address"

let live_words t = t.live_words

let high_water t = t.cursor
