(** Address arithmetic.

    The simulated machine is word-addressed: one address names one 8-byte
    word. A cache line is 64 bytes = {!words_per_line} words; a page is
    4 KB = {!words_per_page} words. These granularities are fixed because
    they are architectural in ASF (the unit of protection is the 64-byte
    line). *)

type t = int
(** A word address. *)

val word_bytes : int
(** 8. *)

val words_per_line : int
(** 8. *)

val words_per_page : int
(** 512. *)

val line_of : t -> int
(** Index of the cache line containing a word. *)

val page_of : t -> int
(** Index of the page containing a word. *)

val line_base : int -> t
(** First word address of a line. *)

val page_base : int -> t
(** First word address of a page. *)

val line_offset : t -> int
(** Position of a word within its line, in [0, 7]. *)

val lines_of_words : int -> int
(** Number of lines needed to hold [n] consecutive line-aligned words. *)

val pp : Format.formatter -> t -> unit
