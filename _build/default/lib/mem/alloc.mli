(** Simulated-memory allocator.

    Hands out word addresses from a growing arena with exact-size free
    lists. A one-word header precedes each block, recording its size so
    {!free} needs only the address. Address 0 is never allocated and serves
    as the null pointer of simulated data structures.

    {!alloc_lines} is the allocation mode used for shared data-structure
    nodes: it line-aligns the block and rounds its size up to whole cache
    lines, which is the padding the paper applies to data-structure entry
    points to avoid contention aborts from false sharing. *)

type t

val create : ?base:Addr.t -> unit -> t
(** [base] (default: one page) is the first address the arena may return. *)

val alloc : t -> ?align:int -> int -> Addr.t
(** [alloc t ~align n] returns a block of [n > 0] words aligned to [align]
    words (default 1, must be a power of two). *)

val alloc_lines : t -> int -> Addr.t
(** [alloc_lines t n] allocates [n] words, line-aligned and padded to a
    whole number of cache lines. *)

val free : t -> Addr.t -> unit
(** Returns a block to its free list.
    @raise Invalid_argument on a double free or an address that was not
    returned by this allocator. *)

val size_of : t -> Addr.t -> int
(** Usable size in words of an allocated block. *)

val live_words : t -> int
(** Words currently allocated (excluding headers). *)

val high_water : t -> Addr.t
(** One past the highest address ever handed out. *)
