(* Chunked backing store: 64 Ki-word (512 KB) chunks materialised on first
   write so that sparse address spaces stay cheap. *)

let chunk_shift = 16

let chunk_words = 1 lsl chunk_shift

let chunk_mask = chunk_words - 1

type t = { mutable chunks : int array option array }

let create () = { chunks = Array.make 64 None }

let ensure_index t i =
  let n = Array.length t.chunks in
  if i >= n then begin
    let n' = max (i + 1) (n * 2) in
    let a = Array.make n' None in
    Array.blit t.chunks 0 a 0 n;
    t.chunks <- a
  end

let chunk_for t a =
  let i = a lsr chunk_shift in
  ensure_index t i;
  match t.chunks.(i) with
  | Some c -> c
  | None ->
      let c = Array.make chunk_words 0 in
      t.chunks.(i) <- Some c;
      c

let read t a =
  let i = a lsr chunk_shift in
  if i < Array.length t.chunks then
    match t.chunks.(i) with Some c -> c.(a land chunk_mask) | None -> 0
  else 0

let write t a v = (chunk_for t a).(a land chunk_mask) <- v

let read_line t line =
  let base = Addr.line_base line in
  Array.init Addr.words_per_line (fun i -> read t (base + i))

let write_line t line words =
  assert (Array.length words = Addr.words_per_line);
  let base = Addr.line_base line in
  Array.iteri (fun i v -> write t (base + i) v) words

let footprint_words t =
  Array.fold_left
    (fun acc c -> match c with Some _ -> acc + chunk_words | None -> acc)
    0 t.chunks
