module Prng = Asf_engine.Prng
module Tm = Asf_tm_rt.Tm
module Ops = Asf_dstruct.Ops
module Thashmap = Asf_dstruct.Thashmap

type cfg = { gene_length : int; seg_len : int; n_segs : int; work_per_segment : int }

let default = { gene_length = 1024; seg_len = 16; n_segs = 1024; work_per_segment = 60 }

(* Segment record in simulated memory (one padded line):
   [0] packed content, [1] successor record (0 = chain end),
   [2] overlap used for the successor link, [3] claimed flag (this
   segment already has a predecessor), [4] chain head (maintained on
   tails), [5] chain tail (maintained on heads). The head/tail metadata
   is STAMP's O(1) chain merge, which also rules out cycles: a tail never
   links to its own chain's head. *)

let f_content = 0

let f_next = 1

let f_overlap = 2

let f_claimed = 3

let f_head = 4

let f_tail = 5

let record_words = 6

let run tm_cfg ~threads cfg =
  assert (cfg.seg_len >= 2 && cfg.seg_len <= 31);
  let sys = Tm.create tm_cfg in
  let so = Ops.setup sys in
  let rng = Prng.create (tm_cfg.Tm.seed + 616) in
  (* The gene: 2 bits per base (host copy; the timed phases work on the
     packed segments in simulated memory). *)
  let gene = Array.init cfg.gene_length (fun _ -> Prng.int rng 4) in
  let pack start len =
    let v = ref 0 in
    for i = 0 to len - 1 do
      v := (!v lsl 2) lor gene.(start + i)
    done;
    !v
  in
  (* Packed values keyed into hash maps must be distinguishable from the
     null pointer / absent key; offset by 1 (content 0 = "AAAA..."). *)
  let starts =
    Array.init cfg.n_segs (fun _ -> Prng.int rng (cfg.gene_length - cfg.seg_len + 1))
  in
  let instances = Tm.setup_alloc sys cfg.n_segs in
  Array.iteri
    (fun i s -> Tm.setup_poke sys (instances + i) (1 + pack s cfg.seg_len))
    starts;
  let unique_expected =
    List.length
      (List.sort_uniq compare (Array.to_list (Array.map (fun s -> pack s cfg.seg_len) starts)))
  in
  (* A prefix of length o is the top 2o bits of the packed content; a
     suffix the bottom 2o bits. *)
  let prefix content o = ((content - 1) lsr (2 * (cfg.seg_len - o))) + 1 in
  let suffix content o = ((content - 1) land ((1 lsl (2 * o)) - 1)) + 1 in
  let dedup = Thashmap.create so ~buckets:2048 in
  let round_maps =
    Array.init cfg.seg_len (fun _ -> Thashmap.create so ~buckets:2048)
  in
  let barrier = Stamp_common.Barrier.create sys ~n:threads in
  (* Unique records, collected by thread 0 between phases 1 and 2. *)
  let records = ref [||] in
  let chains = ref 0 in
  let chained_segments = ref 0 in
  let assembled_bases = ref 0 in
  let worker ctx tid =
    let o = Ops.tx ctx in
    (* Phase 1: deduplication. *)
    let start, stop = Stamp_common.chunk cfg.n_segs ~threads ~tid in
    for i = start to stop - 1 do
      Tm.work ctx cfg.work_per_segment;
      let content = Tm.nload ctx (instances + i) in
      Tm.atomic ctx (fun () ->
          if Thashmap.get o dedup content = None then begin
            let r = Tm.malloc ctx record_words in
            Tm.store ctx (r + f_content) content;
            Tm.store ctx (r + f_next) 0;
            Tm.store ctx (r + f_overlap) 0;
            Tm.store ctx (r + f_claimed) 0;
            Tm.store ctx (r + f_head) r;
            Tm.store ctx (r + f_tail) r;
            Thashmap.put o dedup content r
          end)
    done;
    Stamp_common.Barrier.wait ctx barrier;
    (* Phase boundary: thread 0 gathers the unique records (timed plain
       scan, as STAMP's inter-phase processing is). *)
    if tid = 0 then begin
      let acc = ref [] in
      Thashmap.iter (Ops.tx ctx) dedup (fun _ r -> acc := r :: !acc);
      records := Array.of_list !acc
    end;
    Stamp_common.Barrier.wait ctx barrier;
    let records = !records in
    let n_unique = Array.length records in
    (* Phase 2: overlap matching, longest overlaps first. *)
    for ov = cfg.seg_len - 1 downto 1 do
      let map = round_maps.(ov) in
      let ustart, ustop = Stamp_common.chunk n_unique ~threads ~tid in
      (* 2a: publish prefixes of segments that may still gain a
         predecessor. *)
      for i = ustart to ustop - 1 do
        let r = records.(i) in
        Tm.atomic ctx (fun () ->
            if Tm.load ctx (r + f_claimed) = 0 then begin
              let content = Tm.load ctx (r + f_content) in
              Thashmap.put o map (prefix content ov) r
            end)
      done;
      Stamp_common.Barrier.wait ctx barrier;
      (* 2b: try to extend chain ends by their suffix. *)
      for i = ustart to ustop - 1 do
        let r = records.(i) in
        Tm.work ctx (cfg.work_per_segment / 2);
        Tm.atomic ctx (fun () ->
            if Tm.load ctx (r + f_next) = 0 then begin
              let content = Tm.load ctx (r + f_content) in
              match Thashmap.get o map (suffix content ov) with
              | Some succ when succ <> r && Tm.load ctx (succ + f_claimed) = 0 ->
                  (* Refuse links that would close a cycle: [succ] must
                     not be the head of [r]'s own chain. *)
                  let head = Tm.load ctx (r + f_head) in
                  if head <> succ then begin
                    let tail = Tm.load ctx (succ + f_tail) in
                    Tm.store ctx (r + f_next) succ;
                    Tm.store ctx (r + f_overlap) ov;
                    Tm.store ctx (succ + f_claimed) 1;
                    Tm.store ctx (head + f_tail) tail;
                    Tm.store ctx (tail + f_head) head
                  end
              | Some _ | None -> ()
            end)
      done;
      Stamp_common.Barrier.wait ctx barrier
    done;
    (* Phase 3: sequential rebuild by thread 0: walk every chain. *)
    if tid = 0 then begin
      let visited = Hashtbl.create n_unique in
      Array.iter
        (fun r ->
          if Tm.load ctx (r + f_claimed) = 0 then begin
            (* Chain head. *)
            incr chains;
            let cur = ref r in
            let continue_ = ref true in
            while !continue_ do
              if Hashtbl.mem visited !cur then continue_ := false (* cycle guard *)
              else begin
                Hashtbl.add visited !cur ();
                incr chained_segments;
                Tm.work ctx 20;
                let next = Tm.load ctx (!cur + f_next) in
                let ov = Tm.load ctx (!cur + f_overlap) in
                assembled_bases :=
                  !assembled_bases + if next = 0 then cfg.seg_len else cfg.seg_len - ov;
                if next = 0 then continue_ := false else cur := next
              end
            done
          end)
        records
    end
  in
  let stats = Stamp_common.run_workers sys ~threads worker in
  let n_unique = Array.length !records in
  {
    Stamp_common.name = "genome";
    threads;
    cycles = Tm.makespan sys;
    stats;
    checks =
      [
        ("deduplicated to distinct segments", n_unique = unique_expected);
        ("chains partition the segments", !chained_segments = n_unique);
        ("assembly is compressive", !assembled_bases <= n_unique * cfg.seg_len);
        ("some overlaps were found", !chains < n_unique || n_unique <= 1);
      ];
  }
