module Prng = Asf_engine.Prng
module Addr = Asf_mem.Addr
module Tm = Asf_tm_rt.Tm

type cfg = { vertices : int; edges : int; max_degree : int; work_per_edge : int }

let default = { vertices = 2048; edges = 6144; max_degree = 8; work_per_edge = 60 }

(* Adjacency block per vertex (line-padded): [0] degree, [1..max] slots. *)

let run tm_cfg ~threads cfg =
  let sys = Tm.create tm_cfg in
  let rng = Prng.create (tm_cfg.Tm.seed + 1311) in
  let block_words = 1 + cfg.max_degree in
  let stride = Addr.lines_of_words block_words * Addr.words_per_line in
  let adj = Tm.setup_alloc sys (cfg.vertices * stride) in
  for v = 0 to cfg.vertices - 1 do
    Tm.setup_poke sys (adj + (v * stride)) 0
  done;
  let src = Array.init cfg.edges (fun _ -> Prng.int rng cfg.vertices) in
  let dst = Array.init cfg.edges (fun _ -> Prng.int rng cfg.vertices) in
  let dropped = Array.make threads 0 in
  let worker ctx tid =
    let start, stop = Stamp_common.chunk cfg.edges ~threads ~tid in
    for e = start to stop - 1 do
      Tm.work ctx cfg.work_per_edge;
      let block = adj + (src.(e) * stride) in
      let added =
        Tm.atomic ctx (fun () ->
            let deg = Tm.load ctx block in
            if deg < cfg.max_degree then begin
              Tm.store ctx (block + 1 + deg) dst.(e);
              Tm.store ctx block (deg + 1);
              true
            end
            else false)
      in
      if not added then dropped.(tid) <- dropped.(tid) + 1
    done
  in
  let stats = Stamp_common.run_workers sys ~threads worker in
  let total_degree = ref 0 in
  for v = 0 to cfg.vertices - 1 do
    total_degree := !total_degree + Tm.setup_peek sys (adj + (v * stride))
  done;
  let total_dropped = Array.fold_left ( + ) 0 dropped in
  {
    Stamp_common.name = "ssca2";
    threads;
    cycles = Tm.makespan sys;
    stats;
    checks = [ ("all edges accounted", !total_degree + total_dropped = cfg.edges) ];
  }
