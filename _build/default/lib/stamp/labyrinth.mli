(** STAMP labyrinth: transactional maze routing.

    Threads take (source, destination) pairs from a shared work queue and
    route rectilinear paths through a shared 3-D grid: each routing
    transaction snapshots the grid, computes a shortest path on the
    snapshot with host-side BFS, then claims every path cell.

    By default the snapshot reads are transactional, as DTMC generates
    for any shared access: the read set is the whole grid, so ASF
    transactions overflow any LLB and run serial-irrevocable
    extensively — the paper's own description of labyrinth — while the
    STM drowns in validation work (its values are literally off the
    paper's Fig. 4 chart). With [privatized_snapshot] the snapshot uses
    selectively-annotated plain reads and transactions revalidate the
    path cells before claiming them (the later privatisation trick;
    here an ablation of what selective annotation buys an expert). *)

type cfg = {
  x : int;
  y : int;
  z : int;
  paths : int;
  work_per_cell : int;  (** BFS expansion cost per visited cell *)
  privatized_snapshot : bool;
}

val default : cfg
(** 32 x 32 x 3 grid (the STAMP simulator input), 64 paths, transactional snapshot. *)

val run : Asf_tm_rt.Tm.config -> threads:int -> cfg -> Stamp_common.result
