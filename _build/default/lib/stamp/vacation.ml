module Prng = Asf_engine.Prng
module Tm = Asf_tm_rt.Tm
module Ops = Asf_dstruct.Ops
module Trbtree = Asf_dstruct.Trbtree

type cfg = {
  relations : int;
  txns : int;
  queries_per_txn : int;
  user_pct : int;
}

let low = { relations = 1024; txns = 2048; queries_per_txn = 2; user_pct = 98 }

let high = { relations = 1024; txns = 2048; queries_per_txn = 4; user_pct = 90 }

(* Resource record (one padded line): [0] total, [1] available, [2] price.
   Customer record: [0] spent, [1] bookings, [2] reservation-list head.
   Reservation node (one padded line): [0] resource record, [1] price
   paid, [2] next. Resources with outstanding bookings are never retired,
   so reservation pointers stay valid until the customer releases them. *)

let r_total = 0

let r_avail = 1

let r_price = 2

let c_spent = 0

let c_bookings = 1

let c_reservations = 2

let res_words = 3

let n_tables = 3

let run tm_cfg ~threads cfg =
  let sys = Tm.create tm_cfg in
  let so = Ops.setup sys in
  let rng = Prng.create (tm_cfg.Tm.seed + 9090) in
  let tables = Array.init n_tables (fun _ -> Trbtree.create so) in
  let customers = Trbtree.create so in
  for id = 0 to cfg.relations - 1 do
    Array.iter
      (fun t ->
        let rcd = so.Ops.alloc 3 in
        let capacity = 1 + Prng.int rng 5 in
        so.Ops.st (rcd + r_total) capacity;
        so.Ops.st (rcd + r_avail) capacity;
        so.Ops.st (rcd + r_price) (100 + Prng.int rng 900);
        ignore (Trbtree.insert so t id rcd))
      tables;
    let cust = so.Ops.alloc 3 in
    so.Ops.st (cust + c_spent) 0;
    so.Ops.st (cust + c_bookings) 0;
    so.Ops.st (cust + c_reservations) 0;
    ignore (Trbtree.insert so customers id cust)
  done;
  let worker ctx tid =
    let o = Ops.tx ctx in
    let rng = Tm.prng ctx in
    let start, stop = Stamp_common.chunk cfg.txns ~threads ~tid in
    for _ = start + 1 to stop do
      let roll = Prng.int rng 100 in
      if roll < cfg.user_pct then begin
        (* User transaction: browse queries_per_txn random resources,
           book the last available one for a random customer. *)
        let cust_id = Prng.int rng cfg.relations in
        let picks =
          Array.init cfg.queries_per_txn (fun _ ->
              (Prng.int rng n_tables, Prng.int rng cfg.relations))
        in
        Tm.atomic ctx (fun () ->
            let chosen = ref 0 in
            Array.iter
              (fun (t, id) ->
                match Trbtree.find o tables.(t) id with
                | Some rcd ->
                    Tm.work ctx 40;
                    if Tm.load ctx (rcd + r_avail) > 0 then chosen := rcd
                | None -> ())
              picks;
            if !chosen <> 0 then begin
              let rcd = !chosen in
              match Trbtree.find o customers cust_id with
              | Some cust ->
                  let price = Tm.load ctx (rcd + r_price) in
                  Tm.store ctx (rcd + r_avail) (Tm.load ctx (rcd + r_avail) - 1);
                  Tm.store ctx (cust + c_spent) (Tm.load ctx (cust + c_spent) + price);
                  Tm.store ctx (cust + c_bookings) (Tm.load ctx (cust + c_bookings) + 1);
                  let node = Tm.malloc ctx res_words in
                  Tm.store ctx node rcd;
                  Tm.store ctx (node + 1) price;
                  Tm.store ctx (node + 2) (Tm.load ctx (cust + c_reservations));
                  Tm.store ctx (cust + c_reservations) node
              | None -> ()
            end)
      end
      else if roll < cfg.user_pct + ((100 - cfg.user_pct) / 2) then begin
        (* Delete customer: release every reservation back to its
           resource and reset the account (STAMP's customer deletion). *)
        let cust_id = Prng.int rng cfg.relations in
        Tm.atomic ctx (fun () ->
            match Trbtree.find o customers cust_id with
            | Some cust ->
                let rec release node =
                  if node <> 0 then begin
                    let rcd = Tm.load ctx node in
                    Tm.store ctx (rcd + r_avail) (Tm.load ctx (rcd + r_avail) + 1);
                    let next = Tm.load ctx (node + 2) in
                    Tm.free ctx node res_words;
                    release next
                  end
                in
                release (Tm.load ctx (cust + c_reservations));
                Tm.store ctx (cust + c_reservations) 0;
                Tm.store ctx (cust + c_spent) 0;
                Tm.store ctx (cust + c_bookings) 0
            | None -> ())
      end
      else begin
        (* Table update: insert a fresh resource, or retire an unbooked
           one (structural tree updates). *)
        let t = Prng.int rng n_tables in
        let id = Prng.int rng (2 * cfg.relations) in
        Tm.atomic ctx (fun () ->
            match Trbtree.find o tables.(t) id with
            | Some rcd ->
                if Tm.load ctx (rcd + r_avail) = Tm.load ctx (rcd + r_total) then begin
                  ignore (Trbtree.remove o tables.(t) id);
                  Tm.free ctx rcd 3
                end
                else
                  (* Booked: just reprice it. *)
                  Tm.store ctx (rcd + r_price) (100 + (id mod 900))
            | None ->
                let rcd = Tm.malloc ctx 3 in
                let capacity = 1 + (id mod 5) in
                Tm.store ctx (rcd + r_total) capacity;
                Tm.store ctx (rcd + r_avail) capacity;
                Tm.store ctx (rcd + r_price) (100 + (id mod 900));
                ignore (Trbtree.insert o tables.(t) id rcd))
      end
    done
  in
  let stats = Stamp_common.run_workers sys ~threads worker in
  (* Conservation: total booked across resources == total customer
     bookings; tree invariants hold. *)
  let booked = ref 0 in
  Array.iter
    (fun t ->
      List.iter
        (fun (_, rcd) ->
          booked := !booked + (so.Ops.ld (rcd + r_total) - so.Ops.ld (rcd + r_avail)))
        (Trbtree.to_list so t))
    tables;
  let customer_bookings =
    List.fold_left
      (fun acc (_, cust) -> acc + so.Ops.ld (cust + c_bookings))
      0
      (Trbtree.to_list so customers)
  in
  let invariants =
    Array.for_all (fun t -> Trbtree.check_invariants so t = Ok ()) tables
    && Trbtree.check_invariants so customers = Ok ()
  in
  {
    Stamp_common.name = (if cfg.user_pct = low.user_pct then "vacation-low" else "vacation-high");
    threads;
    cycles = Tm.makespan sys;
    stats;
    checks =
      [
        ("bookings conserved", !booked = customer_bookings);
        ("tree invariants", invariants);
      ];
  }
