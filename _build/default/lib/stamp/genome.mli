(** STAMP genome: gene sequencing by segment overlap matching.

    The input is a random nucleotide string (2 bits per base, packed 32
    bases per simulated word) sampled into overlapping fixed-length
    segments with duplicates. Three phases, as in STAMP:

    + {e deduplication} — every thread inserts its share of segment
      instances into a shared hash map (most are duplicates, so most
      transactions are read-only probes);
    + {e overlap matching} — for overlap lengths [seg_len-1] down to 1,
      threads first publish the prefixes of all not-yet-claimed segments
      in a per-round hash map, then try to extend every chain-end by
      looking up its suffix — link transactions claim the successor so a
      segment acquires at most one predecessor;
    + {e rebuild} — a single thread walks every chain and reassembles the
      sequence.

    Validation checks that deduplication found exactly the distinct
    segments and that the chains partition them (each segment in exactly
    one chain, no cycles). *)

type cfg = {
  gene_length : int;  (** bases *)
  seg_len : int;  (** bases per segment; at most 31 *)
  n_segs : int;  (** sampled instances (including duplicates) *)
  work_per_segment : int;
}

val default : cfg

val run : Asf_tm_rt.Tm.config -> threads:int -> cfg -> Stamp_common.result
