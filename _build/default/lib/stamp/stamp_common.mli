(** Shared infrastructure for the STAMP-like applications: the result
    record every benchmark returns, a transactional sense-reversing
    barrier, and worker management. *)

type result = {
  name : string;
  threads : int;
  cycles : int;  (** simulated makespan (setup is untimed) *)
  stats : Asf_tm_rt.Stats.t;  (** aggregated over worker threads *)
  checks : (string * bool) list;  (** named validation outcomes *)
}

val ok : result -> bool
(** All checks passed. *)

val ms : Asf_machine.Params.t -> result -> float
(** Execution time in simulated milliseconds. *)

module Barrier : sig
  (** Transactional sense-reversing barrier (counter + generation in
      simulated memory): arrival is a small transaction, the wait is a
      plain-load spin. *)

  type t

  val create : Asf_tm_rt.Tm.system -> n:int -> t

  val wait : Asf_tm_rt.Tm.ctx -> t -> unit
end

val run_workers :
  Asf_tm_rt.Tm.system -> threads:int -> (Asf_tm_rt.Tm.ctx -> int -> unit) -> Asf_tm_rt.Stats.t
(** [run_workers sys ~threads body] spawns [body ctx tid] on cores
    [0 .. threads-1], runs the engine to completion, and returns the
    aggregated statistics. *)

val chunk : int -> threads:int -> tid:int -> int * int
(** [chunk n ~threads ~tid] is the [(start, stop)] half-open range of the
    [tid]-th of [threads] near-equal slices of [0..n-1]. *)
