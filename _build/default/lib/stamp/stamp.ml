type app =
  | Genome
  | Intruder
  | Kmeans_low
  | Kmeans_high
  | Labyrinth
  | Ssca2
  | Vacation_low
  | Vacation_high

let all =
  [
    Genome;
    Intruder;
    Kmeans_low;
    Kmeans_high;
    Labyrinth;
    Ssca2;
    Vacation_low;
    Vacation_high;
  ]

let name = function
  | Genome -> "genome"
  | Intruder -> "intruder"
  | Kmeans_low -> "kmeans-low"
  | Kmeans_high -> "kmeans-high"
  | Labyrinth -> "labyrinth"
  | Ssca2 -> "ssca2"
  | Vacation_low -> "vacation-low"
  | Vacation_high -> "vacation-high"

let of_name s = List.find_opt (fun a -> name a = s) all

let scaled s n = max 1 (int_of_float (float_of_int n *. s))

let run_scaled app ~scale tm_cfg ~threads =
  match app with
  | Genome ->
      Genome.run tm_cfg ~threads
        { Genome.default with Genome.n_segs = scaled scale Genome.default.Genome.n_segs }
  | Intruder ->
      Intruder.run tm_cfg ~threads
        { Intruder.default with Intruder.flows = scaled scale Intruder.default.Intruder.flows }
  | Kmeans_low ->
      Kmeans.run tm_cfg ~threads
        { Kmeans.low with Kmeans.points = scaled scale Kmeans.low.Kmeans.points }
  | Kmeans_high ->
      Kmeans.run tm_cfg ~threads
        { Kmeans.high with Kmeans.points = scaled scale Kmeans.high.Kmeans.points }
  | Labyrinth ->
      Labyrinth.run tm_cfg ~threads
        { Labyrinth.default with Labyrinth.paths = scaled scale Labyrinth.default.Labyrinth.paths }
  | Ssca2 ->
      Ssca2.run tm_cfg ~threads
        { Ssca2.default with Ssca2.edges = scaled scale Ssca2.default.Ssca2.edges }
  | Vacation_low ->
      Vacation.run tm_cfg ~threads
        {
          Vacation.low with
          Vacation.txns = scaled scale Vacation.low.Vacation.txns;
        }
  | Vacation_high ->
      Vacation.run tm_cfg ~threads
        {
          Vacation.high with
          Vacation.txns = scaled scale Vacation.high.Vacation.txns;
        }

let run app tm_cfg ~threads = run_scaled app ~scale:1.0 tm_cfg ~threads
