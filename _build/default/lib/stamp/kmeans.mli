(** STAMP kmeans: iterative K-means clustering.

    Threads partition the points; for every point they find the nearest
    center (non-transactional reads of the stable per-iteration centers)
    and transactionally fold the point into that cluster's accumulator —
    short transactions whose conflict probability scales with 1/clusters.
    The paper's "K-Means (low)" uses more clusters (lower contention) than
    "K-Means (high)". Between iterations a barrier-protected sequential
    step recomputes the centers. *)

type cfg = {
  points : int;
  dims : int;
  clusters : int;
  iterations : int;
  work_per_distance : int;  (** compute cycles per point-center distance *)
}

val low : cfg
(** Low contention: 40 clusters (STAMP's -m40 -n40 style). *)

val high : cfg
(** High contention: 15 clusters (STAMP's -m15 -n15 style). *)

val run : Asf_tm_rt.Tm.config -> threads:int -> cfg -> Stamp_common.result
