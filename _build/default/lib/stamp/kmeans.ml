module Prng = Asf_engine.Prng
module Addr = Asf_mem.Addr
module Tm = Asf_tm_rt.Tm

type cfg = {
  points : int;
  dims : int;
  clusters : int;
  iterations : int;
  work_per_distance : int;
}

let base = { points = 1024; dims = 8; clusters = 16; iterations = 3; work_per_distance = 24 }

let low = { base with clusters = 40 }

let high = { base with clusters = 15 }

(* Simulated-memory layout:
   - points: cfg.points * cfg.dims words, read-only during the run;
   - centers: cfg.clusters * cfg.dims words, rewritten between iterations;
   - one accumulator block per cluster: [0] count, [1..dims] sums
     (line-padded, so clusters never false-share). *)

let run tm_cfg ~threads cfg =
  let sys = Tm.create tm_cfg in
  let rng = Prng.create (tm_cfg.Tm.seed + 77) in
  let pts = Tm.setup_alloc sys (cfg.points * cfg.dims) in
  for i = 0 to (cfg.points * cfg.dims) - 1 do
    Tm.setup_poke sys (pts + i) (Prng.int rng 1000)
  done;
  let centers = Tm.setup_alloc sys (cfg.clusters * cfg.dims) in
  for c = 0 to cfg.clusters - 1 do
    (* Initial centers: the first points. *)
    for d = 0 to cfg.dims - 1 do
      Tm.setup_poke sys (centers + (c * cfg.dims) + d)
        (Tm.setup_peek sys (pts + (c * cfg.dims) + d))
    done
  done;
  let accum =
    Array.init cfg.clusters (fun _ -> Tm.setup_alloc sys (1 + cfg.dims))
  in
  Array.iter
    (fun a ->
      for i = 0 to cfg.dims do
        Tm.setup_poke sys (a + i) 0
      done)
    accum;
  let barrier = Stamp_common.Barrier.create sys ~n:threads in
  let membership_ok = ref true in
  let worker ctx tid =
    let start, stop = Stamp_common.chunk cfg.points ~threads ~tid in
    for _iter = 1 to cfg.iterations do
      for p = start to stop - 1 do
        (* Nearest center: centers are stable within an iteration, so the
           reads are selectively annotated as non-transactional. *)
        let best = ref 0 and best_d = ref max_int in
        for c = 0 to cfg.clusters - 1 do
          let dist = ref 0 in
          for d = 0 to cfg.dims - 1 do
            let pv = Tm.nload ctx (pts + (p * cfg.dims) + d) in
            let cv = Tm.nload ctx (centers + (c * cfg.dims) + d) in
            dist := !dist + ((pv - cv) * (pv - cv))
          done;
          Tm.work ctx cfg.work_per_distance;
          if !dist < !best_d then begin
            best_d := !dist;
            best := c
          end
        done;
        let acc = accum.(!best) in
        Tm.atomic ctx (fun () ->
            Tm.store ctx acc (Tm.load ctx acc + 1);
            for d = 0 to cfg.dims - 1 do
              let slot = acc + 1 + d in
              Tm.store ctx slot
                (Tm.load ctx slot + Tm.nload ctx (pts + (p * cfg.dims) + d))
            done)
      done;
      Stamp_common.Barrier.wait ctx barrier;
      if tid = 0 then begin
        (* Sequential center recomputation (timed, uninstrumented). *)
        let total = ref 0 in
        Array.iteri
          (fun c a ->
            let count = Tm.load ctx a in
            total := !total + count;
            if count > 0 then
              for d = 0 to cfg.dims - 1 do
                Tm.store ctx (centers + (c * cfg.dims) + d) (Tm.load ctx (a + 1 + d) / count)
              done;
            for i = 0 to cfg.dims do
              Tm.store ctx (a + i) 0
            done)
          accum;
        if !total <> cfg.points then membership_ok := false
      end;
      Stamp_common.Barrier.wait ctx barrier
    done
  in
  let stats = Stamp_common.run_workers sys ~threads worker in
  {
    Stamp_common.name = (if cfg.clusters = low.clusters then "kmeans-low" else "kmeans-high");
    threads;
    cycles = Tm.makespan sys;
    stats;
    checks = [ ("every point assigned each iteration", !membership_ok) ];
  }
