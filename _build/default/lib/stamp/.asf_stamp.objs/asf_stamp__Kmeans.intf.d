lib/stamp/kmeans.mli: Asf_tm_rt Stamp_common
