lib/stamp/stamp_common.ml: Asf_machine Asf_mem Asf_tm_rt List
