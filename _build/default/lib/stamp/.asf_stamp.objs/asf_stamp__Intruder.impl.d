lib/stamp/intruder.ml: Array Asf_dstruct Asf_engine Asf_tm_rt Stamp_common
