lib/stamp/labyrinth.ml: Array Asf_dstruct Asf_engine Asf_tm_rt Hashtbl List Option Queue Stamp_common
