lib/stamp/stamp.mli: Asf_tm_rt Stamp_common
