lib/stamp/genome.ml: Array Asf_dstruct Asf_engine Asf_tm_rt Hashtbl List Stamp_common
