lib/stamp/stamp.ml: Genome Intruder Kmeans Labyrinth List Ssca2 Vacation
