lib/stamp/ssca2.mli: Asf_tm_rt Stamp_common
