lib/stamp/vacation.ml: Array Asf_dstruct Asf_engine Asf_tm_rt List Stamp_common
