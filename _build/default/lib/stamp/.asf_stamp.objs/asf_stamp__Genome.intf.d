lib/stamp/genome.mli: Asf_tm_rt Stamp_common
