lib/stamp/kmeans.ml: Array Asf_engine Asf_mem Asf_tm_rt Stamp_common
