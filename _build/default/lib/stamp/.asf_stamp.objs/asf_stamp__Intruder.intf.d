lib/stamp/intruder.mli: Asf_tm_rt Stamp_common
