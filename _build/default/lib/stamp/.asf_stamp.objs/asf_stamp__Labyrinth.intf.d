lib/stamp/labyrinth.mli: Asf_tm_rt Stamp_common
