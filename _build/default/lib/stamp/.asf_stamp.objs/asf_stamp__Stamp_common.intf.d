lib/stamp/stamp_common.mli: Asf_machine Asf_tm_rt
