lib/stamp/vacation.mli: Asf_tm_rt Stamp_common
