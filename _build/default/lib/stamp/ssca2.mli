(** STAMP ssca2 (kernel 1: graph construction).

    Threads insert a shuffled edge list into per-vertex adjacency arrays;
    each insertion is a tiny transaction on a random vertex, so contention
    is minimal and every ASF variant behaves alike — the paper's
    best-scaling application. *)

type cfg = {
  vertices : int;
  edges : int;
  max_degree : int;
  work_per_edge : int;
}

val default : cfg
(** 2048 vertices, 3 edges per vertex on average. *)

val run : Asf_tm_rt.Tm.config -> threads:int -> cfg -> Stamp_common.result
