module Prng = Asf_engine.Prng
module Tm = Asf_tm_rt.Tm
module Ops = Asf_dstruct.Ops
module Tqueue = Asf_dstruct.Tqueue
module Thashmap = Asf_dstruct.Thashmap

type cfg = { flows : int; frags_per_flow : int; attack_pct : int; detect_work : int }

let default = { flows = 256; frags_per_flow = 4; attack_pct = 10; detect_work = 40 }

(* Fragment payloads are 4 words (32 bytes) of random content held in a
   shared read-only capture pool; reassembly copies them into a per-flow
   buffer: [0] fragments received, [1..] the flow's payload words in
   order. Attack flows carry a signature word somewhere in their payload,
   found by the (compute-heavy) detection scan. *)

let frag_words = 4

let signature = 0x5eC0DE

let run tm_cfg ~threads cfg =
  assert (cfg.frags_per_flow < 64);
  let sys = Tm.create tm_cfg in
  let so = Ops.setup sys in
  let rng = Prng.create (tm_cfg.Tm.seed + 31337) in
  let is_attack flow = flow * 100 / cfg.flows < cfg.attack_pct in
  (* Capture pool: payload words for every fragment, indexed by
     (flow * frags + idx) * frag_words. *)
  let pool = Tm.setup_alloc sys (cfg.flows * cfg.frags_per_flow * frag_words) in
  for flow = 0 to cfg.flows - 1 do
    for w = 0 to (cfg.frags_per_flow * frag_words) - 1 do
      (* Random payload, never colliding with the signature. *)
      let v =
        let r = Prng.int rng (1 lsl 24) in
        if r = signature then r + 1 else r
      in
      Tm.setup_poke sys (pool + (flow * cfg.frags_per_flow * frag_words) + w) v
    done;
    if is_attack flow then begin
      let pos = Prng.int rng (cfg.frags_per_flow * frag_words) in
      Tm.setup_poke sys (pool + (flow * cfg.frags_per_flow * frag_words) + pos) signature
    end
  done;
  let capture = Tqueue.create so in
  let frags =
    Array.init (cfg.flows * cfg.frags_per_flow) (fun i ->
        let flow = i / cfg.frags_per_flow and idx = i mod cfg.frags_per_flow in
        (flow * 64) + idx)
  in
  Prng.shuffle rng frags;
  Array.iter (fun f -> Tqueue.enqueue so capture f) frags;
  let reassembly = Thashmap.create so ~buckets:1024 in
  let completed = Array.make threads 0 in
  let attacks = Array.make threads 0 in
  let flow_words = cfg.frags_per_flow * frag_words in
  let worker ctx tid =
    let o = Ops.tx ctx in
    let running = ref true in
    while !running do
      match Tm.atomic ctx (fun () -> Tqueue.dequeue o capture) with
      | None -> running := false
      | Some frag ->
          let flow = frag / 64 and idx = frag mod 64 in
          let src = pool + (((flow * cfg.frags_per_flow) + idx) * frag_words) in
          let complete =
            Tm.atomic ctx (fun () ->
                let block =
                  match Thashmap.get o reassembly flow with
                  | Some b -> b
                  | None ->
                      let b = Tm.malloc ctx (1 + flow_words) in
                      Tm.store ctx b 0;
                      Thashmap.put o reassembly flow b;
                      b
                in
                (* Copy the fragment payload into place: the capture pool
                   is shared, so the compiler instruments its reads too. *)
                for w = 0 to frag_words - 1 do
                  Tm.store ctx (block + 1 + (idx * frag_words) + w) (Tm.load ctx (src + w))
                done;
                let got = Tm.load ctx block + 1 in
                Tm.store ctx block got;
                if got = cfg.frags_per_flow then begin
                  ignore (Thashmap.remove o reassembly flow);
                  Some block
                end
                else None)
          in
          (match complete with
          | Some block ->
              (* Detection: scan the assembled flow. The buffer is private
                 after removal from the shared map, so the scan is
                 non-transactional. *)
              let found = ref false in
              for w = 1 to flow_words do
                Tm.work ctx cfg.detect_work;
                if Tm.nload ctx (block + w) = signature then found := true
              done;
              completed.(tid) <- completed.(tid) + 1;
              if !found then attacks.(tid) <- attacks.(tid) + 1;
              Tm.atomic ctx (fun () -> Tm.free ctx block (1 + flow_words))
          | None -> ())
    done
  in
  let stats = Stamp_common.run_workers sys ~threads worker in
  let total_completed = Array.fold_left ( + ) 0 completed in
  let total_attacks = Array.fold_left ( + ) 0 attacks in
  let expected_attacks =
    let n = ref 0 in
    for f = 0 to cfg.flows - 1 do
      if is_attack f then incr n
    done;
    !n
  in
  {
    Stamp_common.name = "intruder";
    threads;
    cycles = Tm.makespan sys;
    stats;
    checks =
      [
        ("all flows reassembled", total_completed = cfg.flows);
        ("all attacks detected, no false positives", total_attacks = expected_attacks);
        ("reassembly map drained", Thashmap.size so reassembly = 0);
      ];
  }
