(** Registry of the STAMP-like applications evaluated in the paper
    (bayes and yada are excluded, as in the paper's Section 5). *)

type app =
  | Genome
  | Intruder
  | Kmeans_low
  | Kmeans_high
  | Labyrinth
  | Ssca2
  | Vacation_low
  | Vacation_high

val all : app list
(** In the paper's figure order. *)

val name : app -> string

val of_name : string -> app option

val run : app -> Asf_tm_rt.Tm.config -> threads:int -> Stamp_common.result
(** Runs the application at its default (simulator-scale) configuration. *)

val run_scaled : app -> scale:float -> Asf_tm_rt.Tm.config -> threads:int -> Stamp_common.result
(** Like {!run} with the main size parameter multiplied by [scale]
    (quick configurations for Bechamel hosting measurements). *)
