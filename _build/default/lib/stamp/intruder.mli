(** STAMP intruder: signature-based network intrusion detection.

    Packets of fragmented flows are drained from a shared capture queue
    (the contention hot spot that gives intruder its high abort rate in
    the paper's Fig. 6), reassembled in a shared hash map, and scanned by
    a compute-only detector once complete. *)

type cfg = {
  flows : int;
  frags_per_flow : int;
  attack_pct : int;
  detect_work : int;  (** compute cycles per reassembled byte-equivalent *)
}

val default : cfg

val run : Asf_tm_rt.Tm.config -> threads:int -> cfg -> Stamp_common.result
