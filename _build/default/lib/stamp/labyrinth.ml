module Prng = Asf_engine.Prng
module Tm = Asf_tm_rt.Tm
module Ops = Asf_dstruct.Ops
module Tqueue = Asf_dstruct.Tqueue

type cfg = {
  x : int;
  y : int;
  z : int;
  paths : int;
  work_per_cell : int;
  privatized_snapshot : bool;
}

let default =
  { x = 32; y = 32; z = 3; paths = 64; work_per_cell = 4; privatized_snapshot = false }

let run tm_cfg ~threads cfg =
  let sys = Tm.create tm_cfg in
  let so = Ops.setup sys in
  let rng = Prng.create (tm_cfg.Tm.seed + 4242_1) in
  let cells = cfg.x * cfg.y * cfg.z in
  let grid = Tm.setup_alloc sys cells in
  for c = 0 to cells - 1 do
    Tm.setup_poke sys (grid + c) 0
  done;
  let work = Tqueue.create so in
  let endpoints = Array.make (cfg.paths + 1) (0, 0) in
  let used = Hashtbl.create 64 in
  for p = 1 to cfg.paths do
    let fresh () =
      let rec pick () =
        let c = Prng.int rng cells in
        if Hashtbl.mem used c then pick ()
        else begin
          Hashtbl.add used c ();
          c
        end
      in
      pick ()
    in
    let src = fresh () and dst = fresh () in
    endpoints.(p) <- (src, dst);
    (* Endpoints are terminals: reserved in the grid so no other path may
       route through them. *)
    Tm.setup_poke sys (grid + src) (-1);
    Tm.setup_poke sys (grid + dst) (-1);
    Tqueue.enqueue so work ((src * cells) + dst)
  done;
  let neighbours c =
    let i = c mod cfg.x in
    let j = c / cfg.x mod cfg.y in
    let k = c / (cfg.x * cfg.y) in
    List.filter_map
      (fun (di, dj, dk) ->
        let i' = i + di and j' = j + dj and k' = k + dk in
        if i' < 0 || i' >= cfg.x || j' < 0 || j' >= cfg.y || k' < 0 || k' >= cfg.z
        then None
        else Some (((k' * cfg.y) + j') * cfg.x + i'))
      [ (-1, 0, 0); (1, 0, 0); (0, -1, 0); (0, 1, 0); (0, 0, -1); (0, 0, 1) ]
  in
  (* Host-side BFS over a snapshot; returns the path including endpoints. *)
  let bfs snapshot src dst =
    let prev = Array.make cells (-1) in
    let visited = Array.make cells false in
    visited.(src) <- true;
    let q = Queue.create () in
    Queue.add src q;
    let found = ref false in
    let expanded = ref 0 in
    while (not !found) && not (Queue.is_empty q) do
      let c = Queue.pop q in
      incr expanded;
      List.iter
        (fun n ->
          if (not visited.(n)) && (snapshot.(n) = 0 || n = dst) then begin
            visited.(n) <- true;
            prev.(n) <- c;
            if n = dst then found := true else Queue.add n q
          end)
        (neighbours c)
    done;
    if not !found then (None, !expanded)
    else begin
      let rec collect c acc = if c = src then src :: acc else collect prev.(c) (c :: acc) in
      (Some (collect dst []), !expanded)
    end
  in
  let path_ids = Array.make threads [] in
  let failed = Array.make threads 0 in
  let next_id = ref 0 in
  let worker ctx tid =
    let o = Ops.tx ctx in
    let running = ref true in
    while !running do
      match Tm.atomic ctx (fun () -> Tqueue.dequeue o work) with
      | None -> running := false
      | Some enc ->
          let src = enc / cells and dst = enc mod cells in
          incr next_id;
          let id = !next_id in
          let routed =
            Tm.atomic ctx (fun () ->
                (* The grid snapshot: transactional by default (what the
                   compiler generates for shared data — the whole grid
                   joins the read set), plain under the privatisation
                   ablation. *)
                let read = if cfg.privatized_snapshot then Tm.nload else Tm.load in
                let snapshot = Array.init cells (fun c -> read ctx (grid + c)) in
                snapshot.(src) <- 0;
                snapshot.(dst) <- 0;
                let path, expanded = bfs snapshot src dst in
                Tm.work ctx (cfg.work_per_cell * expanded);
                match path with
                | None -> None
                | Some cells_on_path ->
                    (* Revalidate and claim transactionally: any cell taken
                       since the snapshot forces a re-route. The route's own
                       endpoints legitimately hold the reservation mark. *)
                    List.iter
                      (fun c ->
                        let v = Tm.load ctx (grid + c) in
                        let expected = if c = src || c = dst then -1 else 0 in
                        if v <> expected then Tm.retry ctx;
                        Tm.store ctx (grid + c) id)
                      cells_on_path;
                    Some (List.length cells_on_path))
          in
          (match routed with
          | Some len -> path_ids.(tid) <- (id, len) :: path_ids.(tid)
          | None -> failed.(tid) <- failed.(tid) + 1)
    done
  in
  let stats = Stamp_common.run_workers sys ~threads worker in
  (* Validation: each routed id claims exactly its recorded number of
     cells, and no cell holds an unknown id. *)
  let counts = Hashtbl.create 64 in
  for c = 0 to cells - 1 do
    let v = Tm.setup_peek sys (grid + c) in
    (* -1 marks reserved endpoints of unrouted paths. *)
    if v > 0 then
      Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
  done;
  let all_paths = List.concat (Array.to_list path_ids) in
  let lengths_ok =
    List.for_all
      (fun (id, len) -> Hashtbl.find_opt counts id = Some len)
      all_paths
    && Hashtbl.length counts = List.length all_paths
  in
  let total_failed = Array.fold_left ( + ) 0 failed in
  {
    Stamp_common.name = "labyrinth";
    threads;
    cycles = Tm.makespan sys;
    stats;
    checks =
      [
        ("paths disjoint and complete", lengths_ok);
        ("all work items processed", List.length all_paths + total_failed = cfg.paths);
      ];
  }
