(** STAMP vacation: a travel-reservation system.

    Three resource tables (cars, flights, rooms) and a customer table, all
    red-black trees in simulated memory. Client transactions browse
    several random resources and book one (user transactions), query a
    customer's bill (read-only), or update tables by inserting/removing
    resources. Transactions traverse O(log n) tree paths, giving the
    medium-sized read sets that separate LLB-8 from LLB-256 in the
    paper's Fig. 4/6. The "(low)"/"(high)" configurations follow STAMP:
    high contention queries more relations per transaction and books more
    aggressively. *)

type cfg = {
  relations : int;  (** resources per table and number of customers *)
  txns : int;  (** total transactions, divided among threads (fixed problem
                    size, as in the paper's Fig. 4) *)
  queries_per_txn : int;
  user_pct : int;  (** percentage of user (reservation) transactions *)
}

val low : cfg

val high : cfg

val run : Asf_tm_rt.Tm.config -> threads:int -> cfg -> Stamp_common.result
