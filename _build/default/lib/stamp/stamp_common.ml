module Params = Asf_machine.Params
module Stats = Asf_tm_rt.Stats
module Tm = Asf_tm_rt.Tm

type result = {
  name : string;
  threads : int;
  cycles : int;
  stats : Stats.t;
  checks : (string * bool) list;
}

let ok r = List.for_all snd r.checks

let ms params r = Params.cycles_to_ms params r.cycles

module Barrier = struct
  (* One padded line: [0] arrival count, [1] generation. *)
  type t = { addr : Asf_mem.Addr.t; n : int }

  let create sys ~n =
    let addr = Tm.setup_alloc sys 2 in
    Tm.setup_poke sys addr 0;
    Tm.setup_poke sys (addr + 1) 0;
    { addr; n }

  let wait ctx b =
    let gen =
      Tm.atomic ctx (fun () ->
          let g = Tm.load ctx (b.addr + 1) in
          let c = Tm.load ctx b.addr + 1 in
          if c = b.n then begin
            Tm.store ctx b.addr 0;
            Tm.store ctx (b.addr + 1) (g + 1)
          end
          else Tm.store ctx b.addr c;
          g)
    in
    while Tm.load ctx (b.addr + 1) = gen do
      Tm.work ctx 300
    done
end

let run_workers sys ~threads body =
  let ctxs =
    List.init threads (fun tid -> Tm.spawn sys ~core:tid (fun ctx -> body ctx tid))
  in
  Tm.run sys;
  let agg = Stats.create () in
  List.iter (fun c -> Stats.add (Tm.stats c) ~into:agg) ctxs;
  agg

let chunk n ~threads ~tid =
  let per = (n + threads - 1) / threads in
  let start = tid * per in
  (min start n, min (start + per) n)
