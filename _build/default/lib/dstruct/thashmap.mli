(** Chained hash map from integer keys to integer values.

    The bucket array is packed (8 one-word bucket heads per cache line);
    chain nodes are line-padded. With a bucket count comparable to the key
    range, operations touch ~2–4 lines — the smallest transactional data
    set of the IntegerSet structures, matching the paper's observation
    that the hash set scales best and is dominated by cache misses rather
    than instrumentation. *)

type t

val create : Ops.t -> buckets:int -> t
(** [buckets] must be a power of two. *)

val handle_of_root : Asf_mem.Addr.t -> t

val meta : t -> Asf_mem.Addr.t

val get : Ops.t -> t -> int -> int option

val mem : Ops.t -> t -> int -> bool

val put : Ops.t -> t -> int -> int -> unit
(** Upsert. *)

val put_if_absent : Ops.t -> t -> int -> int -> bool
(** [false] if the key was present (value untouched). *)

val remove : Ops.t -> t -> int -> bool

val size : Ops.t -> t -> int

val iter : Ops.t -> t -> (int -> int -> unit) -> unit
(** Setup/validation traversal; not transactional-friendly (touches every
    bucket). *)
