(** Skip list over integer keys (IntegerSet skip-list variant).

    Geometric level distribution (p = 1/2) drawn from the operation
    context's deterministic PRNG. Each node occupies one or two cache
    lines, so transactions read O(log n) lines — comfortably inside
    LLB-256 but beyond LLB-8 for the paper's ranges. *)

type t

val create : Ops.t -> ?max_level:int -> unit -> t
(** [max_level] defaults to 16. *)

val handle_of_root : Asf_mem.Addr.t -> t

val root : t -> Asf_mem.Addr.t

val contains : Ops.t -> t -> int -> bool

val add : Ops.t -> t -> int -> bool

val remove : Ops.t -> t -> int -> bool

val to_list : Ops.t -> t -> int list
(** Ascending keys (validation). *)
