(** Sorted singly-linked integer list (the IntegerSet linked-list variant).

    Each node occupies one cache line (padding against false sharing, as
    the paper applies to data-structure entry points), so a traversal of
    [k] nodes protects [k] lines — the workload that makes LLB-8 fall back
    to serial mode (Fig. 5/7) unless early release is used (Fig. 8).

    When built with early-release operations ({!Ops.tx_er}), traversals
    keep only a hand-over-hand window of two nodes in the read set, the
    technique of the paper's Fig. 8. *)

type t
(** Handle (host-side record of simulated-memory addresses). *)

val create : Ops.t -> t
(** Allocates the head sentinel. *)

val handle_of_root : Asf_mem.Addr.t -> t
(** Re-create a handle from {!root} (to share a structure across threads). *)

val root : t -> Asf_mem.Addr.t

val contains : Ops.t -> t -> int -> bool

val add : Ops.t -> t -> int -> bool
(** [false] if the key was already present. *)

val remove : Ops.t -> t -> int -> bool
(** [false] if the key was absent. *)

val size : Ops.t -> t -> int
(** O(n) walk (used in setup/validation). *)

val to_list : Ops.t -> t -> int list
(** Keys in ascending order (setup/validation). *)
