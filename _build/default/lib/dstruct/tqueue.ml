(* Metadata spans two lines: word 0 = head pointer (line 1), word 8 = tail
   pointer (line 2). Node (one padded line): [0] value, [1] next. *)

type t = { meta : Asf_mem.Addr.t }

let head_of = 0

let tail_of = 8

let node_words = 2

let create (o : Ops.t) =
  let meta = o.alloc 16 in
  o.st (meta + head_of) 0;
  o.st (meta + tail_of) 0;
  { meta }

let handle_of_root meta = { meta }

let meta t = t.meta

let enqueue (o : Ops.t) t v =
  let node = o.alloc node_words in
  o.st node v;
  o.st (node + 1) 0;
  let tail = o.ld (t.meta + tail_of) in
  if tail = 0 then begin
    o.st (t.meta + head_of) node;
    o.st (t.meta + tail_of) node
  end
  else begin
    o.st (tail + 1) node;
    o.st (t.meta + tail_of) node
  end

let dequeue (o : Ops.t) t =
  let head = o.ld (t.meta + head_of) in
  if head = 0 then None
  else begin
    let v = o.ld head in
    let next = o.ld (head + 1) in
    o.st (t.meta + head_of) next;
    if next = 0 then o.st (t.meta + tail_of) 0;
    o.free head node_words;
    Some v
  end

let is_empty (o : Ops.t) t = o.ld (t.meta + head_of) = 0

let length (o : Ops.t) t =
  let rec go n acc = if n = 0 then acc else go (o.ld (n + 1)) (acc + 1) in
  go (o.ld (t.meta + head_of)) 0
