type t = { map : Thashmap.t }

let create o ~buckets = { map = Thashmap.create o ~buckets }

let handle_of_root meta = { map = Thashmap.handle_of_root meta }

let meta t = Thashmap.meta t.map

let contains o t k = Thashmap.mem o t.map k

let add o t k = Thashmap.put_if_absent o t.map k 0

let remove o t k = Thashmap.remove o t.map k

let size o t = Thashmap.size o t.map

let to_list o t =
  let acc = ref [] in
  Thashmap.iter o t.map (fun k _ -> acc := k :: !acc);
  !acc
