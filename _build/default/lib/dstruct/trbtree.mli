(** Red-black tree mapping integer keys to integer values (the IntegerSet
    red-black-tree variant and the table type of the vacation benchmark).

    CLRS-style with an explicit nil sentinel node. Each node is one padded
    cache line, so an operation's read set is the root-to-leaf path
    (~2·log2 n lines) plus rebalancing writes — the structure with the
    highest ASF-vs-STM load/store speed-up in Table 1. *)

type t

val create : Ops.t -> t

val handle_of_root : Asf_mem.Addr.t -> t
(** From {!meta}. *)

val meta : t -> Asf_mem.Addr.t

val find : Ops.t -> t -> int -> int option

val mem : Ops.t -> t -> int -> bool

val insert : Ops.t -> t -> int -> int -> bool
(** [insert o t k v] returns [false] (leaving the value untouched) if [k]
    is present — set semantics, matching STAMP's [rbtree_insert]. *)

val update : Ops.t -> t -> int -> int -> unit
(** Upsert. *)

val remove : Ops.t -> t -> int -> bool

val size : Ops.t -> t -> int

val to_list : Ops.t -> t -> (int * int) list
(** In ascending key order (validation). *)

val check_invariants : Ops.t -> t -> (unit, string) result
(** Validates BST order, red-red freedom, and black-height balance
    (test support). *)
