(** Transactional FIFO queue of integer payloads (work distribution in the
    intruder and labyrinth benchmarks). Head and tail pointers live on
    separate cache lines so enqueuers and dequeuers conflict only when the
    queue is near-empty. *)

type t

val create : Ops.t -> t

val handle_of_root : Asf_mem.Addr.t -> t

val meta : t -> Asf_mem.Addr.t

val enqueue : Ops.t -> t -> int -> unit

val dequeue : Ops.t -> t -> int option

val is_empty : Ops.t -> t -> bool

val length : Ops.t -> t -> int
(** O(n) walk (validation). *)
