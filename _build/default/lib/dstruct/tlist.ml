(* Node layout (one padded line): [0] key, [1] next. The list starts with
   a head sentinel of key min_int; 0 is the null pointer. *)

type t = { head : Asf_mem.Addr.t }

let node_words = 2

let key_of = 0

let next_of = 1

let create (o : Ops.t) =
  let head = o.alloc node_words in
  o.st (head + key_of) min_int;
  o.st (head + next_of) 0;
  { head }

let handle_of_root head = { head }

let root t = t.head

(* Returns (prev, cur) with cur the first node of key >= k (cur may be 0).
   With early release, all traversed nodes except the hand-over-hand
   window (prev, cur) are dropped from the read set. *)
let locate (o : Ops.t) t k =
  let rec go prev cur =
    if cur = 0 then (prev, cur)
    else begin
      let key = o.ld (cur + key_of) in
      if key >= k then (prev, cur)
      else begin
        let next = o.ld (cur + next_of) in
        o.release prev;
        go cur next
      end
    end
  in
  go t.head (o.ld (t.head + next_of))

let contains (o : Ops.t) t k =
  let _, cur = locate o t k in
  cur <> 0 && o.ld (cur + key_of) = k

let add (o : Ops.t) t k =
  let prev, cur = locate o t k in
  if cur <> 0 && o.ld (cur + key_of) = k then false
  else begin
    let node = o.alloc node_words in
    o.st (node + key_of) k;
    o.st (node + next_of) cur;
    o.st (prev + next_of) node;
    true
  end

let remove (o : Ops.t) t k =
  let prev, cur = locate o t k in
  if cur = 0 || o.ld (cur + key_of) <> k then false
  else begin
    (* Mark the removed node before unlinking. Under early release a
       concurrent hand-over-hand traverser may hold only [cur] of the pair
       being relinked; the mark puts [cur] in this transaction's write set
       so that traverser is doomed instead of linking onto a dead node. *)
    o.st (cur + key_of) max_int;
    o.st (prev + next_of) (o.ld (cur + next_of));
    o.free cur node_words;
    true
  end

let to_list (o : Ops.t) t =
  let rec go cur acc =
    if cur = 0 then List.rev acc
    else go (o.ld (cur + next_of)) (o.ld (cur + key_of) :: acc)
  in
  go (o.ld (t.head + next_of)) []

let size o t = List.length (to_list o t)
