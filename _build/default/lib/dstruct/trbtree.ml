(* CLRS red-black tree with an explicit nil sentinel node (the sentinel's
   parent field is genuinely written during deletion, which is why it must
   be a real node in simulated memory).

   Node layout (one padded line):
   [0] key, [1] value, [2] left, [3] right, [4] parent, [5] color.
   Handle metadata: [0] root pointer, [1] nil address. *)

type t = { meta : Asf_mem.Addr.t }

let f_key = 0

let f_value = 1

let f_left = 2

let f_right = 3

let f_parent = 4

let f_color = 5

let node_words = 6

let black = 0

let red = 1

let m_root = 0

let m_nil = 1

let create (o : Ops.t) =
  let nil = o.alloc node_words in
  o.st (nil + f_color) black;
  o.st (nil + f_left) nil;
  o.st (nil + f_right) nil;
  o.st (nil + f_parent) nil;
  let meta = o.alloc 2 in
  o.st (meta + m_root) nil;
  o.st (meta + m_nil) nil;
  { meta }

let handle_of_root meta = { meta }

let meta t = t.meta

let nil (o : Ops.t) t = o.ld (t.meta + m_nil)

let root (o : Ops.t) t = o.ld (t.meta + m_root)

let set_root (o : Ops.t) t n = o.st (t.meta + m_root) n

let key (o : Ops.t) n = o.ld (n + f_key)

let left (o : Ops.t) n = o.ld (n + f_left)

let right (o : Ops.t) n = o.ld (n + f_right)

let parent (o : Ops.t) n = o.ld (n + f_parent)

let color (o : Ops.t) n = o.ld (n + f_color)

let search (o : Ops.t) t k =
  let nil = nil o t in
  let rec go n =
    if n = nil then nil
    else
      let nk = key o n in
      if k = nk then n else if k < nk then go (left o n) else go (right o n)
  in
  go (root o t)

let find (o : Ops.t) t k =
  let n = search o t k in
  if n = nil o t then None else Some (o.ld (n + f_value))

let mem (o : Ops.t) t k = search o t k <> nil o t

let left_rotate (o : Ops.t) t x =
  let nil = nil o t in
  let y = right o x in
  o.st (x + f_right) (left o y);
  if left o y <> nil then o.st (left o y + f_parent) x;
  o.st (y + f_parent) (parent o x);
  if parent o x = nil then set_root o t y
  else if x = left o (parent o x) then o.st (parent o x + f_left) y
  else o.st (parent o x + f_right) y;
  o.st (y + f_left) x;
  o.st (x + f_parent) y

let right_rotate (o : Ops.t) t x =
  let nil = nil o t in
  let y = left o x in
  o.st (x + f_left) (right o y);
  if right o y <> nil then o.st (right o y + f_parent) x;
  o.st (y + f_parent) (parent o x);
  if parent o x = nil then set_root o t y
  else if x = right o (parent o x) then o.st (parent o x + f_right) y
  else o.st (parent o x + f_left) y;
  o.st (y + f_right) x;
  o.st (x + f_parent) y

let rec insert_fixup (o : Ops.t) t z =
  if color o (parent o z) = red then begin
    let p = parent o z in
    let g = parent o p in
    if p = left o g then begin
      let u = right o g in
      if color o u = red then begin
        o.st (p + f_color) black;
        o.st (u + f_color) black;
        o.st (g + f_color) red;
        insert_fixup o t g
      end
      else begin
        let z = if z = right o p then (left_rotate o t p; p) else z in
        let p = parent o z in
        let g = parent o p in
        o.st (p + f_color) black;
        o.st (g + f_color) red;
        right_rotate o t g;
        insert_fixup o t z
      end
    end
    else begin
      let u = left o g in
      if color o u = red then begin
        o.st (p + f_color) black;
        o.st (u + f_color) black;
        o.st (g + f_color) red;
        insert_fixup o t g
      end
      else begin
        let z = if z = left o p then (right_rotate o t p; p) else z in
        let p = parent o z in
        let g = parent o p in
        o.st (p + f_color) black;
        o.st (g + f_color) red;
        left_rotate o t g;
        insert_fixup o t z
      end
    end
  end

let insert_node (o : Ops.t) t k v ~upsert =
  let nil = nil o t in
  let rec descend x y =
    if x = nil then `Attach y
    else
      let xk = key o x in
      if k = xk then `Present x
      else if k < xk then descend (left o x) x
      else descend (right o x) x
  in
  match descend (root o t) nil with
  | `Present n ->
      if upsert then o.st (n + f_value) v;
      false
  | `Attach y ->
      let z = o.alloc node_words in
      o.st (z + f_key) k;
      o.st (z + f_value) v;
      o.st (z + f_left) nil;
      o.st (z + f_right) nil;
      o.st (z + f_parent) y;
      o.st (z + f_color) red;
      if y = nil then set_root o t z
      else if k < key o y then o.st (y + f_left) z
      else o.st (y + f_right) z;
      insert_fixup o t z;
      o.st (root o t + f_color) black;
      true

let insert o t k v = insert_node o t k v ~upsert:false

let update o t k v = ignore (insert_node o t k v ~upsert:true)

let rec minimum (o : Ops.t) ~nil n =
  if left o n = nil then n else minimum o ~nil (left o n)

let transplant (o : Ops.t) t u v =
  let nil = nil o t in
  if parent o u = nil then set_root o t v
  else if u = left o (parent o u) then o.st (parent o u + f_left) v
  else o.st (parent o u + f_right) v;
  o.st (v + f_parent) (parent o u)

let rec delete_fixup (o : Ops.t) t x =
  if x <> root o t && color o x = black then begin
    let p = parent o x in
    if x = left o p then begin
      let w = ref (right o p) in
      if color o !w = red then begin
        o.st (!w + f_color) black;
        o.st (p + f_color) red;
        left_rotate o t p;
        w := right o p
      end;
      if color o (left o !w) = black && color o (right o !w) = black then begin
        o.st (!w + f_color) red;
        delete_fixup o t p
      end
      else begin
        if color o (right o !w) = black then begin
          o.st (left o !w + f_color) black;
          o.st (!w + f_color) red;
          right_rotate o t !w;
          w := right o p
        end;
        o.st (!w + f_color) (color o p);
        o.st (p + f_color) black;
        o.st (right o !w + f_color) black;
        left_rotate o t p;
        o.st (root o t + f_color) black
      end
    end
    else begin
      let w = ref (left o p) in
      if color o !w = red then begin
        o.st (!w + f_color) black;
        o.st (p + f_color) red;
        right_rotate o t p;
        w := left o p
      end;
      if color o (right o !w) = black && color o (left o !w) = black then begin
        o.st (!w + f_color) red;
        delete_fixup o t p
      end
      else begin
        if color o (left o !w) = black then begin
          o.st (right o !w + f_color) black;
          o.st (!w + f_color) red;
          left_rotate o t !w;
          w := left o p
        end;
        o.st (!w + f_color) (color o p);
        o.st (p + f_color) black;
        o.st (left o !w + f_color) black;
        right_rotate o t p;
        o.st (root o t + f_color) black
      end
    end
  end
  else o.st (x + f_color) black

let remove (o : Ops.t) t k =
  let nil = nil o t in
  let z = search o t k in
  if z = nil then false
  else begin
    let y_color = ref (color o z) in
    let x =
      if left o z = nil then begin
        let x = right o z in
        transplant o t z x;
        x
      end
      else if right o z = nil then begin
        let x = left o z in
        transplant o t z x;
        x
      end
      else begin
        let y = minimum o ~nil (right o z) in
        y_color := color o y;
        let x = right o y in
        if parent o y = z then o.st (x + f_parent) y
        else begin
          transplant o t y x;
          o.st (y + f_right) (right o z);
          o.st (right o y + f_parent) y
        end;
        transplant o t z y;
        o.st (y + f_left) (left o z);
        o.st (left o y + f_parent) y;
        o.st (y + f_color) (color o z);
        x
      end
    in
    if !y_color = black then delete_fixup o t x;
    o.free z node_words;
    true
  end

let fold (o : Ops.t) t f acc =
  let nil = nil o t in
  let rec go n acc =
    if n = nil then acc
    else
      let acc = go (left o n) acc in
      let acc = f (key o n) (o.ld (n + f_value)) acc in
      go (right o n) acc
  in
  go (root o t) acc

let to_list o t = List.rev (fold o t (fun k v acc -> (k, v) :: acc) [])

let size o t = fold o t (fun _ _ n -> n + 1) 0

let check_invariants (o : Ops.t) t =
  let nil = nil o t in
  let exception Violation of string in
  let rec go n lo hi =
    if n = nil then 1 (* black height contribution of leaves *)
    else begin
      let k = key o n in
      (match lo with Some l when k <= l -> raise (Violation "BST order (low)") | _ -> ());
      (match hi with Some h when k >= h -> raise (Violation "BST order (high)") | _ -> ());
      let c = color o n in
      if c = red && (color o (left o n) = red || color o (right o n) = red) then
        raise (Violation "red node with red child");
      let bl = go (left o n) lo (Some k) in
      let br = go (right o n) (Some k) hi in
      if bl <> br then raise (Violation "black height mismatch");
      bl + if c = black then 1 else 0
    end
  in
  match
    if root o t <> nil && color o (root o t) = red then
      raise (Violation "red root");
    go (root o t) None None
  with
  | _ -> Ok ()
  | exception Violation msg -> Error msg
