(** Integer hash set: a thin wrapper over {!Thashmap} (value 0), the
    IntegerSet hash-set variant. *)

type t

val create : Ops.t -> buckets:int -> t

val handle_of_root : Asf_mem.Addr.t -> t

val meta : t -> Asf_mem.Addr.t

val contains : Ops.t -> t -> int -> bool

val add : Ops.t -> t -> int -> bool

val remove : Ops.t -> t -> int -> bool

val size : Ops.t -> t -> int

val to_list : Ops.t -> t -> int list
(** Unordered (validation). *)
