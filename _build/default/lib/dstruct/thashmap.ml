(* Metadata: [0] bucket count, [1] bucket-array base.
   Bucket: one word holding the chain head (0 = empty).
   Chain node (one padded line): [0] key, [1] value, [2] next. *)

type t = { meta : Asf_mem.Addr.t }

let f_key = 0

let f_value = 1

let f_next = 2

let node_words = 3

let create (o : Ops.t) ~buckets =
  if buckets <= 0 || buckets land (buckets - 1) <> 0 then
    invalid_arg "Thashmap.create: buckets must be a power of two";
  let base = o.alloc buckets in
  for i = 0 to buckets - 1 do
    o.st (base + i) 0
  done;
  let meta = o.alloc 2 in
  o.st meta buckets;
  o.st (meta + 1) base;
  { meta }

let handle_of_root meta = { meta }

let meta t = t.meta

let bucket_of (o : Ops.t) t k =
  let n = o.ld t.meta in
  let base = o.ld (t.meta + 1) in
  base + (k * 0x9E3779B1 lsr 6 land (n - 1))

let find_node (o : Ops.t) t k =
  let rec go n = if n = 0 || o.ld (n + f_key) = k then n else go (o.ld (n + f_next)) in
  go (o.ld (bucket_of o t k))

let get (o : Ops.t) t k =
  let n = find_node o t k in
  if n = 0 then None else Some (o.ld (n + f_value))

let mem (o : Ops.t) t k = find_node o t k <> 0

let insert_fresh (o : Ops.t) bucket k v =
  let node = o.alloc node_words in
  o.st (node + f_key) k;
  o.st (node + f_value) v;
  o.st (node + f_next) (o.ld bucket);
  o.st bucket node

let put (o : Ops.t) t k v =
  let n = find_node o t k in
  if n <> 0 then o.st (n + f_value) v else insert_fresh o (bucket_of o t k) k v

let put_if_absent (o : Ops.t) t k v =
  if find_node o t k <> 0 then false
  else begin
    insert_fresh o (bucket_of o t k) k v;
    true
  end

let remove (o : Ops.t) t k =
  let bucket = bucket_of o t k in
  let rec go prev n =
    if n = 0 then false
    else if o.ld (n + f_key) = k then begin
      let next = o.ld (n + f_next) in
      if prev = 0 then o.st bucket next else o.st (prev + f_next) next;
      o.free n node_words;
      true
    end
    else go n (o.ld (n + f_next))
  in
  go 0 (o.ld bucket)

let iter (o : Ops.t) t f =
  let n = o.ld t.meta in
  let base = o.ld (t.meta + 1) in
  for i = 0 to n - 1 do
    let rec chain node =
      if node <> 0 then begin
        f (o.ld (node + f_key)) (o.ld (node + f_value));
        chain (o.ld (node + f_next))
      end
    in
    chain (o.ld (base + i))
  done

let size o t =
  let count = ref 0 in
  iter o t (fun _ _ -> incr count);
  !count
