(* Node layout: [0] key, [1] level, [2..2+level-1] next pointers.
   The head sentinel has max_level pointers and key min_int; 0 is null.
   The handle stores max_level in the head's level field, so a handle can
   be reconstructed from the head address alone. *)

type t = { head : Asf_mem.Addr.t }

let key_of = 0

let level_of = 1

let next_of l = 2 + l

let default_max_level = 16

let create (o : Ops.t) ?(max_level = default_max_level) () =
  let head = o.alloc (2 + max_level) in
  o.st (head + key_of) min_int;
  o.st (head + level_of) max_level;
  for l = 0 to max_level - 1 do
    o.st (head + next_of l) 0
  done;
  { head }

let handle_of_root head = { head }

let root t = t.head

let max_level (o : Ops.t) t = o.ld (t.head + level_of)

(* Geometric level in [1, max]: flip bits until a zero. *)
let random_level (o : Ops.t) ~max =
  let bits = o.rand_bits () in
  let rec go l bits =
    if l >= max || bits land 1 = 0 then l else go (l + 1) (bits lsr 1)
  in
  go 1 bits

(* Fill [preds] so that preds.(l) is the rightmost node at level l with
   key < k; returns the candidate node at level 0 (possibly null). *)
let locate (o : Ops.t) t k preds =
  let levels = max_level o t in
  let rec descend node l =
    if l < 0 then node
    else begin
      let rec walk node =
        let next = o.ld (node + next_of l) in
        if next <> 0 && o.ld (next + key_of) < k then walk next else node
      in
      let node = walk node in
      preds.(l) <- node;
      descend node (l - 1)
    end
  in
  let pred = descend t.head (levels - 1) in
  o.ld (pred + next_of 0)

let contains (o : Ops.t) t k =
  let preds = Array.make (max_level o t) 0 in
  let cand = locate o t k preds in
  cand <> 0 && o.ld (cand + key_of) = k

let add (o : Ops.t) t k =
  let levels = max_level o t in
  let preds = Array.make levels 0 in
  let cand = locate o t k preds in
  if cand <> 0 && o.ld (cand + key_of) = k then false
  else begin
    let node_level = random_level o ~max:levels in
    let node = o.alloc (2 + node_level) in
    o.st (node + key_of) k;
    o.st (node + level_of) node_level;
    for l = 0 to node_level - 1 do
      o.st (node + next_of l) (o.ld (preds.(l) + next_of l));
      o.st (preds.(l) + next_of l) node
    done;
    true
  end

let remove (o : Ops.t) t k =
  let levels = max_level o t in
  let preds = Array.make levels 0 in
  let cand = locate o t k preds in
  if cand = 0 || o.ld (cand + key_of) <> k then false
  else begin
    let node_level = o.ld (cand + level_of) in
    for l = 0 to node_level - 1 do
      if o.ld (preds.(l) + next_of l) = cand then
        o.st (preds.(l) + next_of l) (o.ld (cand + next_of l))
    done;
    o.free cand (2 + node_level);
    true
  end

let to_list (o : Ops.t) t =
  let rec go node acc =
    if node = 0 then List.rev acc
    else go (o.ld (node + next_of 0)) (o.ld (node + key_of) :: acc)
  in
  go (o.ld (t.head + next_of 0)) []
