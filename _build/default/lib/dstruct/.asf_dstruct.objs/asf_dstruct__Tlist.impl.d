lib/dstruct/tlist.ml: Asf_mem List Ops
