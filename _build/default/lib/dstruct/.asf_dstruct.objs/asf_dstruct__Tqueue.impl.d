lib/dstruct/tqueue.ml: Asf_mem Ops
