lib/dstruct/ops.mli: Asf_mem Asf_tm_rt
