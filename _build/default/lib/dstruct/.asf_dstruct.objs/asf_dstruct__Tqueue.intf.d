lib/dstruct/tqueue.mli: Asf_mem Ops
