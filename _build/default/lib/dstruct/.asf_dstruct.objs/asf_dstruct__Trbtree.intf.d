lib/dstruct/trbtree.mli: Asf_mem Ops
