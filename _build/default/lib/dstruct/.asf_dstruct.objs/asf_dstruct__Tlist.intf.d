lib/dstruct/tlist.mli: Asf_mem Ops
