lib/dstruct/tskiplist.mli: Asf_mem Ops
