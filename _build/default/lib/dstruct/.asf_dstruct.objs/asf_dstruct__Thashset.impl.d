lib/dstruct/thashset.ml: Thashmap
