lib/dstruct/tskiplist.ml: Array Asf_mem List Ops
