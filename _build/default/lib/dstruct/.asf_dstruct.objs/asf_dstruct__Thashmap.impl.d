lib/dstruct/thashmap.ml: Asf_mem Ops
