lib/dstruct/thashmap.mli: Asf_mem Ops
