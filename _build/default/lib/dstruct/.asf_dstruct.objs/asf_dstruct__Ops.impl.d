lib/dstruct/ops.ml: Asf_engine Asf_mem Asf_tm_rt
