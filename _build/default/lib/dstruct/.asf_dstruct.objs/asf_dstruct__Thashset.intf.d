lib/dstruct/thashset.mli: Asf_mem Ops
