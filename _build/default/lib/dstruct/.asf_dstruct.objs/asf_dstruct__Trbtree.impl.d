lib/dstruct/trbtree.ml: Asf_mem List Ops
