(** Transactional memory allocator (the ASF-TM custom [malloc]).

    Executing the standard allocator inside a speculative region would be
    unsafe: an asynchronous abort could leave its metadata half-updated.
    ASF-TM therefore gives each thread a caching allocator whose
    in-transaction operations touch only thread-local state that can be
    rolled back:

    - allocations pop a size-class free list or bump the current chunk;
      both are undone on abort;
    - frees are deferred to commit (and dropped on abort);
    - chunk refills call the global allocator and are performed only
      {e outside} transactions; if an in-transaction allocation cannot be
      satisfied, the caller must abort with reason [Malloc] and let the
      serial-irrevocable retry allocate directly ("Abort (malloc)" in the
      paper's Fig. 6).

    Fresh chunks are address-space reservations: their pages stay unmapped
    until first touch, so initialising a freshly allocated node inside a
    transaction can raise a page-fault abort — the dominant abort cause for
    the hash-set benchmark in Table 1.

    All block sizes are rounded up to whole cache lines (the padding the
    paper applies to avoid false-sharing aborts). *)

type t

val create : ?chunk_words:int -> Asf_mem.Alloc.t -> t
(** One pool per thread; [chunk_words] (default 4096) is the refill
    granularity. *)

val refill : t -> bool
(** Top up the chunk from the global allocator if it runs low. Must be
    called outside transactions (the runtime does, at [atomic] entry).
    Returns whether a refill happened (so the caller can charge cycles). *)

(** {1 Attempt lifecycle} *)

val attempt_begin : t -> unit

val attempt_abort : t -> unit
(** Undo the attempt's pops and bumps; drop deferred frees. *)

val attempt_commit : t -> unit
(** Apply deferred frees to the free lists. *)

(** {1 Operations} *)

val alloc_tx : t -> int -> Asf_mem.Addr.t option
(** In-transaction allocation; [None] means the pool cannot satisfy it
    speculatively (caller must Malloc-abort). *)

val alloc_direct : t -> int -> Asf_mem.Addr.t
(** Serial / non-transactional allocation; may refill inline. *)

val free_tx : t -> Asf_mem.Addr.t -> int -> unit
(** [free_tx t addr words] defers the free to commit. *)

val free_direct : t -> Asf_mem.Addr.t -> int -> unit

val chunk_remaining : t -> int
(** Words left in the current bump chunk (diagnostics). *)
