module Addr = Asf_mem.Addr
module Alloc = Asf_mem.Alloc

type undo = Pop of int * Addr.t | Bump of int

type t = {
  galloc : Alloc.t;
  chunk_words : int;
  mutable chunk_base : Addr.t;
  mutable chunk_size : int;
  mutable chunk_used : int;
  free_lists : (int, Addr.t list ref) Hashtbl.t;
  mutable undo : undo list;
  mutable deferred : (Addr.t * int) list;
}

let create ?(chunk_words = 4096) galloc =
  {
    galloc;
    chunk_words;
    chunk_base = 0;
    chunk_size = 0;
    chunk_used = 0;
    free_lists = Hashtbl.create 16;
    undo = [];
    deferred = [];
  }

let rounded words = Addr.lines_of_words words * Addr.words_per_line

let free_list t size =
  match Hashtbl.find_opt t.free_lists size with
  | Some l -> l
  | None ->
      let l = ref [] in
      Hashtbl.add t.free_lists size l;
      l

let new_chunk t =
  t.chunk_base <- Alloc.alloc t.galloc ~align:Addr.words_per_line t.chunk_words;
  t.chunk_size <- t.chunk_words;
  t.chunk_used <- 0

let chunk_remaining t = t.chunk_size - t.chunk_used

let refill t =
  if chunk_remaining t < t.chunk_words / 4 then begin
    new_chunk t;
    true
  end
  else false

let attempt_begin t =
  t.undo <- [];
  t.deferred <- []

let attempt_abort t =
  List.iter
    (function
      | Pop (size, addr) ->
          let l = free_list t size in
          l := addr :: !l
      | Bump old -> t.chunk_used <- old)
    t.undo;
  t.undo <- [];
  t.deferred <- []

let attempt_commit t =
  List.iter
    (fun (addr, size) ->
      let l = free_list t (rounded size) in
      l := addr :: !l)
    t.deferred;
  t.undo <- [];
  t.deferred <- []

let pop_free t size =
  let l = free_list t size in
  match !l with
  | addr :: rest ->
      l := rest;
      Some addr
  | [] -> None

let bump t size =
  if chunk_remaining t >= size then begin
    let addr = t.chunk_base + t.chunk_used in
    t.chunk_used <- t.chunk_used + size;
    Some addr
  end
  else None

let alloc_tx t words =
  let size = rounded words in
  match pop_free t size with
  | Some addr ->
      t.undo <- Pop (size, addr) :: t.undo;
      Some addr
  | None -> (
      let old = t.chunk_used in
      match bump t size with
      | Some addr ->
          t.undo <- Bump old :: t.undo;
          Some addr
      | None -> None)

let alloc_direct t words =
  let size = rounded words in
  match pop_free t size with
  | Some addr -> addr
  | None -> (
      match bump t size with
      | Some addr -> addr
      | None ->
          if size > t.chunk_words / 2 then
            (* Oversized request: straight to the global allocator. *)
            Alloc.alloc t.galloc ~align:Addr.words_per_line size
          else begin
            new_chunk t;
            match bump t size with
            | Some addr -> addr
            | None -> assert false
          end)

let free_tx t addr words = t.deferred <- (addr, words) :: t.deferred

let free_direct t addr words =
  let l = free_list t (rounded words) in
  l := addr :: !l
