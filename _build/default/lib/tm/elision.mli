(** Transactional lock elision (Rajwar & Goodman), the mechanism the
    paper's stack offers to lock-based programs (Section 3): a critical
    section executes as a speculative region that merely {e subscribes} to
    the lock word instead of acquiring it, so non-conflicting critical
    sections of the same lock run in parallel. A thread that actually
    acquires the lock (a legacy path, or the fallback) writes the lock
    word and thereby — through ordinary requester-wins conflict
    detection — aborts every elided section in flight.

    The fallback is taken in serial-irrevocable mode, where the real lock
    is acquired so that raw {!acquire}/{!release} users remain mutually
    exclusive with fallen-back sections. *)

type t
(** A simulated spin lock usable both elided and conventionally. *)

val make : Tm.system -> t
(** Allocates the lock word (own cache line) during setup. *)

val with_lock : Tm.ctx -> t -> (unit -> 'a) -> 'a
(** Run a critical section, elided when possible. *)

val acquire : Tm.ctx -> t -> unit
(** Conventional (non-elided) spin acquisition — the legacy code path.
    Aborts all concurrent elided sections of this lock. *)

val release : Tm.ctx -> t -> unit

val held : Tm.system -> t -> bool
(** Untimed inspection (tests). *)
