lib/tm/tm.ml: Asf_cache Asf_core Asf_engine Asf_machine Asf_mem Asf_stm Fun Option Stats Txmalloc
