lib/tm/stats.mli: Asf_core
