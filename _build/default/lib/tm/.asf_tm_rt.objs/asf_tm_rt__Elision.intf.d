lib/tm/elision.mli: Tm
