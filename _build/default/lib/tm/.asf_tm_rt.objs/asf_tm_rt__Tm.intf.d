lib/tm/tm.mli: Asf_cache Asf_core Asf_engine Asf_machine Asf_mem Asf_stm Stats
