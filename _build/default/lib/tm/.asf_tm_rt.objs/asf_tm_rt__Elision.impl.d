lib/tm/elision.ml: Asf_cache Asf_engine Asf_mem Fun Tm
