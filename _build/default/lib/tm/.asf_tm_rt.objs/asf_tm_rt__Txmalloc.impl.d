lib/tm/txmalloc.ml: Asf_mem Hashtbl List
