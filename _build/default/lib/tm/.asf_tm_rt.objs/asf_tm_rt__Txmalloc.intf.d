lib/tm/txmalloc.mli: Asf_mem
