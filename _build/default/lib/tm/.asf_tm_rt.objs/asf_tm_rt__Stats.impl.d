lib/tm/stats.ml: Array Asf_core Stack
