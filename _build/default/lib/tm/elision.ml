module Engine = Asf_engine.Engine
module Memsys = Asf_cache.Memsys

type t = { word : Asf_mem.Addr.t }

let make sys =
  let word = Tm.setup_alloc sys 1 in
  Tm.setup_poke sys word 0;
  { word }

let spin_acquire ctx word =
  let sys = Tm.system ctx in
  let mem = Tm.memsys sys in
  let core = Tm.core ctx in
  let rec go () =
    if not (Memsys.cas mem ~core word ~expect:0 ~value:(core + 1)) then begin
      Engine.elapse 150;
      go ()
    end
  in
  go ()

let acquire ctx t = spin_acquire ctx t.word

let release ctx t =
  let mem = Tm.memsys (Tm.system ctx) in
  Memsys.store mem ~core:(Tm.core ctx) t.word 0

let with_lock ctx t f =
  Tm.atomic ctx (fun () ->
      if Tm.serial_mode ctx then begin
        (* Fallback: really take the lock, so raw acquirers and this
           serial section exclude each other. *)
        acquire ctx t;
        Fun.protect ~finally:(fun () -> release ctx t) f
      end
      else if Tm.load ctx t.word <> 0 then
        (* Lock held by a conventional owner: abort, back off, retry —
           the speculative region never blocks while holding state. *)
        Tm.retry ctx
      else f ())

let held sys t = Tm.setup_peek sys t.word <> 0
