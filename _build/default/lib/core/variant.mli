(** ASF hardware implementation variants (Section 2.3 of the paper).

    The paper describes three implementation strategies; its simulator
    implements the last two, and this library implements all three:

    - {e cache-based}: both the read and the write set live in the L1 via
      speculative-read/-write bits; capacity is potentially the whole L1
      but bounded by its (2-way) associativity, and any displacement of a
      protected line aborts ({!cache_based} — our extension beyond the
      paper's simulator);
    - {e LLB-based}: a fully-associative locked-line buffer holds every
      protected line plus backups of written lines; capacity is the entry
      count, with no associativity constraints ({!llb8}, {!llb256});
    - {e hybrid}: the L1 tracks speculatively-read lines while the LLB
      backs up the write set ({!llb8_l1}, {!llb256_l1}).

    [llb_entries] bounds the LLB where one is used ([max_int] means no
    LLB bound, i.e. write capacity is governed by the L1). *)

type t = {
  name : string;
  llb_entries : int;
  l1_read_set : bool;  (** reads tracked by L1 residency *)
  l1_write_set : bool;  (** writes also require L1 residency (cache-based
                            implementation); backups are per-line, not
                            LLB-bounded *)
}

val llb8 : t
(** "LLB-8" *)

val llb256 : t
(** "LLB-256" *)

val llb8_l1 : t
(** "LLB-8 w/ L1" *)

val llb256_l1 : t
(** "LLB-256 w/ L1" *)

val cache_based : t
(** "L1 cache-based": the first implementation variant of Section 2.3.
    Not part of the paper's evaluation (their simulator implemented only
    the other two); provided for the ablation [abl-cache]. *)

val all : t list
(** The four variants evaluated in the paper, in figure order
    (excludes {!cache_based}). *)

val min_guaranteed_lines : int
(** The architectural minimum capacity (4 lines) for which ASF ensures
    eventual forward progress in the absence of contention. *)

val pp : Format.formatter -> t -> unit
