lib/core/asf.ml: Abort Array Asf_cache Asf_engine Asf_machine Asf_mem Hashtbl Llb Variant
