lib/core/asf.mli: Abort Asf_cache Asf_mem Variant
