lib/core/llb.mli:
