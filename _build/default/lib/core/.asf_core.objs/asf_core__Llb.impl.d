lib/core/llb.ml: Hashtbl
