lib/core/abort.ml: Array Format Printf
