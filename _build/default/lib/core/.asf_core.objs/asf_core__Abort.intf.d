lib/core/abort.mli: Format
