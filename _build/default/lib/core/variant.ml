type t = {
  name : string;
  llb_entries : int;
  l1_read_set : bool;
  l1_write_set : bool;
}

let llb8 =
  { name = "LLB-8"; llb_entries = 8; l1_read_set = false; l1_write_set = false }

let llb256 =
  { name = "LLB-256"; llb_entries = 256; l1_read_set = false; l1_write_set = false }

let llb8_l1 =
  { name = "LLB-8 w/ L1"; llb_entries = 8; l1_read_set = true; l1_write_set = false }

let llb256_l1 =
  { name = "LLB-256 w/ L1"; llb_entries = 256; l1_read_set = true; l1_write_set = false }

let cache_based =
  {
    name = "L1 cache-based";
    llb_entries = max_int;
    l1_read_set = true;
    l1_write_set = true;
  }

let all = [ llb8; llb256; llb8_l1; llb256_l1 ]

let min_guaranteed_lines = 4

let pp fmt t = Format.pp_print_string fmt t.name
