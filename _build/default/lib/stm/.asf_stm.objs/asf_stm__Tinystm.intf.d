lib/stm/tinystm.mli: Asf_cache Asf_mem
