lib/stm/tinystm.ml: Asf_cache Asf_engine Asf_mem Hashtbl List
