lib/intset/intset.mli: Asf_tm_rt
