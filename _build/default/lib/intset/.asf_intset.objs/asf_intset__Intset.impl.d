lib/intset/intset.ml: Array Asf_dstruct Asf_engine Asf_machine Asf_tm_rt Float List
