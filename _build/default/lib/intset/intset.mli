(** The IntegerSet micro-benchmark driver (Section 5 of the paper).

    Runs random search / insert / remove operations over an ordered set of
    integers implemented as a linked list, skip list, red-black tree, or
    hash set. Following the paper's setup: operations and elements are
    uniformly random; the initial size is half the key range; an insertion
    (removal) of a present (absent) element is a no-op; the update
    percentage is split evenly between insertions and removals, so the set
    size stays near its initial value. *)

type structure = Linked_list | Skip_list | Rb_tree | Hash_set

val structure_name : structure -> string

type cfg = {
  structure : structure;
  range : int;  (** keys drawn from [\[0, range)] *)
  update_pct : int;  (** e.g. 20 = 10 % insert + 10 % remove + 80 % search *)
  init_size : int option;  (** default [range / 2] *)
  txns_per_thread : int;
  early_release : bool;  (** ASF early release during list traversals *)
  buckets : int;  (** hash-set bucket count (power of two) *)
}

val default_cfg : structure -> cfg
(** range 1024, 20 % updates (100 % for the hash set, as in Fig. 5),
    2^17 buckets, 2000 transactions per thread. *)

type result = {
  txns : int;  (** committed top-level transactions *)
  cycles : int;  (** simulated makespan *)
  throughput_tx_per_us : float;
  stats : Asf_tm_rt.Stats.t;  (** aggregated over threads *)
  final_size : int;
  size_ok : bool;  (** final size consistent with successful ops *)
}

val run : Asf_tm_rt.Tm.config -> threads:int -> cfg -> result
(** Builds the structure (untimed setup), runs [threads] worker threads,
    and reports simulated-time throughput. Deterministic for a given
    configuration and [config.seed]. *)
