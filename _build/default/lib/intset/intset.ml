module Prng = Asf_engine.Prng
module Params = Asf_machine.Params
module Stats = Asf_tm_rt.Stats
module Tm = Asf_tm_rt.Tm
module Ops = Asf_dstruct.Ops
module Tlist = Asf_dstruct.Tlist
module Tskiplist = Asf_dstruct.Tskiplist
module Trbtree = Asf_dstruct.Trbtree
module Thashset = Asf_dstruct.Thashset

type structure = Linked_list | Skip_list | Rb_tree | Hash_set

let structure_name = function
  | Linked_list -> "linked-list"
  | Skip_list -> "skip-list"
  | Rb_tree -> "rb-tree"
  | Hash_set -> "hash-set"

type cfg = {
  structure : structure;
  range : int;
  update_pct : int;
  init_size : int option;
  txns_per_thread : int;
  early_release : bool;
  buckets : int;
}

let default_cfg structure =
  {
    structure;
    range = 1024;
    update_pct = (match structure with Hash_set -> 100 | _ -> 20);
    init_size = None;
    txns_per_thread = 2000;
    early_release = false;
    buckets = 1 lsl 17;
  }

type result = {
  txns : int;
  cycles : int;
  throughput_tx_per_us : float;
  stats : Stats.t;
  final_size : int;
  size_ok : bool;
}

(* A uniform view over the four structures. *)
type set_iface = {
  contains : Ops.t -> int -> bool;
  add : Ops.t -> int -> bool;
  remove : Ops.t -> int -> bool;
  size : Ops.t -> int;
}

let make_structure cfg setup_o =
  match cfg.structure with
  | Linked_list ->
      let t = Tlist.create setup_o in
      {
        contains = (fun o k -> Tlist.contains o t k);
        add = (fun o k -> Tlist.add o t k);
        remove = (fun o k -> Tlist.remove o t k);
        size = (fun o -> Tlist.size o t);
      }
  | Skip_list ->
      let max_level = max 4 (int_of_float (Float.log2 (float_of_int cfg.range))) in
      let t = Tskiplist.create setup_o ~max_level () in
      {
        contains = (fun o k -> Tskiplist.contains o t k);
        add = (fun o k -> Tskiplist.add o t k);
        remove = (fun o k -> Tskiplist.remove o t k);
        size = (fun o -> List.length (Tskiplist.to_list o t));
      }
  | Rb_tree ->
      let t = Trbtree.create setup_o in
      {
        contains = (fun o k -> Trbtree.mem o t k);
        add = (fun o k -> Trbtree.insert o t k k);
        remove = (fun o k -> Trbtree.remove o t k);
        size = (fun o -> Trbtree.size o t);
      }
  | Hash_set ->
      let t = Thashset.create setup_o ~buckets:cfg.buckets in
      {
        contains = (fun o k -> Thashset.contains o t k);
        add = (fun o k -> Thashset.add o t k);
        remove = (fun o k -> Thashset.remove o t k);
        size = (fun o -> Thashset.size o t);
      }

let populate set setup_o rng ~range ~target =
  let n = ref 0 in
  while !n < target do
    if set.add setup_o (Prng.int rng range) then incr n
  done

let run (tm_cfg : Tm.config) ~threads cfg =
  let sys = Tm.create tm_cfg in
  let setup_o = Ops.setup sys in
  let set = make_structure cfg setup_o in
  let init = match cfg.init_size with Some n -> n | None -> cfg.range / 2 in
  let rng = Prng.create (tm_cfg.Tm.seed + 4242) in
  populate set setup_o rng ~range:cfg.range ~target:init;
  (* Per-key successful-operation balance, for the final size check. *)
  let net = Array.make cfg.range 0 in
  let ctxs =
    List.init threads (fun core ->
        Tm.spawn sys ~core (fun ctx ->
            let o = if cfg.early_release then Ops.tx_er ctx else Ops.tx ctx in
            let rng = Tm.prng ctx in
            for _ = 1 to cfg.txns_per_thread do
              let k = Prng.int rng cfg.range in
              let roll = Prng.int rng 200 in
              if roll < cfg.update_pct then begin
                (* Half the update budget inserts, half removes. *)
                if Tm.atomic ctx (fun () -> set.add o k) then net.(k) <- net.(k) + 1
              end
              else if roll < 2 * cfg.update_pct then begin
                if Tm.atomic ctx (fun () -> set.remove o k) then net.(k) <- net.(k) - 1
              end
              else ignore (Tm.atomic ctx (fun () -> set.contains o k))
            done))
  in
  Tm.run sys;
  let cycles = Tm.makespan sys in
  let stats = Stats.create () in
  List.iter (fun c -> Stats.add (Tm.stats c) ~into:stats) ctxs;
  let txns = threads * cfg.txns_per_thread in
  let final_size = set.size setup_o in
  let expected_size = init + Array.fold_left ( + ) 0 net in
  let us = Params.cycles_to_us tm_cfg.Tm.params cycles in
  {
    txns;
    cycles;
    throughput_tx_per_us = float_of_int txns /. us;
    stats;
    final_size;
    size_ok = final_size = expected_size;
  }
