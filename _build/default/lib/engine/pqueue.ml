type 'a entry = { time : int; seq : int; v : 'a }

type 'a t = { mutable a : 'a entry array; mutable len : int }

let create () = { a = [||]; len = 0 }

let is_empty q = q.len = 0

let length q = q.len

let less e1 e2 = e1.time < e2.time || (e1.time = e2.time && e1.seq < e2.seq)

let grow q e =
  let cap = Array.length q.a in
  if q.len = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let na = Array.make ncap e in
    Array.blit q.a 0 na 0 q.len;
    q.a <- na
  end

let push q ~time ~seq v =
  let e = { time; seq; v } in
  grow q e;
  q.a.(q.len) <- e;
  q.len <- q.len + 1;
  (* Sift up. *)
  let i = ref (q.len - 1) in
  while
    !i > 0
    &&
    let p = (!i - 1) / 2 in
    less q.a.(!i) q.a.(p)
  do
    let p = (!i - 1) / 2 in
    let tmp = q.a.(p) in
    q.a.(p) <- q.a.(!i);
    q.a.(!i) <- tmp;
    i := p
  done

let pop q =
  if q.len = 0 then invalid_arg "Pqueue.pop: empty";
  let top = q.a.(0) in
  q.len <- q.len - 1;
  if q.len > 0 then begin
    q.a.(0) <- q.a.(q.len);
    (* Sift down. *)
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < q.len && less q.a.(l) q.a.(!smallest) then smallest := l;
      if r < q.len && less q.a.(r) q.a.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        let tmp = q.a.(!smallest) in
        q.a.(!smallest) <- q.a.(!i);
        q.a.(!i) <- tmp;
        i := !smallest
      end
      else continue := false
    done
  end;
  (top.time, top.seq, top.v)

let peek_time q = if q.len = 0 then None else Some q.a.(0).time

let clear q = q.len <- 0
