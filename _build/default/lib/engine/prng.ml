type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let next64 g =
  g.state <- Int64.add g.state golden_gamma;
  let z = g.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split g = { state = next64 g }

let copy g = { state = g.state }

(* Take the top bits (better distributed than the low bits) and reduce
   modulo [n]. The modulo bias is negligible for the [n] used here. *)
let int g n =
  assert (n > 0);
  let v = Int64.to_int (Int64.shift_right_logical (next64 g) 2) in
  v mod n

let bool g = Int64.logand (next64 g) 1L = 1L

let float g x =
  let v = Int64.to_float (Int64.shift_right_logical (next64 g) 11) in
  x *. v /. 9007199254740992.0 (* 2^53 *)

let chance g p = int g 100 < p

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
