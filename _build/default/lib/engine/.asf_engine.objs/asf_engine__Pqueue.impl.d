lib/engine/pqueue.ml: Array
