lib/engine/engine.ml: Array Effect Pqueue
