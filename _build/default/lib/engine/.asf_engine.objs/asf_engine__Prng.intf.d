lib/engine/prng.mli:
