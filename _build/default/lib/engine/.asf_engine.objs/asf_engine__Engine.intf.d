lib/engine/engine.mli:
