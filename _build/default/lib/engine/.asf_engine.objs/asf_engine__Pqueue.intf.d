lib/engine/pqueue.mli:
