(** Binary min-heap priority queue used by the event scheduler.

    Elements carry two integer keys compared lexicographically: the primary
    key is the event time in cycles, the secondary key a monotonically
    increasing sequence number that makes the schedule deterministic (FIFO
    among simultaneous events). *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val length : 'a t -> int

val push : 'a t -> time:int -> seq:int -> 'a -> unit

val pop : 'a t -> int * int * 'a
(** Removes and returns the minimum element as [(time, seq, v)].
    @raise Invalid_argument if the queue is empty. *)

val peek_time : 'a t -> int option
(** Time of the minimum element, if any. *)

val clear : 'a t -> unit
