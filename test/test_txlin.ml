(* Tests for Txlin, the async linearizability oracle: clean acceptance
   on every service at underload and 2.5x overload (all arrival
   processes, with and without a fault storm), the linear-time clean
   path, negative fixtures against broken-hardware ablations and the
   seeded lost-update plan (each must yield a conclusive violation with
   a 1-minimal witness), a QCheck battery comparing the oracle against
   an independent brute-force all-permutations reference on small
   histories, the hoisted partition finding, and the record-on/off
   byte-identity of everything the run reports. *)

module Params = Asf_machine.Params
module Variant = Asf_core.Variant
module Stats = Asf_tm_rt.Stats
module Tm = Asf_tm_rt.Tm
module Faults = Asf_faults.Faults
module Serve = Asf_serve.Serve
module Txlin = Asf_txlin.Txlin
module Findings = Asf_analyze.Findings

let tm_cfg ?(seed = 1) ?(resolve = true) ?(rollback = true) ?(n_cores = 4) () =
  {
    (Tm.default_config (Tm.Asf_mode Variant.llb256) ~n_cores) with
    Tm.seed;
    resolve_conflicts = resolve;
    rollback_on_abort = rollback;
  }

let us_cycles n =
  int_of_float (float_of_int n *. Params.barcelona.Params.ghz *. 1000.)

let overloaded tm ~threads cfg mult =
  let capacity = Serve.measure_capacity tm ~threads cfg in
  let cycles_per_ms = 1.0 /. Params.cycles_to_ms tm.Tm.params 1 in
  let mean_gap =
    max 1 (int_of_float (cycles_per_ms /. Float.max 1e-9 (capacity *. mult)))
  in
  { cfg with Serve.arrival = Serve.Poisson { mean_gap } }

let all_services =
  [
    Serve.Kv Serve.A; Serve.Kv Serve.B; Serve.Kv Serve.C; Serve.Kv Serve.D;
    Serve.Kv Serve.E; Serve.Kv Serve.F; Serve.Ledger;
  ]

let conclusive_violation v =
  (not v.Txlin.v_ok) && not v.Txlin.v_inconclusive

let check_run cfg r = Txlin.check_result cfg r

(* ------------------------------------------------------------------ *)
(* Clean acceptance                                                     *)
(* ------------------------------------------------------------------ *)

let test_clean_underload_all_services () =
  List.iter
    (fun service ->
      let tm = tm_cfg ~seed:5 () in
      let cfg =
        {
          (Serve.default_cfg service) with
          Serve.requests = 200;
          arrival = Serve.Poisson { mean_gap = 400 };
          deadline = Some (us_cycles 4);
          record = true;
        }
      in
      let r = Serve.run tm ~threads:4 cfg in
      let v = check_run cfg r in
      Alcotest.(check bool)
        (Serve.service_name service ^ ": linearizable at underload")
        true v.Txlin.v_ok;
      Alcotest.(check int)
        (Serve.service_name service ^ ": every arrival recorded")
        r.Serve.r_arrivals
        (Array.length r.Serve.r_events))
    all_services

let test_clean_overload_all_services () =
  List.iter
    (fun service ->
      let tm = tm_cfg ~seed:7 () in
      let base =
        {
          (Serve.default_cfg service) with
          Serve.requests = 250;
          queue_cap = 8;
          deadline = Some (us_cycles 2);
          record = true;
        }
      in
      let cfg = overloaded tm ~threads:4 base 2.5 in
      let r = Serve.run tm ~threads:4 cfg in
      let v = check_run cfg r in
      Alcotest.(check bool)
        (Serve.service_name service ^ ": linearizable at 2.5x overload")
        true v.Txlin.v_ok;
      Alcotest.(check int)
        (Serve.service_name service ^ ": obligations + absent = arrivals")
        r.Serve.r_arrivals
        (v.Txlin.v_obligations + v.Txlin.v_absent))
    all_services

let test_clean_all_arrival_processes () =
  let arrivals =
    [
      ("poisson", Serve.Poisson { mean_gap = 250 });
      ( "bursty",
        Serve.Bursty
          { mean_gap = 400; burst_gap = 40; on_window = 4000; off_window = 8000 } );
      ("ramp", Serve.Ramp { low_gap = 60; high_gap = 600; period = 20_000 });
      ("closed", Serve.Closed);
    ]
  in
  List.iter
    (fun (name, arrival) ->
      let tm = tm_cfg ~seed:9 () in
      let cfg =
        {
          (Serve.default_cfg (Serve.Kv Serve.F)) with
          Serve.requests = 200;
          arrival;
          queue_cap = 8;
          deadline = (if arrival = Serve.Closed then None else Some (us_cycles 2));
          record = true;
        }
      in
      let r = Serve.run tm ~threads:4 cfg in
      let v = check_run cfg r in
      Alcotest.(check bool) (name ^ ": linearizable") true v.Txlin.v_ok)
    arrivals

let test_clean_under_storm () =
  let plan =
    match Faults.plan_of_spec "storm" with
    | Ok p -> p
    | Error m -> Alcotest.fail m
  in
  List.iter
    (fun service ->
      let tm = tm_cfg ~seed:11 () in
      let base =
        {
          (Serve.default_cfg service) with
          Serve.requests = 250;
          queue_cap = 8;
          deadline = Some (us_cycles 2);
          record = true;
        }
      in
      let cfg = overloaded tm ~threads:4 base 2.5 in
      let fl = Faults.create ~seed:7 plan in
      Faults.install fl;
      let r =
        Fun.protect ~finally:Faults.uninstall (fun () -> Serve.run tm ~threads:4 cfg)
      in
      let v = check_run cfg r in
      Alcotest.(check bool)
        (Serve.service_name service ^ ": storm stays linearizable")
        true v.Txlin.v_ok)
    [ Serve.Kv Serve.E; Serve.Ledger ]

(* The commit-cycle witness (invoke <= commit <= respond) and the
   linear-time clean path it buys: trying candidates in commit order
   means a correct run linearizes greedily, exploring exactly one search
   node per event plus one terminal node per group. *)
let test_commit_witness_and_linear_clean_path () =
  let tm = tm_cfg ~seed:13 () in
  let cfg =
    {
      (Serve.default_cfg Serve.Ledger) with
      Serve.requests = 200;
      arrival = Serve.Closed;
      deadline = None;
      governor = false;
      record = true;
    }
  in
  let r = Serve.run tm ~threads:4 cfg in
  Array.iter
    (fun (e : Serve.event) ->
      match e.Serve.ev_outcome with
      | Serve.Ev_done { commit; _ } ->
          Alcotest.(check bool) "invoke <= commit <= respond" true
            (e.Serve.ev_invoke <= commit && commit <= e.Serve.ev_respond)
      | Serve.Ev_timeout | Serve.Ev_shed -> ())
    r.Serve.r_events;
  let v = check_run cfg r in
  Alcotest.(check bool) "clean" true v.Txlin.v_ok;
  Alcotest.(check int) "one group (ledger)" 1 v.Txlin.v_groups;
  Alcotest.(check int) "linear-time clean search"
    (v.Txlin.v_obligations + v.Txlin.v_groups)
    v.Txlin.v_states

(* Recording must never perturb the run: every reported number is
   byte-identical with [record] on or off. *)
let test_record_on_off_identity () =
  let go record =
    let tm = tm_cfg ~seed:17 () in
    let base =
      {
        (Serve.default_cfg (Serve.Kv Serve.E)) with
        Serve.requests = 400;
        queue_cap = 8;
        deadline = Some (us_cycles 2);
      }
    in
    let cfg = overloaded tm ~threads:4 base 2.5 in
    Serve.run tm ~threads:4 { cfg with Serve.record }
  in
  let on = go true and off = go false in
  Alcotest.(check int) "events only when recording" 0
    (Array.length off.Serve.r_events);
  Alcotest.(check bool) "identical reports" true
    ({ on with Serve.r_events = [||] } = off)

(* ------------------------------------------------------------------ *)
(* Negative fixtures: broken hardware must be caught                    *)
(* ------------------------------------------------------------------ *)

(* Re-check a reported witness standalone: it must itself be conclusively
   non-linearizable, and 1-minimal — dropping any single event makes the
   remainder linearizable again. *)
let assert_minimal_witness ~service ~records ~accounts v =
  let witness = Array.of_list v.Txlin.v_witness in
  Alcotest.(check bool) "witness is non-empty" true (Array.length witness > 0);
  let w = Txlin.check ~service ~records ~accounts witness in
  Alcotest.(check bool) "witness re-checks as a violation" true
    (conclusive_violation w);
  List.iteri
    (fun i _ ->
      let dropped =
        Array.of_list (List.filteri (fun j _ -> j <> i) v.Txlin.v_witness)
      in
      let d = Txlin.check ~service ~records ~accounts dropped in
      Alcotest.(check bool)
        (Printf.sprintf "dropping witness event %d restores linearizability" i)
        true d.Txlin.v_ok)
    v.Txlin.v_witness

let hot_kv ~requests ~gap ~records =
  {
    (Serve.default_cfg (Serve.Kv Serve.F)) with
    Serve.requests;
    arrival = Serve.Poisson { mean_gap = gap };
    records;
    record = true;
  }

let test_ablation_rollback_caught () =
  let tm = tm_cfg ~rollback:false () in
  let cfg = hot_kv ~requests:300 ~gap:200 ~records:4 in
  let r = Serve.run tm ~threads:4 cfg in
  let v = check_run cfg r in
  Alcotest.(check bool) "rollback ablation is a conclusive violation" true
    (conclusive_violation v);
  assert_minimal_witness ~service:cfg.Serve.service ~records:cfg.Serve.records
    ~accounts:cfg.Serve.accounts v

let test_ablation_resolve_caught () =
  let tm = tm_cfg ~resolve:false () in
  let cfg = hot_kv ~requests:400 ~gap:60 ~records:2 in
  let r = Serve.run tm ~threads:4 cfg in
  let v = check_run cfg r in
  Alcotest.(check bool) "resolve ablation is a conclusive violation" true
    (conclusive_violation v);
  assert_minimal_witness ~service:cfg.Serve.service ~records:cfg.Serve.records
    ~accounts:cfg.Serve.accounts v

let test_lost_update_plan_caught () =
  let plan =
    match Faults.plan_of_spec "lostupdate" with
    | Ok p -> p
    | Error m -> Alcotest.fail m
  in
  let tm = tm_cfg () in
  let cfg = hot_kv ~requests:300 ~gap:200 ~records:4 in
  let fl = Faults.create ~seed:3 plan in
  Faults.install fl;
  let r =
    Fun.protect ~finally:Faults.uninstall (fun () -> Serve.run tm ~threads:4 cfg)
  in
  let v = check_run cfg r in
  Alcotest.(check bool) "seeded lost update is a conclusive violation" true
    (conclusive_violation v);
  assert_minimal_witness ~service:cfg.Serve.service ~records:cfg.Serve.records
    ~accounts:cfg.Serve.accounts v

(* Findings plumbing for the three failure shapes. *)
let test_findings_shapes () =
  let tm = tm_cfg ~rollback:false () in
  let cfg = hot_kv ~requests:300 ~gap:200 ~records:4 in
  let r = Serve.run tm ~threads:4 cfg in
  let v = check_run cfg r in
  (match Txlin.findings ~workload:"t" v with
  | [ f ] ->
      Alcotest.(check string) "kind" "non-linearizable" f.Findings.f_kind;
      Alcotest.(check string) "severity" "violation" f.Findings.f_severity;
      Alcotest.(check int) "count = witness size"
        (List.length v.Txlin.v_witness)
        f.Findings.f_count
  | fs ->
      Alcotest.failf "expected exactly one finding, got %d" (List.length fs));
  let tm_ok = tm_cfg () in
  let cfg_ok = { cfg with Serve.requests = 100 } in
  let r_ok = Serve.run tm_ok ~threads:4 cfg_ok in
  let v_ok = check_run cfg_ok r_ok in
  Alcotest.(check int) "clean verdict has no findings" 0
    (List.length (Txlin.findings ~workload:"t" v_ok))

(* The hoisted outcome-partition check: a violated partition becomes a
   structured Finding instead of a crash. *)
let test_partition_finding () =
  let tm = tm_cfg () in
  let cfg = hot_kv ~requests:100 ~gap:300 ~records:16 in
  let r = Serve.run tm ~threads:4 cfg in
  Alcotest.(check bool) "real runs hold the partition" true
    r.Serve.r_partition_ok;
  Alcotest.(check bool) "no finding on a clean partition" true
    (Txlin.partition_finding ~workload:"t" r = None);
  match Txlin.partition_finding ~workload:"t" { r with Serve.r_partition_ok = false } with
  | None -> Alcotest.fail "violated partition must yield a finding"
  | Some f ->
      Alcotest.(check string) "kind" "partition" f.Findings.f_kind;
      Alcotest.(check string) "severity" "violation" f.Findings.f_severity

(* ------------------------------------------------------------------ *)
(* QCheck: Txlin vs a brute-force all-permutations reference            *)
(* ------------------------------------------------------------------ *)

(* An independent sequential KV model over unsorted assoc lists — same
   semantics as Txlin's spec, different code on purpose. *)
let ref_step assoc (op : Serve.op) =
  match op with
  | Serve.Read k -> (Serve.O_val (List.assoc_opt k assoc), assoc)
  | Serve.Update (k, v) -> (Serve.O_unit, (k, v) :: List.remove_assoc k assoc)
  | Serve.Rmw k ->
      let old = Option.value (List.assoc_opt k assoc) ~default:0 in
      (Serve.O_rmw old, (k, old + 1) :: List.remove_assoc k assoc)
  | _ -> invalid_arg "ref_step: generator only emits Read/Update/Rmw"

let ref_init records = List.init records (fun k -> (k, k + 1))

(* Brute force: enumerate every real-time-respecting permutation of the
   completed events (an event may go next iff no other remaining event
   responded strictly before its invocation) and replay each through the
   reference model. No memoization, no commit ordering, no budget. *)
let brute_linearizable ~records events =
  let completed =
    List.filter
      (fun (e : Serve.event) ->
        match e.Serve.ev_outcome with Serve.Ev_done _ -> true | _ -> false)
      (Array.to_list events)
  in
  let obs_of (e : Serve.event) =
    match e.Serve.ev_outcome with
    | Serve.Ev_done { obs; _ } -> obs
    | _ -> assert false
  in
  let rec go remaining assoc =
    match remaining with
    | [] -> true
    | _ ->
        List.exists
          (fun (e : Serve.event) ->
            List.for_all
              (fun (o : Serve.event) -> o.Serve.ev_respond >= e.Serve.ev_invoke)
              remaining
            &&
            let obs, assoc' = ref_step assoc e.Serve.ev_op in
            obs = obs_of e
            && go
                 (List.filter
                    (fun (o : Serve.event) -> o.Serve.ev_id <> e.Serve.ev_id)
                    remaining)
                 assoc')
          remaining
  in
  go completed (ref_init records)

let n_keys = 3

(* Random small histories: up to 8 requests over up to [n_keys] keys,
   mixing arbitrary observations (usually non-linearizable) with
   histories whose observations were produced by replaying in invocation
   order (always linearizable: invocation order respects real time). *)
let gen_history =
  QCheck.Gen.(
    let gen_op =
      oneof
        [
          map (fun k -> Serve.Read k) (int_range 0 (n_keys - 1));
          map2 (fun k v -> Serve.Update (k, v)) (int_range 0 (n_keys - 1))
            (int_range 0 3);
          map (fun k -> Serve.Rmw k) (int_range 0 (n_keys - 1));
        ]
    in
    let gen_skeleton =
      list_size (int_range 1 8)
        (triple gen_op (int_range 0 30) (int_range 1 25))
    in
    let* skel = gen_skeleton in
    let* consistent = bool in
    if consistent then
      (* Replay in invocation order against the reference model; stamp
         commit = invoke so Txlin's commit ordering sees the same order. *)
      let sorted =
        List.sort (fun (_, i1, _) (_, i2, _) -> compare i1 i2) skel
      in
      let _, evs =
        List.fold_left
          (fun (assoc, acc) (op, invoke, dur) ->
            let obs, assoc' = ref_step assoc op in
            let e =
              {
                Serve.ev_id = List.length acc;
                ev_op = op;
                ev_invoke = invoke;
                ev_respond = invoke + dur;
                ev_outcome = Serve.Ev_done { obs; commit = invoke };
              }
            in
            (assoc', e :: acc))
          (ref_init n_keys, [])
          sorted
      in
      return (Array.of_list (List.rev evs))
    else
      let gen_ev i (op, invoke, dur) =
        let* outcome =
          frequency
            [
              ( 8,
                let* obs =
                  match op with
                  | Serve.Read _ ->
                      oneof
                        [
                          return (Serve.O_val None);
                          map (fun v -> Serve.O_val (Some v)) (int_range 0 5);
                        ]
                  | Serve.Update _ -> return Serve.O_unit
                  | Serve.Rmw _ -> map (fun v -> Serve.O_rmw v) (int_range 0 5)
                  | _ -> assert false
                in
                let* c = int_range 0 dur in
                return (Serve.Ev_done { obs; commit = invoke + c }) );
              (1, return Serve.Ev_timeout);
              (1, return Serve.Ev_shed);
            ]
        in
        return
          {
            Serve.ev_id = i;
            ev_op = op;
            ev_invoke = invoke;
            ev_respond = invoke + dur;
            ev_outcome = outcome;
          }
      in
      let rec gen_all i = function
        | [] -> return []
        | hd :: tl ->
            let* e = gen_ev i hd in
            let* rest = gen_all (i + 1) tl in
            return (e :: rest)
      in
      let* evs = gen_all 0 skel in
      return (Array.of_list evs))

let print_history evs =
  String.concat " | " (List.map Txlin.render_event (Array.to_list evs))

let history_arb = QCheck.make ~print:print_history gen_history

let prop_oracle_matches_brute_force =
  QCheck.Test.make ~name:"txlin: verdict agrees with brute-force reference"
    ~count:150 history_arb (fun evs ->
      let v =
        Txlin.check ~service:(Serve.Kv Serve.A) ~records:n_keys ~accounts:4 evs
      in
      if v.Txlin.v_inconclusive then QCheck.assume_fail ()
      else v.Txlin.v_ok = brute_linearizable ~records:n_keys evs)

let prop_witness_is_violating =
  QCheck.Test.make
    ~name:"txlin: reported witness is itself non-linearizable and 1-minimal"
    ~count:150 history_arb (fun evs ->
      let check a =
        Txlin.check ~service:(Serve.Kv Serve.A) ~records:n_keys ~accounts:4 a
      in
      let v = check evs in
      if not (conclusive_violation v) then true
      else
        let witness = Array.of_list v.Txlin.v_witness in
        Array.length witness > 0
        && conclusive_violation (check witness)
        && (not (brute_linearizable ~records:n_keys witness))
        && List.for_all
             (fun i ->
               (check
                  (Array.of_list
                     (List.filteri (fun j _ -> j <> i) v.Txlin.v_witness)))
                 .Txlin.v_ok)
             (List.init (Array.length witness) Fun.id))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "txlin"
    [
      ( "clean",
        [
          Alcotest.test_case "underload, all services" `Quick
            test_clean_underload_all_services;
          Alcotest.test_case "2.5x overload, all services" `Quick
            test_clean_overload_all_services;
          Alcotest.test_case "all arrival processes" `Quick
            test_clean_all_arrival_processes;
          Alcotest.test_case "fault storm" `Quick test_clean_under_storm;
          Alcotest.test_case "commit witness + linear clean path" `Quick
            test_commit_witness_and_linear_clean_path;
          Alcotest.test_case "record on/off identity" `Quick
            test_record_on_off_identity;
        ] );
      ( "negative",
        [
          Alcotest.test_case "rollback ablation caught" `Quick
            test_ablation_rollback_caught;
          Alcotest.test_case "resolve ablation caught" `Quick
            test_ablation_resolve_caught;
          Alcotest.test_case "lost-update plan caught" `Quick
            test_lost_update_plan_caught;
          Alcotest.test_case "findings shapes" `Quick test_findings_shapes;
          Alcotest.test_case "partition finding" `Quick test_partition_finding;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_oracle_matches_brute_force;
          QCheck_alcotest.to_alcotest prop_witness_is_violating;
        ] );
    ]
