(* Tests for the ASF-TM runtime: atomic re-execution, serial-irrevocable
   fallback, transactional malloc, page-fault retries, interrupt aborts,
   cycle-category accounting, and equivalence of results across all
   execution modes. *)

module Engine = Asf_engine.Engine
module Params = Asf_machine.Params
module Addr = Asf_mem.Addr
module Abort = Asf_core.Abort
module Variant = Asf_core.Variant
module Stats = Asf_tm_rt.Stats
module Txmalloc = Asf_tm_rt.Txmalloc
module Tm = Asf_tm_rt.Tm

let mk ?(n_cores = 4) ?(tweak = fun c -> c) mode =
  Tm.create (tweak (Tm.default_config mode ~n_cores))

let all_modes =
  [
    ("asf-llb8", Tm.Asf_mode Variant.llb8);
    ("asf-llb256", Tm.Asf_mode Variant.llb256);
    ("asf-llb8-l1", Tm.Asf_mode Variant.llb8_l1);
    ("asf-llb256-l1", Tm.Asf_mode Variant.llb256_l1);
    ("stm", Tm.Stm_mode);
  ]

(* ------------------------------------------------------------------ *)
(* Counter correctness across all modes                                 *)
(* ------------------------------------------------------------------ *)

let counter_run mode n_cores per_core =
  let sys = mk ~n_cores mode in
  let counter = Tm.setup_alloc sys 1 in
  Tm.setup_poke sys counter 0;
  let ctxs =
    List.init n_cores (fun core ->
        Tm.spawn sys ~core (fun ctx ->
            for _ = 1 to per_core do
              Tm.atomic ctx (fun () ->
                  let v = Tm.load ctx counter in
                  Tm.store ctx counter (v + 1))
            done))
  in
  Tm.run sys;
  (Tm.setup_peek sys counter, ctxs)

let test_counter_all_modes () =
  List.iter
    (fun (name, mode) ->
      let total, _ = counter_run mode 4 100 in
      Alcotest.(check int) (name ^ ": no lost updates") 400 total)
    all_modes

let test_counter_stats_consistent () =
  let total, ctxs = counter_run (Tm.Asf_mode Variant.llb256) 4 100 in
  Alcotest.(check int) "total" 400 total;
  let agg = Stats.create () in
  List.iter (fun c -> Stats.add (Tm.stats c) ~into:agg) ctxs;
  Alcotest.(check int) "commits = txns" 400 (Stats.commits agg);
  Alcotest.(check int) "attempts = commits + aborts" (Stats.commits agg + Stats.total_aborts agg)
    (Stats.attempts agg)

(* ------------------------------------------------------------------ *)
(* Serial fallback                                                      *)
(* ------------------------------------------------------------------ *)

let test_capacity_goes_serial () =
  (* A transaction touching 40 lines cannot run on LLB-8: it must fall
     back to serial-irrevocable mode, still committing correctly. *)
  let sys = mk ~n_cores:2 (Tm.Asf_mode Variant.llb8) in
  let arr = Tm.setup_alloc sys (40 * Addr.words_per_line) in
  for i = 0 to 39 do
    Tm.setup_poke sys (arr + (i * Addr.words_per_line)) 1
  done;
  let ctx =
    Tm.spawn sys ~core:0 (fun ctx ->
        Tm.atomic ctx (fun () ->
            for i = 0 to 39 do
              let a = arr + (i * Addr.words_per_line) in
              Tm.store ctx a (Tm.load ctx a + 1)
            done))
  in
  Tm.run sys;
  for i = 0 to 39 do
    Alcotest.(check int) "updated" 2 (Tm.setup_peek sys (arr + (i * Addr.words_per_line)))
  done;
  let st = Tm.stats ctx in
  Alcotest.(check int) "one serial commit" 1 (Stats.serial_commits st);
  Alcotest.(check bool) "capacity abort recorded" true
    ((Stats.aborts st).(Abort.index Abort.Capacity) >= 1)

let test_serial_excludes_hardware_txns () =
  (* While core 0 is serial, core 1's hardware transactions must not
     commit concurrently: total order preserved, sum conserved. *)
  let sys = mk ~n_cores:2 (Tm.Asf_mode Variant.llb8) in
  let a = Tm.setup_alloc sys 1 and b = Tm.setup_alloc sys 1 in
  Tm.setup_poke sys a 1000;
  Tm.setup_poke sys b 0;
  let big = Tm.setup_alloc sys (40 * Addr.words_per_line) in
  let _c0 =
    Tm.spawn sys ~core:0 (fun ctx ->
        for _ = 1 to 5 do
          Tm.atomic ctx (fun () ->
              (* Large: always serial on LLB-8. Moves 10 from a to b and
                 touches 40 lines to stay slow. *)
              for i = 0 to 39 do
                let addr = big + (i * Addr.words_per_line) in
                Tm.store ctx addr (Tm.load ctx addr + 1)
              done;
              let va = Tm.load ctx a in
              let vb = Tm.load ctx b in
              Tm.store ctx a (va - 10);
              Tm.store ctx b (vb + 10))
        done)
  in
  let _c1 =
    Tm.spawn sys ~core:1 (fun ctx ->
        for _ = 1 to 50 do
          Tm.atomic ctx (fun () ->
              let va = Tm.load ctx a in
              let vb = Tm.load ctx b in
              Tm.store ctx a (va - 1);
              Tm.store ctx b (vb + 1))
        done)
  in
  Tm.run sys;
  Alcotest.(check int) "sum conserved"
    1000
    (Tm.setup_peek sys a + Tm.setup_peek sys b);
  Alcotest.(check int) "all transfers happened" (1000 - 50 - 50)
    (Tm.setup_peek sys a)

(* ------------------------------------------------------------------ *)
(* Page faults and malloc                                               *)
(* ------------------------------------------------------------------ *)

let test_malloc_inside_txn () =
  (* Allocate nodes inside transactions; freshly touched pages fault and
     the transactions retry successfully. Committed allocations persist. *)
  let sys = mk ~n_cores:2 (Tm.Asf_mode Variant.llb256) in
  let head = Tm.setup_alloc sys 1 in
  Tm.setup_poke sys head 0;
  (* Enough nodes that the allocation pool crosses page boundaries: the
     first store to a fresh page inside a region must fault-abort. *)
  let n = 400 in
  let ctx =
    Tm.spawn sys ~core:0 (fun ctx ->
        for i = 1 to n do
          Tm.atomic ctx (fun () ->
              let node = Tm.malloc ctx 2 in
              Tm.store ctx node i;
              Tm.store ctx (node + 1) (Tm.load ctx head);
              Tm.store ctx head node)
        done)
  in
  Tm.run sys;
  (* Walk the list (setup access) and count nodes. *)
  let rec count addr acc =
    if addr = 0 then acc else count (Tm.setup_peek sys (addr + 1)) (acc + 1)
  in
  Alcotest.(check int) "all nodes linked" n (count (Tm.setup_peek sys head) 0);
  let st = Tm.stats ctx in
  Alcotest.(check bool) "page-fault aborts happened" true
    ((Stats.aborts st).(Abort.index (Abort.Page_fault 0)) >= 1)

let test_aborted_alloc_rolled_back () =
  (* An allocation in an explicitly aborted attempt must be returned to
     the pool: allocate-and-abort twice, then allocate for real — the pool
     hands back the same address. *)
  let sys = mk ~n_cores:1 (Tm.Asf_mode Variant.llb256) in
  let seen = ref [] in
  let _ =
    Tm.spawn sys ~core:0 (fun ctx ->
        let tries = ref 0 in
        Tm.atomic ctx (fun () ->
            incr tries;
            let node = Tm.malloc ctx 4 in
            seen := node :: !seen;
            Tm.store ctx node 1;
            (* First (hardware) attempt aborts to serial; its allocation
               must be rolled back so the serial retry gets the same
               block. *)
            if !tries = 1 then Tm.irrevocable ctx))
  in
  Tm.run sys;
  match !seen with
  | [ serial_attempt; hw_attempt ] ->
      Alcotest.(check int) "rollback reuses address" hw_attempt serial_attempt
  | l -> Alcotest.failf "expected 2 attempts, got %d" (List.length l)

let test_free_deferred_to_commit () =
  let sys = mk ~n_cores:1 (Tm.Asf_mode Variant.llb256) in
  let addr = ref 0 in
  let _ =
    Tm.spawn sys ~core:0 (fun ctx ->
        let a = Tm.atomic ctx (fun () -> Tm.malloc ctx 4) in
        addr := a;
        Tm.atomic ctx (fun () -> Tm.free ctx a 4);
        (* After the freeing txn commits, the block is reusable. *)
        let b = Tm.atomic ctx (fun () -> Tm.malloc ctx 4) in
        Alcotest.(check int) "freed block recycled" a b)
  in
  Tm.run sys

(* ------------------------------------------------------------------ *)
(* Interrupts                                                           *)
(* ------------------------------------------------------------------ *)

let test_interrupt_aborts_long_txn () =
  let tweak c =
    { c with Tm.params = { c.Tm.params with Params.interrupt_quantum = 5000 } }
  in
  let sys = mk ~n_cores:1 ~tweak (Tm.Asf_mode Variant.llb256) in
  let a = Tm.setup_alloc sys 1 in
  let ctx =
    Tm.spawn sys ~core:0 (fun ctx ->
        Tm.atomic ctx (fun () ->
            (* Burn more than a quantum inside the region. *)
            Tm.work ctx 20_000;
            Tm.store ctx a 1))
  in
  Tm.run sys;
  Alcotest.(check int) "eventually committed (serial)" 1 (Tm.setup_peek sys a);
  let st = Tm.stats ctx in
  Alcotest.(check bool) "interrupt aborts recorded" true
    ((Stats.aborts st).(Abort.index Abort.Interrupt) >= 1)

let test_interrupt_retry_commits_hardware () =
  (* An interrupt abort is transient: the retry must succeed in hardware
     (no serial fallback). With regions much shorter than the quantum
     tiling the timeline back to back, some region must straddle a
     boundary — and its retry, starting just past that boundary, fits
     inside the fresh quantum. *)
  let tweak c =
    { c with Tm.params = { c.Tm.params with Params.interrupt_quantum = 5000 } }
  in
  let sys = mk ~n_cores:1 ~tweak (Tm.Asf_mode Variant.llb256) in
  let a = Tm.setup_alloc sys 1 in
  let txns = 20 in
  let ctx =
    Tm.spawn sys ~core:0 (fun ctx ->
        for _ = 1 to txns do
          Tm.atomic ctx (fun () ->
              Tm.work ctx 1200;
              Tm.store ctx a (Tm.load ctx a + 1))
        done)
  in
  Tm.run sys;
  Alcotest.(check int) "all committed" txns (Tm.setup_peek sys a);
  let st = Tm.stats ctx in
  Alcotest.(check bool) "interrupt abort recorded" true
    ((Stats.aborts st).(Abort.index Abort.Interrupt) >= 1);
  Alcotest.(check int) "retried in hardware, not serial" 0 (Stats.serial_commits st);
  Alcotest.(check int) "every txn committed exactly once" txns (Stats.commits st)

let test_syscall_goes_serial () =
  (* [irrevocable] aborts the hardware attempt with [Syscall]; the policy
     restarts it directly on the serial path (never a hardware retry). *)
  let sys = mk ~n_cores:1 (Tm.Asf_mode Variant.llb256) in
  let a = Tm.setup_alloc sys 1 in
  let ctx =
    Tm.spawn sys ~core:0 (fun ctx ->
        Tm.atomic ctx (fun () ->
            Tm.store ctx a (Tm.load ctx a + 1);
            Tm.irrevocable ctx;
            Alcotest.(check bool) "now serial" true (Tm.serial_mode ctx)))
  in
  Tm.run sys;
  Alcotest.(check int) "committed" 1 (Tm.setup_peek sys a);
  let st = Tm.stats ctx in
  Alcotest.(check int) "one syscall abort" 1
    (Stats.aborts st).(Abort.index Abort.Syscall);
  Alcotest.(check int) "one serial commit" 1 (Stats.serial_commits st);
  Alcotest.(check int) "exactly two attempts" 2 (Stats.attempts st)

(* ------------------------------------------------------------------ *)
(* Selective annotation                                                 *)
(* ------------------------------------------------------------------ *)

let test_annotation_avoids_capacity () =
  (* 30 scratch lines accessed non-transactionally fit fine in LLB-8;
     with the ablation (everything transactional) the same body must fall
     back to serial. *)
  let run ~annot =
    let tweak c = { c with Tm.selective_annotation = annot } in
    let sys = mk ~n_cores:1 ~tweak (Tm.Asf_mode Variant.llb8) in
    let scratch = Tm.setup_alloc sys (30 * Addr.words_per_line) in
    let x = Tm.setup_alloc sys 1 in
    for i = 0 to 29 do
      Tm.setup_poke sys (scratch + (i * Addr.words_per_line)) i
    done;
    let ctx =
      Tm.spawn sys ~core:0 (fun ctx ->
          Tm.atomic ctx (fun () ->
              let acc = ref 0 in
              for i = 0 to 29 do
                acc := !acc + Tm.nload ctx (scratch + (i * Addr.words_per_line))
              done;
              Tm.store ctx x !acc))
    in
    Tm.run sys;
    (Tm.setup_peek sys x, Stats.serial_commits (Tm.stats ctx))
  in
  let expected = 30 * 29 / 2 in
  let v1, serial1 = run ~annot:true in
  Alcotest.(check int) "annotated result" expected v1;
  Alcotest.(check int) "annotated stays hardware" 0 serial1;
  let v2, serial2 = run ~annot:false in
  Alcotest.(check int) "ablation result" expected v2;
  Alcotest.(check int) "ablation forced serial" 1 serial2

(* ------------------------------------------------------------------ *)
(* Cycle accounting                                                     *)
(* ------------------------------------------------------------------ *)

let test_cycle_categories_cover_txn_time () =
  let sys = mk ~n_cores:1 (Tm.Asf_mode Variant.llb256) in
  let a = Tm.setup_alloc sys 1 in
  let ctx =
    Tm.spawn sys ~core:0 (fun ctx ->
        for _ = 1 to 20 do
          Tm.atomic ctx (fun () ->
              Tm.work ctx 100;
              Tm.store ctx a (Tm.load ctx a + 1))
        done)
  in
  Tm.run sys;
  let st = Tm.stats ctx in
  let cy = Stats.cycles st in
  Alcotest.(check bool) "app cycles counted" true (cy.(Stats.cat_app) >= 20 * 100);
  Alcotest.(check bool) "ld/st cycles counted" true (cy.(Stats.cat_ld_st) > 0);
  Alcotest.(check bool) "start/commit cycles counted" true
    (cy.(Stats.cat_start_commit) > 0);
  Alcotest.(check int) "no serial cycles" 0 (cy.(Stats.cat_non_instr));
  (* Categories (sans outside) must not exceed the makespan. *)
  let inside =
    cy.(Stats.cat_app) + cy.(Stats.cat_ld_st) + cy.(Stats.cat_start_commit)
    + cy.(Stats.cat_abort_waste) + cy.(Stats.cat_non_instr)
  in
  Alcotest.(check bool) "inside <= makespan" true (inside <= Tm.makespan sys)

let test_aborted_cycles_folded_into_waste () =
  (* Regression: all cycles of an aborted attempt — whatever category they
     accrued under — must land in cat_abort_waste before the per-attempt
     buffer is reset, and committed time must keep its categories. *)
  let st = Stats.create () in
  Stats.begin_attempt st ~now:0;
  Stats.enter st ~now:0 Stats.cat_app;
  Stats.exit_ st ~now:70;
  (* 70 app cycles + 30 trailing outside-category cycles, all wasted. *)
  Stats.abort_attempt st ~now:100 Abort.Contention;
  let cy = Stats.cycles st in
  Alcotest.(check int) "aborted attempt fully in abort_waste" 100
    cy.(Stats.cat_abort_waste);
  Alcotest.(check int) "no app cycles leaked" 0 cy.(Stats.cat_app);
  (* 20 cycles between attempts are outside-tx time. *)
  Stats.begin_attempt st ~now:120;
  Stats.enter st ~now:120 Stats.cat_app;
  Stats.exit_ st ~now:150;
  Stats.commit_attempt st ~now:150 ~serial:false;
  let cy = Stats.cycles st in
  Alcotest.(check int) "committed app cycles kept" 30 cy.(Stats.cat_app);
  Alcotest.(check int) "gap counted outside" 20 cy.(Stats.cat_outside);
  Alcotest.(check int) "attempts" 2 (Stats.attempts st);
  Alcotest.(check int) "commits" 1 (Stats.commits st);
  Alcotest.(check int) "aborts" 1 (Stats.total_aborts st);
  (* The telescoping invariant: categories sum to total simulated time. *)
  Alcotest.(check int) "sum(categories) = elapsed" 150
    (Array.fold_left ( + ) 0 cy)

let test_categories_sum_to_core_time () =
  (* End-to-end invariant: after a run, each thread's category totals sum
     to exactly its core's final clock ([Tm.spawn] finalizes the stats
     when the thread ends). Contended LLB-8 exercises the abort path. *)
  let n_cores = 4 in
  let sys = mk ~n_cores (Tm.Asf_mode Variant.llb8) in
  let counter = Tm.setup_alloc sys 1 in
  Tm.setup_poke sys counter 0;
  let ctxs =
    List.init n_cores (fun core ->
        Tm.spawn sys ~core (fun ctx ->
            for _ = 1 to 150 do
              Tm.atomic ctx (fun () ->
                  let v = Tm.load ctx counter in
                  Tm.work ctx 25;
                  Tm.store ctx counter (v + 1))
            done))
  in
  Tm.run sys;
  List.iteri
    (fun core ctx ->
      let total = Array.fold_left ( + ) 0 (Stats.cycles (Tm.stats ctx)) in
      Alcotest.(check int)
        (Printf.sprintf "core %d: sum(categories) = core time" core)
        (Engine.core_time (Tm.engine sys) core)
        total)
    ctxs

let test_backoff_window_monotone_and_capped () =
  let prev = ref 0 in
  for r = 0 to 20 do
    let w = Tm.backoff_window r in
    Alcotest.(check bool)
      (Printf.sprintf "monotone at retry %d" r)
      true (w >= !prev);
    Alcotest.(check bool) (Printf.sprintf "capped at retry %d" r) true (w <= 65536);
    prev := w
  done;
  Alcotest.(check int) "starts at 64" 64 (Tm.backoff_window 0);
  Alcotest.(check int) "doubles" 128 (Tm.backoff_window 1);
  Alcotest.(check int) "saturates at 65536" 65536 (Tm.backoff_window 10);
  Alcotest.(check int) "stays saturated" 65536 (Tm.backoff_window 1000)

let test_serial_spin_window_monotone_and_capped () =
  let prev = ref 0 in
  for k = 0 to 20 do
    let w = Tm.serial_spin_window k in
    Alcotest.(check bool)
      (Printf.sprintf "monotone at attempt %d" k)
      true (w >= !prev);
    Alcotest.(check bool) (Printf.sprintf "capped at attempt %d" k) true (w <= 8192);
    prev := w
  done;
  Alcotest.(check int) "starts at 64" 64 (Tm.serial_spin_window 0);
  Alcotest.(check int) "doubles" 128 (Tm.serial_spin_window 1);
  Alcotest.(check int) "saturates at 8192" 8192 (Tm.serial_spin_window 7);
  Alcotest.(check int) "stays saturated" 8192 (Tm.serial_spin_window 1000)

let test_serial_lock_fairness () =
  (* Bounded wait: four cores run serial-only transactions (40 lines never
     fit LLB-8) that contend for the global lock back-to-back. The capped
     spin window must let every waiter through — each core commits its
     full quota serially; nobody starves. *)
  let n_cores = 4 and per_core = 10 in
  let sys = mk ~n_cores (Tm.Asf_mode Variant.llb8) in
  let arr = Tm.setup_alloc sys (40 * Addr.words_per_line) in
  let ctxs =
    List.init n_cores (fun core ->
        Tm.spawn sys ~core (fun ctx ->
            for _ = 1 to per_core do
              Tm.atomic ctx (fun () ->
                  for i = 0 to 39 do
                    let a = arr + (i * Addr.words_per_line) in
                    Tm.store ctx a (Tm.load ctx a + 1)
                  done)
            done))
  in
  Tm.run sys;
  Alcotest.(check int) "all increments applied" (n_cores * per_core)
    (Tm.setup_peek sys arr);
  List.iteri
    (fun core ctx ->
      Alcotest.(check int)
        (Printf.sprintf "core %d committed its quota serially" core)
        per_core
        (Stats.serial_commits (Tm.stats ctx)))
    ctxs

(* Decorrelation: two cores aborting at the same cycle must draw different
   backoff windows. Core PRNG streams are split off one root generator,
   so for any seed, distinct cores' first few window draws cannot all
   collide (an arithmetic seed derivation failed exactly this way for
   window-aligned seeds). *)
let prop_backoff_streams_decorrelated =
  QCheck.Test.make ~name:"tm: per-core backoff draws are decorrelated" ~count:100
    (QCheck.make
       QCheck.Gen.(triple (int_range 0 100_000) (int_range 0 7) (int_range 0 7)))
    (fun (seed, i, j) ->
      QCheck.assume (i <> j);
      let sys =
        mk ~n_cores:8 ~tweak:(fun c -> { c with Tm.seed }) (Tm.Asf_mode Variant.llb256)
      in
      let pi = Tm.prng (Tm.make_ctx sys ~core:i)
      and pj = Tm.prng (Tm.make_ctx sys ~core:j) in
      let draws p =
        List.init 16 (fun r -> Asf_engine.Prng.int p (Tm.backoff_window r))
      in
      draws pi <> draws pj)

let test_stm_mode_has_no_serial () =
  let total, ctxs = counter_run Tm.Stm_mode 4 50 in
  Alcotest.(check int) "correct" 200 total;
  List.iter
    (fun c ->
      Alcotest.(check int) "no serial commits" 0 (Stats.serial_commits (Tm.stats c));
      Alcotest.(check int) "no non-instr cycles" 0
        (Stats.cycles (Tm.stats c)).(Stats.cat_non_instr))
    ctxs

(* ------------------------------------------------------------------ *)
(* Request deadlines                                                    *)
(* ------------------------------------------------------------------ *)

let test_atomic_until_generous_deadline_commits () =
  let sys = mk ~n_cores:1 (Tm.Asf_mode Variant.llb256) in
  let a = Tm.setup_alloc sys 1 in
  Tm.setup_poke sys a 0;
  let ctx =
    Tm.spawn sys ~core:0 (fun ctx ->
        Tm.atomic_until ctx ~deadline:max_int (fun () ->
            Tm.store ctx a (Tm.load ctx a + 1)))
  in
  Tm.run sys;
  Alcotest.(check int) "committed" 1 (Tm.setup_peek sys a);
  Alcotest.(check int) "one commit" 1 (Stats.commits (Tm.stats ctx));
  Alcotest.(check int) "no timeout aborts" 0
    (Stats.aborts (Tm.stats ctx)).(Abort.index Abort.Timeout);
  Alcotest.(check int) "no deadline waiting" 0 (Tm.deadline_wait ctx)

let test_atomic_until_expired_raises_before_attempt () =
  (* A deadline already in the past must raise before any attempt opens:
     no store, no attempt, no abort record to corrupt accounting. *)
  let sys = mk ~n_cores:1 (Tm.Asf_mode Variant.llb256) in
  let a = Tm.setup_alloc sys 1 in
  Tm.setup_poke sys a 0;
  let raised = ref false in
  let ctx =
    Tm.spawn sys ~core:0 (fun ctx ->
        Tm.work ctx 100;
        try Tm.atomic_until ctx ~deadline:50 (fun () -> Tm.store ctx a 1)
        with Tm.Deadline_exceeded i ->
          raised := true;
          Alcotest.(check int) "reports the deadline" 50 i.Tm.dl_deadline;
          Alcotest.(check bool) "now past it" true (i.Tm.dl_now >= 50))
  in
  Tm.run sys;
  Alcotest.(check bool) "raised" true !raised;
  Alcotest.(check int) "no store happened" 0 (Tm.setup_peek sys a);
  Alcotest.(check int) "no attempt opened" 0 (Stats.attempts (Tm.stats ctx))

let test_atomic_until_nested_rejected () =
  let sys = mk ~n_cores:1 (Tm.Asf_mode Variant.llb256) in
  let rejected = ref false in
  let _ =
    Tm.spawn sys ~core:0 (fun ctx ->
        Tm.atomic ctx (fun () ->
            try Tm.atomic_until ctx ~deadline:max_int (fun () -> ())
            with Invalid_argument _ -> rejected := true))
  in
  Tm.run sys;
  Alcotest.(check bool) "nested atomic_until rejected" true !rejected

let test_deadline_accounting_under_contention () =
  (* Four cores hammer one counter under tight per-transaction deadlines.
     Whatever mix of commits and deadline exceptions results, the
     bookkeeping must stay exact: every call accounted for, the counter
     equal to the commits, the attempt/abort identity intact, and the
     cumulative backoff+spin wait of each call bounded by the deadline
     plus one serial-spin tail. *)
  let n_cores = 4 and per_core = 50 and rel = 600 in
  let sys = mk ~n_cores (Tm.Asf_mode Variant.llb256) in
  let a = Tm.setup_alloc sys 1 in
  Tm.setup_poke sys a 0;
  let commits = ref 0 and timeouts = ref 0 in
  let tail = Tm.serial_spin_window max_int in
  let ctxs =
    List.init n_cores (fun core ->
        Tm.spawn sys ~core (fun ctx ->
            for _ = 1 to per_core do
              (try
                 Tm.atomic_until ctx ~deadline:(Tm.now ctx + rel) (fun () ->
                     Tm.store ctx a (Tm.load ctx a + 1));
                 incr commits
               with Tm.Deadline_exceeded _ -> incr timeouts);
              Alcotest.(check bool) "wait bounded by deadline + tail" true
                (Tm.deadline_wait ctx <= rel + tail)
            done))
  in
  Tm.run sys;
  Alcotest.(check int) "every call accounted" (n_cores * per_core)
    (!commits + !timeouts);
  Alcotest.(check int) "counter = commits" !commits (Tm.setup_peek sys a);
  let agg = Stats.create () in
  List.iter (fun c -> Stats.add (Tm.stats c) ~into:agg) ctxs;
  Alcotest.(check int) "commits agree" !commits (Stats.commits agg);
  Alcotest.(check int) "attempts = commits + aborts"
    (Stats.commits agg + Stats.total_aborts agg)
    (Stats.attempts agg)

let prop_decorrelated_window_bounded =
  QCheck.Test.make ~name:"tm: decorrelated jitter window bounded" ~count:200
    (QCheck.make QCheck.Gen.(pair (int_range 0 10_000) (int_range 0 200_000)))
    (fun (seed, prev) ->
      let p = Asf_engine.Prng.create seed in
      let w = Tm.decorrelated_window p ~prev in
      w >= 16 && w <= Tm.backoff_window 10 && w <= 16 + (3 * max 16 prev))

(* ------------------------------------------------------------------ *)
(* Txmalloc unit tests                                                  *)
(* ------------------------------------------------------------------ *)

let test_txmalloc_rounding_and_reuse () =
  let g = Asf_mem.Alloc.create () in
  let p = Txmalloc.create g in
  ignore (Txmalloc.refill p);
  Txmalloc.attempt_begin p;
  let a = Option.get (Txmalloc.alloc_tx p 3) in
  Alcotest.(check int) "line aligned" 0 (a mod Addr.words_per_line);
  Txmalloc.attempt_commit p;
  Txmalloc.attempt_begin p;
  Txmalloc.free_tx p a 3;
  Txmalloc.attempt_commit p;
  Txmalloc.attempt_begin p;
  let b = Option.get (Txmalloc.alloc_tx p 3) in
  Alcotest.(check int) "freed block reused" a b;
  Txmalloc.attempt_commit p

let test_txmalloc_abort_undo () =
  let g = Asf_mem.Alloc.create () in
  let p = Txmalloc.create g in
  ignore (Txmalloc.refill p);
  Txmalloc.attempt_begin p;
  let a = Option.get (Txmalloc.alloc_tx p 8) in
  Txmalloc.attempt_abort p;
  Txmalloc.attempt_begin p;
  let b = Option.get (Txmalloc.alloc_tx p 8) in
  Alcotest.(check int) "aborted allocation undone" a b;
  (* Deferred frees of aborted attempts are dropped. *)
  Txmalloc.free_tx p b 8;
  Txmalloc.attempt_abort p;
  Txmalloc.attempt_begin p;
  let c = Option.get (Txmalloc.alloc_tx p 8) in
  Alcotest.(check int) "same block again (free dropped, alloc undone)" b c;
  Txmalloc.attempt_commit p

let test_txmalloc_exhaustion () =
  let g = Asf_mem.Alloc.create () in
  let p = Txmalloc.create ~chunk_words:64 g in
  ignore (Txmalloc.refill p);
  Txmalloc.attempt_begin p;
  (* 64-word chunk: 8 8-word blocks; the 9th must fail speculatively. *)
  for _ = 1 to 8 do
    Alcotest.(check bool) "fits" true (Txmalloc.alloc_tx p 8 <> None)
  done;
  Alcotest.(check (option int)) "pool exhausted" None (Txmalloc.alloc_tx p 8);
  Txmalloc.attempt_abort p

(* Model-based qcheck property: random attempt histories of allocs and
   frees never hand out overlapping live blocks, and aborted attempts
   change nothing. *)
type pool_op = Alloc of int | Free of int (* index into live list *)

let pool_op_gen =
  QCheck.Gen.(
    frequency
      [ (3, map (fun n -> Alloc n) (int_range 1 24)); (1, map (fun i -> Free i) (int_range 0 64)) ])

let prop_txmalloc_model =
  QCheck.Test.make ~name:"txmalloc: live blocks never overlap; aborts are no-ops"
    ~count:200
    (QCheck.make
       QCheck.Gen.(list_size (int_range 1 12) (pair (list_size (int_range 0 10) pool_op_gen) bool)))
    (fun attempts ->
      let g = Asf_mem.Alloc.create () in
      let p = Txmalloc.create ~chunk_words:256 g in
      ignore (Txmalloc.refill p);
      (* live: committed blocks (addr, words). *)
      let live = ref [] in
      let overlaps (a1, n1) (a2, n2) =
        let r1 = Asf_mem.Addr.lines_of_words n1 * Asf_mem.Addr.words_per_line in
        let r2 = Asf_mem.Addr.lines_of_words n2 * Asf_mem.Addr.words_per_line in
        not (a1 + r1 <= a2 || a2 + r2 <= a1)
      in
      List.for_all
        (fun (ops, commit) ->
          ignore (Txmalloc.refill p);
          Txmalloc.attempt_begin p;
          let attempt_allocs = ref [] in
          let attempt_frees = ref [] in
          List.iter
            (fun op ->
              match op with
              | Alloc n -> (
                  match Txmalloc.alloc_tx p n with
                  | Some a -> attempt_allocs := (a, n) :: !attempt_allocs
                  | None -> () (* pool exhausted speculatively: fine *))
              | Free i ->
                  let candidates =
                    List.filter (fun b -> not (List.mem b !attempt_frees)) !live
                  in
                  if candidates <> [] then begin
                    let b = List.nth candidates (i mod List.length candidates) in
                    Txmalloc.free_tx p (fst b) (snd b);
                    attempt_frees := b :: !attempt_frees
                  end)
            ops;
          if commit then begin
            Txmalloc.attempt_commit p;
            live :=
              !attempt_allocs @ List.filter (fun b -> not (List.mem b !attempt_frees)) !live
          end
          else Txmalloc.attempt_abort p;
          (* Invariant: live blocks are pairwise disjoint. *)
          let rec disjoint = function
            | [] -> true
            | b :: rest -> List.for_all (fun b' -> not (overlaps b b')) rest && disjoint rest
          in
          disjoint !live)
        attempts)

let () =
  Alcotest.run "tm"
    [
      ( "modes",
        [
          Alcotest.test_case "counter all modes" `Quick test_counter_all_modes;
          Alcotest.test_case "stats consistent" `Quick test_counter_stats_consistent;
          Alcotest.test_case "stm no serial" `Quick test_stm_mode_has_no_serial;
        ] );
      ( "serial",
        [
          Alcotest.test_case "capacity fallback" `Quick test_capacity_goes_serial;
          Alcotest.test_case "mutual exclusion" `Quick test_serial_excludes_hardware_txns;
        ] );
      ( "malloc",
        [
          Alcotest.test_case "alloc in txn" `Quick test_malloc_inside_txn;
          Alcotest.test_case "abort rollback" `Quick test_aborted_alloc_rolled_back;
          Alcotest.test_case "free deferred" `Quick test_free_deferred_to_commit;
        ] );
      ( "interrupts",
        [
          Alcotest.test_case "long txn aborted" `Quick test_interrupt_aborts_long_txn;
          Alcotest.test_case "short txn retries in hw" `Quick
            test_interrupt_retry_commits_hardware;
        ] );
      ( "syscall",
        [ Alcotest.test_case "irrevocable goes serial" `Quick test_syscall_goes_serial ] );
      ( "annotation",
        [ Alcotest.test_case "capacity relief" `Quick test_annotation_avoids_capacity ] );
      ( "accounting",
        [
          Alcotest.test_case "categories" `Quick test_cycle_categories_cover_txn_time;
          Alcotest.test_case "abort waste folding" `Quick
            test_aborted_cycles_folded_into_waste;
          Alcotest.test_case "sum = core time" `Quick test_categories_sum_to_core_time;
        ] );
      ( "backoff",
        [
          Alcotest.test_case "window monotone, capped" `Quick
            test_backoff_window_monotone_and_capped;
          QCheck_alcotest.to_alcotest prop_backoff_streams_decorrelated;
        ] );
      ( "serial lock",
        [
          Alcotest.test_case "spin window monotone, capped" `Quick
            test_serial_spin_window_monotone_and_capped;
          Alcotest.test_case "bounded wait / fairness" `Quick test_serial_lock_fairness;
        ] );
      ( "deadlines",
        [
          Alcotest.test_case "generous deadline commits" `Quick
            test_atomic_until_generous_deadline_commits;
          Alcotest.test_case "expired raises before attempt" `Quick
            test_atomic_until_expired_raises_before_attempt;
          Alcotest.test_case "nested rejected" `Quick test_atomic_until_nested_rejected;
          Alcotest.test_case "accounting under contention" `Quick
            test_deadline_accounting_under_contention;
          QCheck_alcotest.to_alcotest prop_decorrelated_window_bounded;
        ] );
      ( "txmalloc",
        [
          Alcotest.test_case "rounding/reuse" `Quick test_txmalloc_rounding_and_reuse;
          Alcotest.test_case "abort undo" `Quick test_txmalloc_abort_undo;
          Alcotest.test_case "exhaustion" `Quick test_txmalloc_exhaustion;
          QCheck_alcotest.to_alcotest prop_txmalloc_model;
        ] );
    ]
