(* Tests for the ASF ISA surface: speculative regions, conflict
   (requester-wins) semantics, capacity limits per implementation variant,
   early release, page-fault aborts, selective annotation, and the
   Fig. 1 DCAS primitive. *)

module Engine = Asf_engine.Engine
module Params = Asf_machine.Params
module Addr = Asf_mem.Addr
module Memsys = Asf_cache.Memsys
module Abort = Asf_core.Abort
module Variant = Asf_core.Variant
module Llb = Asf_core.Llb
module Asf = Asf_core.Asf

(* Small-quantum params would flood tests with interrupt aborts; use the
   real Barcelona quantum (2.2M cycles), far beyond these micro-tests. *)
let setup ?(n_cores = 2) ?(variant = Variant.llb8) ?(requester_wins = true) () =
  let e = Engine.create ~n_cores () in
  let m = Memsys.create Params.barcelona e in
  let a = Asf.create m ~requester_wins variant in
  (* Pre-map the low pages (words 0..32767), as an OS would after program
     setup; tests of fault behaviour use addresses beyond this window. *)
  for p = 0 to 63 do
    Memsys.map_page m p
  done;
  (e, m, a)

let run_threads e fns =
  List.iteri (fun core f -> Engine.spawn e ~core f) fns;
  Engine.run e

(* ------------------------------------------------------------------ *)
(* Llb unit tests                                                      *)
(* ------------------------------------------------------------------ *)

let test_llb_capacity () =
  let b = Llb.create ~capacity:2 in
  Alcotest.(check bool) "first" true (Llb.protect_read b 1);
  Alcotest.(check bool) "second" true (Llb.protect_read b 2);
  Alcotest.(check bool) "idempotent" true (Llb.protect_read b 1);
  Alcotest.(check bool) "third rejected" false (Llb.protect_read b 3);
  Alcotest.(check int) "two entries" 2 (Llb.entries b)

let test_llb_write_upgrade () =
  let b = Llb.create ~capacity:2 in
  ignore (Llb.protect_read b 7);
  Alcotest.(check bool) "not written yet" false (Llb.written b 7);
  Alcotest.(check bool) "upgrade in place" true
    (Llb.protect_write b 7 ~backup:(Array.make 8 0));
  Alcotest.(check bool) "now written" true (Llb.written b 7);
  Alcotest.(check int) "still one entry" 1 (Llb.entries b);
  Alcotest.(check int) "one written" 1 (Llb.written_count b)

let test_llb_release_rules () =
  let b = Llb.create ~capacity:4 in
  ignore (Llb.protect_read b 1);
  ignore (Llb.protect_write b 2 ~backup:(Array.make 8 0));
  Alcotest.(check bool) "read entry releasable" true (Llb.release b 1);
  Alcotest.(check bool) "written entry pinned" false (Llb.release b 2);
  Alcotest.(check bool) "absent not releasable" false (Llb.release b 9)

(* ------------------------------------------------------------------ *)
(* Single-region behaviour                                             *)
(* ------------------------------------------------------------------ *)

let test_commit_publishes () =
  let e, m, a = setup () in
  Memsys.poke m 100 1;
  run_threads e
    [
      (fun () ->
        Asf.speculate a ~core:0;
        let v = Asf.lock_load a ~core:0 100 in
        Asf.lock_store a ~core:0 100 (v + 41);
        Asf.commit a ~core:0);
    ];
  Alcotest.(check int) "committed value" 42 (Memsys.peek m 100);
  Alcotest.(check int) "one speculate" 1 (Asf.speculates a);
  Alcotest.(check int) "one commit" 1 (Asf.commits a)

let test_explicit_abort_rolls_back () =
  let e, m, a = setup () in
  Memsys.poke m 100 7;
  let observed = ref None in
  run_threads e
    [
      (fun () ->
        try
          Asf.speculate a ~core:0;
          Asf.lock_store a ~core:0 100 99;
          Asf.abort_explicit a ~core:0 ~code:5
        with Asf.Aborted r -> observed := Some r);
    ];
  Alcotest.(check int) "store undone" 7 (Memsys.peek m 100);
  (match !observed with
  | Some (Abort.Explicit 5) -> ()
  | _ -> Alcotest.fail "expected Explicit 5");
  Alcotest.(check bool) "region closed" false (Asf.in_region a ~core:0)

let test_flat_nesting () =
  let e, m, a = setup () in
  run_threads e
    [
      (fun () ->
        Asf.speculate a ~core:0;
        Asf.lock_store a ~core:0 200 1;
        Asf.speculate a ~core:0 (* nested *);
        Asf.lock_store a ~core:0 208 2;
        Asf.commit a ~core:0 (* inner commit publishes nothing yet *);
        Alcotest.(check bool) "still in region" true (Asf.in_region a ~core:0);
        Asf.commit a ~core:0);
    ];
  Alcotest.(check int) "outer data" 1 (Memsys.peek m 200);
  Alcotest.(check int) "inner data" 2 (Memsys.peek m 208);
  Alcotest.(check int) "single hardware commit" 1 (Asf.commits a)

let test_nested_abort_kills_outermost () =
  let e, m, a = setup () in
  Memsys.poke m 200 5;
  Memsys.poke m 208 6;
  run_threads e
    [
      (fun () ->
        try
          Asf.speculate a ~core:0;
          Asf.lock_store a ~core:0 200 50;
          Asf.speculate a ~core:0;
          Asf.lock_store a ~core:0 208 60;
          Asf.abort_explicit a ~core:0 ~code:1
        with Asf.Aborted _ -> ());
    ];
  Alcotest.(check int) "outer store undone" 5 (Memsys.peek m 200);
  Alcotest.(check int) "inner store undone" 6 (Memsys.peek m 208)

let test_capacity_abort_llb8 () =
  let e, _m, a = setup ~variant:Variant.llb8 () in
  let result = ref None in
  run_threads e
    [
      (fun () ->
        try
          Asf.speculate a ~core:0;
          (* Touch 9 distinct lines: one more than LLB-8 holds. *)
          for i = 0 to 8 do
            ignore (Asf.lock_load a ~core:0 (i * Addr.words_per_line))
          done;
          Asf.commit a ~core:0
        with Asf.Aborted r -> result := Some r);
    ];
  match !result with
  | Some Abort.Capacity -> ()
  | _ -> Alcotest.fail "expected capacity abort"

let test_no_capacity_abort_llb256 () =
  let e, _m, a = setup ~variant:Variant.llb256 () in
  run_threads e
    [
      (fun () ->
        Asf.speculate a ~core:0;
        for i = 0 to 199 do
          ignore (Asf.lock_load a ~core:0 (i * Addr.words_per_line))
        done;
        Asf.commit a ~core:0);
    ];
  Alcotest.(check int) "committed" 1 (Asf.commits a)

let test_hybrid_large_read_set () =
  (* LLB-8 w/ L1: reads are tracked in the L1, so 200 read lines fit even
     though the LLB holds only 8; writes are still LLB-bounded. *)
  let e, _m, a = setup ~variant:Variant.llb8_l1 () in
  run_threads e
    [
      (fun () ->
        Asf.speculate a ~core:0;
        for i = 0 to 199 do
          ignore (Asf.lock_load a ~core:0 (i * Addr.words_per_line))
        done;
        Asf.commit a ~core:0);
    ];
  Alcotest.(check int) "committed" 1 (Asf.commits a)

let test_hybrid_write_capacity () =
  let e, _m, a = setup ~variant:Variant.llb8_l1 () in
  let result = ref None in
  run_threads e
    [
      (fun () ->
        try
          Asf.speculate a ~core:0;
          for i = 0 to 8 do
            Asf.lock_store a ~core:0 (i * Addr.words_per_line) 1
          done;
          Asf.commit a ~core:0
        with Asf.Aborted r -> result := Some r);
    ];
  match !result with
  | Some Abort.Capacity -> ()
  | _ -> Alcotest.fail "expected write-capacity abort"

let test_hybrid_l1_displacement () =
  (* Three read lines mapping to the same 2-way L1 set displace the first;
     the hybrid variant must flag a (transient) capacity abort. L1 has
     512 sets, so lines l and l+512 collide. *)
  let e, _m, a = setup ~variant:Variant.llb256_l1 () in
  let result = ref None in
  run_threads e
    [
      (fun () ->
        try
          Asf.speculate a ~core:0;
          ignore (Asf.lock_load a ~core:0 (Addr.line_base 0));
          ignore (Asf.lock_load a ~core:0 (Addr.line_base 512));
          ignore (Asf.lock_load a ~core:0 (Addr.line_base 1024));
          (* The displacement doomed us; the next op delivers it. *)
          ignore (Asf.lock_load a ~core:0 (Addr.line_base 1));
          Asf.commit a ~core:0
        with Asf.Aborted r -> result := Some r);
    ];
  (match !result with
  | Some Abort.Capacity -> ()
  | Some r -> Alcotest.failf "expected capacity, got %s" (Abort.to_string r)
  | None -> Alcotest.fail "expected displacement abort");
  (* The same pattern on pure LLB-256 commits fine: the LLB is fully
     associative. *)
  let e2, _m2, a2 = setup ~variant:Variant.llb256 () in
  run_threads e2
    [
      (fun () ->
        Asf.speculate a2 ~core:0;
        ignore (Asf.lock_load a2 ~core:0 (Addr.line_base 0));
        ignore (Asf.lock_load a2 ~core:0 (Addr.line_base 512));
        ignore (Asf.lock_load a2 ~core:0 (Addr.line_base 1024));
        Asf.commit a2 ~core:0);
    ];
  Alcotest.(check int) "LLB-256 immune to associativity" 1 (Asf.commits a2)

(* ------------------------------------------------------------------ *)
(* Conflicts: requester-wins                                           *)
(* ------------------------------------------------------------------ *)

let test_requester_wins_read_write () =
  (* Core 0 reads X speculatively and parks; core 1 then writes X plainly;
     core 0 must abort with Contention at its next ASF op. *)
  let e, m, a = setup () in
  Memsys.poke m 500 10;
  let result = ref None in
  run_threads e
    [
      (fun () ->
        try
          Asf.speculate a ~core:0;
          ignore (Asf.lock_load a ~core:0 500);
          Engine.elapse 2000 (* park while core 1 writes *);
          ignore (Asf.lock_load a ~core:0 508);
          Asf.commit a ~core:0
        with Asf.Aborted r -> result := Some r);
      (fun () ->
        Engine.elapse 500;
        Asf.plain_store a ~core:1 500 11);
    ];
  (match !result with
  | Some Abort.Contention -> ()
  | Some r -> Alcotest.failf "expected contention, got %s" (Abort.to_string r)
  | None -> Alcotest.fail "expected abort");
  Alcotest.(check int) "plain store survives" 11 (Memsys.peek m 500)

let test_requester_wins_write_read () =
  (* Core 0 speculatively writes X and parks; core 1 then merely READS X:
     write-set lines conflict with any remote access, and crucially the
     reader must see the pre-transactional value (strong isolation, undo
     before the probe is answered). *)
  let e, m, a = setup () in
  Memsys.poke m 600 77;
  let seen = ref (-1) in
  let result = ref None in
  run_threads e
    [
      (fun () ->
        try
          Asf.speculate a ~core:0;
          Asf.lock_store a ~core:0 600 88;
          Engine.elapse 2000;
          Asf.commit a ~core:0
        with Asf.Aborted r -> result := Some r);
      (fun () ->
        Engine.elapse 500;
        seen := Asf.plain_load a ~core:1 600);
    ];
  Alcotest.(check int) "reader saw rolled-back value" 77 !seen;
  (match !result with
  | Some Abort.Contention -> ()
  | _ -> Alcotest.fail "writer aborted by reader probe");
  Alcotest.(check int) "no speculative residue" 77 (Memsys.peek m 600)

let test_requester_loses_spec_conflict () =
  (* requester_wins:false ablation: a speculative access that would
     conflict with another region aborts the *requesting* region; the
     holder keeps its protection and commits. *)
  let e, m, a = setup ~requester_wins:false () in
  Memsys.poke m 640 5;
  let requester = ref None in
  let holder = ref None in
  run_threads e
    [
      (fun () ->
        try
          Asf.speculate a ~core:0;
          ignore (Asf.lock_load a ~core:0 640);
          Engine.elapse 4000 (* hold the line while core 1 collides *);
          Asf.lock_store a ~core:0 640 6;
          Asf.commit a ~core:0
        with Asf.Aborted r -> holder := Some r);
      (fun () ->
        Engine.elapse 500;
        try
          Asf.speculate a ~core:1;
          Asf.lock_store a ~core:1 640 99;
          Asf.commit a ~core:1
        with Asf.Aborted r -> requester := Some r);
    ];
  (match !requester with
  | Some Abort.Contention -> ()
  | Some r -> Alcotest.failf "requester: expected contention, got %s" (Abort.to_string r)
  | None -> Alcotest.fail "requester must self-abort under requester-loses");
  Alcotest.(check bool) "holder survives" true (!holder = None);
  Alcotest.(check int) "holder's commit is the one published" 6 (Memsys.peek m 640);
  Alcotest.(check int) "exactly one commit" 1 (Asf.commits a);
  Alcotest.(check int) "requester knows the line"
    (Addr.line_base (Addr.line_of 640))
    (match Asf.last_conflict a ~core:1 with Some l -> l | None -> -1)

let test_requester_loses_plain_still_dooms () =
  (* Even with requester_wins:false, a *non-speculative* requester cannot
     be the one to back off — strong isolation demands the holder aborts
     and rolls back before the plain access completes. *)
  let e, m, a = setup ~requester_wins:false () in
  Memsys.poke m 648 77;
  let seen = ref (-1) in
  let holder = ref None in
  run_threads e
    [
      (fun () ->
        try
          Asf.speculate a ~core:0;
          Asf.lock_store a ~core:0 648 88;
          Engine.elapse 4000;
          Asf.commit a ~core:0
        with Asf.Aborted r -> holder := Some r);
      (fun () ->
        Engine.elapse 500;
        seen := Asf.plain_load a ~core:1 648);
    ];
  (match !holder with
  | Some Abort.Contention -> ()
  | _ -> Alcotest.fail "holder must be doomed by the plain access");
  Alcotest.(check int) "plain reader saw the rolled-back value" 77 !seen;
  Alcotest.(check int) "no speculative residue" 77 (Memsys.peek m 648)

let test_read_read_no_conflict () =
  let e, m, a = setup () in
  Memsys.poke m 700 3;
  run_threads e
    [
      (fun () ->
        Asf.speculate a ~core:0;
        ignore (Asf.lock_load a ~core:0 700);
        Engine.elapse 2000;
        Asf.commit a ~core:0);
      (fun () ->
        Engine.elapse 500;
        Asf.speculate a ~core:1;
        ignore (Asf.lock_load a ~core:1 700);
        Asf.commit a ~core:1);
    ];
  Alcotest.(check int) "both committed" 2 (Asf.commits a)

let test_speculative_store_invisible_until_commit () =
  (* Before any conflicting probe, a remote plain read sees old data while
     the region is active (values are published only by commit... in this
     model stores go to RAM guarded by requester-wins: reading the line
     *dooms or not*? A plain read of a speculatively-written line aborts
     the writer and sees the rollback — verified above. Reading an
     UNRELATED line is simply unaffected. *)
  let e, m, a = setup () in
  Memsys.poke m 800 1;
  Memsys.poke m 900 2;
  let seen = ref 0 in
  run_threads e
    [
      (fun () ->
        Asf.speculate a ~core:0;
        Asf.lock_store a ~core:0 800 5;
        Engine.elapse 2000;
        Asf.commit a ~core:0);
      (fun () ->
        Engine.elapse 500;
        seen := Asf.plain_load a ~core:1 900);
    ];
  Alcotest.(check int) "unrelated line untouched" 2 !seen;
  Alcotest.(check int) "writer committed" 5 (Memsys.peek m 800);
  Alcotest.(check int) "one commit" 1 (Asf.commits a)

(* ------------------------------------------------------------------ *)
(* Early release                                                       *)
(* ------------------------------------------------------------------ *)

let test_release_shrinks_read_set () =
  let e, _m, a = setup ~variant:Variant.llb8 () in
  run_threads e
    [
      (fun () ->
        Asf.speculate a ~core:0;
        (* Walk 20 lines hand-over-hand, keeping at most 2 protected. *)
        for i = 0 to 19 do
          ignore (Asf.lock_load a ~core:0 (i * Addr.words_per_line));
          if i > 0 then Asf.release a ~core:0 ((i - 1) * Addr.words_per_line)
        done;
        Alcotest.(check int) "read set stayed small" 1
          (Asf.protected_lines a ~core:0);
        Asf.commit a ~core:0);
    ];
  Alcotest.(check int) "committed despite LLB-8" 1 (Asf.commits a)

let test_release_does_not_cancel_store () =
  let e, m, a = setup () in
  Memsys.poke m 1000 1;
  run_threads e
    [
      (fun () ->
        Asf.speculate a ~core:0;
        Asf.lock_store a ~core:0 1000 2;
        Asf.release a ~core:0 1000 (* hint must be ignored for writes *);
        Alcotest.(check int) "write still protected" 1
          (Asf.written_lines a ~core:0);
        Asf.commit a ~core:0);
    ];
  Alcotest.(check int) "store committed" 2 (Memsys.peek m 1000)

let test_released_line_no_longer_conflicts () =
  let e, m, a = setup () in
  Memsys.poke m 1100 1;
  let result = ref `None in
  run_threads e
    [
      (fun () ->
        (try
           Asf.speculate a ~core:0;
           ignore (Asf.lock_load a ~core:0 1100);
           Asf.release a ~core:0 1100;
           Engine.elapse 2000;
           ignore (Asf.lock_load a ~core:0 1108);
           Asf.commit a ~core:0;
           result := `Committed
         with Asf.Aborted _ -> result := `Aborted));
      (fun () ->
        Engine.elapse 500;
        Asf.plain_store a ~core:1 1100 9);
    ];
  Alcotest.(check bool) "survived remote write to released line" true
    (!result = `Committed)

(* ------------------------------------------------------------------ *)
(* Page faults and selective annotation                                *)
(* ------------------------------------------------------------------ *)

let test_page_fault_aborts_region () =
  let e, m, a = setup () in
  let result = ref None in
  run_threads e
    [
      (fun () ->
        (try
           Asf.speculate a ~core:0;
           (* Word 1M: never touched, page unmapped. *)
           ignore (Asf.lock_load a ~core:0 1_000_000);
           Asf.commit a ~core:0
         with Asf.Aborted r -> result := Some r);
        (* The runtime services the fault and retries; now it commits. *)
        (match !result with
        | Some (Abort.Page_fault page) -> Memsys.service_fault m ~page
        | _ -> Alcotest.fail "expected page-fault abort");
        Asf.speculate a ~core:0;
        ignore (Asf.lock_load a ~core:0 1_000_000);
        Asf.commit a ~core:0);
    ];
  Alcotest.(check int) "retry committed" 1 (Asf.commits a)

let test_store_page_fault_aborts () =
  let e, _m, a = setup () in
  let result = ref None in
  run_threads e
    [
      (fun () ->
        try
          Asf.speculate a ~core:0;
          Asf.lock_store a ~core:0 2_000_000 1;
          Asf.commit a ~core:0
        with Asf.Aborted r -> result := Some r);
    ];
  match !result with
  | Some (Abort.Page_fault _) -> ()
  | _ -> Alcotest.fail "expected page-fault abort on store"

let test_plain_access_untracked () =
  (* Selective annotation: plain accesses consume no ASF capacity. *)
  let e, _m, a = setup ~variant:Variant.llb8 () in
  run_threads e
    [
      (fun () ->
        Asf.speculate a ~core:0;
        for i = 0 to 63 do
          ignore (Asf.plain_load a ~core:0 (3000 + (i * Addr.words_per_line)))
        done;
        Alcotest.(check int) "no protected lines" 0 (Asf.protected_lines a ~core:0);
        Asf.commit a ~core:0);
    ];
  Alcotest.(check int) "committed" 1 (Asf.commits a)

let test_colocation_fault () =
  let e, _m, a = setup () in
  let faulted = ref false in
  run_threads e
    [
      (fun () ->
        try
          Asf.speculate a ~core:0;
          Asf.lock_store a ~core:0 4000 1;
          (try Asf.plain_store a ~core:0 4001 2
           with Asf.Colocation_fault _ -> faulted := true);
          Asf.abort_explicit a ~core:0 ~code:0
        with Asf.Aborted _ -> ());
    ];
  Alcotest.(check bool) "unprotected write to written line faults" true !faulted

let test_watchw_protects_without_data () =
  let e, m, a = setup () in
  Memsys.poke m 5000 3;
  let result = ref None in
  run_threads e
    [
      (fun () ->
        try
          Asf.speculate a ~core:0;
          Asf.watchw a ~core:0 5000;
          Engine.elapse 2000;
          Asf.commit a ~core:0
        with Asf.Aborted r -> result := Some r);
      (fun () ->
        Engine.elapse 500;
        ignore (Asf.plain_load a ~core:1 5000));
    ];
  match !result with
  | Some Abort.Contention -> ()
  | _ -> Alcotest.fail "watchw line must conflict with remote reads"

let test_watchr_tolerates_remote_reads () =
  let e, m, a = setup () in
  Memsys.poke m 5100 3;
  run_threads e
    [
      (fun () ->
        Asf.speculate a ~core:0;
        Asf.watchr a ~core:0 5100;
        Engine.elapse 2000;
        Asf.commit a ~core:0);
      (fun () ->
        Engine.elapse 500;
        ignore (Asf.plain_load a ~core:1 5100));
    ];
  Alcotest.(check int) "committed" 1 (Asf.commits a)

(* ------------------------------------------------------------------ *)
(* DCAS (Fig. 1)                                                       *)
(* ------------------------------------------------------------------ *)

(* The paper's DCAS primitive: atomically
   if mem1 = cmp1 && mem2 = cmp2 then mem1 <- new1; mem2 <- new2. *)
let dcas a ~core ~mem1 ~mem2 ~cmp1 ~cmp2 ~new1 ~new2 =
  let rec retry () =
    match
      Asf.speculate a ~core;
      let v1 = Asf.lock_load a ~core mem1 in
      let v2 = Asf.lock_load a ~core mem2 in
      if v1 = cmp1 && v2 = cmp2 then begin
        Asf.lock_store a ~core mem1 new1;
        Asf.lock_store a ~core mem2 new2;
        Asf.commit a ~core;
        `Success
      end
      else begin
        Asf.commit a ~core;
        `Mismatch (v1, v2)
      end
    with
    | outcome -> outcome
    | exception Asf.Aborted _ ->
        Engine.elapse 50;
        retry ()
  in
  retry ()

let test_dcas_success_and_failure () =
  let e, m, a = setup () in
  Memsys.poke m 6000 1;
  Memsys.poke m 6100 2;
  run_threads e
    [
      (fun () ->
        (match dcas a ~core:0 ~mem1:6000 ~mem2:6100 ~cmp1:1 ~cmp2:2 ~new1:10 ~new2:20 with
        | `Success -> ()
        | `Mismatch _ -> Alcotest.fail "dcas should succeed");
        match dcas a ~core:0 ~mem1:6000 ~mem2:6100 ~cmp1:1 ~cmp2:2 ~new1:0 ~new2:0 with
        | `Mismatch (10, 20) -> ()
        | _ -> Alcotest.fail "dcas should report current values");
    ];
  Alcotest.(check int) "mem1" 10 (Memsys.peek m 6000);
  Alcotest.(check int) "mem2" 20 (Memsys.peek m 6100)

let test_dcas_concurrent_counters () =
  (* Classic DCAS exercise: two counters must move in lockstep under
     concurrent increments from every core. *)
  let n_cores = 4 and per_core = 50 in
  let e, m, a = setup ~n_cores () in
  Memsys.poke m 7000 0;
  Memsys.poke m 7100 0;
  let fns =
    List.init n_cores (fun core () ->
        let rec bump n =
          if n > 0 then begin
            let c1 = Asf.plain_load a ~core 7000 in
            let c2 = Asf.plain_load a ~core 7100 in
            match
              dcas a ~core ~mem1:7000 ~mem2:7100 ~cmp1:c1 ~cmp2:c2
                ~new1:(c1 + 1) ~new2:(c2 + 1)
            with
            | `Success -> bump (n - 1)
            | `Mismatch _ -> bump n
          end
        in
        bump per_core)
  in
  run_threads e fns;
  Alcotest.(check int) "counter 1" (n_cores * per_core) (Memsys.peek m 7000);
  Alcotest.(check int) "counter 2" (n_cores * per_core) (Memsys.peek m 7100)

(* ------------------------------------------------------------------ *)
(* Randomized atomicity property                                       *)
(* ------------------------------------------------------------------ *)

let test_random_transfers_conserve_sum () =
  (* 4 cores make random transfers between 8 accounts inside speculative
     regions; aborted attempts retry. Total balance is invariant. *)
  let n_cores = 4 and n_accounts = 8 and transfers = 100 in
  let e, m, a = setup ~n_cores ~variant:Variant.llb256 () in
  let account i = 8000 + (i * Addr.words_per_line) in
  for i = 0 to n_accounts - 1 do
    Memsys.poke m (account i) 1000
  done;
  let fns =
    List.init n_cores (fun core () ->
        let rng = Asf_engine.Prng.create (core + 99) in
        for _ = 1 to transfers do
          let src = Asf_engine.Prng.int rng n_accounts in
          let dst = Asf_engine.Prng.int rng n_accounts in
          let amt = Asf_engine.Prng.int rng 10 in
          let rec attempt backoff =
            try
              Asf.speculate a ~core;
              let s = Asf.lock_load a ~core (account src) in
              let d = Asf.lock_load a ~core (account dst) in
              if src <> dst then begin
                Asf.lock_store a ~core (account src) (s - amt);
                Asf.lock_store a ~core (account dst) (d + amt)
              end;
              Asf.commit a ~core
            with Asf.Aborted _ ->
              Engine.elapse backoff;
              attempt (min (backoff * 2) 10_000)
          in
          attempt 100
        done)
  in
  run_threads e fns;
  let total = ref 0 in
  for i = 0 to n_accounts - 1 do
    total := !total + Memsys.peek m (account i)
  done;
  Alcotest.(check int) "sum conserved" (n_accounts * 1000) !total;
  Alcotest.(check bool) "some contention happened" true
    (Array.fold_left ( + ) 0 (Asf.aborts a) >= 0)

let () =
  Alcotest.run "asf"
    [
      ( "llb",
        [
          Alcotest.test_case "capacity" `Quick test_llb_capacity;
          Alcotest.test_case "write upgrade" `Quick test_llb_write_upgrade;
          Alcotest.test_case "release rules" `Quick test_llb_release_rules;
        ] );
      ( "region",
        [
          Alcotest.test_case "commit publishes" `Quick test_commit_publishes;
          Alcotest.test_case "abort rolls back" `Quick test_explicit_abort_rolls_back;
          Alcotest.test_case "flat nesting" `Quick test_flat_nesting;
          Alcotest.test_case "nested abort" `Quick test_nested_abort_kills_outermost;
        ] );
      ( "capacity",
        [
          Alcotest.test_case "LLB-8 overflow" `Quick test_capacity_abort_llb8;
          Alcotest.test_case "LLB-256 fits" `Quick test_no_capacity_abort_llb256;
          Alcotest.test_case "hybrid reads in L1" `Quick test_hybrid_large_read_set;
          Alcotest.test_case "hybrid write bound" `Quick test_hybrid_write_capacity;
          Alcotest.test_case "hybrid displacement" `Quick test_hybrid_l1_displacement;
        ] );
      ( "conflict",
        [
          Alcotest.test_case "write kills reader" `Quick test_requester_wins_read_write;
          Alcotest.test_case "read kills writer" `Quick test_requester_wins_write_read;
          Alcotest.test_case "requester-loses spec" `Quick test_requester_loses_spec_conflict;
          Alcotest.test_case "requester-loses plain" `Quick
            test_requester_loses_plain_still_dooms;
          Alcotest.test_case "read/read ok" `Quick test_read_read_no_conflict;
          Alcotest.test_case "isolation" `Quick test_speculative_store_invisible_until_commit;
        ] );
      ( "release",
        [
          Alcotest.test_case "shrinks read set" `Quick test_release_shrinks_read_set;
          Alcotest.test_case "write pinned" `Quick test_release_does_not_cancel_store;
          Alcotest.test_case "no conflict after" `Quick test_released_line_no_longer_conflicts;
        ] );
      ( "faults",
        [
          Alcotest.test_case "load fault aborts" `Quick test_page_fault_aborts_region;
          Alcotest.test_case "store fault aborts" `Quick test_store_page_fault_aborts;
          Alcotest.test_case "plain untracked" `Quick test_plain_access_untracked;
          Alcotest.test_case "colocation fault" `Quick test_colocation_fault;
          Alcotest.test_case "watchw" `Quick test_watchw_protects_without_data;
          Alcotest.test_case "watchr" `Quick test_watchr_tolerates_remote_reads;
        ] );
      ( "dcas",
        [
          Alcotest.test_case "fig1 semantics" `Quick test_dcas_success_and_failure;
          Alcotest.test_case "concurrent counters" `Quick test_dcas_concurrent_counters;
        ] );
      ( "property",
        [ Alcotest.test_case "transfers conserve sum" `Quick test_random_transfers_conserve_sum ] );
    ]
