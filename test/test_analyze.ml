(* Tests for Txstatic, the static transaction analyzer: the L1-set
   geometry published by Llb against the cache model, the abstract
   memory's recording semantics (allocation padding, release/reread
   accounting, restart-hazard detection by double execution), the
   deliberately broken fixtures, and a QCheck battery asserting that the
   analyzer's footprints agree exactly with the runtime checker's
   per-attempt profiles on random programs over the deterministic
   transactional structures. *)

module Params = Asf_machine.Params
module Addr = Asf_mem.Addr
module Cache = Asf_cache.Cache
module Llb = Asf_core.Llb
module Variant = Asf_core.Variant
module Prng = Asf_engine.Prng
module Tm = Asf_tm_rt.Tm
module Check = Asf_check.Check
module Ops = Asf_dstruct.Ops
module Tlist = Asf_dstruct.Tlist
module Trbtree = Asf_dstruct.Trbtree
module Thashset = Asf_dstruct.Thashset
module Amem = Asf_analyze.Amem
module Workloads = Asf_analyze.Workloads
module Analyze = Asf_analyze.Analyze
module Findings = Asf_analyze.Findings

let p = Params.barcelona

let l1_cache () =
  Cache.create_bytes ~size_bytes:p.Params.l1_bytes ~assoc:p.Params.l1_assoc
    ~line_bytes:p.Params.line_bytes

(* ------------------------------------------------------------------ *)
(* L1 geometry (Llb.set_index vs the cache model)                       *)
(* ------------------------------------------------------------------ *)

let test_l1_sets () =
  Alcotest.(check int) "matches the cache model" (Cache.sets (l1_cache ()))
    (Llb.l1_sets p);
  (* Barcelona: 64 KB / 2-way / 64 B lines = 512 sets. *)
  Alcotest.(check int) "barcelona geometry" 512 (Llb.l1_sets p)

let test_set_index_range () =
  let s = Llb.l1_sets p in
  let rng = Prng.create 7 in
  for _ = 1 to 1000 do
    let line = Prng.int rng (1 lsl 20) in
    let i = Llb.set_index p line in
    if not (0 <= i && i < s) then
      Alcotest.failf "set_index %d = %d out of [0,%d)" line i s;
    Alcotest.(check int) "periodic in the set count" i
      (Llb.set_index p (line + s))
  done

(* Three lines the analyzer maps to one set really do collide in the
   cache model: in a 2-way cache the third fill evicts the LRU way. *)
let test_set_index_eviction_agreement () =
  let c = l1_cache () in
  let s = Cache.sets c in
  let l0 = 5 in
  Alcotest.(check int) "same analyzer set" (Llb.set_index p l0)
    (Llb.set_index p (l0 + s));
  ignore (Cache.touch c l0);
  ignore (Cache.touch c (l0 + s));
  Alcotest.(check bool) "both ways resident" true
    (Cache.mem c l0 && Cache.mem c (l0 + s));
  let _, evicted = Cache.touch c (l0 + (2 * s)) in
  Alcotest.(check (option int)) "third fill evicts the LRU way" (Some l0)
    evicted

let test_llb_accessors () =
  let llb = Llb.create ~capacity:8 in
  let backup () = Array.make Addr.words_per_line 0 in
  ignore (Llb.protect_read llb 9);
  ignore (Llb.protect_read llb 3);
  ignore (Llb.protect_write llb 5 ~backup:(backup ()));
  Alcotest.(check int) "read_count" 2 (Llb.read_count llb);
  Alcotest.(check (list int)) "protected_lines sorted" [ 3; 5; 9 ]
    (Llb.protected_lines llb);
  ignore (Llb.release llb 9);
  Alcotest.(check (list int)) "release drops the line" [ 3; 5 ]
    (Llb.protected_lines llb)

(* ------------------------------------------------------------------ *)
(* Abstract memory                                                      *)
(* ------------------------------------------------------------------ *)

let test_amem_alloc () =
  let m = Amem.create () in
  let a = Amem.alloc_words m 1 in
  let b = Amem.alloc_words m 1 in
  let c = Amem.alloc_words m (Addr.words_per_line + 1) in
  let d = Amem.alloc_words m 1 in
  Alcotest.(check bool) "never null" true (a <> 0 && b <> 0);
  Alcotest.(check int) "one word pads to a line" Addr.words_per_line (b - a);
  Alcotest.(check int) "nine words pad to two lines" (2 * Addr.words_per_line)
    (d - c);
  Amem.poke m a 42;
  Alcotest.(check int) "poke/peek" 42 (Amem.peek m a);
  Alcotest.(check int) "unwritten words read 0" 0 (Amem.peek m b)

let test_amem_record () =
  let m = Amem.create () in
  let a = Amem.alloc_words m 1 in
  let b = Amem.alloc_words m 1 in
  let x =
    Amem.run_tx m (Prng.create 3) (fun c ->
        ignore (c.Amem.o.Ops.ld a);
        ignore (c.Amem.o.Ops.ld b);
        c.Amem.o.Ops.st b 7)
  in
  Alcotest.(check int) "read lines" 2 (List.length x.Amem.x_rd);
  Alcotest.(check (list int)) "written lines" [ Addr.line_of b ] x.Amem.x_wr;
  Alcotest.(check int) "peak = distinct protected" 2 x.Amem.x_peak;
  Alcotest.(check bool) "replay agrees" false x.Amem.x_diverged;
  Alcotest.(check int) "commit applied the write" 7 (Amem.peek m b)

let test_amem_release_reread () =
  let m = Amem.create () in
  let a = Amem.alloc_words m 1 in
  let b = Amem.alloc_words m 1 in
  let x =
    Amem.run_tx ~early_release:true m (Prng.create 3) (fun c ->
        ignore (c.Amem.o.Ops.ld a);
        c.Amem.o.Ops.release a;
        ignore (c.Amem.o.Ops.ld b);
        ignore (c.Amem.o.Ops.ld a))
  in
  Alcotest.(check int) "one release" 1 x.Amem.x_releases;
  Alcotest.(check int) "reread after release" 1 x.Amem.x_rereads;
  Alcotest.(check int) "live never exceeded 2" 2 x.Amem.x_peak

let test_amem_divergence () =
  let m = Amem.create () in
  let a = Amem.alloc_words m 1 in
  let host = ref 0 in
  let x =
    Amem.run_tx m (Prng.create 3) (fun c ->
        incr host;
        if !host mod 2 = 0 then ignore (c.Amem.o.Ops.ld a))
  in
  Alcotest.(check bool) "host state leaks into the trace" true
    x.Amem.x_diverged

let test_amem_rand_replay () =
  let m = Amem.create () in
  let a = Amem.alloc_words m 1 in
  let b = Amem.alloc_words m 1 in
  for seed = 1 to 20 do
    let x =
      Amem.run_tx m (Prng.create seed) (fun c ->
          if c.Amem.rand 100 land 1 = 0 then ignore (c.Amem.o.Ops.ld a)
          else ignore (c.Amem.o.Ops.ld b))
    in
    Alcotest.(check bool) "rand draws replay identically" false
      x.Amem.x_diverged
  done

(* ------------------------------------------------------------------ *)
(* Negative fixtures                                                    *)
(* ------------------------------------------------------------------ *)

let run_fixture name =
  match Workloads.find name with
  | None -> Alcotest.failf "missing fixture %s" name
  | Some w -> Analyze.run ~seeds:[ 1 ] ~txns:60 ~params:p [ w ]

let kinds t = List.map (fun f -> f.Findings.f_kind) (Analyze.findings t)

let test_fixture_unsafe_annotation () =
  let t = run_fixture "fixture-unsafe-annotation" in
  let ks = kinds t in
  Alcotest.(check bool) "nload race flagged" true (List.mem "unsafe-nload" ks);
  Alcotest.(check bool) "nstore race flagged" true
    (List.mem "unsafe-nstore" ks);
  Alcotest.(check bool) "violation" false (Analyze.ok t)

let test_fixture_over_capacity () =
  let t = run_fixture "fixture-over-capacity" in
  let wr = List.hd t.Analyze.a_reports in
  Alcotest.(check string) "overflows even the large LLB" "overflows"
    (Analyze.verdict_name
       (Analyze.workload_verdict ~params:p ~variant:Variant.llb256 wr));
  (* A truthful overflow is an advisory, not a violation. *)
  Alcotest.(check bool) "advisory only" true (Analyze.ok t)

let test_fixture_restart_hazard () =
  let t = run_fixture "fixture-restart-hazard" in
  Alcotest.(check bool) "hazard flagged" true
    (List.mem "restart-hazard" (kinds t));
  Alcotest.(check bool) "violation" false (Analyze.ok t)

let test_fixture_reread_after_release () =
  let t = run_fixture "fixture-reread-after-release" in
  Alcotest.(check bool) "misuse flagged" true
    (List.mem "reread-after-release" (kinds t));
  Alcotest.(check bool) "violation" false (Analyze.ok t)

let test_stock_clean () =
  let t = Analyze.run ~seeds:[ 1 ] ~txns:60 ~params:p Workloads.stock in
  Alcotest.(check int) "every stock workload analyzed"
    (List.length Workloads.stock)
    (List.length t.Analyze.a_reports);
  Alcotest.(check bool) "no violations in stock" true (Analyze.ok t)

let test_artifact_json () =
  let w = Option.get (Workloads.find "bank") in
  let t = Analyze.run ~seeds:[ 1 ] ~txns:40 ~params:p [ w ] in
  match Findings.validate_json (Analyze.artifact_json t ~extra:[]) with
  | Ok () -> ()
  | Error m -> Alcotest.failf "artifact JSON invalid: %s" m

(* ------------------------------------------------------------------ *)
(* QCheck: static footprints vs runtime per-attempt profiles            *)
(* ------------------------------------------------------------------ *)

(* Random programs over the structures whose access pattern is a pure
   function of keys (the skip list draws tower heights from the runtime
   PRNG, so it is exercised via the workload models instead). *)

type op = Add of int | Remove of int | Query of int

type structure = List_s | Rb_s | Hash_s

let structure_name = function
  | List_s -> "linked-list"
  | Rb_s -> "rb-tree"
  | Hash_s -> "hash-set"

let apply_ops o structure handle op =
  match (structure, handle) with
  | List_s, `L s -> (
      match op with
      | Add k -> ignore (Tlist.add o s k)
      | Remove k -> ignore (Tlist.remove o s k)
      | Query k -> ignore (Tlist.contains o s k))
  | Rb_s, `R s -> (
      match op with
      | Add k -> ignore (Trbtree.insert o s k (k * 2))
      | Remove k -> ignore (Trbtree.remove o s k)
      | Query k -> ignore (Trbtree.mem o s k))
  | Hash_s, `H s -> (
      match op with
      | Add k -> ignore (Thashset.add o s k)
      | Remove k -> ignore (Thashset.remove o s k)
      | Query k -> ignore (Thashset.contains o s k))
  | _ -> assert false

let create_structure o = function
  | List_s -> `L (Tlist.create o)
  | Rb_s -> `R (Trbtree.create o)
  | Hash_s -> `H (Thashset.create o ~buckets:8)

let final_elements o structure handle =
  match (structure, handle) with
  | List_s, `L s -> List.sort compare (Tlist.to_list o s)
  | Rb_s, `R s -> List.sort compare (List.map fst (Trbtree.to_list o s))
  | Hash_s, `H s -> List.sort compare (Thashset.to_list o s)
  | _ -> assert false

let static_execs structure (init, ops) =
  let m = Amem.create () in
  let so = Amem.setup_ops m in
  let s = create_structure so structure in
  List.iter (fun k -> apply_ops so structure s (Add k)) init;
  let rng = Prng.create 1 in
  let execs =
    List.map (fun op -> Amem.run_tx m rng (fun c -> apply_ops c.Amem.o structure s op)) ops
  in
  (execs, final_elements so structure s)

let runtime_profiles structure variant (init, ops) =
  let chk = Check.create ~parts:[ Check.Lint ] () in
  Check.install chk;
  let final = ref [] in
  Fun.protect ~finally:Check.uninstall (fun () ->
      let cfg =
        { (Tm.default_config (Tm.Asf_mode variant) ~n_cores:1) with Tm.seed = 1 }
      in
      let sys = Tm.create cfg in
      let so = Ops.setup sys in
      let s = create_structure so structure in
      List.iter (fun k -> apply_ops so structure s (Add k)) init;
      ignore
        (Tm.spawn sys ~core:0 (fun ctx ->
             List.iter
               (fun op ->
                 Tm.atomic ctx (fun () -> apply_ops (Ops.tx ctx) structure s op))
               ops));
      Tm.run sys;
      final := final_elements so structure s);
  Check.finalize chk;
  (Check.attempt_profiles chk, !final)

let print_program (init, ops) =
  let op_str = function
    | Add k -> Printf.sprintf "add %d" k
    | Remove k -> Printf.sprintf "remove %d" k
    | Query k -> Printf.sprintf "query %d" k
  in
  Printf.sprintf "init=[%s] ops=[%s]"
    (String.concat ";" (List.map string_of_int init))
    (String.concat "; " (List.map op_str ops))

let program_arb =
  let open QCheck.Gen in
  let key = int_bound 63 in
  let op =
    frequency
      [
        (2, map (fun k -> Add k) key);
        (1, map (fun k -> Remove k) key);
        (2, map (fun k -> Query k) key);
      ]
  in
  QCheck.make ~print:print_program
    (pair (list_size (int_bound 16) key) (list_size (int_range 1 20) op))

(* On LLB-256 nothing aborts, so committed hardware attempts line up
   one-to-one with the abstract executions: the runtime footprint must be
   the static peak plus the single ABI line (the serial-lock
   subscription), written-line counts must match exactly, and both sides
   must agree on the final contents. *)
let footprint_agreement structure =
  QCheck.Test.make
    ~name:(structure_name structure ^ ": static peak+1 = runtime footprint")
    ~count:25 program_arb
    (fun prog ->
      let execs, sfinal = static_execs structure prog in
      let profiles, rfinal = runtime_profiles structure Variant.llb256 prog in
      let committed = List.filter (fun pr -> pr.Check.p_committed) profiles in
      if List.length committed <> List.length execs then
        QCheck.Test.fail_reportf "%d committed attempts for %d transactions"
          (List.length committed) (List.length execs);
      List.iter2
        (fun pr (x : Amem.exec) ->
          if pr.Check.p_footprint <> x.Amem.x_peak + Analyze.abi_lines then
            QCheck.Test.fail_reportf
              "footprint %d <> static peak %d + %d ABI" pr.Check.p_footprint
              x.Amem.x_peak Analyze.abi_lines;
          if pr.Check.p_written <> List.length x.Amem.x_wr then
            QCheck.Test.fail_reportf "written %d <> static %d"
              pr.Check.p_written
              (List.length x.Amem.x_wr))
        committed execs;
      sfinal = rfinal)

(* On LLB-8 the two sides must agree on *whether* the program overflows:
   some abstract execution needs more than 8 lines (ABI included) exactly
   when the runtime recorded at least one capacity self-abort. *)
let capacity_agreement structure =
  QCheck.Test.make
    ~name:(structure_name structure ^ ": LLB-8 overflow prediction")
    ~count:25 program_arb
    (fun prog ->
      let execs, _ = static_execs structure prog in
      let profiles, _ = runtime_profiles structure Variant.llb8 prog in
      let static_over =
        List.exists
          (fun (x : Amem.exec) ->
            x.Amem.x_peak + Analyze.abi_lines > Variant.llb8.Variant.llb_entries)
          execs
      in
      let runtime_over =
        List.exists (fun pr -> pr.Check.p_capacity_abort) profiles
      in
      static_over = runtime_over)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      footprint_agreement List_s;
      footprint_agreement Rb_s;
      footprint_agreement Hash_s;
      capacity_agreement List_s;
      capacity_agreement Rb_s;
      capacity_agreement Hash_s;
    ]

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "analyze"
    [
      ( "geometry",
        [
          tc "l1 sets" `Quick test_l1_sets;
          tc "set_index range+period" `Quick test_set_index_range;
          tc "eviction agreement" `Quick test_set_index_eviction_agreement;
          tc "llb accessors" `Quick test_llb_accessors;
        ] );
      ( "amem",
        [
          tc "alloc padding" `Quick test_amem_alloc;
          tc "recording" `Quick test_amem_record;
          tc "release/reread" `Quick test_amem_release_reread;
          tc "divergence" `Quick test_amem_divergence;
          tc "rand replay" `Quick test_amem_rand_replay;
        ] );
      ( "verdicts",
        [
          tc "unsafe annotation fixture" `Quick test_fixture_unsafe_annotation;
          tc "over-capacity fixture" `Quick test_fixture_over_capacity;
          tc "restart-hazard fixture" `Quick test_fixture_restart_hazard;
          tc "reread-after-release fixture" `Quick
            test_fixture_reread_after_release;
          tc "stock workloads clean" `Quick test_stock_clean;
          tc "artifact JSON valid" `Quick test_artifact_json;
        ] );
      ("footprints-vs-runtime", qcheck_tests);
    ]
