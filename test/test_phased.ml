(* Tests for the two extensions beyond the paper's simulator:
   - the pure cache-based ASF implementation variant (Section 2.3's first
     variant, which the paper describes but did not simulate);
   - the PhasedTM-style software-phase fallback (Section 3.2's "more
     elaborate fallback"). *)

module Engine = Asf_engine.Engine
module Params = Asf_machine.Params
module Addr = Asf_mem.Addr
module Memsys = Asf_cache.Memsys
module Abort = Asf_core.Abort
module Variant = Asf_core.Variant
module Asf = Asf_core.Asf
module Stats = Asf_tm_rt.Stats
module Tm = Asf_tm_rt.Tm
module Intset = Asf_intset.Intset
module Prng = Asf_engine.Prng

(* ------------------------------------------------------------------ *)
(* Cache-based variant                                                  *)
(* ------------------------------------------------------------------ *)

let asf_setup variant =
  let e = Engine.create ~n_cores:2 () in
  let m = Memsys.create Params.barcelona e in
  let a = Asf.create m variant in
  for p = 0 to 255 do
    Memsys.map_page m p
  done;
  (e, m, a)

let test_cache_based_large_sets () =
  (* Both read AND write sets beyond any LLB-8/256 bound fit, as long as
     associativity is not exceeded: 300 consecutive lines map to distinct
     L1 sets. *)
  let e, m, a = asf_setup Variant.cache_based in
  Engine.spawn e ~core:0 (fun () ->
      Asf.speculate a ~core:0;
      for i = 0 to 299 do
        Asf.lock_store a ~core:0 (Addr.line_base i) i
      done;
      Asf.commit a ~core:0);
  Engine.run e;
  Alcotest.(check int) "committed" 1 (Asf.commits a);
  Alcotest.(check int) "all stores visible" 299 (Memsys.peek m (Addr.line_base 299))

let test_cache_based_write_displacement () =
  (* Three speculatively-written lines in one 2-way L1 set (lines 0, 512,
     1024 share set 0) must abort with Capacity — the associativity limit
     the paper gives as the cache-based variant's weakness. *)
  let e, _m, a = asf_setup Variant.cache_based in
  let result = ref None in
  Engine.spawn e ~core:0 (fun () ->
      try
        Asf.speculate a ~core:0;
        Asf.lock_store a ~core:0 (Addr.line_base 0) 1;
        Asf.lock_store a ~core:0 (Addr.line_base 512) 2;
        Asf.lock_store a ~core:0 (Addr.line_base 1024) 3;
        ignore (Asf.lock_load a ~core:0 (Addr.line_base 1));
        Asf.commit a ~core:0
      with Asf.Aborted r -> result := Some r);
  Engine.run e;
  (match !result with
  | Some Abort.Capacity -> ()
  | Some r -> Alcotest.failf "expected capacity, got %s" (Abort.to_string r)
  | None -> Alcotest.fail "expected displacement abort");
  (* The same pattern commits on LLB-256 (fully associative). *)
  let e2, _m2, a2 = asf_setup Variant.llb256 in
  Engine.spawn e2 ~core:0 (fun () ->
      Asf.speculate a2 ~core:0;
      Asf.lock_store a2 ~core:0 (Addr.line_base 0) 1;
      Asf.lock_store a2 ~core:0 (Addr.line_base 512) 2;
      Asf.lock_store a2 ~core:0 (Addr.line_base 1024) 3;
      Asf.commit a2 ~core:0);
  Engine.run e2;
  Alcotest.(check int) "LLB immune" 1 (Asf.commits a2)

let test_cache_based_rollback_correct () =
  (* Displacement-doomed stores must be fully rolled back. *)
  let e, m, a = asf_setup Variant.cache_based in
  Memsys.poke m (Addr.line_base 0) 100;
  Memsys.poke m (Addr.line_base 512) 200;
  Memsys.poke m (Addr.line_base 1024) 300;
  Engine.spawn e ~core:0 (fun () ->
      try
        Asf.speculate a ~core:0;
        Asf.lock_store a ~core:0 (Addr.line_base 0) 1;
        Asf.lock_store a ~core:0 (Addr.line_base 512) 2;
        Asf.lock_store a ~core:0 (Addr.line_base 1024) 3;
        ignore (Asf.lock_load a ~core:0 (Addr.line_base 2));
        Asf.commit a ~core:0
      with Asf.Aborted _ -> ());
  Engine.run e;
  Alcotest.(check int) "line 0 restored" 100 (Memsys.peek m (Addr.line_base 0));
  Alcotest.(check int) "line 512 restored" 200 (Memsys.peek m (Addr.line_base 512));
  Alcotest.(check int) "line 1024 restored" 300 (Memsys.peek m (Addr.line_base 1024))

let test_cache_based_tm_integration () =
  (* A full intset run on the cache-based variant stays correct. *)
  let cfg =
    { (Intset.default_cfg Intset.Rb_tree) with Intset.range = 512; txns_per_thread = 300 }
  in
  let tm = Tm.default_config (Tm.Asf_mode Variant.cache_based) ~n_cores:4 in
  let r = Intset.run tm ~threads:4 cfg in
  Alcotest.(check bool) "size consistent" true r.Intset.size_ok;
  Alcotest.(check int) "all txns" 1200 (Stats.commits r.Intset.stats)

(* ------------------------------------------------------------------ *)
(* Phased mode                                                          *)
(* ------------------------------------------------------------------ *)

let test_phased_small_txns_stay_hw () =
  let sys = Tm.create (Tm.default_config (Tm.Phased_mode Variant.llb256) ~n_cores:4) in
  let counter = Tm.setup_alloc sys 1 in
  List.init 4 (fun core ->
      Tm.spawn sys ~core (fun ctx ->
          for _ = 1 to 200 do
            Tm.atomic ctx (fun () -> Tm.store ctx counter (Tm.load ctx counter + 1))
          done))
  |> ignore;
  Tm.run sys;
  Alcotest.(check int) "correct" 800 (Tm.setup_peek sys counter);
  Alcotest.(check (option (pair int int))) "never left hardware" (Some (0, 0))
    (Tm.phase_switches sys)

let test_phased_capacity_switches_and_returns () =
  (* Big transactions (40 lines) overflow LLB-8: the phased system must
     switch to the software phase (not serial), run correctly, and switch
     back once the quantum expires. *)
  let tweak c = { c with Tm.phase_quantum = 50 } in
  let sys =
    Tm.create (tweak (Tm.default_config (Tm.Phased_mode Variant.llb8) ~n_cores:4))
  in
  let arr = Tm.setup_alloc sys (40 * Addr.words_per_line) in
  let ctxs =
    List.init 4 (fun core ->
        Tm.spawn sys ~core (fun ctx ->
            for _ = 1 to 60 do
              Tm.atomic ctx (fun () ->
                  for i = 0 to 39 do
                    let a = arr + (i * Addr.words_per_line) in
                    Tm.store ctx a (Tm.load ctx a + 1)
                  done)
            done))
  in
  Tm.run sys;
  for i = 0 to 39 do
    Alcotest.(check int) "all increments survive" 240
      (Tm.setup_peek sys (arr + (i * Addr.words_per_line)))
  done;
  let to_sw, to_hw = Option.get (Tm.phase_switches sys) in
  Alcotest.(check bool) "switched to software" true (to_sw >= 1);
  Alcotest.(check bool) "switched back" true (to_hw >= 1);
  let agg = Stats.create () in
  List.iter (fun c -> Stats.add (Tm.stats c) ~into:agg) ctxs;
  Alcotest.(check int) "no serial fallbacks" 0 (Stats.serial_commits agg)

let test_phased_mixed_sizes_correct () =
  (* Small and large transactions interleaved: the global phase flips
     both ways repeatedly; totals must stay exact. *)
  let tweak c = { c with Tm.phase_quantum = 30 } in
  let sys =
    Tm.create (tweak (Tm.default_config (Tm.Phased_mode Variant.llb8) ~n_cores:4))
  in
  let big = Tm.setup_alloc sys (20 * Addr.words_per_line) in
  let small = Tm.setup_alloc sys 1 in
  List.init 4 (fun core ->
      Tm.spawn sys ~core (fun ctx ->
          let rng = Prng.create (core + 5) in
          for _ = 1 to 100 do
            if Prng.chance rng 30 then
              Tm.atomic ctx (fun () ->
                  for i = 0 to 19 do
                    let a = big + (i * Addr.words_per_line) in
                    Tm.store ctx a (Tm.load ctx a + 1)
                  done)
            else
              Tm.atomic ctx (fun () -> Tm.store ctx small (Tm.load ctx small + 1))
          done))
  |> ignore;
  Tm.run sys;
  let bigs = Tm.setup_peek sys big in
  for i = 1 to 19 do
    Alcotest.(check int) "big lines consistent" bigs
      (Tm.setup_peek sys (big + (i * Addr.words_per_line)))
  done;
  Alcotest.(check int) "total ops" 400 (bigs + Tm.setup_peek sys small)

let test_phased_malloc_still_serial () =
  (* Syscall-class aborts (irrevocable actions) must still use the serial
     path even in phased mode. *)
  let sys = Tm.create (Tm.default_config (Tm.Phased_mode Variant.llb256) ~n_cores:2) in
  let x = Tm.setup_alloc sys 1 in
  let ctx0 =
    Tm.spawn sys ~core:0 (fun ctx ->
        Tm.atomic ctx (fun () ->
            Tm.store ctx x 1;
            Tm.irrevocable ctx;
            Tm.store ctx x 2))
  in
  Tm.run sys;
  Alcotest.(check int) "committed serially" 2 (Tm.setup_peek sys x);
  Alcotest.(check int) "one serial commit" 1 (Stats.serial_commits (Tm.stats ctx0))

let test_phased_beats_serial_fallback () =
  (* The point of PhasedTM: on a capacity-bound workload where the STM
     scales (an rb-tree, whose O(log n) read sets suit it — unlike the
     linked list, where STM validation is as miserable as serialisation),
     the software phase beats the serial fallback. *)
  let cfg =
    {
      (Intset.default_cfg Intset.Rb_tree) with
      Intset.range = 16384;
      txns_per_thread = 300;
    }
  in
  let run mode =
    let tm = Tm.default_config mode ~n_cores:8 in
    Intset.run tm ~threads:8 cfg
  in
  let serial = run (Tm.Asf_mode Variant.llb8) in
  let phased = run (Tm.Phased_mode Variant.llb8) in
  Alcotest.(check bool) "phased consistent" true phased.Intset.size_ok;
  Alcotest.(check bool)
    (Printf.sprintf "phased (%.2f) beats serial fallback (%.2f)"
       phased.Intset.throughput_tx_per_us serial.Intset.throughput_tx_per_us)
    true
    (phased.Intset.throughput_tx_per_us > serial.Intset.throughput_tx_per_us)

(* ------------------------------------------------------------------ *)
(* Scale and topology generality                                       *)
(* ------------------------------------------------------------------ *)

let test_sixteen_cores () =
  (* Nothing in the stack assumes 8 cores. *)
  let cfg =
    { (Intset.default_cfg Intset.Rb_tree) with Intset.range = 2048; txns_per_thread = 150 }
  in
  let tm = Tm.default_config (Tm.Asf_mode Variant.llb256) ~n_cores:16 in
  let r = Intset.run tm ~threads:16 cfg in
  Alcotest.(check bool) "16-core run consistent" true r.Intset.size_ok;
  Alcotest.(check int) "all txns" (16 * 150) (Stats.commits r.Intset.stats)

let test_dual_socket_correct () =
  (* The dual-socket topology changes timing, never results. *)
  let cfg =
    { (Intset.default_cfg Intset.Hash_set) with Intset.range = 1024; txns_per_thread = 200 }
  in
  let run params =
    let tm = { (Tm.default_config (Tm.Asf_mode Variant.llb256) ~n_cores:8) with Tm.params } in
    Intset.run tm ~threads:8 cfg
  in
  let single = run Params.barcelona in
  let dual = run Params.dual_socket in
  Alcotest.(check bool) "dual consistent" true dual.Intset.size_ok;
  Alcotest.(check bool)
    (Printf.sprintf "interconnect costs cycles (%d > %d)" dual.Intset.cycles
       single.Intset.cycles)
    true
    (dual.Intset.cycles > single.Intset.cycles)

let () =
  Alcotest.run "extensions"
    [
      ( "cache-based",
        [
          Alcotest.test_case "large sets fit" `Quick test_cache_based_large_sets;
          Alcotest.test_case "write displacement" `Quick test_cache_based_write_displacement;
          Alcotest.test_case "rollback" `Quick test_cache_based_rollback_correct;
          Alcotest.test_case "tm integration" `Quick test_cache_based_tm_integration;
        ] );
      ( "generality",
        [
          Alcotest.test_case "16 cores" `Quick test_sixteen_cores;
          Alcotest.test_case "dual socket" `Quick test_dual_socket_correct;
        ] );
      ( "phased",
        [
          Alcotest.test_case "stays hw" `Quick test_phased_small_txns_stay_hw;
          Alcotest.test_case "switch and return" `Quick test_phased_capacity_switches_and_returns;
          Alcotest.test_case "mixed sizes" `Quick test_phased_mixed_sizes_correct;
          Alcotest.test_case "irrevocable serial" `Quick test_phased_malloc_still_serial;
          Alcotest.test_case "beats serial" `Slow test_phased_beats_serial_fallback;
        ] );
    ]
