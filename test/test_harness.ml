(* Tests for the harness (report rendering, CSV, calibration, experiment
   registry) and for the lock-elision runtime extension. *)

module Report = Asf_harness.Report
module Calibration = Asf_harness.Calibration
module Experiments = Asf_harness.Experiments
module Tm = Asf_tm_rt.Tm
module Elision = Asf_tm_rt.Elision
module Stats = Asf_tm_rt.Stats
module Variant = Asf_core.Variant
module Prng = Asf_engine.Prng

(* ------------------------------------------------------------------ *)
(* Report                                                              *)
(* ------------------------------------------------------------------ *)

let test_report_render () =
  let r =
    Report.make ~id:"t" ~title:"demo" ~notes:[ "a note" ]
      [ "col"; "value" ]
      [ [ "x"; "1" ]; [ "longer"; "2" ] ]
  in
  let s = Format.asprintf "%a" Report.pp r in
  Alcotest.(check bool) "title present" true
    (String.length s > 0
    && Option.is_some (String.index_opt s '='));
  Alcotest.(check bool) "note present" true
    (String.length s >= 6 && String.sub s (String.length s - 7) 6 = "a note")

let test_report_ragged_rejected () =
  Alcotest.check_raises "ragged row"
    (Invalid_argument "Report.make: ragged row in bad") (fun () ->
      ignore (Report.make ~id:"bad" ~title:"t" [ "a"; "b" ] [ [ "only one" ] ]))

let test_report_csv () =
  let r =
    Report.make ~id:"c" ~title:"t" [ "a"; "b" ]
      [ [ "1"; "has,comma" ]; [ "2"; "has\"quote" ] ]
  in
  let csv = Report.to_csv r in
  Alcotest.(check string) "csv escaping"
    "a,b\n1,\"has,comma\"\n2,\"has\"\"quote\"\n" csv

let test_report_save_csv () =
  let dir = Filename.temp_file "asf" "" in
  Sys.remove dir;
  let r = Report.make ~id:"saved" ~title:"t" [ "x" ] [ [ "1" ] ] in
  let path = Report.save_csv ~dir r in
  Alcotest.(check bool) "file written" true (Sys.file_exists path);
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Alcotest.(check string) "header" "x" line

let test_report_parse_csv () =
  let r =
    Report.make ~id:"c" ~title:"t" [ "a"; "b" ]
      [ [ "1"; "has,comma" ]; [ "2"; "has\"quote" ]; [ "3"; "two\nlines" ] ]
  in
  Alcotest.(check bool) "round trip" true
    (Report.parse_csv (Report.to_csv r) = Ok (r.Report.columns :: r.Report.rows))

let test_report_parse_csv_malformed () =
  let is_err = function Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "stray quote" true (is_err (Report.parse_csv "a\"b,c\n"));
  Alcotest.(check bool) "unterminated quote" true
    (is_err (Report.parse_csv "\"never closed"));
  Alcotest.(check bool) "text after closing quote" true
    (is_err (Report.parse_csv "\"x\"y,z\n"))

let prop_csv_round_trip =
  (* parse_csv is the exact inverse of to_csv for any table, including
     cells full of separators, quotes and newlines. *)
  let cell_gen =
    QCheck.Gen.(
      string_size ~gen:(oneofl [ 'a'; 'z'; ','; '"'; '\n'; ' ' ]) (int_bound 8))
  in
  let table_gen =
    QCheck.Gen.(
      int_range 1 4 >>= fun n_cols ->
      let row = list_size (return n_cols) cell_gen in
      pair row (list_size (int_bound 5) row))
  in
  let print (cols, rows) =
    String.concat "|" cols ^ " // "
    ^ String.concat " ; " (List.map (String.concat "|") rows)
  in
  QCheck.Test.make ~name:"parse_csv inverts to_csv" ~count:500
    (QCheck.make ~print table_gen)
    (fun (columns, rows) ->
      let t = Report.make ~id:"prop" ~title:"t" columns rows in
      Report.parse_csv (Report.to_csv t) = Ok (columns :: rows))

let test_report_csv_file_round_trip () =
  (* Through the filesystem: what save_csv writes, parse_csv reads back. *)
  let dir = Filename.temp_file "asf" "" in
  Sys.remove dir;
  let r =
    Report.make ~id:"rt" ~title:"t"
      [ "plain"; "gnarly" ]
      [ [ "1"; "a,b" ]; [ "2"; "say \"hi\"" ]; [ "3"; "one\ntwo" ] ]
  in
  let path = Report.save_csv ~dir r in
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Alcotest.(check bool) "file parses back to the table" true
    (Report.parse_csv s = Ok (r.Report.columns :: r.Report.rows))

(* ------------------------------------------------------------------ *)
(* Calibration / experiments                                           *)
(* ------------------------------------------------------------------ *)

let test_calibration_entries () =
  let entries = Calibration.measure ~quick:true ~seed:1 in
  Alcotest.(check int) "8 stamp apps" 8 (List.length entries);
  List.iter
    (fun e ->
      Alcotest.(check bool)
        (e.Calibration.app ^ " cycles positive")
        true
        (e.Calibration.detailed_cycles > 0 && e.Calibration.reference_cycles > 0);
      (* The detailed model has larger latencies, so it should not be
         dramatically faster than the reference. *)
      Alcotest.(check bool)
        (e.Calibration.app ^ " deviation sane")
        true
        (e.Calibration.deviation_pct > -50.0 && e.Calibration.deviation_pct < 200.0))
    entries

let test_registry_ids_unique () =
  let ids = Experiments.ids () in
  let sorted = List.sort_uniq compare ids in
  Alcotest.(check int) "no duplicate ids" (List.length ids) (List.length sorted);
  Alcotest.(check bool) "fig4 present" true (Experiments.find "fig4" <> None);
  Alcotest.(check bool) "unknown absent" true (Experiments.find "nope" = None)

let test_quick_experiments_well_formed () =
  (* The cheap experiments produce non-empty tables with consistent row
     widths (Report.make already enforces this; we assert non-emptiness
     and run them end to end). *)
  List.iter
    (fun id ->
      match Experiments.find id with
      | None -> Alcotest.failf "missing %s" id
      | Some e ->
          let reports = e.Experiments.run ~quick:true ~seed:2 in
          Alcotest.(check bool) (id ^ " has reports") true (reports <> []);
          List.iter
            (fun r ->
              Alcotest.(check bool)
                (id ^ " has rows")
                true
                (r.Report.rows <> []))
            reports)
    [ "fig3"; "fig9"; "tab1"; "abl-wins"; "abl-annot"; "abl-backoff" ]

(* ------------------------------------------------------------------ *)
(* Lock elision                                                        *)
(* ------------------------------------------------------------------ *)

let elision_setup () =
  let sys = Tm.create (Tm.default_config (Tm.Asf_mode Variant.llb256) ~n_cores:4) in
  let lock = Elision.make sys in
  let counter = Tm.setup_alloc sys 1 in
  Tm.setup_poke sys counter 0;
  (sys, lock, counter)

let test_elision_correct () =
  let sys, lock, counter = elision_setup () in
  let per = 200 in
  let ctxs =
    List.init 4 (fun core ->
        Tm.spawn sys ~core (fun ctx ->
            for _ = 1 to per do
              Elision.with_lock ctx lock (fun () ->
                  Tm.store ctx counter (Tm.load ctx counter + 1))
            done))
  in
  Tm.run sys;
  Alcotest.(check int) "no lost updates" (4 * per) (Tm.setup_peek sys counter);
  Alcotest.(check bool) "lock free at end" false (Elision.held sys lock);
  (* Elided sections never actually took the lock: every commit that is
     not serial ran with the lock word untouched. *)
  let agg = Stats.create () in
  List.iter (fun c -> Stats.add (Tm.stats c) ~into:agg) ctxs;
  Alcotest.(check bool) "mostly hardware" true
    (Stats.serial_commits agg * 10 < Stats.commits agg)

let test_elision_with_legacy_lockers () =
  let sys, lock, counter = elision_setup () in
  let per = 150 in
  List.iteri
    (fun core f -> ignore (Tm.spawn sys ~core f))
    [
      (fun ctx ->
        (* Legacy thread: real acquisitions. *)
        for _ = 1 to per do
          Elision.acquire ctx lock;
          Tm.store ctx counter (Tm.load ctx counter + 1);
          Elision.release ctx lock
        done);
      (fun ctx ->
        for _ = 1 to per do
          Elision.with_lock ctx lock (fun () ->
              Tm.store ctx counter (Tm.load ctx counter + 1))
        done);
      (fun ctx ->
        for _ = 1 to per do
          Elision.with_lock ctx lock (fun () ->
              Tm.store ctx counter (Tm.load ctx counter + 1))
        done);
    ];
  Tm.run sys;
  Alcotest.(check int) "mixed modes preserve atomicity" (3 * per)
    (Tm.setup_peek sys counter)

let test_elision_parallelism () =
  (* Disjoint critical sections under one lock: once the section is long
     enough that serialization dominates the TM begin overhead, elision
     must beat real locking (for a 2-access section the spinlock's cheap
     hand-off actually wins — elision is not free). *)
  let section ctx slot =
    Tm.work ctx 300;
    Tm.store ctx slot (Tm.load ctx slot + 1)
  in
  let run elided =
    let sys = Tm.create (Tm.default_config (Tm.Asf_mode Variant.llb256) ~n_cores:4) in
    let lock = Elision.make sys in
    let slots = Array.init 4 (fun _ -> Tm.setup_alloc sys 1) in
    List.init 4 (fun core ->
        Tm.spawn sys ~core (fun ctx ->
            for _ = 1 to 200 do
              if elided then Elision.with_lock ctx lock (fun () -> section ctx slots.(core))
              else begin
                Elision.acquire ctx lock;
                section ctx slots.(core);
                Elision.release ctx lock
              end
            done))
    |> ignore;
    Tm.run sys;
    Tm.makespan sys
  in
  let locked = run false and elided = run true in
  Alcotest.(check bool)
    (Printf.sprintf "elided (%d) < locked (%d)" elided locked)
    true (elided < locked)

let test_elision_stm_mode () =
  (* Elision also works over the STM baseline (the lock word is just
     transactional state). *)
  let sys = Tm.create (Tm.default_config Tm.Stm_mode ~n_cores:4) in
  let lock = Elision.make sys in
  let counter = Tm.setup_alloc sys 1 in
  List.init 4 (fun core ->
      Tm.spawn sys ~core (fun ctx ->
          for _ = 1 to 100 do
            Elision.with_lock ctx lock (fun () ->
                Tm.store ctx counter (Tm.load ctx counter + 1))
          done))
  |> ignore;
  Tm.run sys;
  Alcotest.(check int) "stm-mode elision" 400 (Tm.setup_peek sys counter)

(* ------------------------------------------------------------------ *)
(* Profile                                                             *)
(* ------------------------------------------------------------------ *)

let test_profile_counters () =
  let sys = Tm.create (Tm.default_config (Tm.Asf_mode Variant.llb256) ~n_cores:2) in
  let a = Tm.setup_alloc sys 1 in
  let _ =
    Tm.spawn sys ~core:0 (fun ctx ->
        for _ = 1 to 50 do
          Tm.atomic ctx (fun () -> Tm.store ctx a (Tm.load ctx a + 1))
        done)
  in
  Tm.run sys;
  let p = Asf_harness.Profile.of_system sys in
  Alcotest.(check bool) "loads counted" true (p.Asf_harness.Profile.loads > 50);
  Alcotest.(check bool) "hot loop has high L1 hit rate" true
    (p.Asf_harness.Profile.l1_hit_rate > 0.9);
  Alcotest.(check bool) "makespan positive" true
    (p.Asf_harness.Profile.makespan_cycles > 0);
  Alcotest.(check int) "eight lines" 8
    (List.length (Asf_harness.Profile.lines p))

let () =
  Alcotest.run "harness"
    [
      ( "report",
        [
          Alcotest.test_case "render" `Quick test_report_render;
          Alcotest.test_case "ragged" `Quick test_report_ragged_rejected;
          Alcotest.test_case "csv" `Quick test_report_csv;
          Alcotest.test_case "save csv" `Quick test_report_save_csv;
          Alcotest.test_case "parse csv" `Quick test_report_parse_csv;
          Alcotest.test_case "parse csv malformed" `Quick
            test_report_parse_csv_malformed;
          QCheck_alcotest.to_alcotest prop_csv_round_trip;
          Alcotest.test_case "csv file round trip" `Quick
            test_report_csv_file_round_trip;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "calibration" `Quick test_calibration_entries;
          Alcotest.test_case "registry" `Quick test_registry_ids_unique;
          Alcotest.test_case "quick runs" `Slow test_quick_experiments_well_formed;
        ] );
      ( "profile", [ Alcotest.test_case "counters" `Quick test_profile_counters ] );
      ( "elision",
        [
          Alcotest.test_case "correctness" `Quick test_elision_correct;
          Alcotest.test_case "legacy mix" `Quick test_elision_with_legacy_lockers;
          Alcotest.test_case "parallelism" `Quick test_elision_parallelism;
          Alcotest.test_case "stm mode" `Quick test_elision_stm_mode;
        ] );
    ]
