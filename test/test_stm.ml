(* Tests for the TinySTM write-through baseline: isolation, undo,
   validation/extension, contention suicide, and randomized serializability
   checks. *)

module Engine = Asf_engine.Engine
module Prng = Asf_engine.Prng
module Params = Asf_machine.Params
module Addr = Asf_mem.Addr
module Alloc = Asf_mem.Alloc
module Memsys = Asf_cache.Memsys
module Stm = Asf_stm.Tinystm

let setup ?(n_cores = 2) () =
  let e = Engine.create ~n_cores () in
  let m = Memsys.create Params.barcelona e in
  let alloc = Alloc.create () in
  let stm = Stm.create m alloc in
  (e, m, alloc, stm)

let run_threads e fns =
  List.iteri (fun core f -> Engine.spawn e ~core f) fns;
  Engine.run e

(* Retry loop with randomized exponential backoff, like the runtime's.
   The jitter matters: deterministic backoff can livelock two suiciding
   transactions in perfect lockstep. *)
let backoff_rng = Prng.create 0xb0ff

let atomic tx body =
  let rec go delay =
    Stm.start tx;
    match body tx with
    | v -> (
        match Stm.commit tx with
        | () -> v
        | exception Stm.Stm_abort _ -> pause delay)
    | exception Stm.Stm_abort _ -> pause delay
  and pause delay =
    Engine.elapse (delay + Prng.int backoff_rng delay);
    go (min (2 * delay) 5000)
  in
  go 100

let test_commit_visible () =
  let e, m, _, stm = setup () in
  Memsys.poke m 1000 5;
  run_threads e
    [
      (fun () ->
        let tx = Stm.make_tx stm ~core:0 in
        atomic tx (fun tx ->
            let v = Stm.load tx 1000 in
            Stm.store tx 1000 (v + 1)));
    ];
  Alcotest.(check int) "incremented" 6 (Memsys.peek m 1000);
  Alcotest.(check int) "one commit" 1 (Stm.commits stm)

let test_abort_undoes_writes () =
  let e, m, _, stm = setup () in
  Memsys.poke m 1000 5;
  Memsys.poke m 1064 7;
  run_threads e
    [
      (fun () ->
        let tx = Stm.make_tx stm ~core:0 in
        Stm.start tx;
        Stm.store tx 1000 50;
        Stm.store tx 1064 70;
        (try Stm.abort tx with Stm.Stm_abort _ -> ()));
    ];
  Alcotest.(check int) "first undone" 5 (Memsys.peek m 1000);
  Alcotest.(check int) "second undone" 7 (Memsys.peek m 1064);
  Alcotest.(check int) "abort counted" 1 (Stm.aborts stm)

let test_write_write_conflict_suicides () =
  let e, m, _, stm = setup () in
  Memsys.poke m 2000 0;
  let second_aborted = ref false in
  run_threads e
    [
      (fun () ->
        let tx = Stm.make_tx stm ~core:0 in
        Stm.start tx;
        Stm.store tx 2000 1;
        Engine.elapse 3000 (* hold the orec while core 1 tries *);
        Stm.commit tx);
      (fun () ->
        Engine.elapse 500;
        let tx = Stm.make_tx stm ~core:1 in
        Stm.start tx;
        (try
           Stm.store tx 2000 2;
           Stm.commit tx
         with Stm.Stm_abort _ -> second_aborted := true));
    ];
  Alcotest.(check bool) "encounter-time conflict aborts" true !second_aborted;
  Alcotest.(check int) "winner's value" 1 (Memsys.peek m 2000)

let test_load_locked_aborts () =
  let e, m, _, stm = setup () in
  Memsys.poke m 2100 9;
  let reader_aborted = ref false in
  run_threads e
    [
      (fun () ->
        let tx = Stm.make_tx stm ~core:0 in
        Stm.start tx;
        Stm.store tx 2100 10;
        Engine.elapse 3000;
        Stm.commit tx);
      (fun () ->
        Engine.elapse 500;
        let tx = Stm.make_tx stm ~core:1 in
        Stm.start tx;
        (try ignore (Stm.load tx 2100)
         with Stm.Stm_abort _ -> reader_aborted := true));
    ];
  Alcotest.(check bool) "reader suicides on locked orec" true !reader_aborted

let test_snapshot_extension () =
  (* Core 1 starts, core 0 commits an unrelated update bumping the clock,
     then core 1 reads a line whose version is newer than its snapshot on
     a DIFFERENT orec: reading the updated line forces extension; with no
     conflicting reads logged, the extension succeeds. *)
  let e, m, _, stm = setup () in
  Memsys.poke m 3000 1;
  Memsys.poke m 4000 2;
  let got = ref 0 in
  run_threads e
    [
      (fun () ->
        let tx = Stm.make_tx stm ~core:0 in
        Engine.elapse 200;
        atomic tx (fun tx ->
            let v = Stm.load tx 3000 in
            Stm.store tx 3000 (v + 10)));
      (fun () ->
        let tx = Stm.make_tx stm ~core:1 in
        Stm.start tx;
        Engine.elapse 5000 (* let core 0 commit *);
        got := Stm.load tx 3000;
        Stm.commit tx);
    ];
  Alcotest.(check int) "saw committed value" 11 !got;
  Alcotest.(check bool) "extension happened" true (Stm.extensions stm >= 1)

let test_inconsistent_snapshot_aborts () =
  (* Core 1 reads X, core 0 updates X and Y, core 1 then reads Y: the
     extension validation must fail (X changed) and abort core 1. *)
  let e, m, _, stm = setup () in
  Memsys.poke m 3000 1;
  Memsys.poke m 5000 2;
  let aborted = ref false in
  run_threads e
    [
      (fun () ->
        Engine.elapse 1000;
        let tx = Stm.make_tx stm ~core:0 in
        atomic tx (fun tx ->
            Stm.store tx 3000 100;
            Stm.store tx 5000 200));
      (fun () ->
        let tx = Stm.make_tx stm ~core:1 in
        Stm.start tx;
        let x = Stm.load tx 3000 in
        Engine.elapse 8000 (* core 0 commits both updates *);
        (try
           let y = Stm.load tx 5000 in
           (* If we get here the snapshot must be consistent. *)
           Alcotest.(check (pair int int)) "consistent" (1, 2) (x, y);
           Stm.commit tx
         with Stm.Stm_abort _ -> aborted := true));
    ];
  Alcotest.(check bool) "stale snapshot aborted" true !aborted

let test_read_only_commit_cheap () =
  let e, m, _, stm = setup () in
  Memsys.poke m 6000 1;
  run_threads e
    [
      (fun () ->
        let tx = Stm.make_tx stm ~core:0 in
        Stm.start tx;
        ignore (Stm.load tx 6000);
        Stm.commit tx);
    ];
  Alcotest.(check int) "committed" 1 (Stm.commits stm)

let test_concurrent_counter () =
  let n_cores = 4 and per_core = 200 in
  let e, m, _, stm = setup ~n_cores () in
  Memsys.poke m 7000 0;
  run_threads e
    (List.init n_cores (fun core () ->
         let tx = Stm.make_tx stm ~core in
         for _ = 1 to per_core do
           atomic tx (fun tx ->
               let v = Stm.load tx 7000 in
               Stm.store tx 7000 (v + 1))
         done));
  Alcotest.(check int) "no lost increments" (n_cores * per_core)
    (Memsys.peek m 7000)

let test_random_transfers_conserve_sum () =
  let n_cores = 4 and n_accounts = 10 and transfers = 120 in
  let e, m, _, stm = setup ~n_cores () in
  let account i = 8000 + (i * Addr.words_per_line) in
  for i = 0 to n_accounts - 1 do
    Memsys.poke m (account i) 500
  done;
  run_threads e
    (List.init n_cores (fun core () ->
         let tx = Stm.make_tx stm ~core in
         let rng = Prng.create (7 * (core + 1)) in
         for _ = 1 to transfers do
           let src = Prng.int rng n_accounts and dst = Prng.int rng n_accounts in
           let amt = Prng.int rng 20 in
           atomic tx (fun tx ->
               let s = Stm.load tx (account src) in
               let d = Stm.load tx (account dst) in
               if src <> dst then begin
                 Stm.store tx (account src) (s - amt);
                 Stm.store tx (account dst) (d + amt)
               end)
         done));
  let total = ref 0 in
  for i = 0 to n_accounts - 1 do
    total := !total + Memsys.peek m (account i)
  done;
  Alcotest.(check int) "sum conserved" (n_accounts * 500) !total

let test_stm_slower_than_raw () =
  (* The whole point of the paper: instrumented STM accesses cost several
     times a raw access. Sanity-check the overhead exists. *)
  let e, m, _, stm = setup ~n_cores:2 () in
  for i = 0 to 63 do
    Memsys.poke m (9000 + i) i
  done;
  let raw_time = ref 0 and stm_time = ref 0 in
  run_threads e
    [
      (fun () ->
        let t0 = Engine.core_time e 0 in
        for i = 0 to 63 do
          ignore (Memsys.load m ~core:0 (9000 + i))
        done;
        raw_time := Engine.core_time e 0 - t0);
      (fun () ->
        let tx = Stm.make_tx stm ~core:1 in
        let t0 = Engine.core_time e 1 in
        Stm.start tx;
        for i = 0 to 63 do
          ignore (Stm.load tx (9000 + i))
        done;
        Stm.commit tx;
        stm_time := Engine.core_time e 1 - t0);
    ];
  Alcotest.(check bool)
    (Printf.sprintf "stm (%d) > 2x raw (%d)" !stm_time !raw_time)
    true
    (!stm_time > 2 * !raw_time)

(* ------------------------------------------------------------------ *)
(* Write-back strategy                                                 *)
(* ------------------------------------------------------------------ *)

let setup_wb ?(n_cores = 2) () =
  let e = Engine.create ~n_cores () in
  let m = Memsys.create Params.barcelona e in
  let alloc = Alloc.create () in
  let stm = Stm.create ~strategy:Stm.Write_back m alloc in
  (e, m, alloc, stm)

let test_wb_buffering_invisible_until_commit () =
  let e, m, _, stm = setup_wb () in
  Memsys.poke m 1000 5;
  run_threads e
    [
      (fun () ->
        let tx = Stm.make_tx stm ~core:0 in
        Stm.start tx;
        Stm.store tx 1000 9;
        (* Write-back: memory still holds the old value mid-transaction,
           but our own loads see the buffered one. *)
        Alcotest.(check int) "memory unchanged" 5 (Memsys.peek m 1000);
        Alcotest.(check int) "own load sees buffer" 9 (Stm.load tx 1000);
        Stm.commit tx);
    ];
  Alcotest.(check int) "published at commit" 9 (Memsys.peek m 1000)

let test_wb_abort_cheap_and_clean () =
  let e, m, _, stm = setup_wb () in
  Memsys.poke m 1000 5;
  run_threads e
    [
      (fun () ->
        let tx = Stm.make_tx stm ~core:0 in
        Stm.start tx;
        Stm.store tx 1000 9;
        (try Stm.abort tx with Stm.Stm_abort _ -> ()));
    ];
  Alcotest.(check int) "nothing to undo" 5 (Memsys.peek m 1000)

let test_wb_matches_wt_results () =
  (* Same concurrent counter workload under both strategies: identical
     final value. *)
  let run strategy =
    let e = Engine.create ~n_cores:4 () in
    let m = Memsys.create Params.barcelona e in
    let alloc = Alloc.create () in
    let stm = Stm.create ~strategy m alloc in
    Memsys.poke m 7000 0;
    run_threads e
      (List.init 4 (fun core () ->
           let tx = Stm.make_tx stm ~core in
           for _ = 1 to 150 do
             atomic tx (fun tx ->
                 let v = Stm.load tx 7000 in
                 Stm.store tx 7000 (v + 1))
           done));
    Memsys.peek m 7000
  in
  Alcotest.(check int) "write-through" 600 (run Stm.Write_through);
  Alcotest.(check int) "write-back" 600 (run Stm.Write_back)

let () =
  Alcotest.run "stm"
    [
      ( "basic",
        [
          Alcotest.test_case "commit visible" `Quick test_commit_visible;
          Alcotest.test_case "abort undoes" `Quick test_abort_undoes_writes;
          Alcotest.test_case "read-only commit" `Quick test_read_only_commit_cheap;
        ] );
      ( "conflict",
        [
          Alcotest.test_case "write/write" `Quick test_write_write_conflict_suicides;
          Alcotest.test_case "load locked" `Quick test_load_locked_aborts;
          Alcotest.test_case "extension" `Quick test_snapshot_extension;
          Alcotest.test_case "stale snapshot" `Quick test_inconsistent_snapshot_aborts;
        ] );
      ( "property",
        [
          Alcotest.test_case "counter" `Quick test_concurrent_counter;
          Alcotest.test_case "transfers" `Quick test_random_transfers_conserve_sum;
          Alcotest.test_case "overhead exists" `Quick test_stm_slower_than_raw;
        ] );
      ( "write-back",
        [
          Alcotest.test_case "buffered until commit" `Quick test_wb_buffering_invisible_until_commit;
          Alcotest.test_case "abort clean" `Quick test_wb_abort_cheap_and_clean;
          Alcotest.test_case "matches write-through" `Quick test_wb_matches_wt_results;
        ] );
    ]
