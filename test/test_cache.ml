(* Tests for the cache directory model, TLB, hierarchy coherence, and the
   Memsys timed facade. *)

module Engine = Asf_engine.Engine
module Params = Asf_machine.Params
module Addr = Asf_mem.Addr
module Cache = Asf_cache.Cache
module Tlb = Asf_cache.Tlb
module Hierarchy = Asf_cache.Hierarchy
module Sharers = Asf_cache.Sharers
module Memsys = Asf_cache.Memsys

(* ------------------------------------------------------------------ *)
(* Cache                                                               *)
(* ------------------------------------------------------------------ *)

let test_cache_hit_miss () =
  let c = Cache.create ~sets:4 ~assoc:2 in
  let hit, ev = Cache.touch c 0 in
  Alcotest.(check bool) "first access misses" false hit;
  Alcotest.(check (option int)) "no eviction on cold fill" None ev;
  let hit, _ = Cache.touch c 0 in
  Alcotest.(check bool) "second access hits" true hit

let test_cache_lru_eviction () =
  let c = Cache.create ~sets:1 ~assoc:2 in
  ignore (Cache.touch c 10);
  ignore (Cache.touch c 20);
  ignore (Cache.touch c 10) (* 20 is now LRU *);
  let _, ev = Cache.touch c 30 in
  Alcotest.(check (option int)) "LRU way evicted" (Some 20) ev;
  Alcotest.(check bool) "10 survives" true (Cache.mem c 10);
  Alcotest.(check bool) "20 gone" false (Cache.mem c 20)

let test_cache_set_isolation () =
  let c = Cache.create ~sets:4 ~assoc:1 in
  (* Keys 0 and 4 share set 0; key 1 lives in set 1. *)
  ignore (Cache.touch c 0);
  ignore (Cache.touch c 1);
  let _, ev = Cache.touch c 4 in
  Alcotest.(check (option int)) "conflict in set 0" (Some 0) ev;
  Alcotest.(check bool) "set 1 untouched" true (Cache.mem c 1)

let test_cache_invalidate () =
  let c = Cache.create ~sets:2 ~assoc:2 in
  ignore (Cache.touch c 5);
  Alcotest.(check bool) "present removed" true (Cache.invalidate c 5);
  Alcotest.(check bool) "absent not removed" false (Cache.invalidate c 5)

let prop_cache_vs_reference_lru =
  (* Compare the cache against a straightforward per-set LRU list model. *)
  QCheck.Test.make ~name:"cache matches reference LRU model" ~count:100
    QCheck.(list (int_range 0 63))
    (fun keys ->
      let sets = 4 and assoc = 3 in
      let c = Cache.create ~sets ~assoc in
      let model = Array.make sets [] in
      List.for_all
        (fun k ->
          let s = k land (sets - 1) in
          let hit_model = List.mem k model.(s) in
          let hit, _ = Cache.touch c k in
          let l = k :: List.filter (fun x -> x <> k) model.(s) in
          model.(s) <- (if List.length l > assoc then List.filteri (fun i _ -> i < assoc) l else l);
          hit = hit_model)
        keys)

(* A straightforward per-set LRU list model, shared by the reference
   checks below: most-recent first, [touch] returns the displaced key. *)
module Lru_model = struct
  type t = { sets : int; assoc : int; ways : int list array }

  let create ~sets ~assoc = { sets; assoc; ways = Array.make sets [] }

  let idx t k = k land (t.sets - 1)

  let mem t k = List.mem k t.ways.(idx t k)

  let touch t k =
    let s = idx t k in
    let l = k :: List.filter (fun x -> x <> k) t.ways.(s) in
    let evicted = if List.length l > t.assoc then Some (List.nth l t.assoc) else None in
    t.ways.(s) <- List.filteri (fun i _ -> i < t.assoc) l;
    evicted

  let invalidate t k =
    let s = idx t k in
    let present = List.mem k t.ways.(s) in
    t.ways.(s) <- List.filter (fun x -> x <> k) t.ways.(s);
    present
end

let prop_touch_evict_vs_model =
  (* The allocation-free hot-path entry points ([touch_evict],
     [invalidate] over [find_way_idx]) against the list model: hits,
     evicted tags and membership must all agree. *)
  QCheck.Test.make ~name:"touch_evict/invalidate match reference LRU model"
    ~count:200
    QCheck.(list (pair bool (int_range 0 63)))
    (fun ops ->
      let c = Cache.create ~sets:4 ~assoc:3 in
      let m = Lru_model.create ~sets:4 ~assoc:3 in
      List.for_all
        (fun (inval, k) ->
          if inval then Cache.invalidate c k = Lru_model.invalidate m k
          else begin
            let hit_model = Lru_model.mem m k in
            let hit = Cache.mem c k in
            let ev = Cache.touch_evict c k in
            let ev_model = Lru_model.touch m k in
            hit = hit_model
            && (match ev_model with Some v -> ev = v | None -> ev = -1)
            && Cache.mem c k
          end)
        ops)

(* ------------------------------------------------------------------ *)
(* TLB                                                                 *)
(* ------------------------------------------------------------------ *)

let test_tlb_fault_then_hit () =
  let p = Params.barcelona in
  let t = Tlb.create p ~n_cores:1 in
  (match Tlb.translate t ~core:0 1000 ~speculative:false with
  | Tlb.Fault page -> Alcotest.(check int) "faults on unmapped" (Addr.page_of 1000) page
  | _ -> Alcotest.fail "expected fault");
  Tlb.map_page t (Addr.page_of 1000);
  (match Tlb.translate t ~core:0 1000 ~speculative:false with
  | Tlb.Translated extra ->
      Alcotest.(check int) "page walk cost" p.page_walk_latency extra
  | _ -> Alcotest.fail "expected walk");
  match Tlb.translate t ~core:0 1001 ~speculative:false with
  | Tlb.Translated extra -> Alcotest.(check int) "L1 TLB hit free" 0 extra
  | _ -> Alcotest.fail "expected hit"

let test_tlb_rock_ablation () =
  let p = Params.barcelona in
  let t = Tlb.create p ~n_cores:1 in
  Tlb.set_abort_on_tlb_miss t true;
  Tlb.map_page t 0;
  (* Miss, speculative: Rock-style abort. *)
  (match Tlb.translate t ~core:0 5 ~speculative:true with
  | Tlb.Tlb_miss_abort _ -> ()
  | _ -> Alcotest.fail "expected Rock-style abort");
  (* Non-speculative accesses are unaffected. *)
  match Tlb.translate t ~core:0 5 ~speculative:false with
  | Tlb.Translated _ -> ()
  | _ -> Alcotest.fail "expected translation"

let test_tlb_map_range () =
  let t = Tlb.create Params.barcelona ~n_cores:1 in
  Tlb.map_range t 500 100 (* crosses the page boundary at word 512 *);
  Alcotest.(check bool) "first page" true (Tlb.page_mapped t 0);
  Alcotest.(check bool) "second page" true (Tlb.page_mapped t 1);
  Alcotest.(check int) "exactly two" 2 (Tlb.mapped_pages t)

let prop_tlb_vs_reference_model =
  (* The flat page-table bitmap against a hashtable page set (the old
     representation) with LRU-model TLB caches: translate outcomes,
     page_mapped and mapped_pages must agree on random op sequences,
     including pages past the initial bitmap capacity. *)
  QCheck.Test.make ~name:"tlb bitmap matches hashtable reference model"
    ~count:200
    QCheck.(list (pair (int_range 0 3) (int_range 0 50)))
    (fun ops ->
      let p = Params.barcelona in
      let t = Tlb.create p ~n_cores:1 in
      let pages : (int, unit) Hashtbl.t = Hashtbl.create 64 in
      let l1m = Lru_model.create ~sets:1 ~assoc:p.tlb_l1_entries in
      let l2m =
        Lru_model.create ~sets:(p.tlb_l2_entries / p.tlb_l2_assoc)
          ~assoc:p.tlb_l2_assoc
      in
      let ref_translate page : Tlb.outcome =
        if Lru_model.mem l1m page then begin
          ignore (Lru_model.touch l1m page);
          Tlb.Translated 0
        end
        else if Lru_model.mem l2m page then begin
          ignore (Lru_model.touch l2m page);
          ignore (Lru_model.touch l1m page);
          Tlb.Translated p.tlb_l2_latency
        end
        else if not (Hashtbl.mem pages page) then Tlb.Fault page
        else begin
          ignore (Lru_model.touch l2m page);
          ignore (Lru_model.touch l1m page);
          Tlb.Translated p.page_walk_latency
        end
      in
      List.for_all
        (fun (tag, page) ->
          (* Pages 45-50 are remapped far past the initial 4096-slot
             bitmap so growth is exercised. *)
          let page = if page >= 45 then 5000 + ((page - 45) * 1024) else page in
          match tag with
          | 0 ->
              Tlb.map_page t page;
              Hashtbl.replace pages page ();
              true
          | 1 ->
              Tlb.unmap_page t page;
              Hashtbl.remove pages page;
              ignore (Lru_model.invalidate l1m page);
              ignore (Lru_model.invalidate l2m page);
              true
          | 2 ->
              let got = Tlb.translate t ~core:0 (page * 512) ~speculative:false in
              got = ref_translate page
          | _ ->
              Tlb.page_mapped t page = Hashtbl.mem pages page
              && Tlb.mapped_pages t = Hashtbl.length pages)
        ops)

(* ------------------------------------------------------------------ *)
(* Hierarchy                                                           *)
(* ------------------------------------------------------------------ *)

let test_hierarchy_latencies () =
  let p = Params.barcelona in
  let h = Hierarchy.create p ~n_cores:2 in
  let lat1 = Hierarchy.access h ~core:0 ~line:7 ~write:false in
  Alcotest.(check int) "cold miss pays RAM" p.mem_latency lat1;
  let lat2 = Hierarchy.access h ~core:0 ~line:7 ~write:false in
  Alcotest.(check int) "then L1 hit" p.l1_latency lat2

let test_hierarchy_invalidation () =
  let p = Params.barcelona in
  let h = Hierarchy.create p ~n_cores:2 in
  ignore (Hierarchy.access h ~core:0 ~line:9 ~write:false);
  Alcotest.(check bool) "in core 0 L1" true (Hierarchy.line_in_l1 h ~core:0 ~line:9);
  let lat = Hierarchy.access h ~core:1 ~line:9 ~write:true in
  Alcotest.(check bool) "write probe costs extra" true (lat > p.l1_latency);
  Alcotest.(check bool) "invalidated from core 0" false
    (Hierarchy.line_in_l1 h ~core:0 ~line:9);
  Alcotest.(check int) "one invalidation" 1 (Hierarchy.invalidations h)

let test_hierarchy_remote_dirty_forward () =
  let p = Params.barcelona in
  let h = Hierarchy.create p ~n_cores:2 in
  ignore (Hierarchy.access h ~core:0 ~line:3 ~write:true);
  (* Core 1 read misses everywhere local but the line is dirty at core 0:
     cache-to-cache forward plus probe. *)
  let lat = Hierarchy.access h ~core:1 ~line:3 ~write:false in
  Alcotest.(check int) "forward + probe"
    (p.l3_latency + p.coherence_probe_latency) lat

let sum_l2_misses h ~n_cores =
  let acc = ref 0 in
  for c = 0 to n_cores - 1 do
    acc := !acc + (Hierarchy.l2_stats h ~core:c).Hierarchy.misses
  done;
  !acc

let test_hierarchy_forwards_accounting () =
  (* A cache-to-cache forward never consults the L3, so it lands in the
     dedicated [forwards] counter rather than either L3 bucket — and the
     read-path books balance: l3 hits + misses + forwards = l2 misses. *)
  let p = Params.barcelona in
  let h = Hierarchy.create p ~n_cores:2 in
  ignore (Hierarchy.access h ~core:0 ~line:3 ~write:true);
  ignore (Hierarchy.access h ~core:1 ~line:3 ~write:false);
  Alcotest.(check int) "one forward" 1 (Hierarchy.forwards h);
  (* A dirty write miss forwarded from core 1 counts too. *)
  ignore (Hierarchy.access h ~core:1 ~line:8 ~write:true);
  ignore (Hierarchy.access h ~core:0 ~line:8 ~write:true);
  Alcotest.(check int) "write-side forward" 2 (Hierarchy.forwards h);
  let l3 = Hierarchy.l3_stats h in
  Alcotest.(check int) "books balance"
    (sum_l2_misses h ~n_cores:2)
    (l3.Hierarchy.hits + l3.Hierarchy.misses + Hierarchy.forwards h)

let prop_l3_books_balance =
  QCheck.Test.make ~name:"l3 hits + misses + forwards = l2 misses" ~count:100
    QCheck.(list (triple (int_range 0 3) (int_range 0 63) bool))
    (fun ops ->
      let p = Params.dual_socket in
      let n_cores = 4 in
      let h = Hierarchy.create p ~n_cores in
      List.iter
        (fun (core, line, write) ->
          ignore (Hierarchy.access h ~core ~line ~write))
        ops;
      let l3 = Hierarchy.l3_stats h in
      l3.Hierarchy.hits + l3.Hierarchy.misses + Hierarchy.forwards h
      = sum_l2_misses h ~n_cores)

let test_hierarchy_cross_socket () =
  let p = { Params.dual_socket with Params.ooo_factor = 1.0 } in
  let h = Hierarchy.create p ~n_cores:4 in
  (* Cores 0-1 on socket 0, cores 2-3 on socket 1. Core 0 dirties a line;
     a read from core 1 (same socket) is cheaper than from core 2. *)
  ignore (Hierarchy.access h ~core:0 ~line:5 ~write:true);
  let same = Hierarchy.access h ~core:1 ~line:5 ~write:false in
  ignore (Hierarchy.access h ~core:0 ~line:6 ~write:true);
  let cross = Hierarchy.access h ~core:2 ~line:6 ~write:false in
  Alcotest.(check int) "same-socket forward"
    (p.Params.l3_latency + p.Params.coherence_probe_latency) same;
  Alcotest.(check int) "cross-socket forward adds the hop"
    (p.Params.l3_latency + p.Params.coherence_probe_latency
    + p.Params.cross_socket_latency)
    cross;
  Alcotest.(check bool) "cross probes counted" true
    (Hierarchy.cross_socket_probes h >= 1)

let test_hierarchy_per_socket_l3 () =
  let p = Params.dual_socket in
  let h = Hierarchy.create p ~n_cores:4 in
  (* Core 0 warms its socket's L3; core 2 (other socket) still misses to
     RAM after its own L1/L2 are cold and its L3 was never filled. *)
  ignore (Hierarchy.access h ~core:0 ~line:9 ~write:false);
  let other = Hierarchy.access h ~core:2 ~line:9 ~write:false in
  Alcotest.(check int) "other socket misses to RAM" p.Params.mem_latency other

let test_hierarchy_evict_hook () =
  let p = Params.barcelona in
  let h = Hierarchy.create p ~n_cores:1 in
  let evicted = ref [] in
  Hierarchy.set_evict_hook h ~core:0 (fun l -> evicted := l :: !evicted);
  (* L1: 64KB/2-way/64B lines -> 512 sets. Lines l and l+512 share a set;
     three distinct lines in one set with assoc 2 must evict one. *)
  ignore (Hierarchy.access h ~core:0 ~line:0 ~write:false);
  ignore (Hierarchy.access h ~core:0 ~line:512 ~write:false);
  ignore (Hierarchy.access h ~core:0 ~line:1024 ~write:false);
  Alcotest.(check (list int)) "LRU line 0 displaced" [ 0 ] !evicted

(* Reference coherence model: the directory as a hashtable of
   per-line entries (the representation the flat [dir_owners] /
   [dir_dirty] arrays replaced), over the same cache geometry. Latency,
   invalidation and cross-socket accounting and the evict-hook trail
   must be indistinguishable from [Hierarchy.access]. *)
module Ref_hier = struct
  (* Sharers as a plain core list (no packing), so the reference model
     is valid at any core count — including the 64-core topologies the
     production bitmask cannot represent. *)
  type entry = { mutable owners : int list; mutable dirty : int }

  type t = {
    p : Params.t;
    n_cores : int;
    l1 : Cache.t array;
    l2 : Cache.t array;
    l3 : Cache.t array;
    dir : (int, entry) Hashtbl.t;
    evict_hooks : (int -> unit) array;
    mutable forwards : int;
    mutable invalidations : int;
    mutable cross_socket_probes : int;
  }

  let create (p : Params.t) ~n_cores =
    let mk size assoc =
      Cache.create_bytes ~size_bytes:size ~assoc ~line_bytes:p.line_bytes
    in
    {
      p;
      n_cores;
      l1 = Array.init n_cores (fun _ -> mk p.l1_bytes p.l1_assoc);
      l2 = Array.init n_cores (fun _ -> mk p.l2_bytes p.l2_assoc);
      l3 = Array.init p.n_sockets (fun _ -> mk p.l3_bytes p.l3_assoc);
      dir = Hashtbl.create 64;
      evict_hooks = Array.make n_cores (fun _ -> ());
      forwards = 0;
      invalidations = 0;
      cross_socket_probes = 0;
    }

  let entry t line =
    match Hashtbl.find_opt t.dir line with
    | Some e -> e
    | None ->
        let e = { owners = []; dirty = -1 } in
        Hashtbl.add t.dir line e;
        e

  let socket_of t core = core * t.p.Params.n_sockets / t.n_cores

  let access t ~core ~line ~write =
    let p = t.p in
    let e = entry t line in
    let dirty0 = e.dirty in
    let socket = socket_of t core in
    let remote_dirty = dirty0 <> -1 && dirty0 <> core in
    let base_latency =
      if Cache.mem t.l1.(core) line then p.l1_latency
      else if Cache.mem t.l2.(core) line then p.l2_latency
      else if remote_dirty then begin
        t.forwards <- t.forwards + 1;
        p.l3_latency
      end
      else if Cache.mem t.l3.(socket) line then p.l3_latency
      else p.mem_latency
    in
    let extra = ref 0 in
    if write then begin
      let others = List.filter (fun c -> c <> core) e.owners in
      if others <> [] || remote_dirty then begin
        extra := !extra + p.coherence_probe_latency;
        t.invalidations <- t.invalidations + 1;
        let crossed = ref false in
        List.iter
          (fun c ->
            if socket_of t c <> socket then crossed := true;
            if Cache.invalidate t.l1.(c) line then t.evict_hooks.(c) line;
            ignore (Cache.invalidate t.l2.(c) line))
          (List.sort_uniq compare others);
        if !crossed then begin
          t.cross_socket_probes <- t.cross_socket_probes + 1;
          extra := !extra + p.cross_socket_latency
        end
      end;
      e.owners <- [ core ];
      e.dirty <- core
    end
    else begin
      if remote_dirty then begin
        extra := !extra + p.coherence_probe_latency;
        if socket_of t dirty0 <> socket then begin
          t.cross_socket_probes <- t.cross_socket_probes + 1;
          extra := !extra + p.cross_socket_latency
        end;
        e.dirty <- -1
      end;
      if not (List.mem core e.owners) then e.owners <- core :: e.owners
    end;
    (let victim = Cache.touch_evict t.l1.(core) line in
     if victim <> -1 then t.evict_hooks.(core) victim);
    ignore (Cache.touch_evict t.l2.(core) line);
    ignore (Cache.touch_evict t.l3.(socket) line);
    base_latency + !extra
end

let prop_hierarchy_vs_hashtbl_directory =
  QCheck.Test.make ~name:"hierarchy matches hashtable-directory reference"
    ~count:100
    QCheck.(list (triple (int_range 0 3) (int_range 0 63) bool))
    (fun ops ->
      let p = Params.dual_socket in
      let n_cores = 4 in
      let h = Hierarchy.create p ~n_cores in
      let r = Ref_hier.create p ~n_cores in
      let h_evicts = ref [] and r_evicts = ref [] in
      for core = 0 to n_cores - 1 do
        Hierarchy.set_evict_hook h ~core (fun l -> h_evicts := (core, l) :: !h_evicts);
        r.Ref_hier.evict_hooks.(core) <- (fun l -> r_evicts := (core, l) :: !r_evicts)
      done;
      let agree =
        List.for_all
          (fun (core, sel, write) ->
            (* Map the top of the range far past the directory's initial
               65536 slots so growth-by-doubling is exercised too. *)
            let line = if sel >= 60 then 70_000 + ((sel - 60) * 513) else sel in
            Hierarchy.access h ~core ~line ~write
            = Ref_hier.access r ~core ~line ~write)
          ops
      in
      agree
      && !h_evicts = !r_evicts
      && Hierarchy.forwards h = r.Ref_hier.forwards
      && Hierarchy.invalidations h = r.Ref_hier.invalidations
      && Hierarchy.cross_socket_probes h = r.Ref_hier.cross_socket_probes)

(* ------------------------------------------------------------------ *)
(* Sharer-set representations                                          *)
(* ------------------------------------------------------------------ *)

(* Topologies the battery sweeps: paper scale (bitmask + limited agree
   exactly) and big topologies only the limited backend can hold. *)
let sharers_topologies = [ (8, 1); (8, 2); (64, 4); (256, 8) ]

let prop_sharers_vs_reference =
  QCheck.Test.make
    ~name:"limited-pointer/coarse-vector sharer sets match reference set"
    ~count:150
    QCheck.(pair (int_range 0 3) (list (int_range 0 10_000)))
    (fun (ti, adds) ->
      let n_cores, n_sockets = List.nth sharers_topologies ti in
      let adds = List.map (fun a -> a mod n_cores) adds in
      let sock c = c * n_sockets / n_cores in
      let lim = Sharers.make_ctx ~kind:Sharers.Limited ~n_cores ~n_sockets in
      let bm =
        if n_cores <= Sharers.max_bitmask_cores then
          Some (Sharers.make_ctx ~kind:Sharers.Bitmask ~n_cores ~n_sockets)
        else None
      in
      let all_cores = List.init n_cores Fun.id in
      let check_state s_lim s_bm ref_set last_added =
        let truth = List.sort_uniq compare ref_set in
        let probe = Sharers.to_list lim s_lim in
        let repr_ok =
          if Sharers.exact lim s_lim then probe = truth
          else begin
            (* Coarse probe set: every core of every socket holding a
               true sharer — a superset of the truth, nothing else. *)
            let socks = List.sort_uniq compare (List.map sock truth) in
            probe = List.filter (fun c -> List.mem (sock c) socks) all_cores
          end
        in
        (* Coarse mode only engages past the pointer capacity. *)
        let overflow_ok =
          Sharers.exact lim s_lim || List.length truth > 4
        in
        let bm_ok =
          match s_bm with
          | None -> true
          | Some s -> Sharers.to_list (Option.get bm) s = truth
        in
        (* others / crossed must answer exactly per the true sharer set,
           coarse or not, for a sample of querying cores. *)
        let sample =
          List.sort_uniq compare [ 0; last_added; n_cores - 1 ]
        in
        let queries_ok =
          List.for_all
            (fun core ->
              let t_others = List.exists (fun c -> c <> core) truth in
              let t_crossed =
                List.exists (fun c -> c <> core && sock c <> sock core) truth
              in
              Sharers.others lim s_lim ~except:core = t_others
              && Sharers.crossed lim s_lim ~socket:(sock core) ~except:core
                 = t_crossed
              &&
              match s_bm with
              | None -> true
              | Some s ->
                  let ctx = Option.get bm in
                  Sharers.others ctx s ~except:core = t_others
                  && Sharers.crossed ctx s ~socket:(sock core) ~except:core
                     = t_crossed)
            sample
        in
        repr_ok && overflow_ok && bm_ok && queries_ok
      in
      let rec go s_lim s_bm ref_set = function
        | [] -> true
        | c :: rest ->
            let s_lim = Sharers.add lim s_lim c in
            let s_bm = Option.map (fun s -> Sharers.add (Option.get bm) s c) s_bm in
            let ref_set = c :: ref_set in
            check_state s_lim s_bm ref_set c && go s_lim s_bm ref_set rest
      in
      let s_bm0 = Option.map (fun _ -> Sharers.empty) bm in
      Sharers.is_empty Sharers.empty
      && (adds = []
          || Sharers.singleton lim (List.hd adds)
             = Sharers.add lim Sharers.empty (List.hd adds))
      && go Sharers.empty s_bm0 [] adds)

(* The same reference-model comparison as above, at a topology the old
   one-int-bitmask directory could not represent ([1 lsl 63] overflows):
   64 cores over 4 sockets on the auto-selected limited backend. The
   coarse vector's spurious probes only hit cores that hold nothing, so
   latencies, evictions and every counter still match the exact-set
   reference. *)
let prop_hierarchy64_vs_reference =
  QCheck.Test.make
    ~name:"64-core hierarchy (limited directory) matches reference" ~count:60
    QCheck.(list (triple (int_range 0 63) (int_range 0 63) bool))
    (fun ops ->
      let p = Params.with_sockets Params.barcelona ~sockets:4 in
      let n_cores = 64 in
      let h = Hierarchy.create p ~n_cores in
      let r = Ref_hier.create p ~n_cores in
      let h_evicts = ref [] and r_evicts = ref [] in
      for core = 0 to n_cores - 1 do
        Hierarchy.set_evict_hook h ~core (fun l ->
            h_evicts := (core, l) :: !h_evicts);
        r.Ref_hier.evict_hooks.(core) <-
          (fun l -> r_evicts := (core, l) :: !r_evicts)
      done;
      let agree =
        List.for_all
          (fun (core, sel, write) ->
            (* Stripe part of the range past the first directory shard
               (8192 lines) so shard allocation is exercised too. *)
            let line = if sel >= 56 then 70_000 + ((sel - 56) * 1031) else sel in
            Hierarchy.access h ~core ~line ~write
            = Ref_hier.access r ~core ~line ~write)
          ops
      in
      Hierarchy.backend h = Sharers.Limited
      && agree
      && !h_evicts = !r_evicts
      && Hierarchy.forwards h = r.Ref_hier.forwards
      && Hierarchy.invalidations h = r.Ref_hier.invalidations
      && Hierarchy.cross_socket_probes h = r.Ref_hier.cross_socket_probes)

(* Whole-hierarchy backend equivalence on fig4-shaped traffic: mostly
   per-core private working sets, plus widely-shared read-hot lines
   (these overflow the 4 pointers and go coarse) and a few contended
   RMW lines — the access mix STAMP produces. Latency streams, eviction
   traces, stats and directory occupancy must be identical under both
   backends; only the probe census may differ (coarse sends spurious
   probes at cores that hold nothing). *)
let prop_backends_equivalent_on_fig4_traffic =
  QCheck.Test.make
    ~name:"bitmask vs limited backends equivalent on fig4-shaped traffic"
    ~count:40 QCheck.small_nat
    (fun seed ->
      let p = Params.dual_socket in
      let n_cores = 8 in
      let hb = Hierarchy.create ~sharers:Sharers.Bitmask p ~n_cores in
      let hl = Hierarchy.create ~sharers:Sharers.Limited p ~n_cores in
      let eb = ref [] and el = ref [] in
      for core = 0 to n_cores - 1 do
        Hierarchy.set_evict_hook hb ~core (fun l -> eb := (core, l) :: !eb);
        Hierarchy.set_evict_hook hl ~core (fun l -> el := (core, l) :: !el)
      done;
      let st = ref (seed + 1) in
      let rand m =
        st := ((!st * 1103515245) + 12345) land 0x3FFFFFFF;
        !st mod m
      in
      let ok = ref true in
      for _ = 1 to 1500 do
        let core = rand n_cores in
        let r = rand 10 in
        let line, write =
          if r < 6 then ((1000 * core) + rand 48, rand 4 = 0)
          else if r < 8 then (500 + rand 8, false)
          else (600 + rand 4, true)
        in
        if
          Hierarchy.access hb ~core ~line ~write
          <> Hierarchy.access hl ~core ~line ~write
        then ok := false
      done;
      !ok
      && !eb = !el
      && Hierarchy.forwards hb = Hierarchy.forwards hl
      && Hierarchy.invalidations hb = Hierarchy.invalidations hl
      && Hierarchy.cross_socket_probes hb = Hierarchy.cross_socket_probes hl
      && Hierarchy.dir_high_water hb = Hierarchy.dir_high_water hl
      && Hierarchy.probes hl >= Hierarchy.probes hb)

(* Regression for the latent >= 63-core overflow: creation and traffic
   at 64 cores now work (auto-switched representation), and forcing the
   bitmask there is an explicit error instead of silent bit wraparound. *)
let test_hierarchy_64core () =
  let p = Params.with_sockets Params.barcelona ~sockets:4 in
  let h = Hierarchy.create p ~n_cores:64 in
  Alcotest.(check bool)
    "limited backend auto-selected" true
    (Hierarchy.backend h = Sharers.Limited);
  let line = 42 in
  for core = 0 to 63 do
    ignore (Hierarchy.access h ~core ~line ~write:false)
  done;
  let dropped = ref [] in
  Hierarchy.set_evict_hook h ~core:63 (fun l -> dropped := l :: !dropped);
  Alcotest.(check bool) "core 63 holds the line" true
    (Hierarchy.line_in_l1 h ~core:63 ~line);
  ignore (Hierarchy.access h ~core:0 ~line ~write:true);
  Alcotest.(check bool) "core 63 invalidated" false
    (Hierarchy.line_in_l1 h ~core:63 ~line);
  Alcotest.(check (list int)) "evict hook fired for core 63" [ line ] !dropped;
  Alcotest.(check int) "one invalidation event" 1 (Hierarchy.invalidations h);
  Alcotest.(check bool) "cross-socket probe charged" true
    (Hierarchy.cross_socket_probes h > 0);
  (* Distant lines exercise outer-array growth + lazy shard allocation. *)
  ignore (Hierarchy.access h ~core:7 ~line:10_000_000 ~write:true);
  Alcotest.(check bool) "distant line landed in L1" true
    (Hierarchy.line_in_l1 h ~core:7 ~line:10_000_000)

let test_bitmask_backend_caps_at_62 () =
  (match Hierarchy.create ~sharers:Sharers.Bitmask Params.barcelona ~n_cores:64 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bitmask backend accepted 64 cores");
  (match Sharers.make_ctx ~kind:Sharers.Bitmask ~n_cores:63 ~n_sockets:1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bitmask ctx accepted 63 cores");
  ignore (Hierarchy.create ~sharers:Sharers.Bitmask Params.barcelona ~n_cores:62);
  (match Sharers.make_ctx ~kind:Sharers.Limited ~n_cores:513 ~n_sockets:8 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "limited ctx accepted 513 cores");
  (match Sharers.make_ctx ~kind:Sharers.Limited ~n_cores:256 ~n_sockets:17 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "limited ctx accepted 17 sockets")

(* ------------------------------------------------------------------ *)
(* Memsys                                                              *)
(* ------------------------------------------------------------------ *)

let with_thread f =
  (* Run [f] inside a single simulated thread and return (result, cycles). *)
  let e = Engine.create ~n_cores:2 () in
  let result = ref None in
  Engine.spawn e ~core:0 (fun () -> result := Some (f e));
  Engine.run e;
  (Option.get !result, Engine.core_time e 0)

let test_memsys_load_store () =
  let (), cycles =
    with_thread (fun e ->
        let m = Memsys.create Params.barcelona e in
        Memsys.store m ~core:0 100 42;
        let v = Memsys.load m ~core:0 100 in
        Alcotest.(check int) "value round trip" 42 v)
  in
  Alcotest.(check bool) "time charged" true (cycles > 0)

let test_memsys_fault_serviced_outside_region () =
  let (), _ =
    with_thread (fun e ->
        let m = Memsys.create Params.barcelona e in
        (* No fault hook: the OS services the first touch transparently. *)
        let v = Memsys.load m ~core:0 9999 in
        Alcotest.(check int) "zero fill after fault" 0 v;
        Alcotest.(check int) "one fault serviced" 1 (Memsys.faults_serviced m))
  in
  ()

let test_memsys_fault_hook_raises () =
  let exception Region_abort of int in
  let (), _ =
    with_thread (fun e ->
        let m = Memsys.create Params.barcelona e in
        Memsys.set_fault_hook m (fun ~core:_ fault ->
            match fault with
            | Memsys.Unmapped page -> raise (Region_abort page)
            | Memsys.Tlb_miss -> ());
        (try
           ignore (Memsys.load m ~core:0 777777);
           Alcotest.fail "expected abort"
         with Region_abort page ->
           Alcotest.(check int) "page reported" (Addr.page_of 777777) page);
        Alcotest.(check int) "not serviced by OS" 0 (Memsys.faults_serviced m);
        (* The runtime then services it explicitly and the retry succeeds. *)
        Memsys.service_fault m ~page:(Addr.page_of 777777);
        Alcotest.(check int) "retry ok" 0 (Memsys.load m ~core:0 777777))
  in
  ()

let test_memsys_cas () =
  let (), _ =
    with_thread (fun e ->
        let m = Memsys.create Params.barcelona e in
        Memsys.poke m 50 5;
        Alcotest.(check bool) "cas fails on mismatch" false
          (Memsys.cas m ~core:0 50 ~expect:4 ~value:9);
        Alcotest.(check int) "unchanged" 5 (Memsys.peek m 50);
        Alcotest.(check bool) "cas succeeds" true
          (Memsys.cas m ~core:0 50 ~expect:5 ~value:9);
        Alcotest.(check int) "swapped" 9 (Memsys.peek m 50))
  in
  ()

let test_memsys_faa () =
  let (), _ =
    with_thread (fun e ->
        let m = Memsys.create Params.barcelona e in
        Memsys.poke m 60 10;
        Alcotest.(check int) "returns previous" 10 (Memsys.faa m ~core:0 60 3);
        Alcotest.(check int) "added" 13 (Memsys.peek m 60))
  in
  ()

let test_memsys_probe_hook_order () =
  (* The probe hook must fire before the access takes effect: it observes
     the pre-access RAM value. *)
  let (), _ =
    with_thread (fun e ->
        let m = Memsys.create Params.barcelona e in
        Memsys.poke m 80 1;
        let seen = ref (-1) in
        Memsys.set_probe_hook m (fun ~requester:_ ~line ~write ->
            if line = Addr.line_of 80 && write then seen := Memsys.peek m 80);
        Memsys.store m ~core:0 80 2;
        Alcotest.(check int) "hook saw old value" 1 !seen)
  in
  ()

let test_memsys_hot_cold_timing () =
  let (), _ =
    with_thread (fun e ->
        let m = Memsys.create Params.barcelona e in
        Memsys.poke m 200 0;
        let t0 = Engine.core_time e 0 in
        ignore (Memsys.load m ~core:0 200);
        let cold = Engine.core_time e 0 - t0 in
        let t1 = Engine.core_time e 0 in
        ignore (Memsys.load m ~core:0 200);
        let hot = Engine.core_time e 0 - t1 in
        Alcotest.(check bool)
          (Printf.sprintf "cold (%d) slower than hot (%d)" cold hot)
          true (cold > hot))
  in
  ()

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "cache"
    [
      ( "cache",
        [
          Alcotest.test_case "hit/miss" `Quick test_cache_hit_miss;
          Alcotest.test_case "LRU eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "set isolation" `Quick test_cache_set_isolation;
          Alcotest.test_case "invalidate" `Quick test_cache_invalidate;
          q prop_cache_vs_reference_lru;
          q prop_touch_evict_vs_model;
        ] );
      ( "tlb",
        [
          Alcotest.test_case "fault then hit" `Quick test_tlb_fault_then_hit;
          Alcotest.test_case "rock ablation" `Quick test_tlb_rock_ablation;
          Alcotest.test_case "map range" `Quick test_tlb_map_range;
          q prop_tlb_vs_reference_model;
        ] );
      ( "hierarchy",
        [
          Alcotest.test_case "latencies" `Quick test_hierarchy_latencies;
          Alcotest.test_case "invalidation" `Quick test_hierarchy_invalidation;
          Alcotest.test_case "dirty forward" `Quick test_hierarchy_remote_dirty_forward;
          Alcotest.test_case "forwards accounting" `Quick test_hierarchy_forwards_accounting;
          q prop_l3_books_balance;
          Alcotest.test_case "cross socket" `Quick test_hierarchy_cross_socket;
          Alcotest.test_case "per-socket L3" `Quick test_hierarchy_per_socket_l3;
          Alcotest.test_case "evict hook" `Quick test_hierarchy_evict_hook;
          q prop_hierarchy_vs_hashtbl_directory;
          q prop_hierarchy64_vs_reference;
          q prop_backends_equivalent_on_fig4_traffic;
          Alcotest.test_case "64-core topology" `Quick test_hierarchy_64core;
          Alcotest.test_case "backend capacity limits" `Quick
            test_bitmask_backend_caps_at_62;
        ] );
      ( "sharers",
        [
          q prop_sharers_vs_reference;
        ] );
      ( "memsys",
        [
          Alcotest.test_case "load/store" `Quick test_memsys_load_store;
          Alcotest.test_case "fault service" `Quick test_memsys_fault_serviced_outside_region;
          Alcotest.test_case "fault hook" `Quick test_memsys_fault_hook_raises;
          Alcotest.test_case "cas" `Quick test_memsys_cas;
          Alcotest.test_case "faa" `Quick test_memsys_faa;
          Alcotest.test_case "probe order" `Quick test_memsys_probe_hook_order;
          Alcotest.test_case "hot vs cold" `Quick test_memsys_hot_cold_timing;
        ] );
    ]
