(* Tests for the discrete-event engine, PRNG, priority queue, and the
   simulated-memory substrate (RAM, addressing, allocator). *)

module Engine = Asf_engine.Engine
module Prng = Asf_engine.Prng
module Pqueue = Asf_engine.Pqueue
module Addr = Asf_mem.Addr
module Ram = Asf_mem.Ram
module Alloc = Asf_mem.Alloc
module Trace = Asf_trace.Trace

(* ------------------------------------------------------------------ *)
(* Pqueue                                                              *)
(* ------------------------------------------------------------------ *)

let test_pqueue_order () =
  let q = Pqueue.create () in
  Pqueue.push q ~time:5 ~seq:1 "a";
  Pqueue.push q ~time:3 ~seq:2 "b";
  Pqueue.push q ~time:5 ~seq:0 "c";
  Pqueue.push q ~time:1 ~seq:9 "d";
  let order = List.init 4 (fun _ -> let _, _, v = Pqueue.pop q in v) in
  Alcotest.(check (list string)) "min (time,seq) first" [ "d"; "b"; "c"; "a" ] order;
  Alcotest.(check bool) "empty after draining" true (Pqueue.is_empty q)

let test_pqueue_peek_drop () =
  let q = Pqueue.create () in
  Alcotest.(check (option (pair int int))) "peek empty" None (Pqueue.peek_key q);
  Alcotest.(check int) "min_time empty" max_int (Pqueue.min_time q);
  Pqueue.push q ~time:5 ~seq:2 "a";
  Pqueue.push q ~time:5 ~seq:1 "b";
  Pqueue.push q ~time:9 ~seq:0 "c";
  Alcotest.(check (option (pair int int)))
    "min key: earliest time, then smallest seq" (Some (5, 1))
    (Pqueue.peek_key q);
  Alcotest.(check int) "min_time" 5 (Pqueue.min_time q);
  Alcotest.(check string) "drop_min returns the payload" "b" (Pqueue.drop_min q);
  Alcotest.(check (option (pair int int))) "next key" (Some (5, 2)) (Pqueue.peek_key q);
  Alcotest.(check string) "second" "a" (Pqueue.drop_min q);
  Alcotest.(check string) "last" "c" (Pqueue.drop_min q);
  Alcotest.(check bool) "empty after draining" true (Pqueue.is_empty q)

let prop_pqueue_sorted =
  QCheck.Test.make ~name:"pqueue pops in nondecreasing key order" ~count:200
    QCheck.(list (pair small_nat small_nat))
    (fun pairs ->
      let q = Pqueue.create () in
      List.iteri (fun i (t, s) -> Pqueue.push q ~time:t ~seq:((s * 1000) + i) ()) pairs;
      let prev = ref (-1, -1) in
      let ok = ref true in
      while not (Pqueue.is_empty q) do
        let t, s, () = Pqueue.pop q in
        if (t, s) < !prev then ok := false;
        prev := (t, s)
      done;
      !ok)

let test_pqueue_negative_time_rejected () =
  let q = Pqueue.create () in
  Alcotest.check_raises "negative time"
    (Invalid_argument "Pqueue.push: negative time") (fun () ->
      Pqueue.push q ~time:(-1) ~seq:0 ())

(* Calendar-vs-heap model battery: the same operation sequence, run under
   every policy, must produce the identical (time, seq, payload) pop
   sequence — and match a sorted-list reference model — across event-time
   distributions chosen to hit every calendar path: dense (many events
   per day), sparse (day gaps wide enough for the direct-search
   fallback), clustered (every event in one bucket — the pathological
   distribution Auto must refuse and Calendar must survive), and a
   near-monotone ramp (the scheduler's own shape). Sequences are long
   enough that Auto crosses the engage threshold and drains back, so the
   heap->calendar->heap transitions run under the comparison too. *)
let pqueue_ops_gen =
  QCheck.Gen.(
    int_range 0 3 >>= fun dist ->
    list_size (int_range 1 600)
      (frequency [ (3, int_range 0 1000 >|= fun t -> `Push t); (1, return `Pop) ])
    >|= fun ops -> (dist, ops))

let print_pqueue_ops (dist, ops) =
  Printf.sprintf "dist=%d ops=[%s]" dist
    (String.concat ";"
       (List.map (function `Push t -> string_of_int t | `Pop -> "pop") ops))

let pqueue_dist_time dist prev t =
  match dist with
  | 0 -> t mod 97 (* dense *)
  | 1 -> t * 1_000_003 (* sparse *)
  | 2 -> 42 (* clustered / pathological *)
  | _ -> prev + (t mod 7) (* ramp *)

let run_pqueue_ops policy (dist, ops) =
  let q = Pqueue.create ~policy () in
  let out = ref [] in
  let seq = ref 0 in
  let prev = ref 0 in
  List.iter
    (function
      | `Push t ->
          incr seq;
          let time = pqueue_dist_time dist !prev t in
          prev := time;
          Pqueue.push q ~time ~seq:!seq !seq
      | `Pop ->
          if not (Pqueue.is_empty q) then begin
            let mt = Pqueue.min_time q in
            let ((t, _, _) as e) = Pqueue.pop q in
            (* min_time must agree with the element pop then returns. *)
            out := (if mt = t then e else (-1, -1, -1)) :: !out
          end)
    ops;
  while not (Pqueue.is_empty q) do
    out := Pqueue.pop q :: !out
  done;
  List.rev !out

let run_pqueue_model (dist, ops) =
  let live = ref [] in
  let out = ref [] in
  let seq = ref 0 in
  let prev = ref 0 in
  List.iter
    (function
      | `Push t ->
          incr seq;
          let time = pqueue_dist_time dist !prev t in
          prev := time;
          live := (time, !seq, !seq) :: !live
      | `Pop -> (
          match List.sort compare !live with
          | [] -> ()
          | m :: rest ->
              live := rest;
              out := m :: !out))
    ops;
  List.rev !out @ List.sort compare !live

let prop_pqueue_policies_agree =
  QCheck.Test.make
    ~name:"heap, calendar and auto pop identical sequences (model battery)"
    ~count:120
    (QCheck.make ~print:print_pqueue_ops pqueue_ops_gen)
    (fun ops ->
      let reference = run_pqueue_model ops in
      List.for_all
        (fun policy -> run_pqueue_ops policy ops = reference)
        [ Pqueue.Heap; Pqueue.Calendar; Pqueue.Auto ])

(* Liveness regression for the vacated-slot fix: after popping every
   element, the queue may pin at most one payload (the dummy captured
   from the first push) — popped continuations must not stay reachable
   from the internal arrays. The population crosses the Auto engage
   threshold, so heap slots, calendar buckets and both regime
   transitions are all covered. *)
let test_pqueue_vacate_liveness () =
  List.iter
    (fun (name, policy) ->
      let n = 300 in
      let w = Weak.create n in
      let q = Pqueue.create ~policy () in
      for i = 0 to n - 1 do
        let v = ref i in
        Weak.set w i (Some v);
        Pqueue.push q ~time:(i * 3) ~seq:i v
      done;
      let sink = ref (ref (-1)) in
      for _ = 1 to n do
        sink := Pqueue.drop_min q
      done;
      sink := ref (-1);
      Gc.full_major ();
      let live = ref 0 in
      for i = 0 to n - 1 do
        if Weak.check w i then incr live
      done;
      if !live > 1 then
        Alcotest.failf "%s: %d popped payloads still reachable (allowed: 1)"
          name !live)
    [ ("heap", Pqueue.Heap); ("calendar", Pqueue.Calendar); ("auto", Pqueue.Auto) ]

(* ------------------------------------------------------------------ *)
(* Prng                                                                *)
(* ------------------------------------------------------------------ *)

let test_prng_deterministic () =
  let g1 = Prng.create 42 and g2 = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Prng.int g1 1000) (Prng.int g2 1000)
  done

let test_prng_split_independent () =
  let g = Prng.create 7 in
  let h = Prng.split g in
  let a = List.init 50 (fun _ -> Prng.int g 1_000_000) in
  let b = List.init 50 (fun _ -> Prng.int h 1_000_000) in
  Alcotest.(check bool) "streams differ" true (a <> b)

let prop_prng_range =
  QCheck.Test.make ~name:"prng int stays in range" ~count:500
    QCheck.(pair small_nat (int_range 1 10_000))
    (fun (seed, n) ->
      let g = Prng.create seed in
      let v = Prng.int g n in
      v >= 0 && v < n)

let test_prng_rough_uniformity () =
  let g = Prng.create 1 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let b = Prng.int g 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iteri
    (fun i c ->
      let frac = float_of_int c /. float_of_int n in
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d near 0.1 (got %.3f)" i frac)
        true
        (frac > 0.08 && frac < 0.12))
    buckets

(* Distribution sanity for the top-bit fixed-point reduction: across
   random seeds and bucket counts, every bucket of [int g n] stays within
   20% of uniform over 30k draws. A reduction that consumed the wrong
   bits (or a biased modulo) shows up here. *)
let prop_prng_buckets_uniform =
  QCheck.Test.make ~name:"prng int buckets near-uniform across seeds" ~count:25
    QCheck.(pair (int_range 0 10_000) (int_range 2 32))
    (fun (seed, n) ->
      let g = Prng.create seed in
      let draws = 30_000 in
      let buckets = Array.make n 0 in
      for _ = 1 to draws do
        let v = Prng.int g n in
        buckets.(v) <- buckets.(v) + 1
      done;
      let expect = float_of_int draws /. float_of_int n in
      Array.for_all
        (fun c ->
          let r = float_of_int c /. expect in
          r > 0.8 && r < 1.2)
        buckets)

let test_prng_uses_high_bits () =
  (* [int] reduces from the top 32 bits of the raw output — as documented:
     a copy of the generator predicts it as floor (n * hi32 / 2^32). *)
  let g = Prng.create 99 in
  let h = Prng.copy g in
  let n = 1000 in
  for _ = 1 to 1000 do
    let hi = Int64.to_int (Int64.shift_right_logical (Prng.next64 h) 32) in
    Alcotest.(check int) "floor (n*hi/2^32)" (hi * n / 65536 / 65536) (Prng.int g n)
  done

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

let test_engine_single_thread () =
  let e = Engine.create ~n_cores:1 () in
  let steps = ref 0 in
  Engine.spawn e ~core:0 (fun () ->
      for _ = 1 to 10 do
        Engine.elapse 5;
        incr steps
      done);
  Engine.run e;
  Alcotest.(check int) "all steps ran" 10 !steps;
  Alcotest.(check int) "time advanced" 50 (Engine.core_time e 0)

let test_engine_interleaving_deterministic () =
  (* Two threads alternate strictly by time; record the interleaving. *)
  let run () =
    let e = Engine.create ~n_cores:2 () in
    let log = ref [] in
    let worker id delay () =
      for i = 1 to 5 do
        Engine.elapse delay;
        log := (id, i) :: !log
      done
    in
    Engine.spawn e ~core:0 (worker "a" 10);
    Engine.spawn e ~core:1 (worker "b" 15);
    Engine.run e;
    List.rev !log
  in
  let l1 = run () and l2 = run () in
  Alcotest.(check bool) "deterministic" true (l1 = l2);
  (* a at 10,20,30,40,50; b at 15,30,45,60,75. At t=30, b's resume was
     enqueued at t=15 and a's at t=20, so b has the smaller sequence
     number and runs first. *)
  Alcotest.(check (list (pair string int)))
    "interleaving by (time, seq)"
    [ ("a", 1); ("b", 1); ("a", 2); ("b", 2); ("a", 3); ("a", 4); ("b", 3); ("a", 5); ("b", 4); ("b", 5) ]
    l1

let test_engine_spawn_at_absolute_times () =
  (* spawn_at injects work at absolute cycles, interleaved with ordinary
     threads in (time, seq) order regardless of submission order. *)
  let e = Engine.create ~n_cores:2 () in
  let log = ref [] in
  let note id () = log := (id, Engine.core_time e 0) :: !log in
  Engine.spawn_at e ~core:0 ~time:30 (note "c");
  Engine.spawn_at e ~core:0 ~time:10 (note "a");
  Engine.spawn_at e ~core:0 ~time:20 (note "b");
  Engine.spawn e ~core:1 (fun () -> Engine.elapse 15; note "t" ());
  Engine.run e;
  Alcotest.(check (list (pair string int)))
    "absolute-time order"
    [ ("a", 10); ("t", 10); ("b", 20); ("c", 30) ]
    (List.rev !log)

let test_engine_spawn_at_never_regresses_clock () =
  (* An arrival behind a core's clock runs, but the clock stays put:
     simulated time is monotone per core. *)
  let e = Engine.create ~n_cores:1 () in
  let seen = ref (-1) in
  Engine.spawn e ~core:0 (fun () -> Engine.elapse 100);
  Engine.spawn_at e ~core:0 ~time:40 (fun () -> seen := Engine.core_time e 0);
  Engine.run e;
  Alcotest.(check bool) "late event still ran" true (!seen >= 40);
  Alcotest.(check int) "clock did not regress" 100 (Engine.core_time e 0)

let test_engine_spawn_at_chained_arrivals () =
  (* The serving harness's arrival idiom: each event schedules the next,
     so the heap never holds more than one pending arrival. *)
  let e = Engine.create ~n_cores:1 () in
  let n = ref 0 in
  let rec arrive i () =
    if i < 50 then begin
      incr n;
      Engine.spawn_at e ~core:0 ~time:((i + 1) * 7) (arrive (i + 1))
    end
  in
  Engine.spawn_at e ~core:0 ~time:0 (arrive 0);
  Engine.run e;
  Alcotest.(check int) "all arrivals fired" 50 !n;
  Alcotest.(check int) "clock at the last arrival" 350 (Engine.core_time e 0)

let test_engine_spawn_at_rejects_bad_args () =
  let e = Engine.create ~n_cores:2 () in
  Alcotest.check_raises "negative time" (Invalid_argument "Engine.spawn_at: negative time")
    (fun () -> Engine.spawn_at e ~core:0 ~time:(-1) (fun () -> ()));
  Alcotest.check_raises "bad core" (Invalid_argument "Engine.spawn_at: bad core")
    (fun () -> Engine.spawn_at e ~core:2 ~time:0 (fun () -> ()))

let test_engine_atomic_between_elapses () =
  (* Without an elapse in the middle, a read-modify-write sequence is
     atomic: 2 threads x 1000 increments never lose an update. *)
  let e = Engine.create ~n_cores:2 () in
  let counter = ref 0 in
  let incr_thread () =
    for _ = 1 to 1000 do
      let v = !counter in
      counter := v + 1;
      Engine.elapse 1
    done
  in
  Engine.spawn e ~core:0 incr_thread;
  Engine.spawn e ~core:1 incr_thread;
  Engine.run e;
  Alcotest.(check int) "no lost updates" 2000 !counter

let test_engine_threads_share_core () =
  let e = Engine.create ~n_cores:1 () in
  let done_count = ref 0 in
  for _ = 1 to 3 do
    Engine.spawn e ~core:0 (fun () ->
        Engine.elapse 7;
        incr done_count)
  done;
  Engine.run e;
  Alcotest.(check int) "all finished" 3 !done_count;
  (* Threads share core 0's clock; each elapse moves the shared clock. *)
  Alcotest.(check int) "shared clock" 21 (Engine.core_time e 0)

let test_engine_exception_propagates () =
  let e = Engine.create ~n_cores:1 () in
  Engine.spawn e ~core:0 (fun () ->
      Engine.elapse 1;
      failwith "boom");
  Alcotest.check_raises "escapes run" (Failure "boom") (fun () -> Engine.run e)

let test_engine_elapse_zero () =
  (* elapse 0 is a pure yield: time unchanged, scheduling still fair. *)
  let e = Engine.create ~n_cores:1 () in
  let order = ref [] in
  Engine.spawn e ~core:0 (fun () ->
      order := 1 :: !order;
      Engine.elapse 0;
      order := 3 :: !order);
  Engine.spawn e ~core:0 (fun () ->
      order := 2 :: !order;
      Engine.elapse 0;
      order := 4 :: !order);
  Engine.run e;
  Alcotest.(check int) "no time passed" 0 (Engine.core_time e 0);
  Alcotest.(check (list int)) "fair interleave" [ 1; 2; 3; 4 ] (List.rev !order)

let test_engine_negative_elapse_rejected () =
  let e = Engine.create ~n_cores:1 () in
  Engine.spawn e ~core:0 (fun () -> Engine.elapse (-1));
  Alcotest.check_raises "negative duration"
    (Invalid_argument "Engine.elapse: negative duration") (fun () -> Engine.run e)

let test_engine_elapse_overflow () =
  (* Fused path: the second elapse would wrap the core clock past
     max_int. *)
  let e = Engine.create ~n_cores:1 () in
  Engine.spawn e ~core:0 (fun () ->
      Engine.elapse (max_int - 5);
      Engine.elapse 10);
  Alcotest.check_raises "fused overflow"
    (Invalid_argument "Engine.elapse: core clock overflow") (fun () ->
      Engine.run e);
  (* Scheduled path: same program through the enqueue/pop round-trip. *)
  let r = Engine.create ~always_schedule:true ~n_cores:1 () in
  Engine.spawn r ~core:0 (fun () ->
      Engine.elapse (max_int - 5);
      Engine.elapse 10);
  Alcotest.check_raises "scheduled overflow"
    (Invalid_argument "Engine.elapse: core clock overflow") (fun () ->
      Engine.run r);
  (* Advancing to exactly max_int is legal in both paths. *)
  let m = Engine.create ~n_cores:1 () in
  Engine.spawn m ~core:0 (fun () ->
      Engine.elapse (max_int - 7);
      Engine.elapse 7);
  Engine.run m;
  Alcotest.(check int) "clock may reach exactly max_int" max_int
    (Engine.core_time m 0)

let test_engine_max_time () =
  let e = Engine.create ~n_cores:4 () in
  for c = 0 to 3 do
    Engine.spawn e ~core:c (fun () -> Engine.elapse ((c + 1) * 100))
  done;
  Engine.run e;
  Alcotest.(check int) "makespan" 400 (Engine.max_time e)

(* ------------------------------------------------------------------ *)
(* Fusion fast path                                                    *)
(* ------------------------------------------------------------------ *)

let test_engine_fusion_counters () =
  (* A thread running alone always beats an empty heap, so every elapse
     takes the fast path; the always-schedule ablation forces every one
     through the heap. Clocks and event counts must agree regardless. *)
  let body () =
    for _ = 1 to 10 do
      Engine.elapse 3
    done
  in
  let e = Engine.create ~n_cores:1 () in
  Engine.spawn e ~core:0 body;
  Engine.run e;
  Alcotest.(check int) "all fused" 10 (Engine.fused_elapses e);
  Alcotest.(check int) "none scheduled" 0 (Engine.scheduled_elapses e);
  let r = Engine.create ~always_schedule:true ~n_cores:1 () in
  Engine.spawn r ~core:0 body;
  Engine.run r;
  Alcotest.(check int) "ablation: none fused" 0 (Engine.fused_elapses r);
  Alcotest.(check int) "ablation: all scheduled" 10 (Engine.scheduled_elapses r);
  Alcotest.(check int) "same clock" (Engine.core_time e 0) (Engine.core_time r 0);
  Alcotest.(check int) "same event count" (Engine.events e) (Engine.events r)

let test_engine_heap_high_water () =
  let e = Engine.create ~n_cores:4 () in
  for c = 0 to 3 do
    Engine.spawn e ~core:c (fun () -> Engine.elapse 10)
  done;
  Alcotest.(check int) "all spawns queued" 4 (Engine.heap_high_water e);
  Engine.run e;
  Alcotest.(check int) "run never exceeds the spawn peak" 4
    (Engine.heap_high_water e)

(* The lookahead window: with the nearest competing event 50k cycles
   out, a core's long run of unit elapses must batch on the cached bound
   — every one fused, no queue traffic — and still agree with the
   always-schedule reference on clocks and event counts. *)
let test_engine_lookahead_window () =
  let run always_schedule =
    let e = Engine.create ~always_schedule ~n_cores:2 () in
    Engine.spawn e ~core:0 (fun () ->
        for _ = 1 to 10_000 do
          Engine.elapse 1
        done);
    Engine.spawn e ~core:1 (fun () -> Engine.elapse 50_000);
    Engine.run e;
    ( Engine.core_time e 0,
      Engine.core_time e 1,
      Engine.events e,
      Engine.fused_elapses e )
  in
  let t0, t1, ev, fused = run false in
  let t0', t1', ev', _ = run true in
  Alcotest.(check (pair int int)) "clocks match reference" (t0', t1') (t0, t1);
  Alcotest.(check int) "event count matches reference" ev' ev;
  (* Only the first elapse of each thread can lose the race with the
     other thread's queued start. *)
  Alcotest.(check bool)
    (Printf.sprintf "long elapse run fuses (fused=%d)" fused)
    true (fused >= 9_990)

(* Fusion equivalence (QCheck): random spawn/elapse programs run
   bit-identically on the fused engine and the always-schedule reference
   — same execution log, per-core clocks, scheduling-event counts, and
   emitted trace stream (resume/spawn/finish kinds included, which the
   default filter would hide). *)

let run_program ?pqueue ~always_schedule (n_cores, threads) =
  let tracer = Trace.create ~filter:[ "resume"; "spawn"; "finish" ] () in
  Trace.install tracer;
  Fun.protect ~finally:Trace.uninstall (fun () ->
      let e = Engine.create ?pqueue ~always_schedule ~n_cores () in
      let log = ref [] in
      List.iteri
        (fun id (core, delays) ->
          Engine.spawn e ~core (fun () ->
              List.iteri
                (fun i d ->
                  Engine.elapse d;
                  log := (id, i, Engine.core_time e core) :: !log)
                delays))
        threads;
      Engine.run e;
      ( List.rev !log,
        List.init n_cores (Engine.core_time e),
        Engine.events e,
        Trace.events tracer ))

let program_gen =
  QCheck.Gen.(
    int_range 1 3 >>= fun n_cores ->
    list_size (int_range 1 5)
      (pair
         (int_range 0 (n_cores - 1))
         (list_size (int_range 0 8) (int_range 0 25)))
    >|= fun threads -> (n_cores, threads))

let print_program (n_cores, threads) =
  Printf.sprintf "cores=%d %s" n_cores
    (String.concat "; "
       (List.map
          (fun (c, ds) ->
            Printf.sprintf "core %d: [%s]" c
              (String.concat "," (List.map string_of_int ds)))
          threads))

let prop_fusion_equivalent =
  QCheck.Test.make ~name:"fused engine matches always-schedule reference"
    ~count:300
    (QCheck.make ~print:print_program program_gen)
    (fun p ->
      let log_f, times_f, events_f, trace_f =
        run_program ~always_schedule:false p
      in
      let log_r, times_r, events_r, trace_r =
        run_program ~always_schedule:true p
      in
      if log_f <> log_r then QCheck.Test.fail_report "execution order differs"
      else if times_f <> times_r then
        QCheck.Test.fail_report "per-core clocks differ"
      else if events_f <> events_r then
        QCheck.Test.fail_report "event counts differ"
      else if trace_f <> trace_r then
        QCheck.Test.fail_report "trace streams differ"
      else true)

(* Scheduler-queue equivalence (QCheck): the queue representation must be
   unobservable from the engine — a forced-calendar run matches a
   forced-heap run on log, clocks, events and trace, both with fusion on
   (the production path) and with every elapse through the queue (which
   maximizes queue traffic). *)
let prop_pqueue_policy_equivalent =
  QCheck.Test.make ~name:"calendar-queue engine matches heap engine"
    ~count:150
    (QCheck.make ~print:print_program program_gen)
    (fun p ->
      List.for_all
        (fun always_schedule ->
          run_program ~pqueue:Pqueue.Heap ~always_schedule p
          = run_program ~pqueue:Pqueue.Calendar ~always_schedule p)
        [ false; true ])

(* ------------------------------------------------------------------ *)
(* Addr                                                                *)
(* ------------------------------------------------------------------ *)

let test_addr_arithmetic () =
  Alcotest.(check int) "line of word 0" 0 (Addr.line_of 0);
  Alcotest.(check int) "line of word 7" 0 (Addr.line_of 7);
  Alcotest.(check int) "line of word 8" 1 (Addr.line_of 8);
  Alcotest.(check int) "page of word 511" 0 (Addr.page_of 511);
  Alcotest.(check int) "page of word 512" 1 (Addr.page_of 512);
  Alcotest.(check int) "line base round trip" 24 (Addr.line_base (Addr.line_of 27));
  Alcotest.(check int) "offset" 3 (Addr.line_offset 27);
  Alcotest.(check int) "lines of 1 word" 1 (Addr.lines_of_words 1);
  Alcotest.(check int) "lines of 8 words" 1 (Addr.lines_of_words 8);
  Alcotest.(check int) "lines of 9 words" 2 (Addr.lines_of_words 9)

(* ------------------------------------------------------------------ *)
(* Ram                                                                 *)
(* ------------------------------------------------------------------ *)

let test_ram_read_write () =
  let r = Ram.create () in
  Alcotest.(check int) "zero fill" 0 (Ram.read r 123456);
  Ram.write r 123456 99;
  Alcotest.(check int) "read back" 99 (Ram.read r 123456);
  Ram.write r 0 7;
  Alcotest.(check int) "addr 0" 7 (Ram.read r 0)

let test_ram_line_ops () =
  let r = Ram.create () in
  for i = 0 to 7 do
    Ram.write r (80 + i) (i * 10)
  done;
  let snapshot = Ram.read_line r 10 in
  Ram.write r 83 777;
  Ram.write_line r 10 snapshot;
  Alcotest.(check int) "restored" 30 (Ram.read r 83)

let prop_ram_last_write_wins =
  QCheck.Test.make ~name:"ram read sees last write" ~count:200
    QCheck.(list (pair (int_range 0 100000) small_nat))
    (fun writes ->
      let r = Ram.create () in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (a, v) ->
          Ram.write r a v;
          Hashtbl.replace model a v)
        writes;
      Hashtbl.fold (fun a v acc -> acc && Ram.read r a = v) model true)

(* ------------------------------------------------------------------ *)
(* Alloc                                                               *)
(* ------------------------------------------------------------------ *)

let test_alloc_basic () =
  let al = Alloc.create () in
  let a = Alloc.alloc al 10 in
  let b = Alloc.alloc al 10 in
  Alcotest.(check bool) "distinct" true (a <> b);
  Alcotest.(check bool) "no overlap" true (b >= a + 10 || a >= b + 10);
  Alcotest.(check int) "size recorded" 10 (Alloc.size_of al a);
  Alcotest.(check int) "live words" 20 (Alloc.live_words al)

let test_alloc_reuse_after_free () =
  let al = Alloc.create () in
  let a = Alloc.alloc al 16 in
  Alloc.free al a;
  let b = Alloc.alloc al 16 in
  Alcotest.(check int) "freed block reused" a b

let test_alloc_double_free_rejected () =
  let al = Alloc.create () in
  let a = Alloc.alloc al 4 in
  Alloc.free al a;
  Alcotest.check_raises "double free"
    (Invalid_argument "Alloc.free: double free") (fun () -> Alloc.free al a)

let test_alloc_lines_alignment () =
  let al = Alloc.create () in
  let _ = Alloc.alloc al 3 in
  let a = Alloc.alloc_lines al 5 in
  Alcotest.(check int) "line aligned" 0 (a mod Addr.words_per_line);
  Alcotest.(check int) "padded to full line" Addr.words_per_line (Alloc.size_of al a)

let prop_alloc_no_overlap =
  QCheck.Test.make ~name:"allocated blocks never overlap" ~count:100
    QCheck.(list (int_range 1 64))
    (fun sizes ->
      let al = Alloc.create () in
      let blocks = List.map (fun n -> (Alloc.alloc al n, n)) sizes in
      let rec pairwise = function
        | [] -> true
        | (a, na) :: rest ->
            List.for_all (fun (b, nb) -> a + na <= b || b + nb <= a) rest
            && pairwise rest
      in
      pairwise blocks)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "engine+mem"
    [
      ( "pqueue",
        [
          Alcotest.test_case "order" `Quick test_pqueue_order;
          Alcotest.test_case "peek/drop" `Quick test_pqueue_peek_drop;
          Alcotest.test_case "negative time" `Quick
            test_pqueue_negative_time_rejected;
          Alcotest.test_case "vacated slots" `Quick test_pqueue_vacate_liveness;
          q prop_pqueue_sorted;
          q prop_pqueue_policies_agree;
        ] );
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "split" `Quick test_prng_split_independent;
          Alcotest.test_case "uniformity" `Quick test_prng_rough_uniformity;
          Alcotest.test_case "high bits" `Quick test_prng_uses_high_bits;
          q prop_prng_range;
          q prop_prng_buckets_uniform;
        ] );
      ( "engine",
        [
          Alcotest.test_case "single thread" `Quick test_engine_single_thread;
          Alcotest.test_case "interleaving" `Quick test_engine_interleaving_deterministic;
          Alcotest.test_case "spawn_at order" `Quick test_engine_spawn_at_absolute_times;
          Alcotest.test_case "spawn_at clock monotone" `Quick
            test_engine_spawn_at_never_regresses_clock;
          Alcotest.test_case "spawn_at chain" `Quick test_engine_spawn_at_chained_arrivals;
          Alcotest.test_case "spawn_at bad args" `Quick
            test_engine_spawn_at_rejects_bad_args;
          Alcotest.test_case "atomic sections" `Quick test_engine_atomic_between_elapses;
          Alcotest.test_case "shared core" `Quick test_engine_threads_share_core;
          Alcotest.test_case "exception" `Quick test_engine_exception_propagates;
          Alcotest.test_case "elapse zero" `Quick test_engine_elapse_zero;
          Alcotest.test_case "negative elapse" `Quick test_engine_negative_elapse_rejected;
          Alcotest.test_case "clock overflow" `Quick test_engine_elapse_overflow;
          Alcotest.test_case "max time" `Quick test_engine_max_time;
        ] );
      ( "fusion",
        [
          Alcotest.test_case "counters" `Quick test_engine_fusion_counters;
          Alcotest.test_case "heap high water" `Quick test_engine_heap_high_water;
          Alcotest.test_case "lookahead window" `Quick
            test_engine_lookahead_window;
          q prop_fusion_equivalent;
          q prop_pqueue_policy_equivalent;
        ] );
      ("addr", [ Alcotest.test_case "arithmetic" `Quick test_addr_arithmetic ]);
      ( "ram",
        [
          Alcotest.test_case "read/write" `Quick test_ram_read_write;
          Alcotest.test_case "line ops" `Quick test_ram_line_ops;
          q prop_ram_last_write_wins;
        ] );
      ( "alloc",
        [
          Alcotest.test_case "basic" `Quick test_alloc_basic;
          Alcotest.test_case "reuse" `Quick test_alloc_reuse_after_free;
          Alcotest.test_case "double free" `Quick test_alloc_double_free_rejected;
          Alcotest.test_case "line align" `Quick test_alloc_lines_alignment;
          q prop_alloc_no_overlap;
        ] );
    ]
