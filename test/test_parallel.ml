(* Tests for Asf_parallel.Parallel — the deterministic domain pool — and
   the determinism contract it gives the experiment harness (DESIGN.md,
   "The determinism contract").

   The battery pins the contract from the outside: for a spread of
   experiments, seeds and pool widths (including a width far beyond the
   cell count), the reports and the simulated-cycle total must be
   bit-identical to the sequential run — also with a Txcheck checker and
   a Faultline injector installed. The seed sweep then checks that the
   simulated physics keeps its paper shape across seeds rather than on
   one lucky seed. *)

module Parallel = Asf_parallel.Parallel
module Experiments = Asf_harness.Experiments
module Report = Asf_harness.Report
module Trace = Asf_trace.Trace
module Check = Asf_check.Check
module Faults = Asf_faults.Faults
module Tm = Asf_tm_rt.Tm
module Stats = Asf_tm_rt.Stats
module Variant = Asf_core.Variant
module Intset = Asf_intset.Intset

(* Every test leaves the pool back at jobs = 1 even on failure. *)
let with_pool f =
  Fun.protect ~finally:(fun () -> Parallel.set_jobs 1) f

(* ------------------------------------------------------------------ *)
(* Pool unit tests                                                      *)
(* ------------------------------------------------------------------ *)

let test_map_order () =
  with_pool (fun () ->
      let xs = List.init 100 Fun.id in
      let expect = List.map (fun x -> x * x) xs in
      List.iter
        (fun jobs ->
          Alcotest.(check (list int))
            (Printf.sprintf "map ~jobs:%d preserves submission order" jobs)
            expect
            (Parallel.map ~jobs (fun x -> x * x) xs))
        [ 1; 2; 4; 64 ])

let test_jobs_exceed_work () =
  with_pool (fun () ->
      (* More domains than thunks: the pool must clamp, not spawn idle
         domains or lose results. *)
      Alcotest.(check (list int))
        "3 thunks on a 64-wide pool" [ 0; 1; 2 ]
        (Parallel.map ~jobs:64 Fun.id [ 0; 1; 2 ]))

let test_lowest_index_exception () =
  with_pool (fun () ->
      let thunks =
        Array.init 10 (fun i () ->
            if i = 3 then failwith "boom-3"
            else if i = 7 then failwith "boom-7"
            else i)
      in
      List.iter
        (fun jobs ->
          match Parallel.run_thunks ~jobs thunks with
          | _ -> Alcotest.failf "jobs=%d: expected an exception" jobs
          | exception Failure m ->
              (* Same exception a sequential left-to-right run surfaces
                 first, whichever domain hit it. *)
              Alcotest.(check string)
                (Printf.sprintf "jobs=%d re-raises the lowest index" jobs)
                "boom-3" m)
        [ 1; 2; 4 ])

let test_set_jobs_clamp () =
  with_pool (fun () ->
      Parallel.set_jobs 0;
      Alcotest.(check int) "set_jobs 0 clamps to 1" 1 (Parallel.jobs ());
      Parallel.set_jobs (-5);
      Alcotest.(check int) "set_jobs -5 clamps to 1" 1 (Parallel.jobs ());
      Parallel.set_jobs 6;
      Alcotest.(check int) "set_jobs 6 sticks" 6 (Parallel.jobs ()))

(* Chunked-claiming schedule independence: whatever the worker count and
   claim-chunk size (pinned via ?chunk, overriding the guided rule), the
   pool must return exactly the sequential results in submission order. *)
let prop_chunking_schedule_independent =
  QCheck.Test.make
    ~name:"any (jobs, chunk) schedule matches the sequential results"
    ~count:40
    QCheck.(triple (int_range 1 200) (int_range 1 8) (int_range 1 64))
    (fun (n, jobs, chunk) ->
      with_pool (fun () ->
          let xs = Array.init n Fun.id in
          let expect = Array.map (fun x -> (x * 7) + 1) xs in
          let got = Parallel.map_array ~jobs ~chunk (fun x -> (x * 7) + 1) xs in
          got = expect))

(* Fail-fast: once a sibling has failed, workers stop claiming — with
   64 one-claim chunks and a failure on the very first cell, a
   significant tail of the matrix must go unclaimed (each surviving cell
   spins long enough that a non-fail-fast pool would burn all 64). The
   lowest-index exception is still the one re-raised. *)
let test_fail_fast_skips_tail () =
  with_pool (fun () ->
      let n = 64 in
      let executed = Atomic.make 0 in
      let thunks =
        Array.init n (fun i () ->
            Atomic.incr executed;
            if i = 0 then failwith "boom-0"
            else
              for _ = 1 to 200_000 do
                ignore (Sys.opaque_identity i)
              done)
      in
      match Parallel.run_thunks ~jobs:2 ~chunk:1 thunks with
      | _ -> Alcotest.fail "expected boom-0 to escape"
      | exception Failure m ->
          Alcotest.(check string) "lowest-index exception" "boom-0" m;
          let ran = Atomic.get executed in
          if ran > n / 2 then
            Alcotest.failf "fail-fast barely skipped: %d/%d cells ran" ran n)

let test_trace_forces_sequential () =
  with_pool (fun () ->
      (* Tracer rings are ordered by host emission, so cell_map must
         degrade to the calling domain while a tracer is installed. *)
      let tr = Trace.create () in
      Trace.install tr;
      Fun.protect ~finally:Trace.uninstall (fun () ->
          Parallel.set_jobs 4;
          let main = (Domain.self () :> int) in
          let domains =
            Parallel.cell_map (fun _ -> (Domain.self () :> int)) (List.init 8 Fun.id)
          in
          List.iter
            (Alcotest.(check int) "cell ran on the main domain" main)
            domains))

(* Pool-speedup smoke on a multi-cell fixture, measuring the pool itself
   (raw run_thunks over pure-compute cells, no harness). With real cores
   available, --jobs 2 must beat sequential on embarrassingly parallel
   work; on a single-core host (CI containers, where Domain.
   recommended_domain_count() = 1) winning is physically impossible, so
   the assertion degrades to a bound on the pool's own overhead. *)
let test_pool_speedup_smoke () =
  with_pool (fun () ->
      let cells = 8 in
      let work i =
        let acc = ref i in
        for k = 1 to 2_000_000 do
          acc := (!acc + (k * k)) lxor (!acc lsr 3)
        done;
        !acc
      in
      let time jobs =
        let thunks = Array.init cells (fun i () -> work i) in
        let t0 = Unix.gettimeofday () in
        let r = Parallel.run_thunks ~jobs thunks in
        (Unix.gettimeofday () -. t0, r)
      in
      ignore (time 1 : float * int array) (* warm-up *);
      let seq, rs = time 1 in
      let par, rp = time 2 in
      Alcotest.(check bool) "parallel results identical" true (rs = rp);
      if Parallel.available () >= 2 then begin
        if par >= seq then
          Alcotest.failf "--jobs 2 did not win: %.3fs vs %.3fs sequential" par
            seq
      end
      else if par > 2.0 *. seq then
        Alcotest.failf
          "single-core pool overhead out of bounds: %.3fs vs %.3fs sequential"
          par seq)

(* ------------------------------------------------------------------ *)
(* Determinism battery                                                  *)
(* ------------------------------------------------------------------ *)

let get_exp id =
  match Experiments.find id with
  | Some e -> e
  | None -> Alcotest.failf "unknown experiment %s" id

(* One cold (memoisation dropped) quick run at the given pool width,
   rendered to CSV — the same bytes the harness would write to disk. *)
let run_exp e ~seed ~jobs =
  Experiments.clear_cache ();
  Parallel.set_jobs jobs;
  Parallel.reset_sim_cycles ();
  let reports = e.Experiments.run ~quick:true ~seed in
  let csv = String.concat "\n" (List.map Report.to_csv reports) in
  (csv, Parallel.sim_cycles ())

let battery_ids = [ "abl-wins"; "abl-socket"; "abl-backoff"; "fig3"; "tab1" ]

let test_determinism_battery () =
  with_pool (fun () ->
      List.iter
        (fun id ->
          let e = get_exp id in
          List.iter
            (fun seed ->
              let base_csv, base_cycles = run_exp e ~seed ~jobs:1 in
              Alcotest.(check bool)
                (Printf.sprintf "%s seed=%d produced output" id seed)
                true
                (String.length base_csv > 0);
              (* 64 exceeds every quick experiment's cell count. *)
              List.iter
                (fun jobs ->
                  let csv, cycles = run_exp e ~seed ~jobs in
                  Alcotest.(check string)
                    (Printf.sprintf "%s seed=%d jobs=%d CSV bit-identical" id
                       seed jobs)
                    base_csv csv;
                  Alcotest.(check int)
                    (Printf.sprintf "%s seed=%d jobs=%d same simulated cycles"
                       id seed jobs)
                    base_cycles cycles)
                [ 2; 4; 64 ])
            [ 1; 7 ])
        battery_ids)

let test_determinism_fig6 () =
  (* fig6 exercises the STAMP path and the calibration-stamp prefetch. *)
  with_pool (fun () ->
      let e = get_exp "fig6" in
      let base_csv, base_cycles = run_exp e ~seed:1 ~jobs:1 in
      let csv, cycles = run_exp e ~seed:1 ~jobs:3 in
      Alcotest.(check string) "fig6 jobs=3 CSV bit-identical" base_csv csv;
      Alcotest.(check int) "fig6 jobs=3 same simulated cycles" base_cycles
        cycles)

(* The contract must also hold with observability installed: per-cell
   checkers / injectors are derived, then merged in cell order, so the
   findings table and the injection census cannot depend on the pool
   width. *)
let run_checked ~jobs =
  Experiments.clear_cache ();
  Parallel.set_jobs jobs;
  let chk = Check.create ~parts:[ Check.Isolation; Check.Serial; Check.Lint ] () in
  let plan =
    match Faults.plan_of_spec "jitter" with
    | Ok p -> p
    | Error m -> Alcotest.failf "faults plan: %s" m
  in
  let fl = Faults.create ~seed:42 plan in
  Check.install chk;
  Faults.install fl;
  Fun.protect
    ~finally:(fun () ->
      Check.uninstall ();
      Faults.uninstall ())
    (fun () ->
      let e = get_exp "abl-wins" in
      let reports = e.Experiments.run ~quick:true ~seed:1 in
      let csv = String.concat "\n" (List.map Report.to_csv reports) in
      let findings = Report.to_csv (Report.of_check ~id:"chk" chk) in
      (csv, findings, Faults.counts fl))

let test_determinism_under_check_faults () =
  with_pool (fun () ->
      let base_csv, base_findings, base_census = run_checked ~jobs:1 in
      Alcotest.(check bool) "census not empty under jitter plan" true
        (List.exists (fun (_, n) -> n > 0) base_census);
      List.iter
        (fun jobs ->
          let csv, findings, census = run_checked ~jobs in
          Alcotest.(check string)
            (Printf.sprintf "jobs=%d reports identical under check+faults" jobs)
            base_csv csv;
          Alcotest.(check string)
            (Printf.sprintf "jobs=%d findings table identical" jobs)
            base_findings findings;
          Alcotest.(check (list (pair string int)))
            (Printf.sprintf "jobs=%d injection census identical" jobs)
            base_census census)
        [ 2; 5 ])

(* ------------------------------------------------------------------ *)
(* Seed-sweep sanity                                                    *)
(* ------------------------------------------------------------------ *)

let sweep_seeds = [ 1; 2; 3; 4; 5 ]

let tm_cfg mode ~threads ~seed =
  { (Tm.default_config mode ~n_cores:threads) with Tm.seed }

let spec_rate (r : Intset.result) =
  let c = Stats.commits r.Intset.stats
  and s = Stats.serial_commits r.Intset.stats in
  float_of_int (c - s) /. float_of_int (max 1 c)

(* The long linked list (~510 nodes walked per lookup) blows the LLB-8
   capacity on nearly every attempt, forcing serial execution; LLB-256
   commits a large fraction speculatively (paper Fig. 5/8 shape). *)
let test_sweep_capacity_spec_rate () =
  List.iter
    (fun seed ->
      let c =
        { (Intset.default_cfg Intset.Linked_list) with
          Intset.range = 1020;
          init_size = Some 510;
          update_pct = 20;
          txns_per_thread = 150;
        }
      in
      let run variant =
        Intset.run (tm_cfg (Tm.Asf_mode variant) ~threads:8 ~seed) ~threads:8 c
      in
      let r8 = spec_rate (run Variant.llb8)
      and r256 = spec_rate (run Variant.llb256) in
      if not (r256 > r8 +. 0.1) then
        Alcotest.failf
          "seed %d: LLB-256 speculative commit rate %.3f not well above \
           LLB-8's %.3f on the large-read-set list"
          seed r256 r8;
      if r8 > 0.2 then
        Alcotest.failf
          "seed %d: LLB-8 speculative commit rate %.3f — expected the large \
           read set to exceed 8 lines almost always"
          seed r8)
    sweep_seeds

(* Same LLB, small footprint: the hash set's probe touches a handful of
   lines, so LLB-8 stops serialising (capacity, not contention, was the
   limiter above). *)
let test_sweep_capacity_footprint () =
  List.iter
    (fun seed ->
      let hs =
        let c =
          { (Intset.default_cfg Intset.Hash_set) with
            Intset.range = 256;
            update_pct = 20;
            txns_per_thread = 300;
          }
        in
        Intset.run (tm_cfg (Tm.Asf_mode Variant.llb8) ~threads:8 ~seed) ~threads:8 c
      in
      let r = spec_rate hs in
      if r < 0.9 then
        Alcotest.failf
          "seed %d: LLB-8 speculative commit rate %.3f on the small-footprint \
           hash set — capacity should not bite here"
          seed r)
    sweep_seeds

(* Contention shape: a read-only workload has nothing to conflict on;
   turning every transaction into an update must create aborts. *)
let test_sweep_contention_aborts () =
  List.iter
    (fun seed ->
      let run upd =
        let c =
          { (Intset.default_cfg Intset.Hash_set) with
            Intset.range = 256;
            update_pct = upd;
            txns_per_thread = 300;
          }
        in
        Intset.run
          (tm_cfg (Tm.Asf_mode Variant.llb256) ~threads:8 ~seed)
          ~threads:8 c
      in
      let ab upd = Stats.total_aborts (run upd).Intset.stats in
      let a0 = ab 0 and a100 = ab 100 in
      if a0 <> 0 then
        Alcotest.failf "seed %d: %d aborts on a read-only workload" seed a0;
      if a100 <= a0 then
        Alcotest.failf
          "seed %d: 100%% updates produced %d aborts, read-only %d — \
           contention should create aborts"
          seed a100 a0)
    sweep_seeds

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map preserves order" `Quick test_map_order;
          Alcotest.test_case "jobs exceed work" `Quick test_jobs_exceed_work;
          Alcotest.test_case "lowest-index exception" `Quick
            test_lowest_index_exception;
          Alcotest.test_case "set_jobs clamps" `Quick test_set_jobs_clamp;
          Alcotest.test_case "fail-fast skips the tail" `Quick
            test_fail_fast_skips_tail;
          Alcotest.test_case "trace forces sequential" `Quick
            test_trace_forces_sequential;
          QCheck_alcotest.to_alcotest prop_chunking_schedule_independent;
          Alcotest.test_case "pool speedup smoke" `Slow test_pool_speedup_smoke;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "battery: experiments x seeds x jobs" `Slow
            test_determinism_battery;
          Alcotest.test_case "fig6 (stamp prefetch)" `Slow
            test_determinism_fig6;
          Alcotest.test_case "under checker and fault injection" `Slow
            test_determinism_under_check_faults;
        ] );
      ( "seed-sweep",
        [
          Alcotest.test_case "capacity: spec commit rate by LLB size" `Slow
            test_sweep_capacity_spec_rate;
          Alcotest.test_case "capacity: footprint releases LLB-8" `Slow
            test_sweep_capacity_footprint;
          Alcotest.test_case "contention: updates create aborts" `Slow
            test_sweep_contention_aborts;
        ] );
    ]
