(* Executable-specification test for a single ASF region: random
   instruction sequences (speculative and plain accesses, watches,
   releases, ending in COMMIT or ABORT) are run both on the hardware
   model and on a direct transcription of the specification's memory
   semantics; every load value and the final memory image must agree.

   The key semantics exercised:
   - speculative stores are undone by ABORT, line-granular, restoring the
     line image captured when it first joined the write set;
   - plain (selectively annotated) stores are NOT undone by ABORT;
   - a plain store to a speculatively-written line faults and does not
     execute;
   - WATCHW joins the write set (so a later plain store to it faults);
   - RELEASE drops read-only lines but never written ones. *)

module Engine = Asf_engine.Engine
module Params = Asf_machine.Params
module Addr = Asf_mem.Addr
module Memsys = Asf_cache.Memsys
module Variant = Asf_core.Variant
module Asf = Asf_core.Asf

type op =
  | Lock_load of int
  | Lock_store of int * int
  | Plain_load of int
  | Plain_store of int * int
  | Watchr of int
  | Watchw of int
  | Release of int

let n_words = 128 (* 16 lines *)

let op_gen =
  QCheck.Gen.(
    let addr = int_range 0 (n_words - 1) in
    let value = int_range 1 1000 in
    oneof
      [
        map (fun a -> Lock_load a) addr;
        map2 (fun a v -> Lock_store (a, v)) addr value;
        map (fun a -> Plain_load a) addr;
        map2 (fun a v -> Plain_store (a, v)) addr value;
        map (fun a -> Watchr a) addr;
        map (fun a -> Watchw a) addr;
        map (fun a -> Release a) addr;
      ])

let scenario_gen = QCheck.Gen.(pair (list_size (int_range 1 60) op_gen) bool)

let print_scenario (ops, commit) =
  let op_str = function
    | Lock_load a -> Printf.sprintf "LL %d" a
    | Lock_store (a, v) -> Printf.sprintf "LS %d<-%d" a v
    | Plain_load a -> Printf.sprintf "PL %d" a
    | Plain_store (a, v) -> Printf.sprintf "PS %d<-%d" a v
    | Watchr a -> Printf.sprintf "WR %d" a
    | Watchw a -> Printf.sprintf "WW %d" a
    | Release a -> Printf.sprintf "REL %d" a
  in
  String.concat "; " (List.map op_str ops)
  ^ if commit then " COMMIT" else " ABORT"

(* The specification model. *)
module Model = struct
  type t = {
    mem : int array;
    backups : (int, int array) Hashtbl.t;  (* line -> image at first write *)
    mutable written : int list;
  }

  let create initial =
    { mem = Array.copy initial; backups = Hashtbl.create 8; written = [] }

  let line_written t line = List.mem line t.written

  let join_write_set t line =
    if not (line_written t line) then begin
      Hashtbl.replace t.backups line
        (Array.sub t.mem (Addr.line_base line) Addr.words_per_line);
      t.written <- line :: t.written
    end

  (* Returns the value a load observes, or the store/fault outcome. *)
  let apply t = function
    | Lock_load a | Plain_load a -> `Value t.mem.(a)
    | Lock_store (a, v) ->
        join_write_set t (Addr.line_of a);
        t.mem.(a) <- v;
        `Stored
    | Plain_store (a, v) ->
        if line_written t (Addr.line_of a) then `Fault
        else begin
          t.mem.(a) <- v;
          `Stored
        end
    | Watchr _ -> `Stored
    | Watchw a ->
        join_write_set t (Addr.line_of a);
        `Stored
    | Release _ -> `Stored

  let finish t ~commit =
    if not commit then
      Hashtbl.iter
        (fun line image ->
          Array.blit image 0 t.mem (Addr.line_base line) Addr.words_per_line)
        t.backups;
    t.mem
end

let run_hardware initial ops ~commit =
  let e = Engine.create ~n_cores:1 () in
  let m = Memsys.create Params.barcelona e in
  let a = Asf.create m Variant.llb256 in
  Array.iteri (fun i v -> Memsys.poke m i v) initial;
  let observations = ref [] in
  let observe x = observations := x :: !observations in
  Engine.spawn e ~core:0 (fun () ->
      Asf.speculate a ~core:0;
      List.iter
        (fun op ->
          match op with
          | Lock_load addr -> observe (`Value (Asf.lock_load a ~core:0 addr))
          | Lock_store (addr, v) ->
              Asf.lock_store a ~core:0 addr v;
              observe `Stored
          | Plain_load addr -> observe (`Value (Asf.plain_load a ~core:0 addr))
          | Plain_store (addr, v) -> (
              try
                Asf.plain_store a ~core:0 addr v;
                observe `Stored
              with Asf.Colocation_fault _ -> observe `Fault)
          | Watchr addr ->
              Asf.watchr a ~core:0 addr;
              observe `Stored
          | Watchw addr ->
              Asf.watchw a ~core:0 addr;
              observe `Stored
          | Release addr ->
              Asf.release a ~core:0 addr;
              observe `Stored)
        ops;
      if commit then Asf.commit a ~core:0
      else try Asf.abort_explicit a ~core:0 ~code:7 with Asf.Aborted _ -> ());
  Engine.run e;
  let final = Array.init n_words (fun i -> Memsys.peek m i) in
  (List.rev !observations, final)

let prop_region_matches_model =
  QCheck.Test.make ~name:"ASF region semantics match the specification model"
    ~count:300
    (QCheck.make ~print:print_scenario scenario_gen)
    (fun (ops, commit) ->
      let initial = Array.init n_words (fun i -> 10_000 + i) in
      let model = Model.create initial in
      let expected_obs = List.map (Model.apply model) ops in
      let expected_mem = Model.finish model ~commit in
      let got_obs, got_mem = run_hardware initial ops ~commit in
      if got_obs <> expected_obs then
        QCheck.Test.fail_report "observation mismatch"
      else if got_mem <> expected_mem then
        QCheck.Test.fail_report "final memory mismatch"
      else true)

let () =
  Alcotest.run "asf-model"
    [ ("spec", [ QCheck_alcotest.to_alcotest prop_region_matches_model ]) ]
