(* Tests for the open-system serving harness: per-seed determinism (with
   and without fault injection), the overload acceptance scenario
   (explicit shedding + timeouts, bounded queues, no livelock), the
   deadline wait bound and the outcome-partition invariant as QCheck
   properties, the governor state machine, and knee detection. *)

module Params = Asf_machine.Params
module Variant = Asf_core.Variant
module Abort = Asf_core.Abort
module Stats = Asf_tm_rt.Stats
module Tm = Asf_tm_rt.Tm
module Faults = Asf_faults.Faults
module Serve = Asf_serve.Serve

let tm_cfg ?(seed = 1) ?(n_cores = 4) () =
  { (Tm.default_config (Tm.Asf_mode Variant.llb256) ~n_cores) with Tm.seed }

let us_cycles n =
  int_of_float (float_of_int n *. Params.barcelona.Params.ghz *. 1000.)

(* Derive the Poisson gap that offers [mult] x the measured closed-loop
   capacity — the same derivation the sweep and the CLI use. *)
let overloaded tm ~threads cfg mult =
  let capacity = Serve.measure_capacity tm ~threads cfg in
  let cycles_per_ms = 1.0 /. Params.cycles_to_ms tm.Tm.params 1 in
  let mean_gap =
    max 1 (int_of_float (cycles_per_ms /. Float.max 1e-9 (capacity *. mult)))
  in
  { cfg with Serve.arrival = Serve.Poisson { mean_gap } }

(* Everything a run reports except the raw Stats.t, as one comparable
   value: if any of this drifts between same-seed runs, determinism is
   broken. *)
let signature (r : Serve.result) =
  ( ( r.Serve.r_completed,
      r.Serve.r_shed,
      r.Serve.r_timeout,
      r.Serve.r_late,
      r.Serve.r_retries,
      Array.to_list r.Serve.r_retry_hist ),
    ( r.Serve.r_p50,
      r.Serve.r_p90,
      r.Serve.r_p99,
      r.Serve.r_p999,
      r.Serve.r_max_lat,
      r.Serve.r_makespan ),
    ( r.Serve.r_timeout_aborts,
      r.Serve.r_serial_served,
      r.Serve.r_max_depth,
      r.Serve.r_max_dl_wait,
      r.Serve.r_final_gov,
      Stats.commits r.Serve.r_stats ) )

let partition_holds (r : Serve.result) =
  r.Serve.r_completed + r.Serve.r_shed + r.Serve.r_timeout = r.Serve.r_arrivals

(* ------------------------------------------------------------------ *)
(* Determinism                                                          *)
(* ------------------------------------------------------------------ *)

let small_overload ?(service = Serve.Kv Serve.E) ?(requests = 500) () =
  {
    (Serve.default_cfg service) with
    Serve.requests;
    queue_cap = 8;
    deadline = Some (us_cycles 2);
  }

let run_once ~seed =
  let tm = tm_cfg ~seed () in
  let cfg = overloaded tm ~threads:4 (small_overload ()) 2.5 in
  Serve.run tm ~threads:4 cfg

let test_same_seed_reproduces () =
  let a = run_once ~seed:11 and b = run_once ~seed:11 in
  Alcotest.(check bool) "identical signatures" true (signature a = signature b)

let test_different_seed_differs () =
  let a = run_once ~seed:11 and b = run_once ~seed:12 in
  Alcotest.(check bool) "different seeds differ" true (signature a <> signature b)

let test_deterministic_under_faults () =
  let plan =
    match Faults.plan_of_spec "storm" with
    | Ok p -> p
    | Error m -> Alcotest.fail m
  in
  let go () =
    let fl = Faults.create ~seed:7 plan in
    Faults.install fl;
    Fun.protect ~finally:Faults.uninstall (fun () -> run_once ~seed:11)
  in
  let a = go () and b = go () in
  Alcotest.(check bool) "identical under storm" true (signature a = signature b);
  Alcotest.(check bool) "partition under storm" true (partition_holds a)

(* ------------------------------------------------------------------ *)
(* Overload acceptance                                                  *)
(* ------------------------------------------------------------------ *)

(* The PR's acceptance scenario: sustained arrivals at 2.5x measured
   capacity must end with explicit shed and timeout censuses, queues
   bounded by the admission cap, the service invariant intact — and no
   [Tm.Livelock] (the run completing at all asserts that). *)
let test_overload_acceptance () =
  let tm = tm_cfg ~seed:3 () in
  let base = small_overload ~requests:1200 () in
  let r = Serve.run tm ~threads:4 (overloaded tm ~threads:4 base 2.5) in
  Alcotest.(check bool) "partition" true (partition_holds r);
  Alcotest.(check bool) "requests were shed" true (r.Serve.r_shed > 0);
  Alcotest.(check bool) "requests timed out" true (r.Serve.r_timeout > 0);
  Alcotest.(check bool) "some requests completed" true (r.Serve.r_completed > 0);
  Alcotest.(check bool) "queue depth bounded" true
    (r.Serve.r_max_depth <= base.Serve.queue_cap);
  Alcotest.(check bool) "invariant" true r.Serve.r_invariant_ok;
  Alcotest.(check bool) "overload cannot beat capacity" true
    (r.Serve.r_achieved <= r.Serve.r_offered)

let test_underload_is_clean () =
  (* At 0.5x capacity nothing should be shed and (with these generous
     deadlines) nothing should time out. *)
  let tm = tm_cfg ~seed:3 () in
  let base =
    {
      (Serve.default_cfg (Serve.Kv Serve.A)) with
      Serve.requests = 500;
      queue_cap = 64;
      deadline = Some (us_cycles 50);
    }
  in
  let r = Serve.run tm ~threads:4 (overloaded tm ~threads:4 base 0.5) in
  Alcotest.(check int) "nothing shed" 0 r.Serve.r_shed;
  Alcotest.(check int) "nothing timed out" 0 r.Serve.r_timeout;
  Alcotest.(check int) "all completed" 500 r.Serve.r_completed;
  Alcotest.(check bool) "invariant" true r.Serve.r_invariant_ok

let all_services =
  [
    Serve.Kv Serve.A; Serve.Kv Serve.B; Serve.Kv Serve.C; Serve.Kv Serve.D;
    Serve.Kv Serve.E; Serve.Kv Serve.F; Serve.Ledger;
  ]

let test_invariants_all_services () =
  List.iter
    (fun service ->
      let tm = tm_cfg ~seed:5 () in
      let base = small_overload ~service ~requests:400 () in
      let r = Serve.run tm ~threads:4 (overloaded tm ~threads:4 base 1.5) in
      let name = Serve.service_name service in
      Alcotest.(check bool) (name ^ ": partition") true (partition_holds r);
      Alcotest.(check bool)
        (name ^ ": invariant (" ^ r.Serve.r_invariant_msg ^ ")")
        true r.Serve.r_invariant_ok)
    all_services

let test_bursty_and_ramp_arrivals () =
  List.iter
    (fun (name, arrival) ->
      let tm = tm_cfg ~seed:9 () in
      let cfg =
        { (small_overload ~requests:400 ()) with Serve.arrival }
      in
      let r = Serve.run tm ~threads:4 cfg in
      let r' = Serve.run (tm_cfg ~seed:9 ()) ~threads:4 cfg in
      Alcotest.(check bool) (name ^ ": partition") true (partition_holds r);
      Alcotest.(check bool) (name ^ ": invariant") true r.Serve.r_invariant_ok;
      Alcotest.(check bool)
        (name ^ ": deterministic") true
        (signature r = signature r'))
    [
      ( "bursty",
        Serve.Bursty
          { mean_gap = 1200; burst_gap = 60; on_window = 30_000; off_window = 30_000 } );
      ("ramp", Serve.Ramp { low_gap = 80; high_gap = 1200; period = 80_000 });
    ]

(* Under the livelock plan (permanent spurious aborts + a hanging
   serial-lock holder) with no deadlines to bail requests out, the run
   must be ended by the progress watchdog, not hang. *)
let test_livelock_plan_still_diagnosed () =
  let plan =
    match Faults.plan_of_spec "livelock" with
    | Ok p -> p
    | Error m -> Alcotest.fail m
  in
  let fl = Faults.create ~seed:1 plan in
  Faults.install fl;
  Fun.protect ~finally:Faults.uninstall (fun () ->
      let tm =
        { (tm_cfg ~seed:1 ~n_cores:2 ()) with Tm.watchdog_window = 200_000 }
      in
      let cfg =
        {
          (Serve.default_cfg (Serve.Kv Serve.C)) with
          Serve.requests = 50;
          queue_cap = 50;
          deadline = None;
          governor = false;
        }
      in
      match Serve.run tm ~threads:2 cfg with
      | _ -> Alcotest.fail "livelock plan completed without a diagnosis"
      | exception Tm.Livelock d ->
          Alcotest.(check bool) "diagnosis has cores" true (d.Tm.diag_cores <> []))

(* ------------------------------------------------------------------ *)
(* Properties                                                           *)
(* ------------------------------------------------------------------ *)

(* The deadline property: a request with relative deadline D never
   accumulates more than D + one serial-spin window of backoff + spin
   wait — enforcement points clamp every wait to the remaining budget,
   and only the last serial-lock poll can overshoot. *)
let prop_deadline_bounds_wait =
  QCheck.Test.make ~name:"serve: cumulative wait bounded by deadline + tail"
    ~count:15
    (QCheck.make QCheck.Gen.(pair (int_range 0 10_000) (int_range 1 6)))
    (fun (seed, dl_us) ->
      let tm = tm_cfg ~seed () in
      let deadline = us_cycles dl_us in
      let base =
        { (small_overload ~requests:300 ()) with Serve.deadline = Some deadline }
      in
      let r = Serve.run tm ~threads:4 (overloaded tm ~threads:4 base 2.0) in
      partition_holds r
      && r.Serve.r_max_dl_wait <= deadline + Tm.serial_spin_window max_int)

(* The partition invariant under every named fault plan that lets runs
   finish (livelock is the deliberate exception, tested above): arrivals
   are exactly completed + shed + timed out, never lost, never double
   counted. The lostupdate plan is also excluded: it deliberately breaks
   correctness (dropped transactional stores), so service invariants do
   not hold under it — that plan exists for the Txlin negative fixtures
   (test_txlin.ml, scripts/check.sh). *)
let finishing_plans =
  List.filter
    (fun n -> n <> "livelock" && n <> "lostupdate")
    Faults.plan_names

let prop_partition_under_faults =
  QCheck.Test.make ~name:"serve: outcome partition under every fault plan"
    ~count:(2 * List.length finishing_plans)
    (QCheck.make
       QCheck.Gen.(
         pair (int_range 0 10_000) (int_range 0 (List.length finishing_plans - 1))))
    (fun (seed, pi) ->
      let plan =
        match Faults.plan_of_spec (List.nth finishing_plans pi) with
        | Ok p -> p
        | Error m -> failwith m
      in
      let r =
        if Faults.plan_is_none plan then run_once ~seed
        else begin
          let fl = Faults.create ~seed:(seed + 1) plan in
          Faults.install fl;
          Fun.protect ~finally:Faults.uninstall (fun () -> run_once ~seed)
        end
      in
      partition_holds r && r.Serve.r_invariant_ok)

(* ------------------------------------------------------------------ *)
(* Governor                                                             *)
(* ------------------------------------------------------------------ *)

let gov_state = Alcotest.testable
    (fun fmt s -> Format.pp_print_string fmt (Serve.gov_state_name s))
    ( = )

let test_governor_ladder () =
  let g = Serve.governor_create ~streak:2 ~zero_window:100 ~hi:10 ~lo:2 () in
  Alcotest.check gov_state "starts normal" Serve.Normal (Serve.governor_state g);
  (* One sample at the high watermark is not yet sustained growth. *)
  Serve.governor_step g ~now:0 ~depth:10 ~commits:0;
  Alcotest.check gov_state "streak of 1" Serve.Normal (Serve.governor_state g);
  Serve.governor_step g ~now:10 ~depth:11 ~commits:0;
  Alcotest.check gov_state "sustained growth sheds" Serve.Shedding
    (Serve.governor_state g);
  (* Still backed up and no commit for zero_window cycles: serialize. *)
  Serve.governor_step g ~now:150 ~depth:11 ~commits:0;
  Alcotest.check gov_state "zero commits serialize" Serve.Serial
    (Serve.governor_state g);
  (* Draining to the low watermark recovers. *)
  Serve.governor_step g ~now:200 ~depth:1 ~commits:0;
  Alcotest.check gov_state "drain recovers" Serve.Normal (Serve.governor_state g);
  Alcotest.(check (triple int int int))
    "census counts each transition" (1, 1, 1) (Serve.governor_census g)

let test_governor_commits_prevent_serial () =
  let g = Serve.governor_create ~streak:1 ~zero_window:100 ~hi:10 ~lo:2 () in
  Serve.governor_step g ~now:0 ~depth:10 ~commits:5;
  Alcotest.check gov_state "shedding" Serve.Shedding (Serve.governor_state g);
  (* Commits keep arriving: backed up but making progress, so the
     governor must not escalate to Serial. *)
  Serve.governor_step g ~now:150 ~depth:11 ~commits:9;
  Serve.governor_step g ~now:300 ~depth:11 ~commits:14;
  Alcotest.check gov_state "still only shedding" Serve.Shedding
    (Serve.governor_state g);
  let _, to_serial, _ = Serve.governor_census g in
  Alcotest.(check int) "never serialized" 0 to_serial

let test_governor_two_burst_reescalation () =
  let g = Serve.governor_create ~streak:2 ~zero_window:100 ~hi:10 ~lo:2 () in
  (* First burst: sustained growth sheds, then starvation serializes. *)
  Serve.governor_step g ~now:0 ~depth:10 ~commits:0;
  Serve.governor_step g ~now:10 ~depth:11 ~commits:0;
  Alcotest.check gov_state "burst 1 sheds" Serve.Shedding
    (Serve.governor_state g);
  Serve.governor_step g ~now:150 ~depth:11 ~commits:0;
  Alcotest.check gov_state "burst 1 serializes" Serve.Serial
    (Serve.governor_state g);
  (* Quiet period: the queue drains and the governor fully recovers. *)
  Serve.governor_step g ~now:200 ~depth:1 ~commits:5;
  Alcotest.check gov_state "quiet period recovers" Serve.Normal
    (Serve.governor_state g);
  (* Second burst: recovery must not leave stale streak/commit state
     behind — the same pressure pattern re-escalates the same way. *)
  Serve.governor_step g ~now:300 ~depth:10 ~commits:5;
  Alcotest.check gov_state "burst 2 needs a fresh streak" Serve.Normal
    (Serve.governor_state g);
  Serve.governor_step g ~now:310 ~depth:11 ~commits:5;
  Alcotest.check gov_state "burst 2 sheds again" Serve.Shedding
    (Serve.governor_state g);
  Serve.governor_step g ~now:450 ~depth:11 ~commits:5;
  Alcotest.check gov_state "burst 2 serializes again" Serve.Serial
    (Serve.governor_state g);
  Serve.governor_step g ~now:500 ~depth:0 ~commits:9;
  Alcotest.check gov_state "burst 2 recovers again" Serve.Normal
    (Serve.governor_state g);
  Alcotest.(check (triple int int int))
    "census counts both rounds" (2, 2, 2) (Serve.governor_census g)

let test_governor_streak_resets_on_drain () =
  let g = Serve.governor_create ~streak:3 ~zero_window:1000 ~hi:10 ~lo:2 () in
  Serve.governor_step g ~now:0 ~depth:10 ~commits:1;
  Serve.governor_step g ~now:10 ~depth:12 ~commits:2;
  (* Depth fell: not sustained growth, streak resets. *)
  Serve.governor_step g ~now:20 ~depth:5 ~commits:3;
  Serve.governor_step g ~now:30 ~depth:10 ~commits:4;
  Serve.governor_step g ~now:40 ~depth:11 ~commits:5;
  Alcotest.check gov_state "no spurious shed" Serve.Normal (Serve.governor_state g)

(* ------------------------------------------------------------------ *)
(* Knee detection                                                       *)
(* ------------------------------------------------------------------ *)

let knee = Alcotest.(option (float 1e-9))

let test_knee_point () =
  Alcotest.check knee "no saturation -> no knee" None
    (Serve.knee_point [ (1.0, 1.0); (2.0, 1.95); (3.0, 2.9) ]);
  Alcotest.check knee "largest efficient offered load"
    (Some 2.0)
    (Serve.knee_point [ (1.0, 1.0); (2.0, 1.9); (3.0, 2.0) ]);
  Alcotest.check knee "saturated from the first point" (Some 0.0)
    (Serve.knee_point [ (1.0, 0.5); (2.0, 0.6) ]);
  Alcotest.check knee "threshold respected" (Some 1.0)
    (Serve.knee_point ~threshold:0.99 [ (1.0, 1.0); (2.0, 1.9) ])

let test_closed_probe () =
  let tm = tm_cfg ~seed:2 () in
  let base = { (Serve.default_cfg (Serve.Kv Serve.B)) with Serve.requests = 300 } in
  let capacity = Serve.measure_capacity tm ~threads:4 base in
  Alcotest.(check bool) "positive capacity" true (capacity > 0.0);
  (* The probe itself must neither shed nor time out: every request is
     admitted (cap = population) and deadlines are disabled. *)
  let r =
    Serve.run tm ~threads:4
      { base with Serve.arrival = Serve.Closed; deadline = None; governor = false }
  in
  Alcotest.(check int) "closed: nothing shed" 0 r.Serve.r_shed;
  Alcotest.(check int) "closed: nothing timed out" 0 r.Serve.r_timeout;
  Alcotest.(check int) "closed: all served" 300 r.Serve.r_completed

let test_sweep_shape () =
  let tm = tm_cfg ~seed:4 () in
  let base = { (small_overload ~requests:300 ()) with Serve.deadline = None } in
  let results, knee_opt = Serve.sweep tm ~threads:4 base ~mults:[ 0.5; 2.5 ] in
  Alcotest.(check int) "one result per multiplier" 2 (List.length results);
  List.iter
    (fun (_, r) ->
      Alcotest.(check bool) "partition" true (partition_holds r))
    results;
  (* 2.5x capacity cannot be served at 90% efficiency, so the knee must
     be visible and at most the low point's offered load. *)
  match knee_opt with
  | None -> Alcotest.fail "no knee detected at 2.5x overload"
  | Some k ->
      let lo = List.hd results |> snd in
      Alcotest.(check bool) "knee at/below the efficient point" true
        (k <= lo.Serve.r_offered +. 1e-9)

let () =
  Alcotest.run "serve"
    [
      ( "determinism",
        [
          Alcotest.test_case "same seed reproduces" `Quick test_same_seed_reproduces;
          Alcotest.test_case "different seed differs" `Quick
            test_different_seed_differs;
          Alcotest.test_case "same seed under storm" `Quick
            test_deterministic_under_faults;
        ] );
      ( "overload",
        [
          Alcotest.test_case "2.5x acceptance" `Quick test_overload_acceptance;
          Alcotest.test_case "0.5x clean" `Quick test_underload_is_clean;
          Alcotest.test_case "all services" `Quick test_invariants_all_services;
          Alcotest.test_case "bursty + ramp" `Quick test_bursty_and_ramp_arrivals;
          Alcotest.test_case "livelock plan diagnosed" `Quick
            test_livelock_plan_still_diagnosed;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_deadline_bounds_wait;
          QCheck_alcotest.to_alcotest prop_partition_under_faults;
        ] );
      ( "governor",
        [
          Alcotest.test_case "ladder" `Quick test_governor_ladder;
          Alcotest.test_case "commits prevent serial" `Quick
            test_governor_commits_prevent_serial;
          Alcotest.test_case "streak resets" `Quick
            test_governor_streak_resets_on_drain;
          Alcotest.test_case "two-burst re-escalation" `Quick
            test_governor_two_burst_reescalation;
        ] );
      ( "capacity",
        [
          Alcotest.test_case "knee point" `Quick test_knee_point;
          Alcotest.test_case "closed probe" `Quick test_closed_probe;
          Alcotest.test_case "sweep shape" `Quick test_sweep_shape;
        ] );
    ]
