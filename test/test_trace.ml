(* Tests for the transaction-level tracing subsystem: ring-buffer bounds,
   event filtering, per-core timestamp monotonicity, trace-on/off
   equivalence of experiment numbers, and sink well-formedness. *)

module Engine = Asf_engine.Engine
module Addr = Asf_mem.Addr
module Variant = Asf_core.Variant
module Stats = Asf_tm_rt.Stats
module Tm = Asf_tm_rt.Tm
module Intset = Asf_intset.Intset
module Trace = Asf_trace.Trace

(* ------------------------------------------------------------------ *)
(* Unit: rings, filters, attempt ids                                    *)
(* ------------------------------------------------------------------ *)

let test_ring_bounded () =
  let tr = Trace.create ~capacity_per_core:4 () in
  for i = 1 to 10 do
    Trace.emit tr ~core:0 ~cycle:i Trace.Tx_begin
  done;
  Alcotest.(check int) "ring keeps newest 4" 4 (List.length (Trace.events tr));
  Alcotest.(check int) "6 dropped" 6 (Trace.dropped tr);
  (* Counts survive the drops. *)
  Alcotest.(check int) "counts unaffected" 10 (List.assoc "Tx_begin" (Trace.counts tr));
  (* The retained events are the newest ones, still in order. *)
  let cycles = List.map (fun e -> e.Trace.cycle) (Trace.events tr) in
  Alcotest.(check (list int)) "newest retained" [ 7; 8; 9; 10 ] cycles

let test_filter () =
  let tr = Trace.create ~filter:[ "abort" ] () in
  Trace.emit tr ~core:0 ~cycle:1 Trace.Tx_begin;
  Trace.emit tr ~core:0 ~cycle:2 (Trace.Tx_abort { abort_class = "contention"; addr = None });
  Trace.emit tr ~core:0 ~cycle:3 Trace.Tx_begin;
  Trace.emit tr ~core:0 ~cycle:4 (Trace.Tx_commit { serial = false });
  (match Trace.events tr with
  | [ e ] ->
      Alcotest.(check int) "only the abort retained" 2 e.Trace.cycle;
      (* Filtered-out Tx_begins still advance the attempt id. *)
      Alcotest.(check int) "abort belongs to attempt 1" 1 e.Trace.attempt
  | l -> Alcotest.failf "expected 1 event, got %d" (List.length l));
  match Trace.create ~filter:[ "bogus" ] () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown filter name must be rejected"

let test_disabled_emits_nothing () =
  let tr = Trace.create () in
  Trace.set_enabled tr false;
  Trace.emit tr ~core:0 ~cycle:1 Trace.Tx_begin;
  Alcotest.(check int) "no events" 0 (List.length (Trace.events tr));
  Alcotest.(check int) "null tracer inert" 0
    (Trace.emit Trace.null ~core:0 ~cycle:1 Trace.Tx_begin;
     List.length (Trace.events Trace.null))

(* ------------------------------------------------------------------ *)
(* A contended workload under trace                                     *)
(* ------------------------------------------------------------------ *)

(* Shared-counter increments on LLB-8 across [n_cores]: heavy contention,
   so the trace sees begins, commits, aborts, probe rollbacks and
   back-offs. Returns (final counter value, aggregated stats, makespan). *)
let counter_run ?seed:(s = 1) n_cores per_core =
  let cfg = { (Tm.default_config (Tm.Asf_mode Variant.llb8) ~n_cores) with Tm.seed = s } in
  let sys = Tm.create cfg in
  let counter = Tm.setup_alloc sys 1 in
  Tm.setup_poke sys counter 0;
  let ctxs =
    List.init n_cores (fun core ->
        Tm.spawn sys ~core (fun ctx ->
            for _ = 1 to per_core do
              Tm.atomic ctx (fun () ->
                  let v = Tm.load ctx counter in
                  Tm.work ctx 20;
                  Tm.store ctx counter (v + 1))
            done))
  in
  Tm.run sys;
  let agg = Stats.create () in
  List.iter (fun c -> Stats.add (Tm.stats c) ~into:agg) ctxs;
  (Tm.setup_peek sys counter, agg, Tm.makespan sys)

let with_tracer ?filter f =
  let tr = Trace.create ?filter () in
  Trace.install tr;
  let r = Fun.protect ~finally:Trace.uninstall f in
  (tr, r)

let test_traced_run_sees_lifecycle () =
  let tr, (total, agg, _) = with_tracer (fun () -> counter_run 4 100) in
  Alcotest.(check int) "no lost updates" 400 total;
  let count name = List.assoc name (Trace.counts tr) in
  Alcotest.(check int) "one Tx_begin per attempt" (Stats.attempts agg) (count "Tx_begin");
  Alcotest.(check int) "one Tx_commit per commit" (Stats.commits agg) (count "Tx_commit");
  Alcotest.(check int) "one Tx_abort per abort" (Stats.total_aborts agg) (count "Tx_abort");
  Alcotest.(check bool) "contention produced aborts" true (count "Tx_abort" > 0);
  Alcotest.(check bool) "requester-wins probes seen" true (count "Probe_rollback" > 0);
  Alcotest.(check int) "spawn/finish per core" 4 (count "Thread_spawn");
  Alcotest.(check int) "finish per core" 4 (count "Thread_finish")

(* qcheck property: per-core event timestamps never go backwards, over
   randomly sized contended runs. *)
let prop_monotone_per_core =
  QCheck.Test.make ~name:"trace: per-core timestamps are monotone" ~count:20
    QCheck.(pair (int_range 1 4) (int_range 1 60))
    (fun (n_cores, per_core) ->
      let tr, _ = with_tracer (fun () -> counter_run n_cores per_core) in
      List.for_all
        (fun core ->
          let evs = Trace.core_events tr ~core in
          let rec mono = function
            | a :: (b :: _ as rest) -> a.Trace.cycle <= b.Trace.cycle && mono rest
            | _ -> true
          in
          mono evs)
        (List.init n_cores Fun.id))

(* ------------------------------------------------------------------ *)
(* Equivalence: tracing must not change any experiment number           *)
(* ------------------------------------------------------------------ *)

let intset_run () =
  let cfg =
    {
      (Intset.default_cfg Intset.Skip_list) with
      Intset.range = 256;
      update_pct = 50;
      txns_per_thread = 150;
    }
  in
  let tm = { (Tm.default_config (Tm.Asf_mode Variant.llb8) ~n_cores:4) with Tm.seed = 3 } in
  Intset.run tm ~threads:4 cfg

let test_trace_off_equivalence () =
  let _tr, traced = with_tracer intset_run in
  let plain = intset_run () in
  Alcotest.(check int) "identical cycles" plain.Intset.cycles traced.Intset.cycles;
  Alcotest.(check (float 0.0)) "identical throughput" plain.Intset.throughput_tx_per_us
    traced.Intset.throughput_tx_per_us;
  Alcotest.(check int) "identical commits" (Stats.commits plain.Intset.stats)
    (Stats.commits traced.Intset.stats);
  Alcotest.(check int) "identical aborts" (Stats.total_aborts plain.Intset.stats)
    (Stats.total_aborts traced.Intset.stats);
  Alcotest.(check bool) "both size-checked" plain.Intset.size_ok traced.Intset.size_ok;
  (* And the counter workload: same final memory and makespan. *)
  let _tr, (t1, _, m1) = with_tracer (fun () -> counter_run ~seed:5 3 80) in
  let t2, _, m2 = counter_run ~seed:5 3 80 in
  Alcotest.(check int) "counter: same final memory" t2 t1;
  Alcotest.(check int) "counter: same makespan" m2 m1

(* ------------------------------------------------------------------ *)
(* Sinks                                                                *)
(* ------------------------------------------------------------------ *)

(* Minimal JSON well-formedness scanner (no JSON library in the test
   environment): brackets and braces balance outside of strings, strings
   close, and the document is a single object. *)
let json_well_formed s =
  let depth = ref 0 and ok = ref true and in_str = ref false and esc = ref false in
  let closed_at_zero = ref false in
  String.iter
    (fun c ->
      if !in_str then
        if !esc then esc := false
        else if c = '\\' then esc := true
        else if c = '"' then in_str := false
        else ()
      else
        match c with
        | '"' -> in_str := true
        | '{' | '[' ->
            if !closed_at_zero then ok := false;
            incr depth
        | '}' | ']' ->
            decr depth;
            if !depth < 0 then ok := false;
            if !depth = 0 then closed_at_zero := true
        | _ -> ())
    s;
  !ok && (not !in_str) && !depth = 0 && !closed_at_zero

let contains ~sub s =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_chrome_json_sink () =
  let tr, _ = with_tracer (fun () -> counter_run 4 100) in
  let js = Trace.chrome_json tr in
  Alcotest.(check bool) "JSON well-formed" true (json_well_formed js);
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " present") true (contains ~sub:("\"" ^ name ^ "\"") js))
    [ "Tx_begin"; "Tx_commit"; "Tx_abort"; "traceEvents" ];
  (* Span reconstruction emits complete events. *)
  Alcotest.(check bool) "tx spans present" true (contains ~sub:"\"ph\":\"X\"" js)

let test_csv_sink () =
  let tr, _ = with_tracer (fun () -> counter_run 2 40) in
  let lines = String.split_on_char '\n' (String.trim (Trace.csv tr)) in
  (match lines with
  | header :: _ ->
      Alcotest.(check string) "header" "run,core,cycle,attempt,event,detail" header
  | [] -> Alcotest.fail "empty csv");
  Alcotest.(check int) "one row per retained event"
    (List.length (Trace.events tr))
    (List.length lines - 1)

let () =
  Alcotest.run "trace"
    [
      ( "unit",
        [
          Alcotest.test_case "ring bounded" `Quick test_ring_bounded;
          Alcotest.test_case "filter" `Quick test_filter;
          Alcotest.test_case "disabled" `Quick test_disabled_emits_nothing;
        ] );
      ( "integration",
        [
          Alcotest.test_case "lifecycle counts" `Quick test_traced_run_sees_lifecycle;
          QCheck_alcotest.to_alcotest prop_monotone_per_core;
        ] );
      ( "equivalence",
        [ Alcotest.test_case "trace on/off" `Quick test_trace_off_equivalence ] );
      ( "sinks",
        [
          Alcotest.test_case "chrome json" `Quick test_chrome_json_sink;
          Alcotest.test_case "csv" `Quick test_csv_sink;
        ] );
    ]
