(* Tests for the Txcheck subsystem: checked/unchecked equivalence, the
   shadow-memory isolation checker against deliberately broken hardware,
   the conflict-serializability oracle, abort hygiene under a disabled
   rollback, and the capacity/annotation lint. *)

module Engine = Asf_engine.Engine
module Params = Asf_machine.Params
module Addr = Asf_mem.Addr
module Memsys = Asf_cache.Memsys
module Abort = Asf_core.Abort
module Variant = Asf_core.Variant
module Asf = Asf_core.Asf
module Stats = Asf_tm_rt.Stats
module Tm = Asf_tm_rt.Tm
module Intset = Asf_intset.Intset
module Check = Asf_check.Check

let setup ?(n_cores = 2) ?(variant = Variant.llb8) ?(rollback = true)
    ?(resolve = true) () =
  let e = Engine.create ~n_cores () in
  let m = Memsys.create Params.barcelona e in
  let a =
    Asf.create m ~rollback_on_abort:rollback ~resolve_conflicts:resolve variant
  in
  for p = 0 to 63 do
    Memsys.map_page m p
  done;
  (e, m, a)

let run_threads e fns =
  List.iteri (fun core f -> Engine.spawn e ~core f) fns;
  Engine.run e

let with_checker ?parts f =
  let chk = Check.create ?parts () in
  Check.install chk;
  let r = Fun.protect ~finally:Check.uninstall f in
  Check.finalize chk;
  (chk, r)

let kinds chk = List.map (fun f -> f.Check.kind) (Check.violations chk)

let contains ~sub s =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let find_kind chk kind =
  List.find_opt (fun f -> f.Check.kind = kind) (Check.violations chk)

(* ------------------------------------------------------------------ *)
(* Part name parsing                                                    *)
(* ------------------------------------------------------------------ *)

let test_parts_of_names () =
  Alcotest.(check int) "empty means all" 3
    (List.length (Check.parts_of_names []));
  Alcotest.(check bool) "subset" true
    (Check.parts_of_names [ "serial"; "lint" ] = [ Check.Serial; Check.Lint ]);
  match Check.parts_of_names [ "bogus" ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown part name must be rejected"

(* ------------------------------------------------------------------ *)
(* Equivalence: checking must not change any number                     *)
(* ------------------------------------------------------------------ *)

let intset_run () =
  let cfg =
    {
      (Intset.default_cfg Intset.Skip_list) with
      Intset.range = 256;
      update_pct = 50;
      txns_per_thread = 150;
    }
  in
  let tm =
    { (Tm.default_config (Tm.Asf_mode Variant.llb8) ~n_cores:4) with Tm.seed = 3 }
  in
  Intset.run tm ~threads:4 cfg

let test_check_off_equivalence () =
  let chk, checked = with_checker intset_run in
  let plain = intset_run () in
  Alcotest.(check int) "identical cycles" plain.Intset.cycles checked.Intset.cycles;
  Alcotest.(check (float 0.0)) "identical throughput"
    plain.Intset.throughput_tx_per_us checked.Intset.throughput_tx_per_us;
  Alcotest.(check int) "identical commits" (Stats.commits plain.Intset.stats)
    (Stats.commits checked.Intset.stats);
  Alcotest.(check int) "identical aborts"
    (Stats.total_aborts plain.Intset.stats)
    (Stats.total_aborts checked.Intset.stats);
  Alcotest.(check bool) "both size-checked" plain.Intset.size_ok
    checked.Intset.size_ok;
  Alcotest.(check (list string)) "stock stack has no violations" [] (kinds chk)

let stm_counter_run () =
  let cfg = { (Tm.default_config Tm.Stm_mode ~n_cores:2) with Tm.seed = 7 } in
  let sys = Tm.create cfg in
  let counter = Tm.setup_alloc sys 1 in
  Tm.setup_poke sys counter 0;
  for core = 0 to 1 do
    Tm.spawn sys ~core (fun ctx ->
        for _ = 1 to 60 do
          Tm.atomic ctx (fun () ->
              let v = Tm.load ctx counter in
              Tm.work ctx 15;
              Tm.store ctx counter (v + 1))
        done)
    |> ignore
  done;
  Tm.run sys;
  (Tm.setup_peek sys counter, Tm.makespan sys)

let test_check_stm_equivalence () =
  let chk, (total, makespan) = with_checker stm_counter_run in
  let total', makespan' = stm_counter_run () in
  Alcotest.(check int) "no lost updates" 120 total;
  Alcotest.(check int) "same final memory" total' total;
  Alcotest.(check int) "same makespan" makespan' makespan;
  Alcotest.(check (list string)) "STM run has no violations" [] (kinds chk)

(* ------------------------------------------------------------------ *)
(* Isolation: broken hardware must be caught                            *)
(* ------------------------------------------------------------------ *)

let test_strong_isolation_detected () =
  (* Conflict-blind probes: core 1's plain load completes while core 0's
     uncommitted speculative store to the same line is live. *)
  let e, m, a = setup ~resolve:false () in
  Memsys.poke m 600 77;
  let chk = Check.create ~parts:[ Check.Isolation ] () in
  Check.attach chk ~asf:a m;
  run_threads e
    [
      (fun () ->
        Asf.speculate a ~core:0;
        Asf.lock_store a ~core:0 600 88;
        Engine.elapse 4000;
        Asf.commit a ~core:0);
      (fun () ->
        Engine.elapse 500;
        ignore (Asf.plain_load a ~core:1 600));
    ];
  Check.finalize chk;
  match find_kind chk "strong-isolation" with
  | Some f ->
      Alcotest.(check (option int)) "offending line"
        (Some (Addr.line_base (Addr.line_of 600)))
        f.Check.line;
      Alcotest.(check bool) "both cores named" true
        (List.mem 0 f.Check.cores && List.mem 1 f.Check.cores);
      Alcotest.(check bool) "event trail present" true (f.Check.trail <> []);
      (* The trail ends with the offending plain load. *)
      let last = List.nth f.Check.trail (List.length f.Check.trail - 1) in
      Alcotest.(check bool) "trail ends at the plain load" true
        (contains ~sub:"plain load" last)
  | None -> Alcotest.failf "expected strong-isolation, got %s" (String.concat "," (kinds chk))

let test_unannotated_race_detected () =
  (* A plain store races a line another region merely read; with probes
     disabled the holder survives, which the checker must flag. *)
  let e, m, a = setup ~resolve:false () in
  Memsys.poke m 700 3;
  let chk = Check.create ~parts:[ Check.Isolation ] () in
  Check.attach chk ~asf:a m;
  run_threads e
    [
      (fun () ->
        Asf.speculate a ~core:0;
        ignore (Asf.lock_load a ~core:0 700);
        Engine.elapse 4000;
        Asf.commit a ~core:0);
      (fun () ->
        Engine.elapse 500;
        Asf.plain_store a ~core:1 700 4);
    ];
  Check.finalize chk;
  Alcotest.(check bool) "unannotated-race reported" true
    (find_kind chk "unannotated-race" <> None)

let test_colocation_detected () =
  (* Stock hardware, broken program: a plain load from a line the same
     region speculatively wrote (on LLB hardware it would read the stale
     committed copy, not the speculative one). *)
  let e, m, a = setup () in
  Memsys.poke m 900 1;
  let chk = Check.create ~parts:[ Check.Isolation ] () in
  Check.attach chk ~asf:a m;
  run_threads e
    [
      (fun () ->
        Asf.speculate a ~core:0;
        Asf.lock_store a ~core:0 900 2;
        ignore (Asf.plain_load a ~core:0 900);
        Asf.commit a ~core:0);
    ];
  Check.finalize chk;
  Alcotest.(check (list string)) "exactly one colocation violation"
    [ "colocation" ] (kinds chk)

let test_stock_hardware_clean () =
  (* The same conflicting schedule as the strong-isolation test but with
     working requester-wins probes: zero violations. *)
  let e, m, a = setup () in
  Memsys.poke m 600 77;
  let chk = Check.create () in
  Check.attach chk ~asf:a m;
  run_threads e
    [
      (fun () ->
        (try
           Asf.speculate a ~core:0;
           Asf.lock_store a ~core:0 600 88;
           Engine.elapse 4000;
           Asf.commit a ~core:0
         with Asf.Aborted _ -> ()));
      (fun () ->
        Engine.elapse 500;
        ignore (Asf.plain_load a ~core:1 600));
    ];
  Check.finalize chk;
  Alcotest.(check (list string)) "no violations" [] (kinds chk)

(* ------------------------------------------------------------------ *)
(* Serializability oracle and abort hygiene                             *)
(* ------------------------------------------------------------------ *)

let test_conflict_cycle_detected () =
  (* With conflict resolution disabled both cross-writing regions commit:
     T0 reads A then writes B, T1 reads B then writes A — a classic
     unserializable interleaving the oracle must reject. *)
  let e, m, a = setup ~resolve:false () in
  let la = 1000 and lb = 2000 in
  Memsys.poke m la 0;
  Memsys.poke m lb 0;
  let chk = Check.create ~parts:[ Check.Serial ] () in
  Check.attach chk ~asf:a m;
  run_threads e
    [
      (fun () ->
        Asf.speculate a ~core:0;
        ignore (Asf.lock_load a ~core:0 la);
        Engine.elapse 5000;
        Asf.lock_store a ~core:0 lb 1;
        Asf.commit a ~core:0);
      (fun () ->
        Engine.elapse 1000;
        Asf.speculate a ~core:1;
        ignore (Asf.lock_load a ~core:1 lb);
        Engine.elapse 5000;
        Asf.lock_store a ~core:1 la 2;
        Asf.commit a ~core:1);
    ];
  Check.finalize chk;
  match find_kind chk "conflict-cycle" with
  | Some f ->
      Alcotest.(check bool) "both cores in the cycle" true
        (List.mem 0 f.Check.cores && List.mem 1 f.Check.cores);
      Alcotest.(check bool) "cycle trail names the attempts" true
        (List.length f.Check.trail >= 2)
  | None -> Alcotest.failf "expected conflict-cycle, got %s" (String.concat "," (kinds chk))

let test_serializable_history_clean () =
  (* Same structure but non-overlapping in time: serializable, and the
     oracle must stay quiet even with conflict resolution disabled. *)
  let e, m, a = setup ~resolve:false () in
  let la = 1000 and lb = 2000 in
  let chk = Check.create ~parts:[ Check.Serial ] () in
  Check.attach chk ~asf:a m;
  run_threads e
    [
      (fun () ->
        Asf.speculate a ~core:0;
        ignore (Asf.lock_load a ~core:0 la);
        Asf.lock_store a ~core:0 lb 1;
        Asf.commit a ~core:0);
      (fun () ->
        Engine.elapse 20000;
        Asf.speculate a ~core:1;
        ignore (Asf.lock_load a ~core:1 lb);
        Asf.lock_store a ~core:1 la 2;
        Asf.commit a ~core:1);
    ];
  Check.finalize chk;
  Alcotest.(check (list string)) "no violations" [] (kinds chk)

let test_abort_hygiene_detected () =
  (* rollback_on_abort:false leaves the speculative store in RAM after an
     explicit abort; the pre-image comparison must catch it. *)
  let e, m, a = setup ~rollback:false () in
  Memsys.poke m 800 5;
  let chk = Check.create ~parts:[ Check.Serial ] () in
  Check.attach chk ~asf:a m;
  run_threads e
    [
      (fun () ->
        try
          Asf.speculate a ~core:0;
          Asf.lock_store a ~core:0 800 99;
          Asf.abort_explicit a ~core:0 ~code:1
        with Asf.Aborted _ -> ());
    ];
  Check.finalize chk;
  (match find_kind chk "abort-hygiene" with
  | Some f ->
      Alcotest.(check (option int)) "leaked line"
        (Some (Addr.line_base (Addr.line_of 800)))
        f.Check.line
  | None -> Alcotest.failf "expected abort-hygiene, got %s" (String.concat "," (kinds chk)));
  (* Sanity: the broken hardware really did leak. *)
  Alcotest.(check int) "speculative residue visible" 99 (Memsys.peek m 800)

let test_abort_hygiene_clean_on_stock () =
  let e, m, a = setup () in
  Memsys.poke m 800 5;
  let chk = Check.create ~parts:[ Check.Serial ] () in
  Check.attach chk ~asf:a m;
  run_threads e
    [
      (fun () ->
        try
          Asf.speculate a ~core:0;
          Asf.lock_store a ~core:0 800 99;
          Asf.abort_explicit a ~core:0 ~code:1
        with Asf.Aborted _ -> ());
    ];
  Check.finalize chk;
  Alcotest.(check (list string)) "no violations" [] (kinds chk);
  Alcotest.(check int) "rollback restored memory" 5 (Memsys.peek m 800)

(* ------------------------------------------------------------------ *)
(* Capacity / annotation lint                                           *)
(* ------------------------------------------------------------------ *)

let test_capacity_lint () =
  (* Profile a 10-line transaction on LLB-256 (where it fits and the full
     footprint is observable), then lint against both capacities:
     serial-only on LLB-8, clean on LLB-256. *)
  let e, m, a = setup ~variant:Variant.llb256 () in
  let chk = Check.create ~parts:[ Check.Lint ] () in
  Check.attach chk ~asf:a ~variant:Variant.llb256 m;
  run_threads e
    [
      (fun () ->
        Asf.speculate a ~core:0;
        for i = 0 to 9 do
          Asf.lock_store a ~core:0 ((100 + i) * Addr.words_per_line) 1
        done;
        Asf.commit a ~core:0);
    ];
  Check.finalize chk;
  (match Check.attempt_profiles chk with
  | [ p ] ->
      Alcotest.(check int) "footprint is 10 lines" 10 p.Check.p_footprint;
      Alcotest.(check int) "all written" 10 p.Check.p_written;
      Alcotest.(check bool) "committed" true p.Check.p_committed
  | l -> Alcotest.failf "expected 1 profile, got %d" (List.length l));
  (match Check.lint_capacity chk ~capacity:8 with
  | [ f ] ->
      Alcotest.(check string) "flagged serial-only on LLB-8" "serial-only"
        f.Check.kind
  | l -> Alcotest.failf "expected 1 serial-only finding, got %d" (List.length l));
  Alcotest.(check int) "clean on LLB-256" 0
    (List.length (Check.lint_capacity chk ~capacity:256));
  Alcotest.(check (list string)) "no violations" [] (kinds chk)

let test_capacity_lint_counts_overflow () =
  (* On LLB-8 the same transaction capacity-aborts at the 9th line; the
     recorded footprint is 8, so the lint must still know the attempt
     needed more than 8. *)
  let e, m, a = setup ~variant:Variant.llb8 () in
  let chk = Check.create ~parts:[ Check.Lint ] () in
  Check.attach chk ~asf:a ~variant:Variant.llb8 m;
  run_threads e
    [
      (fun () ->
        try
          Asf.speculate a ~core:0;
          for i = 0 to 9 do
            Asf.lock_store a ~core:0 ((100 + i) * Addr.words_per_line) 1
          done;
          Asf.commit a ~core:0
        with Asf.Aborted Abort.Capacity -> ());
    ];
  Check.finalize chk;
  (match Check.attempt_profiles chk with
  | [ p ] ->
      Alcotest.(check bool) "capacity abort recorded" true p.Check.p_capacity_abort;
      Alcotest.(check bool) "not committed" false p.Check.p_committed
  | l -> Alcotest.failf "expected 1 profile, got %d" (List.length l));
  Alcotest.(check int) "flagged against capacity 8" 1
    (List.length (Check.lint_capacity chk ~capacity:8));
  (* The attached-variant lint also fires, as an advisory. *)
  Alcotest.(check bool) "serial-only advisory in findings" true
    (List.exists (fun f -> f.Check.kind = "serial-only") (Check.advisories chk))

let () =
  Alcotest.run "check"
    [
      ( "parts",
        [ Alcotest.test_case "name parsing" `Quick test_parts_of_names ] );
      ( "equivalence",
        [
          Alcotest.test_case "asf intset identical + clean" `Quick
            test_check_off_equivalence;
          Alcotest.test_case "stm counter identical + clean" `Quick
            test_check_stm_equivalence;
        ] );
      ( "isolation",
        [
          Alcotest.test_case "strong isolation" `Quick test_strong_isolation_detected;
          Alcotest.test_case "unannotated race" `Quick test_unannotated_race_detected;
          Alcotest.test_case "colocation" `Quick test_colocation_detected;
          Alcotest.test_case "stock hardware clean" `Quick test_stock_hardware_clean;
        ] );
      ( "serial",
        [
          Alcotest.test_case "conflict cycle" `Quick test_conflict_cycle_detected;
          Alcotest.test_case "serializable clean" `Quick test_serializable_history_clean;
          Alcotest.test_case "abort hygiene" `Quick test_abort_hygiene_detected;
          Alcotest.test_case "hygiene clean on stock" `Quick
            test_abort_hygiene_clean_on_stock;
        ] );
      ( "lint",
        [
          Alcotest.test_case "capacity 8 vs 256" `Quick test_capacity_lint;
          Alcotest.test_case "overflow counted" `Quick test_capacity_lint_counts_overflow;
        ] );
    ]
